// Package cc implements the end-to-end congestion-control algorithms the
// paper combines with TCD: DCQCN (Zhu et al., SIGCOMM'15), TIMELY (Mittal
// et al., SIGCOMM'15) and the InfiniBand specification's injection
// throttling (IB CC). Each controller has a stock mode and a TCD mode
// that follows the paper's §5.2 recommendation: hold the rate on UE
// (undetermined) echoes, cut aggressively on CE echoes.
package cc

import (
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// trace is the per-flow event-recording state shared by all three
// controllers: a recorder handle plus the flow ID, wired by the host
// layer through obs.FlowTracer. recordRate emits one KindRateChange
// event per effective rate change; with a nil recorder it is a single
// branch.
type trace struct {
	rec  obs.Recorder
	flow int64
}

// SetTrace implements obs.FlowTracer.
func (t *trace) SetTrace(rec obs.Recorder, flow int64) { t.rec, t.flow = rec, flow }

func (t *trace) recordRate(now units.Time, old, new units.Rate) {
	if t.rec != nil && old != new {
		t.rec.Record(obs.Event{At: now, Kind: obs.KindRateChange, Flow: t.flow, Val: int64(new), Aux: int64(old)})
	}
}

// DCQCNConfig holds the DCQCN reaction-point parameters. Defaults follow
// the values recommended in the DCQCN paper and its reference simulator.
type DCQCNConfig struct {
	// LineRate is the NIC rate (initial sending rate: flows start at
	// line rate, as in RoCE deployments).
	LineRate units.Rate
	// MinRate floors the sending rate.
	MinRate units.Rate
	// G is the EWMA gain for alpha (1/256).
	G float64
	// AlphaTimer is the alpha-decay interval without CNPs (55 us).
	AlphaTimer units.Time
	// IncreaseTimer is the rate-increase timer period. The reference
	// RoCEv2 simulator the paper builds on uses 1500 us; this slow
	// recovery is what makes false congestion marks on victim flows
	// costly (and accurate detection valuable).
	IncreaseTimer units.Time
	// ByteCounter is the bytes-sent stage size (10 MB).
	ByteCounter units.ByteSize
	// F is the fast-recovery stage count (5).
	F int
	// RateAI and RateHAI are the additive and hyper increase steps
	// (40 Mbps / 200 Mbps).
	RateAI, RateHAI units.Rate
	// AlphaCeil bounds (and initializes) alpha. The paper's case study
	// (§5.2.1) states the default reduction factor is 0.5 — a cut to 75%
	// per CNP — and raises it to 1.2 (a cut to 40%) for TCD-confirmed
	// congested flows.
	AlphaCeil float64
	// TCD enables ternary handling: UE echoes leave the rate unchanged.
	TCD bool
}

// DefaultDCQCNConfig returns stock DCQCN at the given line rate.
func DefaultDCQCNConfig(line units.Rate) DCQCNConfig {
	return DCQCNConfig{
		LineRate:      line,
		MinRate:       40 * units.Mbps,
		G:             1.0 / 256,
		AlphaTimer:    55 * units.Microsecond,
		IncreaseTimer: 1500 * units.Microsecond,
		ByteCounter:   10 * units.MB,
		F:             5,
		RateAI:        40 * units.Mbps,
		RateHAI:       200 * units.Mbps,
		AlphaCeil:     0.5,
	}
}

// TCDDCQCNConfig returns the paper's DCQCN+TCD variant: reduction factor
// raised to 1.2 and UE echoes held.
func TCDDCQCNConfig(line units.Rate) DCQCNConfig {
	cfg := DefaultDCQCNConfig(line)
	cfg.AlphaCeil = 1.2
	cfg.TCD = true
	return cfg
}

// DCQCN is one flow's reaction point.
type DCQCN struct {
	cfg   DCQCNConfig
	sched *sim.Scheduler
	trace

	rc, rt units.Rate // current and target rate
	alpha  float64

	bytes    units.ByteSize // since last stage event
	timerCnt int            // increase events from the timer since last cut
	byteCnt  int            // increase events from the byte counter

	alphaTimer *sim.Timer
	incTimer   *sim.Timer

	// CutEvents and HoldEvents count CE cuts and UE holds, for tests and
	// experiment reporting.
	CutEvents, HoldEvents uint64
}

// NewDCQCN builds a reaction point starting at line rate.
func NewDCQCN(s *sim.Scheduler, cfg DCQCNConfig) *DCQCN {
	d := &DCQCN{cfg: cfg, sched: s, rc: cfg.LineRate, rt: cfg.LineRate, alpha: cfg.AlphaCeil}
	d.alphaTimer = sim.NewTimer(s, d.alphaDecay)
	d.incTimer = sim.NewTimer(s, d.timerIncrease)
	return d
}

// CurrentRate implements host.RateController.
func (d *DCQCN) CurrentRate() units.Rate { return d.rc }

// Alpha reports the current reduction factor (for tests).
func (d *DCQCN) Alpha() float64 { return d.alpha }

// OnNotify implements host.RateController: CNP handling.
func (d *DCQCN) OnNotify(now units.Time, ce, ue bool) {
	if ce {
		d.cut()
		return
	}
	if ue && d.cfg.TCD {
		// §5.2: flows only passing through undetermined ports keep their
		// rate — they may be victims; increasing could spread congestion.
		d.HoldEvents++
		d.freezeIncrease()
	}
}

// OnAck implements host.RateController (DCQCN does not use RTT).
func (d *DCQCN) OnAck(units.Time, units.Time, bool, bool) {}

// OnSent implements host.SentObserver: the byte-counter increase stage.
func (d *DCQCN) OnSent(now units.Time, wire units.ByteSize) {
	d.bytes += wire
	for d.bytes >= d.cfg.ByteCounter {
		d.bytes -= d.cfg.ByteCounter
		d.byteCnt++
		d.increase()
	}
}

// cut is the DCQCN rate decrease:
//
//	Rt <- Rc;  Rc <- Rc*(1 - alpha/2);  alpha <- (1-g)alpha + g*ceil
func (d *DCQCN) cut() {
	d.CutEvents++
	d.rt = d.rc
	factor := 1 - d.alpha/2
	if factor < 0.05 {
		factor = 0.05
	}
	old := d.rc
	d.rc = units.Rate(float64(d.rc) * factor)
	if d.rc < d.cfg.MinRate {
		d.rc = d.cfg.MinRate
	}
	d.recordRate(d.sched.Now(), old, d.rc)
	d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*d.cfg.AlphaCeil
	d.bytes = 0
	d.timerCnt = 0
	d.byteCnt = 0
	d.alphaTimer.Arm(d.cfg.AlphaTimer)
	d.incTimer.Arm(d.cfg.IncreaseTimer)
}

// freezeIncrease restarts the increase stages without cutting — holding a
// UE-echoed flow steady instead of letting it climb into a spreading
// tree.
func (d *DCQCN) freezeIncrease() {
	d.timerCnt = 0
	d.byteCnt = 0
	d.bytes = 0
	d.incTimer.Arm(d.cfg.IncreaseTimer)
}

func (d *DCQCN) alphaDecay() {
	d.alpha *= 1 - d.cfg.G
	if d.alpha > 1e-4 {
		d.alphaTimer.Arm(d.cfg.AlphaTimer)
	}
}

func (d *DCQCN) timerIncrease() {
	d.timerCnt++
	d.increase()
	if d.rc < d.cfg.LineRate {
		d.incTimer.Arm(d.cfg.IncreaseTimer)
	}
}

// increase runs one DCQCN increase event: fast recovery while both stage
// counters are young, additive once either passes F, hyper once both do.
func (d *DCQCN) increase() {
	switch {
	case d.timerCnt > d.cfg.F && d.byteCnt > d.cfg.F:
		d.rt += d.cfg.RateHAI
	case d.timerCnt > d.cfg.F || d.byteCnt > d.cfg.F:
		d.rt += d.cfg.RateAI
	}
	if d.rt > d.cfg.LineRate {
		d.rt = d.cfg.LineRate
	}
	// Ceiling average: a floor here would leave rc one bps short of rt
	// forever and keep the increase timer alive on an idle flow.
	old := d.rc
	d.rc = (d.rc + d.rt + 1) / 2
	if d.rc > d.cfg.LineRate {
		d.rc = d.cfg.LineRate
	}
	d.recordRate(d.sched.Now(), old, d.rc)
}
