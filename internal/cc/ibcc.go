package cc

import (
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// IBCCConfig holds the InfiniBand congestion-control (CA-side injection
// throttling) parameters. A BECN-echoed notification raises the CCT index
// (CCTI); a timer lowers it; the CCT maps the index to an injection rate.
//
// The spec's CCT contains inter-packet delay values; this implementation
// uses the equivalent rate mapping rate = LineRate / (1 + CCTI/8) — a
// monotone table with the same qualitative throttling (see DESIGN.md).
type IBCCConfig struct {
	// LineRate is the link injection rate at CCTI = 0.
	LineRate units.Rate
	// Step is the CCTI increase per BECN (1 in the spec's example; the
	// paper's TCD case study §5.2.2 raises it to 2).
	Step int
	// CCTIMax caps the index (127).
	CCTIMax int
	// Timer is the CCTI recovery period: CCTI decreases by one per
	// expiry.
	Timer units.Time
	// TCD enables ternary handling: UE echoes leave CCTI unchanged.
	TCD bool
}

// DefaultIBCCConfig returns stock IB CC.
func DefaultIBCCConfig(line units.Rate) IBCCConfig {
	return IBCCConfig{
		LineRate: line,
		Step:     1,
		CCTIMax:  127,
		Timer:    150 * units.Microsecond,
	}
}

// TCDIBCCConfig returns the paper's IB CC + TCD variant: reduction step 2
// and UE echoes held.
func TCDIBCCConfig(line units.Rate) IBCCConfig {
	cfg := DefaultIBCCConfig(line)
	cfg.Step = 2
	cfg.TCD = true
	return cfg
}

// IBCC is one flow's channel-adapter throttle.
type IBCC struct {
	cfg   IBCCConfig
	sched *sim.Scheduler
	ccti  int
	timer *sim.Timer
	trace

	// Increases and Holds count BECN reactions and TCD holds.
	Increases, Holds uint64
}

// NewIBCC builds a throttle at full injection rate.
func NewIBCC(s *sim.Scheduler, cfg IBCCConfig) *IBCC {
	c := &IBCC{cfg: cfg, sched: s}
	c.timer = sim.NewTimer(s, c.recover)
	return c
}

// CCTI reports the current table index (for tests).
func (c *IBCC) CCTI() int { return c.ccti }

// CurrentRate implements host.RateController.
func (c *IBCC) CurrentRate() units.Rate {
	return units.Rate(float64(c.cfg.LineRate) / (1 + float64(c.ccti)/8))
}

// OnNotify implements host.RateController: a BECN echo.
func (c *IBCC) OnNotify(now units.Time, ce, ue bool) {
	if ce {
		c.Increases++
		old := c.CurrentRate()
		c.ccti += c.cfg.Step
		if c.ccti > c.cfg.CCTIMax {
			c.ccti = c.cfg.CCTIMax
		}
		c.recordRate(now, old, c.CurrentRate())
		c.timer.Arm(c.cfg.Timer)
		return
	}
	if ue && c.cfg.TCD {
		c.Holds++
	}
}

// OnAck implements host.RateController (IB CC does not use RTT).
func (c *IBCC) OnAck(units.Time, units.Time, bool, bool) {}

func (c *IBCC) recover() {
	old := c.CurrentRate()
	if c.ccti > 0 {
		c.ccti--
	}
	c.recordRate(c.sched.Now(), old, c.CurrentRate())
	if c.ccti > 0 {
		c.timer.Arm(c.cfg.Timer)
	}
}
