package cc

import (
	"math"
	"testing"

	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

const line = 40 * units.Gbps

func TestDCQCNStartsAtLineRate(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, DefaultDCQCNConfig(line))
	if d.CurrentRate() != line {
		t.Errorf("initial rate = %v, want %v", d.CurrentRate(), line)
	}
}

func TestDCQCNStockCutIsGentle(t *testing.T) {
	// §5.2.1: the default reduction factor is 0.5, i.e. a cut to
	// rate*(1 - 0.5/2) = 75%.
	s := sim.New()
	d := NewDCQCN(s, DefaultDCQCNConfig(line))
	d.OnNotify(0, true, false)
	want := float64(line) * 0.75
	if math.Abs(float64(d.CurrentRate())-want)/want > 0.01 {
		t.Errorf("rate after first cut = %v, want ~%v", d.CurrentRate(), units.Rate(want))
	}
	if d.CutEvents != 1 {
		t.Errorf("CutEvents = %d", d.CutEvents)
	}
}

func TestDCQCNTCDCutIsMoreAggressive(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, TCDDCQCNConfig(line))
	d.OnNotify(0, true, false)
	// alpha = 1.2 -> rate * (1 - 0.6) = 16G.
	want := float64(line) * 0.4
	if math.Abs(float64(d.CurrentRate())-want)/want > 0.01 {
		t.Errorf("TCD cut rate = %v, want ~%v", d.CurrentRate(), units.Rate(want))
	}
}

func TestDCQCNUEHoldsRateInTCDMode(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, TCDDCQCNConfig(line))
	d.OnNotify(0, false, true)
	if d.CurrentRate() != line {
		t.Errorf("UE changed rate to %v", d.CurrentRate())
	}
	if d.HoldEvents != 1 {
		t.Errorf("HoldEvents = %d, want 1", d.HoldEvents)
	}
}

func TestDCQCNStockIgnoresUE(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, DefaultDCQCNConfig(line))
	d.OnNotify(0, false, true)
	if d.CurrentRate() != line || d.HoldEvents != 0 {
		t.Error("stock DCQCN reacted to UE")
	}
}

func TestDCQCNAlphaDecaysWithoutCNPs(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, DefaultDCQCNConfig(line))
	s.At(0, func() { d.OnNotify(0, true, false) })
	alphaAfterCut := 0.0
	s.At(units.Microsecond, func() { alphaAfterCut = d.Alpha() })
	s.RunUntil(10 * units.Millisecond)
	if d.Alpha() >= alphaAfterCut/2 {
		t.Errorf("alpha did not decay: %v -> %v", alphaAfterCut, d.Alpha())
	}
}

func TestDCQCNRecoversTowardLineRate(t *testing.T) {
	s := sim.New()
	d := NewDCQCN(s, DefaultDCQCNConfig(line))
	s.At(0, func() { d.OnNotify(0, true, false) })
	s.RunUntil(200 * units.Millisecond)
	// Fast recovery alone brings Rc back to Rt=line within ~5 timer
	// periods; additive/hyper then keep it there.
	if float64(d.CurrentRate()) < 0.95*float64(line) {
		t.Errorf("rate after recovery = %v, want ~line rate", d.CurrentRate())
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending (timers must quiesce at line rate)", s.Pending())
	}
}

func TestDCQCNFastRecoveryHalvesGap(t *testing.T) {
	s := sim.New()
	cfg := DefaultDCQCNConfig(line)
	d := NewDCQCN(s, cfg)
	s.At(0, func() { d.OnNotify(0, true, false) }) // rc=30G, rt=40G
	s.RunUntil(cfg.IncreaseTimer + units.Microsecond)
	// One timer increase: rc = (30+40)/2 = 35G.
	want := 35 * units.Gbps
	if math.Abs(float64(d.CurrentRate()-want))/float64(want) > 0.02 {
		t.Errorf("after one fast recovery rate = %v, want ~30G", d.CurrentRate())
	}
}

func TestDCQCNByteCounterStages(t *testing.T) {
	s := sim.New()
	cfg := DefaultDCQCNConfig(line)
	cfg.ByteCounter = 100 * units.KB
	d := NewDCQCN(s, cfg)
	d.OnNotify(0, true, false) // rc = 20G
	r0 := d.CurrentRate()
	for i := 0; i < 50; i++ {
		d.OnSent(0, 10*units.KB) // 500KB total = 5 byte-stage events
	}
	if d.CurrentRate() <= r0 {
		t.Errorf("byte-counter events did not increase rate: %v", d.CurrentRate())
	}
}

func TestDCQCNMinRateFloor(t *testing.T) {
	s := sim.New()
	cfg := DefaultDCQCNConfig(line)
	d := NewDCQCN(s, cfg)
	for i := 0; i < 100; i++ {
		d.OnNotify(0, true, false)
	}
	if d.CurrentRate() < cfg.MinRate {
		t.Errorf("rate %v fell below floor %v", d.CurrentRate(), cfg.MinRate)
	}
}

func TestTIMELYBelowTLowIncreases(t *testing.T) {
	cfg := DefaultTIMELYConfig(line)
	cfg.LineRate = 10 * units.Gbps
	tm := NewTIMELY(cfg)
	tm.rate = units.Gbps
	tm.OnAck(0, 30*units.Microsecond, false, false) // first sample
	tm.OnAck(0, 30*units.Microsecond, false, false)
	if tm.CurrentRate() != units.Gbps+cfg.Delta {
		t.Errorf("rate = %v, want +delta", tm.CurrentRate())
	}
}

func TestTIMELYAboveTHighDecreases(t *testing.T) {
	tm := NewTIMELY(DefaultTIMELYConfig(line))
	tm.OnAck(0, 100*units.Microsecond, false, false)
	tm.OnAck(0, 1000*units.Microsecond, false, false) // >> THigh
	// f = 1 - 0.8*(1 - 500/1000) = 0.6.
	want := float64(line) * 0.6
	if math.Abs(float64(tm.CurrentRate())-want)/want > 0.01 {
		t.Errorf("rate = %v, want ~%v", tm.CurrentRate(), units.Rate(want))
	}
}

func TestTIMELYNegativeGradientIncreases(t *testing.T) {
	tm := NewTIMELY(DefaultTIMELYConfig(line))
	tm.rate = units.Gbps
	// Falling RTTs inside [TLow, THigh].
	rtts := []units.Time{400, 380, 360, 340, 320, 300, 280, 260}
	for _, us := range rtts {
		tm.OnAck(0, us*units.Microsecond, false, false)
	}
	if tm.CurrentRate() <= units.Gbps {
		t.Error("negative gradient did not increase rate")
	}
	if tm.Decreases != 0 {
		t.Error("negative gradient caused decreases")
	}
}

func TestTIMELYHAIAfterFiveNegatives(t *testing.T) {
	cfg := DefaultTIMELYConfig(line)
	tm := NewTIMELY(cfg)
	tm.rate = units.Gbps
	r := tm.rate
	var steps []units.Rate
	rtt := 400 * units.Microsecond
	for i := 0; i < 8; i++ {
		tm.OnAck(0, rtt, false, false)
		rtt -= 10 * units.Microsecond
		steps = append(steps, tm.CurrentRate()-r)
		r = tm.CurrentRate()
	}
	// Early steps are 1*delta; late steps 5*delta.
	if steps[1] != cfg.Delta {
		t.Errorf("early step = %v, want delta", steps[1])
	}
	if steps[7] != 5*cfg.Delta {
		t.Errorf("late step = %v, want 5*delta", steps[7])
	}
}

func TestTIMELYPositiveGradientDecreases(t *testing.T) {
	tm := NewTIMELY(DefaultTIMELYConfig(line))
	tm.OnAck(0, 100*units.Microsecond, false, false)
	for rtt := units.Time(120); rtt <= 300; rtt += 40 {
		tm.OnAck(0, rtt*units.Microsecond, false, false)
	}
	if tm.Decreases == 0 {
		t.Error("rising RTT inside the band caused no decrease")
	}
	if tm.CurrentRate() >= line {
		t.Error("rate did not drop")
	}
}

func TestTIMELYTCDHoldsOnUE(t *testing.T) {
	tm := NewTIMELY(TCDTIMELYConfig(line))
	tm.OnAck(0, 100*units.Microsecond, false, false)
	for rtt := units.Time(120); rtt <= 300; rtt += 40 {
		tm.OnAck(0, rtt*units.Microsecond, false, true) // UE echoed
	}
	if tm.CurrentRate() != line {
		t.Errorf("UE-echoed gradient rise dropped rate to %v", tm.CurrentRate())
	}
	if tm.Holds == 0 {
		t.Error("no holds recorded")
	}
	// But a CE echo still decreases even in TCD mode.
	tm.OnAck(0, 340*units.Microsecond, true, false)
	if tm.CurrentRate() >= line {
		t.Error("CE echo did not decrease in TCD mode")
	}
}

func TestTIMELYAboveTHighOverridesUE(t *testing.T) {
	// Above THigh TIMELY always decreases, UE or not: the band rule only
	// covers the gradient region.
	tm := NewTIMELY(TCDTIMELYConfig(line))
	tm.OnAck(0, 100*units.Microsecond, false, true)
	tm.OnAck(0, 900*units.Microsecond, false, true)
	if tm.CurrentRate() >= line {
		t.Error("THigh breach with UE did not decrease")
	}
}

func TestTIMELYClamps(t *testing.T) {
	cfg := DefaultTIMELYConfig(line)
	tm := NewTIMELY(cfg)
	tm.OnAck(0, 10*units.Microsecond, false, false)
	tm.OnAck(0, 10*units.Microsecond, false, false)
	if tm.CurrentRate() > line {
		t.Error("rate exceeded line rate")
	}
	for i := 0; i < 200; i++ {
		tm.OnAck(0, units.Time(1000+i*100)*units.Microsecond, false, false)
	}
	if tm.CurrentRate() < cfg.MinRate {
		t.Error("rate fell below MinRate")
	}
}

func TestIBCCRateTable(t *testing.T) {
	s := sim.New()
	c := NewIBCC(s, DefaultIBCCConfig(line))
	if c.CurrentRate() != line {
		t.Errorf("initial rate = %v", c.CurrentRate())
	}
	c.OnNotify(0, true, false)
	if c.CCTI() != 1 {
		t.Errorf("CCTI = %d, want 1", c.CCTI())
	}
	// rate = line / (1 + 1/8) = 35.55G.
	want := float64(line) / 1.125
	if math.Abs(float64(c.CurrentRate())-want)/want > 0.01 {
		t.Errorf("rate = %v, want ~%v", c.CurrentRate(), units.Rate(want))
	}
	// Monotone decreasing in CCTI.
	prev := c.CurrentRate()
	for i := 0; i < 20; i++ {
		c.OnNotify(0, true, false)
		if c.CurrentRate() >= prev {
			t.Fatal("rate not monotone in CCTI")
		}
		prev = c.CurrentRate()
	}
}

func TestIBCCTCDStepIsTwo(t *testing.T) {
	s := sim.New()
	c := NewIBCC(s, TCDIBCCConfig(line))
	c.OnNotify(0, true, false)
	if c.CCTI() != 2 {
		t.Errorf("TCD CCTI step = %d, want 2", c.CCTI())
	}
}

func TestIBCCUEHolds(t *testing.T) {
	s := sim.New()
	c := NewIBCC(s, TCDIBCCConfig(line))
	c.OnNotify(0, false, true)
	if c.CCTI() != 0 || c.Holds != 1 {
		t.Errorf("UE changed CCTI to %d (holds %d)", c.CCTI(), c.Holds)
	}
}

func TestIBCCTimerRecovery(t *testing.T) {
	s := sim.New()
	cfg := DefaultIBCCConfig(line)
	c := NewIBCC(s, cfg)
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			c.OnNotify(0, true, false)
		}
	})
	s.RunUntil(20 * cfg.Timer)
	if c.CCTI() != 0 {
		t.Errorf("CCTI = %d after recovery window, want 0", c.CCTI())
	}
	if s.Pending() != 0 {
		t.Error("IBCC timer did not quiesce")
	}
	if c.CurrentRate() != line {
		t.Error("rate did not recover to line")
	}
}

func TestIBCCCCTIMax(t *testing.T) {
	s := sim.New()
	cfg := DefaultIBCCConfig(line)
	c := NewIBCC(s, cfg)
	for i := 0; i < 500; i++ {
		c.OnNotify(0, true, false)
	}
	if c.CCTI() != cfg.CCTIMax {
		t.Errorf("CCTI = %d, want capped at %d", c.CCTI(), cfg.CCTIMax)
	}
}
