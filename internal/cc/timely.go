package cc

import (
	"github.com/tcdnet/tcd/internal/units"
)

// TIMELYConfig holds the TIMELY parameters (Mittal et al., and the
// published reference code snippet the paper's simulator is based on).
type TIMELYConfig struct {
	// LineRate caps the sending rate; flows start at line rate.
	LineRate units.Rate
	// MinRate floors the sending rate.
	MinRate units.Rate
	// Delta is the additive increase step (10 Mbps).
	Delta units.Rate
	// TLow and THigh bracket the gradient-controlled region: below TLow
	// always increase, above THigh always decrease multiplicatively.
	TLow, THigh units.Time
	// MinRTT normalizes the RTT gradient.
	MinRTT units.Time
	// EwmaAlpha filters the RTT difference (0.875-weight history in the
	// snippet: alpha = 0.125... the snippet uses ewma_alpha for the diff).
	EwmaAlpha float64
	// Beta scales multiplicative decrease (0.8). The paper's TCD case
	// study (§5.2.3) raises it to 1.6 for congested flows.
	Beta float64
	// HAICount is the consecutive-negative-gradient count after which the
	// additive step is multiplied by N=5 (hyperactive increase).
	HAICount int
	// UpdateEvery rate-limits the engine: TIMELY computes a new rate per
	// completion event of a 16-64 KB segment, not per MTU-sized packet.
	// Samples arriving within the window are ignored.
	UpdateEvery units.Time
	// TCD enables ternary handling: in the gradient region a positive
	// gradient with a UE-echoed ACK holds the rate (the RTT rise is
	// attributed to PAUSE, not congestion).
	TCD bool
}

// DefaultTIMELYConfig returns stock TIMELY for datacenter RTTs.
func DefaultTIMELYConfig(line units.Rate) TIMELYConfig {
	return TIMELYConfig{
		LineRate:    line,
		MinRate:     10 * units.Mbps,
		Delta:       10 * units.Mbps,
		TLow:        50 * units.Microsecond,
		THigh:       500 * units.Microsecond,
		MinRTT:      20 * units.Microsecond,
		EwmaAlpha:   0.125,
		Beta:        0.8,
		HAICount:    5,
		UpdateEvery: 20 * units.Microsecond,
	}
}

// TCDTIMELYConfig returns the paper's TIMELY+TCD variant: beta 1.6 and
// UE-echoed gradient rises held.
func TCDTIMELYConfig(line units.Rate) TIMELYConfig {
	cfg := DefaultTIMELYConfig(line)
	cfg.Beta = 1.6
	cfg.TCD = true
	return cfg
}

// TIMELY is one flow's RTT-gradient engine.
type TIMELY struct {
	cfg TIMELYConfig
	trace

	rate       units.Rate
	prevRTT    units.Time
	rttDiff    float64 // EWMA of RTT differences, in picoseconds
	negCount   int
	lastUpdate units.Time

	// Decreases and Holds count multiplicative decreases and TCD holds.
	Decreases, Holds uint64
}

// NewTIMELY builds an engine starting at line rate.
func NewTIMELY(cfg TIMELYConfig) *TIMELY {
	return &TIMELY{cfg: cfg, rate: cfg.LineRate}
}

// CurrentRate implements host.RateController.
func (t *TIMELY) CurrentRate() units.Rate { return t.rate }

// OnNotify implements host.RateController (TIMELY is delay-based; it
// ignores CNPs).
func (t *TIMELY) OnNotify(units.Time, bool, bool) {}

// OnAck implements host.RateController: one RTT sample per ACK, following
// the published TIMELY algorithm with the paper's TCD amendment.
func (t *TIMELY) OnAck(now units.Time, rtt units.Time, ce, ue bool) {
	if t.lastUpdate != 0 && now-t.lastUpdate < t.cfg.UpdateEvery {
		return // within the current segment: one decision per completion
	}
	t.lastUpdate = now
	if t.prevRTT == 0 {
		t.prevRTT = rtt
		return
	}
	newDiff := float64(rtt - t.prevRTT)
	t.prevRTT = rtt
	t.rttDiff = (1-t.cfg.EwmaAlpha)*t.rttDiff + t.cfg.EwmaAlpha*newDiff
	gradient := t.rttDiff / float64(t.cfg.MinRTT)

	old := t.rate
	defer func() { t.recordRate(now, old, t.rate) }()
	switch {
	case rtt < t.cfg.TLow:
		t.additive(1)
	case rtt > t.cfg.THigh:
		// Multiplicative decrease toward THigh.
		t.negCount = 0
		f := 1 - t.cfg.Beta*(1-float64(t.cfg.THigh)/float64(rtt))
		t.multiplicative(f)
	case gradient <= 0:
		n := 1
		t.negCount++
		if t.negCount >= t.cfg.HAICount {
			n = 5
		}
		t.additive(n)
	default:
		t.negCount = 0
		if t.cfg.TCD && ue && !ce {
			// §5.2.3: the gradient rise came from a port in the
			// undetermined state — hold instead of backing off.
			t.Holds++
			return
		}
		f := 1 - t.cfg.Beta*gradient
		t.multiplicative(f)
	}
}

func (t *TIMELY) additive(n int) {
	t.rate += units.Rate(n) * t.cfg.Delta
	if t.rate > t.cfg.LineRate {
		t.rate = t.cfg.LineRate
	}
}

func (t *TIMELY) multiplicative(f float64) {
	if f >= 1 {
		return // gradient too small to decrease
	}
	if f < 0.05 {
		f = 0.05
	}
	t.Decreases++
	t.rate = units.Rate(float64(t.rate) * f)
	if t.rate < t.cfg.MinRate {
		t.rate = t.cfg.MinRate
	}
}
