// Package routing computes forwarding tables over a topology and adapts
// them to the fabric: static shortest-path, per-flow ECMP hashing, and the
// deterministic D-mod-k scheme the paper uses for InfiniBand fat-trees.
//
// Tables are stored column-major in a compressed sparse row (CSR)
// encoding: one column per destination host, holding a choices pool
// ([]int32 link indices) plus an offset array indexed by node. Columns are
// either materialized eagerly at build time (BuildShortestPath — the
// golden-trace reference) or lazily on first use with an LRU bound
// (NewLazy — the hyperscale path). Lazy columns come from a structural
// ColumnSource when the topology's builder can derive next-hops without
// search (fat-tree, leaf–spine), or from an on-demand reverse BFS
// otherwise. Either way the column contents are byte-identical to the
// eager reference, so route decisions — and therefore event traces — do
// not depend on which mode built the table.
package routing

import (
	"fmt"
	"slices"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
)

// DefaultColumnCap bounds the number of simultaneously materialized
// columns in a lazy table. 512 columns keep the working set of a few
// hundred concurrently active destinations resident while holding a
// k=32 fat-tree (8192 hosts) at ~1/16th of the eager table footprint.
const DefaultColumnCap = 512

// ColumnSource derives a destination's full next-hop column structurally,
// without graph search. AppendColumn fills start (length #nodes+1, with
// start[0] already 0) so that column row n is choices[start[n]:start[n+1]],
// appending each node's equal-cost link indices in ascending order, and
// returns the grown choices slice. The output must be identical to what a
// reverse BFS from dst would compute — the lazy/eager equivalence property
// tests enforce this.
type ColumnSource interface {
	AppendColumn(dst packet.NodeID, start []int32, choices []int32) []int32
}

// column is one destination's CSR next-hop table: row n of the table is
// choices[start[n]:start[n+1]], ascending link indices. ports caches the
// resolved egress port for single-choice rows once the table is attached
// to a fabric (nil until first routed through). Columns of a lazy table
// are chained into an LRU list for eviction.
type column struct {
	hi         int32
	start      []int32
	choices    []int32
	ports      []*fabric.Port
	prev, next *column
}

func (c *column) bytes() int64 {
	b := int64(4 * (len(c.start) + cap(c.choices)))
	b += int64(8 * len(c.ports))
	return b
}

// TableStats counts column materialization activity.
type TableStats struct {
	// Materialized counts columns built, including rebuilds after
	// eviction.
	Materialized uint64
	// Evicted counts columns dropped by the LRU bound.
	Evicted uint64
	// BFSRuns counts columns built by reverse BFS (as opposed to a
	// structural ColumnSource).
	BFSRuns uint64
}

// Table holds, for every (node, destination host) pair, the sorted set of
// equal-cost next-hop links, one CSR column per destination host.
type Table struct {
	topo *topo.Topology
	// hostOf maps NodeID -> dense host index (-1 for non-hosts) so the
	// per-hop column lookup stays off any map.
	hostOf []int32
	hosts  []packet.NodeID

	// cols[hi] is nil until the column is materialized.
	cols []*column
	src  ColumnSource
	lazy bool
	cap  int

	// LRU list of materialized columns, most recent at head (lazy only).
	head, tail *column
	live       int

	net *fabric.Network
	sel Selector

	// Reverse-BFS scratch, reused across materializations.
	dist  []int32
	queue []packet.NodeID

	stats TableStats
}

func newTable(t *topo.Topology) *Table {
	tb := &Table{topo: t}
	tb.hosts = t.Hosts()
	tb.hostOf = make([]int32, len(t.Nodes))
	for i := range tb.hostOf {
		tb.hostOf[i] = -1
	}
	for hi, h := range tb.hosts {
		tb.hostOf[h] = int32(hi)
	}
	tb.cols = make([]*column, len(tb.hosts))
	return tb
}

// BuildShortestPath computes equal-cost shortest-path sets with a reverse
// BFS from every host, materializing every column eagerly. This is the
// reference table: lazy tables must reproduce its columns exactly.
func BuildShortestPath(t *topo.Topology) *Table {
	tb := newTable(t)
	for hi := range tb.hosts {
		tb.cols[hi] = tb.build(int32(hi))
	}
	return tb
}

// NewLazy returns a table that materializes per-destination columns on
// first use, keeping at most capCols columns resident (0 means
// DefaultColumnCap). Columns come from src when non-nil (structural
// derivation, O(nodes) per column) and from an on-demand reverse BFS
// otherwise. Access order — and therefore eviction — is deterministic in
// a single-threaded run, so lazy tables preserve trace byte-identity.
func NewLazy(t *topo.Topology, src ColumnSource, capCols int) *Table {
	tb := newTable(t)
	tb.src = src
	tb.lazy = true
	if capCols <= 0 {
		capCols = DefaultColumnCap
	}
	tb.cap = capCols
	return tb
}

// Lazy reports whether the table materializes columns on demand.
func (tb *Table) Lazy() bool { return tb.lazy }

// Stats returns materialization counters.
func (tb *Table) Stats() TableStats { return tb.stats }

// NumHosts returns the number of destination columns the table spans.
func (tb *Table) NumHosts() int { return len(tb.hosts) }

// ColumnCap returns the resident-column ceiling: every host for an eager
// table, the LRU cap for a lazy one.
func (tb *Table) ColumnCap() int {
	if !tb.lazy {
		return len(tb.hosts)
	}
	return tb.cap
}

// LiveColumns returns the number of currently materialized columns.
func (tb *Table) LiveColumns() int {
	if !tb.lazy {
		return len(tb.hosts)
	}
	return tb.live
}

// LiveBytes returns the heap footprint of the materialized columns plus
// the table's fixed per-node overhead.
func (tb *Table) LiveBytes() int64 {
	b := int64(4*len(tb.hostOf) + 8*len(tb.hosts) + 8*len(tb.cols))
	b += int64(4*len(tb.dist) + 8*cap(tb.queue))
	for _, c := range tb.cols {
		if c != nil {
			b += c.bytes()
		}
	}
	return b
}

// EagerBytesEstimate estimates the footprint of fully materializing every
// column (the eager table), by building a small sample of columns into
// scratch storage — no table state is touched. The estimate includes the
// per-column port cache only when the table is attached to a fabric, so
// it is comparable with LiveBytes.
func (tb *Table) EagerBytesEstimate() int64 {
	nHosts := len(tb.hosts)
	if nHosts == 0 {
		return 0
	}
	const sample = 8
	n := sample
	if n > nHosts {
		n = nHosts
	}
	var total int64
	for i := 0; i < n; i++ {
		hi := int32(i * (nHosts - 1) / max(n-1, 1))
		c := tb.fill(&column{hi: hi, start: make([]int32, len(tb.topo.Nodes)+1)})
		b := int64(4 * (len(c.start) + len(c.choices)))
		if tb.net != nil {
			b += int64(8 * len(tb.hostOf))
		}
		total += b
	}
	return total / int64(n) * int64(nHosts)
}

// col returns the materialized column for host index hi, building (and,
// in lazy mode, LRU-touching) it as needed.
func (tb *Table) col(hi int32) *column {
	c := tb.cols[hi]
	if c == nil {
		c = tb.build(hi)
		tb.cols[hi] = c
		return c
	}
	if tb.lazy && tb.head != c {
		tb.unlink(c)
		tb.pushFront(c)
	}
	return c
}

func (tb *Table) unlink(c *column) {
	if c.prev != nil {
		c.prev.next = c.next
	} else if tb.head == c {
		tb.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else if tb.tail == c {
		tb.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

func (tb *Table) pushFront(c *column) {
	c.next = tb.head
	if tb.head != nil {
		tb.head.prev = c
	}
	tb.head = c
	if tb.tail == nil {
		tb.tail = c
	}
}

// build materializes one column, evicting the least recently used column
// first when the lazy bound is reached.
func (tb *Table) build(hi int32) *column {
	if tb.lazy {
		for tb.live >= tb.cap && tb.tail != nil {
			victim := tb.tail
			tb.unlink(victim)
			tb.cols[victim.hi] = nil
			tb.live--
			tb.stats.Evicted++
		}
	}
	c := tb.fill(&column{hi: hi, start: make([]int32, len(tb.topo.Nodes)+1)})
	tb.stats.Materialized++
	if tb.lazy {
		tb.pushFront(c)
		tb.live++
	}
	return c
}

// fill computes a column's rows, structurally when a source is present
// and by reverse BFS otherwise.
func (tb *Table) fill(c *column) *column {
	if tb.src != nil {
		c.choices = tb.src.AppendColumn(tb.hosts[c.hi], c.start, c.choices[:0])
		return c
	}
	tb.stats.BFSRuns++
	t := tb.topo
	nNodes := len(t.Nodes)
	if tb.dist == nil {
		tb.dist = make([]int32, nNodes)
		tb.queue = make([]packet.NodeID, 0, nNodes)
	}
	dist := tb.dist
	for i := range dist {
		dist[i] = -1
	}
	h := tb.hosts[c.hi]
	dist[h] = 0
	queue := tb.queue[:0]
	queue = append(queue, h)
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, ad := range t.Adj(cur) {
			if dist[ad.Peer] == -1 {
				dist[ad.Peer] = dist[cur] + 1
				queue = append(queue, ad.Peer)
			}
		}
	}
	tb.queue = queue
	choices := c.choices[:0]
	for ni := 0; ni < nNodes; ni++ {
		id := packet.NodeID(ni)
		if id != h && dist[ni] != -1 {
			row := len(choices)
			for _, ad := range t.Adj(id) {
				if dist[ad.Peer] == dist[ni]-1 {
					choices = append(choices, int32(ad.Link))
				}
			}
			slices.Sort(choices[row:])
		}
		c.start[ni+1] = int32(len(choices))
	}
	c.choices = choices
	return c
}

// Choices returns the equal-cost next-hop links from node toward dst.
func (tb *Table) Choices(node, dst packet.NodeID) []int32 {
	hi := tb.hostOf[dst]
	if hi < 0 {
		panic(fmt.Sprintf("routing: destination %s is not a host", tb.topo.Name(dst)))
	}
	c := tb.col(hi)
	return c.choices[c.start[node]:c.start[node+1]]
}

// PathLen returns the hop count (number of links) from src host to dst
// host along shortest paths.
func (tb *Table) PathLen(src, dst packet.NodeID) int {
	if src == dst {
		return 0
	}
	hops := 0
	cur := src
	for cur != dst {
		ch := tb.Choices(cur, dst)
		if len(ch) == 0 {
			panic("routing: no path")
		}
		l := tb.topo.Links[ch[0]]
		if l.A == cur {
			cur = l.B
		} else {
			cur = l.A
		}
		hops++
		if hops > 64 {
			panic("routing: path too long")
		}
	}
	return hops
}

// Selector picks one link among equal-cost choices for a packet.
type Selector func(pkt *packet.Packet, choices []int32) int32

// FirstPath always picks the lowest-indexed link (single-path routing).
func FirstPath() Selector {
	return func(_ *packet.Packet, choices []int32) int32 { return choices[0] }
}

// ECMP hashes the flow ID (salted) so each flow pins one path; this is
// the standard CEE load-balancing the paper's Fig 16 network uses.
func ECMP(salt uint64) Selector {
	return func(pkt *packet.Packet, choices []int32) int32 {
		h := uint64(pkt.Flow)*0x9e3779b97f4a7c15 ^ salt
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		return choices[h%uint64(len(choices))]
	}
}

// DModK selects the path by destination modulo the fan-out — the static
// deterministic scheme (Gomez et al.) the paper uses for the InfiniBand
// fat-tree. All traffic toward one destination shares the same up-path,
// concentrating congestion trees the way the paper's Fig 17 expects.
func DModK() Selector {
	return func(pkt *packet.Packet, choices []int32) int32 {
		return choices[uint32(pkt.Dst)%uint32(len(choices))]
	}
}

// resolvePorts caches the egress port for every single-choice row of a
// column. Multi-choice rows stay nil and go through the selector. Built
// per column on first routed use — O(nodes), amortized across every
// packet that ever routes to this destination — instead of the old
// eager (nodes × hosts) pre-resolution, which is exactly the quadratic
// table the lazy mode exists to avoid.
func (tb *Table) resolvePorts(c *column) {
	ports := make([]*fabric.Port, len(tb.hostOf))
	for ni := range ports {
		row := c.choices[c.start[ni]:c.start[ni+1]]
		if len(row) == 1 {
			ports[ni] = tb.net.PortOn(packet.NodeID(ni), int(row[0]))
		}
	}
	c.ports = ports
}

// Attach installs the table on a fabric network with the given selector.
// Single-choice next hops (the overwhelmingly common case outside ECMP
// fan-out stages) are resolved to port pointers once per materialized
// column, so the steady-state per-hop route lookup is two dense loads.
func (tb *Table) Attach(n *fabric.Network, sel Selector) {
	tb.net = n
	tb.sel = sel
	n.Route = func(sw packet.NodeID, pkt *packet.Packet) *fabric.Port {
		hi := tb.hostOf[pkt.Dst]
		if hi < 0 {
			panic(fmt.Sprintf("routing: destination %s is not a host", tb.topo.Name(pkt.Dst)))
		}
		c := tb.col(hi)
		if c.ports == nil {
			tb.resolvePorts(c)
		}
		if p := c.ports[sw]; p != nil {
			return p
		}
		choices := c.choices[c.start[sw]:c.start[sw+1]]
		if len(choices) == 0 {
			return nil
		}
		return n.PortOn(sw, int(tb.sel(pkt, choices)))
	}
}
