// Package routing computes forwarding tables over a topology and adapts
// them to the fabric: static shortest-path, per-flow ECMP hashing, and the
// deterministic D-mod-k scheme the paper uses for InfiniBand fat-trees.
package routing

import (
	"fmt"
	"sort"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
)

// Table holds, for every (node, destination host) pair, the sorted set of
// equal-cost next-hop links.
type Table struct {
	topo *topo.Topology
	// hostIdx maps a host NodeID to a dense index; hostOf is the same
	// mapping as a dense slice over all node IDs (-1 for non-hosts) so
	// the per-hop Choices lookup stays off the map.
	hostIdx map[packet.NodeID]int
	hostOf  []int32
	hosts   []packet.NodeID
	// next[node][hostIdx] = equal-cost link indices, ascending.
	next [][][]int32
}

// BuildShortestPath computes equal-cost shortest-path sets with a reverse
// BFS from every host.
func BuildShortestPath(t *topo.Topology) *Table {
	tb := &Table{topo: t, hostIdx: make(map[packet.NodeID]int)}
	for _, h := range t.Hosts() {
		tb.hostIdx[h] = len(tb.hosts)
		tb.hosts = append(tb.hosts, h)
	}
	nNodes := len(t.Nodes)
	nHosts := len(tb.hosts)
	tb.hostOf = make([]int32, nNodes)
	for i := range tb.hostOf {
		tb.hostOf[i] = -1
	}
	for hi, h := range tb.hosts {
		tb.hostOf[h] = int32(hi)
	}
	tb.next = make([][][]int32, nNodes)
	for i := range tb.next {
		tb.next[i] = make([][]int32, nHosts)
	}
	dist := make([]int32, nNodes)
	queue := make([]packet.NodeID, 0, nNodes)
	for hi, h := range tb.hosts {
		for i := range dist {
			dist[i] = -1
		}
		dist[h] = 0
		queue = queue[:0]
		queue = append(queue, h)
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, ad := range t.Adj(cur) {
				if dist[ad.Peer] == -1 {
					dist[ad.Peer] = dist[cur] + 1
					queue = append(queue, ad.Peer)
				}
			}
		}
		for _, n := range t.Nodes {
			if n.ID == h || dist[n.ID] == -1 {
				continue
			}
			var choices []int32
			for _, ad := range t.Adj(n.ID) {
				if dist[ad.Peer] == dist[n.ID]-1 {
					choices = append(choices, int32(ad.Link))
				}
			}
			sort.Slice(choices, func(i, j int) bool { return choices[i] < choices[j] })
			tb.next[n.ID][hi] = choices
		}
	}
	return tb
}

// Choices returns the equal-cost next-hop links from node toward dst.
func (tb *Table) Choices(node, dst packet.NodeID) []int32 {
	hi := tb.hostOf[dst]
	if hi < 0 {
		panic(fmt.Sprintf("routing: destination %s is not a host", tb.topo.Name(dst)))
	}
	return tb.next[node][hi]
}

// PathLen returns the hop count (number of links) from src host to dst
// host along shortest paths.
func (tb *Table) PathLen(src, dst packet.NodeID) int {
	if src == dst {
		return 0
	}
	hops := 0
	cur := src
	for cur != dst {
		ch := tb.Choices(cur, dst)
		if len(ch) == 0 {
			panic("routing: no path")
		}
		l := tb.topo.Links[ch[0]]
		if l.A == cur {
			cur = l.B
		} else {
			cur = l.A
		}
		hops++
		if hops > 64 {
			panic("routing: path too long")
		}
	}
	return hops
}

// Selector picks one link among equal-cost choices for a packet.
type Selector func(pkt *packet.Packet, choices []int32) int32

// FirstPath always picks the lowest-indexed link (single-path routing).
func FirstPath() Selector {
	return func(_ *packet.Packet, choices []int32) int32 { return choices[0] }
}

// ECMP hashes the flow ID (salted) so each flow pins one path; this is
// the standard CEE load-balancing the paper's Fig 16 network uses.
func ECMP(salt uint64) Selector {
	return func(pkt *packet.Packet, choices []int32) int32 {
		h := uint64(pkt.Flow)*0x9e3779b97f4a7c15 ^ salt
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		return choices[h%uint64(len(choices))]
	}
}

// DModK selects the path by destination modulo the fan-out — the static
// deterministic scheme (Gomez et al.) the paper uses for the InfiniBand
// fat-tree. All traffic toward one destination shares the same up-path,
// concentrating congestion trees the way the paper's Fig 17 expects.
func DModK() Selector {
	return func(pkt *packet.Packet, choices []int32) int32 {
		return choices[uint32(pkt.Dst)%uint32(len(choices))]
	}
}

// Attach installs the table on a fabric network with the given selector.
// Single-choice next hops (the overwhelmingly common case outside ECMP
// fan-out stages) are pre-resolved to port pointers, so the per-hop route
// lookup is one dense 2-D load instead of a choices fetch plus a PortOn
// search.
func (tb *Table) Attach(n *fabric.Network, sel Selector) {
	single := make([][]*fabric.Port, len(tb.next))
	for node := range tb.next {
		single[node] = make([]*fabric.Port, len(tb.hosts))
		for hi, choices := range tb.next[node] {
			if len(choices) == 1 {
				single[node][hi] = n.PortOn(packet.NodeID(node), int(choices[0]))
			}
		}
	}
	n.Route = func(sw packet.NodeID, pkt *packet.Packet) *fabric.Port {
		hi := tb.hostOf[pkt.Dst]
		if hi < 0 {
			panic(fmt.Sprintf("routing: destination %s is not a host", tb.topo.Name(pkt.Dst)))
		}
		if p := single[sw][hi]; p != nil {
			return p
		}
		choices := tb.next[sw][hi]
		if len(choices) == 0 {
			return nil
		}
		return n.PortOn(sw, int(sel(pkt, choices)))
	}
}
