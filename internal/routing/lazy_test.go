package routing

import (
	"fmt"
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// lazyCase pairs a topology with the structural column source that claims
// to reproduce its BFS columns (nil = BFS-fallback lazy mode only).
type lazyCase struct {
	name string
	topo *topo.Topology
	src  ColumnSource
}

func lazyCases(t *testing.T) []lazyCase {
	t.Helper()
	rate, delay := 40*units.Gbps, 4*units.Microsecond
	fig2 := topo.NewFig2(topo.Fig2Config{Rate: rate, Delay: delay, NumBursters: 15, WithB: true})
	ring := topo.NewRing(5, rate, delay)
	ft4 := topo.NewFatTree(4, rate, delay)
	ft8 := topo.NewFatTree(8, rate, delay)
	ls := topo.NewLeafSpine(4, 4, 8, rate, delay)
	return []lazyCase{
		{"fig2", fig2.Topology, nil},
		{"ring5", ring.Topology, nil},
		{"fattree-k4-bfs", ft4.Topology, nil},
		{"fattree-k4-structural", ft4.Topology, FatTreeColumns(ft4)},
		{"fattree-k8-structural", ft8.Topology, FatTreeColumns(ft8)},
		{"leafspine-4x4x8-bfs", ls.Topology, nil},
		{"leafspine-4x4x8-structural", ls.Topology, LeafSpineColumns(ls)},
	}
}

// TestLazyChoicesMatchEager asserts, for every (node, host) pair, that a
// lazy table — BFS-fallback or structural, under an eviction-forcing LRU
// cap — returns byte-identical Choices to the eager reference. Two full
// passes make every column rebuild at least once after eviction.
func TestLazyChoicesMatchEager(t *testing.T) {
	for _, tc := range lazyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			eager := BuildShortestPath(tc.topo)
			lazy := NewLazy(tc.topo, tc.src, 3) // tiny cap: force churn
			hosts := tc.topo.Hosts()
			for pass := 0; pass < 2; pass++ {
				for _, dst := range hosts {
					for _, n := range tc.topo.Nodes {
						want := eager.Choices(n.ID, dst)
						got := lazy.Choices(n.ID, dst)
						if len(want) != len(got) {
							t.Fatalf("pass %d: Choices(%s→%s): got %v, want %v",
								pass, tc.topo.Name(n.ID), tc.topo.Name(dst), got, want)
						}
						for i := range want {
							if want[i] != got[i] {
								t.Fatalf("pass %d: Choices(%s→%s)[%d]: got %d, want %d",
									pass, tc.topo.Name(n.ID), tc.topo.Name(dst), i, got[i], want[i])
							}
						}
					}
				}
			}
			if lazy.LiveColumns() > 3 {
				t.Errorf("live columns %d exceeds cap 3", lazy.LiveColumns())
			}
			if len(hosts) > 3 && lazy.Stats().Evicted == 0 {
				t.Error("no evictions despite cap < hosts")
			}
			if tc.src != nil && lazy.Stats().BFSRuns != 0 {
				t.Errorf("structural source ran %d BFS passes", lazy.Stats().BFSRuns)
			}
		})
	}
}

// TestLazySelectorsMatchEager drives every selector (FirstPath, ECMP
// across salts, DModK) over synthetic packets and asserts the lazy table
// picks the same link as the eager reference — the property that makes
// event traces independent of table mode.
func TestLazySelectorsMatchEager(t *testing.T) {
	for _, tc := range lazyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			eager := BuildShortestPath(tc.topo)
			lazy := NewLazy(tc.topo, tc.src, 4)
			sels := map[string]Selector{
				"first":   FirstPath(),
				"ecmp-1":  ECMP(1),
				"ecmp-7":  ECMP(7),
				"ecmp-99": ECMP(99),
				"dmodk":   DModK(),
			}
			hosts := tc.topo.Hosts()
			for fi := 0; fi < 8; fi++ {
				pkt := &packet.Packet{Flow: packet.FlowID(fi)}
				for _, dst := range hosts {
					pkt.Dst = dst
					for _, n := range tc.topo.Nodes {
						want := eager.Choices(n.ID, dst)
						if len(want) == 0 {
							continue
						}
						got := lazy.Choices(n.ID, dst)
						for name, sel := range sels {
							if w, g := sel(pkt, want), sel(pkt, got); w != g {
								t.Fatalf("%s at %s→%s flow %d: lazy picked link %d, eager %d",
									name, tc.topo.Name(n.ID), tc.topo.Name(dst), fi, g, w)
							}
						}
					}
				}
			}
		})
	}
}

// TestLazyPathLenMatchesEager pins PathLen (used for ideal-FCT baselines)
// across table modes.
func TestLazyPathLenMatchesEager(t *testing.T) {
	for _, tc := range lazyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			eager := BuildShortestPath(tc.topo)
			lazy := NewLazy(tc.topo, tc.src, 2)
			hosts := tc.topo.Hosts()
			for _, src := range hosts {
				for _, dst := range hosts {
					if w, g := eager.PathLen(src, dst), lazy.PathLen(src, dst); w != g {
						t.Fatalf("PathLen(%s,%s): lazy %d, eager %d",
							tc.topo.Name(src), tc.topo.Name(dst), g, w)
					}
				}
			}
		})
	}
}

// TestLazyMemoryBelowEager sanity-checks the memory accounting the
// -topo-stats flag reports: a lazy table under its cap must sit well
// below the eager estimate once the host count dwarfs the cap.
func TestLazyMemoryBelowEager(t *testing.T) {
	ft := topo.NewFatTree(8, 40*units.Gbps, 4*units.Microsecond) // 128 hosts
	lazy := NewLazy(ft.Topology, FatTreeColumns(ft), 8)
	for _, h := range ft.HostList {
		lazy.Choices(ft.Edges[0][0], h)
	}
	live, eager := lazy.LiveBytes(), lazy.EagerBytesEstimate()
	if eager <= 0 || live <= 0 {
		t.Fatalf("degenerate accounting: live=%d eager=%d", live, eager)
	}
	if live*4 > eager {
		t.Errorf("lazy table (%d B, cap 8 of 128 columns) not well below eager estimate (%d B)", live, eager)
	}
	if got := lazy.LiveColumns(); got != 8 {
		t.Errorf("live columns = %d, want cap 8", got)
	}
}

// TestEagerEstimateSideEffectFree pins that estimating does not
// materialize or evict columns.
func TestEagerEstimateSideEffectFree(t *testing.T) {
	ls := topo.NewLeafSpine(4, 2, 4, 40*units.Gbps, 4*units.Microsecond)
	lazy := NewLazy(ls.Topology, LeafSpineColumns(ls), 4)
	lazy.Choices(ls.Leaves[0], ls.HostList[3])
	before := lazy.Stats()
	liveBefore := lazy.LiveColumns()
	_ = lazy.EagerBytesEstimate()
	if lazy.Stats() != before || lazy.LiveColumns() != liveBefore {
		t.Errorf("estimate perturbed table state: %+v -> %+v", before, lazy.Stats())
	}
}

func BenchmarkLazyColumnMaterialize(b *testing.B) {
	for _, k := range []int{8, 16} {
		ft := topo.NewFatTree(k, 40*units.Gbps, 4*units.Microsecond)
		src := FatTreeColumns(ft)
		b.Run(fmt.Sprintf("structural-k%d", k), func(b *testing.B) {
			tb := NewLazy(ft.Topology, src, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tb.Choices(ft.Edges[0][0], ft.HostList[i%len(ft.HostList)])
			}
		})
	}
}
