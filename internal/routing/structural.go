// Structural column sources: fat-tree and leaf–spine next-hop columns
// derived from the builders' regular wiring instead of per-destination
// graph search. A reverse BFS over a k-ary fat-tree costs O(links) per
// destination; the structural rules below cost O(1) per (node, dst) row
// and — critically — need no per-destination BFS state, which is what
// makes lazy column materialization O(nodes) per column. The property
// tests in lazy_test.go pin these rules to the BFS reference column by
// column.
package routing

import (
	"slices"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
)

// Node roles in the structural tables.
const (
	roleHost uint8 = iota
	roleEdge
	roleAgg
	roleCore
	roleLeaf
	roleSpine
)

// fatTreeCols derives fat-tree columns. For a destination host on edge E
// in pod P the shortest-path DAG is: the destination's own edge forwards
// on the access link; any other edge fans out over all its k/2 aggs; an
// agg inside pod P forwards on its one link to E, an agg in another pod
// fans out over all its k/2 cores; a core has exactly one agg in pod P
// (agg i serves cores [i·k/2, (i+1)·k/2)); every other host forwards on
// its NIC link.
type fatTreeCols struct {
	role    []uint8
	pod     []int32 // pod of a host/edge/agg (unused for cores)
	tierIdx []int32 // edge index of a host's edge / an edge; agg index
	access  []int32 // a host's NIC link
	up      [][]int32
	// aggEdge[agg node] is indexed by edge index within the agg's pod;
	// corePod[core node] is indexed by pod.
	aggEdge [][]int32
	corePod [][]int32
}

// FatTreeColumns returns the structural ColumnSource for a fat-tree.
func FatTreeColumns(ft *topo.FatTree) ColumnSource {
	n := len(ft.Nodes)
	s := &fatTreeCols{
		role:    make([]uint8, n),
		pod:     make([]int32, n),
		tierIdx: make([]int32, n),
		access:  make([]int32, n),
		up:      make([][]int32, n),
		aggEdge: make([][]int32, n),
		corePod: make([][]int32, n),
	}
	half := ft.K / 2
	for i, c := range ft.Cores {
		s.role[c] = roleCore
		s.tierIdx[c] = int32(i)
		s.corePod[c] = make([]int32, ft.K)
	}
	for p := range ft.Edges {
		for i, e := range ft.Edges[p] {
			s.role[e] = roleEdge
			s.pod[e] = int32(p)
			s.tierIdx[e] = int32(i)
		}
		for i, a := range ft.Aggs[p] {
			s.role[a] = roleAgg
			s.pod[a] = int32(p)
			s.tierIdx[a] = int32(i)
			s.aggEdge[a] = make([]int32, half)
		}
	}
	for _, h := range ft.HostList {
		pod, edge, _ := ft.HostPos(h)
		s.role[h] = roleHost
		s.pod[h] = int32(pod)
		s.tierIdx[h] = int32(edge)
		s.access[h] = int32(ft.Adj(h)[0].Link)
	}
	for _, row := range ft.Edges {
		for _, e := range row {
			for _, ad := range ft.Adj(e) {
				if s.role[ad.Peer] == roleAgg {
					s.up[e] = append(s.up[e], int32(ad.Link))
				}
			}
			slices.Sort(s.up[e])
		}
	}
	for _, row := range ft.Aggs {
		for _, a := range row {
			for _, ad := range ft.Adj(a) {
				switch s.role[ad.Peer] {
				case roleCore:
					s.up[a] = append(s.up[a], int32(ad.Link))
					s.corePod[ad.Peer][s.pod[a]] = int32(ad.Link)
				case roleEdge:
					s.aggEdge[a][s.tierIdx[ad.Peer]] = int32(ad.Link)
				}
			}
			slices.Sort(s.up[a])
		}
	}
	return s
}

// AppendColumn implements ColumnSource.
func (s *fatTreeCols) AppendColumn(dst packet.NodeID, start []int32, choices []int32) []int32 {
	dPod, dEdge := s.pod[dst], s.tierIdx[dst]
	for ni := 0; ni < len(start)-1; ni++ {
		id := packet.NodeID(ni)
		switch s.role[ni] {
		case roleHost:
			if id != dst {
				choices = append(choices, s.access[ni])
			}
		case roleEdge:
			if s.pod[ni] == dPod && s.tierIdx[ni] == dEdge {
				choices = append(choices, s.access[dst])
			} else {
				choices = append(choices, s.up[ni]...)
			}
		case roleAgg:
			if s.pod[ni] == dPod {
				choices = append(choices, s.aggEdge[ni][dEdge])
			} else {
				choices = append(choices, s.up[ni]...)
			}
		case roleCore:
			choices = append(choices, s.corePod[ni][dPod])
		}
		start[ni+1] = int32(len(choices))
	}
	return choices
}

// leafSpineCols derives leaf–spine columns. Toward a host on leaf L: the
// destination's leaf forwards on the access link, any other leaf fans out
// over all its spine uplinks, and a spine forwards on its one link down
// to L.
type leafSpineCols struct {
	role     []uint8
	leafIdx  []int32 // a host's leaf index / a leaf's own index
	access   []int32
	up       [][]int32
	spineLnk [][]int32 // spineLnk[spine node] indexed by leaf index
}

// LeafSpineColumns returns the structural ColumnSource for a leaf–spine.
func LeafSpineColumns(ls *topo.LeafSpine) ColumnSource {
	n := len(ls.Nodes)
	s := &leafSpineCols{
		role:     make([]uint8, n),
		leafIdx:  make([]int32, n),
		access:   make([]int32, n),
		up:       make([][]int32, n),
		spineLnk: make([][]int32, n),
	}
	for _, sp := range ls.Spines {
		s.role[sp] = roleSpine
		s.spineLnk[sp] = make([]int32, len(ls.Leaves))
	}
	for i, l := range ls.Leaves {
		s.role[l] = roleLeaf
		s.leafIdx[l] = int32(i)
	}
	for i, l := range ls.Leaves {
		for _, ad := range ls.Adj(l) {
			switch s.role[ad.Peer] {
			case roleSpine:
				s.up[l] = append(s.up[l], int32(ad.Link))
				s.spineLnk[ad.Peer][i] = int32(ad.Link)
			case roleHost:
				s.role[ad.Peer] = roleHost
				s.leafIdx[ad.Peer] = int32(i)
				s.access[ad.Peer] = int32(ad.Link)
			}
		}
		slices.Sort(s.up[l])
	}
	return s
}

// AppendColumn implements ColumnSource.
func (s *leafSpineCols) AppendColumn(dst packet.NodeID, start []int32, choices []int32) []int32 {
	dLeaf := s.leafIdx[dst]
	for ni := 0; ni < len(start)-1; ni++ {
		id := packet.NodeID(ni)
		switch s.role[ni] {
		case roleHost:
			if id != dst {
				choices = append(choices, s.access[ni])
			}
		case roleLeaf:
			if s.leafIdx[ni] == dLeaf {
				choices = append(choices, s.access[dst])
			} else {
				choices = append(choices, s.up[ni]...)
			}
		case roleSpine:
			choices = append(choices, s.spineLnk[ni][dLeaf])
		}
		start[ni+1] = int32(len(choices))
	}
	return choices
}
