package routing

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

func TestChainRouting(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	b := g.AddHost("b")
	l0 := g.Connect(a, s1, units.Gbps, 0)
	l1 := g.Connect(s1, s2, units.Gbps, 0)
	l2 := g.Connect(s2, b, units.Gbps, 0)
	tb := BuildShortestPath(g)
	if ch := tb.Choices(s1, b); len(ch) != 1 || ch[0] != int32(l1) {
		t.Errorf("s1->b choices = %v, want [%d]", ch, l1)
	}
	if ch := tb.Choices(s2, b); len(ch) != 1 || ch[0] != int32(l2) {
		t.Errorf("s2->b choices = %v, want [%d]", ch, l2)
	}
	if ch := tb.Choices(s1, a); len(ch) != 1 || ch[0] != int32(l0) {
		t.Errorf("s1->a choices = %v, want [%d]", ch, l0)
	}
	if got := tb.PathLen(a, b); got != 3 {
		t.Errorf("PathLen(a,b) = %d, want 3", got)
	}
}

func TestFatTreeEqualCostPaths(t *testing.T) {
	ft := topo.NewFatTree(4, units.Gbps, 0)
	tb := BuildShortestPath(ft.Topology)
	src := ft.HostList[0]                  // pod 0
	dst := ft.HostList[len(ft.HostList)-1] // pod 3
	// At the source edge switch there are k/2 = 2 up choices.
	edge := ft.Edges[0][0]
	if ch := tb.Choices(edge, dst); len(ch) != 2 {
		t.Errorf("edge up-choices = %d, want 2", len(ch))
	}
	// Inter-pod path length: host-edge-agg-core-agg-edge-host = 6 links.
	if got := tb.PathLen(src, dst); got != 6 {
		t.Errorf("inter-pod PathLen = %d, want 6", got)
	}
	// Intra-edge path: 2 links.
	if got := tb.PathLen(ft.HostList[0], ft.HostList[1]); got != 2 {
		t.Errorf("same-edge PathLen = %d, want 2", got)
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	ft := topo.NewFatTree(4, units.Gbps, 0)
	tb := BuildShortestPath(ft.Topology)
	dst := ft.HostList[15]
	edge := ft.Edges[0][0]
	choices := tb.Choices(edge, dst)
	sel := ECMP(12345)
	p1 := &packet.Packet{Flow: 1, Dst: dst}
	p2 := &packet.Packet{Flow: 1, Dst: dst, Seq: 9}
	if sel(p1, choices) != sel(p2, choices) {
		t.Error("ECMP split one flow across paths")
	}
	// Different flows spread across paths (statistically).
	counts := map[int32]int{}
	for fid := 0; fid < 100; fid++ {
		p := &packet.Packet{Flow: packet.FlowID(fid), Dst: dst}
		counts[sel(p, choices)]++
	}
	if len(counts) != 2 {
		t.Errorf("ECMP used %d of 2 paths over 100 flows", len(counts))
	}
	for _, c := range counts {
		if c < 20 {
			t.Errorf("ECMP badly imbalanced: %v", counts)
		}
	}
}

func TestDModKConvergesPerDestination(t *testing.T) {
	ft := topo.NewFatTree(4, units.Gbps, 0)
	tb := BuildShortestPath(ft.Topology)
	dst := ft.HostList[12]
	edge := ft.Edges[0][0]
	choices := tb.Choices(edge, dst)
	sel := DModK()
	// All flows to one destination pick the same up-path.
	first := sel(&packet.Packet{Flow: 1, Dst: dst}, choices)
	for fid := 2; fid < 50; fid++ {
		if sel(&packet.Packet{Flow: packet.FlowID(fid), Dst: dst}, choices) != first {
			t.Fatal("D-mod-k split traffic to one destination")
		}
	}
	// Different destinations (on the same remote edge) can differ.
	other := ft.HostList[13]
	oc := tb.Choices(edge, other)
	if sel(&packet.Packet{Flow: 1, Dst: other}, oc) == first {
		// Not guaranteed to differ for every pair, but for adjacent host
		// IDs mod 2 it must.
		if uint32(dst)%2 == uint32(other)%2 {
			t.Skip("same residue, no assertion")
		}
		t.Error("D-mod-k did not spread destinations")
	}
}

func TestFirstPath(t *testing.T) {
	sel := FirstPath()
	if got := sel(nil, []int32{7, 3, 9}); got != 7 {
		t.Errorf("FirstPath = %d, want first element", got)
	}
}

func TestChoicesPanicsForSwitchDst(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	s1 := g.AddSwitch("s1")
	g.Connect(a, s1, units.Gbps, 0)
	tb := BuildShortestPath(g)
	defer func() {
		if recover() == nil {
			t.Error("Choices to a switch did not panic")
		}
	}()
	tb.Choices(a, s1)
}
