// Package pfc implements Priority Flow Control (IEEE 802.1Qbb), the
// hop-by-hop flow control of Converged Enhanced Ethernet.
//
// The downstream side of every link meters the buffer occupancy
// attributable to that ingress port (per priority). When it exceeds Xoff
// a PAUSE frame is sent to the upstream egress; when it falls back to Xon
// a RESUME follows. The upstream egress gate simply refuses to transmit a
// paused priority. The paper's recommended Xoff−Xon gap is 2 MTU.
package pfc

import (
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// Config parameterizes PFC on every link of a fabric.
type Config struct {
	// Xoff is the ingress occupancy (per input port, per priority) above
	// which PAUSE is sent. The paper uses 320 KB.
	Xoff units.ByteSize
	// Xon is the occupancy at which RESUME is sent. The paper uses
	// Xoff − 2 MTU.
	Xon units.ByteSize
	// Headroom is the extra physical buffer beyond Xoff that absorbs
	// in-flight traffic during the control-loop delay. Occupancy beyond
	// Xoff+Headroom is a losslessness violation and is counted.
	Headroom units.ByteSize
}

// DefaultConfig returns the paper's §3.1 CEE parameters for 40 Gbps links
// with 1000-byte MTU.
func DefaultConfig() Config {
	return Config{
		Xoff:     320 * units.KB,
		Xon:      318 * units.KB,
		Headroom: 100 * units.KB,
	}
}

// Gate is the upstream egress side: a per-priority pause flag.
type Gate struct {
	port   *fabric.Port
	paused []bool
	// pausedSince records when the current pause began (units.Forever
	// while unpaused) — the raw material for DCFIT-style initial-trigger
	// attribution: in a pause-wait cycle, the gate with the earliest
	// pausedSince is where the storm started.
	pausedSince []units.Time
	// Pauses counts PAUSE frames received.
	Pauses uint64
}

// CanSend implements fabric.TxGate.
func (g *Gate) CanSend(prio uint8, _ units.ByteSize) bool { return !g.paused[prio] }

// OnSend implements fabric.TxGate.
func (g *Gate) OnSend(uint8, units.ByteSize) {}

// HandleCtrl implements fabric.TxGate.
func (g *Gate) HandleCtrl(now units.Time, f fabric.CtrlFrame) {
	switch f.Kind {
	case fabric.CtrlPause:
		if !g.paused[f.Prio] {
			g.pausedSince[f.Prio] = now
		}
		g.paused[f.Prio] = true
		g.Pauses++
		if rec := g.port.Recorder(); rec != nil {
			rec.Record(obs.Event{At: now, Kind: obs.KindPauseOn, Port: g.port.Label(), Prio: f.Prio, Flow: -1})
		}
	case fabric.CtrlResume:
		if g.paused[f.Prio] {
			g.paused[f.Prio] = false
			g.pausedSince[f.Prio] = units.Forever
			if rec := g.port.Recorder(); rec != nil {
				rec.Record(obs.Event{At: now, Kind: obs.KindPauseOff, Port: g.port.Label(), Prio: f.Prio, Flow: -1})
			}
			g.port.GateChanged()
		}
	}
}

// Paused reports the pause state of one priority.
func (g *Gate) Paused(prio uint8) bool { return g.paused[prio] }

// PausedSince reports when the current pause of one priority began, or
// units.Forever if the priority is not paused.
func (g *Gate) PausedSince(prio uint8) units.Time { return g.pausedSince[prio] }

// Meter is the downstream ingress side: occupancy accounting and
// PAUSE/RESUME origination.
type Meter struct {
	port *fabric.Port
	cfg  Config
	occ  []units.ByteSize
	sent []bool // PAUSE outstanding per priority

	// MaxOcc is the maximum occupancy observed (any priority).
	MaxOcc units.ByteSize
	// PausesSent and ResumesSent count originated control frames.
	PausesSent, ResumesSent uint64
	// Violations counts arrivals beyond Xoff+Headroom (would-be drops in
	// a real switch; must stay zero for losslessness).
	Violations uint64
}

// OnArrive implements fabric.RxMeter.
func (m *Meter) OnArrive(now units.Time, pkt *packet.Packet) {
	prio := pkt.Priority
	m.occ[prio] += pkt.Size
	if m.occ[prio] > m.MaxOcc {
		m.MaxOcc = m.occ[prio]
	}
	if m.occ[prio] > m.cfg.Xoff+m.cfg.Headroom {
		m.Violations++
	}
	if m.occ[prio] > m.cfg.Xoff && !m.sent[prio] {
		m.sent[prio] = true
		m.PausesSent++
		m.port.SendCtrl(fabric.CtrlFrame{Kind: fabric.CtrlPause, Prio: prio})
	}
}

// OnFree implements fabric.RxMeter.
func (m *Meter) OnFree(now units.Time, pkt *packet.Packet) {
	prio := pkt.Priority
	m.occ[prio] -= pkt.Size
	if m.occ[prio] < 0 {
		panic("pfc: negative ingress occupancy")
	}
	if m.sent[prio] && m.occ[prio] <= m.cfg.Xon {
		m.sent[prio] = false
		m.ResumesSent++
		m.port.SendCtrl(fabric.CtrlFrame{Kind: fabric.CtrlResume, Prio: prio})
	}
}

// Occupancy reports current ingress occupancy for one priority.
func (m *Meter) Occupancy(prio uint8) units.ByteSize { return m.occ[prio] }

// PauseOutstanding reports whether this meter holds an un-resumed PAUSE
// for one priority. The meter keeps PAUSE outstanding exactly while
// occupancy sits above Xon — OnFree resumes the moment it drains — so
// (outstanding && occupancy <= Xon) is the Xoff-without-eventual-Xon
// violation the invariant checker looks for.
func (m *Meter) PauseOutstanding(prio uint8) bool { return m.sent[prio] }

// Install attaches PFC to every link: a Gate on every egress port and a
// Meter on every switch ingress port. Hosts receive no meter (receivers
// consume at line rate and never pause the fabric), but host egress ports
// are pausable — congestion spreading reaches the NICs, as at port P0 in
// the paper.
func Install(n *fabric.Network, cfg Config) {
	nPrio := n.Config().Priorities
	ports := n.Ports()
	// One backing array per field, subsliced per gate/meter: the pause
	// and occupancy state of the whole fabric stays contiguous, so the
	// deadlock detector's attribution pass and the invariant sweeps walk
	// cache lines instead of one small heap object per port.
	paused := make([]bool, len(ports)*nPrio)
	since := make([]units.Time, len(ports)*nPrio)
	for i := range since {
		since[i] = units.Forever
	}
	nSw := 0
	for _, p := range ports {
		if n.Topo.Nodes[p.Node()].Kind == topo.Switch {
			nSw++
		}
	}
	occ := make([]units.ByteSize, nSw*nPrio)
	sent := make([]bool, nSw*nPrio)
	mi := 0
	for i, p := range ports {
		g := &Gate{port: p, paused: paused[i*nPrio : (i+1)*nPrio], pausedSince: since[i*nPrio : (i+1)*nPrio]}
		p.AttachGate(g)
		if n.Topo.Nodes[p.Node()].Kind == topo.Switch {
			m := &Meter{
				port: p,
				cfg:  cfg,
				occ:  occ[mi*nPrio : (mi+1)*nPrio],
				sent: sent[mi*nPrio : (mi+1)*nPrio],
			}
			mi++
			p.AttachMeter(m)
		}
	}
}

// Meters returns all installed PFC meters (for assertions and stats).
func Meters(n *fabric.Network) []*Meter {
	var out []*Meter
	for _, p := range n.Ports() {
		if m, ok := p.Meter().(*Meter); ok {
			out = append(out, m)
		}
	}
	return out
}
