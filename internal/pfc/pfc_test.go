package pfc_test

import (
	"testing"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// chain builds h0 - sw0 - sw1 - r plus extra senders on sw1, so that
// congestion at sw1's egress to r spreads back to sw0 and h0.
func chain(extraSenders int, rate units.Rate, delay units.Time) (*sim.Scheduler, *fabric.Network, *host.Manager, *topo.Topology) {
	g := topo.New()
	sw0 := g.AddSwitch("sw0")
	sw1 := g.AddSwitch("sw1")
	h0 := g.AddHost("h0")
	r := g.AddHost("r")
	g.Connect(h0, sw0, rate, delay)
	g.Connect(sw0, sw1, rate, delay)
	g.Connect(r, sw1, rate, delay)
	for i := 0; i < extraSenders; i++ {
		e := g.AddHost("e" + string(rune('0'+i)))
		g.Connect(e, sw1, rate, delay)
	}
	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	routing.BuildShortestPath(g).Attach(n, routing.FirstPath())
	m := host.Install(n, host.DefaultConfig())
	return s, n, m, g
}

func TestIncastIsLosslessUnderPFC(t *testing.T) {
	s, n, m, g := chain(4, 40*units.Gbps, units.Microsecond)
	cfg := pfc.Config{Xoff: 50 * units.KB, Xon: 48 * units.KB, Headroom: 30 * units.KB}
	pfc.Install(n, cfg)
	// Five senders blast 200 KB each at line rate into one 40G port.
	var flows []*host.Flow
	flows = append(flows, m.AddFlow(g.ID("h0"), g.ID("r"), 200*units.KB, 0, host.FixedRate(40*units.Gbps)))
	for i := 0; i < 4; i++ {
		flows = append(flows, m.AddFlow(g.ID("e"+string(rune('0'+i))), g.ID("r"), 200*units.KB, 0, host.FixedRate(40*units.Gbps)))
	}
	s.Run()
	for _, f := range flows {
		if !f.Done {
			t.Fatalf("flow %d from %s did not complete", f.ID, g.Name(f.Src))
		}
		if f.BytesRxed() != 200*units.KB {
			t.Errorf("flow %d lost bytes: %v", f.ID, f.BytesRxed())
		}
	}
	for _, mt := range pfc.Meters(n) {
		if mt.Violations != 0 {
			t.Errorf("buffer violations: %d (headroom too small or PAUSE broken)", mt.Violations)
		}
	}
	// With 5:1 oversubscription PAUSE must actually have fired.
	var pauses uint64
	for _, mt := range pfc.Meters(n) {
		pauses += mt.PausesSent
	}
	if pauses == 0 {
		t.Error("no PAUSE frames sent during 5:1 incast")
	}
}

func TestPauseResumeCycleAndSpreading(t *testing.T) {
	s, n, m, g := chain(4, 40*units.Gbps, units.Microsecond)
	cfg := pfc.Config{Xoff: 50 * units.KB, Xon: 48 * units.KB, Headroom: 30 * units.KB}
	pfc.Install(n, cfg)
	m.AddFlow(g.ID("h0"), g.ID("r"), 500*units.KB, 0, host.FixedRate(40*units.Gbps))
	for i := 0; i < 4; i++ {
		m.AddFlow(g.ID("e"+string(rune('0'+i))), g.ID("r"), 500*units.KB, 0, host.FixedRate(40*units.Gbps))
	}
	s.Run()
	// Congestion must spread: sw0's egress to sw1 was paused, and the
	// pause propagated to h0's NIC.
	sw0Egress := n.PortToward(g.ID("sw0"), g.ID("sw1"))
	if sw0Egress.PauseTime == 0 {
		t.Error("congestion did not spread to sw0 (no pause time)")
	}
	h0Port := n.HostPort(g.ID("h0"))
	if h0Port.PauseTime == 0 {
		t.Error("congestion did not spread to the host NIC")
	}
	// Pauses were matched by resumes (traffic ended, queues drained).
	for _, mt := range pfc.Meters(n) {
		if mt.PausesSent != mt.ResumesSent {
			t.Errorf("pauses %d != resumes %d after drain", mt.PausesSent, mt.ResumesSent)
		}
		if mt.Occupancy(0) != 0 {
			t.Errorf("residual ingress occupancy %v", mt.Occupancy(0))
		}
	}
}

func TestNoPauseWithoutCongestion(t *testing.T) {
	s, n, m, g := chain(0, 40*units.Gbps, units.Microsecond)
	pfc.Install(n, pfc.DefaultConfig())
	f := m.AddFlow(g.ID("h0"), g.ID("r"), units.MB, 0, host.FixedRate(40*units.Gbps))
	s.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	for _, mt := range pfc.Meters(n) {
		if mt.PausesSent != 0 {
			t.Error("PAUSE sent on an uncongested path")
		}
	}
	if n.HostPort(g.ID("h0")).PauseTime != 0 {
		t.Error("host paused without congestion")
	}
}

// Occupancy stays under Xoff + response-time headroom: the classic PFC
// headroom bound (in-flight bytes during 2*MTU/C + 2*tp).
func TestOccupancyBoundedByHeadroomMath(t *testing.T) {
	s, n, m, g := chain(4, 40*units.Gbps, units.Microsecond)
	xoff := 50 * units.KB
	cfg := pfc.Config{Xoff: xoff, Xon: xoff - 2*units.KB, Headroom: 100 * units.KB}
	pfc.Install(n, cfg)
	for i := 0; i < 4; i++ {
		m.AddFlow(g.ID("e"+string(rune('0'+i))), g.ID("r"), units.MB, 0, host.FixedRate(40*units.Gbps))
	}
	m.AddFlow(g.ID("h0"), g.ID("r"), units.MB, 0, host.FixedRate(40*units.Gbps))
	s.Run()
	// tau = 2*MTU/C + 2*tp = 2*209.6ns + 2us ≈ 2.42us → ≤ ~12.1KB in
	// flight at 40G, plus one MTU of slop.
	tau := 2*units.TxTime(1048, 40*units.Gbps) + 2*units.Microsecond
	bound := xoff + units.BytesIn(tau, 40*units.Gbps) + 2*1048
	for _, mt := range pfc.Meters(n) {
		if mt.MaxOcc > bound {
			t.Errorf("max occupancy %v exceeds Xoff+headroom bound %v", mt.MaxOcc, bound)
		}
	}
}

func TestGatePausedAccessor(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	g.Connect(a, sw, units.Gbps, 0)
	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	pfc.Install(n, pfc.DefaultConfig())
	gate := n.HostPort(a).Gate().(*pfc.Gate)
	if gate.Paused(0) {
		t.Error("fresh gate is paused")
	}
	gate.HandleCtrl(0, fabric.CtrlFrame{Kind: fabric.CtrlPause, Prio: 0})
	if !gate.Paused(0) {
		t.Error("gate not paused after PAUSE")
	}
	gate.HandleCtrl(0, fabric.CtrlFrame{Kind: fabric.CtrlResume, Prio: 0})
	if gate.Paused(0) {
		t.Error("gate paused after RESUME")
	}
	if gate.Pauses != 1 {
		t.Errorf("Pauses = %d, want 1", gate.Pauses)
	}
}
