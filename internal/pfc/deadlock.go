// PFC deadlock detection: periodic cycle search over the fabric's
// pause-wait graph with DCFIT-style initial-trigger attribution.
//
// A PFC deadlock is a cycle of egress ports, each paused because the
// buffer its traffic needs downstream is held by the next port's paused
// traffic — circular buffer dependency, the classic failure mode of
// lossless Ethernet (the paper cites it as the reason PFC deployments
// fear pause propagation). The fabric already exposes the cycle search
// (Network.WaitCycles); this detector runs it on a timer, keeps only the
// cycles whose gates are PFC-paused, attributes each to the gate whose
// pause began earliest (the DCFIT idea: the initial trigger is where the
// storm entered the loop), and reports each distinct cycle once.

package pfc

import (
	"strings"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// DeadlockReport describes one detected pause-wait cycle.
type DeadlockReport struct {
	// At is when the scan found the cycle.
	At units.Time
	// Ports are the cycle members' labels, in deterministic scan order.
	Ports []string
	// Trigger is the member whose pause began earliest — the DCFIT
	// initial-trigger link.
	Trigger string
	// Since is how long Trigger had been paused when the scan ran.
	Since units.Time
}

// DeadlockDetector periodically scans for pause-wait cycles.
type DeadlockDetector struct {
	net   *fabric.Network
	timer *sim.Timer
	every units.Time
	seen  map[string]bool

	// Reports lists each distinct cycle once, in detection order.
	Reports []DeadlockReport
	// Scans counts completed scan ticks.
	Scans uint64
}

// DefaultScanEvery is the scan period when none is given. A deadlock is
// permanent once formed, so the period only bounds detection latency —
// 100 us keeps the event overhead negligible next to the dataplane.
const DefaultScanEvery = 100 * units.Microsecond

// AttachDeadlockDetector starts a periodic deadlock scan on the fabric.
// The detector re-arms itself each tick (one pending event at a time, the
// obs.Progress pattern), so horizon-bounded runs simply leave the final
// tick unexecuted.
func AttachDeadlockDetector(n *fabric.Network, every units.Time) *DeadlockDetector {
	if every <= 0 {
		every = DefaultScanEvery
	}
	d := &DeadlockDetector{net: n, every: every, seen: make(map[string]bool)}
	d.timer = sim.NewTimer(n.Sched, d.scan)
	d.timer.Arm(every)
	return d
}

// Stop cancels the scan timer.
func (d *DeadlockDetector) Stop() { d.timer.Cancel() }

// Deadlocked reports whether any cycle has been detected so far.
func (d *DeadlockDetector) Deadlocked() bool { return len(d.Reports) > 0 }

func (d *DeadlockDetector) scan() {
	d.Scans++
	for _, cyc := range d.net.WaitCycles() {
		d.report(cyc)
	}
	d.timer.Arm(d.every)
}

// report filters one wait cycle to PFC-paused members, attributes the
// initial trigger, and records it if unseen.
func (d *DeadlockDetector) report(cyc []*fabric.Port) {
	now := d.net.Sched.Now()
	var (
		trigger *fabric.Port
		since   = units.Forever
		labels  = make([]string, 0, len(cyc))
	)
	for _, p := range cyc {
		g, ok := p.Gate().(*Gate)
		if !ok {
			return // not a PFC fabric port; the CBFC detector owns it
		}
		labels = append(labels, p.Label())
		for prio := range g.paused {
			if g.paused[prio] && g.pausedSince[prio] < since {
				since = g.pausedSince[prio]
				trigger = p
			}
		}
	}
	if trigger == nil {
		// Blocked by something other than a PFC pause (e.g. a frozen
		// port): a wait cycle but not a pause-propagation deadlock.
		return
	}
	sig := strings.Join(labels, "|")
	if d.seen[sig] {
		return
	}
	d.seen[sig] = true
	d.Reports = append(d.Reports, DeadlockReport{
		At: now, Ports: labels, Trigger: trigger.Label(), Since: now - since,
	})
	if rec := d.net.Config().Rec; rec != nil {
		rec.Record(obs.Event{
			At: now, Kind: obs.KindDeadlock, Port: trigger.Label(),
			Flow: -1, Val: int64(len(labels)), Aux: int64(now - since),
		})
	}
}
