package topo

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// Fig2 is the paper's Figure-2 scenario topology (see DESIGN.md for the
// reverse-engineered wiring):
//
//	S0, S1 ── T0 ──(P1)── L0 ──(P2)── T2 ──(P3)── R1
//	       S2, B0..B3 ┘        ├── R0
//	                           └── A0..A14
//
// P0 is S1's NIC egress port.
type Fig2 struct {
	*Topology
	S0, S1, S2 packet.NodeID
	R0, R1     packet.NodeID
	A          []packet.NodeID // burst senders A0..A14
	B          []packet.NodeID // fairness senders B0..B3 (empty unless requested)
	T0, L0, T2 packet.NodeID
	// Link indices, for locating the observed ports.
	LinkS1T0, LinkT0L0, LinkL0T2, LinkT2R1 int
}

// Fig2Config parameterizes the Figure-2 builder.
type Fig2Config struct {
	// Rate is the fabric link speed (40 Gbps in the paper).
	Rate units.Rate
	// EdgeRate overrides the S0–T0 and S1–T0 link speed; zero means Rate.
	// The victim-flow scenario (§5.1.3) sets it to 20 Gbps.
	EdgeRate units.Rate
	// Delay is the per-link propagation delay (4 us in the paper).
	Delay units.Time
	// NumBursters is the number of A hosts (15 in the paper).
	NumBursters int
	// WithB adds fairness hosts B0..B3 on L0 (§5.2.4).
	WithB bool
}

// DefaultFig2Config returns the paper's §3.1 parameters.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Rate:        40 * units.Gbps,
		Delay:       4 * units.Microsecond,
		NumBursters: 15,
	}
}

// NewFig2 builds the Figure-2 topology.
func NewFig2(cfg Fig2Config) *Fig2 {
	if cfg.Rate == 0 {
		cfg.Rate = 40 * units.Gbps
	}
	if cfg.EdgeRate == 0 {
		cfg.EdgeRate = cfg.Rate
	}
	if cfg.NumBursters == 0 {
		cfg.NumBursters = 15
	}
	t := New()
	f := &Fig2{Topology: t}
	f.T0 = t.AddSwitch("T0")
	f.L0 = t.AddSwitch("L0")
	f.T2 = t.AddSwitch("T2")
	f.S0 = t.AddHost("S0")
	f.S1 = t.AddHost("S1")
	f.S2 = t.AddHost("S2")
	f.R0 = t.AddHost("R0")
	f.R1 = t.AddHost("R1")
	t.Connect(f.S0, f.T0, cfg.EdgeRate, cfg.Delay)
	f.LinkS1T0 = t.Connect(f.S1, f.T0, cfg.EdgeRate, cfg.Delay)
	t.Connect(f.S2, f.L0, cfg.Rate, cfg.Delay)
	f.LinkT0L0 = t.Connect(f.T0, f.L0, cfg.Rate, cfg.Delay)
	f.LinkL0T2 = t.Connect(f.L0, f.T2, cfg.Rate, cfg.Delay)
	t.Connect(f.R0, f.T2, cfg.Rate, cfg.Delay)
	f.LinkT2R1 = t.Connect(f.R1, f.T2, cfg.Rate, cfg.Delay)
	for i := 0; i < cfg.NumBursters; i++ {
		a := t.AddHost(fmt.Sprintf("A%d", i))
		t.Connect(a, f.T2, cfg.Rate, cfg.Delay)
		f.A = append(f.A, a)
	}
	if cfg.WithB {
		for i := 0; i < 4; i++ {
			b := t.AddHost(fmt.Sprintf("B%d", i))
			t.Connect(b, f.L0, cfg.Rate, cfg.Delay)
			f.B = append(f.B, b)
		}
	}
	return f
}

// Testbed is the compact §5.1.1 testbed topology: T0 directly connected to
// T2, with F0: S0→R0 and F1: S1→R1 sharing T0's uplink (port P0) and A0
// bursting into T2's egress to R1 (the congestion port).
type Testbed struct {
	*Topology
	S0, S1, A0, R0, R1 packet.NodeID
	T0, T2             packet.NodeID
	LinkT0T2, LinkT2R1 int
}

// NewTestbed builds the compact testbed at the given link speed and delay
// (the paper's DPDK testbed ran at 10 Gbps).
func NewTestbed(rate units.Rate, delay units.Time) *Testbed {
	t := New()
	tb := &Testbed{Topology: t}
	tb.T0 = t.AddSwitch("T0")
	tb.T2 = t.AddSwitch("T2")
	tb.S0 = t.AddHost("S0")
	tb.S1 = t.AddHost("S1")
	tb.A0 = t.AddHost("A0")
	tb.R0 = t.AddHost("R0")
	tb.R1 = t.AddHost("R1")
	t.Connect(tb.S0, tb.T0, rate, delay)
	t.Connect(tb.S1, tb.T0, rate, delay)
	tb.LinkT0T2 = t.Connect(tb.T0, tb.T2, rate, delay)
	t.Connect(tb.A0, tb.T2, rate, delay)
	t.Connect(tb.R0, tb.T2, rate, delay)
	tb.LinkT2R1 = t.Connect(tb.R1, tb.T2, rate, delay)
	return tb
}

// Ring is a unidirectional ring of n switches (s0..s{n-1}) with one host
// per switch — the canonical cyclic-buffer-dependency topology. With
// clockwise-only routing and hop-by-hop flow control, transit traffic on
// every inter-switch link waits on buffer space at the next, and the
// waits close into a loop: the deadlock-unit experiment and the PFC
// deadlock / CBFC credit-stall detectors are exercised on it.
type Ring struct {
	*Topology
	N     int
	Sw    []packet.NodeID // Sw[i] = switch s<i>
	Hosts []packet.NodeID // Hosts[i] = host h<i>, attached to Sw[i]
	// HostLinks[i] is h<i>'s access link; RingLinks[i] connects s<i> to
	// s<(i+1)%n>.
	HostLinks, RingLinks []int
}

// NewRing builds an n-switch ring (n >= 3) with uniform link rate and
// delay. Routing is the caller's choice: shortest-path stays loop-free,
// while clockwise-only forwarding (what the deadlock-unit experiment
// wires) creates the cyclic dependency on purpose.
func NewRing(n int, rate units.Rate, delay units.Time) *Ring {
	if n < 3 {
		panic(fmt.Sprintf("topo: ring requires n >= 3 switches, got %d", n))
	}
	t := New()
	r := &Ring{Topology: t, N: n}
	for i := 0; i < n; i++ {
		r.Sw = append(r.Sw, t.AddSwitch(fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < n; i++ {
		h := t.AddHost(fmt.Sprintf("h%d", i))
		r.Hosts = append(r.Hosts, h)
		r.HostLinks = append(r.HostLinks, t.Connect(h, r.Sw[i], rate, delay))
	}
	for i := 0; i < n; i++ {
		r.RingLinks = append(r.RingLinks, t.Connect(r.Sw[i], r.Sw[(i+1)%n], rate, delay))
	}
	return r
}

// SwitchOf returns the index of the switch a node sits on (its own index
// for a switch, the attachment switch for a host), or -1 if unknown.
func (r *Ring) SwitchOf(id packet.NodeID) int {
	for i := 0; i < r.N; i++ {
		if r.Sw[i] == id || r.Hosts[i] == id {
			return i
		}
	}
	return -1
}

// FatTree is a k-ary fat-tree: (k/2)^2 cores, k pods of k/2 aggregation
// and k/2 edge switches, and k^3/4 hosts. The structural metadata is kept
// so D-mod-k routing can pick deterministic up-paths.
type FatTree struct {
	*Topology
	K     int
	Cores []packet.NodeID
	// Aggs[pod][i] and Edges[pod][i], i in [0, k/2).
	Aggs, Edges [][]packet.NodeID
	// HostList[h] is the h-th host; HostPos[h] = (pod, edge, idx).
	HostList []packet.NodeID
	hostPos  map[packet.NodeID][3]int
}

// NewFatTree builds a k-ary fat-tree with uniform link rate and delay.
// k must be even and >= 2.
func NewFatTree(k int, rate units.Rate, delay units.Time) *FatTree {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree requires even k >= 2, got %d", k))
	}
	t := New()
	ft := &FatTree{Topology: t, K: k, hostPos: make(map[packet.NodeID][3]int)}
	half := k / 2
	for i := 0; i < half*half; i++ {
		ft.Cores = append(ft.Cores, t.AddSwitch(fmt.Sprintf("core%d", i)))
	}
	for p := 0; p < k; p++ {
		var aggs, edges []packet.NodeID
		for i := 0; i < half; i++ {
			aggs = append(aggs, t.AddSwitch(fmt.Sprintf("agg%d_%d", p, i)))
		}
		for i := 0; i < half; i++ {
			edges = append(edges, t.AddSwitch(fmt.Sprintf("edge%d_%d", p, i)))
		}
		ft.Aggs = append(ft.Aggs, aggs)
		ft.Edges = append(ft.Edges, edges)
		// Edge <-> agg full mesh within the pod.
		for _, e := range edges {
			for _, a := range aggs {
				t.Connect(e, a, rate, delay)
			}
		}
		// Agg i connects to cores [i*half, (i+1)*half).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				t.Connect(a, ft.Cores[i*half+j], rate, delay)
			}
		}
		// Hosts.
		for i, e := range edges {
			for h := 0; h < half; h++ {
				host := t.AddHost(fmt.Sprintf("h%d_%d_%d", p, i, h))
				t.Connect(host, e, rate, delay)
				ft.hostPos[host] = [3]int{p, i, h}
				ft.HostList = append(ft.HostList, host)
			}
		}
	}
	return ft
}

// HostPos returns the (pod, edge, index) position of a host.
func (ft *FatTree) HostPos(h packet.NodeID) (pod, edge, idx int) {
	p, ok := ft.hostPos[h]
	if !ok {
		panic("topo: not a fat-tree host")
	}
	return p[0], p[1], p[2]
}

// HostIndex returns the global index of a host in [0, k^3/4).
func (ft *FatTree) HostIndex(h packet.NodeID) int {
	pod, edge, idx := ft.HostPos(h)
	half := ft.K / 2
	return pod*half*half + edge*half + idx
}

// LeafSpine is a two-tier leaf–spine fabric.
type LeafSpine struct {
	*Topology
	Leaves, Spines []packet.NodeID
	HostList       []packet.NodeID
}

// NewLeafSpine builds a leaf–spine topology with hostsPerLeaf hosts on
// each of nLeaf leaves, each leaf connected to every one of nSpine spines.
func NewLeafSpine(nLeaf, nSpine, hostsPerLeaf int, rate units.Rate, delay units.Time) *LeafSpine {
	t := New()
	ls := &LeafSpine{Topology: t}
	for i := 0; i < nSpine; i++ {
		ls.Spines = append(ls.Spines, t.AddSwitch(fmt.Sprintf("spine%d", i)))
	}
	for i := 0; i < nLeaf; i++ {
		leaf := t.AddSwitch(fmt.Sprintf("leaf%d", i))
		ls.Leaves = append(ls.Leaves, leaf)
		for _, sp := range ls.Spines {
			t.Connect(leaf, sp, rate, delay)
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := t.AddHost(fmt.Sprintf("h%d_%d", i, h))
			t.Connect(host, leaf, rate, delay)
			ls.HostList = append(ls.HostList, host)
		}
	}
	return ls
}

// Dumbbell is the classic n-senders/n-receivers two-switch topology.
type Dumbbell struct {
	*Topology
	Senders, Receivers []packet.NodeID
	Left, Right        packet.NodeID
	Bottleneck         int // link index of the left-right link
}

// NewDumbbell builds a dumbbell with n senders and n receivers.
func NewDumbbell(n int, rate units.Rate, delay units.Time) *Dumbbell {
	t := New()
	d := &Dumbbell{Topology: t}
	d.Left = t.AddSwitch("left")
	d.Right = t.AddSwitch("right")
	d.Bottleneck = t.Connect(d.Left, d.Right, rate, delay)
	for i := 0; i < n; i++ {
		s := t.AddHost(fmt.Sprintf("snd%d", i))
		r := t.AddHost(fmt.Sprintf("rcv%d", i))
		t.Connect(s, d.Left, rate, delay)
		t.Connect(r, d.Right, rate, delay)
		d.Senders = append(d.Senders, s)
		d.Receivers = append(d.Receivers, r)
	}
	return d
}
