package topo

import (
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func TestBasicGraph(t *testing.T) {
	g := New()
	a := g.AddHost("a")
	s := g.AddSwitch("s")
	b := g.AddHost("b")
	l1 := g.Connect(a, s, 40*units.Gbps, units.Microsecond)
	l2 := g.Connect(b, s, 40*units.Gbps, units.Microsecond)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.ID("a") != a || g.Name(s) != "s" {
		t.Error("name lookup broken")
	}
	if got := g.LinkBetween(a, s); got != l1 {
		t.Errorf("LinkBetween(a,s) = %d, want %d", got, l1)
	}
	if got := g.LinkBetween(s, b); got != l2 {
		t.Errorf("LinkBetween(s,b) = %d, want %d", got, l2)
	}
	if g.LinkBetween(a, b) != -1 {
		t.Error("LinkBetween for non-adjacent nodes should be -1")
	}
	if len(g.Hosts()) != 2 || len(g.Switches()) != 1 {
		t.Error("Hosts/Switches counts wrong")
	}
	if _, ok := g.Lookup("nope"); ok {
		t.Error("Lookup of missing node returned ok")
	}
}

func TestValidateCatchesDisconnected(t *testing.T) {
	g := New()
	g.AddSwitch("s1")
	g.AddSwitch("s2")
	if err := g.Validate(); err == nil {
		t.Error("disconnected topology passed validation")
	}
}

func TestValidateCatchesMultiLinkHost(t *testing.T) {
	g := New()
	h := g.AddHost("h")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	g.Connect(h, s1, units.Gbps, 0)
	g.Connect(h, s2, units.Gbps, 0)
	g.Connect(s1, s2, units.Gbps, 0)
	if err := g.Validate(); err == nil {
		t.Error("host with two links passed validation")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	g := New()
	g.AddHost("x")
	g.AddHost("x")
}

func TestSelfLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self link did not panic")
		}
	}()
	g := New()
	s := g.AddSwitch("s")
	g.Connect(s, s, units.Gbps, 0)
}

func TestFig2Structure(t *testing.T) {
	f := NewFig2(DefaultFig2Config())
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.A) != 15 {
		t.Errorf("A hosts = %d, want 15", len(f.A))
	}
	if len(f.B) != 0 {
		t.Errorf("B hosts present without WithB")
	}
	// The observed chain exists: S1-T0, T0-L0, L0-T2, T2-R1.
	for _, pair := range [][2]string{{"S1", "T0"}, {"T0", "L0"}, {"L0", "T2"}, {"R1", "T2"}, {"S2", "L0"}, {"S0", "T0"}, {"R0", "T2"}} {
		if f.LinkBetween(f.ID(pair[0]), f.ID(pair[1])) == -1 {
			t.Errorf("missing link %s-%s", pair[0], pair[1])
		}
	}
	// A hosts are on T2.
	for _, a := range f.A {
		if f.LinkBetween(a, f.T2) == -1 {
			t.Error("burst host not on T2")
		}
	}
}

func TestFig2VictimConfig(t *testing.T) {
	cfg := DefaultFig2Config()
	cfg.EdgeRate = 20 * units.Gbps
	cfg.WithB = true
	f := NewFig2(cfg)
	if len(f.B) != 4 {
		t.Errorf("B hosts = %d, want 4", len(f.B))
	}
	s1Link := f.Links[f.LinkS1T0]
	if s1Link.Rate != 20*units.Gbps {
		t.Errorf("S1-T0 rate = %v, want 20Gbps", s1Link.Rate)
	}
	if f.Links[f.LinkL0T2].Rate != 40*units.Gbps {
		t.Errorf("fabric link rate changed by EdgeRate")
	}
}

func TestTestbed(t *testing.T) {
	tb := NewTestbed(10*units.Gbps, units.Microsecond)
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.LinkBetween(tb.T0, tb.T2) != tb.LinkT0T2 {
		t.Error("T0-T2 link index wrong")
	}
}

func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8, 10} {
		ft := NewFatTree(k, 40*units.Gbps, 4*units.Microsecond)
		if err := ft.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		if len(ft.Cores) != half*half {
			t.Errorf("k=%d: cores = %d, want %d", k, len(ft.Cores), half*half)
		}
		if len(ft.HostList) != k*k*k/4 {
			t.Errorf("k=%d: hosts = %d, want %d", k, len(ft.HostList), k*k*k/4)
		}
		nSwitch := half*half + k*k
		if len(ft.Switches()) != nSwitch {
			t.Errorf("k=%d: switches = %d, want %d", k, len(ft.Switches()), nSwitch)
		}
		// Every link count: pod internal k/2*k/2 per pod * k pods, agg-core
		// k/2*k/2*k, host links k^3/4.
		wantLinks := k*half*half + k*half*half + k*k*k/4
		if len(ft.Links) != wantLinks {
			t.Errorf("k=%d: links = %d, want %d", k, len(ft.Links), wantLinks)
		}
	}
}

func TestFatTreePaperScale(t *testing.T) {
	// The paper's Fig 16 network: k=10 fat-tree with 250 servers.
	ft := NewFatTree(10, 40*units.Gbps, 4*units.Microsecond)
	if len(ft.HostList) != 250 {
		t.Errorf("k=10 hosts = %d, want 250", len(ft.HostList))
	}
	// The paper's Fig 17 network: k=16 with 1024 servers.
	ft16 := NewFatTree(16, 40*units.Gbps, 4*units.Microsecond)
	if len(ft16.HostList) != 1024 {
		t.Errorf("k=16 hosts = %d, want 1024", len(ft16.HostList))
	}
}

func TestFatTreeHostIndexRoundTrip(t *testing.T) {
	ft := NewFatTree(4, units.Gbps, 0)
	seen := map[int]bool{}
	for _, h := range ft.HostList {
		idx := ft.HostIndex(h)
		if idx < 0 || idx >= len(ft.HostList) || seen[idx] {
			t.Fatalf("HostIndex not a bijection: %d", idx)
		}
		seen[idx] = true
		if ft.HostList[idx] != h {
			t.Fatalf("HostList[HostIndex(h)] != h")
		}
	}
}

func TestFatTreeOddKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd k did not panic")
		}
	}()
	NewFatTree(3, units.Gbps, 0)
}

func TestLeafSpine(t *testing.T) {
	ls := NewLeafSpine(4, 2, 8, 40*units.Gbps, units.Microsecond)
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ls.HostList) != 32 {
		t.Errorf("hosts = %d, want 32", len(ls.HostList))
	}
	// Each leaf connects to every spine.
	for _, l := range ls.Leaves {
		for _, s := range ls.Spines {
			if ls.LinkBetween(l, s) == -1 {
				t.Error("leaf not connected to spine")
			}
		}
	}
}

func TestDumbbell(t *testing.T) {
	d := NewDumbbell(3, 10*units.Gbps, units.Microsecond)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Senders) != 3 || len(d.Receivers) != 3 {
		t.Error("dumbbell host counts wrong")
	}
	if d.Links[d.Bottleneck].Rate != 10*units.Gbps {
		t.Error("bottleneck link wrong")
	}
}
