// Package topo describes network topologies: nodes (hosts and switches)
// and the links between them. Builders for the paper's topologies live in
// builders.go; routing tables over a Topology are computed by package
// routing.
package topo

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// NodeKind distinguishes hosts (traffic endpoints) from switches.
type NodeKind uint8

const (
	// Host is a traffic endpoint with a single NIC.
	Host NodeKind = iota
	// Switch forwards packets between its ports.
	Switch
)

func (k NodeKind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Node is a vertex in the topology.
type Node struct {
	ID   packet.NodeID
	Name string
	Kind NodeKind
}

// Link is a full-duplex edge between two nodes. Rate and Delay apply to
// each direction independently.
type Link struct {
	A, B  packet.NodeID
	Rate  units.Rate
	Delay units.Time
}

// Topology is an undirected multigraph of nodes and links. The zero value
// is empty and ready to use via the Add methods.
type Topology struct {
	Nodes  []Node
	Links  []Link
	byName map[string]packet.NodeID
	// adj[node] lists (link index, peer) pairs.
	adj [][]Adjacency
}

// Adjacency is one incident link of a node.
type Adjacency struct {
	Link int
	Peer packet.NodeID
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{byName: make(map[string]packet.NodeID)}
}

func (t *Topology) add(name string, kind NodeKind) packet.NodeID {
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("topo: duplicate node name %q", name))
	}
	id := packet.NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Name: name, Kind: kind})
	t.byName[name] = id
	t.adj = append(t.adj, nil)
	return id
}

// AddHost adds a host node and returns its ID.
func (t *Topology) AddHost(name string) packet.NodeID { return t.add(name, Host) }

// AddSwitch adds a switch node and returns its ID.
func (t *Topology) AddSwitch(name string) packet.NodeID { return t.add(name, Switch) }

// Connect adds a full-duplex link between a and b and returns its index.
func (t *Topology) Connect(a, b packet.NodeID, rate units.Rate, delay units.Time) int {
	if int(a) >= len(t.Nodes) || int(b) >= len(t.Nodes) || a < 0 || b < 0 {
		panic("topo: Connect with unknown node")
	}
	if a == b {
		panic("topo: self-link")
	}
	if rate <= 0 {
		panic("topo: non-positive link rate")
	}
	idx := len(t.Links)
	t.Links = append(t.Links, Link{A: a, B: b, Rate: rate, Delay: delay})
	t.adj[a] = append(t.adj[a], Adjacency{Link: idx, Peer: b})
	t.adj[b] = append(t.adj[b], Adjacency{Link: idx, Peer: a})
	return idx
}

// ID returns the node ID for a name, panicking if absent (topology wiring
// errors are programming errors).
func (t *Topology) ID(name string) packet.NodeID {
	id, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return id
}

// Lookup returns the node ID for a name and whether it exists.
func (t *Topology) Lookup(name string) (packet.NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// Name returns the name of a node.
func (t *Topology) Name(id packet.NodeID) string { return t.Nodes[id].Name }

// Adj returns the adjacency list of a node.
func (t *Topology) Adj(id packet.NodeID) []Adjacency { return t.adj[id] }

// Hosts returns the IDs of all host nodes in insertion order.
func (t *Topology) Hosts() []packet.NodeID {
	var out []packet.NodeID
	for _, n := range t.Nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes in insertion order.
func (t *Topology) Switches() []packet.NodeID {
	var out []packet.NodeID
	for _, n := range t.Nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// LinkBetween returns the index of a link between a and b, or -1.
func (t *Topology) LinkBetween(a, b packet.NodeID) int {
	for _, ad := range t.adj[a] {
		if ad.Peer == b {
			return ad.Link
		}
	}
	return -1
}

// Validate checks structural invariants: hosts have exactly one link and
// the graph is connected. It returns an error describing the first
// violation found.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("topology has no nodes")
	}
	for _, n := range t.Nodes {
		if n.Kind == Host && len(t.adj[n.ID]) != 1 {
			return fmt.Errorf("host %s has %d links, want 1", n.Name, len(t.adj[n.ID]))
		}
	}
	// Connectivity via BFS.
	seen := make([]bool, len(t.Nodes))
	queue := []packet.NodeID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ad := range t.adj[cur] {
			if !seen[ad.Peer] {
				seen[ad.Peer] = true
				count++
				queue = append(queue, ad.Peer)
			}
		}
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("topology is disconnected: reached %d of %d nodes", count, len(t.Nodes))
	}
	return nil
}
