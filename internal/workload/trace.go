package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// Traces let generated workloads be saved and replayed (or hand-written
// ones injected) without re-running the generators. The format is a
// CSV with a header:
//
//	src,dst,bytes,start_us
//	0,7,64000,125.500
//
// src/dst are topology node IDs (host nodes), bytes the message size and
// start_us the start time in microseconds.

// WriteTrace serializes flows to w in trace format.
func WriteTrace(w io.Writer, flows []Flow) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("src,dst,bytes,start_us\n"); err != nil {
		return err
	}
	for _, f := range flows {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%.3f\n", f.Src, f.Dst, int64(f.Size), f.Start.Micros()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace (or by hand). Blank
// lines and lines starting with '#' are ignored.
func ReadTrace(r io.Reader) ([]Flow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Flow
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "src,") {
			continue // header
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: want 4 fields, got %d", lineNo, len(parts))
		}
		src, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d src: %v", lineNo, err)
		}
		dst, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d dst: %v", lineNo, err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d bytes: %v", lineNo, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: non-positive size %d", lineNo, size)
		}
		startUs, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d start: %v", lineNo, err)
		}
		if startUs < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative start", lineNo)
		}
		out = append(out, Flow{
			Src:   packet.NodeID(src),
			Dst:   packet.NodeID(dst),
			Size:  units.ByteSize(size),
			Start: units.Time(startUs * float64(units.Microsecond)),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
