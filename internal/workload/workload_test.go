package workload

import (
	"math"
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

func TestCDFValidation(t *testing.T) {
	bad := []struct {
		size []units.ByteSize
		cum  []float64
	}{
		{[]units.ByteSize{10}, []float64{1}},                    // too short
		{[]units.ByteSize{10, 20}, []float64{0.5}},              // mismatched
		{[]units.ByteSize{10, 20}, []float64{0.5, 0.9}},         // not ending at 1
		{[]units.ByteSize{20, 10}, []float64{0.5, 1}},           // not increasing
		{[]units.ByteSize{10, 20}, []float64{0.9, 0.5}},         // decreasing cum
		{[]units.ByteSize{0, 20}, []float64{0.5, 1}},            // zero size
		{[]units.ByteSize{10, 20, 30}, []float64{-0.1, 0.5, 1}}, // negative prob
	}
	for i, b := range bad {
		if _, err := NewCDF(b.size, b.cum); err == nil {
			t.Errorf("case %d: invalid CDF accepted", i)
		}
	}
	if _, err := NewCDF([]units.ByteSize{10, 20}, []float64{0.3, 1}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestPaperQuantileAnchors(t *testing.T) {
	// §5.2.1: "90% flows of the Hadoop workload are less than 120KB. The
	// WebSearch workload is heavier, with 90% flows less than 5MB."
	if got := Hadoop().Quantile(0.9); got != 120*units.KB {
		t.Errorf("Hadoop P90 = %v, want 120KB", got)
	}
	if got := WebSearch().Quantile(0.9); got != 5*units.MB {
		t.Errorf("WebSearch P90 = %v, want 5MB", got)
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	r := rng.New(42)
	c := Hadoop()
	const n = 200000
	below120K := 0
	var sum float64
	for i := 0; i < n; i++ {
		s := c.Sample(r)
		if s < c.Size[0] || s > c.Size[len(c.Size)-1] {
			t.Fatalf("sample %v outside CDF support", s)
		}
		if s <= 120*units.KB {
			below120K++
		}
		sum += float64(s)
	}
	frac := float64(below120K) / n
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("P(size <= 120KB) = %v, want ~0.9", frac)
	}
	empMean := sum / n
	anaMean := float64(c.Mean())
	if math.Abs(empMean-anaMean)/anaMean > 0.05 {
		t.Errorf("empirical mean %v vs analytic %v", empMean, anaMean)
	}
}

func TestWebSearchHeavierThanHadoop(t *testing.T) {
	if WebSearch().Mean() <= Hadoop().Mean() {
		t.Error("WebSearch should have a heavier mean than Hadoop")
	}
}

func TestMPISizesMostlySmall(t *testing.T) {
	r := rng.New(7)
	c := MPISizes()
	const n = 100000
	at2k := 0
	for i := 0; i < n; i++ {
		s := c.Sample(r)
		if s < 2*units.KB || s > 32*units.KB {
			t.Fatalf("MPI size %v outside [2KB, 32KB]", s)
		}
		if s <= 2*units.KB {
			at2k++
		}
	}
	if float64(at2k)/n < 0.5 {
		t.Errorf("only %v of MPI messages at 2KB, paper says over 50%%", float64(at2k)/n)
	}
}

func TestIOSizes(t *testing.T) {
	r := rng.New(9)
	seen := map[units.ByteSize]int{}
	for i := 0; i < 10000; i++ {
		seen[IOSizes(r)]++
	}
	want := []units.ByteSize{512 * units.KB, units.MB, 2 * units.MB, 4 * units.MB}
	if len(seen) != 4 {
		t.Fatalf("I/O sizes drawn: %v, want the paper's four", seen)
	}
	for _, w := range want {
		if seen[w] < 2000 {
			t.Errorf("size %v under-represented: %d/10000", w, seen[w])
		}
	}
}

func hostIDs(n int) []packet.NodeID {
	out := make([]packet.NodeID, n)
	for i := range out {
		out[i] = packet.NodeID(i)
	}
	return out
}

func TestPoissonLoad(t *testing.T) {
	r := rng.New(11)
	cfg := PoissonConfig{
		Hosts:      hostIDs(16),
		CDF:        Hadoop(),
		Load:       0.6,
		AccessRate: 40 * units.Gbps,
		Horizon:    20 * units.Millisecond,
	}
	flows := Poisson(r, cfg)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var bytes float64
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatal("self-flow generated")
		}
		if f.Start < 0 || f.Start >= cfg.Horizon {
			t.Fatalf("start %v outside horizon", f.Start)
		}
		bytes += float64(f.Size)
	}
	// Offered load ≈ Load * AccessRate * nHosts * horizon.
	wantBits := cfg.Load * float64(cfg.AccessRate) * 16 * cfg.Horizon.Seconds()
	gotBits := bytes * 8
	if math.Abs(gotBits-wantBits)/wantBits > 0.25 {
		t.Errorf("offered bits = %.3g, want ~%.3g (±25%%)", gotBits, wantBits)
	}
	// Starts are sorted by construction of the arrival process.
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("arrivals not time-ordered")
		}
	}
}

func TestPoissonMaxFlows(t *testing.T) {
	r := rng.New(11)
	cfg := PoissonConfig{
		Hosts:      hostIDs(8),
		CDF:        Hadoop(),
		Load:       0.6,
		AccessRate: 40 * units.Gbps,
		Horizon:    100 * units.Millisecond,
		MaxFlows:   50,
	}
	if got := len(Poisson(r, cfg)); got != 50 {
		t.Errorf("flows = %d, want capped at 50", got)
	}
	if Poisson(r, PoissonConfig{Load: 0}) != nil {
		t.Error("zero load should generate nothing")
	}
}

func TestBurstsFixedGap(t *testing.T) {
	r := rng.New(3)
	cfg := BurstConfig{
		Senders:  hostIDs(15),
		Receiver: packet.NodeID(99),
		Size:     64 * units.KB,
		Rounds:   16,
		Gap:      200 * units.Microsecond,
	}
	flows := Bursts(r, cfg)
	if len(flows) != 15*16 {
		t.Fatalf("flows = %d, want 240", len(flows))
	}
	// All flows in a round share a start time; rounds are Gap apart.
	for i, f := range flows {
		round := i / 15
		want := units.Time(round) * 200 * units.Microsecond
		if f.Start != want {
			t.Fatalf("flow %d start %v, want %v", i, f.Start, want)
		}
		if f.Dst != cfg.Receiver || f.Size != 64*units.KB {
			t.Fatal("burst flow fields wrong")
		}
	}
}

func TestBurstsExponentialGap(t *testing.T) {
	r := rng.New(5)
	cfg := BurstConfig{
		Senders:  hostIDs(4),
		Receiver: packet.NodeID(99),
		Size:     64 * units.KB,
		Rounds:   100,
		MeanGap:  100 * units.Microsecond,
	}
	flows := Bursts(r, cfg)
	last := flows[len(flows)-1].Start
	mean := last.Seconds() / 99
	if mean < 50e-6 || mean > 200e-6 {
		t.Errorf("mean round gap = %vs, want ~100us", mean)
	}
}

func TestMPIIOMix(t *testing.T) {
	r := rng.New(13)
	hosts := hostIDs(64)
	servers := hosts[:8]
	cfg := MPIIOConfig{
		Hosts:        hosts,
		IOServers:    servers,
		IOClientFrac: 0.25,
		Messages:     20000,
		IOFrac:       0.1,
		Horizon:      10 * units.Millisecond,
	}
	flows := MPIIO(r, cfg)
	if len(flows) == 0 {
		t.Fatal("no messages")
	}
	io, mpi := 0, 0
	isServer := map[packet.NodeID]bool{}
	for _, s := range servers {
		isServer[s] = true
	}
	for _, f := range flows {
		if isServer[f.Dst] {
			io++
			if f.Size < 512*units.KB {
				t.Fatal("I/O message too small")
			}
		} else {
			mpi++
			if f.Size > 32*units.KB {
				t.Fatal("MPI message too large")
			}
		}
	}
	frac := float64(io) / float64(len(flows))
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("I/O fraction = %v, want ~0.1", frac)
	}
	// Time-ordered output.
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("messages not time-ordered")
		}
	}
	_ = mpi
}
