// Package workload generates the paper's traffic: heavy-tailed flow-size
// distributions (the Facebook Hadoop and DCTCP WebSearch CDFs used in
// §5.2), HPC MPI/IO message mixes (§5.2.2), Poisson flow arrivals at a
// target load, and synchronized incast bursts (§3.1, §5.1).
package workload

import (
	"fmt"
	"sort"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

// CDF is a piecewise-linear flow-size distribution: P(size <= Size[i]) =
// Cum[i]. Sampling inverts it with linear interpolation between points.
type CDF struct {
	Size []units.ByteSize
	Cum  []float64
}

// NewCDF validates and builds a CDF. Cum must be non-decreasing and end
// at 1; Size must be increasing and positive.
func NewCDF(size []units.ByteSize, cum []float64) (*CDF, error) {
	if len(size) != len(cum) || len(size) < 2 {
		return nil, fmt.Errorf("workload: CDF needs matching size/cum with >= 2 points")
	}
	for i := range size {
		if size[i] <= 0 {
			return nil, fmt.Errorf("workload: non-positive size %v", size[i])
		}
		if i > 0 && size[i] <= size[i-1] {
			return nil, fmt.Errorf("workload: sizes not increasing at %d", i)
		}
		if cum[i] < 0 || cum[i] > 1 || (i > 0 && cum[i] < cum[i-1]) {
			return nil, fmt.Errorf("workload: invalid cumulative prob at %d", i)
		}
	}
	if cum[len(cum)-1] != 1 {
		return nil, fmt.Errorf("workload: CDF must end at 1, got %v", cum[len(cum)-1])
	}
	return &CDF{Size: size, Cum: cum}, nil
}

func mustCDF(size []units.ByteSize, cum []float64) *CDF {
	c, err := NewCDF(size, cum)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws one flow size.
func (c *CDF) Sample(r *rng.Source) units.ByteSize {
	u := r.Float64()
	i := sort.SearchFloat64s(c.Cum, u)
	if i == 0 {
		return c.Size[0]
	}
	if i >= len(c.Cum) {
		return c.Size[len(c.Size)-1]
	}
	lo, hi := c.Cum[i-1], c.Cum[i]
	sLo, sHi := c.Size[i-1], c.Size[i]
	if hi == lo {
		return sHi
	}
	frac := (u - lo) / (hi - lo)
	return sLo + units.ByteSize(frac*float64(sHi-sLo))
}

// Mean is the distribution's expected flow size (piecewise-linear).
func (c *CDF) Mean() units.ByteSize {
	total := 0.0
	prev := 0.0
	var prevSize units.ByteSize
	first := true
	for i := range c.Size {
		if first {
			total += c.Cum[i] * float64(c.Size[i])
			first = false
		} else {
			total += (c.Cum[i] - prev) * float64(c.Size[i]+prevSize) / 2
		}
		prev = c.Cum[i]
		prevSize = c.Size[i]
	}
	return units.ByteSize(total)
}

// Quantile returns the size at cumulative probability p.
func (c *CDF) Quantile(p float64) units.ByteSize {
	i := sort.SearchFloat64s(c.Cum, p)
	if i >= len(c.Size) {
		return c.Size[len(c.Size)-1]
	}
	return c.Size[i]
}

// Hadoop returns the heavy-tailed Facebook Hadoop flow-size distribution
// (Roy et al., SIGCOMM'15), reconstructed from the published distribution
// with the paper's stated anchor: 90% of flows below 120 KB.
func Hadoop() *CDF {
	return mustCDF(
		[]units.ByteSize{130, 358, 1091, 2353, 3586, 7288, 20 * units.KiB,
			30 * units.KiB, 68 * units.KiB, 120 * units.KB, units.MiB,
			2 * units.MiB, 10 * units.MiB},
		[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1},
	)
}

// WebSearch returns the DCTCP web-search flow-size distribution (Alizadeh
// et al., SIGCOMM'10): heavier than Hadoop, 90% of flows below 5 MB as
// the paper states.
func WebSearch() *CDF {
	return mustCDF(
		[]units.ByteSize{units.KB, 10 * units.KB, 20 * units.KB, 30 * units.KB,
			50 * units.KB, 80 * units.KB, 200 * units.KB, units.MB,
			2 * units.MB, 5 * units.MB, 10 * units.MB, 30 * units.MB},
		[]float64{0, 0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 1},
	)
}

// MPISizes returns the paper's §5.2.2 MPI message mix: 2 KB to 32 KB with
// over half of the messages at 2 KB.
func MPISizes() *CDF {
	return mustCDF(
		[]units.ByteSize{2 * units.KB, 4 * units.KB, 8 * units.KB, 16 * units.KB, 32 * units.KB},
		[]float64{0.55, 0.70, 0.82, 0.92, 1},
	)
}

// IOSizes samples the paper's I/O message sizes: uniformly one of 512 KB,
// 1 MB, 2 MB or 4 MB.
func IOSizes(r *rng.Source) units.ByteSize {
	choices := []units.ByteSize{512 * units.KB, units.MB, 2 * units.MB, 4 * units.MB}
	return choices[r.Intn(len(choices))]
}

// Flow is one generated traffic demand.
type Flow struct {
	Src, Dst packet.NodeID
	Size     units.ByteSize
	Start    units.Time
}

// PoissonConfig drives a random-pairs Poisson flow generator.
type PoissonConfig struct {
	// Hosts are the candidate endpoints; Src and Dst are drawn uniformly
	// (distinct).
	Hosts []packet.NodeID
	// CDF is the flow-size distribution.
	CDF *CDF
	// Load is the average offered load on host access links, as a
	// fraction of AccessRate (the paper's Fig 16 uses 0.6).
	Load float64
	// AccessRate is the host link capacity.
	AccessRate units.Rate
	// Horizon stops generation; flows start in [0, Horizon).
	Horizon units.Time
	// MaxFlows caps the number of flows (0 = unlimited).
	MaxFlows int
}

// Poisson generates flows with exponential inter-arrival times so that
// the expected aggregate demand equals Load * AccessRate * len(Hosts).
func Poisson(r *rng.Source, cfg PoissonConfig) []Flow {
	if cfg.Load <= 0 || len(cfg.Hosts) < 2 {
		return nil
	}
	mean := float64(cfg.CDF.Mean().Bits())
	// Aggregate arrival rate (flows/sec) over the whole fabric.
	lambda := cfg.Load * float64(cfg.AccessRate) * float64(len(cfg.Hosts)) / mean
	meanGapSec := 1 / lambda
	var out []Flow
	t := units.FromSeconds(r.Exp(meanGapSec))
	for t < cfg.Horizon {
		src := cfg.Hosts[r.Intn(len(cfg.Hosts))]
		dst := cfg.Hosts[r.Intn(len(cfg.Hosts))]
		for dst == src {
			dst = cfg.Hosts[r.Intn(len(cfg.Hosts))]
		}
		out = append(out, Flow{Src: src, Dst: dst, Size: cfg.CDF.Sample(r), Start: t})
		if cfg.MaxFlows > 0 && len(out) >= cfg.MaxFlows {
			break
		}
		t += units.FromSeconds(r.Exp(meanGapSec))
	}
	return out
}

// BurstConfig drives synchronized incast rounds (§3.1: A0..A14 send
// concurrent bursts to one receiver).
type BurstConfig struct {
	// Senders burst simultaneously in every round.
	Senders []packet.NodeID
	// Receiver is the common destination.
	Receiver packet.NodeID
	// Size is the burst size per sender per round (64 KB in §3.1).
	Size units.ByteSize
	// Rounds is the number of synchronized rounds.
	Rounds int
	// Gap is the spacing between rounds: fixed when MeanGap is zero.
	Gap units.Time
	// MeanGap, if nonzero, draws exponential inter-round gaps (§5.2.1).
	MeanGap units.Time
}

// Bursts expands the rounds into flows.
func Bursts(r *rng.Source, cfg BurstConfig) []Flow {
	var out []Flow
	t := units.Time(0)
	for round := 0; round < cfg.Rounds; round++ {
		for _, s := range cfg.Senders {
			out = append(out, Flow{Src: s, Dst: cfg.Receiver, Size: cfg.Size, Start: t})
		}
		if cfg.MeanGap > 0 {
			t += units.FromSeconds(r.Exp(cfg.MeanGap.Seconds()))
		} else {
			t += cfg.Gap
		}
	}
	return out
}

// MPIIOConfig drives the paper's §5.2.2 HPC scenario: a fraction of nodes
// are I/O clients sending large messages to per-rack I/O servers, the
// rest exchange small MPI messages.
type MPIIOConfig struct {
	// Hosts are all endpoints.
	Hosts []packet.NodeID
	// IOServers receive I/O traffic.
	IOServers []packet.NodeID
	// IOClientFrac is the fraction of non-server hosts acting as I/O
	// clients (0.25 in the paper).
	IOClientFrac float64
	// Messages is the total message count; IOFrac of them are I/O.
	Messages int
	// IOFrac is the fraction of I/O messages (0.1 in the paper).
	IOFrac float64
	// Horizon spreads message starts uniformly over this window.
	Horizon units.Time
}

// MPIIO generates the HPC message mix.
func MPIIO(r *rng.Source, cfg MPIIOConfig) []Flow {
	isServer := make(map[packet.NodeID]bool, len(cfg.IOServers))
	for _, s := range cfg.IOServers {
		isServer[s] = true
	}
	var clients, mpiNodes []packet.NodeID
	for _, h := range cfg.Hosts {
		if isServer[h] {
			continue
		}
		if float64(len(clients)) < cfg.IOClientFrac*float64(len(cfg.Hosts)) {
			clients = append(clients, h)
		} else {
			mpiNodes = append(mpiNodes, h)
		}
	}
	mpi := MPISizes()
	var out []Flow
	for i := 0; i < cfg.Messages; i++ {
		start := units.Time(r.Int63n(int64(cfg.Horizon)))
		if r.Bool(cfg.IOFrac) && len(clients) > 0 && len(cfg.IOServers) > 0 {
			src := clients[r.Intn(len(clients))]
			dst := cfg.IOServers[r.Intn(len(cfg.IOServers))]
			out = append(out, Flow{Src: src, Dst: dst, Size: IOSizes(r), Start: start})
		} else if len(mpiNodes) >= 2 {
			src := mpiNodes[r.Intn(len(mpiNodes))]
			dst := mpiNodes[r.Intn(len(mpiNodes))]
			for dst == src {
				dst = mpiNodes[r.Intn(len(mpiNodes))]
			}
			out = append(out, Flow{Src: src, Dst: dst, Size: mpi.Sample(r), Start: start})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
