package workload

import (
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

func TestTraceRoundTrip(t *testing.T) {
	r := rng.New(5)
	orig := Poisson(r, PoissonConfig{
		Hosts:      hostIDs(8),
		CDF:        Hadoop(),
		Load:       0.4,
		AccessRate: 40 * units.Gbps,
		Horizon:    5 * units.Millisecond,
		MaxFlows:   200,
	})
	var sb strings.Builder
	if err := WriteTrace(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip length %d != %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Src != orig[i].Src || back[i].Dst != orig[i].Dst || back[i].Size != orig[i].Size {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, back[i], orig[i])
		}
		// Start times survive to sub-microsecond resolution.
		d := back[i].Start - orig[i].Start
		if d < -units.Nanosecond || d > units.Nanosecond {
			t.Fatalf("flow %d start drifted %v", i, d)
		}
	}
}

func TestTraceCommentsAndBlanks(t *testing.T) {
	in := `src,dst,bytes,start_us
# a comment
0,1,1000,0.000

2,3,64000,125.500
`
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(flows))
	}
	if flows[1].Size != 64*units.KB || flows[1].Start != 125500*units.Nanosecond {
		t.Errorf("parsed %+v", flows[1])
	}
}

func TestTraceErrors(t *testing.T) {
	bad := []string{
		"0,1,1000",            // missing field
		"x,1,1000,0",          // bad src
		"0,y,1000,0",          // bad dst
		"0,1,zz,0",            // bad size
		"0,1,0,0",             // zero size
		"0,1,1000,notanumber", // bad start
		"0,1,1000,-5",         // negative start
	}
	for _, line := range bad {
		if _, err := ReadTrace(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("line %q accepted", line)
		}
	}
}
