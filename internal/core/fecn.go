package core

import (
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// FECNConfig is the InfiniBand baseline detector configuration (§2.1):
// the switch marks the FECN bit when the output queue exceeds a threshold
// and the packet is not being delayed by lack of credits (the "root"
// case); credit-starved ports are "victims" and do not mark.
type FECNConfig struct {
	// Thresh is the output-queue marking threshold (50 KB in the paper).
	Thresh units.ByteSize
}

// DefaultFECNConfig returns the paper's IB threshold.
func DefaultFECNConfig() FECNConfig { return FECNConfig{Thresh: 50 * units.KB} }

// FECN is the IB CC baseline detector. Its flaw (§3.1.2): CBFC credits
// arrive periodically, so a victim port briefly looks credit-rich right
// after each FCCL update and marks packets as if it were a congestion
// root.
type FECN struct {
	cfg FECNConfig
	// Credits reports the egress gate's available credit in bytes; wired
	// to cbfc.Gate.Credits at install time.
	Credits func() int64
	// Marked counts CE marks applied.
	Marked uint64
}

// NewFECN builds the detector. credits may be nil, in which case the port
// is treated as always credit-rich (pure queue-threshold marking).
func NewFECN(cfg FECNConfig, credits func() int64) *FECN {
	return &FECN{cfg: cfg, Credits: credits}
}

// OnEnqueue implements fabric.EnqueueDetector: the root/victim test runs
// when the packet arrives at the egress queue. A packet arriving while
// the port is credit-starved is a victim (no mark); one arriving while
// credits are available — including the window right after each periodic
// FCCL on a victim port — is judged root traffic and marked. This
// arrival-time evaluation is what makes the misbehaviour *partial*
// ("partial packets of F0 are still marked", §3.1.2): only the packets
// landing in credit-rich instants are mismarked.
func (d *FECN) OnEnqueue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	if qlen <= d.cfg.Thresh {
		return
	}
	if d.Credits != nil && d.Credits() < int64(pkt.Size)+int64(pkt.Size) {
		return // victim: the packet is about to be delayed by lack of credits
	}
	before := pkt.Code
	pkt.Code = pkt.Code.MarkCE()
	if pkt.Code != before {
		d.Marked++
	}
}

// OnDequeue implements fabric.Detector (marking happened at enqueue).
func (d *FECN) OnDequeue(units.Time, *packet.Packet, units.ByteSize) {}

// OnOffStart implements fabric.Detector.
func (d *FECN) OnOffStart(units.Time) {}

// OnOffEnd implements fabric.Detector.
func (d *FECN) OnOffEnd(units.Time) {}
