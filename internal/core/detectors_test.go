package core

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

func redDq(d *RED, q units.ByteSize) *packet.Packet {
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable}
	d.OnDequeue(0, p, q)
	return p
}

func TestREDBelowKminNeverMarks(t *testing.T) {
	d := NewRED(DefaultREDConfig(), rng.New(1))
	for i := 0; i < 1000; i++ {
		if redDq(d, 4*units.KB).Code == packet.CE {
			t.Fatal("marked below Kmin")
		}
	}
	if d.Marked != 0 {
		t.Error("Marked counter nonzero")
	}
}

func TestREDAboveKmaxAlwaysMarks(t *testing.T) {
	d := NewRED(DefaultREDConfig(), rng.New(1))
	for i := 0; i < 100; i++ {
		if redDq(d, 300*units.KB).Code != packet.CE {
			t.Fatal("not marked above Kmax")
		}
	}
	if d.Marked != 100 {
		t.Errorf("Marked = %d, want 100", d.Marked)
	}
}

func TestREDLinearRampProbability(t *testing.T) {
	d := NewRED(DefaultREDConfig(), rng.New(7))
	// Midpoint of [5KB, 200KB] -> p = Pmax/2 = 0.5%.
	const n = 200000
	marks := 0
	for i := 0; i < n; i++ {
		if redDq(d, 102500).Code == packet.CE {
			marks++
		}
	}
	p := float64(marks) / n
	if p < 0.003 || p > 0.007 {
		t.Errorf("midpoint marking probability = %v, want ~0.005", p)
	}
}

func TestREDIgnoresPauseCallbacks(t *testing.T) {
	d := NewRED(DefaultREDConfig(), rng.New(1))
	d.OnOffStart(0)
	d.OnOffEnd(1)
	// Still marks purely on queue length — the documented flaw.
	if redDq(d, 300*units.KB).Code != packet.CE {
		t.Error("pause callbacks changed RED behaviour")
	}
}

func TestREDDoesNotMarkNonCapable(t *testing.T) {
	d := NewRED(DefaultREDConfig(), rng.New(1))
	p := &packet.Packet{Kind: packet.Data, Code: packet.NotCapable}
	d.OnDequeue(0, p, 300*units.KB)
	if p.Code != packet.NotCapable || d.Marked != 0 {
		t.Error("marked a non-ECN-capable packet")
	}
}

func fecnDq(d *FECN, q units.ByteSize, size units.ByteSize) *packet.Packet {
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable, Size: size}
	d.OnEnqueue(0, p, q)
	d.OnDequeue(0, p, q)
	return p
}

func TestFECNMarksRootOnly(t *testing.T) {
	credits := int64(1 << 20)
	d := NewFECN(DefaultFECNConfig(), func() int64 { return credits })
	// Queue above threshold, credits rich: root -> mark.
	if fecnDq(d, 60*units.KB, 1048).Code != packet.CE {
		t.Error("root not marked")
	}
	// Credit-starved: victim -> no mark.
	credits = 1000
	if fecnDq(d, 60*units.KB, 1048).Code == packet.CE {
		t.Error("victim marked")
	}
	// Below threshold: no mark regardless.
	credits = 1 << 20
	if fecnDq(d, 40*units.KB, 1048).Code == packet.CE {
		t.Error("marked below threshold")
	}
	if d.Marked != 1 {
		t.Errorf("Marked = %d, want 1", d.Marked)
	}
}

func TestFECNNilProbeActsCreditRich(t *testing.T) {
	d := NewFECN(DefaultFECNConfig(), nil)
	if fecnDq(d, 60*units.KB, 1048).Code != packet.CE {
		t.Error("nil-probe FECN did not mark above threshold")
	}
	d.OnOffStart(0)
	d.OnOffEnd(1)
}
