package core

import (
	"testing"
	"testing/quick"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

// driveRandom feeds a detector a random but causally valid event
// sequence (time strictly advances; OFF periods properly nested) and
// checks marking invariants at every step:
//
//  1. UE is only applied while the port is within MaxTon of an OFF end
//     (the ON-OFF regime).
//  2. CE is only applied when LAST_STATE is congestion at the mark.
//  3. During the post-undetermined drain (released, still undetermined,
//     queue above low threshold and not grown past the trend), nothing
//     is marked.
func driveRandom(seed uint64, steps int) error {
	r := rng.New(seed)
	cfg := TCDConfig{
		MaxTon:     30 * units.Microsecond,
		CongThresh: 100 * units.KB,
		LowThresh:  10 * units.KB,
	}
	d := NewTCD(cfg)
	now := units.Time(0)
	off := false
	lastOffEnd := units.Never
	var q units.ByteSize

	for i := 0; i < steps; i++ {
		now += units.Time(1 + r.Int63n(int64(20*units.Microsecond)))
		switch r.Intn(4) {
		case 0: // toggle OFF state
			if off {
				d.OnOffEnd(now)
				lastOffEnd = now
				off = false
			} else {
				d.OnOffStart(now)
				off = true
			}
		default: // dequeue with a random queue length
			if off {
				continue // a blocked port does not dequeue
			}
			q = units.ByteSize(r.Int63n(int64(400 * units.KB)))
			p := &packet.Packet{Kind: packet.Data, Code: packet.Capable}
			stateBefore := d.State()
			d.OnDequeue(now, p, q)
			ton := units.Forever
			if lastOffEnd != units.Never {
				ton = now - lastOffEnd
			}
			switch p.Code {
			case packet.UE:
				if ton >= cfg.MaxTon {
					return errAt("UE outside the ON-OFF regime", now)
				}
			case packet.CE:
				if d.State() != Congestion {
					return errAt("CE while not in congestion state", now)
				}
				if stateBefore == Undetermined && ton < cfg.MaxTon {
					return errAt("CE inside the ON-OFF regime", now)
				}
			}
			// State/mark coherence.
			if d.State() == Undetermined && p.Code == packet.CE {
				return errAt("undetermined state emitted CE", now)
			}
		}
	}
	return nil
}

type seqErr struct {
	msg string
	at  units.Time
}

func (e *seqErr) Error() string { return e.msg + " at " + e.at.String() }

func errAt(msg string, at units.Time) error { return &seqErr{msg, at} }

func TestTCDMarkingInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		if err := driveRandom(seed, 400); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: TimeIn never decreases and the state is always one of the
// three ternary values.
func TestTCDTimeAccountingProperty(t *testing.T) {
	r := rng.New(99)
	d := NewTCD(TCDConfig{MaxTon: 30 * units.Microsecond, CongThresh: 100 * units.KB, LowThresh: 10 * units.KB})
	now := units.Time(0)
	var prev [3]units.Time
	off := false
	for i := 0; i < 2000; i++ {
		now += units.Time(1 + r.Int63n(int64(10*units.Microsecond)))
		if r.Bool(0.3) {
			if off {
				d.OnOffEnd(now)
			} else {
				d.OnOffStart(now)
			}
			off = !off
		} else if !off {
			p := &packet.Packet{Kind: packet.Data, Code: packet.Capable}
			d.OnDequeue(now, p, units.ByteSize(r.Int63n(int64(300*units.KB))))
		}
		for s := NonCongestion; s <= Undetermined; s++ {
			if d.TimeIn(s) < prev[s] {
				t.Fatalf("TimeIn(%v) decreased", s)
			}
			prev[s] = d.TimeIn(s)
		}
		if d.State() > Undetermined {
			t.Fatalf("invalid state %d", d.State())
		}
	}
}
