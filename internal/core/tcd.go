package core

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// State is a ternary port state (§3.2.1).
type State uint8

const (
	// NonCongestion: continuously ON, no queue buildup.
	NonCongestion State = iota
	// Congestion: continuously ON at full output rate with queue buildup
	// not caused by OFF — the root of a congestion tree.
	Congestion
	// Undetermined: the output is in an ON-OFF pattern; queue buildup, if
	// any, has an ambiguous cause.
	Undetermined
)

func (s State) String() string {
	switch s {
	case NonCongestion:
		return "non-congestion"
	case Congestion:
		return "congestion"
	case Undetermined:
		return "undetermined"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// TCDConfig parameterizes one TCD detector instance.
type TCDConfig struct {
	// MaxTon distinguishes the ON-OFF pattern (Ton < MaxTon) from
	// continuous ON. Use MaxTonCEE for PFC fabrics and MaxTonIB (= Tc)
	// for CBFC fabrics.
	MaxTon units.Time
	// Period is T, the queue-trend observation window after a port leaves
	// the undetermined state. The paper recommends T = MaxTon; zero
	// defaults to MaxTon.
	Period units.Time
	// CongThresh is the queue length above which (together with an
	// increasing trend) the port is declared congested. The paper reuses
	// the fabric's marking threshold (200 KB for CEE, 50 KB for IB).
	CongThresh units.ByteSize
	// LowThresh is the queue length at which the port returns to the
	// non-congestion state.
	LowThresh units.ByteSize
	// TrendSlack is the minimum queue growth over one period that counts
	// as "increasing" in the post-undetermined trend check. Without it, a
	// port whose input rate exactly matches line rate (two half-rate
	// edges behind one fabric link) shows a flat-but-jittery queue after
	// an OFF era and a ±1-packet fluctuation could masquerade as growth.
	// Zero defaults to 4 KB (a few MTUs — the queue-length sampling
	// granularity of real counters).
	TrendSlack units.ByteSize
}

// Validate reports configuration errors.
func (c *TCDConfig) Validate() error {
	if c.MaxTon <= 0 {
		return fmt.Errorf("tcd: MaxTon must be positive, got %v", c.MaxTon)
	}
	if c.CongThresh <= 0 {
		return fmt.Errorf("tcd: CongThresh must be positive")
	}
	if c.LowThresh < 0 || c.LowThresh > c.CongThresh {
		return fmt.Errorf("tcd: LowThresh %v must be in [0, CongThresh %v]", c.LowThresh, c.CongThresh)
	}
	return nil
}

// Transition records one state change, for experiment traces (Figs 12/13).
type Transition struct {
	At       units.Time
	From, To State
}

// TCD is the Ternary Congestion Detection state machine of one
// (port, priority) pair — the paper's Fig 9 flowchart.
//
// Per-dequeue work is O(1) over a handful of registers: the end of the
// latest OFF period, LAST_STATE, and two queue-trend samples; exactly the
// hardware cost the paper argues for (§4.5).
type TCD struct {
	cfg TCDConfig

	state      State
	lastOffEnd units.Time
	off        bool

	// Queue-trend check after leaving the undetermined state.
	trendArmed bool
	trendStart units.Time
	trendQ     units.ByteSize

	// Stats.
	Transitions []Transition
	stateSince  units.Time
	timeIn      [3]units.Time
	// RecordTransitions enables the Transitions trace (experiments only;
	// long fat-tree runs leave it off).
	RecordTransitions bool
	// Rec, if non-nil, receives a KindTCDState event per transition;
	// Label names the detector's port in those events.
	Rec   obs.Recorder
	Label string
}

// NewTCD builds a detector. It panics on invalid configuration: detectors
// are wired at experiment setup where a loud failure is wanted.
func NewTCD(cfg TCDConfig) *TCD {
	if cfg.Period == 0 {
		cfg.Period = cfg.MaxTon
	}
	if cfg.TrendSlack == 0 {
		cfg.TrendSlack = 4 * units.KB
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TCD{cfg: cfg, state: NonCongestion, lastOffEnd: units.Never}
}

// Config returns the detector's configuration.
func (d *TCD) Config() TCDConfig { return d.cfg }

// State reports LAST_STATE.
func (d *TCD) State() State { return d.state }

// TimeIn reports the cumulative time spent in a state (up to the last
// transition; the current residence is open-ended).
func (d *TCD) TimeIn(s State) units.Time { return d.timeIn[s] }

func (d *TCD) setState(now units.Time, s State) {
	if s == d.state {
		return
	}
	d.timeIn[d.state] += now - d.stateSince
	if d.RecordTransitions {
		d.Transitions = append(d.Transitions, Transition{At: now, From: d.state, To: s})
	}
	if d.Rec != nil {
		d.Rec.Record(obs.Event{At: now, Kind: obs.KindTCDState, Port: d.Label, Flow: -1, Val: int64(s), Aux: int64(d.state)})
	}
	d.state = s
	d.stateSince = now
}

// OnOffStart implements fabric.Detector: the port was refused by its
// flow-control gate while holding traffic.
func (d *TCD) OnOffStart(now units.Time) { d.off = true }

// OnOffEnd implements fabric.Detector: the OFF period ended. This is the
// single timestamp register TCD needs (§4.1): current Ton is measured
// from here.
func (d *TCD) OnOffEnd(now units.Time) {
	d.off = false
	d.lastOffEnd = now
}

// OnDequeue implements fabric.Detector — the Fig 9 flowchart, run as each
// packet leaves the queue.
func (d *TCD) OnDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	ton := units.Forever
	if d.lastOffEnd != units.Never {
		ton = now - d.lastOffEnd
	}
	if ton < d.cfg.MaxTon {
		// ON-OFF sending pattern: transitions (3) and (6).
		d.setState(now, Undetermined)
		d.trendArmed = false
		pkt.Code = pkt.Code.MarkUE()
		return
	}
	// Continuous ON.
	if d.state == Undetermined {
		d.releasedDequeue(now, pkt, qlen)
		return
	}
	// Transitions (1) and (2): plain queue-based detection, as in lossy
	// networks, with hysteresis between the two thresholds.
	switch {
	case qlen > d.cfg.CongThresh:
		d.setState(now, Congestion)
	case qlen <= d.cfg.LowThresh:
		d.setState(now, NonCongestion)
	}
	if d.state == Congestion {
		pkt.Code = pkt.Code.MarkCE()
	}
}

// releasedDequeue handles dequeues after the port has left the ON-OFF
// pattern but LAST_STATE is still undetermined: the queue-trend check
// that decides between transitions (4) and (5). While the accumulated
// queue is draining, packets are deliberately not marked even above the
// threshold (§5.1.2).
func (d *TCD) releasedDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	if qlen <= d.cfg.LowThresh {
		// Transition (4): drained out — the buildup was caused by OFF.
		d.setState(now, NonCongestion)
		d.trendArmed = false
		return
	}
	if !d.trendArmed {
		d.trendArmed = true
		d.trendStart = now
		d.trendQ = qlen
		return
	}
	if now-d.trendStart < d.cfg.Period {
		return
	}
	if qlen > d.trendQ+d.cfg.TrendSlack && qlen > d.cfg.CongThresh {
		// Transition (5): queue grew through a whole period while the
		// port ran continuously ON — a covered congestion root emerging.
		d.setState(now, Congestion)
		d.trendArmed = false
		pkt.Code = pkt.Code.MarkCE()
		return
	}
	// Queue still falling (or not above threshold): observe another
	// period.
	d.trendStart = now
	d.trendQ = qlen
}
