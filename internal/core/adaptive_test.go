package core

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

func adaptCfg() AdaptiveConfig {
	return DefaultAdaptiveConfig(testCfg())
}

func TestAdaptiveStartsAtSeed(t *testing.T) {
	a := NewAdaptiveTCD(adaptCfg())
	if a.Threshold() != 30*units.Microsecond {
		t.Errorf("initial threshold = %v, want seed", a.Threshold())
	}
	if a.State() != NonCongestion {
		t.Errorf("initial state = %v", a.State())
	}
}

func TestAdaptiveTracksShortOnPeriods(t *testing.T) {
	a := NewAdaptiveTCD(adaptCfg())
	// Simulate a regime with 4us ON periods (much shorter than the 30us
	// seed): OFF at t, ON end at t+1us, next OFF at +4us...
	at := units.Time(0)
	for i := 0; i < 50; i++ {
		a.OnOffStart(at)
		a.OnOffEnd(at + units.Microsecond)
		at += 5 * units.Microsecond
	}
	// Threshold converges toward Margin * 4us = 8us, clamped at Floor.
	th := a.Threshold()
	if th > 10*units.Microsecond {
		t.Errorf("threshold %v did not adapt down toward 8us", th)
	}
	if th < adaptCfg().Floor {
		t.Errorf("threshold %v fell below the floor", th)
	}
	if a.Updates == 0 {
		t.Error("no threshold updates recorded")
	}
}

func TestAdaptiveCeilClamp(t *testing.T) {
	cfg := adaptCfg()
	a := NewAdaptiveTCD(cfg)
	// Enormous ON periods: threshold must stop at Ceil.
	at := units.Time(0)
	for i := 0; i < 20; i++ {
		a.OnOffStart(at)
		a.OnOffEnd(at + units.Microsecond)
		at += 10 * units.Millisecond
	}
	if a.Threshold() != cfg.Ceil {
		t.Errorf("threshold = %v, want clamped at ceil %v", a.Threshold(), cfg.Ceil)
	}
}

func TestAdaptiveDetectsLikeStatic(t *testing.T) {
	a := NewAdaptiveTCD(adaptCfg())
	// Basic ternary behaviour is preserved: OFF then quick dequeue -> UE.
	a.OnOffStart(time(10))
	a.OnOffEnd(time(15))
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable}
	a.OnDequeue(time(16), p, 50*units.KB)
	if a.State() != Undetermined || p.Code != packet.UE {
		t.Errorf("state %v code %v, want undetermined/UE", a.State(), p.Code)
	}
	if a.Inner() == nil {
		t.Error("inner accessor nil")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	for _, bad := range []AdaptiveConfig{
		{Seed: units.Microsecond, Gain: 0, Margin: 2, CongThresh: 1},
		{Seed: units.Microsecond, Gain: 0.5, Margin: 0.5, CongThresh: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid adaptive config did not panic")
				}
			}()
			NewAdaptiveTCD(bad)
		}()
	}
}

func TestNPECNSuppressesPausedMarks(t *testing.T) {
	red := NewRED(DefaultREDConfig(), rng.New(1))
	d := NewNPECN(NPECNConfig{RED: DefaultREDConfig()}, red)
	// Packet enqueued during a pause with a deep queue: RED would mark,
	// NP-ECN suppresses.
	d.OnOffStart(0)
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable, Size: 1048}
	d.OnEnqueue(1, p, 300*units.KB)
	d.OnOffEnd(2)
	d.OnDequeue(3, p, 300*units.KB)
	if p.Code == packet.CE {
		t.Error("NP-ECN marked a pause-tainted packet")
	}
	if d.Suppressed == 0 {
		t.Error("suppression not recorded")
	}
	// After the tainted bytes drain, marks resume.
	d.tainted = 0
	p2 := &packet.Packet{Kind: packet.Data, Code: packet.Capable, Size: 1048}
	d.OnDequeue(10, p2, 300*units.KB)
	if p2.Code != packet.CE {
		t.Error("NP-ECN failed to mark a clean packet above Kmax")
	}
	if d.Marked != 1 {
		t.Errorf("Marked = %d, want 1", d.Marked)
	}
}

func TestCongestedByFraction(t *testing.T) {
	if !CongestedByFraction(95, 100, 0.95) {
		t.Error("95/100 should be congested at the 95% rule")
	}
	if CongestedByFraction(94, 100, 0.95) {
		t.Error("94/100 should not be congested")
	}
	if CongestedByFraction(0, 0, 0.95) {
		t.Error("empty window should not be congested")
	}
}

// Packets already queued when the pause begins are tainted too, even if
// nothing arrives during the pause.
func TestNPECNTaintsStandingQueue(t *testing.T) {
	d := NewNPECN(NPECNConfig{RED: DefaultREDConfig()}, NewRED(DefaultREDConfig(), rng.New(2)))
	// Deep standing queue, then a pause with no arrivals.
	d.OnOffStart(5)
	d.OnOffEnd(6)
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable, Size: 1048}
	d.OnDequeue(7, p, 300*units.KB)
	if p.Code == packet.CE {
		t.Error("standing-queue packet marked despite experiencing the pause")
	}
	if d.Suppressed != 1 {
		t.Errorf("Suppressed = %d, want 1", d.Suppressed)
	}
}
