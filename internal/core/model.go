// Package core implements the paper's contribution: the ternary port
// states, the conceptual ON-OFF model that bounds the ON period of a
// flow-controlled port (Eqns 1-4), and the Ternary Congestion Detection
// state machine (Fig 9). The baseline detectors that TCD is evaluated
// against — DCQCN's RED/ECN dequeue marking and InfiniBand's FECN
// root/victim marking — live here too (ecn.go, fecn.go).
package core

import (
	"github.com/tcdnet/tcd/internal/units"
)

// ModelParams are the conceptual ON-OFF model inputs (Table 2).
type ModelParams struct {
	// C is the link capacity.
	C units.Rate
	// B1MinusB0 is the ingress-queue gap between the OFF and ON triggers
	// (Xoff − Xon in PFC; 2 MTU recommended).
	B1MinusB0 units.ByteSize
	// Tau is the response time for ON/OFF messages to take effect.
	Tau units.Time
}

// PFCResponseTime returns the paper's §4.3 response-time bound
// tau = 2*MTU/C + 2*t_p: the feedback message waits behind one MTU at
// each end and crosses the wire twice.
func PFCResponseTime(mtu units.ByteSize, c units.Rate, tp units.Time) units.Time {
	return 2*units.TxTime(mtu, c) + 2*tp
}

// Ton evaluates Eqn (1)/(2): the ON-period duration of a port regulated
// by a queue-threshold flow control, given the draining rate Rd of the
// congested flow and the congestion degree eps = (Ri-Rd)/C.
//
//	Ton = (B1-B0 + tau*Rd) / (eps*C) + tau
func Ton(p ModelParams, rd units.Rate, eps float64) units.Time {
	if eps <= 0 {
		return units.Forever
	}
	num := float64(p.B1MinusB0.Bits()) + p.Tau.Seconds()*float64(rd)
	sec := num/(eps*float64(p.C)) + p.Tau.Seconds()
	return units.FromSeconds(sec)
}

// MaxTonCEE evaluates Eqn (3): the upper bound of Ton over all congestion
// scenarios, obtained at Rd = C/2 (two flows contending is the scenario
// that maximizes a congested flow's allocation):
//
//	max(Ton) = (2*(B1-B0) + tau*C) / (2*eps*C) + tau
func MaxTonCEE(p ModelParams, eps float64) units.Time {
	if eps <= 0 {
		return units.Forever
	}
	num := 2*float64(p.B1MinusB0.Bits()) + p.Tau.Seconds()*float64(p.C)
	sec := num/(2*eps*float64(p.C)) + p.Tau.Seconds()
	return units.FromSeconds(sec)
}

// TonIB evaluates Eqn (4): under CBFC the ON period is a fraction of the
// credit-update period Tc,
//
//	Ton = Rd*Tc / (Rd + eps*C)
//
// which is strictly below Tc for any eps > 0.
func TonIB(rd units.Rate, tc units.Time, eps float64, c units.Rate) units.Time {
	den := float64(rd) + eps*float64(c)
	if den <= 0 {
		return units.Forever
	}
	return units.FromSeconds(float64(rd) * tc.Seconds() / den)
}

// MaxTonIB is the InfiniBand bound: the credit update period itself.
func MaxTonIB(tc units.Time) units.Time { return tc }

// RecommendedEps is the paper's recommended congestion degree (§4.2):
// 0.05 covers most values of Ton without deferring detection unduly.
const RecommendedEps = 0.05

// CEEParams builds ModelParams from the PFC deployment constants the
// paper uses: B1−B0 = 2 MTU, tau = 2*MTU/C + 2*t_p.
func CEEParams(mtu units.ByteSize, c units.Rate, tp units.Time) ModelParams {
	return ModelParams{
		C:         c,
		B1MinusB0: 2 * mtu,
		Tau:       PFCResponseTime(mtu, c, tp),
	}
}

// SurfacePoint is one (eps, Rd) sample of the Fig 8 surface.
type SurfacePoint struct {
	Eps float64
	Rd  units.Rate
	Ton units.Time
}

// TonSurface samples Eqn (2) over a grid of congestion degrees and
// draining rates, reproducing Fig 8 (tau = 8us, C = 40 Gbps in the
// paper's rendering). The returned points are row-major: for each eps,
// all Rd values.
func TonSurface(p ModelParams, epsGrid []float64, rdGrid []units.Rate) []SurfacePoint {
	out := make([]SurfacePoint, 0, len(epsGrid)*len(rdGrid))
	for _, e := range epsGrid {
		for _, rd := range rdGrid {
			out = append(out, SurfacePoint{Eps: e, Rd: rd, Ton: Ton(p, rd, e)})
		}
	}
	return out
}
