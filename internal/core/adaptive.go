package core

import (
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// AdaptiveConfig parameterizes the adaptive-threshold TCD variant the
// paper discusses (§6, "Design tradeoff"): instead of a pre-configured
// max(Ton) from the analytic model, the detector predicts the ON-period
// bound from the history of observed ON periods.
//
// The paper argues a static bound is sufficient and cheaper; this
// implementation exists to let that argument be tested (see the ablation
// experiment and benchmarks).
type AdaptiveConfig struct {
	// Seed is the initial max(Ton) estimate, typically the static bound.
	Seed units.Time
	// Gain is the EWMA gain applied to observed ON periods (0 < Gain <= 1).
	Gain float64
	// Margin multiplies the EWMA to form the threshold (e.g. 2.0: an ON
	// period twice the recent average means the port has left the ON-OFF
	// pattern).
	Margin float64
	// Floor and Ceil clamp the adaptive threshold; Floor guards against
	// an anomalous run of tiny ON periods collapsing the threshold, Ceil
	// against deferring detection for too long (§6 names both corner
	// cases).
	Floor, Ceil units.Time
	// Period, CongThresh, LowThresh, TrendSlack follow TCDConfig.
	Period     units.Time
	CongThresh units.ByteSize
	LowThresh  units.ByteSize
	TrendSlack units.ByteSize
}

// DefaultAdaptiveConfig derives an adaptive configuration from a static
// one: seeded at the model bound, clamped to [bound/8, 4*bound].
func DefaultAdaptiveConfig(static TCDConfig) AdaptiveConfig {
	return AdaptiveConfig{
		Seed:       static.MaxTon,
		Gain:       0.25,
		Margin:     2.0,
		Floor:      static.MaxTon / 8,
		Ceil:       4 * static.MaxTon,
		Period:     static.Period,
		CongThresh: static.CongThresh,
		LowThresh:  static.LowThresh,
		TrendSlack: static.TrendSlack,
	}
}

// AdaptiveTCD wraps the TCD state machine with a self-adjusting max(Ton):
// every completed ON period (OFF start minus the previous OFF end) feeds
// an EWMA, and the detection threshold is Margin times that average,
// clamped to [Floor, Ceil].
//
// Compared to the static detector this needs a multiplier per OFF edge
// and a second timestamp register — the added cost the paper's tradeoff
// discussion weighs against the marginal gain.
type AdaptiveTCD struct {
	inner *TCD
	cfg   AdaptiveConfig
	ewma  float64 // picoseconds
	// Updates counts threshold adjustments.
	Updates uint64
}

// NewAdaptiveTCD builds the adaptive variant.
func NewAdaptiveTCD(cfg AdaptiveConfig) *AdaptiveTCD {
	if cfg.Gain <= 0 || cfg.Gain > 1 {
		panic("core: adaptive gain must be in (0, 1]")
	}
	if cfg.Margin < 1 {
		panic("core: adaptive margin must be >= 1")
	}
	inner := NewTCD(TCDConfig{
		MaxTon:     cfg.Seed,
		Period:     cfg.Period,
		CongThresh: cfg.CongThresh,
		LowThresh:  cfg.LowThresh,
		TrendSlack: cfg.TrendSlack,
	})
	return &AdaptiveTCD{inner: inner, cfg: cfg, ewma: float64(cfg.Seed) / cfg.Margin}
}

// State reports the current ternary state.
func (a *AdaptiveTCD) State() State { return a.inner.State() }

// Threshold reports the current adaptive max(Ton).
func (a *AdaptiveTCD) Threshold() units.Time { return a.inner.cfg.MaxTon }

// Inner exposes the wrapped state machine (stats, transitions).
func (a *AdaptiveTCD) Inner() *TCD { return a.inner }

// OnOffStart implements fabric.Detector: a completed ON period ends here;
// fold it into the estimate.
func (a *AdaptiveTCD) OnOffStart(now units.Time) {
	if a.inner.lastOffEnd != units.Never {
		on := float64(now - a.inner.lastOffEnd)
		a.ewma = (1-a.cfg.Gain)*a.ewma + a.cfg.Gain*on
		th := units.Time(a.cfg.Margin * a.ewma)
		if th < a.cfg.Floor {
			th = a.cfg.Floor
		}
		if th > a.cfg.Ceil {
			th = a.cfg.Ceil
		}
		if th != a.inner.cfg.MaxTon {
			a.inner.cfg.MaxTon = th
			if a.inner.cfg.Period == 0 {
				a.inner.cfg.Period = th
			}
			a.Updates++
		}
	}
	a.inner.OnOffStart(now)
}

// OnOffEnd implements fabric.Detector.
func (a *AdaptiveTCD) OnOffEnd(now units.Time) { a.inner.OnOffEnd(now) }

// OnDequeue implements fabric.Detector.
func (a *AdaptiveTCD) OnDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	a.inner.OnDequeue(now, pkt, qlen)
}
