package core

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

func testCfg() TCDConfig {
	return TCDConfig{
		MaxTon:     30 * units.Microsecond,
		Period:     30 * units.Microsecond,
		CongThresh: 200 * units.KB,
		LowThresh:  10 * units.KB,
	}
}

func dq(d *TCD, at units.Time, q units.ByteSize) *packet.Packet {
	p := &packet.Packet{Kind: packet.Data, Code: packet.Capable}
	d.OnDequeue(at, p, q)
	return p
}

func TestFreshPortIsNonCongested(t *testing.T) {
	d := NewTCD(testCfg())
	if d.State() != NonCongestion {
		t.Errorf("initial state = %v", d.State())
	}
	p := dq(d, 0, 0)
	if p.Code != packet.Capable || d.State() != NonCongestion {
		t.Errorf("idle dequeue marked %v state %v", p.Code, d.State())
	}
}

// Transition (1): continuous ON + queue above threshold -> congestion, CE.
func TestTransitionToCongestionContinuousOn(t *testing.T) {
	d := NewTCD(testCfg())
	p := dq(d, units.Millisecond, 250*units.KB)
	if d.State() != Congestion {
		t.Fatalf("state = %v, want congestion", d.State())
	}
	if p.Code != packet.CE {
		t.Errorf("packet code = %v, want CE", p.Code)
	}
	// Hysteresis: queue between thresholds keeps marking CE.
	p2 := dq(d, units.Millisecond+time(1), 100*units.KB)
	if p2.Code != packet.CE || d.State() != Congestion {
		t.Error("hysteresis broken between thresholds")
	}
}

func time(us int64) units.Time { return units.Time(us) * units.Microsecond }

// Transition (2): congestion -> non-congestion when queue drains low.
func TestTransitionBackToNonCongestion(t *testing.T) {
	d := NewTCD(testCfg())
	dq(d, time(0), 250*units.KB)
	p := dq(d, time(1), 5*units.KB)
	if d.State() != NonCongestion {
		t.Fatalf("state = %v, want non-congestion", d.State())
	}
	if p.Code != packet.Capable {
		t.Errorf("packet marked %v after drain", p.Code)
	}
}

// Transitions (3)/(6): an OFF period puts subsequent dequeues (within
// MaxTon of the OFF end) in the undetermined state with UE marks.
func TestOffPeriodEntersUndetermined(t *testing.T) {
	d := NewTCD(testCfg())
	d.OnOffStart(time(10))
	d.OnOffEnd(time(15))
	p := dq(d, time(16), 50*units.KB)
	if d.State() != Undetermined {
		t.Fatalf("state = %v, want undetermined", d.State())
	}
	if p.Code != packet.UE {
		t.Errorf("packet code = %v, want UE", p.Code)
	}
	// Still within MaxTon of the OFF end: UE continues.
	p2 := dq(d, time(40), 60*units.KB)
	if p2.Code != packet.UE {
		t.Errorf("second packet code = %v, want UE", p2.Code)
	}
}

// Transition (4): after MaxTon expires the port runs continuously ON and
// the accumulated queue drains; packets must NOT be marked CE even above
// the threshold (§5.1.2), and the port ends non-congested.
func TestUndeterminedToNonCongestionDrain(t *testing.T) {
	d := NewTCD(testCfg())
	d.OnOffStart(time(0))
	d.OnOffEnd(time(5))
	dq(d, time(6), 300*units.KB) // undetermined
	// Released: dequeues beyond 5+30us with decreasing queue.
	q := []struct {
		at units.Time
		q  units.ByteSize
	}{
		{time(40), 280 * units.KB},
		{time(75), 200 * units.KB}, // one period later: decreased
		{time(110), 100 * units.KB},
		{time(145), 9 * units.KB}, // below LowThresh
	}
	for i, step := range q {
		p := dq(d, step.at, step.q)
		if p.Code == packet.CE {
			t.Errorf("step %d: drain marked CE at queue %v", i, step.q)
		}
	}
	if d.State() != NonCongestion {
		t.Errorf("final state = %v, want non-congestion", d.State())
	}
}

// Transition (5): after release the queue keeps GROWING through a whole
// period and exceeds the threshold -> congestion (the covered-root case,
// Fig 13).
func TestUndeterminedToCongestionGrowth(t *testing.T) {
	d := NewTCD(testCfg())
	d.RecordTransitions = true
	d.OnOffStart(time(0))
	d.OnOffEnd(time(5))
	dq(d, time(6), 150*units.KB) // undetermined
	// Released (>= 35us), queue rising.
	dq(d, time(40), 210*units.KB)      // arms trend: ref 210KB
	p := dq(d, time(75), 260*units.KB) // period elapsed, grew, > thresh
	if d.State() != Congestion {
		t.Fatalf("state = %v, want congestion", d.State())
	}
	if p.Code != packet.CE {
		t.Errorf("packet code = %v, want CE", p.Code)
	}
	// Transition log captured und->cong.
	found := false
	for _, tr := range d.Transitions {
		if tr.From == Undetermined && tr.To == Congestion {
			found = true
		}
	}
	if !found {
		t.Errorf("transitions %v missing undetermined->congestion", d.Transitions)
	}
}

// Growth below the congestion threshold must not trigger congestion.
func TestReleaseGrowthBelowThreshold(t *testing.T) {
	d := NewTCD(testCfg())
	d.OnOffStart(time(0))
	d.OnOffEnd(time(5))
	dq(d, time(6), 50*units.KB)
	dq(d, time(40), 60*units.KB)
	dq(d, time(75), 80*units.KB) // grew but below 200KB
	if d.State() == Congestion {
		t.Error("declared congestion below the threshold")
	}
}

// A new OFF during the trend check re-enters undetermined and resets the
// trend.
func TestReenterUndeterminedDuringTrend(t *testing.T) {
	d := NewTCD(testCfg())
	d.OnOffStart(time(0))
	d.OnOffEnd(time(5))
	dq(d, time(6), 150*units.KB)
	dq(d, time(40), 210*units.KB) // trend armed
	d.OnOffStart(time(45))
	d.OnOffEnd(time(50))
	p := dq(d, time(51), 260*units.KB)
	if d.State() != Undetermined || p.Code != packet.UE {
		t.Errorf("state %v code %v, want undetermined/UE", d.State(), p.Code)
	}
}

// Congestion -> undetermined (transition 6): a congested port that gets
// paused becomes undetermined.
func TestCongestionToUndetermined(t *testing.T) {
	d := NewTCD(testCfg())
	dq(d, time(0), 300*units.KB)
	if d.State() != Congestion {
		t.Fatal("setup failed")
	}
	d.OnOffStart(time(1))
	d.OnOffEnd(time(3))
	p := dq(d, time(4), 300*units.KB)
	if d.State() != Undetermined || p.Code != packet.UE {
		t.Errorf("state %v code %v after pause, want undetermined/UE", d.State(), p.Code)
	}
}

// UE must not downgrade CE (Table 1): a packet already marked CE keeps CE
// through an undetermined port.
func TestUEDoesNotDowngradeCE(t *testing.T) {
	d := NewTCD(testCfg())
	d.OnOffStart(time(0))
	d.OnOffEnd(time(5))
	p := &packet.Packet{Kind: packet.Data, Code: packet.CE}
	d.OnDequeue(time(6), p, 50*units.KB)
	if p.Code != packet.CE {
		t.Errorf("CE downgraded to %v", p.Code)
	}
}

func TestTimeInAccounting(t *testing.T) {
	d := NewTCD(testCfg())
	dq(d, time(10), 300*units.KB) // ->congestion at 10us
	dq(d, time(60), 5*units.KB)   // ->non-congestion at 60us
	if got := d.TimeIn(Congestion); got != 50*units.Microsecond {
		t.Errorf("TimeIn(congestion) = %v, want 50us", got)
	}
	if got := d.TimeIn(NonCongestion); got != 10*units.Microsecond {
		t.Errorf("TimeIn(non-congestion) = %v, want 10us", got)
	}
}

func TestPeriodDefaultsToMaxTon(t *testing.T) {
	cfg := testCfg()
	cfg.Period = 0
	d := NewTCD(cfg)
	if d.Config().Period != cfg.MaxTon {
		t.Errorf("Period = %v, want MaxTon %v", d.Config().Period, cfg.MaxTon)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []TCDConfig{
		{MaxTon: 0, CongThresh: 1, LowThresh: 0},
		{MaxTon: 1, CongThresh: 0},
		{MaxTon: 1, CongThresh: 10, LowThresh: 20},
		{MaxTon: 1, CongThresh: 10, LowThresh: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewTCD(cfg)
		}()
	}
}

func TestStateStrings(t *testing.T) {
	if NonCongestion.String() != "non-congestion" ||
		Congestion.String() != "congestion" ||
		Undetermined.String() != "undetermined" {
		t.Error("state strings wrong")
	}
	if State(7).String() != "State(7)" {
		t.Error("unknown state string wrong")
	}
}
