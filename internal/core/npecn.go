package core

import (
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// NPECNConfig parameterizes Non-PAUSE ECN, the detection mechanism of
// PCN (Cheng et al., NSDI'20) that the paper's related-work section
// contrasts with TCD: switches count packets that experienced a pause
// and mark ECN only on non-paused packets; receivers then classify a
// flow as congested when nearly all of its packets in a window are
// marked.
//
// NP-ECN is implemented here as an additional baseline so the two
// accurate-detection designs can be compared on the same scenarios
// (see the ablation experiment). Unlike TCD it is not an independent
// switch mechanism: the receiver-side fraction test is part of the
// design, so the detector also exposes the 95% rule as a helper.
type NPECNConfig struct {
	// Kmin/Kmax/Pmax follow RED.
	RED REDConfig
}

// NPECN marks like RED but suppresses marks on packets that were queued
// while the port was paused (the "non-PAUSE" rule).
type NPECN struct {
	cfg    NPECNConfig
	red    *RED
	paused bool
	// tainted is the number of bytes still queued that experienced a
	// pause (either already queued when the OFF began — captured at the
	// first dequeue after it — or arriving during it).
	tainted units.ByteSize
	// pendingTaint marks that an OFF period started and the standing
	// queue length has not been captured yet.
	pendingTaint bool
	// Marked counts CE marks applied.
	Marked uint64
	// Suppressed counts marks withheld because the packet was paused.
	Suppressed uint64
}

// NewNPECN builds the detector.
func NewNPECN(cfg NPECNConfig, red *RED) *NPECN {
	return &NPECN{cfg: cfg, red: red}
}

// OnOffStart implements fabric.Detector: everything currently queued
// becomes pause-tainted (the depth is captured at the next dequeue,
// when the queue length is visible).
func (d *NPECN) OnOffStart(now units.Time) {
	d.paused = true
	d.pendingTaint = true
}

// OnOffEnd implements fabric.Detector.
func (d *NPECN) OnOffEnd(now units.Time) { d.paused = false }

// OnEnqueue implements fabric.EnqueueDetector: remember the queue depth
// at pause time via byte accounting.
func (d *NPECN) OnEnqueue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	if d.paused {
		// Packets arriving while paused are tainted; account them so the
		// dequeue side knows how much of the queue head is tainted.
		d.tainted = qlen + pkt.Size
	}
}

// OnDequeue implements fabric.Detector: RED marking gated by the
// non-PAUSE rule.
func (d *NPECN) OnDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	if d.pendingTaint {
		// First dequeue since the OFF began: the whole standing queue
		// (qlen after removing pkt, plus pkt itself) waited through it.
		if t := qlen + pkt.Size; t > d.tainted {
			d.tainted = t
		}
		d.pendingTaint = false
	}
	pauseTainted := d.tainted > 0
	if pauseTainted {
		d.tainted -= pkt.Size
		if d.tainted < 0 {
			d.tainted = 0
		}
	}
	if d.paused {
		pauseTainted = true
	}
	before := pkt.Code
	d.red.OnDequeue(now, pkt, qlen)
	if pkt.Code != before {
		if pauseTainted {
			// Non-PAUSE rule: withhold the mark.
			pkt.Code = before
			d.Suppressed++
			return
		}
		d.Marked++
	}
}

// CongestedByFraction applies PCN's receiver rule: a flow is congested
// when at least frac (0.95 in PCN) of the packets observed in a window
// are marked.
func CongestedByFraction(marked, total int, frac float64) bool {
	if total == 0 {
		return false
	}
	return float64(marked) >= frac*float64(total)
}
