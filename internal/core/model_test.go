package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tcdnet/tcd/internal/units"
)

// §4.3: "When eps = 0.05, MTU = 1000B and tp = 1us, the typical values of
// max(Ton) for 40/100/200 Gbps networks is 34.4us / 26.96us / 24.48us."
// These are exact targets for Eqn (3).
func TestMaxTonCEEPaperValues(t *testing.T) {
	cases := []struct {
		c    units.Rate
		want float64 // microseconds
	}{
		{40 * units.Gbps, 34.4},
		{100 * units.Gbps, 26.96},
		{200 * units.Gbps, 24.48},
	}
	for _, cse := range cases {
		p := CEEParams(1000, cse.c, units.Microsecond)
		got := MaxTonCEE(p, 0.05).Micros()
		if math.Abs(got-cse.want) > 0.01 {
			t.Errorf("MaxTonCEE at %v = %.4gus, want %.4gus", cse.c, got, cse.want)
		}
	}
}

func TestPFCResponseTime(t *testing.T) {
	// 2*MTU/C + 2*tp at 40G, 1000B, 1us = 0.4us + 2us = 2.4us.
	got := PFCResponseTime(1000, 40*units.Gbps, units.Microsecond)
	if got != 2400*units.Nanosecond {
		t.Errorf("tau = %v, want 2.4us", got)
	}
}

func TestTonEqn2AgainstHand(t *testing.T) {
	// B1-B0 = 2KB, tau = 2.4us, C = 40G, Rd = 20G, eps = 0.05:
	// Ton = (16000 bits + 2.4e-6*20e9) / (0.05*40e9) + 2.4us
	//     = (16000+48000)/2e9 + 2.4us = 32us + 2.4us = 34.4us.
	p := ModelParams{C: 40 * units.Gbps, B1MinusB0: 2 * units.KB, Tau: 2400 * units.Nanosecond}
	got := Ton(p, 20*units.Gbps, 0.05)
	if math.Abs(got.Micros()-34.4) > 0.01 {
		t.Errorf("Ton = %v, want 34.4us", got)
	}
}

func TestTonUnboundedAsEpsVanishes(t *testing.T) {
	p := CEEParams(1000, 40*units.Gbps, units.Microsecond)
	if Ton(p, 20*units.Gbps, 0) != units.Forever {
		t.Error("Ton at eps=0 should be unbounded")
	}
	if MaxTonCEE(p, 0) != units.Forever {
		t.Error("MaxTonCEE at eps=0 should be unbounded")
	}
	if MaxTonCEE(p, -0.1) != units.Forever {
		t.Error("MaxTonCEE at negative eps should be unbounded")
	}
}

// Property: max(Ton) from Eqn (3) dominates Ton from Eqn (2) for every
// Rd <= C/2 — the derivation's whole point.
func TestMaxTonDominatesProperty(t *testing.T) {
	p := CEEParams(1000, 40*units.Gbps, units.Microsecond)
	f := func(rdSel, epsSel uint8) bool {
		rd := units.Rate(1+int64(rdSel)%20) * units.Gbps // 1..20G = up to C/2
		eps := 0.01 + float64(epsSel%50)/100             // 0.01..0.50
		return Ton(p, rd, eps) <= MaxTonCEE(p, eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Ton decreases as congestion degree grows, increases with Rd.
func TestTonMonotonicity(t *testing.T) {
	p := CEEParams(1000, 40*units.Gbps, units.Microsecond)
	if Ton(p, 10*units.Gbps, 0.1) >= Ton(p, 10*units.Gbps, 0.05) {
		t.Error("Ton not decreasing in eps")
	}
	if Ton(p, 5*units.Gbps, 0.05) >= Ton(p, 20*units.Gbps, 0.05) {
		t.Error("Ton not increasing in Rd")
	}
}

// Eqn (4): Ton under CBFC is strictly below Tc for any eps > 0, and
// approaches Tc as eps -> 0.
func TestTonIB(t *testing.T) {
	tc := 40 * units.Microsecond
	c := 40 * units.Gbps
	for _, eps := range []float64{0.01, 0.05, 0.2, 1} {
		got := TonIB(20*units.Gbps, tc, eps, c)
		if got >= tc {
			t.Errorf("TonIB(eps=%v) = %v, not below Tc %v", eps, got, tc)
		}
	}
	near := TonIB(20*units.Gbps, tc, 1e-9, c)
	if near < tc-units.Nanosecond {
		t.Errorf("TonIB at vanishing eps = %v, want ~Tc", near)
	}
	if MaxTonIB(tc) != tc {
		t.Error("MaxTonIB should be Tc")
	}
	if TonIB(0, tc, 0, c) != units.Forever {
		t.Error("TonIB degenerate case should be Forever")
	}
	// Hand value: Rd=20G, eps=0.05, C=40G: Ton = 20/(20+2) * Tc = 36.36us.
	got := TonIB(20*units.Gbps, tc, 0.05, c)
	if math.Abs(got.Micros()-36.3636) > 0.01 {
		t.Errorf("TonIB = %v, want 36.36us", got)
	}
}

func TestTonSurfaceShape(t *testing.T) {
	// Fig 8 parameters: tau = 8us, C = 40 Gbps.
	p := ModelParams{C: 40 * units.Gbps, B1MinusB0: 2 * units.KB, Tau: 8 * units.Microsecond}
	eps := []float64{0.01, 0.05, 0.1, 0.2}
	rd := []units.Rate{5 * units.Gbps, 10 * units.Gbps, 20 * units.Gbps}
	pts := TonSurface(p, eps, rd)
	if len(pts) != 12 {
		t.Fatalf("surface points = %d, want 12", len(pts))
	}
	// Row-major: first row is eps=0.01. Ton grows rapidly as eps shrinks.
	if pts[0].Ton <= pts[9].Ton {
		t.Error("Ton surface not increasing toward small eps")
	}
	// Within a row, Ton grows with Rd.
	if !(pts[0].Ton < pts[1].Ton && pts[1].Ton < pts[2].Ton) {
		t.Error("Ton surface not increasing in Rd within a row")
	}
}

func TestRecommendedEps(t *testing.T) {
	if RecommendedEps != 0.05 {
		t.Errorf("recommended eps = %v, paper says 0.05", RecommendedEps)
	}
}
