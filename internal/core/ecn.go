package core

import (
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

// REDConfig is the RED/ECN dequeue-marking configuration DCQCN switches
// use (the CEE baseline detector in §2.1 and §3.1).
type REDConfig struct {
	// Kmin is the queue length below which nothing is marked.
	Kmin units.ByteSize
	// Kmax is the queue length above which every packet is marked.
	Kmax units.ByteSize
	// Pmax is the marking probability at Kmax.
	Pmax float64
}

// DefaultREDConfig returns the DCQCN-recommended parameters the paper
// uses: Kmin 5 KB, Kmax 200 KB, Pmax 1%.
func DefaultREDConfig() REDConfig {
	return REDConfig{Kmin: 5 * units.KB, Kmax: 200 * units.KB, Pmax: 0.01}
}

// RED is the baseline CEE detector: instantaneous-queue RED marking at
// dequeue. It is oblivious to PAUSE — the defect the paper demonstrates:
// queue buildup caused by OFF periods is marked exactly like congestion.
type RED struct {
	cfg REDConfig
	rnd *rng.Source
	// Marked counts CE marks applied.
	Marked uint64
}

// NewRED builds the detector with its own random stream.
func NewRED(cfg REDConfig, rnd *rng.Source) *RED {
	return &RED{cfg: cfg, rnd: rnd}
}

// OnDequeue implements fabric.Detector.
func (d *RED) OnDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize) {
	mark := false
	switch {
	case qlen <= d.cfg.Kmin:
	case qlen >= d.cfg.Kmax:
		mark = true
	default:
		p := d.cfg.Pmax * float64(qlen-d.cfg.Kmin) / float64(d.cfg.Kmax-d.cfg.Kmin)
		mark = d.rnd.Bool(p)
	}
	if mark {
		before := pkt.Code
		pkt.Code = pkt.Code.MarkCE()
		if pkt.Code != before {
			d.Marked++
		}
	}
}

// OnOffStart implements fabric.Detector (ECN ignores pause state — that
// is precisely its flaw).
func (d *RED) OnOffStart(units.Time) {}

// OnOffEnd implements fabric.Detector.
func (d *RED) OnOffEnd(units.Time) {}
