// Package sim provides a deterministic discrete-event scheduler.
//
// All simulator components share one Scheduler. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via
// a monotonically increasing sequence number), which makes every run
// reproducible regardless of map iteration order or GC timing.
//
// The queue is a hybrid of a two-level hierarchical timing wheel and an
// indexed four-ary min-heap. Events aimed inside the wheel horizon
// (~34 ms of simulated time) are filed into power-of-two time slots with
// O(1) insert and O(1) cancel — no sift, no comparison — and linked
// intrusively through the slot table, so the wheel itself allocates
// nothing per event. The heap holds only the "current band" (events in
// the time bucket the clock is in, which is where ordering actually
// matters) plus the rare timers beyond the wheel horizon; because the
// wheel absorbs the bulk of pending events, the heap stays a few entries
// deep and its O(log n) operations run at small n. As the clock advances
// bucket by bucket, wheel cohorts flush into the heap, which re-sorts
// them by (time, sequence) — making batched delivery bit-identical to the
// fully sorted order a single global heap would produce.
//
// Every scheduled event gets an EventID, and Cancel/Reschedule remove or
// move the event in place wherever it lives (heap index or wheel slot
// list) instead of leaving dead "ghost" entries queued until their fire
// time. The heap holds only pointer-free keys (time, sequence, slot) —
// sift moves are plain memmoves with no write barriers — while callbacks
// live in the slot table and never move. Hot emitters schedule a
// preallocated func(arg) + arg pair (AtArg/AfterArg) instead of minting a
// fresh closure per event.
package sim

import (
	"fmt"
	"math/bits"

	"github.com/tcdnet/tcd/internal/units"
)

// EventID is a stable handle for a scheduled event, returned by At/After
// and their Arg variants. It stays valid until the event fires or is
// cancelled; using it afterwards is safe (Cancel/Reschedule report false)
// because the handle carries a generation that slot reuse invalidates.
type EventID uint64

// NoEvent is the zero EventID; no live event ever has it.
const NoEvent EventID = 0

// Wheel geometry. Level 0 buckets are 2^l0GranBits ps (~8.2 ns) wide —
// below the median event gap of a busy fig3-scale run (~14 ns), so most
// buckets hold zero or one event and dispatch takes the singleton fast
// path in advance — and level 1 buckets span one full level-0 rotation.
// Both levels have 2^wheelBits slots:
//
//	level 0: 2048 x 8.192 ns  -> horizon ~16.8 us
//	level 1: 2048 x 16.8 us   -> horizon ~34.4 ms
//
// Events beyond level 1 overflow into the heap. The per-level slot
// arrays are plain uint32 list heads (8 KB per level); event linkage
// lives in the slot table, so wheel residency costs no allocation.
// The granularity was picked empirically: 2^12..2^16 are within a few
// percent of each other on fig3, coarser buckets lose the singleton
// fast path, finer ones pay more empty-bucket advances.
const (
	l0GranBits = 13
	wheelBits  = 11
	wheelSize  = 1 << wheelBits
	wheelMask  = wheelSize - 1
	l1GranBits = l0GranBits + wheelBits
)

// noIdx terminates the intrusive per-bucket lists.
const noIdx = ^uint32(0)

// key is one heap entry: the sort key plus the slot holding the payload.
// It is deliberately pointer-free (sift moves are barrier-free copies)
// and packed to 16 bytes — seq in the high word of ss, slot in the low —
// so one four-child group occupies exactly one 64-byte cache line.
type key struct {
	at units.Time
	ss uint64 // seq<<32 | slot
}

func (k *key) slotIdx() uint32 { return uint32(k.ss) }

// pad is the heap root's index. Rooting the four-ary heap at 3 instead
// of 0 (indices 0-2 are unused dummies) makes every child group
// [4i-8, 4i-5] start at a multiple-of-64-byte offset: with 16-byte keys
// the four children a sift compares live in one cache line instead of
// always straddling two, and the parent/child index math loses its
// root special case (parent(i) = (i+8)>>2 uniformly).
const pad = 3

// less orders events by (time, sequence). The sequence is the low 32 bits
// of a monotone counter compared with wraparound arithmetic: the order of
// two equal-time events is FIFO whenever their schedule calls are within
// 2^31 of each other. Exceeding that would take two events aimed at the
// same picosecond scheduled more than two billion events apart — far
// beyond any run here — and even then the order stays deterministic.
func less(a, b *key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return int32(uint32(a.ss>>32)-uint32(b.ss>>32)) < 0
}

// slotLoc is one handle's location record. idx encodes where the event
// currently lives:
//
//	idx >= 0            heap, at heap index idx (kept in sync by every sift)
//	idx == -1           dead (fired, cancelled, or never scheduled)
//	idx <= -2           wheel: level 0 slot -(idx+2), or level 1 slot
//	                    -(idx+2)-wheelSize
//
// Wheel-resident events keep their fire time and sequence here (at, sq)
// and are doubly linked through next/prev, so insert and cancel are O(1)
// pointer splices and flushing a bucket rebuilds heap keys without
// touching any per-bucket storage. gen is the generation outstanding
// EventIDs must match.
//
// Locations are deliberately split from payloads (slotFn): every sift
// writes a location backpointer and every wheel splice touches two or
// three location records at effectively random slot indices, so halving
// the record doubles how many of those scattered touches the caches
// absorb. The payload is only read once, at dispatch.
type slotLoc struct {
	idx  int32
	gen  uint32
	at   units.Time
	sq   uint32
	next uint32
	prev uint32
}

// slotFn is one handle's event payload. Exactly one of fn/afn is set:
// fn is the closure form, afn+arg the typed-argument form used by
// per-packet hot paths (a pointer-shaped arg boxes into the interface
// without allocating). The payload is written once at schedule time and
// cleared at release.
type slotFn struct {
	fn  func()
	afn func(any)
	arg any
}

// Scheduler is a discrete-event executor. The zero value is not usable;
// call New.
type Scheduler struct {
	now units.Time
	seq uint64
	// bandEnd is the exclusive end of the current time band: heap events
	// with at < bandEnd are runnable without consulting the wheel. It is
	// the end of level-0 bucket curB (units.Forever in heap-only mode).
	bandEnd units.Time
	// heap is a four-ary min-heap of pointer-free keys holding the
	// current band plus events beyond the wheel horizon: no per-event
	// allocation, no interface boxing, no write barriers on sift, and
	// four children share a cache line instead of two per level.
	heap []key
	// locs and fns map EventID slots to locations and payloads (parallel
	// tables, see slotLoc); freeSlots recycles released slot indices so
	// the tables stay as small as the peak queue depth.
	locs      []slotLoc
	fns       []slotFn
	freeSlots []uint32

	// Timing wheel state. curB is the level-0 bucket the clock is in
	// (now>>l0GranBits), curB1 the level-1 bucket (now>>l1GranBits).
	// head0/head1 are the per-slot intrusive list heads, occ0/occ1 the
	// occupancy bitmaps used to jump over empty buckets, wheelCount the
	// number of events resident in either level.
	curB       int64
	curB1      int64
	head0      []uint32
	head1      []uint32
	occ0       []uint64
	occ1       []uint64
	wheelCount int
	// count1 is the number of events resident in level 1 alone, letting
	// advance skip the level-1 occupancy scan (32 words) entirely while
	// no far timers are parked there.
	count1 int
	// noWheel forces every event into the heap — the pre-wheel behavior,
	// kept for differential tests and crossover benchmarks.
	noWheel bool

	// processed counts executed events, for instrumentation.
	processed uint64
	stopped   bool
}

// New returns an empty hybrid scheduler at time zero.
func New() *Scheduler {
	s := &Scheduler{
		heap:    make([]key, pad, pad+61),
		bandEnd: 1 << l0GranBits,
		head0:   make([]uint32, wheelSize),
		head1:   make([]uint32, wheelSize),
		occ0:    make([]uint64, wheelSize/64),
		occ1:    make([]uint64, wheelSize/64),
	}
	for i := range s.head0 {
		s.head0[i] = noIdx
		s.head1[i] = noIdx
	}
	return s
}

// NewHeapOnly returns a scheduler with the timing wheel disabled: every
// event goes straight into the indexed heap, reproducing the pre-wheel
// scheduler exactly. It exists as the semantic reference for the
// differential tests and as the baseline arm of the wheel-vs-heap
// crossover benchmarks; simulations should use New.
func NewHeapOnly() *Scheduler {
	return &Scheduler{
		heap:    make([]key, pad, pad+61),
		bandEnd: units.Forever,
		noWheel: true,
	}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t units.Time, fn func()) EventID {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d units.Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. Callers on per-event hot
// paths preallocate fn once and vary only arg, so scheduling allocates
// nothing (pointer-shaped args box for free).
func (s *Scheduler) AtArg(t units.Time, fn func(any), arg any) EventID {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d units.Time, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, nil, fn, arg)
}

func (s *Scheduler) schedule(t units.Time, fn func(), afn func(any), arg any) EventID {
	if s.stopped {
		// A stopped scheduler has drained its queue and retains nothing;
		// accepting new events would silently re-grow it from stale
		// timers (armed sim.Timers re-arming out of teardown paths).
		// Scheduling after Stop is a no-op until the next RunUntil.
		return NoEvent
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var slot uint32
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		slot = uint32(len(s.locs))
		s.locs = append(s.locs, slotLoc{gen: 1})
		s.fns = append(s.fns, slotFn{})
	}
	// releaseSlot nil-cleared the payload, so store only the form in
	// use: fewer pointer writes, fewer GC write barriers per event.
	pf := &s.fns[slot]
	if fn != nil {
		pf.fn = fn
	} else {
		pf.afn, pf.arg = afn, arg
	}
	ref := &s.locs[slot]
	sq := uint32(s.seq)
	ref.at, ref.sq = t, sq
	s.place(slot, t, sq)
	return EventID(uint64(ref.gen)<<32 | uint64(slot))
}

// place files a live slot's event into the structure its fire time calls
// for: the heap for the current band and beyond-horizon timers, a wheel
// bucket otherwise. The slotRef's at/sq must already be set.
func (s *Scheduler) place(slot uint32, t units.Time, sq uint32) {
	if !s.noWheel {
		d0 := int64(t)>>l0GranBits - s.curB
		if d0 >= 1 {
			if d0 <= wheelSize {
				s.wheelPush(s.head0, s.occ0, int(int64(t)>>l0GranBits)&wheelMask, slot, false)
				return
			}
			if d1 := int64(t)>>l1GranBits - s.curB1; d1 <= wheelSize {
				s.wheelPush(s.head1, s.occ1, int(int64(t)>>l1GranBits)&wheelMask, slot, true)
				return
			}
		}
	}
	ref := &s.locs[slot]
	i := len(s.heap)
	ref.idx = int32(i)
	s.heap = append(s.heap, key{at: t, ss: uint64(sq)<<32 | uint64(slot)})
	s.siftUp(i)
}

// wheelPush front-inserts a slot into one bucket's intrusive list. Order
// within a bucket is irrelevant: the flush into the heap re-sorts the
// cohort by (time, sequence).
func (s *Scheduler) wheelPush(head []uint32, occ []uint64, b int, slot uint32, l1 bool) {
	ref := &s.locs[slot]
	if l1 {
		ref.idx = -2 - int32(b) - wheelSize
	} else {
		ref.idx = -2 - int32(b)
	}
	h := head[b]
	ref.next, ref.prev = h, noIdx
	if h != noIdx {
		s.locs[h].prev = slot
	}
	head[b] = slot
	occ[b>>6] |= 1 << (uint(b) & 63)
	s.wheelCount++
	if l1 {
		s.count1++
	}
}

// wheelRemove unlinks a wheel-resident slot (ref.idx <= -2) from its
// bucket list in O(1).
func (s *Scheduler) wheelRemove(slot uint32) {
	ref := &s.locs[slot]
	b := int(-ref.idx) - 2
	head, occ := s.head0, s.occ0
	if b >= wheelSize {
		b -= wheelSize
		head, occ = s.head1, s.occ1
		s.count1--
	}
	if ref.prev != noIdx {
		s.locs[ref.prev].next = ref.next
	} else {
		head[b] = ref.next
		if ref.next == noIdx {
			occ[b>>6] &^= 1 << (uint(b) & 63)
		}
	}
	if ref.next != noIdx {
		s.locs[ref.next].prev = ref.prev
	}
	s.wheelCount--
}

// flushBucket migrates one bucket's cohort into the heap, which orders
// it by (time, sequence) against everything else in the band.
func (s *Scheduler) flushBucket(head []uint32, occ []uint64, b int) {
	cur := head[b]
	head[b] = noIdx
	occ[b>>6] &^= 1 << (uint(b) & 63)
	for cur != noIdx {
		ref := &s.locs[cur]
		next := ref.next
		i := len(s.heap)
		ref.idx = int32(i)
		s.heap = append(s.heap, key{at: ref.at, ss: uint64(ref.sq)<<32 | uint64(cur)})
		s.siftUp(i)
		s.wheelCount--
		cur = next
	}
}

// cascade re-files one level-1 bucket when the clock enters its span:
// every event lands in a level-0 bucket (or the heap, if its bucket is
// the current one).
func (s *Scheduler) cascade(b int) {
	cur := s.head1[b]
	s.head1[b] = noIdx
	s.occ1[b>>6] &^= 1 << (uint(b) & 63)
	for cur != noIdx {
		ref := &s.locs[cur]
		next := ref.next
		s.wheelCount--
		s.count1--
		s.place(cur, ref.at, ref.sq)
		cur = next
	}
}

// nextOcc scans an occupancy bitmap for the first set bit at wrapped
// distance 1..wheelSize from slot from, returning the distance (0 = none).
func nextOcc(occ []uint64, from int) int {
	// The remainder of the starting slot's word first, then whole words
	// around the ring. Within a word the lowest set bit is always the
	// nearest in scan order (the full-circle word's high bits were
	// already checked empty by the first probe).
	start := (from + 1) & wheelMask
	w := start >> 6
	bit := uint(start) & 63
	if word := occ[w] >> bit; word != 0 {
		s0 := w<<6 + int(bit) + bits.TrailingZeros64(word)
		return (s0 - from) & wheelMask
	}
	for i := 1; i <= wheelSize/64; i++ {
		wi := (w + i) & (wheelSize/64 - 1)
		if word := occ[wi]; word != 0 {
			d := (wi<<6 + bits.TrailingZeros64(word) - from) & wheelMask
			if d == 0 {
				d = wheelSize
			}
			return d
		}
	}
	return 0
}

// lookup resolves a handle to its slot, rejecting stale handles
// (fired, cancelled, or recycled slots).
func (s *Scheduler) lookup(id EventID) (uint32, bool) {
	slot := uint32(id)
	if int(slot) >= len(s.locs) {
		return 0, false
	}
	ref := &s.locs[slot]
	if ref.gen != uint32(id>>32) || ref.idx == -1 {
		return 0, false
	}
	return slot, true
}

// Scheduled reports whether the handle still refers to a queued event.
func (s *Scheduler) Scheduled(id EventID) bool {
	_, ok := s.lookup(id)
	return ok
}

// Cancel removes a pending event from the queue in place — an O(1) list
// splice for wheel-resident events, one sift for heap-resident ones —
// dropping its callback and argument references immediately. It reports
// whether the handle was live; cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Scheduler) Cancel(id EventID) bool {
	slot, ok := s.lookup(id)
	if !ok {
		return false
	}
	if i := s.locs[slot].idx; i >= 0 {
		s.removeAt(int(i))
	} else {
		s.wheelRemove(slot)
		s.releaseSlot(slot)
	}
	return true
}

// Reschedule moves a pending event to absolute time t in place. The
// event is re-sequenced as if freshly scheduled, so it fires after
// everything already queued for the same instant (identical tie-breaking
// to Cancel+At). It reports whether the handle was live.
func (s *Scheduler) Reschedule(id EventID, t units.Time) bool {
	slot, ok := s.lookup(id)
	if !ok {
		return false
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, s.now))
	}
	s.seq++
	sq := uint32(s.seq)
	ref := &s.locs[slot]
	ref.at, ref.sq = t, sq
	if i := ref.idx; i >= 0 && (s.noWheel || t < s.bandEnd || int64(t)>>l0GranBits-s.curB > wheelSize && int64(t)>>l1GranBits-s.curB1 > wheelSize) {
		// Heap-to-heap move: one in-place key update plus a sift.
		s.heap[i].at = t
		s.heap[i].ss = uint64(sq)<<32 | uint64(slot)
		s.fix(int(i))
		return true
	} else if i >= 0 {
		s.unhookHeap(int(i))
	} else {
		s.wheelRemove(slot)
	}
	s.place(slot, t, sq)
	return true
}

// releaseSlot frees a slot, drops its callback and argument references,
// and invalidates every outstanding handle to it by bumping the
// generation (skipping 0, which marks NoEvent).
func (s *Scheduler) releaseSlot(slot uint32) {
	ref := &s.locs[slot]
	ref.idx = -1
	ref.gen++
	if ref.gen == 0 {
		ref.gen = 1
	}
	pf := &s.fns[slot]
	if pf.fn != nil {
		pf.fn = nil
	} else {
		pf.afn, pf.arg = nil, nil
	}
	s.freeSlots = append(s.freeSlots, slot)
}

// unhookHeap deletes the event at heap index i without releasing its
// slot (Reschedule keeps the slot alive across the move).
func (s *Scheduler) unhookHeap(i int) {
	n := len(s.heap) - 1
	if i != n {
		s.heap[i] = s.heap[n]
		s.locs[s.heap[i].slotIdx()].idx = int32(i)
	}
	s.heap = s.heap[:n]
	if i < n {
		s.fix(i)
	}
}

// removeAt deletes the event at heap index i and releases its slot.
func (s *Scheduler) removeAt(i int) {
	s.releaseSlot(s.heap[i].slotIdx())
	s.unhookHeap(i)
}

// fix restores the heap property around index i after its key changed.
func (s *Scheduler) fix(i int) {
	if i > pad && less(&s.heap[i], &s.heap[(i+8)>>2]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}

// popTop removes the minimum event (the root). Instead of moving the
// last element to the root and sifting it down (comparing it at every
// level), the root hole bubbles down along min-children to a leaf and
// the displaced last element sifts up from there: that element came
// from the bottom, so it almost always belongs near the bottom, and
// skipping the per-level "would it fit here" compare saves a quarter of
// the comparisons on the scheduler's single hottest path.
func (s *Scheduler) popTop() {
	n := len(s.heap) - 1
	s.releaseSlot(s.heap[pad].slotIdx())
	e := s.heap[n]
	s.heap = s.heap[:n]
	if n == pad {
		return
	}
	h := s.heap
	i := pad
	for {
		c := i<<2 - 8
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		s.locs[h[i].slotIdx()].idx = int32(i)
		i = m
	}
	h[i] = e
	s.locs[e.slotIdx()].idx = int32(i)
	s.siftUp(i)
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > pad {
		p := (i + 8) >> 2
		if !less(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		s.locs[h[i].slotIdx()].idx = int32(i)
		i = p
	}
	h[i] = e
	s.locs[e.slotIdx()].idx = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 - 8
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &e) {
			break
		}
		h[i] = h[m]
		s.locs[h[i].slotIdx()].idx = int32(i)
		i = m
	}
	h[i] = e
	s.locs[e.slotIdx()].idx = int32(i)
}

// Stop makes Run/RunUntil return after the current event completes and
// drains the queue: every pending event (and its closure) is discarded
// from both the heap and the wheel, so a stopped scheduler retains
// nothing. Long sweeps run thousands of schedulers back to back; without
// the drain each stopped run would pin its undelivered closures (and
// everything they capture) until the whole sweep finished.
func (s *Scheduler) Stop() {
	s.stopped = true
	for i := pad; i < len(s.heap); i++ {
		s.releaseSlot(s.heap[i].slotIdx())
	}
	s.heap = s.heap[:pad]
	if s.wheelCount > 0 {
		for _, lvl := range [2]struct {
			head []uint32
			occ  []uint64
		}{{s.head0, s.occ0}, {s.head1, s.occ1}} {
			for b := 0; b < wheelSize; b++ {
				for cur := lvl.head[b]; cur != noIdx; {
					next := s.locs[cur].next
					s.releaseSlot(cur)
					cur = next
				}
				lvl.head[b] = noIdx
			}
			for w := range lvl.occ {
				lvl.occ[w] = 0
			}
		}
		s.wheelCount = 0
		s.count1 = 0
	}
}

// Stopped reports whether the scheduler is stopped (Stop was called and
// no RunUntil has restarted it). A stopped scheduler silently rejects new
// events.
func (s *Scheduler) Stopped() bool { return s.stopped }

// Pending reports the number of queued events across the heap and both
// wheel levels.
func (s *Scheduler) Pending() int { return len(s.heap) - pad + s.wheelCount }

// Len reports the number of queued events (alias of Pending, matching
// the container-style accessor sweeps and tests expect).
func (s *Scheduler) Len() int { return s.Pending() }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(units.Forever)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// Events scheduled beyond the deadline remain queued; the clock is left at
// the deadline (or at the last event if the queue drained first).
func (s *Scheduler) RunUntil(deadline units.Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.heap) > pad {
			at := s.heap[pad].at
			if at < s.bandEnd {
				if at > deadline {
					if s.now < deadline {
						s.now = deadline
					}
					return
				}
				s.runBatch(at)
				continue
			}
		}
		if !s.advance(deadline) {
			break
		}
	}
	if deadline != units.Forever && s.now < deadline {
		s.now = deadline
	}
}

// runBatch executes every queued event with fire time exactly at — the
// batched same-timestamp dispatch loop. The heap pops equal-time events
// in sequence order, and events a callback schedules for the running
// instant land in the heap with a later sequence, so they join the same
// batch in FIFO position; the delivered order is bit-identical to the
// unbatched loop's.
func (s *Scheduler) runBatch(at units.Time) {
	s.now = at
	for {
		top := s.heap[pad]
		pf := &s.fns[top.slotIdx()]
		fn, afn, arg := pf.fn, pf.afn, pf.arg
		s.popTop()
		s.processed++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		if s.stopped || len(s.heap) <= pad || s.heap[pad].at != at {
			return
		}
	}
}

// advance moves the clock's band forward to the next bucket holding
// work, cascading and flushing wheel cohorts into the heap. It reports
// whether the caller should re-check the heap; false means nothing is
// pending at or before the deadline (the clock is already settled).
func (s *Scheduler) advance(deadline units.Time) bool {
	for {
		if len(s.heap) <= pad && s.wheelCount == 0 {
			return false // nothing pending anywhere
		}
		target := int64(units.Forever) >> l0GranBits
		if len(s.heap) > pad {
			target = int64(s.heap[pad].at) >> l0GranBits
		}
		if s.wheelCount > 0 {
			if d := nextOcc(s.occ0, int(s.curB)&wheelMask); d > 0 {
				if b := s.curB + int64(d); b < target {
					target = b
				}
			}
			if s.count1 > 0 {
				if d := nextOcc(s.occ1, int(s.curB1)&wheelMask); d > 0 {
					// The earliest possible event in a level-1 bucket is
					// its first level-0 bucket.
					if b := (s.curB1 + int64(d)) << wheelBits; b < target {
						target = b
					}
				}
			}
		}
		if target > int64(deadline)>>l0GranBits {
			if s.now < deadline {
				s.now = deadline
			}
			return false
		}
		s.curB = target
		s.bandEnd = units.Time(target+1) << l0GranBits
		if b1 := target >> wheelBits; b1 != s.curB1 {
			s.curB1 = b1
			s.cascade(int(b1) & wheelMask)
		}
		b := int(target) & wheelMask
		if s.occ0[b>>6]&(1<<(uint(b)&63)) != 0 {
			if slot := s.head0[b]; len(s.heap) == pad && s.locs[slot].next == noIdx && s.locs[slot].at <= deadline {
				// Singleton fast path: one event in the bucket and an
				// empty heap means the event is the global minimum with
				// no same-instant rival, so dispatch it straight off the
				// wheel — no heap round-trip — and advance again: runs
				// of singleton buckets (the common case at this bucket
				// granularity) stay inside this loop. Events the
				// callback schedules for the running instant land in the
				// (empty) heap, which bounces back to the caller's
				// same-timestamp batch loop.
				s.head0[b] = noIdx
				s.occ0[b>>6] &^= 1 << (uint(b) & 63)
				s.wheelCount--
				s.now = s.locs[slot].at
				pf := &s.fns[slot]
				fn, afn, arg := pf.fn, pf.afn, pf.arg
				s.releaseSlot(slot)
				s.processed++
				if fn != nil {
					fn()
				} else {
					afn(arg)
				}
				if s.stopped || len(s.heap) > pad {
					return true
				}
				continue
			}
			s.flushBucket(s.head0, s.occ0, b)
		}
		return true
	}
}

// DebugCheck verifies the internal consistency of the hybrid queue: the
// heap property over every parent/child pair, location backpointers
// matching heap positions and wheel lists, wheel occupancy bitmaps and
// the wheelCount matching the lists, every wheel resident being filed in
// the bucket its fire time maps to, and free slots being truly dead. It
// is O(n + wheelSize) and meant for tests (the scheduler fuzzers call it
// after every operation); it returns the first violation found, or nil.
func (s *Scheduler) DebugCheck() error {
	live := 0
	for i := pad; i < len(s.heap); i++ {
		k := &s.heap[i]
		if i > pad {
			p := (i + 8) >> 2
			if less(k, &s.heap[p]) {
				return fmt.Errorf("sim: heap property violated at index %d (parent %d)", i, p)
			}
		}
		slot := k.slotIdx()
		if int(slot) >= len(s.locs) {
			return fmt.Errorf("sim: heap index %d references slot %d beyond table (%d)", i, slot, len(s.locs))
		}
		ref := &s.locs[slot]
		if int(ref.idx) != i {
			return fmt.Errorf("sim: slot %d backpointer %d, heap position %d", slot, ref.idx, i)
		}
		if pf := &s.fns[slot]; pf.fn == nil && pf.afn == nil {
			return fmt.Errorf("sim: queued slot %d has no callback", slot)
		}
		live++
	}
	inWheel := 0
	for lvl, w := range [2]struct {
		head []uint32
		occ  []uint64
		gran uint
		cur  int64
	}{{s.head0, s.occ0, l0GranBits, s.curB}, {s.head1, s.occ1, l1GranBits, s.curB1}} {
		for b := 0; b < len(w.head); b++ {
			occupied := w.occ[b>>6]&(1<<(uint(b)&63)) != 0
			if (w.head[b] != noIdx) != occupied {
				return fmt.Errorf("sim: wheel L%d bucket %d occupancy bit %v but head %v", lvl, b, occupied, w.head[b])
			}
			prev := noIdx
			for cur := w.head[b]; cur != noIdx; cur = s.locs[cur].next {
				ref := &s.locs[cur]
				want := -2 - int32(b) - int32(lvl)*wheelSize
				if ref.idx != want {
					return fmt.Errorf("sim: wheel L%d bucket %d slot %d has idx %d, want %d", lvl, b, cur, ref.idx, want)
				}
				if ref.prev != prev {
					return fmt.Errorf("sim: wheel L%d bucket %d slot %d prev %d, want %d", lvl, b, cur, ref.prev, prev)
				}
				if got := int(int64(ref.at)>>w.gran) & wheelMask; got != b {
					return fmt.Errorf("sim: wheel L%d bucket %d holds event for bucket %d (at=%v)", lvl, b, got, ref.at)
				}
				if d := int64(ref.at)>>w.gran - w.cur; d < 1 || d > wheelSize {
					return fmt.Errorf("sim: wheel L%d bucket %d event at %v outside window (distance %d)", lvl, b, ref.at, d)
				}
				if pf := &s.fns[cur]; pf.fn == nil && pf.afn == nil {
					return fmt.Errorf("sim: wheel slot %d has no callback", cur)
				}
				prev = cur
				inWheel++
			}
		}
	}
	if inWheel != s.wheelCount {
		return fmt.Errorf("sim: wheel lists hold %d events, wheelCount %d", inWheel, s.wheelCount)
	}
	inL1 := 0
	for b := 0; b < len(s.head1); b++ {
		for cur := s.head1[b]; cur != noIdx; cur = s.locs[cur].next {
			inL1++
		}
	}
	if inL1 != s.count1 {
		return fmt.Errorf("sim: level-1 lists hold %d events, count1 %d", inL1, s.count1)
	}
	live += inWheel
	for _, slot := range s.freeSlots {
		ref := &s.locs[slot]
		if ref.idx != -1 {
			return fmt.Errorf("sim: free slot %d still points at location %d", slot, ref.idx)
		}
		if pf := &s.fns[slot]; pf.fn != nil || pf.afn != nil || pf.arg != nil {
			return fmt.Errorf("sim: free slot %d retains a callback or argument", slot)
		}
	}
	if live+len(s.freeSlots) != len(s.locs) {
		return fmt.Errorf("sim: %d live + %d free != %d slots", live, len(s.freeSlots), len(s.locs))
	}
	return nil
}

// Timer is a cancellable, re-armable timer built on the scheduler. It is
// used for periodic credit updates, CNP generation windows, rate-increase
// timers and similar protocol machinery.
//
// Arm of an already-armed timer is one in-place Reschedule — the queue
// never grows, and no closure is created: the fire callback is
// preallocated once at NewTimer.
type Timer struct {
	s       *Scheduler
	fn      func()
	fireFn  func() // preallocated adapter handed to the scheduler
	id      EventID
	armedAt units.Time // fire time of the live arm; Never when idle
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	t := &Timer{s: s, fn: fn, armedAt: units.Never}
	t.fireFn = t.fire
	return t
}

// Arm (re)schedules the timer to fire d from now, replacing any pending
// arm. Arming against a stopped scheduler is a no-op: Stop() drained the
// queue and invalidated every handle, so a stale timer re-arming out of a
// teardown path must not resurrect events (the timer stays unarmed).
func (t *Timer) Arm(d units.Time) {
	if d < 0 {
		d = 0
	}
	at := t.s.Now() + d
	if t.id != NoEvent && t.s.Reschedule(t.id, at) {
		t.armedAt = at
		return
	}
	t.id = t.s.At(at, t.fireFn)
	if t.id == NoEvent {
		t.armedAt = units.Never
		return
	}
	t.armedAt = at
}

func (t *Timer) fire() {
	t.id = NoEvent
	t.armedAt = units.Never
	t.fn()
}

// Cancel disarms the timer if armed, removing its queued event in place.
func (t *Timer) Cancel() {
	if t.id != NoEvent {
		t.s.Cancel(t.id)
		t.id = NoEvent
	}
	t.armedAt = units.Never
}

// Armed reports whether the timer has a pending fire.
func (t *Timer) Armed() bool { return t.armedAt != units.Never }

// FireAt reports when the timer will fire (Never if unarmed).
func (t *Timer) FireAt() units.Time { return t.armedAt }
