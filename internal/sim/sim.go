// Package sim provides a deterministic discrete-event scheduler.
//
// All simulator components share one Scheduler. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via
// a monotonically increasing sequence number), which makes every run
// reproducible regardless of map iteration order or GC timing.
//
// The queue is an indexed four-ary min-heap with stable handles: every
// scheduled event gets an EventID, and Cancel/Reschedule remove or move the
// event in place (sift by tracked heap index) instead of leaving dead
// "ghost" entries queued until their fire time. The heap itself holds only
// pointer-free keys (time, sequence, slot) — sift moves are plain memmoves
// with no write barriers — while callbacks live in the slot table and never
// move. Hot emitters schedule a preallocated func(arg) + arg pair
// (AtArg/AfterArg) instead of minting a fresh closure per event.
package sim

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/units"
)

// EventID is a stable handle for a scheduled event, returned by At/After
// and their Arg variants. It stays valid until the event fires or is
// cancelled; using it afterwards is safe (Cancel/Reschedule report false)
// because the handle carries a generation that slot reuse invalidates.
type EventID uint64

// NoEvent is the zero EventID; no live event ever has it.
const NoEvent EventID = 0

// key is one heap entry: the sort key plus the slot holding the payload.
// It is deliberately pointer-free (sift moves are barrier-free copies)
// and packed to 16 bytes — seq in the high word of ss, slot in the low —
// so one four-child group occupies exactly one 64-byte cache line.
type key struct {
	at units.Time
	ss uint64 // seq<<32 | slot
}

func (k *key) slotIdx() uint32 { return uint32(k.ss) }

// pad is the heap root's index. Rooting the four-ary heap at 3 instead
// of 0 (indices 0-2 are unused dummies) makes every child group
// [4i-8, 4i-5] start at a multiple-of-64-byte offset: with 16-byte keys
// the four children a sift compares live in one cache line instead of
// always straddling two, and the parent/child index math loses its
// root special case (parent(i) = (i+8)>>2 uniformly).
const pad = 3

// less orders events by (time, sequence). The sequence is the low 32 bits
// of a monotone counter compared with wraparound arithmetic: the order of
// two equal-time events is FIFO whenever their schedule calls are within
// 2^31 of each other. Exceeding that would take two events aimed at the
// same picosecond scheduled more than two billion events apart — far
// beyond any run here — and even then the order stays deterministic.
func less(a, b *key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return int32(uint32(a.ss>>32)-uint32(b.ss>>32)) < 0
}

// slotRef is one handle's event payload and location: the current heap
// index (kept in sync by every sift), the generation that outstanding
// EventIDs must match, and the callback. Exactly one of fn/afn is set:
// fn is the closure form, afn+arg the typed-argument form used by
// per-packet hot paths (a pointer-shaped arg boxes into the interface
// without allocating). The payload is written once at schedule time and
// cleared at release; it never moves with the heap.
type slotRef struct {
	idx int32
	gen uint32
	fn  func()
	afn func(any)
	arg any
}

// Scheduler is a discrete-event executor. The zero value is not usable;
// call New.
type Scheduler struct {
	now units.Time
	seq uint64
	// heap is a four-ary min-heap of pointer-free keys: no per-event
	// allocation, no interface boxing, no write barriers on sift, and
	// four children share a cache line instead of two per level.
	heap []key
	// slots maps EventID slots to heap positions and payloads;
	// freeSlots recycles released slot indices so the table stays as
	// small as the peak queue depth.
	slots     []slotRef
	freeSlots []uint32
	// processed counts executed events, for instrumentation.
	processed uint64
	stopped   bool
}

// New returns an empty scheduler at time zero.
func New() *Scheduler {
	return &Scheduler{heap: make([]key, pad, pad+61)}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t units.Time, fn func()) EventID {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d units.Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. Callers on per-event hot
// paths preallocate fn once and vary only arg, so scheduling allocates
// nothing (pointer-shaped args box for free).
func (s *Scheduler) AtArg(t units.Time, fn func(any), arg any) EventID {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d after the current time.
func (s *Scheduler) AfterArg(d units.Time, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return s.schedule(s.now+d, nil, fn, arg)
}

func (s *Scheduler) schedule(t units.Time, fn func(), afn func(any), arg any) EventID {
	if s.stopped {
		// A stopped scheduler has drained its heap and retains nothing;
		// accepting new events would silently re-grow it from stale
		// timers (armed sim.Timers re-arming out of teardown paths).
		// Scheduling after Stop is a no-op until the next RunUntil.
		return NoEvent
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	var slot uint32
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	} else {
		slot = uint32(len(s.slots))
		s.slots = append(s.slots, slotRef{gen: 1})
	}
	ref := &s.slots[slot]
	// releaseSlot nil-cleared the payload, so store only the form in
	// use: fewer pointer writes, fewer GC write barriers per event.
	if fn != nil {
		ref.fn = fn
	} else {
		ref.afn, ref.arg = afn, arg
	}
	i := len(s.heap)
	ref.idx = int32(i)
	s.heap = append(s.heap, key{at: t, ss: uint64(uint32(s.seq))<<32 | uint64(slot)})
	s.siftUp(i)
	return EventID(uint64(ref.gen)<<32 | uint64(slot))
}

// lookup resolves a handle to its heap index, rejecting stale handles
// (fired, cancelled, or recycled slots).
func (s *Scheduler) lookup(id EventID) (int, bool) {
	slot := uint32(id)
	if int(slot) >= len(s.slots) {
		return 0, false
	}
	ref := &s.slots[slot]
	if ref.gen != uint32(id>>32) || ref.idx < 0 {
		return 0, false
	}
	return int(ref.idx), true
}

// Scheduled reports whether the handle still refers to a queued event.
func (s *Scheduler) Scheduled(id EventID) bool {
	_, ok := s.lookup(id)
	return ok
}

// Cancel removes a pending event from the queue in place, dropping its
// callback and argument references immediately. It reports whether the
// handle was live; cancelling an already-fired or already-cancelled
// event is a no-op.
func (s *Scheduler) Cancel(id EventID) bool {
	i, ok := s.lookup(id)
	if !ok {
		return false
	}
	s.removeAt(i)
	return true
}

// Reschedule moves a pending event to absolute time t in place — one
// sift, no queue growth. The event is re-sequenced as if freshly
// scheduled, so it fires after everything already queued for the same
// instant (identical tie-breaking to Cancel+At). It reports whether the
// handle was live.
func (s *Scheduler) Reschedule(id EventID, t units.Time) bool {
	i, ok := s.lookup(id)
	if !ok {
		return false
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: rescheduling event to %v before now %v", t, s.now))
	}
	s.seq++
	s.heap[i].at = t
	s.heap[i].ss = uint64(uint32(s.seq))<<32 | uint64(uint32(s.heap[i].ss))
	s.fix(i)
	return true
}

// releaseSlot frees a slot, drops its callback and argument references,
// and invalidates every outstanding handle to it by bumping the
// generation (skipping 0, which marks NoEvent).
func (s *Scheduler) releaseSlot(slot uint32) {
	ref := &s.slots[slot]
	ref.idx = -1
	ref.gen++
	if ref.gen == 0 {
		ref.gen = 1
	}
	if ref.fn != nil {
		ref.fn = nil
	} else {
		ref.afn, ref.arg = nil, nil
	}
	s.freeSlots = append(s.freeSlots, slot)
}

// removeAt deletes the event at heap index i.
func (s *Scheduler) removeAt(i int) {
	n := len(s.heap) - 1
	s.releaseSlot(s.heap[i].slotIdx())
	if i != n {
		s.heap[i] = s.heap[n]
		s.slots[s.heap[i].slotIdx()].idx = int32(i)
	}
	s.heap = s.heap[:n]
	if i < n {
		s.fix(i)
	}
}

// fix restores the heap property around index i after its key changed.
func (s *Scheduler) fix(i int) {
	if i > pad && less(&s.heap[i], &s.heap[(i+8)>>2]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}

// popTop removes the minimum event (the root). Instead of moving the
// last element to the root and sifting it down (comparing it at every
// level), the root hole bubbles down along min-children to a leaf and
// the displaced last element sifts up from there: that element came
// from the bottom, so it almost always belongs near the bottom, and
// skipping the per-level "would it fit here" compare saves a quarter of
// the comparisons on the scheduler's single hottest path.
func (s *Scheduler) popTop() {
	n := len(s.heap) - 1
	s.releaseSlot(s.heap[pad].slotIdx())
	e := s.heap[n]
	s.heap = s.heap[:n]
	if n == pad {
		return
	}
	h := s.heap
	i := pad
	for {
		c := i<<2 - 8
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		h[i] = h[m]
		s.slots[h[i].slotIdx()].idx = int32(i)
		i = m
	}
	h[i] = e
	s.slots[e.slotIdx()].idx = int32(i)
	s.siftUp(i)
}

func (s *Scheduler) siftUp(i int) {
	h := s.heap
	e := h[i]
	for i > pad {
		p := (i + 8) >> 2
		if !less(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		s.slots[h[i].slotIdx()].idx = int32(i)
		i = p
	}
	h[i] = e
	s.slots[e.slotIdx()].idx = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 - 8
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &e) {
			break
		}
		h[i] = h[m]
		s.slots[h[i].slotIdx()].idx = int32(i)
		i = m
	}
	h[i] = e
	s.slots[e.slotIdx()].idx = int32(i)
}

// Stop makes Run/RunUntil return after the current event completes and
// drains the heap: every pending event (and its closure) is discarded, so
// a stopped scheduler retains nothing. Long sweeps run thousands of
// schedulers back to back; without the drain each stopped run would pin
// its undelivered closures (and everything they capture) until the whole
// sweep finished.
func (s *Scheduler) Stop() {
	s.stopped = true
	for i := pad; i < len(s.heap); i++ {
		s.releaseSlot(s.heap[i].slotIdx())
	}
	s.heap = s.heap[:pad]
}

// Stopped reports whether the scheduler is stopped (Stop was called and
// no RunUntil has restarted it). A stopped scheduler silently rejects new
// events.
func (s *Scheduler) Stopped() bool { return s.stopped }

// DebugCheck verifies the internal consistency of the indexed heap: the
// heap property over every parent/child pair, slot-table backpointers
// matching heap positions, and free slots being truly dead. It is O(n)
// and meant for tests (the fault-schedule fuzzer calls it after every
// run); it returns the first violation found, or nil.
func (s *Scheduler) DebugCheck() error {
	live := 0
	for i := pad; i < len(s.heap); i++ {
		k := &s.heap[i]
		if i > pad {
			p := (i + 8) >> 2
			if less(k, &s.heap[p]) {
				return fmt.Errorf("sim: heap property violated at index %d (parent %d)", i, p)
			}
		}
		slot := k.slotIdx()
		if int(slot) >= len(s.slots) {
			return fmt.Errorf("sim: heap index %d references slot %d beyond table (%d)", i, slot, len(s.slots))
		}
		ref := &s.slots[slot]
		if int(ref.idx) != i {
			return fmt.Errorf("sim: slot %d backpointer %d, heap position %d", slot, ref.idx, i)
		}
		if ref.fn == nil && ref.afn == nil {
			return fmt.Errorf("sim: queued slot %d has no callback", slot)
		}
		live++
	}
	for _, slot := range s.freeSlots {
		ref := &s.slots[slot]
		if ref.idx >= 0 {
			return fmt.Errorf("sim: free slot %d still points at heap index %d", slot, ref.idx)
		}
		if ref.fn != nil || ref.afn != nil || ref.arg != nil {
			return fmt.Errorf("sim: free slot %d retains a callback or argument", slot)
		}
	}
	if live+len(s.freeSlots) != len(s.slots) {
		return fmt.Errorf("sim: %d live + %d free != %d slots", live, len(s.freeSlots), len(s.slots))
	}
	return nil
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) - pad }

// Len reports the number of queued events (alias of Pending, matching
// the container-style accessor sweeps and tests expect).
func (s *Scheduler) Len() int { return len(s.heap) - pad }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(units.Forever)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// Events scheduled beyond the deadline remain queued; the clock is left at
// the deadline (or at the last event if the queue drained first).
func (s *Scheduler) RunUntil(deadline units.Time) {
	s.stopped = false
	for len(s.heap) > pad && !s.stopped {
		top := s.heap[pad]
		if top.at > deadline {
			s.now = deadline
			return
		}
		// Copy the callback out and pop before running: the slot and
		// heap cell are reusable immediately, so events scheduled from
		// inside the callback allocate nothing.
		ref := &s.slots[top.slotIdx()]
		fn, afn, arg := ref.fn, ref.afn, ref.arg
		s.popTop()
		s.now = top.at
		s.processed++
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
	}
	if deadline != units.Forever && s.now < deadline {
		s.now = deadline
	}
}

// Timer is a cancellable, re-armable timer built on the scheduler. It is
// used for periodic credit updates, CNP generation windows, rate-increase
// timers and similar protocol machinery.
//
// Arm of an already-armed timer is one in-place Reschedule — the queue
// never grows, and no closure is created: the fire callback is
// preallocated once at NewTimer.
type Timer struct {
	s       *Scheduler
	fn      func()
	fireFn  func() // preallocated adapter handed to the scheduler
	id      EventID
	armedAt units.Time // fire time of the live arm; Never when idle
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	t := &Timer{s: s, fn: fn, armedAt: units.Never}
	t.fireFn = t.fire
	return t
}

// Arm (re)schedules the timer to fire d from now, replacing any pending
// arm. Arming against a stopped scheduler is a no-op: Stop() drained the
// queue and invalidated every handle, so a stale timer re-arming out of a
// teardown path must not resurrect events (the timer stays unarmed).
func (t *Timer) Arm(d units.Time) {
	if d < 0 {
		d = 0
	}
	at := t.s.Now() + d
	if t.id != NoEvent && t.s.Reschedule(t.id, at) {
		t.armedAt = at
		return
	}
	t.id = t.s.At(at, t.fireFn)
	if t.id == NoEvent {
		t.armedAt = units.Never
		return
	}
	t.armedAt = at
}

func (t *Timer) fire() {
	t.id = NoEvent
	t.armedAt = units.Never
	t.fn()
}

// Cancel disarms the timer if armed, removing its queued event in place.
func (t *Timer) Cancel() {
	if t.id != NoEvent {
		t.s.Cancel(t.id)
		t.id = NoEvent
	}
	t.armedAt = units.Never
}

// Armed reports whether the timer has a pending fire.
func (t *Timer) Armed() bool { return t.armedAt != units.Never }

// FireAt reports when the timer will fire (Never if unarmed).
func (t *Timer) FireAt() units.Time { return t.armedAt }
