// Package sim provides a deterministic discrete-event scheduler.
//
// All simulator components share one Scheduler. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO tie-breaking via
// a monotonically increasing sequence number), which makes every run
// reproducible regardless of map iteration order or GC timing.
package sim

import (
	"container/heap"
	"fmt"

	"github.com/tcdnet/tcd/internal/units"
)

// Event is a scheduled callback. Keeping the callback as a closure keeps
// call sites simple; the scheduler is single-threaded so no locking is
// needed anywhere in the simulator.
type event struct {
	at  units.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event executor. The zero value is not usable;
// call New.
type Scheduler struct {
	now    units.Time
	seq    uint64
	events eventHeap
	// free recycles executed event structs: the steady-state event cycle
	// (pop, run, schedule) then allocates nothing. Recycled events carry a
	// nil fn so the free list never retains closures.
	free []*event
	// processed counts executed events, for instrumentation.
	processed uint64
	stopped   bool
}

// New returns an empty scheduler at time zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Processed reports how many events have been executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t units.Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	e := s.newEvent()
	e.at, e.seq, e.fn = t, s.seq, fn
	heap.Push(&s.events, e)
}

// newEvent takes an event struct from the free list, or allocates one.
func (s *Scheduler) newEvent() *event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	return &event{}
}

// recycle returns an executed event to the free list, dropping its
// closure so the list holds only inert structs.
func (s *Scheduler) recycle(e *event) {
	e.fn = nil
	s.free = append(s.free, e)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d units.Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop makes Run/RunUntil return after the current event completes and
// drains the heap: every pending event (and its closure) is discarded, so
// a stopped scheduler retains nothing. Long sweeps run thousands of
// schedulers back to back; without the drain each stopped run would pin
// its undelivered closures (and everything they capture) until the whole
// sweep finished.
func (s *Scheduler) Stop() {
	s.stopped = true
	for _, e := range s.events {
		s.recycle(e)
	}
	s.events = s.events[:0]
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }

// Len reports the number of queued events (alias of Pending, matching
// the container-style accessor sweeps and tests expect).
func (s *Scheduler) Len() int { return len(s.events) }

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.RunUntil(units.Forever)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// Events scheduled beyond the deadline remain queued; the clock is left at
// the deadline (or at the last event if the queue drained first).
func (s *Scheduler) RunUntil(deadline units.Time) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > deadline {
			s.now = deadline
			return
		}
		heap.Pop(&s.events)
		s.now = next.at
		s.processed++
		fn := next.fn
		// Recycle before running: events scheduled by fn can reuse the
		// struct immediately, keeping the hot loop allocation-free.
		s.recycle(next)
		fn()
	}
	if deadline != units.Forever && s.now < deadline {
		s.now = deadline
	}
}

// Timer is a cancellable, re-armable timer built on the scheduler. It is
// used for periodic credit updates, CNP generation windows, rate-increase
// timers and similar protocol machinery.
type Timer struct {
	s       *Scheduler
	fn      func()
	armedAt units.Time // fire time of the live arm; Never when idle
	gen     uint64     // invalidates stale scheduled closures
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func NewTimer(s *Scheduler, fn func()) *Timer {
	return &Timer{s: s, fn: fn, armedAt: units.Never}
}

// Arm (re)schedules the timer to fire d from now, replacing any pending arm.
func (t *Timer) Arm(d units.Time) {
	t.gen++
	gen := t.gen
	t.armedAt = t.s.Now() + d
	t.s.After(d, func() {
		if t.gen != gen {
			return // cancelled or re-armed
		}
		t.armedAt = units.Never
		t.fn()
	})
}

// Cancel disarms the timer if armed.
func (t *Timer) Cancel() {
	t.gen++
	t.armedAt = units.Never
}

// Armed reports whether the timer has a pending fire.
func (t *Timer) Armed() bool { return t.armedAt != units.Never }

// FireAt reports when the timer will fire (Never if unarmed).
func (t *Timer) FireAt() units.Time { return t.armedAt }
