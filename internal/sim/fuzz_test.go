package sim

import (
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

// FuzzSchedulerHybrid interprets the input as a little op program over
// the hybrid scheduler — three bytes per op: an opcode and a 16-bit
// operand — and asserts the structural invariants after every single op:
// DebugCheck must hold (heap property, backpointers, wheel list
// integrity, occupancy bitmaps, counts) and the clock must never move
// backwards. Offsets and clock steps are derived as powers of two from
// the operand, so ops routinely land on and leap across the level-0 /
// level-1 / overflow band boundaries, which is exactly where placement,
// cascade and migration bugs would live.
func FuzzSchedulerHybrid(f *testing.F) {
	// Seeds: band-crossing schedules with big clock leaps, cancel and
	// reschedule churn over live and dead handles, and same-instant
	// bursts drained across bucket boundaries.
	f.Add([]byte("\x00\x00\x08\x00\x40\x00\x00\xa0\x00\x04\x80\x00\x04\x90\x00\x04\xa8\x00"))
	f.Add([]byte("\x00\x10\x00\x01\x60\x00\x02\x00\x00\x03\x88\x01\x02\x00\x01\x04\x70\x00"))
	f.Add([]byte("\x05\x00\x40\x05\x00\x40\x04\x40\x00\x05\x01\x00\x04\x88\x00\x04\x98\x00"))
	f.Add([]byte("\x00\x27\x00\x03\x27\x00\x04\x8c\x00\x03\x05\x01\x02\x01\x00\x04\xa3\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		var ids []EventID
		fired := 0
		last := s.Now()
		check := func(i int) {
			if err := s.DebugCheck(); err != nil {
				t.Fatalf("op %d: DebugCheck: %v", i, err)
			}
			if s.Now() < last {
				t.Fatalf("op %d: clock moved backwards: %v -> %v", i, last, s.Now())
			}
			last = s.Now()
		}
		// Cap the program length: DebugCheck is O(pending) and runs per
		// op, so long inputs would be all checking and no exploring.
		const maxOps = 512
		for i := 0; i+2 < len(data) && i < 3*maxOps; i += 3 {
			op := data[i]
			arg := uint64(data[i+1])<<8 | uint64(data[i+2])
			// Exponential offset: 2^(arg%40) spans from sub-bucket to
			// far past the level-1 horizon; the operand low bits
			// de-align it from exact powers of two.
			d := units.Time(1)<<(arg%40) + units.Time(arg&0xff)
			switch op % 6 {
			case 0:
				ids = append(ids, s.At(s.Now()+d, func() { fired++ }))
			case 1:
				ids = append(ids, s.AfterArg(d, func(any) { fired++ }, nil))
			case 2:
				if len(ids) > 0 {
					s.Cancel(ids[int(arg)%len(ids)])
				}
			case 3: // reschedule across bands: fresh exponential offset
				if len(ids) > 0 {
					s.Reschedule(ids[int(data[i+2])%len(ids)], s.Now()+d)
				}
			case 4: // advance: steps up to 2^36 cross whole level-1 blocks
				s.RunUntil(s.Now() + units.Time(1)<<(arg%37))
			case 5: // same-instant burst: FIFO ties inside one bucket
				at := s.Now() + 1 + units.Time(arg%(1<<l0GranBits))
				for k := 0; k < 3; k++ {
					ids = append(ids, s.At(at, func() { fired++ }))
				}
			}
			check(i)
		}
		// Drain everything still pending and re-verify: the final run
		// exercises cascade + migration for whatever the program left
		// parked in far buckets.
		pending := s.Pending()
		firedBefore := fired
		s.RunUntil(units.Forever - 1)
		check(len(data))
		if fired-firedBefore != pending {
			t.Fatalf("drain fired %d events, %d were pending", fired-firedBefore, pending)
		}
		if s.Pending() != 0 {
			t.Fatalf("%d events still pending after drain", s.Pending())
		}
	})
}
