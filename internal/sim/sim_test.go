package sim

import (
	"runtime"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func TestRunsInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Errorf("Now() = %v, want 30", s.Now())
	}
	if s.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", s.Processed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at index %d: got %d", i, v)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	var fired []units.Time
	s.At(10, func() {
		s.After(5, func() { fired = append(fired, s.Now()) })
		s.At(12, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 12 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [12 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestAfterClampsNegative(t *testing.T) {
	s := New()
	ran := false
	s.At(10, func() {
		s.After(-5, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Error("After with negative delay did not run")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []units.Time
	for _, tm := range []units.Time{5, 15, 25} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20 (clock advances to deadline)", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.RunUntil(30)
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire after second RunUntil")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop, want 3", count)
	}
	// Stop drains the heap: the remaining events are discarded, and a
	// subsequent Run has nothing to execute.
	if s.Len() != 0 {
		t.Errorf("Len() = %d after Stop, want 0 (heap drained)", s.Len())
	}
	s.Run()
	if count != 3 {
		t.Errorf("ran %d events total after resumed Run, want 3 (drained)", count)
	}
}

func TestLenTracksQueue(t *testing.T) {
	s := New()
	if s.Len() != 0 {
		t.Fatalf("empty scheduler Len() = %d, want 0", s.Len())
	}
	for i := 1; i <= 5; i++ {
		s.At(units.Time(i*10), func() {})
	}
	if s.Len() != 5 || s.Pending() != 5 {
		t.Fatalf("Len() = %d, Pending() = %d, want 5, 5", s.Len(), s.Pending())
	}
	s.RunUntil(30)
	if s.Len() != 2 {
		t.Errorf("Len() = %d after RunUntil(30), want 2", s.Len())
	}
	s.Run()
	if s.Len() != 0 {
		t.Errorf("Len() = %d after Run, want 0", s.Len())
	}
}

// TestStopReleasesClosures verifies the drain actually lets the captured
// state go: a finalizer on a pinned allocation must run after Stop plus GC.
func TestStopReleasesClosures(t *testing.T) {
	s := New()
	released := make(chan struct{})
	func() {
		pinned := new([1 << 16]byte)
		runtime.SetFinalizer(pinned, func(*[1 << 16]byte) { close(released) })
		s.At(units.Forever-1, func() { _ = pinned[0] })
	}()
	s.At(1, func() { s.Stop() })
	s.RunUntil(10)
	for i := 0; i < 10; i++ {
		runtime.GC()
		select {
		case <-released:
			return
		default:
		}
	}
	t.Error("pending closure still retained after Stop + GC")
}

// TestSchedulerSteadyStateAllocs is the allocation-budget gate for the
// event free list: once the heap and the free list are warm, one
// schedule-pop-run cycle must not allocate at all.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	const budget = 0.0
	s := New()
	var tick func()
	tick = func() {
		if s.Now() < 1<<40 {
			s.After(1, tick)
		}
	}
	// Warm up: fill the free list and the heap's capacity.
	s.At(0, func() { s.After(1, tick) })
	s.RunUntil(100)
	allocs := testing.AllocsPerRun(1000, func() {
		s.RunUntil(s.Now() + 1)
	})
	if allocs > budget {
		t.Errorf("steady-state event cycle allocates %.1f/op, budget %.1f", allocs, budget)
	}
}

// TestEventHandleSemantics pins the EventID contract: Cancel and
// Reschedule act on live handles exactly once, fired or cancelled
// handles go stale, and a recycled slot does not resurrect an old
// handle (generation check).
func TestEventHandleSemantics(t *testing.T) {
	s := New()
	fired := 0
	s.At(0, func() {
		id := s.After(10, func() { fired++ })
		if !s.Scheduled(id) {
			t.Error("fresh handle not Scheduled")
		}
		if !s.Cancel(id) {
			t.Error("Cancel of live handle reported false")
		}
		if s.Cancel(id) {
			t.Error("second Cancel of same handle reported true")
		}
		if s.Scheduled(id) {
			t.Error("cancelled handle still Scheduled")
		}
		// The freed slot is recycled by the next schedule; the stale
		// handle must not alias the new event.
		id2 := s.After(20, func() { fired++ })
		if s.Cancel(id) {
			t.Error("stale handle cancelled the recycled slot's event")
		}
		if !s.Reschedule(id2, s.Now()+5) {
			t.Error("Reschedule of live handle reported false")
		}
	})
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (cancelled event ran or survivor did not)", fired)
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %v, want 5 (rescheduled fire time)", s.Now())
	}
}

// TestRescheduleResequences pins the determinism contract: a rescheduled
// event fires after everything already queued for the same instant,
// exactly as if it had been cancelled and freshly scheduled.
func TestRescheduleResequences(t *testing.T) {
	s := New()
	var order []string
	s.At(0, func() {
		id := s.At(10, func() { order = append(order, "moved") })
		s.At(20, func() { order = append(order, "sitter") })
		s.Reschedule(id, 20)
	})
	s.Run()
	if len(order) != 2 || order[0] != "sitter" || order[1] != "moved" {
		t.Errorf("order = %v, want [sitter moved]", order)
	}
}

// TestTimerChurnKeepsPendingBounded is the ghost-timer regression test:
// before the indexed heap, every re-Arm/Cancel left the superseded
// closure queued until its original fire time, so sustained churn grew
// Pending() without bound. Now each timer holds at most one queued event.
func TestTimerChurnKeepsPendingBounded(t *testing.T) {
	s := New()
	const nTimers = 8
	timers := make([]*Timer, nTimers)
	for i := range timers {
		timers[i] = NewTimer(s, func() {})
	}
	s.At(0, func() {
		for round := 1; round <= 1000; round++ {
			for _, tm := range timers {
				tm.Arm(units.Time(round) * 100)
				tm.Cancel()
				tm.Arm(units.Time(round) * 200)
				tm.Arm(units.Time(round) * 300) // re-arm of armed timer
			}
			if p := s.Pending(); p > nTimers {
				t.Fatalf("round %d: Pending() = %d, want <= %d (ghost events accumulating)", round, p, nTimers)
			}
		}
	})
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", s.Pending())
	}
}

// TestCancelReleasesClosure verifies Cancel drops the callback reference
// immediately — the slot free list must not retain the closure (or what
// it captures) until the slot is reused.
func TestCancelReleasesClosure(t *testing.T) {
	s := New()
	released := make(chan struct{})
	var id EventID
	func() {
		pinned := new([1 << 16]byte)
		runtime.SetFinalizer(pinned, func(*[1 << 16]byte) { close(released) })
		id = s.At(units.Forever-1, func() { _ = pinned[0] })
	}()
	if !s.Cancel(id) {
		t.Fatal("Cancel of live handle reported false")
	}
	for i := 0; i < 10; i++ {
		runtime.GC()
		select {
		case <-released:
			return
		default:
		}
	}
	t.Error("cancelled closure still retained after Cancel + GC")
}

func TestTimerBasic(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	if tm.Armed() {
		t.Error("new timer reports armed")
	}
	s.At(0, func() { tm.Arm(100) })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Error("timer reports armed after firing")
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	s.At(0, func() { tm.Arm(100) })
	s.At(50, func() { tm.Cancel() })
	s.Run()
	if fired != 0 {
		t.Errorf("cancelled timer fired %d times", fired)
	}
}

func TestTimerRearmReplacesPending(t *testing.T) {
	s := New()
	var times []units.Time
	tm := NewTimer(s, func() { times = append(times, s.Now()) })
	s.At(0, func() { tm.Arm(100) })
	s.At(50, func() { tm.Arm(100) }) // replaces: should fire once at 150
	s.Run()
	if len(times) != 1 || times[0] != 150 {
		t.Errorf("times = %v, want [150]", times)
	}
}

func TestTimerPeriodic(t *testing.T) {
	s := New()
	var times []units.Time
	var tm *Timer
	tm = NewTimer(s, func() {
		times = append(times, s.Now())
		if len(times) < 3 {
			tm.Arm(10)
		}
	})
	s.At(0, func() { tm.Arm(10) })
	s.Run()
	want := []units.Time{10, 20, 30}
	if len(times) != 3 {
		t.Fatalf("times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestTimerFireAt(t *testing.T) {
	s := New()
	tm := NewTimer(s, func() {})
	s.At(5, func() {
		tm.Arm(10)
		if tm.FireAt() != 15 {
			t.Errorf("FireAt = %v, want 15", tm.FireAt())
		}
	})
	s.Run()
	if tm.FireAt() != units.Never {
		t.Errorf("FireAt after fire = %v, want Never", tm.FireAt())
	}
}

func BenchmarkScheduler(b *testing.B) {
	s := New()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			s.After(1, next)
		}
	}
	s.At(0, next)
	b.ResetTimer()
	s.Run()
}

// Regression: Stop() drains the heap, but a sim.Timer armed before the
// stop still holds a stale EventID. Re-arming (or rescheduling) it after
// Stop must be a no-op — before the fix, Timer.Arm fell through to At()
// and planted a fresh event into the drained scheduler, resurrecting the
// closure (and everything it captured) past teardown.
func TestPostStopArmAndRescheduleAreNoOps(t *testing.T) {
	s := New()
	fired := 0
	tm := NewTimer(s, func() { fired++ })
	tm.Arm(5 * units.Microsecond)
	id := s.At(7*units.Microsecond, func() { fired++ })

	s.At(units.Microsecond, func() { s.Stop() })
	s.Run()
	if fired != 0 {
		t.Fatalf("fired %d events before Stop, want 0", fired)
	}

	// Direct scheduling into a stopped scheduler is rejected.
	if got := s.At(10*units.Microsecond, func() { fired++ }); got != NoEvent {
		t.Errorf("At after Stop returned %v, want NoEvent", got)
	}
	if got := s.AfterArg(units.Microsecond, func(any) { fired++ }, nil); got != NoEvent {
		t.Errorf("AfterArg after Stop returned %v, want NoEvent", got)
	}
	// Stale handles cannot be revived.
	if s.Reschedule(id, 20*units.Microsecond) {
		t.Error("Reschedule of a drained event reported live")
	}
	// Timer re-arm with its stale EventID is swallowed too.
	tm.Arm(3 * units.Microsecond)
	if tm.Armed() {
		t.Error("Timer.Armed() true after arming a stopped scheduler")
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after post-Stop arms, want 0", got)
	}
	s.Run()
	if fired != 0 {
		t.Errorf("post-Stop events fired %d times, want 0", fired)
	}

	// RunUntil restarts the scheduler: new events are accepted again and
	// the revived timer works normally.
	s.RunUntil(s.Now())
	tm.Arm(2 * units.Microsecond)
	if !tm.Armed() {
		t.Fatal("Timer did not arm after the scheduler restarted")
	}
	s.Run()
	if fired != 1 {
		t.Errorf("fired %d after restart, want 1", fired)
	}
	if err := s.DebugCheck(); err != nil {
		t.Errorf("DebugCheck: %v", err)
	}
}

// DebugCheck accepts a heavily churned scheduler.
func TestDebugCheckOnChurn(t *testing.T) {
	s := New()
	var ids []EventID
	for i := 0; i < 500; i++ {
		ids = append(ids, s.At(units.Time(1+i%37), func() {}))
		if i%3 == 0 {
			s.Cancel(ids[i/2])
		}
		if i%5 == 0 {
			s.Reschedule(ids[i/3], units.Time(40+i%11))
		}
		if err := s.DebugCheck(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	s.Run()
	if err := s.DebugCheck(); err != nil {
		t.Fatalf("after run: %v", err)
	}
}
