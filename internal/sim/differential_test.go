package sim

import (
	"container/heap"
	"fmt"
	"testing"

	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

// This file cross-checks the indexed four-ary heap against a reference
// scheduler built on container/heap — the shape of the implementation
// this package replaced. The reference "cancels" by ghosting (the dead
// entry stays queued and pops as a no-op) and "reschedules" by ghosting
// plus pushing a freshly sequenced copy, which is exactly the semantics
// the old sim.Timer had. Driving both with the same randomized
// schedule/cancel/reschedule trace must produce the same execution
// order and the same clock: in-place removal is an optimization, not a
// behavior change.

type refEvent struct {
	at  units.Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() (x any) {
	old := *h
	n := len(old) - 1
	x = old[n]
	*h = old[:n]
	return x
}

type refSched struct {
	now  units.Time
	seq  uint64
	h    refHeap
	live map[uint64]*refEvent
}

func newRefSched() *refSched {
	return &refSched{live: make(map[uint64]*refEvent)}
}

func (r *refSched) At(t units.Time, fn func()) uint64 {
	r.seq++
	ev := &refEvent{at: t, seq: r.seq, fn: fn}
	heap.Push(&r.h, ev)
	r.live[r.seq] = ev
	return r.seq
}

func (r *refSched) Cancel(id uint64) bool {
	ev := r.live[id]
	if ev == nil {
		return false
	}
	delete(r.live, id)
	ev.fn = nil // ghost: stays queued, pops as a no-op
	return true
}

// Reschedule ghosts the old entry and pushes a freshly sequenced copy,
// returning the new handle (the reference has no stable handles).
func (r *refSched) Reschedule(id uint64, t units.Time) (uint64, bool) {
	ev := r.live[id]
	if ev == nil {
		return 0, false
	}
	fn := ev.fn
	delete(r.live, id)
	ev.fn = nil
	return r.At(t, fn), true
}

func (r *refSched) RunUntil(deadline units.Time) {
	for len(r.h) > 0 && r.h[0].at <= deadline {
		ev := heap.Pop(&r.h).(*refEvent)
		r.now = ev.at
		if ev.fn != nil {
			delete(r.live, ev.seq)
			ev.fn()
		}
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// TestDifferentialAgainstContainerHeap drives both schedulers with an
// identical randomized trace and requires identical firing order, clock
// advance and live-event counts after every chunk.
func TestDifferentialAgainstContainerHeap(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xdecafbad} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			dut := New()
			ref := newRefSched()

			var dutLog, refLog []uint64
			var token uint64
			// Parallel handle lists: index i refers to the same logical
			// event in both schedulers.
			var dutIDs []EventID
			var refIDs []uint64

			base := units.Time(0)
			for chunk := 0; chunk < 200; chunk++ {
				for op := 0; op < 30; op++ {
					switch r.Intn(5) {
					case 0, 1: // schedule
						token++
						tok := token
						at := base + units.Time(1+r.Intn(5000))
						// Exercise both payload forms on the DUT; the
						// reference only has closures.
						if r.Intn(2) == 0 {
							dutIDs = append(dutIDs, dut.At(at, func() { dutLog = append(dutLog, tok) }))
						} else {
							dutIDs = append(dutIDs, dut.AtArg(at, func(a any) { dutLog = append(dutLog, a.(uint64)) }, tok))
						}
						refIDs = append(refIDs, ref.At(at, func() { refLog = append(refLog, tok) }))
					case 2: // cancel a random handle (live or stale)
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						ok1 := dut.Cancel(dutIDs[i])
						ok2 := ref.Cancel(refIDs[i])
						if ok1 != ok2 {
							t.Fatalf("chunk %d: Cancel liveness diverged: dut=%v ref=%v", chunk, ok1, ok2)
						}
					case 3: // reschedule a random handle
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						at := base + units.Time(1+r.Intn(5000))
						ok1 := dut.Reschedule(dutIDs[i], at)
						nid, ok2 := ref.Reschedule(refIDs[i], at)
						if ok1 != ok2 {
							t.Fatalf("chunk %d: Reschedule liveness diverged: dut=%v ref=%v", chunk, ok1, ok2)
						}
						if ok2 {
							refIDs[i] = nid
						}
					case 4: // burst of same-instant events: stresses FIFO ties
						at := base + units.Time(1+r.Intn(50))
						for k := 0; k < 3; k++ {
							token++
							tok := token
							dutIDs = append(dutIDs, dut.At(at, func() { dutLog = append(dutLog, tok) }))
							refIDs = append(refIDs, ref.At(at, func() { refLog = append(refLog, tok) }))
						}
					}
				}
				base += units.Time(1 + r.Intn(2000))
				dut.RunUntil(base)
				ref.RunUntil(base)
				if dut.Now() != ref.now {
					t.Fatalf("chunk %d: clock diverged: dut=%v ref=%v", chunk, dut.Now(), ref.now)
				}
				if dut.Pending() != len(ref.live) {
					t.Fatalf("chunk %d: live events diverged: dut=%d ref=%d", chunk, dut.Pending(), len(ref.live))
				}
			}
			dut.RunUntil(units.Forever - 1)
			ref.RunUntil(units.Forever - 1)
			if len(dutLog) != len(refLog) {
				t.Fatalf("fired %d events, reference fired %d", len(dutLog), len(refLog))
			}
			for i := range dutLog {
				if dutLog[i] != refLog[i] {
					t.Fatalf("execution order diverged at %d: dut=%d ref=%d", i, dutLog[i], refLog[i])
				}
			}
		})
	}
}
