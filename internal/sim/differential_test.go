package sim

import (
	"container/heap"
	"fmt"
	"testing"

	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/units"
)

// This file cross-checks the indexed four-ary heap against a reference
// scheduler built on container/heap — the shape of the implementation
// this package replaced. The reference "cancels" by ghosting (the dead
// entry stays queued and pops as a no-op) and "reschedules" by ghosting
// plus pushing a freshly sequenced copy, which is exactly the semantics
// the old sim.Timer had. Driving both with the same randomized
// schedule/cancel/reschedule trace must produce the same execution
// order and the same clock: in-place removal is an optimization, not a
// behavior change.

type refEvent struct {
	at  units.Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() (x any) {
	old := *h
	n := len(old) - 1
	x = old[n]
	*h = old[:n]
	return x
}

type refSched struct {
	now  units.Time
	seq  uint64
	h    refHeap
	live map[uint64]*refEvent
}

func newRefSched() *refSched {
	return &refSched{live: make(map[uint64]*refEvent)}
}

func (r *refSched) At(t units.Time, fn func()) uint64 {
	r.seq++
	ev := &refEvent{at: t, seq: r.seq, fn: fn}
	heap.Push(&r.h, ev)
	r.live[r.seq] = ev
	return r.seq
}

func (r *refSched) Cancel(id uint64) bool {
	ev := r.live[id]
	if ev == nil {
		return false
	}
	delete(r.live, id)
	ev.fn = nil // ghost: stays queued, pops as a no-op
	return true
}

// Reschedule ghosts the old entry and pushes a freshly sequenced copy,
// returning the new handle (the reference has no stable handles).
func (r *refSched) Reschedule(id uint64, t units.Time) (uint64, bool) {
	ev := r.live[id]
	if ev == nil {
		return 0, false
	}
	fn := ev.fn
	delete(r.live, id)
	ev.fn = nil
	return r.At(t, fn), true
}

func (r *refSched) RunUntil(deadline units.Time) {
	for len(r.h) > 0 && r.h[0].at <= deadline {
		ev := heap.Pop(&r.h).(*refEvent)
		r.now = ev.at
		if ev.fn != nil {
			delete(r.live, ev.seq)
			ev.fn()
		}
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// TestDifferentialHorizonCrossing drives three schedulers — the
// wheel+heap hybrid (New), the heap-only configuration (NewHeapOnly) and
// the container/heap ghost-semantics reference — with one randomized
// trace whose fire times straddle every band boundary: the current
// level-0 bucket, the level-0 wheel, the level-1 wheel, and the
// beyond-horizon heap overflow. Clock steps likewise range from
// intra-bucket hops to leaps that cross whole level-1 blocks, so events
// repeatedly migrate heap→wheel→heap as the horizon advances. On top of
// the per-op schedule/cancel mix, a mass-churn op cancels or reschedules
// a window of recent handles in one burst (reschedules deliberately jump
// bands). All three must agree on firing order, clock and liveness after
// every chunk, and both DUTs must pass DebugCheck — wheel residency is a
// placement optimization, never a behavior change.
func TestDifferentialHorizonCrossing(t *testing.T) {
	const (
		l0Span = 1 << l1GranBits // level-0 wheel horizon, in time units
		l1Span = int64(1) << 35  // level-1 wheel horizon
		ops    = 40
		chunks = 60
	)
	for _, seed := range []uint64{7, 99, 0xfeedface} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			dut := New()
			ho := NewHeapOnly()
			ref := newRefSched()

			var dutLog, hoLog, refLog []uint64
			var token uint64
			var dutIDs, hoIDs []EventID
			var refIDs []uint64

			offset := func() units.Time {
				switch r.Intn(4) {
				case 0: // current or next level-0 bucket
					return units.Time(1 + r.Intn(1<<l0GranBits))
				case 1: // level-0 wheel band
					return units.Time(1 + r.Intn(l0Span))
				case 2: // level-1 wheel band
					return units.Time(int64(l0Span) + int64(r.Intn(int(l1Span-l0Span))))
				default: // beyond the wheel horizon: heap overflow
					return units.Time(l1Span + int64(r.Intn(int(l1Span))))
				}
			}
			schedule := func(at units.Time) {
				token++
				tok := token
				dutIDs = append(dutIDs, dut.At(at, func() { dutLog = append(dutLog, tok) }))
				hoIDs = append(hoIDs, ho.At(at, func() { hoLog = append(hoLog, tok) }))
				refIDs = append(refIDs, ref.At(at, func() { refLog = append(refLog, tok) }))
			}

			base := units.Time(0)
			for chunk := 0; chunk < chunks; chunk++ {
				for op := 0; op < ops; op++ {
					switch r.Intn(6) {
					case 0, 1: // schedule across a random band
						schedule(base + offset())
					case 2: // cancel a random handle (live or stale)
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						ok1 := dut.Cancel(dutIDs[i])
						ok2 := ho.Cancel(hoIDs[i])
						ok3 := ref.Cancel(refIDs[i])
						if ok1 != ok3 || ok2 != ok3 {
							t.Fatalf("chunk %d: Cancel liveness diverged: dut=%v heapOnly=%v ref=%v", chunk, ok1, ok2, ok3)
						}
					case 3: // reschedule into a (usually different) band
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						at := base + offset()
						ok1 := dut.Reschedule(dutIDs[i], at)
						ok2 := ho.Reschedule(hoIDs[i], at)
						nid, ok3 := ref.Reschedule(refIDs[i], at)
						if ok1 != ok3 || ok2 != ok3 {
							t.Fatalf("chunk %d: Reschedule liveness diverged: dut=%v heapOnly=%v ref=%v", chunk, ok1, ok2, ok3)
						}
						if ok3 {
							refIDs[i] = nid
						}
					case 4: // same-instant burst at a band boundary: FIFO ties
						at := base + units.Time(1+r.Intn(3)*l0Span/2)
						for k := 0; k < 3; k++ {
							schedule(at)
						}
					case 5: // mass churn: cancel or band-hop a window of recent handles
						n := len(dutIDs)
						if n == 0 {
							continue
						}
						lo := n - 16
						if lo < 0 {
							lo = 0
						}
						for i := lo; i < n; i++ {
							if (i-lo)%2 == 0 {
								dut.Cancel(dutIDs[i])
								ho.Cancel(hoIDs[i])
								ref.Cancel(refIDs[i])
							} else {
								at := base + offset()
								dut.Reschedule(dutIDs[i], at)
								ho.Reschedule(hoIDs[i], at)
								if nid, ok := ref.Reschedule(refIDs[i], at); ok {
									refIDs[i] = nid
								}
							}
						}
					}
				}
				// Step the clock: intra-bucket, cross-bucket, cross-block, or
				// a leap over several level-1 blocks.
				switch r.Intn(4) {
				case 0:
					base += units.Time(1 + r.Intn(1<<l0GranBits))
				case 1:
					base += units.Time(1 + r.Intn(l0Span))
				case 2:
					base += units.Time(1 + int64(r.Intn(int(l1Span))))
				default:
					base += units.Time(l1Span + int64(r.Intn(int(l1Span))))
				}
				dut.RunUntil(base)
				ho.RunUntil(base)
				ref.RunUntil(base)
				if dut.Now() != ref.now || ho.Now() != ref.now {
					t.Fatalf("chunk %d: clock diverged: dut=%v heapOnly=%v ref=%v", chunk, dut.Now(), ho.Now(), ref.now)
				}
				if dut.Pending() != len(ref.live) || ho.Pending() != len(ref.live) {
					t.Fatalf("chunk %d: live events diverged: dut=%d heapOnly=%d ref=%d", chunk, dut.Pending(), ho.Pending(), len(ref.live))
				}
				if err := dut.DebugCheck(); err != nil {
					t.Fatalf("chunk %d: hybrid DebugCheck: %v", chunk, err)
				}
				if err := ho.DebugCheck(); err != nil {
					t.Fatalf("chunk %d: heap-only DebugCheck: %v", chunk, err)
				}
			}
			dut.RunUntil(units.Forever - 1)
			ho.RunUntil(units.Forever - 1)
			ref.RunUntil(units.Forever - 1)
			if len(dutLog) != len(refLog) || len(hoLog) != len(refLog) {
				t.Fatalf("fired dut=%d heapOnly=%d ref=%d events", len(dutLog), len(hoLog), len(refLog))
			}
			for i := range dutLog {
				if dutLog[i] != refLog[i] || hoLog[i] != refLog[i] {
					t.Fatalf("execution order diverged at %d: dut=%d heapOnly=%d ref=%d", i, dutLog[i], hoLog[i], refLog[i])
				}
			}
		})
	}
}

// TestDifferentialAgainstContainerHeap drives both schedulers with an
// identical randomized trace and requires identical firing order, clock
// advance and live-event counts after every chunk.
func TestDifferentialAgainstContainerHeap(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xdecafbad} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rng.New(seed)
			dut := New()
			ref := newRefSched()

			var dutLog, refLog []uint64
			var token uint64
			// Parallel handle lists: index i refers to the same logical
			// event in both schedulers.
			var dutIDs []EventID
			var refIDs []uint64

			base := units.Time(0)
			for chunk := 0; chunk < 200; chunk++ {
				for op := 0; op < 30; op++ {
					switch r.Intn(5) {
					case 0, 1: // schedule
						token++
						tok := token
						at := base + units.Time(1+r.Intn(5000))
						// Exercise both payload forms on the DUT; the
						// reference only has closures.
						if r.Intn(2) == 0 {
							dutIDs = append(dutIDs, dut.At(at, func() { dutLog = append(dutLog, tok) }))
						} else {
							dutIDs = append(dutIDs, dut.AtArg(at, func(a any) { dutLog = append(dutLog, a.(uint64)) }, tok))
						}
						refIDs = append(refIDs, ref.At(at, func() { refLog = append(refLog, tok) }))
					case 2: // cancel a random handle (live or stale)
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						ok1 := dut.Cancel(dutIDs[i])
						ok2 := ref.Cancel(refIDs[i])
						if ok1 != ok2 {
							t.Fatalf("chunk %d: Cancel liveness diverged: dut=%v ref=%v", chunk, ok1, ok2)
						}
					case 3: // reschedule a random handle
						if len(dutIDs) == 0 {
							continue
						}
						i := r.Intn(len(dutIDs))
						at := base + units.Time(1+r.Intn(5000))
						ok1 := dut.Reschedule(dutIDs[i], at)
						nid, ok2 := ref.Reschedule(refIDs[i], at)
						if ok1 != ok2 {
							t.Fatalf("chunk %d: Reschedule liveness diverged: dut=%v ref=%v", chunk, ok1, ok2)
						}
						if ok2 {
							refIDs[i] = nid
						}
					case 4: // burst of same-instant events: stresses FIFO ties
						at := base + units.Time(1+r.Intn(50))
						for k := 0; k < 3; k++ {
							token++
							tok := token
							dutIDs = append(dutIDs, dut.At(at, func() { dutLog = append(dutLog, tok) }))
							refIDs = append(refIDs, ref.At(at, func() { refLog = append(refLog, tok) }))
						}
					}
				}
				base += units.Time(1 + r.Intn(2000))
				dut.RunUntil(base)
				ref.RunUntil(base)
				if dut.Now() != ref.now {
					t.Fatalf("chunk %d: clock diverged: dut=%v ref=%v", chunk, dut.Now(), ref.now)
				}
				if dut.Pending() != len(ref.live) {
					t.Fatalf("chunk %d: live events diverged: dut=%d ref=%d", chunk, dut.Pending(), len(ref.live))
				}
			}
			dut.RunUntil(units.Forever - 1)
			ref.RunUntil(units.Forever - 1)
			if len(dutLog) != len(refLog) {
				t.Fatalf("fired %d events, reference fired %d", len(dutLog), len(refLog))
			}
			for i := range dutLog {
				if dutLog[i] != refLog[i] {
					t.Fatalf("execution order diverged at %d: dut=%d ref=%d", i, dutLog[i], refLog[i])
				}
			}
		})
	}
}
