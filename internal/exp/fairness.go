package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// FairnessConfig parameterizes the §5.2.4 fairness study (Fig 20):
// B0..B3 on L0 send long-lived flows to R0 while A-bursts congest P3;
// P2 is first undetermined (rates held, HoL-limited), then — after the
// bursts stop — becomes a genuine congestion point shared by five flows
// (B0..B3 plus F1), whose fair share is 8 Gbps.
type FairnessConfig struct {
	Kind FabricKind
	// CC is the TCD-aware controller under test (CCDCQCNTCD or
	// CCTIMELYTCD in the paper).
	CC      CCKind
	Horizon units.Time
	Sample  units.Time
	Seed    uint64
	// Faults, if non-empty, is a fault schedule (including the
	// adversarial kinds) armed against the rig — the -faults flag of
	// cmd/tcdsim. Empty means a fault-free run, byte-identical to one
	// without the injector.
	Faults *fault.Spec
}

// DefaultFairnessConfig returns the paper's Fig 20 setup.
func DefaultFairnessConfig(kind FabricKind, cc CCKind) FairnessConfig {
	return FairnessConfig{
		Kind:    kind,
		CC:      cc,
		Horizon: 60 * units.Millisecond,
		Sample:  50 * units.Microsecond,
	}
}

// Fairness runs the Fig 20 experiment.
func Fairness(cfg FairnessConfig) *Result {
	if cfg.Horizon == 0 {
		cfg.Horizon = 10 * units.Millisecond
	}
	if cfg.Sample == 0 {
		cfg.Sample = 50 * units.Microsecond
	}
	tcfg := topo.DefaultFig2Config()
	tcfg.WithB = true
	hostCfg := host.DefaultConfig()
	hostCfg.AckEveryPacket = cfg.CC.NeedsAcks()
	rig := NewFig2Rig(Fig2Opts{
		Kind:    cfg.Kind,
		Det:     DetTCD,
		Seed:    cfg.Seed,
		Topo:    tcfg,
		HostCfg: hostCfg,
		Record:  true,
	})
	res := NewResult(fmt.Sprintf("fig20-fairness-%s", cfg.CC))
	inj := rig.mustInjectFaults(cfg.Faults)

	line := 40 * units.Gbps
	big := 100 * 1000 * units.MB
	// F1: long-lived S1 -> R1.
	rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, big, 0, rig.NewCC(cfg.CC, line))
	// Bursts: 64 KB x 15 hosts, back-to-back rounds for ~3 ms.
	burstStart := 200 * units.Microsecond
	bursts := rig.LaunchBursts(burstStart, 64*units.KB, 16, units.TxTime(15*64*units.KB, line))
	// B0..B3: long-lived flows to R0 starting with the bursts.
	var bFlows []*host.Flow
	for _, b := range rig.F2.B {
		bFlows = append(bFlows, rig.Mgr.AddFlow(b, rig.F2.R0, big, burstStart, rig.NewCC(cfg.CC, line)))
	}

	tr := stats.NewTracer(rig.Sched, cfg.Sample, cfg.Horizon)
	// Long -full runs (400 ms) must not grow memory with run length; the
	// fairness scalars are window means, which decimation preserves.
	tr.SetCap(TracerCap)
	for i, f := range bFlows {
		probe := FlowRateProbe(f, cfg.Sample)
		res.Series[fmt.Sprintf("b%d_gbps", i)] = tr.Add(
			fmt.Sprintf("B%d goodput Gbps", i),
			func() float64 { return probe() / 1e9 })
	}
	tr.Start()
	rig.Run(cfg.Horizon)

	var burstEnd units.Time
	for _, b := range bursts {
		if b.Done && b.Start+b.FCT > burstEnd {
			burstEnd = b.Start + b.FCT
		}
	}
	res.Scalars["burst_end_ms"] = burstEnd.Millis()

	// Post-burst steady state: measure over the final quarter of the run,
	// plus a mid-run window to expose the recovery trend (DCQCN's additive
	// increase approaches the 8 Gbps share over hundreds of ms; TIMELY is
	// there within a few ms).
	lo, hi := cfg.Horizon*3/4, cfg.Horizon
	midLo, midHi := cfg.Horizon/3, cfg.Horizon/2
	var rates []float64
	sum := 0.0
	for i := range bFlows {
		s := res.Series[fmt.Sprintf("b%d_gbps", i)]
		m := s.MeanOver(lo, hi)
		rates = append(rates, m)
		sum += m
		res.Scalars[fmt.Sprintf("b%d_steady_gbps", i)] = m
		res.Scalars[fmt.Sprintf("b%d_mid_gbps", i)] = s.MeanOver(midLo, midHi)
	}
	res.Scalars["sum_steady_gbps"] = sum
	res.Scalars["jain_index"] = JainIndex(rates)
	res.Scalars["p2_ue_marks"] = float64(rig.P2.MarkedUE)
	res.Scalars["p2_ce_marks"] = float64(rig.P2.MarkedCE)
	// UE marks on B flows during the burst era (held, not cut).
	ue := 0
	for _, f := range bFlows {
		ue += f.UEPackets()
	}
	res.Scalars["b_ue_packets"] = float64(ue)
	if inj.Armed > 0 {
		res.Scalars["fault_actions_armed"] = float64(inj.Armed)
		res.Scalars["fault_drops"] = float64(rig.Net.FaultDrops)
		attackScalars(res, rig.Net)
	}
	return res
}

// JainIndex computes Jain's fairness index: (Σx)² / (n·Σx²); 1 is
// perfectly fair.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sq)
}
