package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/units"
)

// Fig8 evaluates the conceptual ON-OFF model surface: Ton as a function
// of the congestion degree ε and the draining rate Rd, at the paper's
// rendering parameters (τ = 8 us, C = 40 Gbps), plus the flat reference
// plane at ε = 0.05.
func Fig8() *Result {
	res := NewResult("fig8-ton-surface")
	p := core.ModelParams{
		C:         40 * units.Gbps,
		B1MinusB0: 2 * units.KB,
		Tau:       8 * units.Microsecond,
	}
	epsGrid := []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}
	var rdGrid []units.Rate
	for rd := units.Rate(2 * units.Gbps); rd <= 20*units.Gbps; rd += 2 * units.Gbps {
		rdGrid = append(rdGrid, rd)
	}
	pts := core.TonSurface(p, epsGrid, rdGrid)
	for _, pt := range pts {
		res.Scalars[fmt.Sprintf("Ton(eps=%.2f,Rd=%v)us", pt.Eps, pt.Rd)] = pt.Ton.Micros()
	}
	// The flat reference plane of the figure: max(Ton) at eps = 0.05.
	plane := core.MaxTonCEE(p, core.RecommendedEps)
	res.Scalars["plane_eps0.05_us"] = plane.Micros()
	// Shape facts the figure demonstrates.
	res.AddNote("Ton rises slowly then rapidly as eps decreases (hyperbolic in eps)")
	res.AddNote("the eps=0.05 plane covers all Ton values with eps >= 0.05 and Rd <= C/2")
	covered := 0
	for _, pt := range pts {
		if pt.Eps >= core.RecommendedEps && pt.Ton <= plane {
			covered++
		}
	}
	res.Scalars["covered_points"] = float64(covered)
	return res
}

// Section43Table reproduces the §4.3 parameter table: max(Ton) for
// 40/100/200 Gbps at ε = 0.05, MTU = 1000 B, t_p = 1 us.
func Section43Table() *Result {
	res := NewResult("sec4.3-maxton-table")
	for _, c := range []units.Rate{40 * units.Gbps, 100 * units.Gbps, 200 * units.Gbps} {
		p := core.CEEParams(1000, c, units.Microsecond)
		res.Scalars[fmt.Sprintf("maxTon@%v_us", c)] = core.MaxTonCEE(p, core.RecommendedEps).Micros()
	}
	return res
}
