package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// MultiPrioConfig parameterizes the §4.5 validation: with strict-priority
// scheduling, high-priority traffic preempting a low-priority queue
// during RESUME stretches the observed OFF periods, but — as the paper
// argues — the deduced max(Ton) still upper-bounds the ON periods, so
// TCD's classification on the low priority is not disturbed.
type MultiPrioConfig struct {
	// HighLoad is the high-priority interference load (fraction of the
	// 40 Gbps line) crossing the observed port.
	HighLoad float64
	Horizon  units.Time
	Seed     uint64
}

// DefaultMultiPrioConfig returns a 30% high-priority interference load.
func DefaultMultiPrioConfig() MultiPrioConfig {
	return MultiPrioConfig{HighLoad: 0.3, Horizon: 8 * units.Millisecond}
}

// MultiPrio builds a two-priority chain: low-priority victim traffic
// (h0 -> r) shares a link with high-priority interference (hp -> r2),
// while low-priority bursts congest the last hop. The low-priority
// detector on the shared port must classify undetermined during the
// burst era and recover to non-congestion — never congestion — despite
// preemption jitter.
func MultiPrio(cfg MultiPrioConfig) *Result {
	if cfg.Horizon == 0 {
		cfg.Horizon = 8 * units.Millisecond
	}
	res := NewResult("multiprio-sec4.5")
	rate := 40 * units.Gbps
	delay := units.Microsecond

	g := topo.New()
	sw0 := g.AddSwitch("sw0")
	sw1 := g.AddSwitch("sw1")
	h0 := g.AddHost("h0") // low-prio victim sender
	hc := g.AddHost("hc") // low-prio contributor (stuck at the root)
	hp := g.AddHost("hp") // high-prio interference sender
	r := g.AddHost("r")   // burst destination (low prio congestion root)
	r2 := g.AddHost("r2") // destination for victim and high-prio traffic
	g.Connect(h0, sw0, rate, delay)
	g.Connect(hc, sw0, rate, delay)
	g.Connect(hp, sw0, rate, delay)
	shared := g.Connect(sw0, sw1, rate, delay)
	g.Connect(r, sw1, rate, delay)
	g.Connect(r2, sw1, rate, delay)
	var bursters []packet.NodeID
	for i := 0; i < 8; i++ {
		b := g.AddHost(fmt.Sprintf("b%d", i))
		g.Connect(b, sw1, rate, delay)
		bursters = append(bursters, b)
	}

	s := sim.New()
	fc := fabric.DefaultConfig()
	fc.Priorities = 2
	n := fabric.New(s, g, fc)
	routing.BuildShortestPath(g).Attach(n, routing.FirstPath())
	pfc.Install(n, pfc.Config{Xoff: 100 * units.KB, Xon: 98 * units.KB, Headroom: 100 * units.KB})

	// TCD on the shared port, low priority (priority 1; 0 is high).
	sharedPort := n.PortOn(sw0, shared)
	params := core.CEEParams(1000, rate, delay)
	det := core.NewTCD(core.TCDConfig{
		MaxTon:     core.MaxTonCEE(params, core.RecommendedEps),
		CongThresh: 200 * units.KB,
		LowThresh:  10 * units.KB,
	})
	det.RecordTransitions = true
	sharedPort.AttachDetector(1, det)

	mgr := host.Install(n, host.DefaultConfig())
	big := 1000 * units.MB

	lowVictim := mgr.AddFlow(h0, r2, big, 0, host.FixedRate(10*units.Gbps))
	mgr.SetPriority(lowVictim, 1)
	// The contributor crosses the shared port into the congested root;
	// its packets pile up at sw1 and trigger the prio-1 PAUSE that makes
	// the shared port ON-OFF.
	contributor := mgr.AddFlow(hc, r, big, 0, host.FixedRate(15*units.Gbps))
	mgr.SetPriority(contributor, 1)
	hpRate := units.Rate(cfg.HighLoad * float64(rate))
	hiFlow := mgr.AddFlow(hp, r2, big, 0, host.FixedRate(hpRate))
	mgr.SetPriority(hiFlow, 0)

	// Low-priority bursts into r for ~3 ms.
	burstStart := 200 * units.Microsecond
	for round := 0; round < 12; round++ {
		at := burstStart + units.Time(round)*units.TxTime(8*64*units.KB, rate)
		for _, b := range bursters {
			f := mgr.AddFlow(b, r, 64*units.KB, at, host.FixedRate(rate))
			mgr.SetPriority(f, 1)
		}
	}

	s.RunUntil(cfg.Horizon)

	res.Scalars["victim_ue"] = float64(lowVictim.UEPackets())
	res.Scalars["victim_ce"] = float64(lowVictim.CEPackets())
	res.Scalars["low_prio_pause_us"] = sharedPort.PauseTime.Micros()
	res.Scalars["final_state"] = float64(det.State())
	res.Scalars["time_undetermined_us"] = det.TimeIn(core.Undetermined).Micros()
	res.Scalars["time_congestion_us"] = det.TimeIn(core.Congestion).Micros()
	res.Scalars["hi_pkts"] = float64(hiFlow.PktsRxed())
	for _, tr := range det.Transitions {
		res.AddNote("shared port prio1 %v: %v -> %v", tr.At, tr.From, tr.To)
	}
	return res
}
