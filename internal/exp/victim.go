package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
	"github.com/tcdnet/tcd/internal/workload"
)

// VictimConfig parameterizes the §5.1.3 victim-flow scenario: the
// Figure-2 topology with 20 Gbps edge links, Hadoop (or MPI/IO) traffic
// from S0 (victims, to R0) and S1 (to R1), and synchronized bursts from
// A0..A14 into R1. Every S0 flow is a potential victim: its path crosses
// only ports that can be paused by spreading, never the congestion root.
type VictimConfig struct {
	Kind FabricKind
	Det  DetectorKind
	// CC is the congestion control for S0/S1 flows.
	CC CCKind
	// Eps overrides the TCD congestion degree (Fig 14 sweeps it).
	Eps float64
	// Horizon ends the run; flows are generated over the first 2/3.
	Horizon units.Time
	// BurstSize fixes the per-host burst size; zero samples the workload
	// CDF per burst (heavy-tailed bursts, as §5.1.3 describes).
	BurstSize units.ByteSize
	// BurstMeanGap is the exponential mean between synchronized rounds.
	BurstMeanGap units.Time
	// S0Load and S1Load are offered loads as fractions of the 20 Gbps
	// edge links.
	S0Load, S1Load float64
	// Par overrides detector parameters (ablations).
	Par DetectorParams
	// CustomCC, if set, builds the per-flow controller instead of CC
	// (ablations of the rate-adjustment rules).
	CustomCC func(r *Rig, line units.Rate) host.RateController
	// Seed drives all randomness.
	Seed uint64
}

// DefaultVictimConfig returns the victim scenario at experiment scale.
func DefaultVictimConfig(kind FabricKind, det DetectorKind, cc CCKind) VictimConfig {
	cfg := VictimConfig{
		Kind:    kind,
		Det:     det,
		CC:      cc,
		Horizon: 30 * units.Millisecond,
		S0Load:  0.5,
		S1Load:  0.5,
	}
	// One synchronized round carries ~2.8 MB (15 hosts, heavy-tailed
	// sizes). The gap sets how much of the time the root port is
	// congested: CEE's ECN needs deep queues (Kmax 200 KB) to mismark, so
	// its scenario runs hotter; IB's FECN mismarks at 50 KB, so a cooler
	// cadence already reproduces the paper's regime.
	if kind == CEE {
		cfg.BurstMeanGap = 450 * units.Microsecond
	} else {
		cfg.BurstMeanGap = 4 * units.Millisecond
	}
	return cfg
}

// VictimOutcome summarizes one victim run.
type VictimOutcome struct {
	Res *Result
	// Rig is the network the scenario ran on, for post-hoc inspection.
	Rig *Fig2Rig
	// Victims is the number of S0 flows that received at least one
	// packet; MarkedCE of them saw a CE mark, MarkedUE a UE mark.
	Victims, MarkedCE, MarkedUE int
	// VictimCEPackets counts mistakenly CE-marked victim packets.
	VictimCEPackets int
	// MeanFCTus is the mean victim FCT in microseconds; flows still
	// incomplete at the horizon contribute their censored elapsed time.
	MeanFCTus float64
	// Censored counts victims that had not finished by the horizon.
	Censored int
	// UEFlowFrac is the fraction of victim flows marked UE.
	UEFlowFrac float64
	// CEFlowFrac is the fraction of victim flows marked CE — the Table 3
	// "victim flows marked with CE" metric.
	CEFlowFrac float64
	// Breakdown groups victim FCT (us) by flow size.
	Breakdown *stats.Breakdown
}

// Victim runs the scenario.
func Victim(cfg VictimConfig) *VictimOutcome {
	if cfg.Horizon == 0 {
		cfg.Horizon = 30 * units.Millisecond
	}
	if cfg.BurstMeanGap == 0 {
		cfg.BurstMeanGap = 300 * units.Microsecond
	}
	if cfg.S0Load == 0 {
		cfg.S0Load = 0.5
	}
	if cfg.S1Load == 0 {
		cfg.S1Load = 0.5
	}
	name := fmt.Sprintf("victim-%s-%s-%s", cfg.Kind, cfg.Det, cfg.CC)
	tcfg := topo.DefaultFig2Config()
	tcfg.EdgeRate = 20 * units.Gbps
	hostCfg := host.DefaultConfig()
	hostCfg.AckEveryPacket = cfg.CC.NeedsAcks()
	par := cfg.Par
	if cfg.Eps != 0 {
		par.Eps = cfg.Eps
	}
	rig := NewFig2Rig(Fig2Opts{
		Kind:    cfg.Kind,
		Det:     cfg.Det,
		Par:     par,
		Seed:    cfg.Seed,
		Topo:    tcfg,
		HostCfg: hostCfg,
	})
	res := NewResult(name)
	r := rng.New(cfg.Seed + 77)

	edge := 20 * units.Gbps
	genWindow := cfg.Horizon * 2 / 3

	sizes := workload.Hadoop()
	if cfg.Kind == IB {
		sizes = workload.MPISizes() // MPI sizes; bursts carry the I/O-like volume
	}

	// S0 -> R0 (victims) and S1 -> R1, Poisson arrivals at the configured
	// edge loads.
	var victims, senders []*host.Flow
	newCtrl := func() host.RateController {
		if cfg.CustomCC != nil {
			return cfg.CustomCC(rig.Rig, edge)
		}
		return rig.NewCC(cfg.CC, edge)
	}
	// IB endpoints send the paper's MPI + I/O mix (10% I/O); the mean
	// accounts for the heavy I/O tail so the offered load stays at the
	// configured fraction.
	sampleSize := func() units.ByteSize {
		if cfg.Kind == IB && r.Bool(0.1) {
			return workload.IOSizes(r)
		}
		return sizes.Sample(r)
	}
	meanBits := float64(sizes.Mean().Bits())
	if cfg.Kind == IB {
		ioMean := float64((512*units.KB + units.MB + 2*units.MB + 4*units.MB).Bits()) / 4
		meanBits = 0.9*meanBits + 0.1*ioMean
	}
	addPoisson := func(src, dst packet.NodeID, load float64, out *[]*host.Flow) {
		lambda := load * float64(edge) / meanBits // flows per second
		t := units.FromSeconds(r.Exp(1 / lambda))
		for t < genWindow {
			f := rig.Mgr.AddFlow(src, dst, sampleSize(), t, newCtrl())
			*out = append(*out, f)
			t += units.FromSeconds(r.Exp(1 / lambda))
		}
	}
	addPoisson(rig.F2.S0, rig.F2.R0, cfg.S0Load, &victims)
	addPoisson(rig.F2.S1, rig.F2.R1, cfg.S1Load, &senders)

	// Synchronized burst rounds from A0..A14 into R1.
	t := units.Time(0)
	line := 40 * units.Gbps
	for t < genWindow {
		for _, a := range rig.F2.A {
			size := cfg.BurstSize
			if size == 0 {
				if cfg.Kind == IB {
					// The paper's IB generators send "MPI and I/O
					// messages in typical sizes": mostly small MPI
					// messages with a 10% I/O tail.
					if r.Bool(0.1) {
						size = workload.IOSizes(r)
					} else {
						size = sizes.Sample(r)
					}
				} else {
					size = sizes.Sample(r)
				}
			}
			rig.Mgr.AddFlow(a, rig.F2.R1, size, t, host.FixedRate(line))
		}
		t += units.FromSeconds(r.Exp(cfg.BurstMeanGap.Seconds()))
	}

	rig.Run(cfg.Horizon)

	out := &VictimOutcome{Res: res, Rig: rig, Breakdown: stats.NewBreakdown(10*units.KB, 100*units.KB, units.MB)}
	var fcts []float64
	for _, f := range victims {
		if f.PktsRxed() == 0 {
			continue
		}
		out.Victims++
		if f.CEPackets() > 0 {
			out.MarkedCE++
			out.VictimCEPackets += f.CEPackets()
		}
		if f.UEPackets() > 0 {
			out.MarkedUE++
		}
		// Unfinished victims are right-censored at the horizon: dropping
		// them would credit the scheme that starved them (a falsely
		// throttled flow that never completes must not improve the mean).
		fct := f.FCT
		if !f.Done {
			fct = cfg.Horizon - f.Start
			out.Censored++
		}
		us := fct.Micros()
		fcts = append(fcts, us)
		out.Breakdown.Add(f.Size, us)
	}
	if out.Victims > 0 {
		out.CEFlowFrac = float64(out.MarkedCE) / float64(out.Victims)
		out.UEFlowFrac = float64(out.MarkedUE) / float64(out.Victims)
	}
	out.MeanFCTus = stats.Mean(fcts)
	res.Scalars["victims"] = float64(out.Victims)
	res.Scalars["victim_ce_flow_frac"] = out.CEFlowFrac
	res.Scalars["victim_ue_flow_frac"] = out.UEFlowFrac
	res.Scalars["victim_ce_packets"] = float64(out.VictimCEPackets)
	res.Scalars["victim_mean_fct_us"] = out.MeanFCTus
	res.Scalars["victim_censored"] = float64(out.Censored)
	res.Scalars["sender_flows"] = float64(len(senders))
	res.Tables = append(res.Tables, out.Breakdown.Table("victim FCT (us) by size"))
	return out
}

// Table3Row is one line of the paper's Table 3.
type Table3Row struct {
	Scheme   string
	Fraction float64
}

// Table3 reproduces the victim-flow table: the fraction of victim flows
// mistakenly marked CE under each detection scheme.
func Table3(horizon units.Time, seed uint64) (*Result, []Table3Row) {
	res := NewResult("table3-victim-flows")
	rows := []struct {
		label string
		kind  FabricKind
		det   DetectorKind
		cc    CCKind
	}{
		{"ECN (CEE)", CEE, DetBaseline, CCDCQCN},
		{"TCD (CEE)", CEE, DetTCD, CCDCQCN},
		{"FECN (IB)", IB, DetBaseline, CCIBCC},
		{"TCD (IB)", IB, DetTCD, CCIBCC},
	}
	var out []Table3Row
	for _, row := range rows {
		cfg := DefaultVictimConfig(row.kind, row.det, row.cc)
		if horizon > 0 {
			cfg.Horizon = horizon
		}
		cfg.Seed = seed
		v := Victim(cfg)
		out = append(out, Table3Row{Scheme: row.label, Fraction: v.CEFlowFrac})
		res.Scalars[row.label] = v.CEFlowFrac
		res.AddNote("%-10s victims=%d markedCE=%d fraction=%.3f",
			row.label, v.Victims, v.MarkedCE, v.CEFlowFrac)
	}
	return res, out
}

// Fig14Point is one ε sample of the sensitivity sweep.
type Fig14Point struct {
	Eps             float64
	VictimCEPackets int
}

// Fig14 sweeps the TCD congestion-degree parameter ε and counts
// mistakenly CE-marked victim packets. ε parameterizes the CEE bound
// (Eqn 3); a too-large ε makes max(Ton) smaller than the ON periods of a
// mildly congested tree, so the port is "released" while still ON-OFF
// and OFF-caused queue buildup gets marked as congestion. The scenario
// therefore oversubscribes the root port only mildly (~5%, the paper's
// recommended ε): actual ON periods then have the long tail that small
// bounds misclassify. The paper reports no mistaken marks below ε = 0.1
// and growing mistakes beyond.
func Fig14(kind FabricKind, horizon units.Time, seed uint64) (*Result, []Fig14Point) {
	res := NewResult(fmt.Sprintf("fig14-eps-sensitivity-%s", kind))
	if horizon == 0 {
		horizon = 20 * units.Millisecond
	}
	var pts []Fig14Point
	// Two interference intensities give the ON-period distribution a
	// mild tail (~55us, F1 excess ~1.3G) and a sharper mode (~25us, F1
	// excess ~2.8G), as the paper's heterogeneous bursts do.
	aRates := []units.Rate{17 * units.Gbps, 20 * units.Gbps}
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4} {
		ce := 0
		for _, aRate := range aRates {
			rig := NewFig2Rig(Fig2Opts{
				Kind: kind,
				Det:  DetTCD,
				Par:  DetectorParams{Eps: eps},
				Seed: seed,
			})
			big := 1000 * units.MB
			// Mild oversubscription of P3 with F1 above its fair share:
			// F1's excess backs up through P2 in long, gentle ON-OFF
			// cycles. Bounds shorter than those cycles (large ε) release
			// the port while it is still ON-OFF; the victims then provide
			// the queue that gets mistaken for congestion.
			rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, big, 0, host.FixedRate(25*units.Gbps))
			rig.Mgr.AddFlow(rig.F2.A[0], rig.F2.R1, big, 0, host.FixedRate(aRate))
			// Victims to R0 across the P1/P2 chain.
			f0 := rig.Mgr.AddFlow(rig.F2.S0, rig.F2.R0, big, 100*units.Microsecond, host.FixedRate(7*units.Gbps))
			f2 := rig.Mgr.AddFlow(rig.F2.S2, rig.F2.R0, big, 100*units.Microsecond, host.FixedRate(7*units.Gbps))
			rig.Run(horizon)
			ce += f0.CEPackets() + f2.CEPackets()
		}
		pts = append(pts, Fig14Point{Eps: eps, VictimCEPackets: ce})
		res.Scalars[fmt.Sprintf("eps=%.2f victim CE pkts", eps)] = float64(ce)
	}
	return res, pts
}

// Fig15Burst is one burst-size sample of Fig 15(b)/18(b).
type Fig15Burst struct {
	BurstSize  units.ByteSize
	StockFCTus float64
	TCDFCTus   float64
	UEFlowFrac float64
}

// VictimFCT runs the Fig 15(a)/18(a) comparison: victim FCT under a
// stock controller versus its TCD variant.
func VictimFCT(kind FabricKind, stock, tcd CCKind, horizon units.Time, seed uint64) (*Result, *VictimOutcome, *VictimOutcome) {
	res := NewResult(fmt.Sprintf("victim-fct-%s-vs-%s", stock, tcd))
	sCfg := DefaultVictimConfig(kind, DetBaseline, stock)
	sCfg.Seed = seed
	tCfg := DefaultVictimConfig(kind, DetTCD, tcd)
	tCfg.Seed = seed
	if horizon > 0 {
		sCfg.Horizon, tCfg.Horizon = horizon, horizon
	}
	sv := Victim(sCfg)
	tv := Victim(tCfg)
	res.Scalars["stock_mean_fct_us"] = sv.MeanFCTus
	res.Scalars["tcd_mean_fct_us"] = tv.MeanFCTus
	if tv.MeanFCTus > 0 {
		res.Scalars["speedup"] = sv.MeanFCTus / tv.MeanFCTus
	}
	res.Scalars["stock_victim_ce_frac"] = sv.CEFlowFrac
	res.Scalars["tcd_victim_ce_frac"] = tv.CEFlowFrac
	res.Tables = append(res.Tables,
		sv.Breakdown.Table("stock victim FCT (us)"),
		tv.Breakdown.Table("tcd victim FCT (us)"))
	return res, sv, tv
}

// VictimBurstSweep runs Fig 15(b)/18(b): victim FCT and UE marking as a
// function of burst size.
func VictimBurstSweep(kind FabricKind, stock, tcd CCKind, sizes []units.ByteSize, horizon units.Time, seed uint64) (*Result, []Fig15Burst) {
	res := NewResult(fmt.Sprintf("victim-burst-sweep-%s", tcd))
	var pts []Fig15Burst
	for _, bs := range sizes {
		sCfg := DefaultVictimConfig(kind, DetBaseline, stock)
		sCfg.BurstSize = bs
		sCfg.Seed = seed
		tCfg := DefaultVictimConfig(kind, DetTCD, tcd)
		tCfg.BurstSize = bs
		tCfg.Seed = seed
		if horizon > 0 {
			sCfg.Horizon, tCfg.Horizon = horizon, horizon
		}
		sv := Victim(sCfg)
		tv := Victim(tCfg)
		pt := Fig15Burst{
			BurstSize:  bs,
			StockFCTus: sv.MeanFCTus,
			TCDFCTus:   tv.MeanFCTus,
			UEFlowFrac: tv.UEFlowFrac,
		}
		pts = append(pts, pt)
		res.Scalars[fmt.Sprintf("burst=%v stock FCT us", bs)] = pt.StockFCTus
		res.Scalars[fmt.Sprintf("burst=%v tcd FCT us", bs)] = pt.TCDFCTus
		res.Scalars[fmt.Sprintf("burst=%v UE flow frac", bs)] = pt.UEFlowFrac
	}
	return res, pts
}
