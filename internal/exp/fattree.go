package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
	"github.com/tcdnet/tcd/internal/workload"
)

// FatTreeConfig parameterizes the realistic-workload experiments:
// Fig 16 (DCQCN±TCD, Hadoop/WebSearch), Fig 17(b) (IB CC±TCD, MPI/IO)
// and Fig 19 (TIMELY±TCD).
type FatTreeConfig struct {
	Kind FabricKind
	Det  DetectorKind
	CC   CCKind
	// K is the fat-tree arity (paper: 10 for CEE runs, 16 for IB).
	K int
	// Workload selects the flow-size CDF ("hadoop", "websearch",
	// "mpiio").
	Workload string
	// Load is the average access-link load (0.6 in the paper).
	Load float64
	// MaxFlows caps generation (the paper runs 40k/80k; benches less).
	MaxFlows int
	// Trace, if non-empty, replays these flows instead of generating a
	// workload (see workload.ReadTrace).
	Trace []workload.Flow
	// Horizon bounds the run; generation uses the first half so most
	// flows can complete.
	Horizon units.Time
	Seed    uint64
	// RouteCap bounds resident lazily-materialized route columns
	// (0 = routing.DefaultColumnCap). Fat-tree rigs always route from a
	// lazily materialized table fed by the structural column source —
	// route decisions are byte-identical to the eager table, only the
	// memory ceiling moves.
	RouteCap int
	// Obs wires event tracing, metrics and progress reporting into the
	// rig (all off by default).
	Obs obs.Config
	// Faults, if non-empty, is a fault schedule (including the
	// adversarial kinds) armed against the rig — the -faults flag of
	// cmd/tcdsim. Empty means a fault-free run, byte-identical to one
	// without the injector.
	Faults *fault.Spec
}

// DefaultFatTreeConfig returns a laptop-scale run; cmd/tcdsim raises K,
// MaxFlows and Horizon to paper scale.
func DefaultFatTreeConfig(kind FabricKind, det DetectorKind, cc CCKind, wl string) FatTreeConfig {
	return FatTreeConfig{
		Kind:     kind,
		Det:      det,
		CC:       cc,
		K:        4,
		Workload: wl,
		Load:     0.6,
		MaxFlows: 800,
		Horizon:  40 * units.Millisecond,
	}
}

// FatTreeOutcome carries the FCT-slowdown distributions of one run.
type FatTreeOutcome struct {
	Res *Result
	// Slowdowns groups FCT slowdown by flow size.
	Slowdowns *stats.Breakdown
	// Overall aggregates every completed flow.
	Overall stats.Dist
	// MeanMCTus is the mean completion time (the Fig 17 metric).
	MeanMCTus float64
	Completed int
	Generated int
}

// FatTree runs one realistic-workload simulation.
func FatTree(cfg FatTreeConfig) *FatTreeOutcome {
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.Load == 0 {
		cfg.Load = 0.6
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 40 * units.Millisecond
	}
	rate := 40 * units.Gbps
	delay := 4 * units.Microsecond
	ft := topo.NewFatTree(cfg.K, rate, delay)

	// Routing per the paper: ECMP on CEE, static D-mod-k on InfiniBand.
	sel := routing.ECMP(cfg.Seed + 9)
	if cfg.Kind == IB {
		sel = routing.DModK()
	}
	hostCfg := host.DefaultConfig()
	hostCfg.AckEveryPacket = cfg.CC.NeedsAcks()
	rig := NewRig(RigConfig{
		Topo:      ft.Topology,
		Kind:      cfg.Kind,
		Det:       cfg.Det,
		Seed:      cfg.Seed,
		HostCfg:   hostCfg,
		Selector:  sel,
		Obs:       cfg.Obs,
		RouteCols: routing.FatTreeColumns(ft),
		RouteCap:  cfg.RouteCap,
	})
	res := NewResult(fmt.Sprintf("fattree-k%d-%s-%s-%s-%s", cfg.K, cfg.Kind, cfg.Det, cfg.CC, cfg.Workload))
	inj := rig.mustInjectFaults(cfg.Faults)

	r := rng.New(cfg.Seed + 31)
	var flows []workload.Flow
	if cfg.Trace != nil {
		flows = cfg.Trace
	} else {
		flows = generateWorkload(cfg, ft, r)
	}

	type meta struct {
		flow     *host.Flow
		baseline units.Time
	}
	mtu := rig.Mgr.Config().MTU
	metas := make([]meta, 0, len(flows))
	for _, wf := range flows {
		hops := rig.Routes.PathLen(wf.Src, wf.Dst)
		f := rig.Mgr.AddFlow(wf.Src, wf.Dst, wf.Size, wf.Start, rig.NewCC(cfg.CC, rate))
		metas = append(metas, meta{flow: f, baseline: host.IdealFCT(wf.Size, mtu, rate, hops, delay)})
	}

	rig.Run(cfg.Horizon)

	out := &FatTreeOutcome{
		Res:       res,
		Slowdowns: stats.NewBreakdown(50*units.KB, 100*units.KB, 500*units.KB, units.MB),
		Generated: len(metas),
	}
	var mcts []float64
	for _, m := range metas {
		if !m.flow.Done {
			continue
		}
		out.Completed++
		sd := m.flow.Slowdown(m.baseline)
		out.Slowdowns.Add(m.flow.Size, sd)
		out.Overall.Add(sd)
		mcts = append(mcts, m.flow.FCT.Micros())
	}
	out.MeanMCTus = stats.Mean(mcts)
	// Fabric telemetry: how much hop-by-hop flow control and marking the
	// run actually exercised, and the losslessness assertion (buffer
	// violations must be zero).
	var pauseTime units.Time
	var ce, ue uint64
	for _, p := range rig.Net.Ports() {
		pauseTime += p.PauseTime
		ce += p.MarkedCE
		ue += p.MarkedUE
	}
	var violations uint64
	for _, m := range pfc.Meters(rig.Net) {
		violations += m.Violations
	}
	for _, m := range cbfc.Meters(rig.Net) {
		violations += m.Violations
	}
	res.Scalars["total_pause_ms"] = pauseTime.Millis()
	res.Scalars["marked_ce"] = float64(ce)
	res.Scalars["marked_ue"] = float64(ue)
	res.Scalars["buffer_violations"] = float64(violations)
	res.Scalars["generated"] = float64(out.Generated)
	res.Scalars["completed"] = float64(out.Completed)
	res.Scalars["slowdown_p50"] = out.Overall.P(0.5)
	res.Scalars["slowdown_p95"] = out.Overall.P(0.95)
	res.Scalars["slowdown_p99"] = out.Overall.P(0.99)
	res.Scalars["mean_mct_us"] = out.MeanMCTus
	// Route-table memory: what the lazy table actually held versus what
	// eager materialization would have cost (cmd/tcdsim -topo-stats
	// surfaces the same numbers without running a workload).
	res.Scalars["route_cols_live"] = float64(rig.Routes.LiveColumns())
	res.Scalars["route_cols_materialized"] = float64(rig.Routes.Stats().Materialized)
	res.Scalars["route_cols_evicted"] = float64(rig.Routes.Stats().Evicted)
	res.Scalars["route_table_bytes"] = float64(rig.Routes.LiveBytes())
	res.Scalars["route_table_eager_est_bytes"] = float64(rig.Routes.EagerBytesEstimate())
	if inj.Armed > 0 {
		res.Scalars["fault_actions_armed"] = float64(inj.Armed)
		res.Scalars["fault_drops"] = float64(rig.Net.FaultDrops)
		res.Scalars["fault_dropped_kb"] = float64(rig.Net.FaultDropPayload()) / 1000
		attackScalars(res, rig.Net)
	}
	res.Tables = append(res.Tables, out.Slowdowns.Table("FCT slowdown by size"))
	res.AttachTelemetry(cfg.Obs.Telemetry)
	return out
}

// generateWorkload produces the configured traffic for a fat-tree run.
func generateWorkload(cfg FatTreeConfig, ft *topo.FatTree, r *rng.Source) []workload.Flow {
	rate := 40 * units.Gbps
	switch cfg.Workload {
	case "websearch":
		return workload.Poisson(r, workload.PoissonConfig{
			Hosts:      ft.HostList,
			CDF:        workload.WebSearch(),
			Load:       cfg.Load,
			AccessRate: rate,
			Horizon:    cfg.Horizon / 2,
			MaxFlows:   cfg.MaxFlows,
		})
	case "mpiio":
		// §5.2.2: per rack (edge switch) some hosts are I/O servers; 25%
		// of nodes are I/O clients; 10% of messages are I/O.
		var servers []packet.NodeID
		for p := range ft.Edges {
			for e := range ft.Edges[p] {
				half := ft.K / 2
				// One server per edge group (scaled from "four per rack"
				// at k=16, keeping the server fraction comparable).
				servers = append(servers, ft.HostList[p*half*half+e*half])
			}
		}
		return workload.MPIIO(r, workload.MPIIOConfig{
			Hosts:        ft.HostList,
			IOServers:    servers,
			IOClientFrac: 0.25,
			Messages:     cfg.MaxFlows,
			IOFrac:       0.1,
			Horizon:      cfg.Horizon / 2,
		})
	default: // hadoop
		return workload.Poisson(r, workload.PoissonConfig{
			Hosts:      ft.HostList,
			CDF:        workload.Hadoop(),
			Load:       cfg.Load,
			AccessRate: rate,
			Horizon:    cfg.Horizon / 2,
			MaxFlows:   cfg.MaxFlows,
		})
	}
}

// FatTreeComparison runs stock vs TCD controllers on the same workload
// and reports the paper's headline ratios (Fig 16/17(b)/19).
func FatTreeComparison(base FatTreeConfig, stockCC, tcdCC CCKind) (*Result, *FatTreeOutcome, *FatTreeOutcome) {
	sCfg := base
	sCfg.Det = DetBaseline
	sCfg.CC = stockCC
	tCfg := base
	tCfg.Det = DetTCD
	tCfg.CC = tcdCC
	s := FatTree(sCfg)
	t := FatTree(tCfg)
	res := NewResult(fmt.Sprintf("fattree-compare-%s-vs-%s-%s", stockCC, tcdCC, base.Workload))
	res.Scalars["stock_p50"] = s.Overall.P(0.5)
	res.Scalars["tcd_p50"] = t.Overall.P(0.5)
	res.Scalars["stock_p99"] = s.Overall.P(0.99)
	res.Scalars["tcd_p99"] = t.Overall.P(0.99)
	if t.Overall.P(0.5) > 0 {
		res.Scalars["p50_improvement"] = s.Overall.P(0.5) / t.Overall.P(0.5)
	}
	if t.Overall.P(0.99) > 0 {
		res.Scalars["p99_improvement"] = s.Overall.P(0.99) / t.Overall.P(0.99)
	}
	if t.MeanMCTus > 0 {
		res.Scalars["mct_improvement"] = s.MeanMCTus / t.MeanMCTus
	}
	// Surface the lazy route-table footprint on the comparison result too:
	// cmd/tcdsim discards the per-side results, and at hyperscale (k=32+)
	// the table memory is part of what the run demonstrates.
	for _, key := range []string{"route_cols_live", "route_table_bytes", "route_table_eager_est_bytes"} {
		res.Scalars[key] = t.Res.Scalars[key]
	}
	// Same for fault telemetry (present only when a schedule was armed):
	// both sides run the identical schedule, so the TCD side stands in.
	for _, key := range []string{"fault_actions_armed", "fault_drops", "fault_dropped_kb", "spoofed_ce", "forged_ctrl"} {
		if v, ok := t.Res.Scalars[key]; ok {
			res.Scalars[key] = v
		}
	}
	res.Tables = append(res.Tables,
		s.Slowdowns.Table("stock slowdown"),
		t.Slowdowns.Table("tcd slowdown"))
	return res, s, t
}
