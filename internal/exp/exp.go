// Package exp contains one experiment per table and figure of the
// paper's evaluation, built on the simulator substrates. Each experiment
// returns a Result with the series/rows the paper reports; cmd/tcdsim
// renders them and bench_test.go regenerates them at reduced scale.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/units"
)

// TracerCap bounds the samples each fig-runner tracer retains per
// series (see stats.Tracer.SetCap). It exceeds every default-horizon
// sample count (fairness: 1200, testbed: 20, observe: 800) so default
// runs — and the golden JSONs — are byte-identical to uncapped runs,
// while arbitrarily long -full horizons stay within a fixed footprint.
const TracerCap = 1 << 13

// Result is the structured output of one experiment run.
type Result struct {
	// Name identifies the experiment (e.g. "fig3-cee").
	Name string
	// Scalars are named headline numbers (fractions, factors, counts).
	Scalars map[string]float64
	// Series are sampled time series (queue length, rates, marks).
	Series map[string]*stats.Series
	// Hists are the run's streaming telemetry histograms (FCT, queue
	// depth, pause durations...). Nil unless telemetry was enabled, so
	// default runs keep their golden JSON byte-identical.
	Hists map[string]*obs.Hist
	// Tables are rendered text blocks (FCT breakdowns etc.).
	Tables []string
	// Notes carry shape observations for EXPERIMENTS.md.
	Notes []string
}

// NewResult allocates an empty result.
func NewResult(name string) *Result {
	return &Result{
		Name:    name,
		Scalars: make(map[string]float64),
		Series:  make(map[string]*stats.Series),
	}
}

// AddNote appends a formatted observation.
func (r *Result) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render prints the result in a stable, human-readable layout.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", r.Name)
	keys := make([]string, 0, len(r.Scalars))
	for k := range r.Scalars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-40s %12.4g\n", k, r.Scalars[k])
	}
	for _, t := range r.Tables {
		sb.WriteString(t)
		if !strings.HasSuffix(t, "\n") {
			sb.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	hkeys := make([]string, 0, len(r.Hists))
	for k := range r.Hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := r.Hists[k]
		fmt.Fprintf(&sb, "  hist %-32s n=%d min=%d p50=%d p99=%d max=%d\n",
			k, h.Count(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
	skeys := make([]string, 0, len(r.Series))
	for k := range r.Series {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	for _, k := range skeys {
		s := r.Series[k]
		fmt.Fprintf(&sb, "  series %-32s samples=%d max=%.4g\n", k, len(s.T), s.Max())
	}
	return sb.String()
}

// AttachTelemetry folds a run's streaming histograms into the result
// (no-op when telemetry is off, keeping default outputs byte-identical).
// The queue-depth window ring additionally exports as a regular series
// of per-window means so it rides the existing series plumbing.
func (r *Result) AttachTelemetry(tel *obs.Telemetry) {
	if tel == nil {
		return
	}
	r.Hists = tel.Hists()
	if wins := tel.QueueWin.Windows(); len(wins) > 0 {
		s := &stats.Series{Name: "telemetry queue window mean (bytes)"}
		for _, w := range wins {
			s.T = append(s.T, units.Time(w.Index)*tel.QueueWin.Width())
			s.V = append(s.V, w.Mean())
		}
		r.Series["telemetry_queue_win"] = s
	}
}

// jsonSeries is the export shape of one time series.
type jsonSeries struct {
	TimeUs []float64 `json:"time_us"`
	Values []float64 `json:"values"`
}

// WriteJSON serializes the full result — scalars, tables, notes and every
// series — as indented JSON. encoding/json sorts map keys, so same-seed
// runs produce byte-identical output.
func (r *Result) WriteJSON(w io.Writer) error {
	series := make(map[string]jsonSeries, len(r.Series))
	for name, s := range r.Series {
		js := jsonSeries{TimeUs: make([]float64, len(s.T)), Values: s.V}
		for i, t := range s.T {
			js.TimeUs[i] = t.Micros()
		}
		series[name] = js
	}
	out := struct {
		Name    string                `json:"name"`
		Scalars map[string]float64    `json:"scalars"`
		Tables  []string              `json:"tables,omitempty"`
		Notes   []string              `json:"notes,omitempty"`
		Hists   map[string]*obs.Hist  `json:"hists,omitempty"`
		Series  map[string]jsonSeries `json:"series"`
	}{r.Name, r.Scalars, r.Tables, r.Notes, r.Hists, series}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&out)
}

// WriteSeries dumps every collected time series as a CSV file under dir
// (one file per series, named <result>-<series>.csv with a time_us,value
// header) so figures can be plotted without re-running the simulation.
func (r *Result) WriteSeries(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, s := range r.Series {
		fn := filepath.Join(dir, sanitize(r.Name)+"-"+sanitize(name)+".csv")
		var sb strings.Builder
		sb.WriteString("time_us,value\n")
		for i := range s.T {
			fmt.Fprintf(&sb, "%.3f,%g\n", s.T[i].Micros(), s.V[i])
		}
		if err := os.WriteFile(fn, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
