package exp

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// traceObserve runs a short fig12-style scenario with an event ring and a
// metrics registry attached and returns their serialized exports.
func traceObserve(t *testing.T, seed uint64) (trace, metrics []byte) {
	t.Helper()
	cfg := DefaultObserveConfig(CEE, DetTCD, false)
	cfg.Seed = seed
	cfg.Horizon = 2 * units.Millisecond
	ring := obs.NewRing(0)
	cfg.Obs = obs.Config{Rec: ring, Metrics: obs.NewRegistry()}
	Observe(cfg)
	var tb, mb bytes.Buffer
	if err := ring.WriteJSONL(&tb); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := cfg.Obs.Metrics.WriteJSON(&mb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTraceDeterministic asserts the headline reproducibility property:
// two same-seed runs export byte-identical event traces and metrics.
func TestTraceDeterministic(t *testing.T) {
	tr1, m1 := traceObserve(t, 1)
	tr2, m2 := traceObserve(t, 1)
	if len(tr1) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("same-seed traces differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("same-seed metrics differ")
	}
}

// TestTraceContainsCoreKinds asserts the fig12 trace carries the event
// families the issue calls out: PFC pause/resume, CE and UE marks, and
// TCD ternary transitions.
func TestTraceContainsCoreKinds(t *testing.T) {
	tr, m := traceObserve(t, 1)
	text := string(tr)
	for _, kind := range []string{
		`"kind":"pfc.paused"`, `"kind":"pfc.resumed"`,
		`"kind":"mark.ce"`, `"kind":"mark.ue"`,
		`"kind":"tcd.state"`, `"kind":"cnp"`, `"kind":"cc.rate"`,
	} {
		if !strings.Contains(text, kind) {
			t.Errorf("trace missing %s", kind)
		}
	}
	for _, metric := range []string{"port_tx_bytes", "pfc_pauses_sent", "tcd_state", "sched_events"} {
		if !strings.Contains(string(m), metric) {
			t.Errorf("metrics missing %s", metric)
		}
	}
}

// TestResultWriteJSON checks the -json export shape on a real result.
func TestResultWriteJSON(t *testing.T) {
	cfg := DefaultObserveConfig(CEE, DetBaseline, false)
	cfg.Seed = 1
	cfg.Horizon = units.Millisecond
	res := Observe(cfg)
	var b1, b2 bytes.Buffer
	if err := res.WriteJSON(&b1); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := res.WriteJSON(&b2); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("WriteJSON is not deterministic")
	}
	for _, want := range []string{`"name": "observe-cee-baseline-singlecp"`, `"scalars"`, `"series"`, `"time_us"`} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}
