package exp

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/cc"
	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/units"
)

func TestFig2RigPortsAndDefaults(t *testing.T) {
	rig := NewFig2Rig(Fig2Opts{Kind: CEE, Det: DetTCD})
	// Observed ports are wired to the documented chain.
	if rig.P0 != rig.Net.HostPort(rig.F2.S1) {
		t.Error("P0 is not S1's NIC")
	}
	if rig.P3.Rate != 40*units.Gbps {
		t.Error("P3 rate wrong")
	}
	if len(rig.ObservedPorts()) != 4 || PortLabel(2) != "P2" {
		t.Error("observed port labels wrong")
	}
	// PFC installed with paper defaults.
	if rig.PFCCfg != pfc.DefaultConfig() {
		t.Errorf("PFC config = %+v", rig.PFCCfg)
	}
	// Detector parameters filled with CEE defaults.
	if rig.Par.CongThresh != 200*units.KB || rig.Par.Eps != core.RecommendedEps {
		t.Errorf("CEE detector params = %+v", rig.Par)
	}
}

func TestRigIBDefaults(t *testing.T) {
	rig := NewFig2Rig(Fig2Opts{Kind: IB, Det: DetTCD})
	if rig.CBFCCfg.Buffer != cbfc.DefaultConfig().Buffer {
		t.Errorf("CBFC buffer = %v", rig.CBFCCfg.Buffer)
	}
	if rig.Par.CongThresh != 50*units.KB {
		t.Errorf("IB congestion threshold = %v, want 50KB", rig.Par.CongThresh)
	}
	// IB max(Ton) is the credit period, regardless of eps.
	cfg := rig.TCDConfigFor(rig.P2)
	if cfg.MaxTon != rig.CBFCCfg.Tc {
		t.Errorf("IB MaxTon = %v, want Tc %v", cfg.MaxTon, rig.CBFCCfg.Tc)
	}
}

func TestRigCEETCDConfigUsesModel(t *testing.T) {
	rig := NewFig2Rig(Fig2Opts{Kind: CEE, Det: DetTCD})
	cfg := rig.TCDConfigFor(rig.P2)
	// 40G link, 4us delay: tau = 0.4us + 8us = 8.4us;
	// maxTon = (2*16000 + 8.4e-6*40e9) / (2*0.05*40e9) + 8.4us = 100.4us.
	want := 100.4
	if math.Abs(cfg.MaxTon.Micros()-want) > 0.01 {
		t.Errorf("CEE MaxTon = %v, want ~%vus", cfg.MaxTon, want)
	}
	// The testbed overrides change the model inputs.
	rig.Par.XoffGap = 30 * units.KB
	rig.Par.Tau = 20 * units.Microsecond
	cfg2 := rig.TCDConfigFor(rig.P2)
	if cfg2.MaxTon <= cfg.MaxTon {
		t.Error("overrides did not widen MaxTon")
	}
}

func TestNewCCKinds(t *testing.T) {
	rig := NewFig2Rig(Fig2Opts{Kind: CEE, Det: DetNone})
	line := 40 * units.Gbps
	cases := []struct {
		kind CCKind
		want interface{}
	}{
		{CCFixed, host.FixedRate(0)},
		{CCDCQCN, &cc.DCQCN{}},
		{CCDCQCNTCD, &cc.DCQCN{}},
		{CCTIMELY, &cc.TIMELY{}},
		{CCTIMELYTCD, &cc.TIMELY{}},
		{CCIBCC, &cc.IBCC{}},
		{CCIBCCTCD, &cc.IBCC{}},
	}
	for _, c := range cases {
		got := rig.NewCC(c.kind, line)
		if got == nil {
			t.Fatalf("%v: nil controller", c.kind)
		}
		switch c.want.(type) {
		case host.FixedRate:
			if _, ok := got.(host.FixedRate); !ok {
				t.Errorf("%v: wrong controller type %T", c.kind, got)
			}
		case *cc.DCQCN:
			if _, ok := got.(*cc.DCQCN); !ok {
				t.Errorf("%v: wrong controller type %T", c.kind, got)
			}
		case *cc.TIMELY:
			if _, ok := got.(*cc.TIMELY); !ok {
				t.Errorf("%v: wrong controller type %T", c.kind, got)
			}
		case *cc.IBCC:
			if _, ok := got.(*cc.IBCC); !ok {
				t.Errorf("%v: wrong controller type %T", c.kind, got)
			}
		}
		if got.CurrentRate() != line {
			t.Errorf("%v: initial rate %v, want line", c.kind, got.CurrentRate())
		}
	}
}

func TestKindStrings(t *testing.T) {
	if CEE.String() != "cee" || IB.String() != "ib" {
		t.Error("fabric kind strings")
	}
	want := map[DetectorKind]string{
		DetNone: "none", DetBaseline: "baseline", DetTCD: "tcd",
		DetTCDAdaptive: "tcd-adaptive", DetNPECN: "np-ecn",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("detector %d string = %q, want %q", k, k.String(), s)
		}
	}
	if !CCTIMELY.NeedsAcks() || CCDCQCN.NeedsAcks() {
		t.Error("NeedsAcks wrong")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{8, 8, 8, 8}); got != 1 {
		t.Errorf("equal shares Jain = %v", got)
	}
	if got := JainIndex([]float64{32, 0, 0, 0}); got != 0.25 {
		t.Errorf("winner-takes-all Jain = %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Error("degenerate Jain cases")
	}
}

func TestMarkedFraction(t *testing.T) {
	f := host.StandaloneFlow(10, 3, 5)
	if MarkedFraction(f, true) != 0.3 || MarkedFraction(f, false) != 0.5 {
		t.Error("marked fractions wrong")
	}
	if MarkedFraction(host.StandaloneFlow(0, 0, 0), true) != 0 {
		t.Error("empty flow fraction not 0")
	}
}

func TestWriteSeries(t *testing.T) {
	res := NewResult("w test")
	res.Series["q/len"] = &stats.Series{
		Name: "q",
		T:    []units.Time{0, units.Microsecond},
		V:    []float64{1, 2},
	}
	dir := t.TempDir()
	if err := res.WriteSeries(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "w_test-q_len.csv"))
	if err != nil {
		t.Fatal(err)
	}
	want := "time_us,value\n0.000,1\n1.000,2\n"
	if string(data) != want {
		t.Errorf("csv = %q, want %q", data, want)
	}
}
