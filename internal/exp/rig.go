package exp

import (
	"bytes"
	"fmt"
	"time"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/cc"
	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// FabricKind selects the lossless technology under test.
type FabricKind int

const (
	// CEE is Converged Enhanced Ethernet: PFC + ECN/TCD + DCQCN/TIMELY.
	CEE FabricKind = iota
	// IB is InfiniBand: CBFC + FECN/TCD + IB CC.
	IB
)

func (f FabricKind) String() string {
	if f == CEE {
		return "cee"
	}
	return "ib"
}

// DetectorKind selects the congestion-detection mechanism on switches.
type DetectorKind int

const (
	// DetNone installs no detector.
	DetNone DetectorKind = iota
	// DetBaseline is ECN/RED on CEE and FECN on IB.
	DetBaseline
	// DetTCD is the paper's ternary detector.
	DetTCD
	// DetTCDAdaptive is the §6 design alternative: max(Ton) predicted
	// from the history of observed ON periods instead of the model.
	DetTCDAdaptive
	// DetNPECN is PCN's Non-PAUSE ECN (related work §7): RED marking
	// suppressed on pause-tainted packets.
	DetNPECN
)

func (d DetectorKind) String() string {
	switch d {
	case DetBaseline:
		return "baseline"
	case DetTCD:
		return "tcd"
	case DetTCDAdaptive:
		return "tcd-adaptive"
	case DetNPECN:
		return "np-ecn"
	}
	return "none"
}

// CCKind selects the end-to-end congestion control for workload flows.
type CCKind int

const (
	// CCFixed paces at a fixed rate and ignores feedback.
	CCFixed CCKind = iota
	// CCDCQCN and CCDCQCNTCD are stock and ternary DCQCN.
	CCDCQCN
	CCDCQCNTCD
	// CCTIMELY and CCTIMELYTCD are stock and ternary TIMELY.
	CCTIMELY
	CCTIMELYTCD
	// CCIBCC and CCIBCCTCD are stock and ternary IB CC.
	CCIBCC
	CCIBCCTCD
)

func (c CCKind) String() string {
	switch c {
	case CCDCQCN:
		return "dcqcn"
	case CCDCQCNTCD:
		return "dcqcn+tcd"
	case CCTIMELY:
		return "timely"
	case CCTIMELYTCD:
		return "timely+tcd"
	case CCIBCC:
		return "ibcc"
	case CCIBCCTCD:
		return "ibcc+tcd"
	}
	return "fixed"
}

// NeedsAcks reports whether the controller requires per-packet ACKs.
func (c CCKind) NeedsAcks() bool { return c == CCTIMELY || c == CCTIMELYTCD }

// DetectorParams carries the marking/detection thresholds of one rig.
type DetectorParams struct {
	// Eps is the TCD congestion-degree parameter (§4.2; default 0.05).
	Eps float64
	// MTU sizes the response-time term of max(Ton).
	MTU units.ByteSize
	// CongThresh/LowThresh are the TCD state thresholds. Zero defaults
	// to 200 KB / 10 KB on CEE and 50 KB / 10 KB on IB.
	CongThresh, LowThresh units.ByteSize
	// RED is the CEE baseline marker config (zero = DCQCN defaults).
	RED core.REDConfig
	// FECNThresh is the IB baseline threshold (zero = 50 KB).
	FECNThresh units.ByteSize
	// XoffGap overrides the B1-B0 term of the CEE max(Ton) model (zero =
	// 2 MTU); the DPDK testbed ran Xoff-Xon = 30 KB.
	XoffGap units.ByteSize
	// Tau overrides the response-time term (zero = 2*MTU/C + 2*t_p);
	// the DPDK testbed measured ~20 us of software delay.
	Tau units.Time
	// TrendSlack overrides the TCD queue-growth tolerance (zero keeps
	// the detector default of 4 KB; the ablation sets 1 B to show why
	// the tolerance exists).
	TrendSlack units.ByteSize
}

func (p *DetectorParams) fill(kind FabricKind) {
	if p.Eps == 0 {
		p.Eps = core.RecommendedEps
	}
	if p.MTU == 0 {
		p.MTU = 1000
	}
	if p.CongThresh == 0 {
		if kind == CEE {
			p.CongThresh = 200 * units.KB
		} else {
			p.CongThresh = 50 * units.KB
		}
	}
	if p.LowThresh == 0 {
		p.LowThresh = 10 * units.KB
	}
	if p.RED == (core.REDConfig{}) {
		p.RED = core.DefaultREDConfig()
	}
	if p.FECNThresh == 0 {
		p.FECNThresh = 50 * units.KB
	}
}

// Rig is a ready-to-run simulated network: topology, fabric, flow
// control, detectors and endpoints.
type Rig struct {
	Sched *sim.Scheduler
	Net   *fabric.Network
	Mgr   *host.Manager
	Topo  *topo.Topology
	Rnd   *rng.Source

	Kind FabricKind
	Det  DetectorKind
	Par  DetectorParams
	// Routes is the shortest-path table (hop counts, FCT baselines).
	Routes *routing.Table
	// CBFCCfg holds the installed CBFC parameters (IB rigs).
	CBFCCfg cbfc.Config
	// PFCCfg holds the installed PFC parameters (CEE rigs).
	PFCCfg pfc.Config
	// Obs holds the observability hooks this rig was wired with.
	Obs obs.Config
	// liveWallStart anchors the wall-clock field of live progress
	// snapshots (set when the live publisher attaches).
	liveWallStart time.Time
}

// RigConfig assembles a rig over an arbitrary topology.
type RigConfig struct {
	Topo     *topo.Topology
	Kind     FabricKind
	Det      DetectorKind
	Par      DetectorParams
	Seed     uint64
	HostCfg  host.Config
	Selector routing.Selector
	// Arch selects the switch architecture (output-queued by default;
	// InputQueuedVoQ reproduces the paper's IB switch organization).
	Arch fabric.Arch
	// PFC / CBFC override the flow-control defaults when non-zero.
	PFC  pfc.Config
	CBFC cbfc.Config
	// CtrlJitter adds per-control-frame delay jitter (testbed runs).
	CtrlJitter func() units.Time
	// RecordTransitions turns on TCD transition logging (small rigs).
	RecordTransitions bool
	// RouteCols, when non-nil, switches the rig to a lazily materialized
	// route table fed by this structural column source (fat-tree and
	// leaf–spine builders provide one), bounded by RouteCap columns.
	// Route decisions are byte-identical to the eager table (property-
	// tested), so traces do not depend on this knob — only memory does.
	RouteCols routing.ColumnSource
	// LazyRoutes selects lazy materialization with the BFS fallback even
	// without a structural source.
	LazyRoutes bool
	// RouteCap bounds resident route columns in lazy mode (0 = default).
	RouteCap int
	// Obs threads the observability hooks (event recorder, metrics
	// registry, progress ticker) through every layer of the rig.
	Obs obs.Config
}

// NewRig wires everything together.
func NewRig(cfg RigConfig) *Rig {
	if cfg.Selector == nil {
		cfg.Selector = routing.FirstPath()
	}
	// Telemetry sits in front of the raw recorder: every emission point
	// sees one Recorder, the telemetry folds the event into its bounded
	// histograms and forwards to the ring/spill sink (if any).
	if cfg.Obs.Telemetry != nil {
		cfg.Obs.Rec = cfg.Obs.Telemetry.Chain(cfg.Obs.Rec)
	}
	r := &Rig{
		Sched: sim.New(),
		Topo:  cfg.Topo,
		Rnd:   rng.New(cfg.Seed + 1),
		Kind:  cfg.Kind,
		Det:   cfg.Det,
		Par:   cfg.Par,
		Obs:   cfg.Obs,
	}
	r.Par.fill(cfg.Kind)
	cfg.Obs.Attach(r.Sched)
	fc := fabric.DefaultConfig()
	fc.CtrlJitter = cfg.CtrlJitter
	fc.Arch = cfg.Arch
	fc.Rec = cfg.Obs.Rec
	r.Net = fabric.New(r.Sched, cfg.Topo, fc)
	if cfg.RouteCols != nil || cfg.LazyRoutes {
		r.Routes = routing.NewLazy(cfg.Topo, cfg.RouteCols, cfg.RouteCap)
	} else {
		r.Routes = routing.BuildShortestPath(cfg.Topo)
	}
	r.Routes.Attach(r.Net, cfg.Selector)

	switch cfg.Kind {
	case CEE:
		r.PFCCfg = cfg.PFC
		if r.PFCCfg == (pfc.Config{}) {
			r.PFCCfg = pfc.DefaultConfig()
		}
		pfc.Install(r.Net, r.PFCCfg)
	case IB:
		r.CBFCCfg = cfg.CBFC
		if r.CBFCCfg.Buffer == 0 && r.CBFCCfg.Tc == 0 {
			r.CBFCCfg = cbfc.DefaultConfig()
		}
		cbfc.Install(r.Net, r.CBFCCfg)
	}

	r.attachDetectors(cfg.RecordTransitions)

	hc := cfg.HostCfg
	if hc == (host.Config{}) {
		hc = host.DefaultConfig()
	}
	r.Mgr = host.Install(r.Net, hc)
	r.Mgr.Rec = cfg.Obs.Rec
	if cfg.Obs.Telemetry != nil {
		r.attachQueueSampler(cfg.Obs.Telemetry)
	}
	if cfg.Obs.Live != nil {
		r.attachLive()
	}
	return r
}

// attachQueueSampler starts the telemetry queue-depth sampler: a
// self-rescheduling tick that folds every port's queue occupancy into
// the bounded histogram and window ring. The tick only reads simulator
// state, so enabling telemetry cannot perturb the simulation — golden
// outputs stay byte-identical with it on or off.
func (r *Rig) attachQueueSampler(tel *obs.Telemetry) {
	ports := r.Net.Ports()
	every := tel.QueueSampleEvery
	var tick func()
	tick = func() {
		now := r.Sched.Now()
		for _, p := range ports {
			tel.ObserveQueue(now, int64(p.TotalQueueBytes()))
		}
		r.Sched.After(every, tick)
	}
	r.Sched.After(every, tick)
}

// attachLive starts the live-introspection publisher: at every LiveEvery
// of simulated time it snapshots the metrics registry (plus telemetry
// quantiles) into Prometheus text and a JSON progress line, and hands
// the pre-serialized bytes to the HTTP endpoint. The simulator thread
// never blocks on HTTP; handlers serve the latest published snapshot.
func (r *Rig) attachLive() {
	every := r.Obs.LiveEvery
	if every <= 0 {
		every = units.Millisecond
	}
	r.liveWallStart = time.Now()
	var tick func()
	tick = func() {
		r.PublishLive(r.liveWallStart)
		r.Sched.After(every, tick)
	}
	r.Sched.After(every, tick)
}

// PublishLive pushes one metrics + progress snapshot to the live
// endpoint (no-op without one). Rig.Run calls it once more after the
// horizon so the final state is always visible.
func (r *Rig) PublishLive(wallStart time.Time) {
	live := r.Obs.Live
	if live == nil {
		return
	}
	reg := obs.NewRegistry()
	r.SnapshotMetrics(reg)
	if r.Obs.Telemetry != nil {
		r.Obs.Telemetry.FoldInto(reg)
	}
	var mb bytes.Buffer
	if err := reg.WriteProm(&mb); err == nil {
		live.PublishMetrics(mb.Bytes())
	}
	wall := time.Since(wallStart)
	var pb bytes.Buffer
	fmt.Fprintf(&pb, `{"sim_time_us":%.3f,"wall_ms":%d,"events":%d,"pending":%d,"flows":%d}`+"\n",
		r.Sched.Now().Micros(), wall.Milliseconds(), r.Sched.Processed(), r.Sched.Pending(), len(r.Mgr.Flows()))
	live.PublishProgress(pb.Bytes())
}

// attachDetectors installs the configured detector on every switch
// egress port (all priorities).
func (r *Rig) attachDetectors(record bool) {
	if r.Det == DetNone {
		return
	}
	nPrio := r.Net.Config().Priorities
	for _, p := range r.Net.Ports() {
		if r.Topo.Nodes[p.Node()].Kind != topo.Switch {
			continue
		}
		for prio := 0; prio < nPrio; prio++ {
			p.AttachDetector(uint8(prio), r.newDetector(p, uint8(prio), record))
		}
	}
}

func (r *Rig) newDetector(p *fabric.Port, prio uint8, record bool) fabric.Detector {
	switch r.Det {
	case DetBaseline:
		if r.Kind == CEE {
			return core.NewRED(r.Par.RED, r.Rnd.Split())
		}
		var probe func() int64
		if gate, ok := p.Gate().(*cbfc.Gate); ok {
			probe = func() int64 { return gate.Credits(prio) }
		}
		return core.NewFECN(core.FECNConfig{Thresh: r.Par.FECNThresh}, probe)
	case DetTCD:
		d := core.NewTCD(r.TCDConfigFor(p))
		d.RecordTransitions = record
		d.Rec, d.Label = r.Obs.Rec, p.Label()
		return d
	case DetTCDAdaptive:
		a := core.NewAdaptiveTCD(core.DefaultAdaptiveConfig(r.TCDConfigFor(p)))
		a.Inner().Rec, a.Inner().Label = r.Obs.Rec, p.Label()
		return a
	case DetNPECN:
		red := core.NewRED(r.Par.RED, r.Rnd.Split())
		return core.NewNPECN(core.NPECNConfig{RED: r.Par.RED}, red)
	}
	return nil
}

// TCDConfigFor derives the TCD parameters for one port from the analytic
// model: Eqn (3) max(Ton) on CEE, the credit period bound on IB.
func (r *Rig) TCDConfigFor(p *fabric.Port) core.TCDConfig {
	var maxTon units.Time
	if r.Kind == CEE {
		params := core.CEEParams(r.Par.MTU, p.Rate, p.Delay)
		if r.Par.XoffGap != 0 {
			params.B1MinusB0 = r.Par.XoffGap
		}
		if r.Par.Tau != 0 {
			params.Tau = r.Par.Tau
		}
		maxTon = core.MaxTonCEE(params, r.Par.Eps)
	} else {
		maxTon = core.MaxTonIB(r.CBFCCfg.Tc)
	}
	return core.TCDConfig{
		MaxTon:     maxTon,
		CongThresh: r.Par.CongThresh,
		LowThresh:  r.Par.LowThresh,
		TrendSlack: r.Par.TrendSlack,
	}
}

// NewCC builds a per-flow rate controller.
func (r *Rig) NewCC(kind CCKind, line units.Rate) host.RateController {
	switch kind {
	case CCDCQCN:
		return cc.NewDCQCN(r.Sched, cc.DefaultDCQCNConfig(line))
	case CCDCQCNTCD:
		return cc.NewDCQCN(r.Sched, cc.TCDDCQCNConfig(line))
	case CCTIMELY:
		return cc.NewTIMELY(cc.DefaultTIMELYConfig(line))
	case CCTIMELYTCD:
		return cc.NewTIMELY(cc.TCDTIMELYConfig(line))
	case CCIBCC:
		return cc.NewIBCC(r.Sched, cc.DefaultIBCCConfig(line))
	case CCIBCCTCD:
		return cc.NewIBCC(r.Sched, cc.TCDIBCCConfig(line))
	}
	return host.FixedRate(line)
}

// TCDAt returns the TCD detector of a port (priority 0), panicking if the
// rig does not run TCD — experiment wiring errors should be loud.
func (r *Rig) TCDAt(p *fabric.Port) *core.TCD {
	d, ok := p.DetectorAt(0).(*core.TCD)
	if !ok {
		panic(fmt.Sprintf("exp: port %s has no TCD detector", p.Name()))
	}
	return d
}

// Run drives the simulation to the horizon, then populates the metrics
// registry (if one was configured) from the run's counters. Under
// StrictInvariants it also audits the network-wide invariants.
func (r *Rig) Run(horizon units.Time) {
	r.Sched.RunUntil(horizon)
	if r.Obs.Metrics != nil {
		r.SnapshotMetrics(r.Obs.Metrics)
		if r.Obs.Telemetry != nil {
			r.Obs.Telemetry.FoldInto(r.Obs.Metrics)
		}
	}
	if r.Obs.Live != nil {
		r.PublishLive(r.liveWallStart)
	}
	if StrictInvariants {
		if err := CheckInvariants(r); err != nil {
			panic("exp: " + err.Error())
		}
	}
}

// SnapshotMetrics folds the ad-hoc counters scattered over ports, flow
// -control meters and the scheduler into a labeled registry — the
// uniform export path that gradually replaces reading exported struct
// fields directly.
func (r *Rig) SnapshotMetrics(reg *obs.Registry) {
	reg.Counter("sched_events").Add(int64(r.Sched.Processed()))
	reg.Gauge("sched_sim_time_us").Set(r.Sched.Now().Micros())
	reg.Gauge("sched_pending_events").Set(float64(r.Sched.Pending()))
	for _, p := range r.Net.Ports() {
		lbl := p.Label()
		reg.Counter("port_tx_bytes", "port", lbl).Add(int64(p.TxBytes))
		reg.Counter("port_tx_packets", "port", lbl).Add(int64(p.TxPackets))
		reg.Counter("port_tx_data_bytes", "port", lbl).Add(int64(p.TxDataBytes))
		reg.Counter("port_marked_ce", "port", lbl).Add(int64(p.MarkedCE))
		reg.Counter("port_marked_ue", "port", lbl).Add(int64(p.MarkedUE))
		reg.Counter("port_ctrl_sent", "port", lbl).Add(int64(p.CtrlSent))
		reg.Gauge("port_pause_time_us", "port", lbl).Set(p.PauseTime.Micros())
		reg.Gauge("port_queue_bytes", "port", lbl).Set(float64(p.TotalQueueBytes()))
		switch m := p.Meter().(type) {
		case *pfc.Meter:
			reg.Counter("pfc_pauses_sent", "port", lbl).Add(int64(m.PausesSent))
			reg.Counter("pfc_resumes_sent", "port", lbl).Add(int64(m.ResumesSent))
			reg.Counter("pfc_violations", "port", lbl).Add(int64(m.Violations))
			reg.Gauge("pfc_max_occupancy_bytes", "port", lbl).Set(float64(m.MaxOcc))
		case *cbfc.Meter:
			reg.Counter("cbfc_updates_sent", "port", lbl).Add(int64(m.UpdatesSent))
			reg.Counter("cbfc_violations", "port", lbl).Add(int64(m.Violations))
			reg.Gauge("cbfc_max_occupancy_bytes", "port", lbl).Set(float64(m.MaxOcc))
		}
		var tcd *core.TCD
		switch d := p.DetectorAt(0).(type) {
		case *core.TCD:
			tcd = d
		case interface{ Inner() *core.TCD }:
			tcd = d.Inner()
		}
		if tcd != nil {
			reg.Gauge("tcd_state", "port", lbl).Set(float64(tcd.State()))
			reg.Gauge("tcd_time_undetermined_us", "port", lbl).Set(tcd.TimeIn(core.Undetermined).Micros())
			reg.Gauge("tcd_time_congestion_us", "port", lbl).Set(tcd.TimeIn(core.Congestion).Micros())
		}
	}
	for _, f := range r.Mgr.Flows() {
		flow := fmt.Sprintf("%d", f.ID)
		reg.Counter("flow_rx_bytes", "flow", flow).Add(int64(f.BytesRxed()))
		reg.Counter("flow_ce_packets", "flow", flow).Add(int64(f.CEPackets()))
		reg.Counter("flow_ue_packets", "flow", flow).Add(int64(f.UEPackets()))
		if f.Done {
			reg.Gauge("flow_fct_us", "flow", flow).Set(f.FCT.Micros())
		}
	}
}

// Fig2Rig is the Figure-2 scenario rig with its observed ports.
type Fig2Rig struct {
	*Rig
	F2 *topo.Fig2
	// P0 is S1's NIC egress; P1 = T0->L0; P2 = L0->T2; P3 = T2->R1.
	P0, P1, P2, P3 *fabric.Port
}

// Fig2Opts parameterizes the Figure-2 rig.
type Fig2Opts struct {
	Kind    FabricKind
	Det     DetectorKind
	Par     DetectorParams
	Seed    uint64
	Topo    topo.Fig2Config
	HostCfg host.Config
	Arch    fabric.Arch
	Record  bool
	Obs     obs.Config
}

// NewFig2Rig builds the §3.1 scenario network.
func NewFig2Rig(o Fig2Opts) *Fig2Rig {
	if o.Topo == (topo.Fig2Config{}) {
		o.Topo = topo.DefaultFig2Config()
	}
	f2 := topo.NewFig2(o.Topo)
	r := NewRig(RigConfig{
		Topo:              f2.Topology,
		Kind:              o.Kind,
		Det:               o.Det,
		Par:               o.Par,
		Seed:              o.Seed,
		HostCfg:           o.HostCfg,
		Arch:              o.Arch,
		RecordTransitions: o.Record,
		Obs:               o.Obs,
	})
	return &Fig2Rig{
		Rig: r,
		F2:  f2,
		P0:  r.Net.HostPort(f2.S1),
		P1:  r.Net.PortOn(f2.T0, f2.LinkT0L0),
		P2:  r.Net.PortOn(f2.L0, f2.LinkL0T2),
		P3:  r.Net.PortOn(f2.T2, f2.LinkT2R1),
	}
}

// LaunchBursts starts the §3.1 concurrent bursts: every A host sends a
// size-byte burst to R1 in each round, rounds spaced gap apart. The
// bursts are smaller than the BDP, so end-to-end congestion control
// cannot regulate them (§3.1.1) — they run at line rate.
func (fr *Fig2Rig) LaunchBursts(start units.Time, size units.ByteSize, rounds int, gap units.Time) []*host.Flow {
	var flows []*host.Flow
	for round := 0; round < rounds; round++ {
		at := start + units.Time(round)*gap
		for _, a := range fr.F2.A {
			line := fr.Net.HostPort(a).Rate
			flows = append(flows, fr.Mgr.AddFlow(a, fr.F2.R1, size, at, host.FixedRate(line)))
		}
	}
	return flows
}

// FlowRateProbe returns a probe of a flow's receive goodput.
func FlowRateProbe(f *host.Flow, interval units.Time) func() float64 {
	var last units.ByteSize
	return func() float64 {
		cur := f.BytesRxed()
		delta := cur - last
		last = cur
		return float64(units.RateOf(delta, interval))
	}
}

// PortIDs used in traces.
var portLabels = []string{"P0", "P1", "P2", "P3"}

// ObservedPorts returns the four labelled ports.
func (fr *Fig2Rig) ObservedPorts() []*fabric.Port {
	return []*fabric.Port{fr.P0, fr.P1, fr.P2, fr.P3}
}

// PortLabel names an observed port.
func PortLabel(i int) string { return portLabels[i] }

// MarkedFraction reports the fraction of a flow's received packets
// carrying the given mark.
func MarkedFraction(f *host.Flow, ce bool) float64 {
	if f.PktsRxed() == 0 {
		return 0
	}
	if ce {
		return float64(f.CEPackets()) / float64(f.PktsRxed())
	}
	return float64(f.UEPackets()) / float64(f.PktsRxed())
}
