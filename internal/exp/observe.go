package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/units"
)

// ObserveConfig parameterizes the §3.1 observation scenarios (Figures 3,
// 4, 12 and 13): the Figure-2 topology with a long-lived flow F1 crossing
// the burst-congested port P3, and constant-rate flows F0/F2 sharing the
// P1/P2 chain.
type ObserveConfig struct {
	// Kind selects CEE (PFC + ECN) or IB (CBFC + FECN).
	Kind FabricKind
	// Det selects the detector: DetBaseline reproduces Fig 3/4,
	// DetTCD reproduces Fig 12/13.
	Det DetectorKind
	// MultiCP selects the multiple-congestion-points variant: F0 and F2
	// send at 25 Gbps (making P2 a second congestion point) instead of
	// 5 Gbps.
	MultiCP bool
	// BurstBytes is the per-A-host per-round burst size (64 KB in §3.1).
	BurstBytes units.ByteSize
	// BurstRounds is the number of synchronized rounds; 16 rounds of
	// 64 KB from 15 hosts keep P3 congested for about 3 ms.
	BurstRounds int
	// BurstGap spaces the rounds (defaults to the round drain time).
	BurstGap units.Time
	// Horizon ends the run.
	Horizon units.Time
	// Sample is the trace interval.
	Sample units.Time
	// Arch selects the switch architecture (output-queued by default).
	Arch fabric.Arch
	// Seed feeds the rig's random streams.
	Seed uint64
	// Obs wires event tracing, metrics and progress reporting into the
	// rig (all off by default).
	Obs obs.Config
	// Faults arms a fault schedule against the run (nil/empty = none; an
	// empty schedule leaves the run byte-identical to a fault-free one).
	Faults *fault.Spec
}

// DefaultObserveConfig returns the paper-scale §3.1 parameters.
func DefaultObserveConfig(kind FabricKind, det DetectorKind, multi bool) ObserveConfig {
	return ObserveConfig{
		Kind:        kind,
		Det:         det,
		MultiCP:     multi,
		BurstBytes:  64 * units.KB,
		BurstRounds: 16,
		Horizon:     8 * units.Millisecond,
		Sample:      10 * units.Microsecond,
	}
}

// Observe runs one observation scenario and collects the queue-length,
// sending-rate and marking series of ports P0..P3 plus per-flow marking
// observations.
func Observe(cfg ObserveConfig) *Result {
	return observeWithArch(cfg, cfg.Arch)
}

func observeWithArch(cfg ObserveConfig, arch fabric.Arch) *Result {
	if cfg.BurstBytes == 0 {
		cfg.BurstBytes = 64 * units.KB
	}
	if cfg.BurstRounds == 0 {
		cfg.BurstRounds = 16
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 8 * units.Millisecond
	}
	if cfg.Sample == 0 {
		cfg.Sample = 10 * units.Microsecond
	}
	if cfg.BurstGap == 0 {
		// One round drains in senders*size / 40G; back-to-back rounds.
		cfg.BurstGap = units.TxTime(15*cfg.BurstBytes, 40*units.Gbps)
	}
	name := fmt.Sprintf("observe-%s-%s", cfg.Kind, cfg.Det)
	if cfg.MultiCP {
		name += "-multicp"
	} else {
		name += "-singlecp"
	}
	rig := NewFig2Rig(Fig2Opts{
		Kind:   cfg.Kind,
		Det:    cfg.Det,
		Seed:   cfg.Seed,
		Arch:   arch,
		Record: true,
		Obs:    cfg.Obs,
	})
	res := NewResult(name)
	inj := rig.mustInjectFaults(cfg.Faults)

	line := 40 * units.Gbps
	crossRate := 5 * units.Gbps
	if cfg.MultiCP {
		crossRate = 25 * units.Gbps
	}

	// F1: long-lived, congestion-controlled, S1 -> R1 at line rate.
	ccKind := CCDCQCN
	if cfg.Kind == IB {
		ccKind = CCIBCC
	}
	f1 := rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, 10*1000*units.MB, 0, rig.NewCC(ccKind, line))

	// Bursts from A0..A14 to R1 at t=200us.
	burstStart := 200 * units.Microsecond
	bursts := rig.LaunchBursts(burstStart, cfg.BurstBytes, cfg.BurstRounds, cfg.BurstGap)

	// F0 and F2: constant-rate cross traffic to R0, starting just after
	// the bursts.
	crossStart := burstStart + 200*units.Microsecond
	f0 := rig.Mgr.AddFlow(rig.F2.S0, rig.F2.R0, 10*1000*units.MB, crossStart, host.FixedRate(crossRate))
	f2 := rig.Mgr.AddFlow(rig.F2.S2, rig.F2.R0, 10*1000*units.MB, crossStart, host.FixedRate(crossRate))

	// Traces.
	tr := stats.NewTracer(rig.Sched, cfg.Sample, cfg.Horizon)
	ports := rig.ObservedPorts()
	for i, p := range ports {
		p := p
		res.Series[PortLabel(i)+"_queue"] = tr.Add(PortLabel(i)+" queue bytes", func() float64 {
			return float64(p.TotalQueueBytes())
		})
		rp := stats.RateProbe(func() units.ByteSize { return p.TxBytes }, cfg.Sample)
		res.Series[PortLabel(i)+"_rate"] = tr.Add(PortLabel(i)+" tx Gbps", func() float64 { return rp() / 1e9 })
		res.Series[PortLabel(i)+"_ce"] = tr.Add(PortLabel(i)+" CE marks", stats.DeltaProbe(func() uint64 { return p.MarkedCE }))
		res.Series[PortLabel(i)+"_ue"] = tr.Add(PortLabel(i)+" UE marks", stats.DeltaProbe(func() uint64 { return p.MarkedUE }))
	}
	tr.Start()

	rig.Run(cfg.Horizon)

	// Flow-level marking observations.
	for label, f := range map[string]*host.Flow{"f0": f0, "f1": f1, "f2": f2} {
		res.Scalars[label+"_pkts"] = float64(f.PktsRxed())
		res.Scalars[label+"_ce"] = float64(f.CEPackets())
		res.Scalars[label+"_ue"] = float64(f.UEPackets())
		res.Scalars[label+"_ce_frac"] = MarkedFraction(f, true)
	}
	var burstEnd units.Time
	done := 0
	for _, b := range bursts {
		if b.Done {
			done++
			if b.Start+b.FCT > burstEnd {
				burstEnd = b.Start + b.FCT
			}
		}
	}
	res.Scalars["bursts_done"] = float64(done)
	res.Scalars["burst_end_ms"] = burstEnd.Millis()
	// Marks at P2 split by era: the paper's improper-detection claims
	// concern the burst window, when P2 is a victim (single CP) or a
	// covered root (multi CP). Marks after the window can be legitimate
	// steady-state congestion (F1 recovers and P2 becomes a real
	// bottleneck).
	for _, mk := range []string{"ce", "ue"} {
		s := res.Series["P2_"+mk]
		during, after := 0.0, 0.0
		for i, t := range s.T {
			if t <= burstEnd {
				during += s.V[i]
			} else {
				after += s.V[i]
			}
		}
		res.Scalars["p2_"+mk+"_during_bursts"] = during
		res.Scalars["p2_"+mk+"_after_bursts"] = after
	}
	res.Scalars["p2_max_queue_kb"] = res.Series["P2_queue"].Max() / 1000
	res.Scalars["p3_max_queue_kb"] = res.Series["P3_queue"].Max() / 1000
	res.Scalars["p2_pause_time_us"] = ports[2].PauseTime.Micros()
	// Fault scalars only when something was armed: a fault-free run's
	// result (the golden fig3/fig12 JSON) must stay byte-identical.
	if inj.Armed > 0 {
		res.Scalars["fault_actions_armed"] = float64(inj.Armed)
		res.Scalars["fault_drops"] = float64(rig.Net.FaultDrops)
		res.Scalars["fault_dropped_kb"] = float64(rig.Net.FaultDropPayload()) / 1000
		attackScalars(res, rig.Net)
	}

	if cfg.Det == DetTCD {
		d := rig.TCDAt(rig.P2)
		res.Scalars["p2_final_state"] = float64(d.State())
		res.Scalars["p2_time_undetermined_us"] = d.TimeIn(core.Undetermined).Micros()
		res.Scalars["p2_time_congestion_us"] = d.TimeIn(core.Congestion).Micros()
		for _, t := range d.Transitions {
			res.AddNote("P2 %v: %v -> %v", t.At, t.From, t.To)
		}
		d1 := rig.TCDAt(rig.P1)
		res.Scalars["p1_final_state"] = float64(d1.State())
	}
	res.AttachTelemetry(cfg.Obs.Telemetry)
	return res
}
