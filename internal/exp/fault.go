// Failure-mode experiments: what congestion detection sees when the
// backpressure is caused by a fault instead of a traffic hot spot.
//
//   - victim-under-flap: the Figure-2 network with a flapping R0–T2
//     link. Every down window strands R0-bound traffic at T2, PFC/CBFC
//     spread the backpressure to P2 and P1, and the long-lived F1 —
//     whose own path to R1 is idle — queues behind it. Stock ECN reads
//     P2's queue as congestion and marks F1's packets CE; TCD sees the
//     pause-dominated ON/OFF pattern, stays undetermined, and marks UE.
//   - deadlock-unit: a 3-switch ring with deliberately cyclic routing
//     and tiny flow-control buffers. The pause (or credit) waits close
//     into a loop that can never drain; the pfc.DeadlockDetector /
//     cbfc.StallDetector must find the cycle and attribute the initial
//     trigger within bounded sim time.

package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// InjectFaults arms a fault schedule against the rig's network. An empty
// (or nil) spec arms nothing: the run stays byte-identical to one built
// without the injector.
func (r *Rig) InjectFaults(spec *fault.Spec) (*fault.Injector, error) {
	return fault.Inject(r.Net, spec)
}

// mustInjectFaults is InjectFaults for experiment wiring, where a bad
// spec is a configuration error and should be loud.
func (r *Rig) mustInjectFaults(spec *fault.Spec) *fault.Injector {
	inj, err := r.InjectFaults(spec)
	if err != nil {
		panic("exp: " + err.Error())
	}
	return inj
}

// attackScalars surfaces the adversarial counters on a faulted run's
// result. Only nonzero totals are emitted, so benign schedules (and the
// fault-free goldens) add nothing.
func attackScalars(res *Result, net *fabric.Network) {
	var spoofed, forged uint64
	for _, p := range net.Ports() {
		spoofed += p.SpoofedCE
		forged += p.ForgedCtrl
	}
	if spoofed > 0 {
		res.Scalars["spoofed_ce"] = float64(spoofed)
	}
	if forged > 0 {
		res.Scalars["forged_ctrl"] = float64(forged)
	}
}

// VictimFlapConfig parameterizes the victim-under-flap experiment.
type VictimFlapConfig struct {
	// Kind selects CEE (PFC + ECN/TCD) or IB (CBFC + FECN/TCD).
	Kind FabricKind
	// Det selects the marking scheme under test.
	Det DetectorKind
	// Horizon ends the run.
	Horizon units.Time
	// FlapFrom/FlapUntil bound the flap window; FlapPeriod and FlapDown
	// shape each cycle of the R0-T2 link failure.
	FlapFrom, FlapUntil  units.Time
	FlapPeriod, FlapDown units.Time
	// CrossRate is the per-flow rate of the R0-bound cross traffic.
	CrossRate units.Rate
	// Sample is the trace interval.
	Sample units.Time
	// Seed feeds the rig's random streams.
	Seed uint64
	// Obs wires tracing/metrics/progress into the rig.
	Obs obs.Config
	// Faults, if non-empty, is an extra fault schedule (including the
	// adversarial kinds) armed alongside the built-in flap — the -faults
	// flag of cmd/tcdsim. Events merge into one injector so route
	// rewrites and camouflage duty accounting stay coherent.
	Faults *fault.Spec
}

// DefaultVictimFlapConfig returns the experiment's stock parameters: a
// 10 ms run with the R0-T2 link flapping 400 us down per millisecond
// between 0.5 ms and 8 ms.
func DefaultVictimFlapConfig(kind FabricKind, det DetectorKind) VictimFlapConfig {
	return VictimFlapConfig{
		Kind:       kind,
		Det:        det,
		Horizon:    10 * units.Millisecond,
		FlapFrom:   500 * units.Microsecond,
		FlapUntil:  8 * units.Millisecond,
		FlapPeriod: units.Millisecond,
		FlapDown:   400 * units.Microsecond,
		CrossRate:  10 * units.Gbps,
		Sample:     10 * units.Microsecond,
	}
}

// VictimUnderFlap runs the victim-under-flap scenario with one marking
// scheme; cmd/tcdsim pairs a DetBaseline and a DetTCD run to show the
// classification difference.
func VictimUnderFlap(cfg VictimFlapConfig) *Result {
	if cfg.Horizon == 0 {
		cfg.Horizon = 10 * units.Millisecond
	}
	if cfg.Sample == 0 {
		cfg.Sample = 10 * units.Microsecond
	}
	if cfg.CrossRate == 0 {
		cfg.CrossRate = 10 * units.Gbps
	}
	rig := NewFig2Rig(Fig2Opts{
		Kind:   cfg.Kind,
		Det:    cfg.Det,
		Seed:   cfg.Seed,
		Record: true,
		Obs:    cfg.Obs,
	})
	res := NewResult(fmt.Sprintf("victim-under-flap-%s-%s", cfg.Kind, cfg.Det))

	spec := &fault.Spec{Events: []fault.Event{{
		Kind:     "flap",
		Link:     "R0-T2",
		AtUs:     cfg.FlapFrom.Micros(),
		PeriodUs: cfg.FlapPeriod.Micros(),
		DownUs:   cfg.FlapDown.Micros(),
		UntilUs:  cfg.FlapUntil.Micros(),
	}}}
	if !cfg.Faults.Empty() {
		spec.Events = append(spec.Events, cfg.Faults.Events...)
	}
	inj := rig.mustInjectFaults(spec)

	line := 40 * units.Gbps
	ccKind := CCDCQCN
	if cfg.Kind == IB {
		ccKind = CCIBCC
	}
	// F1: the victim. Long-lived, congestion-controlled, S1 -> R1; its
	// own bottleneck (T2 -> R1) stays idle the whole run.
	f1 := rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, 10*1000*units.MB, 0, rig.NewCC(ccKind, line))
	// F0/F2: constant-rate R0-bound cross traffic — the flows the flap
	// actually strands.
	f0 := rig.Mgr.AddFlow(rig.F2.S0, rig.F2.R0, 10*1000*units.MB, 100*units.Microsecond, host.FixedRate(cfg.CrossRate))
	f2 := rig.Mgr.AddFlow(rig.F2.S2, rig.F2.R0, 10*1000*units.MB, 100*units.Microsecond, host.FixedRate(cfg.CrossRate))

	tr := stats.NewTracer(rig.Sched, cfg.Sample, cfg.Horizon)
	for i, p := range rig.ObservedPorts() {
		p := p
		res.Series[PortLabel(i)+"_queue"] = tr.Add(PortLabel(i)+" queue bytes", func() float64 {
			return float64(p.TotalQueueBytes())
		})
	}
	f1Rate := FlowRateProbe(f1, cfg.Sample)
	res.Series["f1_rate"] = tr.Add("F1 goodput Gbps", func() float64 { return f1Rate() / 1e9 })
	tr.Start()

	rig.Run(cfg.Horizon)

	for label, f := range map[string]*host.Flow{"f0": f0, "f1": f1, "f2": f2} {
		res.Scalars[label+"_pkts"] = float64(f.PktsRxed())
		res.Scalars[label+"_ce"] = float64(f.CEPackets())
		res.Scalars[label+"_ue"] = float64(f.UEPackets())
		res.Scalars[label+"_ce_frac"] = MarkedFraction(f, true)
		res.Scalars[label+"_ue_frac"] = MarkedFraction(f, false)
	}
	res.Scalars["f1_goodput_gbps"] = float64(units.RateOf(f1.BytesRxed(), cfg.Horizon)) / 1e9
	res.Scalars["fault_actions_armed"] = float64(inj.Armed)
	res.Scalars["fault_drops"] = float64(rig.Net.FaultDrops)
	res.Scalars["fault_dropped_kb"] = float64(rig.Net.FaultDropPayload()) / 1000
	attackScalars(res, rig.Net)
	res.Scalars["p1_pause_us"] = rig.P1.PauseTime.Micros()
	res.Scalars["p2_pause_us"] = rig.P2.PauseTime.Micros()
	res.Scalars["p2_max_queue_kb"] = res.Series["P2_queue"].Max() / 1000

	if cfg.Det == DetTCD {
		d := rig.TCDAt(rig.P2)
		res.Scalars["p2_final_state"] = float64(d.State())
		res.Scalars["p2_time_undetermined_us"] = d.TimeIn(core.Undetermined).Micros()
		res.Scalars["p2_time_congestion_us"] = d.TimeIn(core.Congestion).Micros()
	}
	res.AddNote("flap R0-T2: %v down per %v period over [%v, %v]",
		cfg.FlapDown, cfg.FlapPeriod, cfg.FlapFrom, cfg.FlapUntil)
	return res
}

// DeadlockUnitConfig parameterizes the deadlock-unit experiment.
type DeadlockUnitConfig struct {
	// Kind selects the flow control whose wait cycle forms: CEE closes a
	// PFC pause-wait loop, IB a CBFC credit-wait loop.
	Kind FabricKind
	// Horizon ends the run (the cycle forms within the first hundred
	// microseconds; the horizon only bounds detection).
	Horizon units.Time
	// ScanEvery overrides the detector period (0 = detector default).
	ScanEvery units.Time
	// Seed feeds the rig's random streams.
	Seed uint64
	// Obs wires tracing/metrics/progress into the rig.
	Obs obs.Config
}

// DefaultDeadlockUnitConfig returns the stock parameters: a 5 ms run on
// the 3-switch ring.
func DefaultDeadlockUnitConfig(kind FabricKind) DeadlockUnitConfig {
	return DeadlockUnitConfig{Kind: kind, Horizon: 5 * units.Millisecond}
}

// DeadlockUnit drives the ring into a provable wait cycle and reports
// what the detector attributed. Scalars: deadlocked (0/1), the detection
// time, the cycle size, and how long the initial trigger had been
// blocked when the scan caught it.
func DeadlockUnit(cfg DeadlockUnitConfig) *Result {
	if cfg.Horizon == 0 {
		cfg.Horizon = 5 * units.Millisecond
	}
	rate := 40 * units.Gbps
	ring := topo.NewRing(3, rate, units.Microsecond)
	rig := NewRig(RigConfig{
		Topo: ring.Topology,
		Kind: cfg.Kind,
		Det:  DetTCD,
		Seed: cfg.Seed,
		// Tiny flow-control buffers close the cycle quickly.
		PFC:  pfc.Config{Xoff: 20 * units.KB, Xon: 18 * units.KB, Headroom: 20 * units.KB},
		CBFC: cbfc.Config{Buffer: 20 * units.KB, Tc: 10 * units.Microsecond},
		Obs:  cfg.Obs,
	})
	// Deliberately cyclic routing: everything not local is forwarded
	// clockwise, so each inter-switch link carries two flows' transit
	// traffic and the buffer dependencies form a loop.
	rig.Net.Route = func(at packet.NodeID, pkt *packet.Packet) *fabric.Port {
		i := ring.SwitchOf(at)
		if i < 0 {
			panic("deadlock-unit: unroutable node")
		}
		if pkt.Dst == ring.Hosts[i] {
			return rig.Net.PortToward(at, pkt.Dst)
		}
		return rig.Net.PortToward(at, ring.Sw[(i+1)%3])
	}

	var (
		pfcDet  *pfc.DeadlockDetector
		cbfcDet *cbfc.StallDetector
	)
	if cfg.Kind == CEE {
		pfcDet = pfc.AttachDeadlockDetector(rig.Net, cfg.ScanEvery)
	} else {
		cbfcDet = cbfc.AttachStallDetector(rig.Net, cfg.ScanEvery)
	}

	// Each host sends 2 MB to the host two hops clockwise: far more than
	// the ring's total buffering, at line rate.
	var flows []*host.Flow
	for i := 0; i < 3; i++ {
		flows = append(flows, rig.Mgr.AddFlow(ring.Hosts[i], ring.Hosts[(i+2)%3], 2*units.MB, 0, host.FixedRate(rate)))
	}

	rig.Run(cfg.Horizon)

	res := NewResult(fmt.Sprintf("deadlock-unit-%s", cfg.Kind))
	done := 0
	for _, f := range flows {
		if f.Done {
			done++
		}
	}
	res.Scalars["flows_done"] = float64(done)
	stranded := rig.Net.Stranded()
	res.Scalars["stranded_kb"] = float64(stranded.Bytes) / 1000
	res.Scalars["stranded_ports"] = float64(len(stranded.Ports))

	report := func(at units.Time, ports []string, trigger string, since units.Time, scans uint64) {
		res.Scalars["deadlocked"] = 1
		res.Scalars["detected_at_us"] = at.Micros()
		res.Scalars["cycle_ports"] = float64(len(ports))
		res.Scalars["trigger_blocked_us"] = since.Micros()
		res.Scalars["scans"] = float64(scans)
		res.AddNote("cycle %v, initial trigger %s (blocked %v before the scan)", ports, trigger, since)
	}
	res.Scalars["deadlocked"] = 0
	if pfcDet != nil && pfcDet.Deadlocked() {
		r0 := pfcDet.Reports[0]
		report(r0.At, r0.Ports, r0.Trigger, r0.Since, pfcDet.Scans)
	}
	if cbfcDet != nil && cbfcDet.Stalled() {
		r0 := cbfcDet.Reports[0]
		report(r0.At, r0.Ports, r0.Trigger, r0.Since, cbfcDet.Scans)
	}
	return res
}
