package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/cc"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/units"
)

// AblationDetectors compares the detection mechanisms head to head on
// the victim scenario: the ECN baseline, PCN's NP-ECN, the paper's
// static-threshold TCD, and the §6 adaptive-threshold alternative.
// The metric is Table 3's: victim flows mistakenly marked CE, plus the
// censored mean victim FCT.
func AblationDetectors(kind FabricKind, horizon units.Time, seed uint64) *Result {
	res := NewResult(fmt.Sprintf("ablation-detectors-%s", kind))
	ccKind := CCDCQCN
	if kind == IB {
		ccKind = CCIBCC
	}
	for _, det := range []DetectorKind{DetBaseline, DetNPECN, DetTCD, DetTCDAdaptive} {
		cfg := DefaultVictimConfig(kind, det, ccKind)
		cfg.Seed = seed
		if horizon > 0 {
			cfg.Horizon = horizon
		}
		v := Victim(cfg)
		res.Scalars[det.String()+"_victim_ce_frac"] = v.CEFlowFrac
		res.Scalars[det.String()+"_mean_fct_us"] = v.MeanFCTus
		res.AddNote("%-14s victims=%d markedCE=%d ueFrac=%.3f",
			det, v.Victims, v.MarkedCE, v.UEFlowFrac)
	}
	return res
}

// AblationNotification decomposes the paper's DCQCN+TCD rate rules into
// their two ingredients — aggressive CE cuts (alpha 1.2) and UE holds —
// and measures each in isolation on the victim scenario. This is the
// design-choice ablation DESIGN.md calls out for §5.2.
func AblationNotification(horizon units.Time, seed uint64) *Result {
	res := NewResult("ablation-notification-rules")
	variants := []struct {
		name      string
		alphaCeil float64
		ueHold    bool
	}{
		{"detector-only", 1.0, false}, // accurate detection, stock rules
		{"ue-hold-only", 1.0, true},
		{"aggressive-only", 1.2, false},
		{"full-tcd-rules", 1.2, true},
	}
	for _, v := range variants {
		v := v
		cfg := DefaultVictimConfig(CEE, DetTCD, CCDCQCN)
		cfg.Seed = seed
		if horizon > 0 {
			cfg.Horizon = horizon
		}
		cfg.CustomCC = func(r *Rig, line units.Rate) host.RateController {
			c := cc.DefaultDCQCNConfig(line)
			c.AlphaCeil = v.alphaCeil
			c.TCD = v.ueHold
			return cc.NewDCQCN(r.Sched, c)
		}
		out := Victim(cfg)
		res.Scalars[v.name+"_mean_fct_us"] = out.MeanFCTus
		res.Scalars[v.name+"_censored"] = float64(out.Censored)
	}
	return res
}

// AblationTrendSlack shows why the post-undetermined trend check needs a
// growth tolerance: with a 1-byte slack, a port whose input rate exactly
// matches line rate (two 20 Gbps edges behind one 40 Gbps link) jitters
// into false congestion detections; with the default 4 KB slack it does
// not.
func AblationTrendSlack(horizon units.Time, seed uint64) *Result {
	res := NewResult("ablation-trend-slack")
	for _, slack := range []units.ByteSize{1, 4 * units.KB} {
		cfg := DefaultVictimConfig(IB, DetTCD, CCIBCC)
		cfg.Seed = seed
		cfg.Par.TrendSlack = slack
		// Pin the knife-edge regime: both 20 Gbps edges near saturation so
		// their sum matches the 40 Gbps fabric link exactly, and a dense
		// burst cadence to keep pausing it.
		cfg.S0Load, cfg.S1Load = 0.85, 0.85
		cfg.BurstMeanGap = units.Millisecond
		if horizon > 0 {
			cfg.Horizon = horizon
		}
		v := Victim(cfg)
		res.Scalars[fmt.Sprintf("slack=%v victim_ce_flows", slack)] = float64(v.MarkedCE)
	}
	return res
}

// AblationSwitchArch reruns the IB single-congestion-point observation
// under both switch organizations — the default output-queued model and
// the input-buffered VoQ architecture the paper's InfiniBand simulator
// uses — to show the detection behaviour is architecture-insensitive
// (queue placement moves, ternary classification does not).
func AblationSwitchArch(horizon units.Time, seed uint64) *Result {
	res := NewResult("ablation-switch-arch")
	for _, arch := range []fabric.Arch{fabric.OutputQueued, fabric.InputQueuedVoQ} {
		label := "output-queued"
		if arch == fabric.InputQueuedVoQ {
			label = "voq"
		}
		cfg := DefaultObserveConfig(IB, DetTCD, false)
		cfg.Seed = seed
		if horizon > 0 {
			cfg.Horizon = horizon
		}
		r := observeWithArch(cfg, arch)
		res.Scalars[label+"_p2_ce_during_bursts"] = r.Scalars["p2_ce_during_bursts"]
		res.Scalars[label+"_f0_ue"] = r.Scalars["f0_ue"]
		res.Scalars[label+"_p2_und_us"] = r.Scalars["p2_time_undetermined_us"]
		res.Scalars[label+"_p2_max_queue_kb"] = r.Scalars["p2_max_queue_kb"]
	}
	return res
}
