package exp

import (
	"bytes"
	"testing"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// telemetryObserve runs a short fig3-style scenario, optionally with the
// streaming telemetry collector attached.
func telemetryObserve(seed uint64, tel *obs.Telemetry) *Result {
	cfg := DefaultObserveConfig(CEE, DetBaseline, false)
	cfg.Seed = seed
	cfg.Horizon = 2 * units.Millisecond
	cfg.BurstRounds = 4
	cfg.Obs = obs.Config{Telemetry: tel}
	return Observe(cfg)
}

// TestTelemetryDoesNotPerturbResults is the golden-preservation property:
// attaching the full telemetry stack (event fold + queue sampler) must
// leave every scalar and every pre-existing series byte-identical,
// because its hooks are read-only observers.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := telemetryObserve(1, nil)
	teled := telemetryObserve(1, obs.NewTelemetry(nil))

	if len(teled.Hists) == 0 {
		t.Fatal("telemetry run attached no histograms")
	}
	if plain.Hists != nil {
		t.Fatal("plain run grew histograms; default outputs would change")
	}
	// Strip the telemetry-only series, then the JSON must match exactly.
	delete(teled.Series, "telemetry_queue_win")
	teled.Hists = nil
	var pb, tb bytes.Buffer
	if err := plain.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	if err := teled.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), tb.Bytes()) {
		t.Error("telemetry perturbed the simulation results")
	}
}

// TestTelemetryCollectsDistributions: the fig3 scenario must populate the
// headline histograms (flows complete, queues fill, PFC pauses, marks
// fire) and the windowed queue series.
func TestTelemetryCollectsDistributions(t *testing.T) {
	tel := obs.NewTelemetry(nil)
	res := telemetryObserve(1, tel)

	for _, name := range []string{"fct_ps", "queue_bytes", "pause_dur_ps", "mark_gap_ps"} {
		h, ok := res.Hists[name]
		if !ok {
			t.Fatalf("histogram %s missing from result", name)
		}
		if h.Count() == 0 {
			t.Errorf("histogram %s is empty", name)
		}
	}
	if res.Hists["fct_ps"].Min() <= 0 {
		t.Errorf("fct min = %d, want > 0", res.Hists["fct_ps"].Min())
	}
	s, ok := res.Series["telemetry_queue_win"]
	if !ok || len(s.T) == 0 {
		t.Fatal("windowed queue series missing")
	}
	// Bounded memory: the ring never exceeds its configured cap.
	if len(s.T) > tel.QueueWin.Cap() {
		t.Fatalf("queue windows %d exceed ring cap %d", len(s.T), tel.QueueWin.Cap())
	}
	if f := tel.QueueWin.Fold(); f.Count == 0 || f.Max <= 0 {
		t.Fatalf("queue fold = %+v", f)
	}
}

// TestTelemetryDeterministicExports: two same-seed runs produce
// byte-identical result JSON (including histograms) and byte-identical
// Prometheus metric exports.
func TestTelemetryDeterministicExports(t *testing.T) {
	export := func() (resJSON, prom []byte) {
		tel := obs.NewTelemetry(nil)
		res := telemetryObserve(1, tel)
		var rb bytes.Buffer
		if err := res.WriteJSON(&rb); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		tel.FoldInto(reg)
		var pb bytes.Buffer
		if err := reg.WriteProm(&pb); err != nil {
			t.Fatal(err)
		}
		return rb.Bytes(), pb.Bytes()
	}
	r1, p1 := export()
	r2, p2 := export()
	if !bytes.Equal(r1, r2) {
		t.Error("same-seed telemetry result JSON differs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("same-seed Prometheus exports differ")
	}
	if !bytes.Contains(p1, []byte("hist_fct_ps_count")) {
		t.Error("Prometheus export missing telemetry gauges")
	}
}

// TestHistJSONRoundTripThroughResult: result JSON embeds histograms that
// decode back to equal state — the sweep aggregation path depends on it.
func TestHistJSONRoundTripThroughResult(t *testing.T) {
	tel := obs.NewTelemetry(nil)
	res := telemetryObserve(1, tel)
	h := res.Hists["fct_ps"]
	b, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back := obs.NewHist()
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatal("histogram did not survive the JSON round trip")
	}
}
