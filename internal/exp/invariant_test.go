package exp

import (
	"os"
	"testing"

	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/units"
)

// TestMain flips the strict invariant audit on for the whole test
// binary: every experiment any exp test runs is re-checked for payload
// conservation, credit sanity, buffer bounds, pause liveness and
// scheduler-heap consistency after its horizon.
func TestMain(m *testing.M) {
	StrictInvariants = true
	os.Exit(m.Run())
}

// TestInvariantsAcrossScenarios drives the checker explicitly over the
// four corners of the rig space (CEE/IB x baseline/TCD) rather than
// relying on whichever experiments other tests happen to run.
func TestInvariantsAcrossScenarios(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		for _, det := range []DetectorKind{DetBaseline, DetTCD} {
			kind, det := kind, det
			t.Run(kind.String()+"-"+det.String(), func(t *testing.T) {
				cfg := DefaultObserveConfig(kind, det, false)
				cfg.Horizon = 2 * units.Millisecond
				cfg.BurstRounds = 4
				cfg.Seed = 7
				rig := NewFig2Rig(Fig2Opts{Kind: cfg.Kind, Det: cfg.Det, Seed: cfg.Seed})
				line := 40 * units.Gbps
				ccKind := CCDCQCN
				if kind == IB {
					ccKind = CCIBCC
				}
				rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, 10*units.MB, 0, rig.NewCC(ccKind, line))
				rig.LaunchBursts(200*units.Microsecond, cfg.BurstBytes, cfg.BurstRounds, cfg.BurstGap)
				rig.Mgr.AddFlow(rig.F2.S0, rig.F2.R0, units.MB, 400*units.Microsecond, host.FixedRate(5*units.Gbps))
				rig.Sched.RunUntil(cfg.Horizon)
				if err := CheckInvariants(rig.Rig); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestInvariantCheckerCatchesLeaks corrupts the fault-drop ledger and
// expects the conservation check to fire — a checker that cannot fail
// proves nothing.
func TestInvariantCheckerCatchesLeaks(t *testing.T) {
	rig := NewFig2Rig(Fig2Opts{Kind: CEE, Det: DetBaseline, Seed: 1})
	f := rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, units.MB, 0, host.FixedRate(40*units.Gbps))
	rig.Sched.RunUntil(units.Millisecond)
	if err := CheckInvariants(rig.Rig); err != nil {
		t.Fatalf("clean run should satisfy invariants: %v", err)
	}
	// Forge a receiver-side leak: a kilobyte delivered out of thin air.
	rig.Mgr.AdjustRx(f, units.KB)
	if err := CheckInvariants(rig.Rig); err == nil {
		t.Fatal("conservation check did not notice a forged 1 KB surplus")
	}
	rig.Mgr.AdjustRx(f, -units.KB)
	if err := CheckInvariants(rig.Rig); err != nil {
		t.Fatalf("invariants should hold again after undoing the forgery: %v", err)
	}
}
