package exp

import (
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func TestAblationSwitchArchShape(t *testing.T) {
	res := AblationSwitchArch(6*units.Millisecond, 1)
	t.Log(res.Render())
	for _, label := range []string{"output-queued", "voq"} {
		if res.Scalars[label+"_p2_ce_during_bursts"] != 0 {
			t.Errorf("%s: CE marked during bursts", label)
		}
		if res.Scalars[label+"_f0_ue"] == 0 {
			t.Errorf("%s: victim never UE-marked", label)
		}
		if res.Scalars[label+"_p2_und_us"] < 100 {
			t.Errorf("%s: no undetermined era", label)
		}
	}
}
