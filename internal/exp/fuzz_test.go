package exp

import (
	"sync"
	"testing"

	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// specFromBytes derives a bounded, always-valid fault schedule from raw
// fuzz bytes: up to six events, each decoded from a six-byte record.
// Keeping the construction total (never returning an invalid spec) lets
// the fuzz target assert that Inject succeeds and the run upholds every
// invariant, instead of wasting executions on rejected input.
func specFromBytes(raw []byte) *fault.Spec {
	links := []string{"R0-T2", "S1-T0", "T0-L0", "L0-T2"}
	ports := []string{"T2->L0", "L0->T0", "T0->S1", "L0->T2"}
	var evs []fault.Event
	for i := 0; i+6 <= len(raw) && len(evs) < 6; i += 6 {
		b := raw[i : i+6]
		at := 100 + float64(b[2])*5 // 100..1375 us, inside the run
		link := links[int(b[1])%len(links)]
		port := ports[int(b[1])%len(ports)]
		until := at + 10 + float64(b[5])*4
		switch b[0] % 9 {
		case 0:
			period := 20 + float64(b[3])
			down := 1 + float64(b[4])*(period-2)/255
			evs = append(evs, fault.Event{Kind: "flap", Link: link, AtUs: at,
				PeriodUs: period, DownUs: down, UntilUs: until})
		case 1:
			evs = append(evs, fault.Event{Kind: "link-down", Link: link, AtUs: at})
			evs = append(evs, fault.Event{Kind: "link-up", Link: link, AtUs: at + 20 + float64(b[3])})
		case 2:
			prob := (1 + float64(b[3]%100)) / 100
			evs = append(evs, fault.Event{Kind: "ctrl-loss", Port: port, AtUs: at,
				Prob: prob, Seed: uint64(b[4]) + 1, UntilUs: until})
		case 3:
			evs = append(evs, fault.Event{Kind: "ctrl-delay", Port: port, AtUs: at,
				DelayUs: 1 + float64(b[3]), UntilUs: until})
		case 4:
			evs = append(evs, fault.Event{Kind: "freeze", Port: port, AtUs: at})
			evs = append(evs, fault.Event{Kind: "thaw", Port: port, AtUs: at + 20 + float64(b[3])})
		case 5:
			// Pause storm, sustained (down 0) or bursty; down stays below
			// the 20us period floor so every decode is a valid storm.
			period := 20 + float64(b[3])
			down := 0.0
			if b[4]%2 == 1 {
				down = 1 + float64(b[4]%16)
			}
			evs = append(evs, fault.Event{Kind: "pause-storm", Port: port, AtUs: at,
				PeriodUs: period, DownUs: down, UntilUs: until})
		case 6:
			period := 20 + float64(b[3])
			down := 1 + float64(b[4]%18)
			evs = append(evs, fault.Event{Kind: "camouflage", Port: port, AtUs: at,
				PeriodUs: period, DownUs: down, UntilUs: until})
		case 7:
			prob := (1 + float64(b[3]%100)) / 100
			evs = append(evs, fault.Event{Kind: "spoof-mark", Port: port, AtUs: at,
				Prob: prob, Seed: uint64(b[4]) + 1, UntilUs: until})
		case 8:
			evs = append(evs, fault.Event{Kind: "route-rewrite", Port: port, AtUs: at,
				UntilUs: until})
		}
	}
	return &fault.Spec{Events: evs}
}

const fuzzHorizon = 1500 * units.Microsecond

// fuzzRun drives a small Figure-2 workload with the given schedule and
// returns the trace, the rig, and the injector.
func fuzzRun(spec *fault.Spec) ([]obs.Event, *Fig2Rig, *fault.Injector, error) {
	ring := obs.NewRing(1 << 17)
	rig := NewFig2Rig(Fig2Opts{Kind: CEE, Det: DetTCD, Seed: 9, Obs: obs.Config{Rec: ring}})
	inj, err := rig.InjectFaults(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	line := 40 * units.Gbps
	rig.Mgr.AddFlow(rig.F2.S1, rig.F2.R1, 10*units.MB, 0, rig.NewCC(CCDCQCN, line))
	rig.LaunchBursts(100*units.Microsecond, 32*units.KB, 2, 50*units.Microsecond)
	rig.Mgr.AddFlow(rig.F2.S0, rig.F2.R0, 10*units.MB, 200*units.Microsecond, host.FixedRate(10*units.Gbps))
	rig.Sched.RunUntil(fuzzHorizon)
	return ring.Events(), rig, inj, nil
}

var (
	goldenOnce   sync.Once
	goldenEvents []obs.Event
)

// golden returns the fault-free reference trace, computed once per
// process (fuzz workers each pay it once).
func golden(t *testing.T) []obs.Event {
	goldenOnce.Do(func() {
		evs, _, _, err := fuzzRun(nil)
		if err != nil {
			t.Fatalf("golden run failed: %v", err)
		}
		goldenEvents = evs
	})
	return goldenEvents
}

// FuzzFaultSchedule throws random (bounded) fault schedules at the
// simulator and checks the properties no schedule may break: the run
// never panics, the scheduler heap stays internally consistent, the
// network-wide invariants hold at the horizon, and the trace prefix
// strictly before the first injection matches the fault-free golden run
// event for event.
func FuzzFaultSchedule(f *testing.F) {
	f.Add([]byte{})                                                              // empty schedule
	f.Add([]byte{0, 0, 10, 50, 128, 100})                                        // one flap on R0-T2
	f.Add([]byte{1, 1, 0, 30, 0, 0, 4, 3, 40, 60, 0, 90})                        // down/up + freeze/thaw
	f.Add([]byte{2, 0, 20, 49, 7, 200, 3, 2, 60, 15, 0, 250})                    // ctrl-loss + ctrl-delay
	f.Add([]byte{0, 3, 1, 0, 255, 255, 1, 2, 200, 90, 0, 0, 2, 1, 5, 99, 1, 30}) // mixed
	f.Add([]byte{5, 0, 20, 30, 1, 100, 6, 3, 40, 10, 7, 200})                    // bursty storm + camouflage
	f.Add([]byte{7, 2, 10, 49, 8, 250, 8, 1, 30, 0, 0, 90})                      // spoof-mark + route-rewrite

	f.Fuzz(func(t *testing.T, raw []byte) {
		spec := specFromBytes(raw)
		events, rig, inj, err := fuzzRun(spec)
		if err != nil {
			t.Fatalf("constructed spec must always inject cleanly: %v\nspec: %+v", err, spec)
		}
		if err := rig.Sched.DebugCheck(); err != nil {
			t.Fatalf("scheduler heap corrupted: %v", err)
		}
		if err := CheckInvariants(rig.Rig); err != nil {
			t.Fatalf("%v\nspec: %+v", err, spec)
		}
		g := golden(t)
		first := inj.FirstInjection()
		for i := 0; i < len(g) && i < len(events); i++ {
			if g[i].At >= first || events[i].At >= first {
				break
			}
			if g[i] != events[i] {
				t.Fatalf("trace diverged at event %d, before the first injection (%v):\n  golden:  %+v\n  faulted: %+v\nspec: %+v",
					i, first, g[i], events[i], spec)
			}
		}
	})
}
