package exp

import (
	"math"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
	"github.com/tcdnet/tcd/internal/workload"
)

// The observation scenarios (Figs 3/4/12/13). Shape criteria from the
// paper:
//   - single CP: P2 is a victim; baselines mark improperly during the
//     burst era, TCD marks UE only and lands in non-congestion.
//   - multi CP: P2 is a covered root; TCD transitions undetermined ->
//     congestion while the baseline cannot tell the cases apart.
func TestObserveSingleCPShapes(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := Observe(DefaultObserveConfig(kind, DetBaseline, false))
			tcd := Observe(DefaultObserveConfig(kind, DetTCD, false))

			// The scenario exercised hop-by-hop flow control at P2.
			if base.Scalars["p2_pause_time_us"] == 0 {
				t.Error("P2 never paused: no congestion spreading")
			}
			// The baseline improperly marks CE at the victim port during
			// the burst era (the paper's central observation); TCD never
			// does.
			if base.Scalars["p2_ce_during_bursts"] == 0 {
				t.Error("baseline detector never mismarked at P2 during the bursts")
			}
			if kind == IB && base.Scalars["f0_ce"] == 0 {
				t.Error("baseline FECN did not mismark the victim flow F0")
			}
			if got := tcd.Scalars["p2_ce_during_bursts"]; got != 0 {
				t.Errorf("TCD marked %v CE at P2 during the burst era of a single-CP run", got)
			}
			if tcd.Scalars["f0_ue"] == 0 {
				t.Error("TCD did not mark the victim flow UE")
			}
			// P2's detector ends in non-congestion after a pure victim era.
			if s := core.State(int(tcd.Scalars["p2_final_state"])); s == core.Congestion {
				t.Errorf("P2 final state = %v, want not congestion", s)
			}
			// The undetermined era roughly spans the burst era.
			if tcd.Scalars["p2_time_undetermined_us"] < 100 {
				t.Errorf("P2 undetermined for only %vus", tcd.Scalars["p2_time_undetermined_us"])
			}
		})
	}
}

func TestObserveMultiCPShapes(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			tcd := Observe(DefaultObserveConfig(kind, DetTCD, true))
			// The covered root emerges: P2 must spend time in the
			// congestion state (transition 5) and mark CE.
			if tcd.Scalars["p2_final_state"] != float64(core.Congestion) &&
				tcd.Scalars["p2_time_congestion_us"] == 0 {
				t.Error("covered root never detected at P2")
			}
			if tcd.Scalars["f0_ce"] == 0 {
				t.Error("contributing flow F0 not CE-marked in multi-CP")
			}
			// P2's queue persists beyond the single-CP level (the paper's
			// defining contrast between Fig 3 and Fig 4).
			single := Observe(DefaultObserveConfig(kind, DetTCD, false))
			if tcd.Scalars["p2_max_queue_kb"] <= single.Scalars["p2_max_queue_kb"] {
				t.Errorf("multi-CP P2 queue (%v KB) not above single-CP (%v KB)",
					tcd.Scalars["p2_max_queue_kb"], single.Scalars["p2_max_queue_kb"])
			}
		})
	}
}

// Table 3: victim flows marked CE. Baselines mismark; TCD is exactly 0.
func TestTable3Shape(t *testing.T) {
	_, rows := Table3(15*units.Millisecond, 1)
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Scheme] = r.Fraction
	}
	if byName["ECN (CEE)"] <= 0 {
		t.Error("ECN baseline did not mismark any victim flow")
	}
	if byName["FECN (IB)"] <= 0 {
		t.Error("FECN baseline did not mismark any victim flow")
	}
	if byName["TCD (CEE)"] != 0 {
		t.Errorf("TCD (CEE) mismarked fraction %v, want 0", byName["TCD (CEE)"])
	}
	if byName["TCD (IB)"] != 0 {
		t.Errorf("TCD (IB) mismarked fraction %v, want 0", byName["TCD (IB)"])
	}
}

// Fig 14: no victim packets mismarked for eps <= 0.1; mismarking does not
// decrease as eps grows.
func TestFig14Shape(t *testing.T) {
	_, pts := Fig14(CEE, 15*units.Millisecond, 2)
	byEps := map[float64]int{}
	for _, p := range pts {
		byEps[p.Eps] = p.VictimCEPackets
		if p.Eps <= 0.1 && p.VictimCEPackets != 0 {
			t.Errorf("eps=%v mismarked %d victim packets, want 0 (paper: none below 0.1)", p.Eps, p.VictimCEPackets)
		}
	}
	if byEps[0.4] == 0 {
		t.Error("no mismarking even at eps=0.4; sweep scenario inert")
	}
	if byEps[0.4] < byEps[0.2] {
		t.Errorf("mismarking not growing with eps: 0.2->%d 0.4->%d", byEps[0.2], byEps[0.4])
	}
}

// Fig 11: the testbed marking staircase. F0 is fully UE-marked while the
// burst is active, never CE-marked, and unmarked outside the burst; F1 is
// CE-marked during the burst.
func TestTestbedShape(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultTestbedConfig(kind)
			cfg.Horizon = 40 * units.Millisecond
			res := Testbed(cfg)
			if got := res.Scalars["f0_ue_during"]; got < 0.9 {
				t.Errorf("F0 UE fraction during burst = %v, want ~1", got)
			}
			if got := res.Scalars["f0_ue_outside"]; got != 0 {
				t.Errorf("F0 UE fraction outside burst = %v, want 0", got)
			}
			if got := res.Scalars["f0_ce_during"]; got != 0 {
				t.Errorf("F0 CE fraction = %v, want 0 (victim never congested)", got)
			}
			if got := res.Scalars["f1_ce_during"]; got < 0.9 {
				t.Errorf("F1 CE fraction during burst = %v, want ~1", got)
			}
		})
	}
}

// Fig 20: fairness. B0..B3 keep their rate through the undetermined era
// and converge to the 8 Gbps fair share (5 flows on a 40 Gbps port)
// afterward.
func TestFairnessShape(t *testing.T) {
	for _, cc := range []CCKind{CCDCQCNTCD, CCTIMELYTCD} {
		cc := cc
		t.Run(cc.String(), func(t *testing.T) {
			res := Fairness(DefaultFairnessConfig(CEE, cc))
			if got := res.Scalars["jain_index"]; got < 0.95 {
				t.Errorf("Jain index = %v, want >= 0.95", got)
			}
			if got := res.Scalars["sum_steady_gbps"]; got > 41 {
				t.Errorf("steady B rates sum to %v Gbps, above the 40G port", got)
			}
			if cc == CCTIMELYTCD {
				// TIMELY converges within the run: each flow near the
				// 8 Gbps fair share (5 flows on the 40G port).
				for i := 0; i < 4; i++ {
					r := res.Scalars[indexedScalar("b", i, "_steady_gbps")]
					if r < 4 || r > 11 {
						t.Errorf("B%d steady rate %v Gbps outside the fair-share band", i, r)
					}
				}
			} else {
				// DCQCN's additive increase is slow (40 Mbps per 1.5 ms);
				// require equal shares converging upward toward 8 Gbps.
				for i := 0; i < 4; i++ {
					steady := res.Scalars[indexedScalar("b", i, "_steady_gbps")]
					mid := res.Scalars[indexedScalar("b", i, "_mid_gbps")]
					if steady <= mid {
						t.Errorf("B%d not recovering: mid %v -> steady %v Gbps", i, mid, steady)
					}
					if steady > 11 {
						t.Errorf("B%d steady rate %v Gbps above fair share", i, steady)
					}
				}
			}
		})
	}
}

func indexedScalar(prefix string, i int, suffix string) string {
	return prefix + string(rune('0'+i)) + suffix
}

// Fig 15 (a): TCD eliminates false CE on victims and does not worsen the
// censored mean FCT.
func TestVictimFCTShape(t *testing.T) {
	_, sv, tv := VictimFCT(CEE, CCDCQCN, CCDCQCNTCD, 20*units.Millisecond, 3)
	if sv.CEFlowFrac == 0 {
		t.Error("stock run produced no false marks; scenario too mild")
	}
	if tv.CEFlowFrac != 0 {
		t.Errorf("TCD victim CE fraction = %v, want 0", tv.CEFlowFrac)
	}
	if tv.UEFlowFrac == 0 {
		t.Error("TCD marked no victims UE")
	}
	if tv.MeanFCTus > sv.MeanFCTus*1.1 {
		t.Errorf("TCD victim mean FCT %v worse than stock %v", tv.MeanFCTus, sv.MeanFCTus)
	}
}

// Fig 15 (b)/18 (b): larger bursts victimize more flows (UE fraction
// grows with burst size).
func TestVictimBurstSweepShape(t *testing.T) {
	sizes := []units.ByteSize{32 * units.KB, 128 * units.KB, 512 * units.KB}
	_, pts := VictimBurstSweep(CEE, CCDCQCN, CCDCQCNTCD, sizes, 15*units.Millisecond, 4)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[2].UEFlowFrac < pts[0].UEFlowFrac {
		t.Errorf("UE fraction fell with burst size: %v -> %v", pts[0].UEFlowFrac, pts[2].UEFlowFrac)
	}
}

// The fat-tree workload runs complete and produce sane slowdowns.
func TestFatTreeRuns(t *testing.T) {
	cfg := DefaultFatTreeConfig(CEE, DetTCD, CCDCQCNTCD, "hadoop")
	cfg.MaxFlows = 300
	cfg.Horizon = 20 * units.Millisecond
	out := FatTree(cfg)
	if out.Generated == 0 {
		t.Fatal("no flows generated")
	}
	if float64(out.Completed) < 0.8*float64(out.Generated) {
		t.Errorf("only %d/%d flows completed", out.Completed, out.Generated)
	}
	if p50 := out.Overall.P(0.5); p50 < 0.9 {
		t.Errorf("median slowdown %v below 1: baseline FCT or clock wrong", p50)
	}
	if v := out.Res.Scalars["buffer_violations"]; v != 0 {
		t.Errorf("losslessness violated %v times", v)
	}
}

func TestFatTreeIBMPIIO(t *testing.T) {
	cfg := DefaultFatTreeConfig(IB, DetTCD, CCIBCCTCD, "mpiio")
	cfg.MaxFlows = 300
	cfg.Horizon = 20 * units.Millisecond
	out := FatTree(cfg)
	if out.Completed == 0 {
		t.Fatal("no messages completed")
	}
	if out.MeanMCTus <= 0 {
		t.Error("mean MCT not measured")
	}
	if v := out.Res.Scalars["buffer_violations"]; v != 0 {
		t.Errorf("CBFC losslessness violated %v times", v)
	}
}

func TestFig8AndSection43(t *testing.T) {
	res := Fig8()
	plane := res.Scalars["plane_eps0.05_us"]
	// max(Ton) at tau=8us, C=40G, B1-B0=2KB: (32000+320000)/(4e9)+8us = 96us.
	if math.Abs(plane-96) > 0.1 {
		t.Errorf("eps=0.05 plane = %vus, want 96us", plane)
	}
	// Hyperbolic growth toward small eps.
	if res.Scalars["Ton(eps=0.01,Rd=20Gbps)us"] <= res.Scalars["Ton(eps=0.50,Rd=20Gbps)us"] {
		t.Error("Ton surface not decreasing in eps")
	}

	tbl := Section43Table()
	want := map[string]float64{
		"maxTon@40Gbps_us":  34.4,
		"maxTon@100Gbps_us": 26.96,
		"maxTon@200Gbps_us": 24.48,
	}
	for k, v := range want {
		if math.Abs(tbl.Scalars[k]-v) > 0.01 {
			t.Errorf("%s = %v, want %v", k, tbl.Scalars[k], v)
		}
	}
}

// Reproducibility: the same seed yields bit-identical results.
func TestExperimentsDeterministic(t *testing.T) {
	cfg := DefaultObserveConfig(CEE, DetTCD, false)
	cfg.Horizon = 2 * units.Millisecond
	a := Observe(cfg)
	b := Observe(cfg)
	if len(a.Scalars) != len(b.Scalars) {
		t.Fatal("scalar sets differ")
	}
	for k, v := range a.Scalars {
		if b.Scalars[k] != v {
			t.Errorf("scalar %s differs across identical runs: %v vs %v", k, v, b.Scalars[k])
		}
	}
}

func TestResultRender(t *testing.T) {
	r := NewResult("x")
	r.Scalars["a"] = 1
	r.AddNote("note %d", 7)
	r.Tables = append(r.Tables, "tbl")
	out := r.Render()
	for _, want := range []string{"== x ==", "a", "note 7", "tbl"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// §4.5: strict-priority preemption must not disturb the low-priority
// detector — the bound max(Ton) still holds, so the victim priority is
// classified undetermined during spreading and never congested.
func TestMultiPrioShape(t *testing.T) {
	res := MultiPrio(DefaultMultiPrioConfig())
	if res.Scalars["low_prio_pause_us"] == 0 {
		t.Error("low priority was never paused: scenario inert")
	}
	if res.Scalars["victim_ue"] == 0 {
		t.Error("victim flow not marked UE across the shared port")
	}
	if res.Scalars["victim_ce"] != 0 {
		t.Errorf("victim flow marked CE %v times under preemption jitter", res.Scalars["victim_ce"])
	}
	if res.Scalars["time_congestion_us"] != 0 {
		t.Errorf("low-priority detector spent %vus in congestion", res.Scalars["time_congestion_us"])
	}
	if res.Scalars["hi_pkts"] == 0 {
		t.Error("high-priority interference never flowed")
	}
}

// Ablation shapes: NP-ECN nearly eliminates mismarking, TCD exactly;
// the trend slack prevents knife-edge false congestion.
func TestAblationShapes(t *testing.T) {
	det := AblationDetectors(IB, 15*units.Millisecond, 1)
	if det.Scalars["baseline_victim_ce_frac"] <= det.Scalars["np-ecn_victim_ce_frac"] {
		t.Error("NP-ECN did not improve on the FECN baseline")
	}
	if det.Scalars["tcd_victim_ce_frac"] != 0 || det.Scalars["tcd-adaptive_victim_ce_frac"] != 0 {
		t.Error("TCD variants mismarked victims")
	}
	slack := AblationTrendSlack(15*units.Millisecond, 1)
	if slack.Scalars["slack=1B victim_ce_flows"] <= slack.Scalars["slack=4KB victim_ce_flows"] {
		t.Error("trend-slack ablation did not expose the knife-edge")
	}
	if slack.Scalars["slack=4KB victim_ce_flows"] != 0 {
		t.Error("default slack still mismarks")
	}
}

// Trace replay: the same flows, loaded from a serialized trace, produce
// the same results as direct generation.
func TestFatTreeTraceReplay(t *testing.T) {
	cfg := DefaultFatTreeConfig(CEE, DetTCD, CCDCQCNTCD, "hadoop")
	cfg.MaxFlows = 100
	cfg.Horizon = 10 * units.Millisecond
	direct := FatTree(cfg)

	// Serialize the workload the generator would produce, then replay.
	ft := topo.NewFatTree(cfg.K, 40*units.Gbps, 4*units.Microsecond)
	flows := generateWorkload(cfg, ft, rng.New(cfg.Seed+31))
	var sb strings.Builder
	if err := workload.WriteTrace(&sb, flows); err != nil {
		t.Fatal(err)
	}
	replayed, err := workload.ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Trace = replayed
	replay := FatTree(cfg2)

	if direct.Generated != replay.Generated || direct.Completed != replay.Completed {
		t.Errorf("replay diverged: generated %d/%d completed %d/%d",
			direct.Generated, replay.Generated, direct.Completed, replay.Completed)
	}
	// Start times round to 1 ps through the trace; slowdown medians agree
	// closely.
	dp, rp := direct.Overall.P(0.5), replay.Overall.P(0.5)
	if math.Abs(dp-rp)/dp > 0.02 {
		t.Errorf("replay median slowdown %v vs direct %v", rp, dp)
	}
}
