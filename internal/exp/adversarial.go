// Adversarial experiments: a committed battery of attack scenarios run
// across fabrics and detectors, scored against the oracle's ground truth.
//
// Each scenario is a (topology, workload, fault schedule) triple built
// from the injector's adversarial primitives:
//
//   - pause-storm: a compromised NIC floods a fig2 egress with forged
//     Xoff trains. The stormed port and the chain behind it become true
//     victims; RED-style detectors read the standing queues as roots
//     (the measured misdetection), TCD's pause-aware state machine does
//     not. On IB the forged frames are protocol no-ops — the scenario
//     doubles as the cross-fabric contrast.
//   - spoof-mark: a compromised switch port forges CE marks on transit
//     packets with no queue behind them. Ground truth stays idle and the
//     per-port scoreboard stays clean (forged marks are accounted
//     separately by the fabric); the damage lands on the spoofed flow's
//     congestion control, which the run's goodput scalar shows.
//   - camouflage: micro pause trains hold a genuinely burst-congested
//     root just below TCD's sustained-ON criterion. The oracle strips
//     the manufactured OFF time via the injector's duty-cycle record, so
//     truth still says root — and the scenario documents the attack that
//     fools TCD while queue-threshold baselines keep marking.
//   - route-loop: runtime route rewrites close a cyclic buffer
//     dependency on a 3-switch ring under shortest-path routing — the
//     deadlock-by-routing-loop attack. Cycle membership (the WaitCycles
//     Tarjan scan) is the victim ground truth.
//
// Every run is a plain single-threaded simulation; the battery loops are
// deterministic, so the oracle report is byte-identical across repeats
// and across serial-vs-parallel sweeps (asserted in tests).

package exp

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/oracle"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

//go:embed testdata/adversarial/battery.json
var defaultBatteryJSON []byte

// AttackScenario is one cell of the adversarial battery.
type AttackScenario struct {
	// Name labels the scenario in results and the oracle report.
	Name string `json:"name"`
	// Topo selects the network: "fig2" (the paper's §3.1 network) or
	// "ring3" (3-switch ring, tiny flow-control buffers, shortest-path
	// routing — the substrate the route-loop attack closes).
	Topo string `json:"topo"`
	// Traffic selects the workload: "light" (one congestion-controlled
	// line-rate flow, fig2), "bursts" (the flow plus §3.1 A-host bursts
	// making P3 a true root, fig2), or "ring" (line-rate two-hop flows,
	// ring3).
	Traffic string `json:"traffic"`
	// HorizonUs ends the run.
	HorizonUs float64 `json:"horizon_us"`
	// Faults is the attack schedule.
	Faults fault.Spec `json:"faults"`
}

// Horizon converts the scenario horizon to simulator time.
func (s AttackScenario) Horizon() units.Time {
	return units.Time(math.Round(s.HorizonUs * float64(units.Microsecond)))
}

// Battery is a set of attack scenarios.
type Battery struct {
	Scenarios []AttackScenario `json:"scenarios"`
}

// ParseBattery decodes and validates a battery spec.
func ParseBattery(data []byte) (*Battery, error) {
	var b Battery
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("adversarial: parsing battery: %w", err)
	}
	if len(b.Scenarios) == 0 {
		return nil, fmt.Errorf("adversarial: battery has no scenarios")
	}
	seen := make(map[string]bool, len(b.Scenarios))
	for i, sc := range b.Scenarios {
		if sc.Name == "" {
			return nil, fmt.Errorf("adversarial: scenario %d has no name", i)
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("adversarial: duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		switch sc.Topo {
		case "fig2", "ring3":
		default:
			return nil, fmt.Errorf("adversarial: scenario %q: unknown topo %q", sc.Name, sc.Topo)
		}
		switch sc.Traffic {
		case "light", "bursts", "ring":
		default:
			return nil, fmt.Errorf("adversarial: scenario %q: unknown traffic %q", sc.Name, sc.Traffic)
		}
		if (sc.Topo == "ring3") != (sc.Traffic == "ring") {
			return nil, fmt.Errorf("adversarial: scenario %q: traffic %q does not fit topo %q",
				sc.Name, sc.Traffic, sc.Topo)
		}
		if !(sc.HorizonUs > 0) || math.IsInf(sc.HorizonUs, 0) {
			return nil, fmt.Errorf("adversarial: scenario %q: horizon_us must be a positive finite number", sc.Name)
		}
		if err := sc.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("adversarial: scenario %q: %w", sc.Name, err)
		}
	}
	return &b, nil
}

// LoadBattery reads and validates a battery spec from a file.
func LoadBattery(path string) (*Battery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("adversarial: %w", err)
	}
	return ParseBattery(data)
}

// DefaultBattery returns the committed battery the CI golden gate runs.
func DefaultBattery() *Battery {
	b, err := ParseBattery(defaultBatteryJSON)
	if err != nil {
		panic("exp: embedded battery is invalid: " + err.Error())
	}
	return b
}

// AdversarialConfig parameterizes one scored battery cell.
type AdversarialConfig struct {
	Scenario AttackScenario
	Kind     FabricKind
	Det      DetectorKind
	Seed     uint64
	Obs      obs.Config
}

// Adversarial runs one attack scenario under one fabric and detector and
// scores the detector against the oracle's ground truth. The Result
// carries the score as scalars (so sweeps fold it through Aggregate);
// the oracle.Run feeds BuildReport.
func Adversarial(cfg AdversarialConfig) (*Result, oracle.Run) {
	horizon := cfg.Scenario.Horizon()
	var (
		rig  *Rig
		f2   *Fig2Rig
		ring *topo.Ring
	)
	switch cfg.Scenario.Topo {
	case "fig2":
		f2 = NewFig2Rig(Fig2Opts{Kind: cfg.Kind, Det: cfg.Det, Seed: cfg.Seed, Obs: cfg.Obs})
		rig = f2.Rig
	case "ring3":
		ring = topo.NewRing(3, 40*units.Gbps, units.Microsecond)
		rig = NewRig(RigConfig{
			Topo: ring.Topology,
			Kind: cfg.Kind,
			Det:  cfg.Det,
			Seed: cfg.Seed,
			// Tiny flow-control buffers, as in deadlock-unit: the
			// route-loop attack should close its cycle within the run.
			PFC:  pfc.Config{Xoff: 20 * units.KB, Xon: 18 * units.KB, Headroom: 20 * units.KB},
			CBFC: cbfc.Config{Buffer: 20 * units.KB, Tc: 10 * units.Microsecond},
			Obs:  cfg.Obs,
		})
	default:
		panic("exp: unknown adversarial topo " + cfg.Scenario.Topo)
	}
	res := NewResult(fmt.Sprintf("adversarial-%s-%s-%s", cfg.Scenario.Name, cfg.Kind, cfg.Det))

	inj := rig.mustInjectFaults(&cfg.Scenario.Faults)
	smp := oracle.Attach(rig.Net, oracle.Config{
		// RootThresh sits well below both fabrics' marking thresholds
		// (200 KB CEE / 50 KB IB) so camouflaged roots stay truth-roots.
		RootThresh:    40 * units.KB,
		IdleThresh:    10 * units.KB,
		VictimOffFrac: 0.25,
		Duty:          inj.CamouflageDuty,
	})

	line := 40 * units.Gbps
	var f1 *host.Flow
	switch cfg.Scenario.Traffic {
	case "light", "bursts":
		ccKind := CCDCQCN
		if cfg.Kind == IB {
			ccKind = CCIBCC
		}
		f1 = rig.Mgr.AddFlow(f2.F2.S1, f2.F2.R1, 10*1000*units.MB, 0, rig.NewCC(ccKind, line))
		if cfg.Scenario.Traffic == "bursts" {
			f2.LaunchBursts(200*units.Microsecond, 64*units.KB, 6, units.TxTime(15*64*units.KB, line))
		}
	case "ring":
		for i := 0; i < 3; i++ {
			rig.Mgr.AddFlow(ring.Hosts[i], ring.Hosts[(i+2)%3], 2*units.MB, 0, host.FixedRate(line))
		}
	}

	rig.Run(horizon)
	score := smp.Finish(horizon)

	res.Scalars["oracle_windows"] = float64(score.Windows)
	res.Scalars["oracle_accuracy"] = score.Accuracy
	res.Scalars["oracle_misdetect"] = score.MisdetectLikelihood
	res.Scalars["oracle_ttd_us"] = score.TTDUs
	classes := []string{"idle", "root", "victim"}
	for t, tn := range classes {
		for v, vn := range classes {
			res.Scalars["oracle_conf_"+tn+"_"+vn] = float64(score.Confusion[t][v])
		}
		res.Scalars["oracle_prec_"+tn] = score.Precision[t]
		res.Scalars["oracle_rec_"+tn] = score.Recall[t]
	}
	res.Scalars["fault_actions_armed"] = float64(inj.Armed)
	res.Scalars["fault_drops"] = float64(rig.Net.FaultDrops)
	var spoofed, forged uint64
	for _, p := range rig.Net.Ports() {
		spoofed += p.SpoofedCE
		forged += p.ForgedCtrl
	}
	res.Scalars["spoofed_ce"] = float64(spoofed)
	res.Scalars["forged_ctrl"] = float64(forged)
	if f1 != nil {
		res.Scalars["f1_goodput_gbps"] = float64(units.RateOf(f1.BytesRxed(), horizon)) / 1e9
	}
	res.AttachTelemetry(cfg.Obs.Telemetry)

	return res, oracle.Run{
		Scenario: cfg.Scenario.Name,
		Fabric:   cfg.Kind.String(),
		Detector: cfg.Det.String(),
		Seed:     int64(cfg.Seed),
		Score:    score,
	}
}

// BatteryOptions shapes a full battery sweep. Zero-value axes default to
// both fabrics, the three scored detectors (baseline, TCD, NP-ECN), and
// seeds 1–2 — the committed golden configuration.
type BatteryOptions struct {
	Fabrics []FabricKind
	Dets    []DetectorKind
	Seeds   []uint64
	Obs     obs.Config
	// OnDone, if non-nil, is called after each cell (progress lines).
	OnDone func(res *Result)
}

// RunAdversarialBattery runs every (scenario, fabric, detector, seed)
// cell of the battery in deterministic order and returns the oracle
// report plus the per-cell Results (for sweep-style aggregation).
func RunAdversarialBattery(b *Battery, opt BatteryOptions) (*oracle.Report, []*Result) {
	if len(opt.Fabrics) == 0 {
		opt.Fabrics = []FabricKind{CEE, IB}
	}
	if len(opt.Dets) == 0 {
		opt.Dets = []DetectorKind{DetBaseline, DetTCD, DetNPECN}
	}
	if len(opt.Seeds) == 0 {
		opt.Seeds = []uint64{1, 2}
	}
	var (
		runs    []oracle.Run
		results []*Result
	)
	for _, sc := range b.Scenarios {
		for _, k := range opt.Fabrics {
			for _, d := range opt.Dets {
				for _, s := range opt.Seeds {
					res, run := Adversarial(AdversarialConfig{
						Scenario: sc, Kind: k, Det: d, Seed: s, Obs: opt.Obs,
					})
					results = append(results, res)
					runs = append(runs, run)
					if opt.OnDone != nil {
						opt.OnDone(res)
					}
				}
			}
		}
	}
	return oracle.BuildReport(runs), results
}
