package exp

import (
	"bytes"
	"testing"

	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// flapSpec is the schedule the fault tests share: one flapping link plus
// a lossy control channel on the P2 egress.
func flapSpec() *fault.Spec {
	return &fault.Spec{Events: []fault.Event{
		{Kind: "flap", Link: "R0-T2", AtUs: 500, PeriodUs: 1000, DownUs: 400, UntilUs: 3500},
		{Kind: "ctrl-loss", Port: "T2->L0", AtUs: 800, Prob: 0.2, UntilUs: 2500},
	}}
}

func captureObserve(t *testing.T, kind FabricKind, faults *fault.Spec) ([]obs.Event, *Result) {
	t.Helper()
	ring := obs.NewRing(1 << 19)
	cfg := DefaultObserveConfig(kind, DetTCD, false)
	cfg.Horizon = 4 * units.Millisecond
	cfg.BurstRounds = 4
	cfg.Seed = 11
	cfg.Obs.Rec = ring
	cfg.Faults = faults
	res := Observe(cfg)
	if ring.Dropped() > 0 {
		t.Fatalf("trace ring overflowed (%d dropped); raise the capacity", ring.Dropped())
	}
	return ring.Events(), res
}

// TestFaultFreePrefixMatchesGolden pins the injector's composability
// guarantee: with a fault schedule armed, every trace event strictly
// before the first injection is identical — same order, same payload —
// to the fault-free golden run.
func TestFaultFreePrefixMatchesGolden(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			golden, _ := captureObserve(t, kind, nil)
			faulted, _ := captureObserve(t, kind, flapSpec())
			first := 500 * units.Microsecond // earliest event in flapSpec
			i := 0
			for i < len(golden) && i < len(faulted) && golden[i].At < first && faulted[i].At < first {
				if golden[i] != faulted[i] {
					t.Fatalf("event %d diverged before the first injection at %v:\n  golden:  %+v\n  faulted: %+v",
						i, first, golden[i], faulted[i])
				}
				i++
			}
			if i == 0 {
				t.Fatal("no trace events before the first injection; the prefix check checked nothing")
			}
			t.Logf("%d events identical before first injection", i)
		})
	}
}

// TestEmptyScheduleIsInert pins the stronger guarantee the goldens rely
// on: arming an empty (or nil) schedule leaves the whole trace — not
// just a prefix — byte-identical.
func TestEmptyFaultScheduleIsInert(t *testing.T) {
	golden, goldenRes := captureObserve(t, CEE, nil)
	empty, emptyRes := captureObserve(t, CEE, &fault.Spec{})
	if len(golden) != len(empty) {
		t.Fatalf("event counts differ: %d without injector, %d with empty schedule", len(golden), len(empty))
	}
	for i := range golden {
		if golden[i] != empty[i] {
			t.Fatalf("event %d differs under an empty schedule:\n  %+v\n  %+v", i, golden[i], empty[i])
		}
	}
	var a, b bytes.Buffer
	if err := goldenRes.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := emptyRes.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("result JSON differs under an empty fault schedule")
	}
}

// TestVictimUnderFlapClassification is the experiment's headline claim:
// during failure-induced backpressure, stock marking (ECN/FECN) blames
// the victim flow while TCD marks it undetermined.
func TestVictimUnderFlapClassification(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := DefaultVictimFlapConfig(kind, DetBaseline)
			base.Horizon = 6 * units.Millisecond
			base.FlapUntil = 5 * units.Millisecond
			base.Seed = 3
			stock := VictimUnderFlap(base)

			tcd := base
			tcd.Det = DetTCD
			ternary := VictimUnderFlap(tcd)

			for _, res := range []*Result{stock, ternary} {
				if res.Scalars["fault_drops"] == 0 {
					t.Fatalf("%s: flap destroyed no frames; the fault never bit", res.Name)
				}
				if res.Scalars["p2_pause_us"] == 0 {
					t.Fatalf("%s: no pause time at P2; backpressure never spread", res.Name)
				}
			}
			if stock.Scalars["f1_ce"] == 0 {
				t.Fatalf("stock marking should blame the victim: f1_ce = 0 (%v)", stock.Scalars)
			}
			if ternary.Scalars["f1_ue"] == 0 {
				t.Fatalf("TCD should mark the victim undetermined: f1_ue = 0 (%v)", ternary.Scalars)
			}
			sf, tf := stock.Scalars["f1_ce_frac"], ternary.Scalars["f1_ce_frac"]
			if tf >= sf/2 {
				t.Fatalf("TCD should cut the victim's CE fraction: stock %.4f vs tcd %.4f", sf, tf)
			}
		})
	}
}

// TestDeadlockUnitDetects drives the ring into its wait cycle and
// requires the detector to find it — with the right cycle size — within
// bounded sim time, for both the PFC and the CBFC flavor.
func TestDeadlockUnitDetects(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultDeadlockUnitConfig(kind)
			cfg.Seed = 5
			res := DeadlockUnit(cfg)
			if res.Scalars["deadlocked"] != 1 {
				t.Fatalf("no wait cycle detected within %v: %v", cfg.Horizon, res.Scalars)
			}
			if at := res.Scalars["detected_at_us"]; at > 2000 {
				t.Fatalf("detection took %v us; the cycle forms within tens of microseconds", at)
			}
			if n := res.Scalars["cycle_ports"]; n != 3 {
				t.Fatalf("expected the 3 inter-switch egress ports in the cycle, got %v", n)
			}
			if res.Scalars["flows_done"] != 0 {
				t.Fatal("flows completed through a deadlocked ring")
			}
			if res.Scalars["stranded_kb"] == 0 {
				t.Fatal("no stranded bytes reported on a deadlocked ring")
			}
			if len(res.Notes) == 0 {
				t.Fatal("no attribution note (cycle members + initial trigger)")
			}
		})
	}
}

// TestDeterministicTraceWithFaults is the determinism regression: the
// same spec and seed must produce byte-identical JSONL traces and result
// JSON across repeated runs, for one CEE and one IB scenario with faults
// armed. CI runs this under -race.
func TestDeterministicTraceWithFaults(t *testing.T) {
	for _, kind := range []FabricKind{CEE, IB} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var prevTrace, prevRes []byte
			for run := 0; run < 3; run++ {
				ring := obs.NewRing(1 << 19)
				cfg := DefaultObserveConfig(kind, DetTCD, false)
				cfg.Horizon = 3 * units.Millisecond
				cfg.BurstRounds = 4
				cfg.Seed = 42
				cfg.Obs.Rec = ring
				cfg.Faults = flapSpec()
				res := Observe(cfg)

				var trace, rj bytes.Buffer
				if err := ring.WriteJSONL(&trace); err != nil {
					t.Fatal(err)
				}
				if err := res.WriteJSON(&rj); err != nil {
					t.Fatal(err)
				}
				if run == 0 {
					prevTrace, prevRes = trace.Bytes(), rj.Bytes()
					continue
				}
				if !bytes.Equal(prevTrace, trace.Bytes()) {
					t.Fatalf("run %d: JSONL trace differs from run 0", run)
				}
				if !bytes.Equal(prevRes, rj.Bytes()) {
					t.Fatalf("run %d: result JSON differs from run 0", run)
				}
			}
		})
	}
}
