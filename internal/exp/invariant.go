// Network-wide invariant checking: structural properties every run must
// satisfy regardless of workload, detector, or injected faults. The exp
// test binary flips StrictInvariants on in TestMain, so every experiment
// exercised by the test suite doubles as an invariant test.

package exp

import (
	"fmt"
	"strings"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/units"
)

// StrictInvariants makes every Rig.Run audit CheckInvariants after the
// horizon and panic on the first violation. Off by default (production
// runs pay nothing); the exp tests enable it globally.
var StrictInvariants bool

// CheckInvariants audits the rig after (or during) a run:
//
//   - Payload conservation: every payload byte a NIC serialized is
//     delivered, destroyed by an injected fault, queued in a switch, or
//     in flight on a wire. Nothing leaks, nothing is minted.
//   - No negative CBFC credit: a gate may never overdraw FCCL.
//   - Buffer bounds on a healthy fabric: no PFC ingress beyond
//     Xoff+Headroom, no CBFC ingress beyond the configured buffer (the
//     Violations counters). Skipped once any fault primitive touched the
//     network — a lost PAUSE or FCCL legitimately breaks losslessness,
//     which is precisely the hazard the injector exists to create.
//   - Xoff ⇒ eventual Xon: a PFC meter may hold PAUSE outstanding only
//     while its occupancy is still above Xon (OnFree resumes the moment
//     it drains, so a pause can never outlive its cause); symmetrically,
//     occupancy above Xoff must have a PAUSE outstanding.
//   - Scheduler heap consistency (sim.DebugCheck).
//
// It returns nil when all hold, or one error describing every violation.
func CheckInvariants(r *Rig) error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	var injected units.ByteSize
	for _, f := range r.Mgr.Flows() {
		injected += f.BytesSent()
	}
	delivered := r.Mgr.TotalRxed()
	dropped := r.Net.FaultDropPayload()
	inFlight := r.Net.InFlightPayload()
	queued := r.Net.QueuedPayload()
	if accounted := delivered + dropped + inFlight + queued; injected != accounted {
		fail("conservation: injected %d B != delivered %d + fault-dropped %d + in-flight %d + queued %d = %d B (leak %d B)",
			injected, delivered, dropped, inFlight, queued, accounted, injected-accounted)
	}

	nPrio := r.Net.Config().Priorities
	healthy := !r.Net.Faulted()
	for _, p := range r.Net.Ports() {
		if g, ok := p.Gate().(*cbfc.Gate); ok {
			for vl := 0; vl < nPrio; vl++ {
				if c := g.Credits(uint8(vl)); c < 0 {
					fail("negative credit: port %s VL %d overdrew FCCL by %d B", p.Label(), vl, -c)
				}
			}
		}
		switch m := p.Meter().(type) {
		case *pfc.Meter:
			if healthy && m.Violations > 0 {
				fail("buffer bound: port %s ingress exceeded Xoff+Headroom %d times (max occupancy %d B)",
					p.Label(), m.Violations, m.MaxOcc)
			}
			for prio := 0; prio < nPrio; prio++ {
				occ := m.Occupancy(uint8(prio))
				if m.PauseOutstanding(uint8(prio)) && occ <= r.PFCCfg.Xon {
					fail("stuck pause: port %s prio %d holds PAUSE at occupancy %d B <= Xon %d B",
						p.Label(), prio, occ, r.PFCCfg.Xon)
				}
				if !m.PauseOutstanding(uint8(prio)) && occ > r.PFCCfg.Xoff {
					fail("missing pause: port %s prio %d at occupancy %d B > Xoff %d B without PAUSE",
						p.Label(), prio, occ, r.PFCCfg.Xoff)
				}
			}
		case *cbfc.Meter:
			if healthy && m.Violations > 0 {
				fail("buffer bound: port %s ingress exceeded the %d B CBFC buffer %d times (max occupancy %d B)",
					p.Label(), r.CBFCCfg.Buffer, m.Violations, m.MaxOcc)
			}
		}
	}

	if err := r.Sched.DebugCheck(); err != nil {
		fail("scheduler: %v", err)
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("invariants violated:\n  %s", strings.Join(errs, "\n  "))
}
