// Package sweep is the parallel experiment runner: it fans a declarative
// grid of run specs (experiment kind, fabric, detector, congestion
// control, seed, horizon) across a worker pool, one simulator run per
// task.
//
// Concurrency model: a single run is strictly single-threaded — it owns a
// private sim.Scheduler, RNG and result recorder, exactly as in a serial
// invocation — and parallelism exists only *across* runs. Workers share
// nothing but the spec list and the result slice (each run writes its own
// index), so a parallel sweep produces byte-identical per-run results to
// the serial path; results are merged in stable spec order regardless of
// completion order. A run that panics is captured (spec, message, stack)
// without killing the sweep, and a cancelled context skips runs that have
// not started.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// Spec identifies one simulator run of a sweep. The zero values of the
// enum fields are meaningful ("fig3"-style defaults), so specs marshal
// compactly and compare cheaply.
type Spec struct {
	// Exp names the experiment kind (a cmd/tcdsim runner name such as
	// "fig3", "table3", or a caller-defined label).
	Exp string `json:"exp"`
	// Fabric selects CEE or IB.
	Fabric exp.FabricKind `json:"fabric"`
	// Det selects the detector under test.
	Det exp.DetectorKind `json:"det"`
	// CC selects the congestion control.
	CC exp.CCKind `json:"cc"`
	// Seed feeds the run's private random streams.
	Seed uint64 `json:"seed"`
	// Horizon overrides the experiment's default horizon when non-zero.
	Horizon units.Time `json:"horizon_ns,omitempty"`
}

// String renders a compact label for progress lines and errors.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s/%s/%s/seed=%d", s.Exp, s.Fabric, s.Det, s.CC, s.Seed)
}

// Grid declares a cross product of run specs. Nil axes collapse to a
// single zero value, so a grid that only sweeps seeds stays one line.
type Grid struct {
	Exps    []string
	Fabrics []exp.FabricKind
	Dets    []exp.DetectorKind
	CCs     []exp.CCKind
	Seeds   []uint64
	Horizon units.Time
}

// Seq returns n consecutive seeds starting at base — the common
// multi-seed repetition axis.
func Seq(base uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// Specs expands the grid in deterministic order: experiments outermost,
// seeds innermost, matching how the serial CLI would iterate the axes.
func (g Grid) Specs() []Spec {
	exps := g.Exps
	if len(exps) == 0 {
		exps = []string{""}
	}
	fabrics := g.Fabrics
	if len(fabrics) == 0 {
		fabrics = []exp.FabricKind{exp.CEE}
	}
	dets := g.Dets
	if len(dets) == 0 {
		dets = []exp.DetectorKind{exp.DetNone}
	}
	ccs := g.CCs
	if len(ccs) == 0 {
		ccs = []exp.CCKind{exp.CCFixed}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	specs := make([]Spec, 0, len(exps)*len(fabrics)*len(dets)*len(ccs)*len(seeds))
	for _, e := range exps {
		for _, f := range fabrics {
			for _, d := range dets {
				for _, c := range ccs {
					for _, s := range seeds {
						specs = append(specs, Spec{
							Exp: e, Fabric: f, Det: d, CC: c,
							Seed: s, Horizon: g.Horizon,
						})
					}
				}
			}
		}
	}
	return specs
}

// Shard partitions a spec list for multi-process sweeps: it returns the
// specs assigned to shard index of total, taking every total-th spec
// starting at index (round-robin, so seed-repetition axes spread evenly
// across shards instead of one shard getting every seed of one
// scenario). Sharding is deterministic: the union of all shards of the
// same spec list is exactly the list, with no overlap, so a sharded
// sweep reproduces the single-process sweep run-for-run. Each shard
// process builds its own rigs — and with lazy route tables each shard
// materializes only the route columns its own runs touch, which is what
// keeps hyperscale grids (fat-tree k=32 and beyond) within per-worker
// memory budgets.
func Shard(specs []Spec, index, total int) []Spec {
	if total <= 1 {
		return specs
	}
	if index < 0 || index >= total {
		return nil
	}
	out := make([]Spec, 0, (len(specs)+total-1-index)/total)
	for i := index; i < len(specs); i += total {
		out = append(out, specs[i])
	}
	return out
}

// RunFunc executes one spec and returns its results. It is called from
// worker goroutines and must not share mutable state across calls: build
// a fresh rig (scheduler, RNG, recorder) per invocation.
type RunFunc func(Spec) []*exp.Result

// RunResult is the outcome of one spec.
type RunResult struct {
	Spec    Spec          `json:"spec"`
	Results []*exp.Result `json:"-"`
	// Err carries a captured panic ("panic: <msg>" plus stack) or the
	// context error for runs skipped by cancellation.
	Err error `json:"-"`
	// Wall is the run's wall-clock duration (zero when skipped).
	Wall time.Duration `json:"-"`
}

// Options tunes the engine.
type Options struct {
	// Parallel is the worker count; <= 0 means GOMAXPROCS.
	Parallel int
	// OnStart, if non-nil, is called just before a run begins executing
	// on a worker (in start order, serialized — safe to print from).
	// Runs skipped by cancellation never see OnStart.
	OnStart func(index int, spec Spec)
	// OnDone, if non-nil, is called after each run completes (in
	// completion order, serialized — safe to print from).
	OnDone func(index int, r *RunResult)
}

// panicError is a recovered run panic.
type panicError struct {
	spec  Spec
	value interface{}
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("sweep: run %s panicked: %v\n%s", e.spec, e.value, e.stack)
}

// Run executes every spec through fn on a pool of Options.Parallel
// workers and returns the outcomes in spec order. One diverging run
// (panic) marks only its own RunResult; cancelling ctx lets in-flight
// runs finish and marks not-yet-started ones with ctx.Err().
func Run(ctx context.Context, specs []Spec, fn RunFunc, opt Options) []*RunResult {
	workers := opt.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	out := make([]*RunResult, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes OnStart/OnDone
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if opt.OnStart != nil && ctx.Err() == nil {
					mu.Lock()
					opt.OnStart(i, specs[i])
					mu.Unlock()
				}
				r := runOne(ctx, specs[i], fn)
				out[i] = r
				if opt.OnDone != nil {
					mu.Lock()
					opt.OnDone(i, r)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// runOne executes a single spec with panic capture.
func runOne(ctx context.Context, spec Spec, fn RunFunc) (r *RunResult) {
	r = &RunResult{Spec: spec}
	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	start := time.Now()
	defer func() {
		r.Wall = time.Since(start)
		if v := recover(); v != nil {
			r.Err = &panicError{spec: spec, value: v, stack: stack()}
		}
	}()
	r.Results = fn(spec)
	return r
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// Stats summarizes one scalar across seeds.
type Stats struct {
	N                        int
	Min, Mean, Max, P50, P95 float64
}

// Fold computes the summary of vals (which must be non-empty).
func Fold(vals []float64) Stats {
	s := Stats{N: len(vals), Min: vals[0], Max: vals[0]}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Mean = sum / float64(len(sorted))
	s.P50 = percentile(sorted, 0.5)
	s.P95 = percentile(sorted, 0.95)
	return s
}

// percentile reads the p-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// Aggregate folds the outputs of successful runs across seeds: results
// are grouped by result name (an experiment returning several results
// yields several aggregates), each scalar key becomes min/mean/max plus
// p50/p95 statistics, and streaming telemetry histograms with the same
// name merge bucket-wise into one whole-sweep distribution (merging is
// associative and commutative, so serial and parallel sweeps fold
// identically). Group and key order is the stable first-seen order, so
// aggregation over a deterministic sweep is itself deterministic.
func Aggregate(rs []*RunResult) []*exp.Result {
	type group struct {
		name     string
		keys     []string
		vals     map[string][]float64
		histKeys []string
		hists    map[string]*obs.Hist
		runs     int
	}
	var order []string
	groups := make(map[string]*group)
	for _, r := range rs {
		if r == nil || r.Err != nil {
			continue
		}
		for _, res := range r.Results {
			g, ok := groups[res.Name]
			if !ok {
				g = &group{
					name:  res.Name,
					vals:  make(map[string][]float64),
					hists: make(map[string]*obs.Hist),
				}
				groups[res.Name] = g
				order = append(order, res.Name)
			}
			g.runs++
			keys := make([]string, 0, len(res.Scalars))
			for k := range res.Scalars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, seen := g.vals[k]; !seen {
					g.keys = append(g.keys, k)
				}
				g.vals[k] = append(g.vals[k], res.Scalars[k])
			}
			hkeys := make([]string, 0, len(res.Hists))
			for k := range res.Hists {
				hkeys = append(hkeys, k)
			}
			sort.Strings(hkeys)
			for _, k := range hkeys {
				m, seen := g.hists[k]
				if !seen {
					m = obs.NewHist()
					g.hists[k] = m
					g.histKeys = append(g.histKeys, k)
				}
				m.Merge(res.Hists[k])
			}
		}
	}
	var out []*exp.Result
	for _, name := range order {
		g := groups[name]
		agg := exp.NewResult(fmt.Sprintf("%s-agg-%druns", name, g.runs))
		for _, k := range g.keys {
			st := Fold(g.vals[k])
			agg.Scalars[k+" mean"] = st.Mean
			agg.AddNote("%-40s min=%-12.4g mean=%-12.4g max=%-12.4g p50=%-12.4g p95=%.4g (n=%d)",
				k, st.Min, st.Mean, st.Max, st.P50, st.P95, st.N)
		}
		if len(g.histKeys) > 0 {
			agg.Hists = make(map[string]*obs.Hist, len(g.histKeys))
			for _, k := range g.histKeys {
				h := g.hists[k]
				agg.Hists[k] = h
				agg.Scalars["hist_"+k+"_p50"] = float64(h.Quantile(0.5))
				agg.Scalars["hist_"+k+"_p99"] = float64(h.Quantile(0.99))
				agg.AddNote("hist %-32s n=%-10d min=%-12d p50=%-12d p99=%-12d max=%d (merged over %d runs)",
					k, h.Count(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max(), g.runs)
			}
		}
		out = append(out, agg)
	}
	return out
}

// Errors returns the failed runs (panics, cancellations).
func Errors(rs []*RunResult) []*RunResult {
	var out []*RunResult
	for _, r := range rs {
		if r != nil && r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// WriteJSON serializes the sweep — per-run spec, wall time, error and
// full results — as one JSON document. Per-run result payloads reuse
// exp.Result's deterministic encoding, so two sweeps over the same specs
// differ only in the wall-clock fields.
func WriteJSON(w io.Writer, rs []*RunResult) error {
	type runJSON struct {
		Spec    Spec              `json:"spec"`
		WallMs  float64           `json:"wall_ms"`
		Error   string            `json:"error,omitempty"`
		Results []json.RawMessage `json:"results,omitempty"`
	}
	out := make([]runJSON, 0, len(rs))
	for _, r := range rs {
		rj := runJSON{Spec: r.Spec, WallMs: float64(r.Wall.Microseconds()) / 1000}
		if r.Err != nil {
			rj.Error = r.Err.Error()
		}
		for _, res := range r.Results {
			var sb jsonBuf
			if err := res.WriteJSON(&sb); err != nil {
				return err
			}
			rj.Results = append(rj.Results, json.RawMessage(sb))
		}
		out = append(out, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

type jsonBuf []byte

func (b *jsonBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// WriteCSV exports every scalar of every successful run as long-format
// CSV (one row per spec × result × scalar), the shape plotting scripts
// and spreadsheets ingest directly. Telemetry histograms export as
// hist:<name>:<stat> rows (count, min, mean, p50, p90, p99, max) per
// run, so cross-seed distributions can be rebuilt downstream.
func WriteCSV(w io.Writer, rs []*RunResult) error {
	if _, err := io.WriteString(w, "exp,fabric,det,cc,seed,result,scalar,value\n"); err != nil {
		return err
	}
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		for _, res := range r.Results {
			row := func(k string, v float64) error {
				_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%d,%s,%q,%g\n",
					r.Spec.Exp, r.Spec.Fabric, r.Spec.Det, r.Spec.CC, r.Spec.Seed,
					res.Name, k, v)
				return err
			}
			keys := make([]string, 0, len(res.Scalars))
			for k := range res.Scalars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if err := row(k, res.Scalars[k]); err != nil {
					return err
				}
			}
			hkeys := make([]string, 0, len(res.Hists))
			for k := range res.Hists {
				hkeys = append(hkeys, k)
			}
			sort.Strings(hkeys)
			for _, k := range hkeys {
				h := res.Hists[k]
				for _, st := range []struct {
					name string
					v    float64
				}{
					{"count", float64(h.Count())},
					{"min", float64(h.Min())},
					{"mean", h.Mean()},
					{"p50", float64(h.Quantile(0.5))},
					{"p90", float64(h.Quantile(0.9))},
					{"p99", float64(h.Quantile(0.99))},
					{"max", float64(h.Max())},
				} {
					if err := row("hist:"+k+":"+st.name, st.v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
