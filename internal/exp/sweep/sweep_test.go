package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/units"
)

// observeRun is a reduced-scale §3.1 observation run — heavy enough to
// exercise the full simulator stack, light enough for the race detector.
func observeRun(s Spec) []*exp.Result {
	cfg := exp.DefaultObserveConfig(s.Fabric, s.Det, false)
	cfg.Seed = s.Seed
	cfg.Horizon = 2 * units.Millisecond
	cfg.BurstRounds = 4
	if s.Horizon > 0 {
		cfg.Horizon = s.Horizon
	}
	return []*exp.Result{exp.Observe(cfg)}
}

func resultJSON(t *testing.T, rs []*RunResult) []string {
	t.Helper()
	var out []string
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("run %s failed: %v", r.Spec, r.Err)
		}
		for _, res := range r.Results {
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			out = append(out, buf.String())
		}
	}
	return out
}

// TestSerialParallelEquivalence is the engine's core guarantee: the same
// grid run with one worker and with eight workers yields byte-identical
// per-run Result JSON, in the same (spec) order.
func TestSerialParallelEquivalence(t *testing.T) {
	grid := Grid{
		Exps:    []string{"observe"},
		Fabrics: []exp.FabricKind{exp.CEE, exp.IB},
		Dets:    []exp.DetectorKind{exp.DetBaseline},
		Seeds:   Seq(1, 2),
	}
	specs := grid.Specs()
	serial := Run(context.Background(), specs, observeRun, Options{Parallel: 1})
	parallel := Run(context.Background(), specs, observeRun, Options{Parallel: 8})

	sj, pj := resultJSON(t, serial), resultJSON(t, parallel)
	if len(sj) != len(pj) {
		t.Fatalf("result counts differ: serial %d, parallel %d", len(sj), len(pj))
	}
	for i := range sj {
		if sj[i] != pj[i] {
			t.Errorf("run %d (%s): serial and parallel Result JSON differ", i, specs[i])
		}
	}
}

func TestGridSpecsOrderAndDefaults(t *testing.T) {
	g := Grid{
		Exps:  []string{"a", "b"},
		Seeds: []uint64{10, 11},
	}
	specs := g.Specs()
	if len(specs) != 4 {
		t.Fatalf("len(specs) = %d, want 4", len(specs))
	}
	want := []Spec{
		{Exp: "a", Seed: 10}, {Exp: "a", Seed: 11},
		{Exp: "b", Seed: 10}, {Exp: "b", Seed: 11},
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("specs[%d] = %+v, want %+v", i, specs[i], want[i])
		}
	}
}

// TestShardPartitionsExactly pins the multi-process contract: shards are
// disjoint, their union (in round-robin order) is the original list, and
// degenerate parameters behave sanely.
func TestShardPartitionsExactly(t *testing.T) {
	specs := Grid{Exps: []string{"a", "b", "c"}, Seeds: Seq(1, 4)}.Specs()
	for _, total := range []int{1, 2, 3, 5, len(specs), len(specs) + 3} {
		seen := make(map[Spec]int)
		for idx := 0; idx < total; idx++ {
			shard := Shard(specs, idx, total)
			for i, s := range shard {
				if want := specs[idx+i*total]; s != want {
					t.Fatalf("total=%d shard %d[%d] = %+v, want %+v", total, idx, i, s, want)
				}
				seen[s]++
			}
		}
		if len(seen) != len(specs) {
			t.Fatalf("total=%d: union covers %d specs, want %d", total, len(seen), len(specs))
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("total=%d: spec %+v assigned to %d shards", total, s, n)
			}
		}
	}
	if got := Shard(specs, -1, 4); got != nil {
		t.Errorf("Shard(index=-1) = %v, want nil", got)
	}
	if got := Shard(specs, 4, 4); got != nil {
		t.Errorf("Shard(index=total) = %v, want nil", got)
	}
	if got := Shard(specs, 0, 0); len(got) != len(specs) {
		t.Errorf("Shard(total=0) dropped specs: %d of %d", len(got), len(specs))
	}
}

func TestPanicCapture(t *testing.T) {
	specs := Grid{Exps: []string{"x"}, Seeds: Seq(0, 4)}.Specs()
	fn := func(s Spec) []*exp.Result {
		if s.Seed == 2 {
			panic("diverged")
		}
		r := exp.NewResult("ok")
		r.Scalars["seed"] = float64(s.Seed)
		return []*exp.Result{r}
	}
	rs := Run(context.Background(), specs, fn, Options{Parallel: 4})
	errs := Errors(rs)
	if len(errs) != 1 {
		t.Fatalf("Errors() = %d failed runs, want 1", len(errs))
	}
	if errs[0].Spec.Seed != 2 {
		t.Errorf("failed seed = %d, want 2", errs[0].Spec.Seed)
	}
	if msg := errs[0].Err.Error(); !strings.Contains(msg, "diverged") || !strings.Contains(msg, "sweep_test.go") {
		t.Errorf("panic error lacks message or stack: %q", msg)
	}
	for _, r := range rs {
		if r.Spec.Seed != 2 && (r.Err != nil || len(r.Results) != 1) {
			t.Errorf("run seed=%d was disturbed by the panicking run: %+v", r.Spec.Seed, r)
		}
	}
}

func TestCancellationSkipsPendingRuns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	specs := Grid{Exps: []string{"x"}, Seeds: Seq(0, 8)}.Specs()
	ran := 0
	fn := func(s Spec) []*exp.Result {
		ran++
		cancel() // cancel after the first run starts (Parallel=1: serialized)
		return []*exp.Result{exp.NewResult("ok")}
	}
	rs := Run(ctx, specs, fn, Options{Parallel: 1})
	if ran == len(specs) {
		t.Fatal("cancellation did not skip any runs")
	}
	skipped := Errors(rs)
	if len(skipped) != len(specs)-ran {
		t.Errorf("skipped %d runs, want %d", len(skipped), len(specs)-ran)
	}
	for _, r := range skipped {
		if r.Err != context.Canceled {
			t.Errorf("skipped run error = %v, want context.Canceled", r.Err)
		}
	}
}

func TestAggregateFoldsAcrossSeeds(t *testing.T) {
	mk := func(seed uint64, v float64) *RunResult {
		r := exp.NewResult("obs")
		r.Scalars["metric"] = v
		return &RunResult{Spec: Spec{Seed: seed}, Results: []*exp.Result{r}}
	}
	rs := []*RunResult{mk(1, 1), mk(2, 3), mk(3, 2), {Spec: Spec{Seed: 4}, Err: context.Canceled}}
	aggs := Aggregate(rs)
	if len(aggs) != 1 {
		t.Fatalf("len(aggs) = %d, want 1", len(aggs))
	}
	agg := aggs[0]
	if agg.Name != "obs-agg-3runs" {
		t.Errorf("agg name = %q", agg.Name)
	}
	if got := agg.Scalars["metric mean"]; got != 2 {
		t.Errorf("mean = %g, want 2", got)
	}
	if len(agg.Notes) != 1 || !strings.Contains(agg.Notes[0], "min=1") || !strings.Contains(agg.Notes[0], "max=3") {
		t.Errorf("notes = %v", agg.Notes)
	}
}

func TestFoldStats(t *testing.T) {
	st := Fold([]float64{5, 1, 3, 2, 4})
	if st.N != 5 || st.Min != 1 || st.Max != 5 || st.Mean != 3 || st.P50 != 3 {
		t.Errorf("Fold = %+v", st)
	}
}

func TestWriteCSV(t *testing.T) {
	r := exp.NewResult("obs")
	r.Scalars["m"] = 1.5
	rs := []*RunResult{{
		Spec:    Spec{Exp: "fig3", Fabric: exp.CEE, Det: exp.DetBaseline, CC: exp.CCDCQCN, Seed: 7},
		Results: []*exp.Result{r},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	want := "exp,fabric,det,cc,seed,result,scalar,value\nfig3,cee,baseline,dcqcn,7,obs,\"m\",1.5\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteJSONIncludesErrors(t *testing.T) {
	ok := exp.NewResult("obs")
	ok.Scalars["m"] = 1
	rs := []*RunResult{
		{Spec: Spec{Exp: "a"}, Results: []*exp.Result{ok}},
		{Spec: Spec{Exp: "b"}, Err: context.Canceled},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"exp": "a"`, `"name": "obs"`, `"error": "context canceled"`} {
		if !strings.Contains(s, want) {
			t.Errorf("sweep JSON missing %q:\n%s", want, s)
		}
	}
}

// TestOnStartHook: OnStart fires once per executed run, serialized, with
// the matching index/spec pair, and canceled runs never see it.
func TestOnStartHook(t *testing.T) {
	grid := Grid{
		Exps:    []string{"observe"},
		Fabrics: []exp.FabricKind{exp.CEE},
		Dets:    []exp.DetectorKind{exp.DetBaseline},
		Seeds:   Seq(1, 4),
	}
	specs := grid.Specs()
	var startOrder []int
	rs := Run(context.Background(), specs, observeRun, Options{
		Parallel: 4,
		OnStart: func(i int, sp Spec) {
			// The Options mutex serializes hooks; appending without extra
			// locking is the guarantee under test (run with -race).
			startOrder = append(startOrder, i)
			if sp != specs[i] {
				t.Errorf("OnStart index %d got spec %s, want %s", i, sp, specs[i])
			}
		},
	})
	if len(startOrder) != len(specs) {
		t.Fatalf("OnStart fired %d times for %d runs", len(startOrder), len(specs))
	}
	seen := map[int]bool{}
	for _, i := range startOrder {
		if seen[i] {
			t.Errorf("OnStart fired twice for run %d", i)
		}
		seen[i] = true
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("run %s: %v", r.Spec, r.Err)
		}
	}

	// A canceled context skips pending runs without calling OnStart.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	Run(ctx, specs, observeRun, Options{
		Parallel: 2,
		OnStart:  func(int, Spec) { calls++ },
	})
	if calls != 0 {
		t.Errorf("OnStart fired %d times under a canceled context", calls)
	}
}
