package sweep

import (
	"bytes"
	"context"
	"testing"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// telemetryRun is observeRun with a private telemetry collector per run,
// the way cmd/tcdsim wires sweeps under -telemetry.
func telemetryRun(s Spec) []*exp.Result {
	cfg := exp.DefaultObserveConfig(s.Fabric, exp.DetBaseline, false)
	cfg.Seed = s.Seed
	cfg.Horizon = 2 * units.Millisecond
	cfg.BurstRounds = 4
	cfg.Obs = obs.Config{Telemetry: obs.NewTelemetry(nil)}
	return []*exp.Result{exp.Observe(cfg)}
}

// TestSweepHistogramFoldSerialParallelIdentical: the merged histograms
// (and therefore every aggregated percentile) must not depend on worker
// count or completion order — Merge is associative and commutative, and
// Aggregate groups runs in deterministic spec order.
func TestSweepHistogramFoldSerialParallelIdentical(t *testing.T) {
	specs := Grid{
		Exps:    []string{"observe"},
		Fabrics: []exp.FabricKind{exp.CEE},
		Seeds:   Seq(1, 4),
	}.Specs()
	serial := Run(context.Background(), specs, telemetryRun, Options{Parallel: 1})
	parallel := Run(context.Background(), specs, telemetryRun, Options{Parallel: 8})

	aggJSON := func(rs []*RunResult) []byte {
		var buf bytes.Buffer
		for _, agg := range Aggregate(rs) {
			if err := agg.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	sj, pj := aggJSON(serial), aggJSON(parallel)
	if !bytes.Equal(sj, pj) {
		t.Fatal("serial and parallel sweep aggregates differ")
	}

	aggs := Aggregate(serial)
	if len(aggs) != 1 {
		t.Fatalf("got %d aggregate groups, want 1", len(aggs))
	}
	agg := aggs[0]
	h, ok := agg.Hists["fct_ps"]
	if !ok {
		t.Fatal("aggregate lost the fct histogram")
	}
	// The merged histogram must equal the bucket-wise sum of the per-run
	// ones, i.e. exactly the serial fold.
	want := obs.NewHist()
	var total int64
	for _, r := range serial {
		if r.Err != nil {
			t.Fatalf("run %s: %v", r.Spec, r.Err)
		}
		ph := r.Results[0].Hists["fct_ps"]
		want.Merge(ph)
		total += ph.Count()
	}
	if !h.Equal(want) {
		t.Fatal("merged histogram differs from the serial bucket-wise fold")
	}
	if h.Count() != total || total == 0 {
		t.Fatalf("merged count %d, want %d (>0)", h.Count(), total)
	}
	if agg.Scalars["hist_fct_ps_p99"] != float64(want.Quantile(0.99)) {
		t.Fatal("aggregated p99 scalar does not match the merged histogram")
	}
}
