package exp_test

// Adversarial battery gates. The committed battery (testdata/adversarial/
// battery.json) runs across both fabrics and all three scored detectors;
// the oracle report is byte-gated against testdata/golden/adversarial.json
// and the TCD-vs-baseline advantage is a scored regression gate, not a
// prose claim. Determinism is asserted three ways: repeat-run report
// identity, serial-vs-parallel sweep result identity, and Aggregate fold
// identity over the same cells.
//
// Regenerate the oracle-score fixture intentionally with:
//
//	go test ./internal/exp -run TestAdversarialGolden -update-adversarial

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/exp/sweep"
	"github.com/tcdnet/tcd/internal/oracle"
)

var updateAdversarial = flag.Bool("update-adversarial", false,
	"rewrite the golden oracle report in testdata/golden/adversarial.json")

// batteryOnce runs the default battery exactly once per test binary; the
// gates below all read the same report.
var batteryOnce = sync.OnceValues(func() (*oracle.Report, []*exp.Result) {
	return exp.RunAdversarialBattery(exp.DefaultBattery(), exp.BatteryOptions{})
})

// TestAdversarialGolden byte-gates the full default-battery oracle report
// against the committed fixture.
func TestAdversarialGolden(t *testing.T) {
	rep, _ := batteryOnce()
	got, err := rep.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	path := filepath.Join("testdata", "golden", "adversarial.json")
	if *updateAdversarial {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-adversarial to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("oracle report differs from committed golden: %s", firstDiffT(got, want))
	}
}

// TestAdversarialRepeatDeterminism re-runs the battery from scratch and
// requires the second report to be byte-identical to the first.
func TestAdversarialRepeatDeterminism(t *testing.T) {
	first, _ := batteryOnce()
	a, err := first.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, _ := exp.RunAdversarialBattery(exp.DefaultBattery(), exp.BatteryOptions{})
	b, err := again.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("repeat battery run diverged: %s", firstDiffT(b, a))
	}
}

// batterySweep expands the default battery into a sweep grid and runs it
// through the sweep engine with the given worker count.
func batterySweep(t *testing.T, parallel int) []*sweep.RunResult {
	t.Helper()
	b := exp.DefaultBattery()
	byName := make(map[string]exp.AttackScenario, len(b.Scenarios))
	names := make([]string, 0, len(b.Scenarios))
	for _, sc := range b.Scenarios {
		byName[sc.Name] = sc
		names = append(names, sc.Name)
	}
	grid := sweep.Grid{
		Exps:    names,
		Fabrics: []exp.FabricKind{exp.CEE, exp.IB},
		Dets:    []exp.DetectorKind{exp.DetBaseline, exp.DetTCD, exp.DetNPECN},
		Seeds:   sweep.Seq(1, 2),
	}
	fn := func(s sweep.Spec) []*exp.Result {
		res, _ := exp.Adversarial(exp.AdversarialConfig{
			Scenario: byName[s.Exp], Kind: s.Fabric, Det: s.Det, Seed: s.Seed,
		})
		return []*exp.Result{res}
	}
	return sweep.Run(context.Background(), grid.Specs(), fn, sweep.Options{Parallel: parallel})
}

// marshalResults renders run results (or aggregates) for byte comparison.
func marshalResults(t *testing.T, rs []*exp.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range rs {
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestAdversarialSweepParallelIdentity runs the battery grid serially and
// on a worker pool and requires per-run results and the Aggregate fold to
// be byte-identical — the oracle scalars survive sweep folding untouched
// by scheduling order.
func TestAdversarialSweepParallelIdentity(t *testing.T) {
	serial := batterySweep(t, 1)
	parallel := batterySweep(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("run count: serial=%d parallel=%d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("run %s failed: serial=%v parallel=%v",
				serial[i].Spec, serial[i].Err, parallel[i].Err)
		}
		a := marshalResults(t, serial[i].Results)
		b := marshalResults(t, parallel[i].Results)
		if !bytes.Equal(a, b) {
			t.Fatalf("run %s differs serial-vs-parallel: %s", serial[i].Spec, firstDiffT(b, a))
		}
	}
	aggA := marshalResults(t, sweep.Aggregate(serial))
	aggB := marshalResults(t, sweep.Aggregate(parallel))
	if !bytes.Equal(aggA, aggB) {
		t.Errorf("Aggregate fold differs serial-vs-parallel: %s", firstDiffT(aggB, aggA))
	}
	if !strings.Contains(string(aggA), "oracle_accuracy") ||
		!strings.Contains(string(aggA), "oracle_misdetect") {
		t.Errorf("aggregate is missing folded oracle scalars")
	}
}

// TestAdversarialTCDAdvantage is the scored regression gate: under the
// committed battery TCD must beat the RED/FECN baseline on both mean
// accuracy and mean misdetection likelihood, with the baseline's
// misdetection substantial (it punishes storm victims as roots).
func TestAdversarialTCDAdvantage(t *testing.T) {
	rep, _ := batteryOnce()
	for _, det := range []string{"baseline", "tcd", "np-ecn"} {
		if _, ok := rep.PerDetector[det]; !ok {
			t.Fatalf("report has no aggregate for detector %q", det)
		}
	}
	tcd, base := rep.PerDetector["tcd"], rep.PerDetector["baseline"]
	if tcd.MeanAccuracy <= base.MeanAccuracy {
		t.Errorf("TCD mean accuracy %.4f not above baseline %.4f", tcd.MeanAccuracy, base.MeanAccuracy)
	}
	if tcd.MeanMisdetect >= base.MeanMisdetect {
		t.Errorf("TCD mean misdetect %.4f not below baseline %.4f", tcd.MeanMisdetect, base.MeanMisdetect)
	}
	if base.MeanMisdetect < 0.05 {
		t.Errorf("baseline mean misdetect %.4f too small — the storm scenario stopped biting", base.MeanMisdetect)
	}
	if len(rep.Contradictions) != 0 {
		t.Errorf("unexpected contradictions: %v", rep.Contradictions)
	}

	// Per-scenario shape checks on the raw runs.
	for _, run := range rep.Runs {
		switch {
		case run.Scenario == "pause-storm" && run.Fabric == "ib":
			// Forged PFC frames are protocol no-ops under credit flow
			// control: nothing happens, every detector scores perfectly.
			if run.Score.Accuracy != 1 {
				t.Errorf("pause-storm/ib/%s/seed=%d: accuracy %.4f, want 1 (forged Xoff must be a no-op on IB)",
					run.Detector, run.Seed, run.Score.Accuracy)
			}
		case run.Scenario == "pause-storm" && run.Fabric == "cee" && run.Detector == "baseline":
			if run.Score.MisdetectLikelihood < 0.5 {
				t.Errorf("pause-storm/cee/baseline/seed=%d: misdetect %.4f, want >= 0.5 (RED should punish storm victims)",
					run.Seed, run.Score.MisdetectLikelihood)
			}
		case run.Scenario == "pause-storm" && run.Fabric == "cee" && run.Detector == "tcd":
			if run.Score.MisdetectLikelihood != 0 {
				t.Errorf("pause-storm/cee/tcd/seed=%d: misdetect %.4f, want 0 (TCD must not punish storm victims)",
					run.Seed, run.Score.MisdetectLikelihood)
			}
		case run.Scenario == "spoof-mark":
			// Forged CE marks bypass the port scoreboard entirely: the
			// per-port verdicts stay honest even while the spoofed flow's
			// congestion control is being strangled.
			if run.Score.Accuracy != 1 {
				t.Errorf("spoof-mark/%s/%s/seed=%d: accuracy %.4f, want 1 (spoofed marks must not reach the scoreboard)",
					run.Fabric, run.Detector, run.Seed, run.Score.Accuracy)
			}
		case run.Scenario == "camouflage" && run.Fabric == "cee" && run.Detector == "tcd":
			// The documented attack that fools TCD: the camouflaged root
			// is held below the sustained-ON criterion, so TCD's recall of
			// truth-root windows collapses while the baseline keeps marking.
			if run.Score.Recall[1] > 0.2 {
				t.Errorf("camouflage/cee/tcd/seed=%d: root recall %.4f, want <= 0.2 (camouflage should fool TCD)",
					run.Seed, run.Score.Recall[1])
			}
		}
	}

	// Attack side effects actually landed.
	_, results := batteryOnce()
	sums := map[string]float64{}
	for _, r := range results {
		for _, k := range []string{"spoofed_ce", "forged_ctrl", "fault_actions_armed"} {
			sums[k] += r.Scalars[k]
		}
	}
	for k, v := range sums {
		if v <= 0 {
			t.Errorf("battery-wide %s = %g, want > 0", k, v)
		}
	}
}

// TestParseBatteryValidation is the table gate on battery specs.
func TestParseBatteryValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error; "" means valid
	}{
		{"valid minimal", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"light","horizon_us":100,
			"faults":{"events":[{"kind":"spoof-mark","port":"L0->T2","at_us":10,"prob":0.5}]}}]}`, ""},
		{"empty battery", `{"scenarios":[]}`, "no scenarios"},
		{"unknown field", `{"scenarios":[],"extra":1}`, "unknown field"},
		{"missing name", `{"scenarios":[{"topo":"fig2","traffic":"light","horizon_us":100}]}`, "no name"},
		{"duplicate name", `{"scenarios":[
			{"name":"a","topo":"fig2","traffic":"light","horizon_us":100},
			{"name":"a","topo":"fig2","traffic":"light","horizon_us":100}]}`, "duplicate scenario"},
		{"bad topo", `{"scenarios":[{"name":"a","topo":"mesh","traffic":"light","horizon_us":100}]}`, "unknown topo"},
		{"bad traffic", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"storm","horizon_us":100}]}`, "unknown traffic"},
		{"ring traffic on fig2", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"ring","horizon_us":100}]}`, "does not fit"},
		{"zero horizon", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"light","horizon_us":0}]}`, "horizon_us"},
		{"invalid faults", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"light","horizon_us":100,
			"faults":{"events":[{"kind":"pause-storm","port":"T2->R1","at_us":-10,"period_us":40,"until_us":90}]}}]}`, "negative"},
		{"unknown fault kind", `{"scenarios":[{"name":"a","topo":"fig2","traffic":"light","horizon_us":100,
			"faults":{"events":[{"kind":"emp-burst","port":"T2->R1","at_us":10}]}}]}`, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := exp.ParseBattery([]byte(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// firstDiffT is firstDiff for the external test package.
func firstDiffT(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	if i == n && len(got) == len(want) {
		return "equal"
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	excerpt := func(b []byte) string {
		hi := i + 40
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return "<EOF>"
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("byte %d (got %d bytes, want %d):\n  got:  …%s…\n  want: …%s…",
		i, len(got), len(want), excerpt(got), excerpt(want))
}
