package exp

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/stats"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// TestbedConfig parameterizes the §5.1.1 DPDK-testbed reproduction
// (Fig 11): the compact topology at 10 Gbps with TCD, software-jittered
// control frames, F0 (S0→R0, 1 Gbps) crossing only the undetermined port
// P0, F1 (S1→R1, 8 Gbps) crossing P0 and the congestion port, and A0
// bursting at line rate into R1.
type TestbedConfig struct {
	Kind FabricKind
	// Horizon ends the run; A0 is active over the middle half.
	Horizon units.Time
	// Bin is the marking-fraction aggregation window (100 ms in the
	// paper's seconds-long run; scaled runs use smaller bins).
	Bin units.Time
	// Jitter is the maximum extra control-frame delay from software
	// forwarding (uniform in [0, Jitter]).
	Jitter units.Time
	Seed   uint64
}

// DefaultTestbedConfig returns a scaled testbed run: 80 ms total with
// 4 ms bins (the paper ran seconds with 100 ms bins; the marking-fraction
// staircase is invariant to this scaling).
func DefaultTestbedConfig(kind FabricKind) TestbedConfig {
	return TestbedConfig{
		Kind:    kind,
		Horizon: 80 * units.Millisecond,
		Bin:     4 * units.Millisecond,
		Jitter:  10 * units.Microsecond,
	}
}

// Testbed runs the Fig 11 experiment and reports F0's UE marking
// fraction per bin plus F1's CE fraction while the burst is active.
func Testbed(cfg TestbedConfig) *Result {
	if cfg.Horizon == 0 {
		cfg.Horizon = 80 * units.Millisecond
	}
	if cfg.Bin == 0 {
		cfg.Bin = cfg.Horizon / 20
	}
	rate := 10 * units.Gbps
	tb := topo.NewTestbed(rate, units.Microsecond)
	jrnd := rng.New(cfg.Seed + 5)
	var jitter func() units.Time
	if cfg.Jitter > 0 {
		jitter = func() units.Time { return units.Time(jrnd.Int63n(int64(cfg.Jitter))) }
	}
	rc := RigConfig{
		Topo:       tb.Topology,
		Kind:       cfg.Kind,
		Det:        DetTCD,
		Seed:       cfg.Seed,
		CtrlJitter: jitter,
	}
	if cfg.Kind == CEE {
		// Testbed PFC thresholds: Xoff 800 KB, Xon 770 KB; eps relaxed to
		// 0.04 for the software-induced response jitter (§5.1.1).
		rc.PFC = pfc.Config{Xoff: 800 * units.KB, Xon: 770 * units.KB, Headroom: 200 * units.KB}
		rc.Par = DetectorParams{
			Eps:     0.04,
			XoffGap: 30 * units.KB,
			Tau:     core20us(rate, cfg.Jitter),
		}
	} else {
		// Testbed CBFC: 60 us credit period, 800 KB ingress buffers.
		rc.CBFC = cbfc.Config{Buffer: 800 * units.KB, Tc: 60 * units.Microsecond}
	}
	rig := NewRig(rc)
	res := NewResult(fmt.Sprintf("fig11-testbed-%s", cfg.Kind))

	burstOn := cfg.Horizon / 4
	burstOff := cfg.Horizon * 3 / 4
	big := 100 * 1000 * units.MB

	f0 := rig.Mgr.AddFlow(tb.S0, tb.R0, big, 0, host.FixedRate(units.Gbps))
	f1 := rig.Mgr.AddFlow(tb.S1, tb.R1, big, 0, host.FixedRate(8*units.Gbps))
	// A0 bursts at line rate for the middle half of the run.
	burstBytes := units.BytesIn(burstOff-burstOn, rate)
	a0 := rig.Mgr.AddFlow(tb.A0, tb.R1, burstBytes, burstOn, host.FixedRate(rate))

	// Per-bin marking fractions at the destination.
	tr := stats.NewTracer(rig.Sched, cfg.Bin, cfg.Horizon)
	// Scalars below are bin means, so decimation on very long horizons is
	// safe; at the default 20 bins the cap never triggers.
	tr.SetCap(TracerCap)
	f0ue := binFraction(f0, false)
	f0ce := binFraction(f0, true)
	f1ce := binFraction(f1, true)
	res.Series["f0_ue_frac"] = tr.Add("F0 UE fraction per bin", f0ue)
	res.Series["f0_ce_frac"] = tr.Add("F0 CE fraction per bin", f0ce)
	res.Series["f1_ce_frac"] = tr.Add("F1 CE fraction per bin", f1ce)
	tr.Start()

	rig.Run(cfg.Horizon)

	res.Scalars["burst_on_ms"] = burstOn.Millis()
	res.Scalars["burst_off_ms"] = burstOff.Millis()
	res.Scalars["a0_done"] = b2f(a0.Done)
	// The paper's claims: during the burst F0 is UE-marked (fraction ~1),
	// never CE; outside the burst, nothing is marked; F1 is CE-marked
	// during the burst.
	during := func(s *stats.Series) float64 {
		return s.MeanOver(burstOn+cfg.Bin, burstOff)
	}
	outside := func(s *stats.Series) float64 {
		return s.MeanOver(0, burstOn)
	}
	res.Scalars["f0_ue_during"] = during(res.Series["f0_ue_frac"])
	res.Scalars["f0_ue_outside"] = outside(res.Series["f0_ue_frac"])
	res.Scalars["f0_ce_during"] = during(res.Series["f0_ce_frac"])
	res.Scalars["f1_ce_during"] = during(res.Series["f1_ce_frac"])
	return res
}

// binFraction probes the marked fraction of packets received since the
// previous sample.
func binFraction(f *host.Flow, ce bool) func() float64 {
	lastPkts, lastMarks := 0, 0
	return func() float64 {
		pkts, marks := f.PktsRxed(), f.UEPackets()
		if ce {
			marks = f.CEPackets()
		}
		dp, dm := pkts-lastPkts, marks-lastMarks
		lastPkts, lastMarks = pkts, marks
		if dp == 0 {
			return 0
		}
		return float64(dm) / float64(dp)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// core20us approximates the testbed's software response time: the wire
// component plus the configured jitter ceiling.
func core20us(rate units.Rate, jitter units.Time) units.Time {
	return 2*units.TxTime(1500, rate) + 2*units.Microsecond + jitter
}
