package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// The golden-trace gate: reduced-scale fig3, fig12 and table3 runs whose
// Result JSON and (for the observation scenarios) JSONL event traces are
// committed under testdata/golden and compared byte-for-byte on every
// test run. Scheduler or hot-path rewrites that reorder same-timestamp
// events, perturb the clock, or change any emitted value fail here with
// the first differing byte — the trace diff catches reorderings long
// before they surface in a scalar.
//
// Regenerate intentionally with:
//
//	go test ./internal/exp -run TestGoldenTraces -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden trace fixtures in testdata/golden")

// goldenObserve runs one observation scenario at golden scale and
// returns its Result JSON and JSONL event trace.
func goldenObserve(t *testing.T, det DetectorKind) (result, trace []byte) {
	t.Helper()
	cfg := DefaultObserveConfig(CEE, det, false)
	cfg.Seed = 1
	cfg.Horizon = 2 * units.Millisecond
	ring := obs.NewRing(0)
	cfg.Obs = obs.Config{Rec: ring}
	res := Observe(cfg)
	var rb, tb bytes.Buffer
	if err := res.WriteJSON(&rb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ring.WriteJSONL(&tb); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return rb.Bytes(), tb.Bytes()
}

// TestGoldenTraces regenerates the golden scenarios and diffs every
// artifact against the committed fixture.
func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take a few seconds")
	}
	artifacts := make(map[string][]byte)

	fig3Res, fig3Trace := goldenObserve(t, DetBaseline)
	artifacts["fig3.json"] = fig3Res
	artifacts["fig3.trace.jsonl"] = fig3Trace

	fig12Res, fig12Trace := goldenObserve(t, DetTCD)
	artifacts["fig12.json"] = fig12Res
	artifacts["fig12.trace.jsonl"] = fig12Trace

	t3, _ := Table3(1500*units.Microsecond, 1)
	var t3b bytes.Buffer
	if err := t3.WriteJSON(&t3b); err != nil {
		t.Fatalf("table3 WriteJSON: %v", err)
	}
	artifacts["table3.json"] = t3b.Bytes()

	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range artifacts {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d bytes)", name, len(data))
		}
		return
	}
	for name, data := range artifacts {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing golden %s (run with -update-golden to create): %v", name, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("%s differs from committed golden: %s", name, firstDiff(data, want))
		}
	}
}

// firstDiff locates the first differing byte and returns a short context
// excerpt from both sides.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	if i == n && len(got) == len(want) {
		return "equal"
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	excerpt := func(b []byte) string {
		hi := i + 40
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return "<EOF>"
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("byte %d (got %d bytes, want %d):\n  got:  …%s…\n  want: …%s…",
		i, len(got), len(want), excerpt(got), excerpt(want))
}
