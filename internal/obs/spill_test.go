package obs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func spillEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			At:   units.Time(i) * units.Microsecond,
			Kind: KindMarkCE,
			Port: "T0[1]->L0",
			Flow: int64(i % 7),
			Val:  int64(i) * 1500,
		}
	}
	return evs
}

// TestSpillMatchesWriteJSONL: a run that fits one chunk produces exactly
// the bytes the in-memory exporter would have written.
func TestSpillMatchesWriteJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	evs := spillEvents(1000)

	s, err := NewSpill(path, SpillOptions{BufEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Written() != 1000 || s.Dropped() != 0 || s.Chunks() != 1 {
		t.Fatalf("written=%d dropped=%d chunks=%d", s.Written(), s.Dropped(), s.Chunks())
	}

	var want bytes.Buffer
	if err := WriteJSONL(&want, evs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("spill output differs from WriteJSONL")
	}
	if int64(len(got)) != s.Bytes() {
		t.Fatalf("Bytes() = %d, file has %d", s.Bytes(), len(got))
	}
}

// TestSpillChunkRotation: small chunks rotate into numbered files whose
// concatenation is the full trace.
func TestSpillChunkRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	evs := spillEvents(500)

	s, err := NewSpill(path, SpillOptions{ChunkBytes: 4096, BufEvents: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Chunks() < 2 {
		t.Fatalf("chunks = %d, want rotation with 4 KB chunks", s.Chunks())
	}

	var got bytes.Buffer
	for i := 0; i < s.Chunks(); i++ {
		name := path
		if i > 0 {
			name = fmt.Sprintf("%s.%03d", path, i)
		}
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		got.Write(b)
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("concatenated chunks differ from WriteJSONL")
	}
}

// TestSpillMaxBytesKeepsOldest: the disk cap stops recording but keeps
// the earliest events (trace consumers replay from the start).
func TestSpillMaxBytesKeepsOldest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	evs := spillEvents(2000)

	s, err := NewSpill(path, SpillOptions{MaxBytes: 8192, BufEvents: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() == 0 {
		t.Fatal("cap did not drop anything")
	}
	if s.Written()+s.Dropped() != 2000 {
		t.Fatalf("written %d + dropped %d != 2000", s.Written(), s.Dropped())
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, evs[:s.Written()]); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("capped spill does not hold the oldest events")
	}
}

// TestSpillGzipRoundTrip: a gzip chunk decompresses to the exact JSONL.
func TestSpillGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl.gz")
	evs := spillEvents(800)

	s, err := NewSpill(path, SpillOptions{Gzip: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range evs {
		s.Record(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSONL(&want, evs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("gzip spill does not decompress to the JSONL trace")
	}
	if s.Bytes() != int64(want.Len()) {
		t.Fatalf("Bytes() = %d (pre-compression), want %d", s.Bytes(), want.Len())
	}
}

func TestSpillCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	s, err := NewSpill(path, SpillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Record(Event{Kind: KindMarkCE, Flow: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Record(Event{Kind: KindMarkCE, Flow: -1})
	if s.Dropped() != 1 {
		t.Fatalf("record after close: dropped = %d, want 1", s.Dropped())
	}
}
