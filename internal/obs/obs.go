// Package obs is the simulator's observability layer: a structured,
// sim-timestamped event log for the discrete protocol edges the paper's
// figures are made of (PFC PAUSE/RESUME, CBFC credit exhaustion and
// grants, CE/UE marks, CNP emission, rate-controller updates, TCD
// ternary transitions), a labeled metrics registry, and scheduler/runtime
// instrumentation (progress ticker, CPU profiles).
//
// The fixed-interval sampler in package stats sees queue *levels*; this
// package sees the *edges between samples* — a pause storm, a spurious
// TCD transition or a credit stall is invisible to a 10 us sampler but
// shows up as an exact event sequence here.
//
// Everything is deterministic: events carry simulated time only, the
// JSONL encoding is hand-rolled with a fixed field order, and metrics
// export sorts its keys — two runs with the same seed produce
// byte-identical traces.
//
// Recording is opt-in and zero-cost when disabled: emission points hold
// a Recorder interface that is nil by default, and guard every Record
// call with a nil check. Never store a typed nil pointer in a Recorder
// field — the interface would be non-nil and the guard would pass.
package obs

import "github.com/tcdnet/tcd/internal/units"

// Kind identifies an event type. The string form (used in JSONL) is a
// dotted taxonomy: subsystem first, edge second.
type Kind uint8

const (
	// KindNone is the zero Kind; it is never recorded.
	KindNone Kind = iota
	// KindCtrlPause: a PFC PAUSE frame was originated by an ingress
	// meter (Port is the originating port).
	KindCtrlPause
	// KindCtrlResume: a PFC RESUME frame was originated.
	KindCtrlResume
	// KindCtrlCredit: a CBFC FCCL credit update was originated
	// (Val is the FCCL value in bytes).
	KindCtrlCredit
	// KindPauseOn: an egress gate entered the paused state for Prio
	// (Port is the paused egress port).
	KindPauseOn
	// KindPauseOff: the egress gate resumed.
	KindPauseOff
	// KindCreditExhausted: an egress gate ran out of CBFC credits for a
	// virtual lane (Val is the credit balance in bytes).
	KindCreditExhausted
	// KindCreditGrant: credits arrived at a previously exhausted gate
	// (Val is the new credit balance in bytes).
	KindCreditGrant
	// KindOffStart: a port's OFF period began — it holds traffic but the
	// gate refuses transmission (Val is the queued bytes on Prio).
	KindOffStart
	// KindOffEnd: the OFF period ended.
	KindOffEnd
	// KindMarkCE: a detector marked a packet CE (Val is the queue length
	// the detector saw, Flow the marked packet's flow).
	KindMarkCE
	// KindMarkUE: a detector marked a packet UE.
	KindMarkUE
	// KindCNP: a receiver emitted a congestion notification packet
	// (Val: 1 = CE echo, 2 = UE echo).
	KindCNP
	// KindRateChange: a rate controller changed its sending rate
	// (Val is the new rate in bps, Aux the previous rate).
	KindRateChange
	// KindTCDState: a TCD detector transitioned (Val is the new ternary
	// state, Aux the previous one; see core.State).
	KindTCDState
	// KindFlowDone: a flow's last byte arrived (Val is the FCT in ps).
	KindFlowDone
	// KindLinkDown: a fault took a port down (Port is the affected side).
	KindLinkDown
	// KindLinkUp: the fault cleared and the port came back up.
	KindLinkUp
	// KindFreeze: a fault froze a port's egress pipeline.
	KindFreeze
	// KindThaw: the frozen port resumed transmitting.
	KindThaw
	// KindFaultDrop: a fault destroyed a frame. For data packets Flow and
	// Val (wire bytes) describe the casualty; for control frames Flow is
	// -1 and Val is the CtrlKind.
	KindFaultDrop
	// KindDeadlock: the PFC deadlock detector found a pause-wait cycle
	// (Port is the initial-trigger port, Val the cycle length, Aux the
	// time the trigger has been paused in ps).
	KindDeadlock
	// KindCreditStall: the CBFC stall detector found a credit-wait cycle
	// (Port is the initial-trigger port, Val the cycle length, Aux the
	// time the trigger has been starved in ps).
	KindCreditStall
	// KindForgedCtrl: the adversarial injector forged a flow-control frame
	// from a compromised NIC (Port is the forging port, Val the CtrlKind).
	KindForgedCtrl
	// KindSpoofMark: the adversarial injector forged a CE mark on a packet
	// with no real queue buildup behind it (Val is the true queue length).
	KindSpoofMark
	// KindRouteRewrite: the adversarial injector rewrote a node's routing
	// (Port is the forced egress; Val 1 = installed, 0 = removed).
	KindRouteRewrite

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:            "none",
	KindCtrlPause:       "ctrl.pause",
	KindCtrlResume:      "ctrl.resume",
	KindCtrlCredit:      "ctrl.fccl",
	KindPauseOn:         "pfc.paused",
	KindPauseOff:        "pfc.resumed",
	KindCreditExhausted: "cbfc.exhausted",
	KindCreditGrant:     "cbfc.grant",
	KindOffStart:        "port.off",
	KindOffEnd:          "port.on",
	KindMarkCE:          "mark.ce",
	KindMarkUE:          "mark.ue",
	KindCNP:             "cnp",
	KindRateChange:      "cc.rate",
	KindTCDState:        "tcd.state",
	KindFlowDone:        "flow.done",
	KindLinkDown:        "fault.linkdown",
	KindLinkUp:          "fault.linkup",
	KindFreeze:          "fault.freeze",
	KindThaw:            "fault.thaw",
	KindFaultDrop:       "fault.drop",
	KindDeadlock:        "pfc.deadlock",
	KindCreditStall:     "cbfc.stall",
	KindForgedCtrl:      "attack.forge",
	KindSpoofMark:       "attack.spoof",
	KindRouteRewrite:    "attack.reroute",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured record. It is a flat value type so that
// recording never allocates: Port labels are cached strings owned by the
// emitting component, and the kind-specific payload lives in two int64
// slots documented per Kind.
type Event struct {
	// At is the simulated time of the event in picoseconds.
	At units.Time
	// Kind identifies the event type.
	Kind Kind
	// Prio is the PFC priority / IB virtual lane ("" semantics: 0).
	Prio uint8
	// Port labels the port the event concerns (empty for flow-scoped
	// events such as rate changes).
	Port string
	// Flow is the flow ID for flow-scoped events, -1 otherwise.
	Flow int64
	// Val and Aux carry the kind-specific payload (see Kind docs).
	Val int64
	// Aux is the secondary payload slot.
	Aux int64
}

// Recorder consumes events. Implementations are single-threaded, like
// the simulator; Record must not retain pointers into the event.
type Recorder interface {
	Record(e Event)
}

// FlowTracer is implemented by rate controllers that can emit per-flow
// events: the host layer hands them the recorder and their flow ID when
// the flow is registered.
type FlowTracer interface {
	SetTrace(rec Recorder, flow int64)
}

// Func adapts a function to the Recorder interface (tests, filters).
type Func func(e Event)

// Record implements Recorder.
func (f Func) Record(e Event) { f(e) }
