package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// Registry is a labeled metrics store: monotonic counters and
// point-in-time gauges keyed by a name plus label pairs (port, flow,
// priority...). It replaces ad-hoc exported counter fields gradually:
// components keep their fields, and a snapshot pass folds them into the
// registry at the end of a run for uniform export.
//
// Keys are canonical — label pairs are sorted — so the same metric
// reached from different call sites lands in one cell, and the JSON
// export is deterministic.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v += d }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float64 metric.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// metricKey renders "name{k=v,k2=v2}" with label pairs sorted by key.
func metricKey(name string, labels []string) string {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	if len(labels) == 0 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns (creating if needed) the counter for name plus
// alternating label key,value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name plus labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.counters) + len(r.gauges) }

// WriteJSON exports the registry as a two-section JSON object. Map keys
// are sorted by encoding/json, making the output deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.v
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}{counters, gauges})
}
