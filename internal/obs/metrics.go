package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Registry is a labeled metrics store: monotonic counters and
// point-in-time gauges keyed by a name plus label pairs (port, flow,
// priority...). It replaces ad-hoc exported counter fields gradually:
// components keep their fields, and a snapshot pass folds them into the
// registry at the end of a run for uniform export.
//
// Keys are canonical — label pairs are sorted — so the same metric
// reached from different call sites lands in one cell, and the JSON
// export is deterministic.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	// prom maps the canonical key to its Prometheus-rendered series
	// identity (name{k="v",...}), built once at creation.
	prom map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		prom:     make(map[string]string),
	}
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v += d }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time float64 metric.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// metricKey renders the canonical "name{k=v,k2=v2}" key and the
// Prometheus series identity name{k="v",k2="v2"}, label pairs sorted by
// key in both, so the same metric reached with labels in any order lands
// in one cell and both exports are deterministic.
func metricKey(name string, labels []string) (key, prom string) {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	if len(labels) == 0 {
		return name, name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb, pb strings.Builder
	sb.WriteString(name)
	pb.WriteString(name)
	sb.WriteByte('{')
	pb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
			pb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteByte('=')
		sb.WriteString(p.v)
		pb.WriteString(p.k)
		pb.WriteString(`="`)
		pb.WriteString(promEscape(p.v))
		pb.WriteByte('"')
	}
	sb.WriteByte('}')
	pb.WriteByte('}')
	return sb.String(), pb.String()
}

// promEscape escapes a label value for the Prometheus text format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Counter returns (creating if needed) the counter for name plus
// alternating label key,value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key, prom := metricKey(name, labels)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
		r.prom[key] = prom
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name plus labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key, prom := metricKey(name, labels)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
		r.prom[key] = prom
	}
	return g
}

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.counters) + len(r.gauges) }

// WriteJSON exports the registry as a two-section JSON object. Map keys
// are sorted by encoding/json, making the output deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.v
	}
	gauges := make(map[string]float64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}{counters, gauges})
}

// metricName extracts the bare metric name from a canonical key.
func metricName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WriteProm exports the registry in the Prometheus text exposition
// format. Series are ordered by canonical key within each section and a
// single # TYPE line precedes each metric family, so identical
// registries produce byte-identical output.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeSection := func(keys []string, typ string, value func(key string) string) {
		sort.Strings(keys)
		lastName := ""
		for _, k := range keys {
			if name := metricName(k); name != lastName {
				fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
				lastName = name
			}
			fmt.Fprintf(bw, "%s %s\n", r.prom[k], value(k))
		}
	}
	ckeys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		ckeys = append(ckeys, k)
	}
	writeSection(ckeys, "counter", func(k string) string {
		return strconv.FormatInt(r.counters[k].v, 10)
	})
	gkeys := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		gkeys = append(gkeys, k)
	}
	writeSection(gkeys, "gauge", func(k string) string {
		return strconv.FormatFloat(r.gauges[k].v, 'g', -1, 64)
	})
	return bw.Flush()
}
