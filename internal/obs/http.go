package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Live is the introspection endpoint of a running simulation: an HTTP
// server exposing the latest published metrics snapshot in Prometheus
// text format (/metrics), a JSON progress snapshot (/progress) and the
// standard pprof handlers (/debug/pprof/).
//
// Concurrency model: the simulator stays single-threaded and never takes
// a lock on its hot path — it publishes pre-serialized snapshots at
// deterministic simulated-time ticks, and the HTTP goroutines only ever
// read the latest published bytes under a mutex. A stalled simulation
// therefore serves a stale (clearly timestamped) snapshot rather than
// racing the event loop.
type Live struct {
	mu       sync.Mutex
	metrics  []byte
	progress []byte

	srv *http.Server
	ln  net.Listener
}

// ServeLive starts the endpoint on addr (e.g. ":9321" or
// "127.0.0.1:0"). It returns once the listener is bound, with the
// handlers serving from a background goroutine.
func ServeLive(addr string) (*Live, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Live{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", l.handleMetrics)
	mux.HandleFunc("/progress", l.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", handleIndex)
	l.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go l.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return l, nil
}

// Addr reports the bound listen address (useful with port 0).
func (l *Live) Addr() string { return l.ln.Addr().String() }

// PublishMetrics stores a new /metrics snapshot (the bytes are copied).
func (l *Live) PublishMetrics(b []byte) {
	snap := append([]byte(nil), b...)
	l.mu.Lock()
	l.metrics = snap
	l.mu.Unlock()
}

// PublishProgress stores a new /progress snapshot (the bytes are
// copied).
func (l *Live) PublishProgress(b []byte) {
	snap := append([]byte(nil), b...)
	l.mu.Lock()
	l.progress = snap
	l.mu.Unlock()
}

// Close shuts the server down.
func (l *Live) Close() error {
	return l.srv.Close()
}

func (l *Live) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	b := l.metrics
	l.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b) //nolint:errcheck
}

func (l *Live) handleProgress(w http.ResponseWriter, _ *http.Request) {
	l.mu.Lock()
	b := l.progress
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if len(b) == 0 {
		b = []byte("{}\n")
	}
	w.Write(b) //nolint:errcheck
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(`<html><body><h1>tcdsim</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/progress">/progress</a> (JSON snapshot)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a></li>
</ul></body></html>
`)) //nolint:errcheck
}
