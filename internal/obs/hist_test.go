package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistIndexRoundTrip checks that every value maps to a bucket whose
// range actually contains it, across the full magnitude span.
func TestHistIndexRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 - 1}
	for _, v := range vals {
		i := histIndex(v)
		if i < 0 || i >= numHistBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		if hi := histBucketMax(i); v > hi {
			t.Errorf("value %d above its bucket's max %d (bucket %d)", v, hi, i)
		}
		if i > 0 {
			if lo := histBucketMax(i - 1); v <= lo {
				t.Errorf("value %d at or below previous bucket's max %d (bucket %d)", v, lo, i)
			}
		}
	}
}

// TestHistQuantileRelativeError draws lognormal-ish values and checks the
// reported quantiles against exact nearest-rank values: the bucket layout
// promises at most 1/histSubCount relative error.
func TestHistQuantileRelativeError(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	h := NewHist()
	var vals []int64
	for i := 0; i < 20000; i++ {
		v := int64(1) << uint(r.Intn(36))
		v += r.Int63n(v + 1)
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		// Same nearest-rank convention as Hist.Quantile: the ceil(p*n)-th
		// smallest value.
		rank := int(math.Ceil(p * float64(len(vals))))
		if rank > len(vals) {
			rank = len(vals)
		}
		exact := vals[rank-1]
		got := h.Quantile(p)
		if got < exact {
			// The reported value is a bucket upper bound: it must never
			// under-report the exact quantile.
			t.Errorf("p=%v: got %d < exact %d (quantile under-reports)", p, got, exact)
		}
		relErr := float64(got-exact) / float64(exact)
		if relErr > 1.0/histSubCount+1e-9 {
			t.Errorf("p=%v: got %d, exact %d, rel err %.4f > 1/%d", p, got, exact, relErr, histSubCount)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Errorf("quantile endpoints: p0=%d min=%d, p1=%d max=%d", h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

// TestHistMergeAssociativeCommutative is the property the parallel sweep
// fold relies on: any merge tree over the same histograms is equal.
func TestHistMergeAssociativeCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = NewHist()
		for j := 0; j < 500+100*i; j++ {
			parts[i].Observe(r.Int63n(1 << uint(10+3*i)))
		}
	}
	// ((a+b)+c)+d
	left := NewHist()
	for _, p := range parts {
		left.Merge(p)
	}
	// a+(b+(c+d)) built right-to-left
	right := NewHist()
	for i := len(parts) - 1; i >= 0; i-- {
		right.Merge(parts[i])
	}
	if !left.Equal(right) {
		t.Fatal("merge is not order-independent")
	}
	// (d+b)+(c+a): arbitrary shuffle + tree shape
	x, y := NewHist(), NewHist()
	x.Merge(parts[3])
	x.Merge(parts[1])
	y.Merge(parts[2])
	y.Merge(parts[0])
	x.Merge(y)
	if !left.Equal(x) {
		t.Fatal("merge is not associative across tree shapes")
	}
	// Merging all parts must equal observing the union serially.
	serial := NewHist()
	r2 := rand.New(rand.NewSource(7))
	for i := range parts {
		for j := 0; j < 500+100*i; j++ {
			serial.Observe(r2.Int63n(1 << uint(10+3*i)))
		}
	}
	if !left.Equal(serial) {
		t.Fatal("merged parts differ from the serial fold")
	}
}

func TestHistMergeEmptyAndNil(t *testing.T) {
	h := NewHist()
	h.Observe(10)
	h.Merge(nil)
	h.Merge(NewHist())
	if h.Count() != 1 || h.Min() != 10 || h.Max() != 10 {
		t.Fatalf("merge with empty changed state: n=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	e := NewHist()
	e.Merge(h)
	if !e.Equal(h) {
		t.Fatal("empty.Merge(h) != h")
	}
}

// TestHistJSONDeterministicRoundTrip: identical histograms marshal to
// identical bytes, and unmarshalling restores an Equal histogram.
func TestHistJSONDeterministicRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := NewHist()
	for i := 0; i < 3000; i++ {
		h.Observe(r.Int63n(1 << 30))
	}
	b1, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := h.Clone().MarshalJSON()
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical histograms marshalled to different bytes")
	}
	var back Hist
	if err := back.UnmarshalJSON(b1); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(h) {
		t.Fatal("unmarshalled histogram differs from the original")
	}
	// Empty histogram round-trips too (min/max sentinels restored).
	var emptyBack Hist
	eb, _ := NewHist().MarshalJSON()
	if err := emptyBack.UnmarshalJSON(eb); err != nil {
		t.Fatal(err)
	}
	if !emptyBack.Equal(NewHist()) {
		t.Fatal("empty histogram did not round-trip")
	}
}

func TestHistUnmarshalRejectsBadBucket(t *testing.T) {
	var h Hist
	if err := h.UnmarshalJSON([]byte(`{"n":1,"sum":1,"min":1,"max":1,"buckets":[[99999,1]]}`)); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

// TestHistObserveZeroAlloc pins the hot-path guarantee the hyperscale
// runs rely on.
func TestHistObserveZeroAlloc(t *testing.T) {
	h := NewHist()
	v := int64(12345)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 917
	}); n != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", n)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	h := NewHist()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1311)
	}
}
