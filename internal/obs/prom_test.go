package obs

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func fillRegistry(r *Registry) {
	// Deliberately created in scrambled order: the export must sort.
	r.Gauge("zeta").Set(1.5)
	r.Counter("alpha_total", "port", "T0[1]->L0", "prio", "0").Add(3)
	r.Counter("alpha_total", "port", "L0[2]->T2", "prio", "1").Add(7)
	r.Gauge("queue_bytes", "port", `weird"name`).Set(42)
	r.Counter("beta_total").Add(1)
}

// TestWritePromDeterministicAndSorted: two registries built in different
// insertion orders export byte-identical, sorted Prometheus text.
func TestWritePromDeterministicAndSorted(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	fillRegistry(a)
	// Same metrics, reversed creation order.
	b.Counter("beta_total").Add(1)
	b.Gauge("queue_bytes", "port", `weird"name`).Set(42)
	b.Counter("alpha_total", "port", "L0[2]->T2", "prio", "1").Add(7)
	b.Counter("alpha_total", "port", "T0[1]->L0", "prio", "0").Add(3)
	b.Gauge("zeta").Set(1.5)

	var ba, bb bytes.Buffer
	if err := a.WriteProm(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteProm(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatalf("insertion order leaked into the export:\n%s\nvs\n%s", ba.String(), bb.String())
	}

	lines := strings.Split(strings.TrimRight(ba.String(), "\n"), "\n")
	var series []string
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "# ") {
			series = append(series, ln)
		}
	}
	if !sort.StringsAreSorted(series[:3]) {
		t.Errorf("counter series not sorted: %q", series)
	}
	if !strings.Contains(ba.String(), `alpha_total{port="T0[1]->L0",prio="0"} 3`) {
		t.Errorf("labeled counter missing or mis-rendered:\n%s", ba.String())
	}
	if !strings.Contains(ba.String(), `port="weird\"name"`) {
		t.Errorf("label value not escaped:\n%s", ba.String())
	}
	// One # TYPE header per family, before its first series.
	if strings.Count(ba.String(), "# TYPE alpha_total counter") != 1 {
		t.Errorf("alpha_total family header wrong:\n%s", ba.String())
	}
}
