package obs

import (
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func TestTelemetryFoldsEventStream(t *testing.T) {
	tel := NewTelemetry(nil)
	us := units.Microsecond

	tel.Record(Event{At: 10 * us, Kind: KindFlowDone, Flow: 1, Val: int64(9 * us)})
	tel.Record(Event{At: 20 * us, Kind: KindFlowDone, Flow: 2, Val: int64(15 * us)})

	tel.Record(Event{At: 30 * us, Kind: KindPauseOn, Port: "A", Prio: 0})
	tel.Record(Event{At: 34 * us, Kind: KindPauseOff, Port: "A", Prio: 0})
	// Unmatched PauseOff must not observe anything.
	tel.Record(Event{At: 35 * us, Kind: KindPauseOff, Port: "B", Prio: 0})
	// A pause still open never closes: not counted.
	tel.Record(Event{At: 36 * us, Kind: KindPauseOn, Port: "C", Prio: 1})

	tel.Record(Event{At: 40 * us, Kind: KindCreditExhausted, Port: "D", Prio: 0})
	tel.Record(Event{At: 47 * us, Kind: KindCreditGrant, Port: "D", Prio: 0})

	tel.Record(Event{At: 50 * us, Kind: KindCNP, Flow: 1})
	tel.Record(Event{At: 53 * us, Kind: KindCNP, Flow: 1})
	tel.Record(Event{At: 60 * us, Kind: KindMarkCE, Port: "A"})
	tel.Record(Event{At: 61 * us, Kind: KindMarkUE, Port: "A"})

	if tel.FCT.Count() != 2 || tel.FCT.Min() != int64(9*us) || tel.FCT.Max() != int64(15*us) {
		t.Fatalf("FCT: n=%d min=%d max=%d", tel.FCT.Count(), tel.FCT.Min(), tel.FCT.Max())
	}
	if tel.PauseDur.Count() != 1 || tel.PauseDur.Max() != int64(4*us) {
		t.Fatalf("PauseDur: n=%d max=%d", tel.PauseDur.Count(), tel.PauseDur.Max())
	}
	if tel.StallDur.Count() != 1 || tel.StallDur.Max() != int64(7*us) {
		t.Fatalf("StallDur: n=%d max=%d", tel.StallDur.Count(), tel.StallDur.Max())
	}
	if tel.CNPGap.Count() != 1 || tel.CNPGap.Max() != int64(3*us) {
		t.Fatalf("CNPGap: n=%d max=%d", tel.CNPGap.Count(), tel.CNPGap.Max())
	}
	if tel.MarkGap.Count() != 1 || tel.MarkGap.Max() != int64(us) {
		t.Fatalf("MarkGap: n=%d max=%d", tel.MarkGap.Count(), tel.MarkGap.Max())
	}
}

func TestTelemetryForwardsToInnerRecorder(t *testing.T) {
	ring := NewRing(8)
	tel := NewTelemetry(nil)
	rec := tel.Chain(ring)
	rec.Record(Event{At: 1, Kind: KindMarkCE, Flow: -1})
	rec.Record(Event{At: 2, Kind: KindFlowDone, Flow: 1, Val: 100})
	if ring.Len() != 2 {
		t.Fatalf("inner recorder saw %d events, want 2", ring.Len())
	}
	if tel.FCT.Count() != 1 {
		t.Fatalf("telemetry folded %d FCTs, want 1", tel.FCT.Count())
	}
}

func TestTelemetryObserveQueue(t *testing.T) {
	tel := NewTelemetry(nil)
	for i := 0; i < 100; i++ {
		tel.ObserveQueue(units.Time(i)*tel.QueueSampleEvery, int64(i*1000))
	}
	if tel.QueueDepth.Count() != 100 {
		t.Fatalf("QueueDepth n = %d", tel.QueueDepth.Count())
	}
	if tel.QueueWin.Fold().Count != 100 {
		t.Fatalf("QueueWin fold count = %d", tel.QueueWin.Fold().Count)
	}
}

// TestTelemetryRecordSteadyStateZeroAlloc: once every gate has been seen,
// folding the stream allocates nothing.
func TestTelemetryRecordSteadyStateZeroAlloc(t *testing.T) {
	tel := NewTelemetry(nil)
	on := Event{At: 0, Kind: KindPauseOn, Port: "P", Prio: 0}
	off := Event{At: 0, Kind: KindPauseOff, Port: "P", Prio: 0}
	done := Event{Kind: KindFlowDone, Flow: 1, Val: 1000}
	mark := Event{Kind: KindMarkCE, Port: "P"}
	// Warm up: first insertion may grow the pause map.
	tel.Record(on)
	tel.Record(off)
	at := units.Time(0)
	if n := testing.AllocsPerRun(500, func() {
		at += 10
		on.At, off.At, done.At, mark.At = at, at+5, at, at
		tel.Record(on)
		tel.Record(off)
		tel.Record(done)
		tel.Record(mark)
		tel.ObserveQueue(at, int64(at))
	}); n != 0 {
		t.Fatalf("steady-state Record allocates %.1f per cycle, want 0", n)
	}
}

func TestTelemetryFoldInto(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.Record(Event{At: 1, Kind: KindFlowDone, Flow: 1, Val: 500})
	reg := NewRegistry()
	tel.FoldInto(reg)
	if got := reg.Gauge("hist_fct_ps_count").Value(); got != 1 {
		t.Fatalf("hist_fct_ps_count = %v, want 1", got)
	}
	if got := reg.Gauge("hist_fct_ps_max").Value(); got != 500 {
		t.Fatalf("hist_fct_ps_max = %v, want 500", got)
	}
}
