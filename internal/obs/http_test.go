package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServeLiveEndpoints(t *testing.T) {
	l, err := ServeLive("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	base := "http://" + l.Addr()

	// Before any publish, /metrics is empty and /progress is a valid
	// empty object.
	if code, body := getBody(t, base+"/metrics"); code != 200 || body != "" {
		t.Fatalf("/metrics pre-publish: code=%d body=%q", code, body)
	}
	if code, body := getBody(t, base+"/progress"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("/progress pre-publish: code=%d body=%q", code, body)
	}

	l.PublishMetrics([]byte("# TYPE x counter\nx 1\n"))
	l.PublishProgress([]byte(`{"sim_time_us":42}`))
	if _, body := getBody(t, base+"/metrics"); !strings.Contains(body, "x 1") {
		t.Fatalf("/metrics missing published snapshot: %q", body)
	}
	if _, body := getBody(t, base+"/progress"); !strings.Contains(body, `"sim_time_us":42`) {
		t.Fatalf("/progress missing published snapshot: %q", body)
	}

	if code, body := getBody(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index: code=%d", code)
	}
	if code, body := getBody(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: code=%d body=%q", code, body)
	}
	if code, _ := getBody(t, base+"/nope"); code != 404 {
		t.Fatalf("unknown path: code=%d, want 404", code)
	}
}

// TestPublishCopiesBytes: mutating the caller's buffer after publishing
// must not corrupt the served snapshot.
func TestPublishCopiesBytes(t *testing.T) {
	l, err := ServeLive("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	buf := []byte("before")
	l.PublishMetrics(buf)
	copy(buf, "mutate")
	if _, body := getBody(t, "http://"+l.Addr()+"/metrics"); body != "before" {
		t.Fatalf("snapshot aliased the caller's buffer: %q", body)
	}
}
