package obs

import (
	"math"

	"github.com/tcdnet/tcd/internal/units"
)

// WindowAgg is the fold of one time window: count, sum (for the mean),
// min and max of every observation whose timestamp fell in
// [Index*width, (Index+1)*width).
type WindowAgg struct {
	// Index is the window's sequence number; its start time is
	// Index * Width.
	Index int64
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean reports the window's average (0 when empty).
func (w WindowAgg) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// WindowSeries replaces an unbounded sampled series with a fixed ring of
// per-window aggregates plus one log-bucketed histogram over every
// observation. Memory is O(ring size), independent of run length: old
// windows are evicted as simulated time advances, while the histogram
// keeps whole-run min/mean/max/p99 folds exact to bucket resolution.
//
// Observe never allocates and tolerates monotone or mildly out-of-order
// timestamps; observations older than the retained ring are counted as
// dropped.
type WindowSeries struct {
	width  units.Time
	wins   []WindowAgg
	newest int64 // highest window index seen; -1 before the first sample
	// whole-run folds
	hist     *Hist
	totalMin float64
	totalMax float64
	dropped  uint64
	evicted  uint64
}

// DefaultWindowCount is the ring size used when none is given.
const DefaultWindowCount = 256

// NewWindowSeries builds a series of n retained windows of the given
// width (DefaultWindowCount windows if n <= 0). It panics on a
// non-positive width.
func NewWindowSeries(width units.Time, n int) *WindowSeries {
	if width <= 0 {
		panic("obs: NewWindowSeries width must be positive")
	}
	if n <= 0 {
		n = DefaultWindowCount
	}
	return &WindowSeries{
		width:    width,
		wins:     make([]WindowAgg, n),
		newest:   -1,
		hist:     NewHist(),
		totalMin: math.Inf(1),
		totalMax: math.Inf(-1),
	}
}

// Width reports the window width.
func (s *WindowSeries) Width() units.Time { return s.width }

// Cap reports the number of retained windows.
func (s *WindowSeries) Cap() int { return len(s.wins) }

// Dropped reports observations that arrived too late to land in a
// retained window.
func (s *WindowSeries) Dropped() uint64 { return s.dropped }

// Evicted reports how many windows have rotated out of the ring.
func (s *WindowSeries) Evicted() uint64 { return s.evicted }

// slot maps a window index to its ring slot. Consecutive indices map to
// consecutive slots, so advancing by one window touches one slot.
func (s *WindowSeries) slot(idx int64) *WindowAgg {
	return &s.wins[int(idx%int64(len(s.wins)))]
}

// Observe folds one observation at simulated time at. It never
// allocates.
func (s *WindowSeries) Observe(at units.Time, v float64) {
	idx := int64(at / s.width)
	if at < 0 {
		idx = 0
	}
	if s.newest < 0 {
		s.newest = idx
		*s.slot(idx) = WindowAgg{Index: idx, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	for s.newest < idx {
		s.newest++
		w := s.slot(s.newest)
		if w.Count > 0 || w.Index > 0 {
			s.evicted++
		}
		*w = WindowAgg{Index: s.newest, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	oldest := s.newest - int64(len(s.wins)) + 1
	if idx < oldest {
		s.dropped++
		return
	}
	w := s.slot(idx)
	if w.Index != idx {
		// The slot still holds a future-relative stale window (possible
		// only for indices between a big forward jump); reset it.
		*w = WindowAgg{Index: idx, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	w.Count++
	w.Sum += v
	if v < w.Min {
		w.Min = v
	}
	if v > w.Max {
		w.Max = v
	}
	s.hist.Observe(int64(v))
	if v < s.totalMin {
		s.totalMin = v
	}
	if v > s.totalMax {
		s.totalMax = v
	}
}

// Windows returns the retained, non-empty windows oldest first. It
// allocates and is meant for end-of-run export, not the hot path.
func (s *WindowSeries) Windows() []WindowAgg {
	if s.newest < 0 {
		return nil
	}
	oldest := s.newest - int64(len(s.wins)) + 1
	if oldest < 0 {
		oldest = 0
	}
	out := make([]WindowAgg, 0, len(s.wins))
	for idx := oldest; idx <= s.newest; idx++ {
		w := s.slot(idx)
		if w.Index == idx && w.Count > 0 {
			out = append(out, *w)
		}
	}
	return out
}

// Fold is the whole-run summary of a WindowSeries.
type Fold struct {
	Count          int64
	Min, Mean, Max float64
	// P99 comes from the embedded log-bucket histogram, so it is exact to
	// ~3% bucket resolution over every observation ever made (not only
	// the retained windows).
	P99 float64
}

// Fold summarizes every observation made over the series' lifetime.
func (s *WindowSeries) Fold() Fold {
	if s.hist.Count() == 0 {
		return Fold{}
	}
	return Fold{
		Count: s.hist.Count(),
		Min:   s.totalMin,
		Mean:  s.hist.Mean(),
		Max:   s.totalMax,
		P99:   float64(s.hist.Quantile(0.99)),
	}
}

// Hist exposes the embedded whole-run histogram (for merging across
// seeds or export).
func (s *WindowSeries) Hist() *Hist { return s.hist }
