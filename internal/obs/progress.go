package obs

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Progress reports simulation liveness: simulated time versus wall time,
// events executed per wall second, and event-heap depth. It schedules
// itself on the simulator clock, so reports are deterministic points in
// sim time while the wall-side numbers measure the host.
//
// The ticker re-arms itself only while it runs, so it adds one pending
// event at a time; runs bounded by RunUntil(horizon) simply leave the
// final tick unexecuted.
type Progress struct {
	sched *sim.Scheduler
	every units.Time
	w     io.Writer

	wallStart time.Time
	lastWall  time.Time
	lastDone  uint64
}

// AttachProgress starts a progress ticker on s reporting every simEvery
// of simulated time to w (stderr if nil). It must be called before the
// run starts.
func AttachProgress(s *sim.Scheduler, simEvery units.Time, w io.Writer) *Progress {
	if simEvery <= 0 {
		simEvery = units.Millisecond
	}
	if w == nil {
		w = os.Stderr
	}
	now := time.Now()
	p := &Progress{sched: s, every: simEvery, w: w, wallStart: now, lastWall: now}
	s.After(simEvery, p.tick)
	return p
}

func (p *Progress) tick() {
	p.report()
	p.sched.After(p.every, p.tick)
}

// report prints one progress line immediately (the ticker calls it; a
// final call after the run gives closing totals).
func (p *Progress) report() {
	now := time.Now()
	done := p.sched.Processed()
	interval := now.Sub(p.lastWall).Seconds()
	rate := 0.0
	if interval > 0 {
		rate = float64(done-p.lastDone) / interval
	}
	fmt.Fprintf(p.w, "progress: sim=%v wall=%v events=%d rate=%.3gM ev/s pending=%d\n",
		p.sched.Now(), now.Sub(p.wallStart).Round(time.Millisecond),
		done, rate/1e6, p.sched.Pending())
	p.lastWall = now
	p.lastDone = done
}

// Config bundles the observability hooks one run threads through the
// experiment stack. The zero value disables everything.
type Config struct {
	// Rec receives structured events (nil = event log off).
	Rec Recorder
	// Metrics, if non-nil, is populated by the rig's end-of-run snapshot.
	Metrics *Registry
	// Telemetry, if non-nil, folds the event stream into bounded-memory
	// histograms and windowed aggregates; the rig chains it in front of
	// Rec and attaches the queue-depth sampler.
	Telemetry *Telemetry
	// Live, if non-nil, is the introspection endpoint the rig publishes
	// metric and progress snapshots to at LiveEvery intervals.
	Live *Live
	// LiveEvery is the simulated-time interval between live snapshot
	// publishes (default 1 ms when Live is set).
	LiveEvery units.Time
	// ProgressEvery enables the progress ticker at this sim interval.
	ProgressEvery units.Time
	// ProgressOut receives progress lines (stderr if nil).
	ProgressOut io.Writer
}

// Attach installs the configured scheduler instrumentation on s.
func (c *Config) Attach(s *sim.Scheduler) {
	if c.ProgressEvery > 0 {
		AttachProgress(s, c.ProgressEvery, c.ProgressOut)
	}
}

// StartCPUProfile writes a CPU profile to path until the returned stop
// function is called.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}
