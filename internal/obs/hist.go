package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strconv"
)

// Histogram bucket layout: values below histSubCount land in unit-width
// buckets; above that, each power-of-two range is split into histSubCount
// linear sub-buckets, HdrHistogram-style. The relative quantile error is
// therefore bounded by 1/histSubCount (~3%), and the footprint is a fixed
// array of numHistBuckets counters (~15 KB) regardless of how many values
// are observed — the property the hyperscale runs need.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histBlocks: one linear block for v < histSubCount plus one block per
	// power-of-two range with the most significant bit in [subBits, 62].
	histBlocks     = 62 - histSubBits + 2
	numHistBuckets = histBlocks * histSubCount
)

// Hist is a log-bucketed streaming histogram for non-negative int64
// observations (durations in ps, sizes in bytes). It is fixed-size,
// deterministic (same observations in any order produce the same state)
// and mergeable: Merge is associative and commutative, so per-seed
// histograms folded across a parallel sweep equal the serial fold.
//
// The zero value is NOT ready; use NewHist. Observe never allocates.
type Hist struct {
	counts [numHistBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHist builds an empty histogram.
func NewHist() *Hist {
	return &Hist{min: math.MaxInt64, max: -1}
}

// histIndex maps a value to its bucket. Negative values clamp to 0.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> uint(msb-histSubBits)) & (histSubCount - 1))
	return (msb-histSubBits+1)*histSubCount + sub
}

// histBucketMax returns the largest value mapping to bucket i (used as
// the reported quantile value, so quantiles never under-report).
func histBucketMax(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	block := i >> histSubBits
	sub := int64(i & (histSubCount - 1))
	msb := block + histSubBits - 1
	width := int64(1) << uint(msb-histSubBits)
	return int64(1)<<uint(msb) + sub*width + width - 1
}

// Observe records one value. It never allocates.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.n }

// Sum reports the total of all observations.
func (h *Hist) Sum() int64 { return h.sum }

// Min reports the smallest observation (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation (0 when empty).
func (h *Hist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the p-quantile (0..1) by nearest rank over the bucket
// counts; the reported value is the bucket's upper bound clamped to the
// exact observed Max, so the relative error is at most 1/32.
func (h *Hist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	rank := int64(math.Ceil(p * float64(h.n)))
	if rank >= h.n {
		return h.max
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			v := histBucketMax(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds o into h. Merging is associative and commutative: bucket
// counts and sums add, min/max fold, so any merge tree over the same set
// of histograms yields the same result.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Clone returns an independent copy.
func (h *Hist) Clone() *Hist {
	c := *h
	return &c
}

// Equal reports whether two histograms hold identical state.
func (h *Hist) Equal(o *Hist) bool {
	return h.n == o.n && h.sum == o.sum && h.min == o.min && h.max == o.max && h.counts == o.counts
}

// MarshalJSON encodes the histogram sparsely and deterministically:
// summary fields first (including derived p50/p90/p99 for human readers),
// then the non-empty buckets as [index, count] pairs in ascending index
// order. The encoding is hand-rolled so identical histograms produce
// byte-identical output.
func (h *Hist) MarshalJSON() ([]byte, error) {
	var b []byte
	b = append(b, `{"n":`...)
	b = strconv.AppendInt(b, h.n, 10)
	b = append(b, `,"sum":`...)
	b = strconv.AppendInt(b, h.sum, 10)
	b = append(b, `,"min":`...)
	b = strconv.AppendInt(b, h.Min(), 10)
	b = append(b, `,"max":`...)
	b = strconv.AppendInt(b, h.Max(), 10)
	b = append(b, `,"p50":`...)
	b = strconv.AppendInt(b, h.Quantile(0.50), 10)
	b = append(b, `,"p90":`...)
	b = strconv.AppendInt(b, h.Quantile(0.90), 10)
	b = append(b, `,"p99":`...)
	b = strconv.AppendInt(b, h.Quantile(0.99), 10)
	b = append(b, `,"buckets":[`...)
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, '[')
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, c, 10)
		b = append(b, ']')
	}
	b = append(b, "]}"...)
	return b, nil
}

// UnmarshalJSON restores a histogram from its MarshalJSON form. The
// derived quantile fields are ignored (they are recomputed from buckets).
func (h *Hist) UnmarshalJSON(data []byte) error {
	var raw struct {
		N       int64      `json:"n"`
		Sum     int64      `json:"sum"`
		Min     int64      `json:"min"`
		Max     int64      `json:"max"`
		Buckets [][2]int64 `json:"buckets"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	*h = Hist{n: raw.N, sum: raw.Sum, min: raw.Min, max: raw.Max}
	if raw.N == 0 {
		h.min, h.max = math.MaxInt64, -1
	}
	for _, bc := range raw.Buckets {
		if bc[0] < 0 || bc[0] >= numHistBuckets {
			return fmt.Errorf("obs: histogram bucket index %d out of range", bc[0])
		}
		h.counts[bc[0]] = bc[1]
	}
	return nil
}
