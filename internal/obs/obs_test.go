package obs

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

func TestRingFillsInOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Record(Event{At: units.Time(i), Kind: KindMarkCE, Flow: -1})
	}
	if r.Len() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 3/0", r.Len(), r.Dropped())
	}
	for i, e := range r.Events() {
		if e.At != units.Time(i) {
			t.Fatalf("event %d at %v, want %v", i, e.At, units.Time(i))
		}
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: units.Time(i), Kind: KindMarkUE, Flow: -1})
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, want := range []units.Time{6, 7, 8, 9} {
		if evs[i].At != want {
			t.Fatalf("event %d at %v, want %v (oldest must be dropped first)", i, evs[i].At, want)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if got := cap(NewRing(0).buf); got != DefaultRingCap {
		t.Fatalf("default cap %d, want %d", got, DefaultRingCap)
	}
}

func TestJSONLDeterministicAndWellFormed(t *testing.T) {
	events := []Event{
		{At: 100, Kind: KindCtrlPause, Port: "T0[1]->L0", Prio: 0, Flow: -1},
		{At: 250, Kind: KindMarkCE, Port: "L0[2]->T2", Prio: 1, Flow: 7, Val: 210_000},
		{At: 300, Kind: KindRateChange, Flow: 3, Val: 20_000_000_000, Aux: 40_000_000_000},
		{At: 400, Kind: KindTCDState, Port: "L0[2]->T2", Flow: -1, Val: 2, Aux: 0},
	}
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical event sequences must encode byte-identically")
	}
	lines := strings.Split(strings.TrimRight(a.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines, want %d", len(lines), len(events))
	}
	if want := `{"t":100,"kind":"ctrl.pause","port":"T0[1]->L0","prio":0,"val":0,"aux":0}`; lines[0] != want {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want)
	}
	if want := `{"t":300,"kind":"cc.rate","prio":0,"flow":3,"val":20000000000,"aux":40000000000}`; lines[2] != want {
		t.Fatalf("line 2:\n got %s\nwant %s", lines[2], want)
	}
}

func TestKindStringsCovered(t *testing.T) {
	for k := KindNone; k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render as unknown")
	}
}

func TestRegistryCanonicalKeysAndJSON(t *testing.T) {
	reg := NewRegistry()
	// Label order must not matter: both calls hit the same cell.
	reg.Counter("tx_bytes", "port", "P2", "prio", "0").Add(10)
	reg.Counter("tx_bytes", "prio", "0", "port", "P2").Add(5)
	reg.Gauge("queue_bytes", "port", "P3").Set(1.5)
	if got := reg.Counter("tx_bytes", "port", "P2", "prio", "0").Value(); got != 15 {
		t.Fatalf("counter=%d, want 15 (label order must canonicalize)", got)
	}
	if reg.Len() != 2 {
		t.Fatalf("len=%d, want 2", reg.Len())
	}
	var a, b bytes.Buffer
	if err := reg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("registry export must be deterministic")
	}
	if !strings.Contains(a.String(), `"tx_bytes{port=P2,prio=0}": 15`) {
		t.Fatalf("export missing canonical counter key:\n%s", a.String())
	}
}

func TestProgressTicksOnSimClock(t *testing.T) {
	s := sim.New()
	var out bytes.Buffer
	AttachProgress(s, 10*units.Microsecond, &out)
	// Some work for the ticker to interleave with.
	for i := 1; i <= 5; i++ {
		s.At(units.Time(i)*8*units.Microsecond, func() {})
	}
	s.RunUntil(40 * units.Microsecond)
	ticks := strings.Count(out.String(), "progress: sim=")
	if ticks != 4 {
		t.Fatalf("%d progress lines, want 4 (every 10us until 40us):\n%s", ticks, out.String())
	}
	if !strings.Contains(out.String(), "pending=") {
		t.Fatal("progress line must report heap depth")
	}
}

func TestFuncRecorder(t *testing.T) {
	var got []Event
	var rec Recorder = Func(func(e Event) { got = append(got, e) })
	rec.Record(Event{At: 1, Kind: KindCNP, Flow: 2, Val: 1})
	if len(got) != 1 || got[0].Kind != KindCNP {
		t.Fatalf("func recorder got %v", got)
	}
}
