package obs

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// SpillOptions tunes a Spill sink. The zero value spills uncompressed
// with a 64 MB chunk size, no total cap and a 4096-event buffer.
type SpillOptions struct {
	// ChunkBytes rotates to a new chunk file once the current one exceeds
	// this many encoded bytes (default 64 MB; encoded size is measured
	// before compression so chunk boundaries are deterministic).
	ChunkBytes int64
	// MaxBytes stops recording (counting drops) once this many total
	// encoded bytes have been spilled; 0 = unlimited. The cap keeps a
	// runaway run from filling the disk; the oldest events are the ones
	// kept, matching how trace consumers replay from the start.
	MaxBytes int64
	// Gzip compresses each chunk (name the output *.jsonl.gz).
	Gzip bool
	// BufEvents is the in-memory buffer flushed as one batch (default
	// 4096 events, ~300 KB); it bounds trace memory regardless of run
	// length.
	BufEvents int
}

func (o *SpillOptions) fill() {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 64 << 20
	}
	if o.BufEvents <= 0 {
		o.BufEvents = 4096
	}
}

// Spill is a Recorder that streams events to disk as JSONL instead of
// holding the run in RAM: events gather in a fixed buffer and flush in
// batches to size-bounded chunk files (path, path.001, path.002, ...),
// optionally gzip-compressed. The first chunk is written to the given
// path itself, so a run that fits one chunk produces exactly the file
// the old in-memory exporter did, byte for byte.
//
// Like every Recorder it is single-threaded; Close flushes and reports
// the first write error encountered.
type Spill struct {
	path string
	opt  SpillOptions

	buf  []Event
	line []byte

	f  *os.File
	zw *gzip.Writer
	bw *bufio.Writer

	chunk      int
	chunkBytes int64
	totalBytes int64
	written    uint64
	dropped    uint64
	err        error
	closed     bool
}

// NewSpill opens a spill sink writing its first chunk to path.
func NewSpill(path string, opt SpillOptions) (*Spill, error) {
	opt.fill()
	s := &Spill{path: path, opt: opt, buf: make([]Event, 0, opt.BufEvents)}
	if err := s.openChunk(); err != nil {
		return nil, err
	}
	return s, nil
}

// chunkPath names chunk i: the base path for chunk 0, then numbered
// suffixes appended after the full name (x.jsonl, x.jsonl.001, ...).
func (s *Spill) chunkPath(i int) string {
	if i == 0 {
		return s.path
	}
	return fmt.Sprintf("%s.%03d", s.path, i)
}

func (s *Spill) openChunk() error {
	f, err := os.Create(s.chunkPath(s.chunk))
	if err != nil {
		s.err = err
		return err
	}
	s.f = f
	var w io.Writer = f
	if s.opt.Gzip {
		s.zw = gzip.NewWriter(f)
		w = s.zw
	}
	s.bw = bufio.NewWriter(w)
	s.chunkBytes = 0
	return nil
}

func (s *Spill) closeChunk() error {
	var first error
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if s.zw != nil {
		if err := s.zw.Close(); err != nil && first == nil {
			first = err
		}
		s.zw = nil
	}
	if s.f != nil {
		if err := s.f.Close(); err != nil && first == nil {
			first = err
		}
		s.f = nil
	}
	s.bw = nil
	return first
}

// Record implements Recorder. Steady state it appends into the
// preallocated buffer; every BufEvents records it encodes and writes the
// batch.
func (s *Spill) Record(e Event) {
	if s.err != nil || s.closed || s.capped() {
		s.dropped++
		return
	}
	s.buf = append(s.buf, e)
	if len(s.buf) >= s.opt.BufEvents {
		s.flush()
	}
}

func (s *Spill) capped() bool {
	return s.opt.MaxBytes > 0 && s.totalBytes >= s.opt.MaxBytes
}

func (s *Spill) flush() {
	if s.err != nil {
		s.buf = s.buf[:0]
		return
	}
	for i := range s.buf {
		if s.capped() {
			s.dropped += uint64(len(s.buf) - i)
			break
		}
		s.line = s.buf[i].appendJSONL(s.line[:0])
		if _, err := s.bw.Write(s.line); err != nil {
			s.err = err
			break
		}
		n := int64(len(s.line))
		s.chunkBytes += n
		s.totalBytes += n
		s.written++
		if s.chunkBytes >= s.opt.ChunkBytes {
			if err := s.closeChunk(); err != nil && s.err == nil {
				s.err = err
				break
			}
			s.chunk++
			if err := s.openChunk(); err != nil {
				break
			}
		}
	}
	s.buf = s.buf[:0]
}

// Close flushes buffered events and closes the current chunk. It is
// idempotent and returns the first error seen over the sink's lifetime.
func (s *Spill) Close() error {
	if s.closed {
		return s.err
	}
	s.flush()
	s.closed = true
	if err := s.closeChunk(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Written reports events successfully encoded to disk.
func (s *Spill) Written() uint64 { return s.written }

// Dropped reports events discarded after an error or the size cap.
func (s *Spill) Dropped() uint64 { return s.dropped }

// Chunks reports how many chunk files were started.
func (s *Spill) Chunks() int { return s.chunk + 1 }

// Bytes reports total encoded (pre-compression) bytes spilled.
func (s *Spill) Bytes() int64 { return s.totalBytes }

// Err reports the first write error (nil when healthy).
func (s *Spill) Err() error { return s.err }
