package obs

import (
	"bufio"
	"io"
	"strconv"
)

// Ring is a bounded event buffer: recording past capacity overwrites the
// oldest event. The bound keeps long runs from accumulating unbounded
// trace memory while preserving the most recent window, which is where a
// deadlock or pause storm under investigation usually is.
type Ring struct {
	buf     []Event
	head    int // index of the oldest event once the buffer wrapped
	dropped uint64
}

// DefaultRingCap is the Ring capacity used when none is given (~64 MB of
// events at the current Event size).
const DefaultRingCap = 1 << 20

// NewRing builds a ring holding at most capacity events (DefaultRingCap
// if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record implements Recorder.
func (r *Ring) Record(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
}

// Len reports the number of buffered events.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped reports how many events were overwritten by newer ones.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the buffered events in recording order (oldest first).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// WriteJSONL writes the buffered events to w, one JSON object per line,
// oldest first.
func (r *Ring) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Events())
}

// WriteJSONL encodes events as JSON lines. The encoding is hand-rolled
// with a fixed field order so that identical event sequences produce
// byte-identical output (the determinism the trace tests assert).
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range events {
		line = e.appendJSONL(line[:0])
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendJSONL renders one event as a JSON line. Port labels are
// simulator-generated (node names, brackets, arrows) and contain no
// characters that need JSON escaping.
func (e Event) appendJSONL(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(e.At), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, '"')
	if e.Port != "" {
		b = append(b, `,"port":"`...)
		b = append(b, e.Port...)
		b = append(b, '"')
	}
	b = append(b, `,"prio":`...)
	b = strconv.AppendInt(b, int64(e.Prio), 10)
	if e.Flow >= 0 {
		b = append(b, `,"flow":`...)
		b = strconv.AppendInt(b, e.Flow, 10)
	}
	b = append(b, `,"val":`...)
	b = strconv.AppendInt(b, e.Val, 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendInt(b, e.Aux, 10)
	b = append(b, "}\n"...)
	return b
}
