package obs

import (
	"math"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

func TestWindowSeriesBasicFold(t *testing.T) {
	s := NewWindowSeries(10, 4)
	s.Observe(0, 1)
	s.Observe(5, 3)
	s.Observe(12, 10)
	wins := s.Windows()
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	w0 := wins[0]
	if w0.Index != 0 || w0.Count != 2 || w0.Sum != 4 || w0.Min != 1 || w0.Max != 3 || w0.Mean() != 2 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if wins[1].Index != 1 || wins[1].Count != 1 || wins[1].Mean() != 10 {
		t.Fatalf("window 1 = %+v", wins[1])
	}
	f := s.Fold()
	if f.Count != 3 || f.Min != 1 || f.Max != 10 {
		t.Fatalf("fold = %+v", f)
	}
	if math.Abs(f.Mean-14.0/3) > 1e-9 {
		t.Fatalf("fold mean = %v, want %v", f.Mean, 14.0/3)
	}
}

// TestWindowSeriesRotation: the ring holds the newest Cap windows; older
// windows are evicted and late observations into them count as dropped.
func TestWindowSeriesRotation(t *testing.T) {
	s := NewWindowSeries(10, 4)
	for i := 0; i < 10; i++ {
		s.Observe(units.Time(i*10), float64(i))
	}
	wins := s.Windows()
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want ring cap 4", len(wins))
	}
	for i, w := range wins {
		wantIdx := int64(6 + i)
		if w.Index != wantIdx || w.Count != 1 || w.Sum != float64(wantIdx) {
			t.Fatalf("window %d = %+v, want index %d", i, w, wantIdx)
		}
	}
	if s.Evicted() == 0 {
		t.Fatal("rotation evicted no windows")
	}
	// A sample far behind the retained ring is dropped, not misfiled.
	before := s.Fold().Count
	s.Observe(0, 99)
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped())
	}
	if got := s.Fold().Count; got != before {
		t.Fatalf("dropped sample leaked into the fold: count %d -> %d", before, got)
	}
	// The whole-run fold still covers every accepted observation, not
	// just the retained windows.
	if f := s.Fold(); f.Count != 10 || f.Min != 0 || f.Max != 9 {
		t.Fatalf("fold = %+v, want count 10 min 0 max 9", f)
	}
}

// TestWindowSeriesForwardJump: a jump of more than one ring length lands
// in a fresh window and the skipped range stays empty.
func TestWindowSeriesForwardJump(t *testing.T) {
	s := NewWindowSeries(10, 4)
	s.Observe(0, 1)
	s.Observe(1000, 2) // window 100, 99 windows ahead
	wins := s.Windows()
	if len(wins) != 1 || wins[0].Index != 100 || wins[0].Count != 1 {
		t.Fatalf("windows after jump = %+v", wins)
	}
	if s.Fold().Count != 2 {
		t.Fatalf("fold count = %d, want 2", s.Fold().Count)
	}
}

func TestWindowSeriesP99FromHist(t *testing.T) {
	s := NewWindowSeries(units.Microsecond, 8)
	for i := 1; i <= 1000; i++ {
		s.Observe(units.Time(i), float64(i))
	}
	p99 := s.Fold().P99
	if p99 < 990 || p99 > 990*(1+1.0/histSubCount)+1 {
		t.Fatalf("p99 = %v, want ~990 within bucket resolution", p99)
	}
}

func TestWindowSeriesObserveZeroAlloc(t *testing.T) {
	s := NewWindowSeries(10, 16)
	at := units.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		s.Observe(at, float64(at))
		at += 7
	}); n != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", n)
	}
}

func TestWindowSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindowSeries(0, ...) did not panic")
		}
	}()
	NewWindowSeries(0, 4)
}
