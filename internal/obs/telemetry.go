package obs

import (
	"sort"

	"github.com/tcdnet/tcd/internal/units"
)

// Telemetry derives the paper's headline distributions from the event
// stream with constant memory: log-bucketed histograms for flow
// completion times, PFC pause and CBFC stall durations and CNP/mark
// inter-arrival gaps, plus a windowed aggregate of sampled queue depth.
// It implements Recorder and forwards every event to an optional inner
// recorder (ring or spill sink), so it composes with event tracing.
//
// State is O(ports): the only per-key storage is the open pause/stall
// start time per (port, priority). Everything else is fixed-size.
type Telemetry struct {
	// FCT holds flow completion times in picoseconds.
	FCT *Hist
	// QueueDepth holds sampled per-port queue occupancy in bytes.
	QueueDepth *Hist
	// PauseDur / StallDur hold PFC pause and CBFC credit-stall durations
	// in picoseconds (closed intervals only; a pause still open at the
	// horizon is not counted).
	PauseDur *Hist
	StallDur *Hist
	// CNPGap / MarkGap hold inter-arrival gaps (ps) between successive
	// congestion notifications and CE/UE marks anywhere in the fabric.
	CNPGap  *Hist
	MarkGap *Hist
	// QueueWin is the windowed time series of sampled queue depth.
	QueueWin *WindowSeries
	// QueueSampleEvery is the queue-depth sampling interval the rig's
	// sampler uses (default 10 us).
	QueueSampleEvery units.Time

	pauseStart map[gateKey]units.Time
	stallStart map[gateKey]units.Time
	lastCNP    units.Time
	haveCNP    bool
	lastMark   units.Time
	haveMark   bool

	next Recorder
}

type gateKey struct {
	port string
	prio uint8
}

// TelemetryOptions tunes the collector; the zero value is the default.
type TelemetryOptions struct {
	// QueueWindow is the queue-depth window width (default 100 us).
	QueueWindow units.Time
	// QueueWindows is the retained window count (default 256).
	QueueWindows int
	// QueueSampleEvery is the sampling interval (default 10 us).
	QueueSampleEvery units.Time
}

// NewTelemetry builds a collector forwarding to next (nil for none).
func NewTelemetry(next Recorder) *Telemetry {
	return NewTelemetryOpts(next, TelemetryOptions{})
}

// NewTelemetryOpts builds a collector with explicit window parameters.
func NewTelemetryOpts(next Recorder, opt TelemetryOptions) *Telemetry {
	if opt.QueueWindow <= 0 {
		opt.QueueWindow = 100 * units.Microsecond
	}
	if opt.QueueWindows <= 0 {
		opt.QueueWindows = DefaultWindowCount
	}
	if opt.QueueSampleEvery <= 0 {
		opt.QueueSampleEvery = 10 * units.Microsecond
	}
	return &Telemetry{
		FCT:              NewHist(),
		QueueDepth:       NewHist(),
		PauseDur:         NewHist(),
		StallDur:         NewHist(),
		CNPGap:           NewHist(),
		MarkGap:          NewHist(),
		QueueWin:         NewWindowSeries(opt.QueueWindow, opt.QueueWindows),
		QueueSampleEvery: opt.QueueSampleEvery,
		pauseStart:       make(map[gateKey]units.Time),
		stallStart:       make(map[gateKey]units.Time),
		next:             next,
	}
}

// Chain sets the inner recorder (events are forwarded to it after
// folding) and returns the telemetry itself as the Recorder to install.
func (t *Telemetry) Chain(next Recorder) Recorder {
	t.next = next
	return t
}

// Record implements Recorder. Steady state it does not allocate: the
// pause/stall maps only grow until every gate has been seen once.
func (t *Telemetry) Record(e Event) {
	switch e.Kind {
	case KindFlowDone:
		t.FCT.Observe(e.Val)
	case KindPauseOn:
		t.pauseStart[gateKey{e.Port, e.Prio}] = e.At
	case KindPauseOff:
		k := gateKey{e.Port, e.Prio}
		if start, ok := t.pauseStart[k]; ok {
			t.PauseDur.Observe(int64(e.At - start))
			delete(t.pauseStart, k)
		}
	case KindCreditExhausted:
		t.stallStart[gateKey{e.Port, e.Prio}] = e.At
	case KindCreditGrant:
		k := gateKey{e.Port, e.Prio}
		if start, ok := t.stallStart[k]; ok {
			t.StallDur.Observe(int64(e.At - start))
			delete(t.stallStart, k)
		}
	case KindCNP:
		if t.haveCNP {
			t.CNPGap.Observe(int64(e.At - t.lastCNP))
		}
		t.lastCNP, t.haveCNP = e.At, true
	case KindMarkCE, KindMarkUE:
		if t.haveMark {
			t.MarkGap.Observe(int64(e.At - t.lastMark))
		}
		t.lastMark, t.haveMark = e.At, true
	}
	if t.next != nil {
		t.next.Record(e)
	}
}

// ObserveQueue folds one queue-depth sample (bytes) at simulated time
// at; the rig's sampler calls it for every port at QueueSampleEvery.
func (t *Telemetry) ObserveQueue(at units.Time, bytes int64) {
	t.QueueDepth.Observe(bytes)
	t.QueueWin.Observe(at, float64(bytes))
}

// Hists returns the collector's histograms under their canonical export
// names (values in ps for durations/gaps, bytes for queue depth).
func (t *Telemetry) Hists() map[string]*Hist {
	return map[string]*Hist{
		"fct_ps":       t.FCT,
		"queue_bytes":  t.QueueDepth,
		"pause_dur_ps": t.PauseDur,
		"stall_dur_ps": t.StallDur,
		"cnp_gap_ps":   t.CNPGap,
		"mark_gap_ps":  t.MarkGap,
	}
}

// FoldInto exports per-histogram summary gauges (count plus
// min/mean/p50/p99/max) into a metrics registry under hist_<name>_*
// keys, in sorted name order so the export stays deterministic.
func (t *Telemetry) FoldInto(reg *Registry) {
	hs := t.Hists()
	names := make([]string, 0, len(hs))
	for n := range hs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hs[n]
		reg.Gauge("hist_" + n + "_count").Set(float64(h.Count()))
		reg.Gauge("hist_" + n + "_min").Set(float64(h.Min()))
		reg.Gauge("hist_" + n + "_mean").Set(h.Mean())
		reg.Gauge("hist_" + n + "_p50").Set(float64(h.Quantile(0.5)))
		reg.Gauge("hist_" + n + "_p99").Set(float64(h.Quantile(0.99)))
		reg.Gauge("hist_" + n + "_max").Set(float64(h.Max()))
	}
}
