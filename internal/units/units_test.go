package units

import (
	"testing"
	"testing/quick"
)

func TestTxTimeExactAtPaperRates(t *testing.T) {
	cases := []struct {
		b    ByteSize
		r    Rate
		want Time
	}{
		{1000, 40 * Gbps, 200 * Nanosecond},
		{1000, 100 * Gbps, 80 * Nanosecond},
		{1000, 200 * Gbps, 40 * Nanosecond},
		{64 * KB, 40 * Gbps, 12800 * Nanosecond},
		{1, 8 * BitPerSecond, Second},
		{0, 40 * Gbps, 0},
	}
	for _, c := range cases {
		if got := TxTime(c.b, c.r); got != c.want {
			t.Errorf("TxTime(%v, %v) = %v, want %v", c.b, c.r, got, c.want)
		}
	}
}

func TestTxTimeZeroRate(t *testing.T) {
	if got := TxTime(1000, 0); got != Forever {
		t.Errorf("TxTime at zero rate = %v, want Forever", got)
	}
}

func TestTxTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps: 8/3 s = 2.666... s, must round up.
	got := TxTime(1, 3)
	if got <= 2*Second+666*Millisecond || got > 2*Second+667*Millisecond {
		t.Errorf("TxTime(1B, 3bps) = %v, want ~2.6667s rounded up", got)
	}
}

func TestBytesIn(t *testing.T) {
	// 40 Gbps for 1 us = 5000 bytes.
	if got := BytesIn(Microsecond, 40*Gbps); got != 5000 {
		t.Errorf("BytesIn(1us, 40Gbps) = %v, want 5000", got)
	}
	if got := BytesIn(0, 40*Gbps); got != 0 {
		t.Errorf("BytesIn(0) = %v, want 0", got)
	}
	// A long window must not overflow: 10 s at 200 Gbps = 250 GB.
	if got := BytesIn(10*Second, 200*Gbps); got != 250*1000*MB {
		t.Errorf("BytesIn(10s, 200Gbps) = %v, want 250GB", got)
	}
}

func TestRateOf(t *testing.T) {
	// 5000 bytes in 1 us = 40 Gbps.
	got := RateOf(5000, Microsecond)
	if got != 40*Gbps {
		t.Errorf("RateOf(5000B, 1us) = %v, want 40Gbps", got)
	}
	if got := RateOf(100, 0); got != 0 {
		t.Errorf("RateOf with zero duration = %v, want 0", got)
	}
}

// Property: for positive sizes and rates, TxTime is long enough that the
// same rate delivers at least the size back (round-trip consistency).
func TestTxTimeBytesInRoundTrip(t *testing.T) {
	f := func(b uint16, rSel uint8) bool {
		size := ByteSize(b) + 1
		rates := []Rate{10 * Gbps, 40 * Gbps, 100 * Gbps, 200 * Gbps, 1 * Gbps}
		r := rates[int(rSel)%len(rates)]
		d := TxTime(size, r)
		return BytesIn(d, r) >= size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TxTime is monotone in size.
func TestTxTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := ByteSize(a), ByteSize(b)
		if x > y {
			x, y = y, x
		}
		return TxTime(x, 40*Gbps) <= TxTime(y, 40*Gbps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{(34400 * Nanosecond).String(), "34.4us"},
		{(1600 * Microsecond).String(), "1.6ms"},
		{(2 * Second).String(), "2s"},
		{(500 * Picosecond).String(), "500ps"},
		{(-200 * Nanosecond).String(), "-200ns"},
		{(40 * Gbps).String(), "40Gbps"},
		{(5 * Mbps).String(), "5Mbps"},
		{(320 * KB).String(), "320KB"},
		{(64 * Byte).String(), "64B"},
		{(10 * MB).String(), "10MB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestConversions(t *testing.T) {
	if (250 * Microsecond).Seconds() != 0.00025 {
		t.Error("Seconds conversion wrong")
	}
	if (34400 * Nanosecond).Micros() != 34.4 {
		t.Error("Micros conversion wrong")
	}
	if (3 * Millisecond).Millis() != 3 {
		t.Error("Millis conversion wrong")
	}
	if FromSeconds(0.001) != Millisecond {
		t.Error("FromSeconds conversion wrong")
	}
	if (40 * Gbps).Gigabits() != 40 {
		t.Error("Gigabits conversion wrong")
	}
	if (1 * KB).Bits() != 8000 {
		t.Error("Bits conversion wrong")
	}
}

func TestTxTimeLargeMessages(t *testing.T) {
	// Overflow regression: multi-MB messages must serialize positively
	// and proportionally.
	got := TxTime(10*MB, 40*Gbps)
	want := 2 * Millisecond // 80e6 bits / 40e9 bps = 2 ms
	if got != want {
		t.Errorf("TxTime(10MB, 40Gbps) = %v, want %v", got, want)
	}
	if TxTime(1700*KB, 40*Gbps) <= 0 {
		t.Error("TxTime went non-positive for a 1.7MB message")
	}
	// 1 GB at 10 Gbps = 0.8 s.
	if got := TxTime(1000*MB, 10*Gbps); got != 800*Millisecond {
		t.Errorf("TxTime(1GB, 10Gbps) = %v, want 800ms", got)
	}
}

func TestBytesInSubSecondHighRate(t *testing.T) {
	// Overflow regression: 20 ms at 100 Gbps = 250 MB.
	if got := BytesIn(20*Millisecond, 100*Gbps); got != 250*MB {
		t.Errorf("BytesIn(20ms, 100Gbps) = %v, want 250MB", got)
	}
}
