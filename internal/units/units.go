// Package units defines the physical quantities used throughout the
// simulator: simulated time, link rates and byte counts.
//
// Time is kept in integer picoseconds so that the serialization time of an
// MTU-sized frame is exact at every link speed the paper uses (40, 100 and
// 200 Gbps): 1000 bytes at 40 Gbps is exactly 200 ns. Integer time makes
// every run bit-reproducible.
package units

import (
	"fmt"
	mathbits "math/bits"
)

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel time earlier than any event; it is used for
// "this has not happened yet" timestamps such as the end of the last
// OFF period on a port that has never been paused.
const Never Time = -1 << 62

// Forever is a sentinel time later than any event.
const Forever Time = 1<<62 - 1

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit, e.g. "34.4us" or "1.6ms".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	switch {
	case t >= Second:
		return fmt.Sprintf("%s%.6gs", neg, float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%s%.6gns", neg, float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%s%dps", neg, int64(t))
	}
}

// FromSeconds converts a floating-point number of seconds to Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Rate is a link or flow rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1e3
	Mbps         Rate = 1e6
	Gbps         Rate = 1e9
)

// Gigabits reports r in Gbps.
func (r Rate) Gigabits() float64 { return float64(r) / float64(Gbps) }

// String renders the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.6gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.6gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.6gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// ByteSize is a quantity of bytes (packet sizes, queue depths, buffers).
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1000 * Byte
	KiB  ByteSize = 1024 * Byte
	MB   ByteSize = 1000 * KB
	MiB  ByteSize = 1024 * KiB
)

// Bits reports the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// String renders the size with an adaptive unit.
func (b ByteSize) String() string {
	switch {
	case b >= MB:
		return fmt.Sprintf("%.6gMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.6gKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// TxTime reports how long transmitting b bytes takes at rate r.
// It rounds up to a whole picosecond so a transmission never finishes
// earlier than physics allows.
func TxTime(b ByteSize, r Rate) Time {
	if r <= 0 {
		return Forever
	}
	if b <= 0 {
		return 0
	}
	// ceil(bits * 1e12 / r). The product exceeds 63 bits already for a
	// ~1.2 MB message, so compute it in 128 bits.
	bits64 := uint64(b.Bits())
	hi, lo := mathbits.Mul64(bits64, uint64(Second))
	q, rem := mathbits.Div64(hi, lo, uint64(r))
	if rem > 0 {
		q++
	}
	return Time(q)
}

// BytesIn reports how many whole bytes rate r delivers in duration d.
func BytesIn(d Time, r Rate) ByteSize {
	if d <= 0 || r <= 0 {
		return 0
	}
	// bytes = d * r / (8 * 1e12). The sub-second remainder times the rate
	// can exceed 63 bits (20 ms at 100 Gbps already does), so use a
	// 128-bit intermediate product.
	q := int64(d) / int64(Second)
	rem := uint64(int64(d) % int64(Second))
	hi, lo := mathbits.Mul64(rem, uint64(r))
	fracBits, _ := mathbits.Div64(hi, lo, uint64(Second))
	total := q*int64(r) + int64(fracBits)
	return ByteSize(total / 8)
}

// RateOf reports the average rate achieved by delivering b bytes in d.
func RateOf(b ByteSize, d Time) Rate {
	if d <= 0 {
		return 0
	}
	secs := float64(d) / float64(Second)
	return Rate(float64(b.Bits()) / secs)
}
