// Package cbfc implements InfiniBand Credit-Based Flow Control.
//
// Per the InfiniBand specification (and §2.2 of the paper): the downstream
// side of a link maintains an Adjusted Blocks Received (ABR) register and
// periodically — every Tc — sends a Flow Control Credit Limit (FCCL)
// message equal to ABR plus the buffer space it can currently accept. The
// upstream side maintains a Flow Control Total Blocks Sent (FCTBS)
// register and may transmit a packet only while FCTBS + size ≤ FCCL.
//
// The *periodicity* of FCCL is what confuses FECN-based detection (§3.1)
// and what bounds the ON period of a credit-starved port to at most Tc
// (Eqn 4), which TCD exploits. Credits are accounted in bytes; the spec's
// 64-byte blocks are a granularity detail below this model's fidelity.
package cbfc

import (
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Config parameterizes CBFC on every link of a fabric.
type Config struct {
	// Buffer is the downstream ingress buffer per input port per virtual
	// lane. The paper uses 280 KB for its InfiniBand switches.
	Buffer units.ByteSize
	// Tc is the FCCL update period. The spec bounds it by 65536 symbol
	// times; the paper's testbed uses 60 us.
	Tc units.Time
	// Stagger, if non-nil, offsets the first FCCL of meter i to avoid a
	// synchronized full-network credit pulse at t=0.
	Stagger func(i int) units.Time
}

// DefaultConfig returns the paper's InfiniBand parameters: 280 KB ingress
// buffers. The paper (§4.4) requires B > C·Tc for CBFC to sustain line
// rate; at 40 Gbps that caps Tc below 56 us (the spec's ceiling of 65536
// symbol times is an upper bound, not a recommendation), so the default
// update period is 40 us, leaving headroom for the control-loop delay.
func DefaultConfig() Config {
	return Config{
		Buffer: 280 * units.KB,
		Tc:     40 * units.Microsecond,
	}
}

// Gate is the upstream egress side: FCTBS plus the latest FCCL per VL.
type Gate struct {
	port  *fabric.Port
	fctbs []int64
	fccl  []int64
	// starved tracks, per VL, whether the last refusal was reported, so
	// exhaustion/grant events record the edges and not every CanSend.
	starved []bool
	// starvedSince records when the current starvation began
	// (units.Forever while credits last) — the credit-stall analogue of
	// PFC's pausedSince, used for initial-trigger attribution.
	starvedSince []units.Time
	// Updates counts FCCL messages received.
	Updates uint64
}

// CanSend implements fabric.TxGate.
func (g *Gate) CanSend(vl uint8, size units.ByteSize) bool {
	if g.fctbs[vl]+int64(size) <= g.fccl[vl] {
		return true
	}
	if !g.starved[vl] {
		g.starved[vl] = true
		g.starvedSince[vl] = g.port.Now()
		if rec := g.port.Recorder(); rec != nil {
			rec.Record(obs.Event{
				At: g.port.Now(), Kind: obs.KindCreditExhausted,
				Port: g.port.Label(), Prio: vl, Flow: -1, Val: g.Credits(vl),
			})
		}
	}
	return false
}

// OnSend implements fabric.TxGate.
func (g *Gate) OnSend(vl uint8, size units.ByteSize) {
	g.fctbs[vl] += int64(size)
}

// HandleCtrl implements fabric.TxGate.
func (g *Gate) HandleCtrl(now units.Time, f fabric.CtrlFrame) {
	if f.Kind != fabric.CtrlCredit {
		return
	}
	if f.FCCL > g.fccl[f.Prio] {
		g.fccl[f.Prio] = f.FCCL
		if g.starved[f.Prio] {
			g.starved[f.Prio] = false
			g.starvedSince[f.Prio] = units.Forever
			if rec := g.port.Recorder(); rec != nil {
				rec.Record(obs.Event{
					At: now, Kind: obs.KindCreditGrant,
					Port: g.port.Label(), Prio: f.Prio, Flow: -1, Val: g.Credits(f.Prio),
				})
			}
		}
		g.port.GateChanged()
	}
	g.Updates++
}

// Credits reports the currently available credit in bytes for one VL.
func (g *Gate) Credits(vl uint8) int64 { return g.fccl[vl] - g.fctbs[vl] }

// Starved reports whether the VL is currently out of credit (as of the
// last refused CanSend).
func (g *Gate) Starved(vl uint8) bool { return g.starved[vl] }

// StarvedSince reports when the current starvation of one VL began, or
// units.Forever if the VL has credit.
func (g *Gate) StarvedSince(vl uint8) units.Time { return g.starvedSince[vl] }

// Meter is the downstream ingress side: ABR, occupancy, and the periodic
// FCCL timer. The timer quiesces while the link is idle (no occupancy and
// no arrivals since the last update): an idle FCCL always grants the full
// buffer, so silence cannot starve the upstream, and the next arrival
// re-arms the period. This keeps event queues finite on idle networks
// without changing behaviour under load.
type Meter struct {
	port     *fabric.Port
	cfg      Config
	abr      []int64
	occ      []units.ByteSize
	reported []int64
	timer    *sim.Timer

	// MaxOcc is the maximum occupancy observed on any VL.
	MaxOcc units.ByteSize
	// UpdatesSent counts FCCL messages originated.
	UpdatesSent uint64
	// Violations counts arrivals that overflow the buffer (must stay zero:
	// CBFC is supposed to make overflow impossible).
	Violations uint64
}

// OnArrive implements fabric.RxMeter.
func (m *Meter) OnArrive(_ units.Time, pkt *packet.Packet) {
	vl := pkt.Priority
	m.abr[vl] += int64(pkt.Size)
	m.occ[vl] += pkt.Size
	if m.occ[vl] > m.MaxOcc {
		m.MaxOcc = m.occ[vl]
	}
	if m.occ[vl] > m.cfg.Buffer {
		m.Violations++
	}
	if !m.timer.Armed() {
		m.timer.Arm(m.cfg.Tc)
	}
}

// OnFree implements fabric.RxMeter.
func (m *Meter) OnFree(_ units.Time, pkt *packet.Packet) {
	vl := pkt.Priority
	m.occ[vl] -= pkt.Size
	if m.occ[vl] < 0 {
		panic("cbfc: negative ingress occupancy")
	}
}

// Occupancy reports the buffered bytes for one VL.
func (m *Meter) Occupancy(vl uint8) units.ByteSize { return m.occ[vl] }

func (m *Meter) sendUpdate() {
	active := false
	for vl := range m.abr {
		if m.occ[vl] > 0 || m.abr[vl] != m.reported[vl] {
			active = true
		}
		free := m.cfg.Buffer - m.occ[vl]
		if free < 0 {
			free = 0
		}
		m.port.SendCtrl(fabric.CtrlFrame{
			Kind: fabric.CtrlCredit,
			Prio: uint8(vl),
			FCCL: m.abr[vl] + int64(free),
		})
		m.reported[vl] = m.abr[vl]
	}
	m.UpdatesSent++
	if active {
		m.timer.Arm(m.cfg.Tc)
	}
}

// Install attaches CBFC to every link: a Gate on every egress port and a
// Meter on every ingress port — including host NICs, which must grant
// credits for the fabric to send to them at all. Host ingress occupancy
// returns to zero immediately (hosts consume at line rate), so receivers
// effectively always grant a full buffer.
//
// Every gate starts with one buffer's worth of credit, as negotiated at
// link initialization in the spec.
func Install(n *fabric.Network, cfg Config) {
	nPrio := n.Config().Priorities
	ports := n.Ports()
	// One backing array per field, subsliced per gate/meter, so the whole
	// fabric's credit state is contiguous — the credit-stall detector's
	// attribution pass and invariant sweeps walk arrays, not a heap
	// object per port.
	np := len(ports) * nPrio
	fctbs, fccl := make([]int64, np), make([]int64, np)
	starved, since := make([]bool, np), make([]units.Time, np)
	abr, reported := make([]int64, np), make([]int64, np)
	occ := make([]units.ByteSize, np)
	for i := range fccl {
		fccl[i] = int64(cfg.Buffer)
		since[i] = units.Forever
	}
	for i, p := range ports {
		lo, hi := i*nPrio, (i+1)*nPrio
		g := &Gate{
			port:  p,
			fctbs: fctbs[lo:hi], fccl: fccl[lo:hi],
			starved: starved[lo:hi], starvedSince: since[lo:hi],
		}
		p.AttachGate(g)
		m := &Meter{
			port:     p,
			cfg:      cfg,
			abr:      abr[lo:hi],
			occ:      occ[lo:hi],
			reported: reported[lo:hi],
		}
		m.timer = sim.NewTimer(n.Sched, m.sendUpdate)
		p.AttachMeter(m)
		phase := units.Time(0)
		if cfg.Stagger != nil {
			phase = cfg.Stagger(i)
		}
		m.timer.Arm(cfg.Tc + phase)
	}
}

// Meters returns all installed CBFC meters.
func Meters(n *fabric.Network) []*Meter {
	var out []*Meter
	for _, p := range n.Ports() {
		if m, ok := p.Meter().(*Meter); ok {
			out = append(out, m)
		}
	}
	return out
}
