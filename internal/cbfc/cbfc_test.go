package cbfc_test

import (
	"testing"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

func chain(extraSenders int, rate units.Rate, delay units.Time) (*sim.Scheduler, *fabric.Network, *host.Manager, *topo.Topology) {
	g := topo.New()
	sw0 := g.AddSwitch("sw0")
	sw1 := g.AddSwitch("sw1")
	h0 := g.AddHost("h0")
	r := g.AddHost("r")
	g.Connect(h0, sw0, rate, delay)
	g.Connect(sw0, sw1, rate, delay)
	g.Connect(r, sw1, rate, delay)
	for i := 0; i < extraSenders; i++ {
		e := g.AddHost("e" + string(rune('0'+i)))
		g.Connect(e, sw1, rate, delay)
	}
	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	routing.BuildShortestPath(g).Attach(n, routing.FirstPath())
	m := host.Install(n, host.DefaultConfig())
	return s, n, m, g
}

func TestUncongestedFlowRunsAtLineRateUnderCBFC(t *testing.T) {
	s, n, m, g := chain(0, 40*units.Gbps, units.Microsecond)
	cbfc.Install(n, cbfc.DefaultConfig())
	f := m.AddFlow(g.ID("h0"), g.ID("r"), units.MB, 0, host.FixedRate(40*units.Gbps))
	s.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	// Periodic credits must not throttle an uncongested path: FCT within
	// 10% of wire time.
	wire := units.TxTime(units.MB+1000*48, 40*units.Gbps)
	if f.FCT > wire+wire/10 {
		t.Errorf("CBFC throttled an idle path: FCT %v, wire %v", f.FCT, wire)
	}
	for _, mt := range cbfc.Meters(n) {
		if mt.Violations != 0 {
			t.Errorf("buffer violations: %d", mt.Violations)
		}
	}
}

func TestIncastIsLosslessUnderCBFC(t *testing.T) {
	s, n, m, g := chain(4, 40*units.Gbps, units.Microsecond)
	cfg := cbfc.Config{Buffer: 60 * units.KB, Tc: 20 * units.Microsecond}
	cbfc.Install(n, cfg)
	var flows []*host.Flow
	flows = append(flows, m.AddFlow(g.ID("h0"), g.ID("r"), 200*units.KB, 0, host.FixedRate(40*units.Gbps)))
	for i := 0; i < 4; i++ {
		flows = append(flows, m.AddFlow(g.ID("e"+string(rune('0'+i))), g.ID("r"), 200*units.KB, 0, host.FixedRate(40*units.Gbps)))
	}
	s.Run()
	for _, f := range flows {
		if !f.Done || f.BytesRxed() != 200*units.KB {
			t.Fatalf("flow %d incomplete: done=%v bytes=%v", f.ID, f.Done, f.BytesRxed())
		}
	}
	for _, mt := range cbfc.Meters(n) {
		if mt.Violations != 0 {
			t.Errorf("CBFC let the buffer overflow %d times (max occ %v)", mt.Violations, mt.MaxOcc)
		}
	}
}

func TestCreditStarvationCausesOnOff(t *testing.T) {
	s, n, m, g := chain(4, 40*units.Gbps, units.Microsecond)
	cfg := cbfc.Config{Buffer: 60 * units.KB, Tc: 20 * units.Microsecond}
	cbfc.Install(n, cfg)
	m.AddFlow(g.ID("h0"), g.ID("r"), 500*units.KB, 0, host.FixedRate(40*units.Gbps))
	for i := 0; i < 4; i++ {
		m.AddFlow(g.ID("e"+string(rune('0'+i))), g.ID("r"), 500*units.KB, 0, host.FixedRate(40*units.Gbps))
	}
	s.Run()
	// The sw0->sw1 egress must have starved for credit (spreading), and
	// so must h0's NIC.
	if n.PortToward(g.ID("sw0"), g.ID("sw1")).PauseTime == 0 {
		t.Error("credit starvation did not spread to sw0")
	}
	if n.HostPort(g.ID("h0")).PauseTime == 0 {
		t.Error("credit starvation did not spread to the host NIC")
	}
	for _, mt := range cbfc.Meters(n) {
		if mt.Occupancy(0) != 0 {
			t.Errorf("residual occupancy %v after drain", mt.Occupancy(0))
		}
	}
}

func TestCreditsNeverGoNegative(t *testing.T) {
	s, n, m, g := chain(2, 40*units.Gbps, units.Microsecond)
	cfg := cbfc.Config{Buffer: 40 * units.KB, Tc: 10 * units.Microsecond}
	cbfc.Install(n, cfg)
	m.AddFlow(g.ID("h0"), g.ID("r"), 300*units.KB, 0, host.FixedRate(40*units.Gbps))
	m.AddFlow(g.ID("e0"), g.ID("r"), 300*units.KB, 0, host.FixedRate(40*units.Gbps))
	m.AddFlow(g.ID("e1"), g.ID("r"), 300*units.KB, 0, host.FixedRate(40*units.Gbps))
	// Sample gates during the run.
	bad := false
	var probe func()
	probe = func() {
		for _, p := range n.Ports() {
			if gate, ok := p.Gate().(*cbfc.Gate); ok {
				if gate.Credits(0) < 0 {
					bad = true
				}
			}
		}
		if s.Pending() > 0 {
			s.After(5*units.Microsecond, probe)
		}
	}
	s.At(0, probe)
	s.RunUntil(10 * units.Millisecond)
	if bad {
		t.Error("gate over-sent beyond its credit limit")
	}
}

func TestFCCLPeriodicityUnderTraffic(t *testing.T) {
	s, n, m, g := chain(0, 40*units.Gbps, units.Microsecond)
	cfg := cbfc.Config{Buffer: 280 * units.KB, Tc: 50 * units.Microsecond}
	cbfc.Install(n, cfg)
	// ~1.05 ms of line-rate traffic: the receiving meter must send one
	// FCCL per Tc while active, then quiesce.
	f := m.AddFlow(g.ID("h0"), g.ID("r"), 5*units.MB, 0, host.FixedRate(40*units.Gbps))
	s.Run() // terminates: idle meters stop their timers
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	rMeter := n.HostPort(g.ID("r")).Meter().(*cbfc.Meter)
	// ≈ 1.05ms / 50us ≈ 21 updates (±2 for edge periods).
	if rMeter.UpdatesSent < 19 || rMeter.UpdatesSent > 24 {
		t.Errorf("receiver FCCL updates = %d over ~1.05ms, want ~21", rMeter.UpdatesSent)
	}
}

func TestIdleMetersQuiesce(t *testing.T) {
	s, n, _, _ := chain(0, 40*units.Gbps, units.Microsecond)
	cbfc.Install(n, cbfc.DefaultConfig())
	// With no traffic at all, the initial per-meter update fires once and
	// the event queue drains — Run terminates.
	s.Run()
	for _, mt := range cbfc.Meters(n) {
		if mt.UpdatesSent != 1 {
			t.Errorf("idle meter sent %d updates, want exactly 1", mt.UpdatesSent)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("events still pending after idle drain: %d", s.Pending())
	}
}

func TestStaggerOffsetsFirstUpdate(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	g.Connect(a, sw, units.Gbps, 0)
	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	cfg := cbfc.Config{
		Buffer:  10 * units.KB,
		Tc:      100 * units.Microsecond,
		Stagger: func(i int) units.Time { return units.Time(i) * units.Microsecond },
	}
	cbfc.Install(n, cfg)
	s.RunUntil(99 * units.Microsecond)
	for _, mt := range cbfc.Meters(n) {
		if mt.UpdatesSent != 0 {
			t.Error("update fired before Tc despite stagger")
		}
	}
	s.RunUntil(120 * units.Microsecond)
	for _, mt := range cbfc.Meters(n) {
		if mt.UpdatesSent != 1 {
			t.Errorf("updates = %d after first period, want 1", mt.UpdatesSent)
		}
	}
}

// Multi-VL: credits are tracked per virtual lane; starving one VL leaves
// the other flowing.
func TestPerVLCreditIsolation(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	g.Connect(a, sw, 40*units.Gbps, 0)
	s := sim.New()
	fc := fabric.DefaultConfig()
	fc.Priorities = 2
	n := fabric.New(s, g, fc)
	cbfc.Install(n, cbfc.Config{Buffer: 10 * units.KB, Tc: 100 * units.Microsecond})
	gate := n.HostPort(a).Gate().(*cbfc.Gate)
	if gate.Credits(0) != 10000 || gate.Credits(1) != 10000 {
		t.Fatalf("initial credits = %d/%d, want 10000 each", gate.Credits(0), gate.Credits(1))
	}
	gate.OnSend(0, 8*units.KB)
	if gate.CanSend(0, 4*units.KB) {
		t.Error("VL0 should be out of credit for 4KB")
	}
	if !gate.CanSend(1, 4*units.KB) {
		t.Error("VL1 should be unaffected by VL0 spending")
	}
	// A stale (lower) FCCL must not shrink the limit.
	gate.HandleCtrl(0, fabric.CtrlFrame{Kind: fabric.CtrlCredit, Prio: 0, FCCL: 5000})
	if gate.Credits(0) != 2000 {
		t.Errorf("stale FCCL changed credits: %d", gate.Credits(0))
	}
	gate.HandleCtrl(0, fabric.CtrlFrame{Kind: fabric.CtrlCredit, Prio: 0, FCCL: 18000})
	if gate.Credits(0) != 10000 {
		t.Errorf("fresh FCCL not applied: %d", gate.Credits(0))
	}
}
