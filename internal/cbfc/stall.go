// CBFC credit-stall detection: the InfiniBand analogue of PFC deadlock
// detection. A credit-wait cycle is a loop of egress ports each starved
// of credit because the downstream buffer its packets need is occupied
// by the next starved port's packets; since an occupied buffer never
// raises FCCL, the loop is permanent. The mechanics mirror
// pfc.DeadlockDetector — same fabric-level cycle search, with
// attribution by earliest credit starvation instead of earliest pause.

package cbfc

import (
	"strings"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// StallReport describes one detected credit-wait cycle.
type StallReport struct {
	// At is when the scan found the cycle.
	At units.Time
	// Ports are the cycle members' labels, in deterministic scan order.
	Ports []string
	// Trigger is the member whose starvation began earliest.
	Trigger string
	// Since is how long Trigger had been starved when the scan ran.
	Since units.Time
}

// StallDetector periodically scans for credit-wait cycles.
type StallDetector struct {
	net   *fabric.Network
	timer *sim.Timer
	every units.Time
	seen  map[string]bool

	// Reports lists each distinct cycle once, in detection order.
	Reports []StallReport
	// Scans counts completed scan ticks.
	Scans uint64
}

// DefaultScanEvery is the stall-scan period when none is given. It must
// comfortably exceed Tc: a healthy port can legitimately sit starved for
// up to one FCCL period, and scanning much faster than that only finds
// cycles a few ticks sooner.
const DefaultScanEvery = 200 * units.Microsecond

// AttachStallDetector starts a periodic credit-stall scan on the fabric.
func AttachStallDetector(n *fabric.Network, every units.Time) *StallDetector {
	if every <= 0 {
		every = DefaultScanEvery
	}
	d := &StallDetector{net: n, every: every, seen: make(map[string]bool)}
	d.timer = sim.NewTimer(n.Sched, d.scan)
	d.timer.Arm(every)
	return d
}

// Stop cancels the scan timer.
func (d *StallDetector) Stop() { d.timer.Cancel() }

// Stalled reports whether any cycle has been detected so far.
func (d *StallDetector) Stalled() bool { return len(d.Reports) > 0 }

func (d *StallDetector) scan() {
	d.Scans++
	for _, cyc := range d.net.WaitCycles() {
		d.report(cyc)
	}
	d.timer.Arm(d.every)
}

func (d *StallDetector) report(cyc []*fabric.Port) {
	now := d.net.Sched.Now()
	var (
		trigger *fabric.Port
		since   = units.Forever
		labels  = make([]string, 0, len(cyc))
	)
	for _, p := range cyc {
		g, ok := p.Gate().(*Gate)
		if !ok {
			return // not a CBFC fabric port; the PFC detector owns it
		}
		labels = append(labels, p.Label())
		for vl := range g.starved {
			if g.starved[vl] && g.starvedSince[vl] < since {
				since = g.starvedSince[vl]
				trigger = p
			}
		}
	}
	if trigger == nil {
		return
	}
	sig := strings.Join(labels, "|")
	if d.seen[sig] {
		return
	}
	d.seen[sig] = true
	d.Reports = append(d.Reports, StallReport{
		At: now, Ports: labels, Trigger: trigger.Label(), Since: now - since,
	})
	if rec := d.net.Config().Rec; rec != nil {
		rec.Record(obs.Event{
			At: now, Kind: obs.KindCreditStall, Port: trigger.Label(),
			Flow: -1, Val: int64(len(labels)), Aux: int64(now - since),
		})
	}
}
