package stats

import (
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Tracer samples registered probes at a fixed interval until a horizon,
// building one Series per probe. Figures 3, 4, 12, 13 and 20 are made of
// these series (queue length, sending rate, marking counters).
type Tracer struct {
	sched    *sim.Scheduler
	interval units.Time
	horizon  units.Time
	probes   []func() float64
	series   []*Series
	started  bool
	capN     int
	decims   int
}

// NewTracer builds a tracer sampling every interval until horizon. It
// panics on a non-positive interval: the sampling loop reschedules itself
// `interval` after each tick, so interval <= 0 would re-fire at the same
// sim time forever and the run would never reach its horizon.
func NewTracer(s *sim.Scheduler, interval, horizon units.Time) *Tracer {
	if interval <= 0 {
		panic("stats: NewTracer interval must be positive (a zero interval reschedules at the same sim time forever)")
	}
	return &Tracer{sched: s, interval: interval, horizon: horizon}
}

// Add registers a probe and returns its series.
func (t *Tracer) Add(name string, probe func() float64) *Series {
	s := &Series{Name: name}
	t.probes = append(t.probes, probe)
	t.series = append(t.series, s)
	return s
}

// SetCap bounds retained samples per series (0 = unlimited, the
// default). When a tick fills a series to the cap, every series is
// decimated in place — every other sample dropped — and the sampling
// interval doubles, so an arbitrarily long run retains at most cap
// samples per series while still covering its whole duration. Call
// before Start.
func (t *Tracer) SetCap(n int) { t.capN = n }

// Decimations reports how many times the tracer halved its series.
func (t *Tracer) Decimations() int { return t.decims }

// decimate halves every series in place (keeping even-index samples)
// and doubles the interval.
func (t *Tracer) decimate() {
	for _, s := range t.series {
		keep := (len(s.T) + 1) / 2
		for i := 0; i < keep; i++ {
			s.T[i] = s.T[2*i]
			s.V[i] = s.V[2*i]
		}
		s.T = s.T[:keep]
		s.V = s.V[:keep]
	}
	t.interval *= 2
	t.decims++
}

// Start schedules the sampling loop (call after registering probes).
func (t *Tracer) Start() {
	if t.started {
		return
	}
	t.started = true
	var tick func()
	tick = func() {
		now := t.sched.Now()
		for i, p := range t.probes {
			t.series[i].T = append(t.series[i].T, now)
			t.series[i].V = append(t.series[i].V, p())
		}
		if t.capN > 0 && len(t.series) > 0 && len(t.series[0].T) >= t.capN {
			t.decimate()
		}
		if now+t.interval <= t.horizon {
			t.sched.After(t.interval, tick)
		}
	}
	t.sched.At(t.sched.Now(), tick)
}

// Series returns all collected series in registration order.
func (t *Tracer) Series() []*Series { return t.series }

// RateProbe converts a cumulative byte counter into a rate (bits/s)
// sampled per interval — used for the "sending rate of port P2" panels.
func RateProbe(counter func() units.ByteSize, interval units.Time) func() float64 {
	last := counter()
	return func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(units.RateOf(delta, interval))
	}
}

// DeltaProbe converts a cumulative count into a per-interval increment —
// used for "marked packets per sample" panels.
func DeltaProbe(counter func() uint64) func() float64 {
	last := counter()
	return func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(delta)
	}
}
