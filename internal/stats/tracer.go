package stats

import (
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Tracer samples registered probes at a fixed interval until a horizon,
// building one Series per probe. Figures 3, 4, 12, 13 and 20 are made of
// these series (queue length, sending rate, marking counters).
type Tracer struct {
	sched    *sim.Scheduler
	interval units.Time
	horizon  units.Time
	probes   []func() float64
	series   []*Series
	started  bool
}

// NewTracer builds a tracer sampling every interval until horizon. It
// panics on a non-positive interval: the sampling loop reschedules itself
// `interval` after each tick, so interval <= 0 would re-fire at the same
// sim time forever and the run would never reach its horizon.
func NewTracer(s *sim.Scheduler, interval, horizon units.Time) *Tracer {
	if interval <= 0 {
		panic("stats: NewTracer interval must be positive (a zero interval reschedules at the same sim time forever)")
	}
	return &Tracer{sched: s, interval: interval, horizon: horizon}
}

// Add registers a probe and returns its series.
func (t *Tracer) Add(name string, probe func() float64) *Series {
	s := &Series{Name: name}
	t.probes = append(t.probes, probe)
	t.series = append(t.series, s)
	return s
}

// Start schedules the sampling loop (call after registering probes).
func (t *Tracer) Start() {
	if t.started {
		return
	}
	t.started = true
	var tick func()
	tick = func() {
		now := t.sched.Now()
		for i, p := range t.probes {
			t.series[i].T = append(t.series[i].T, now)
			t.series[i].V = append(t.series[i].V, p())
		}
		if now+t.interval <= t.horizon {
			t.sched.After(t.interval, tick)
		}
	}
	t.sched.At(t.sched.Now(), tick)
}

// Series returns all collected series in registration order.
func (t *Tracer) Series() []*Series { return t.series }

// RateProbe converts a cumulative byte counter into a rate (bits/s)
// sampled per interval — used for the "sending rate of port P2" panels.
func RateProbe(counter func() units.ByteSize, interval units.Time) func() float64 {
	last := counter()
	return func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(units.RateOf(delta, interval))
	}
}

// DeltaProbe converts a cumulative count into a per-interval increment —
// used for "marked packets per sample" panels.
func DeltaProbe(counter func() uint64) func() float64 {
	last := counter()
	return func() float64 {
		cur := counter()
		delta := cur - last
		last = cur
		return float64(delta)
	}
}
