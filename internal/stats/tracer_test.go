package stats

import (
	"testing"

	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// TestTracerCapBoundsMemory: with a cap set, an arbitrarily long run
// retains at most cap samples per series, still spanning the whole run.
func TestTracerCapBoundsMemory(t *testing.T) {
	sch := sim.New()
	horizon := 100 * units.Millisecond
	tr := NewTracer(sch, units.Microsecond, horizon) // 100k ticks uncapped
	tr.SetCap(64)
	a := tr.Add("a", func() float64 { return 1 })
	b := tr.Add("b", func() float64 { return 2 })
	tr.Start()
	sch.Run()

	for name, s := range map[string]*Series{"a": a, "b": b} {
		if len(s.T) > 64 {
			t.Fatalf("series %s retained %d samples, cap 64", name, len(s.T))
		}
		if len(s.T) < 32 {
			t.Fatalf("series %s retained only %d samples (over-decimated)", name, len(s.T))
		}
		if s.T[0] != 0 {
			t.Errorf("series %s lost its first sample: T[0]=%v", name, s.T[0])
		}
		// Coverage: the last retained sample is within one (doubled)
		// interval of the horizon.
		if last := s.T[len(s.T)-1]; last < horizon/2 {
			t.Errorf("series %s stops at %v, does not cover the run to %v", name, last, horizon)
		}
	}
	if tr.Decimations() == 0 {
		t.Fatal("cap never triggered on a 100k-tick run")
	}
	// Decimation keeps even indices, so retained timestamps stay strictly
	// increasing and evenly spaced at interval<<decims.
	for i := 1; i < len(a.T); i++ {
		if a.T[i] <= a.T[i-1] {
			t.Fatalf("timestamps not increasing after decimation: T[%d]=%v T[%d]=%v", i-1, a.T[i-1], i, a.T[i])
		}
	}
}

// TestTracerNoCapUnchanged: without SetCap the tracer keeps every sample
// (the default-horizon figure runs must stay byte-identical).
func TestTracerNoCapUnchanged(t *testing.T) {
	sch := sim.New()
	tr := NewTracer(sch, 10*units.Microsecond, units.Millisecond)
	s := tr.Add("x", func() float64 { return 1 })
	tr.Start()
	sch.Run()
	if len(s.T) != 101 {
		t.Fatalf("samples = %d, want 101", len(s.T))
	}
	if tr.Decimations() != 0 {
		t.Fatalf("decimations = %d without a cap", tr.Decimations())
	}
}

// TestTracerCapAboveRunLengthIsExact: a cap larger than the sample count
// changes nothing — the property the fig runners rely on to keep their
// golden outputs identical.
func TestTracerCapAboveRunLengthIsExact(t *testing.T) {
	run := func(cap int) *Series {
		sch := sim.New()
		tr := NewTracer(sch, 10*units.Microsecond, units.Millisecond)
		if cap > 0 {
			tr.SetCap(cap)
		}
		x := 0.0
		s := tr.Add("x", func() float64 { x += 1.5; return x })
		tr.Start()
		sch.Run()
		return s
	}
	want, got := run(0), run(1024)
	if len(want.T) != len(got.T) {
		t.Fatalf("capped (above length) run has %d samples, uncapped %d", len(got.T), len(want.T))
	}
	for i := range want.T {
		if want.T[i] != got.T[i] || want.V[i] != got.V[i] {
			t.Fatalf("sample %d differs: (%v,%v) vs (%v,%v)", i, want.T[i], want.V[i], got.T[i], got.V[i])
		}
	}
}
