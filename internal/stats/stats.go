// Package stats provides the measurement layer: percentiles, FCT-slowdown
// summaries grouped by flow size, and time-series tracing of port queues,
// throughput and marking — the raw material of every figure in the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/tcdnet/tcd/internal/units"
)

// Percentile returns the p-quantile (0..1) of values using nearest-rank
// on a sorted copy. It returns 0 for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return sortedPercentile(s, p)
}

func sortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Dist is a batch of observations with cached order.
type Dist struct {
	values []float64
	sorted bool
}

// Add appends one observation.
func (d *Dist) Add(v float64) {
	d.values = append(d.values, v)
	d.sorted = false
}

// N reports the observation count.
func (d *Dist) N() int { return len(d.values) }

// P returns the p-quantile.
func (d *Dist) P(p float64) float64 {
	if !d.sorted {
		sort.Float64s(d.values)
		d.sorted = true
	}
	return sortedPercentile(d.values, p)
}

// Mean returns the mean.
func (d *Dist) Mean() float64 { return Mean(d.values) }

// SizeBin is one row of an FCT-breakdown table.
type SizeBin struct {
	// Lo and Hi bound the flow sizes in this bin: Lo < size <= Hi.
	Lo, Hi units.ByteSize
	Dist   Dist
}

// Label renders the bin bounds, e.g. "(10KB, 100KB]".
func (b *SizeBin) Label() string {
	if b.Hi == units.ByteSize(math.MaxInt64) {
		return fmt.Sprintf(">%v", b.Lo)
	}
	return fmt.Sprintf("(%v, %v]", b.Lo, b.Hi)
}

// Breakdown groups observations (FCT or slowdown) by flow size.
type Breakdown struct {
	Bins []SizeBin
}

// NewBreakdown builds bins from ascending upper edges; a final unbounded
// bin is appended automatically.
func NewBreakdown(edges ...units.ByteSize) *Breakdown {
	b := &Breakdown{}
	lo := units.ByteSize(0)
	for _, e := range edges {
		b.Bins = append(b.Bins, SizeBin{Lo: lo, Hi: e})
		lo = e
	}
	b.Bins = append(b.Bins, SizeBin{Lo: lo, Hi: units.ByteSize(math.MaxInt64)})
	return b
}

// Add records one flow observation.
func (b *Breakdown) Add(size units.ByteSize, v float64) {
	for i := range b.Bins {
		if size > b.Bins[i].Lo && size <= b.Bins[i].Hi {
			b.Bins[i].Dist.Add(v)
			return
		}
	}
}

// Table renders rows of "<bin> n p50 p95 p99 mean" for the experiment
// harness output.
func (b *Breakdown) Table(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-18s %8s %9s %9s %9s %9s\n", title, "size", "n", "p50", "p95", "p99", "mean")
	for i := range b.Bins {
		bin := &b.Bins[i]
		if bin.Dist.N() == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-18s %8d %9.2f %9.2f %9.2f %9.2f\n",
			bin.Label(), bin.Dist.N(), bin.Dist.P(0.5), bin.Dist.P(0.95), bin.Dist.P(0.99), bin.Dist.Mean())
	}
	return sb.String()
}

// Series is one sampled time series (queue length, rate, marking count).
type Series struct {
	Name string
	T    []units.Time
	V    []float64
}

// At returns the value at the sample nearest to t (linear scan from the
// end is avoided with binary search).
func (s *Series) At(t units.Time) float64 {
	if len(s.T) == 0 {
		return 0
	}
	i := sort.Search(len(s.T), func(i int) bool { return s.T[i] >= t })
	if i == len(s.T) {
		return s.V[len(s.V)-1]
	}
	return s.V[i]
}

// Max returns the maximum value (0 for empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanOver averages samples with t in [lo, hi].
func (s *Series) MeanOver(lo, hi units.Time) float64 {
	sum, n := 0.0, 0
	for i, t := range s.T {
		if t >= lo && t <= hi {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints "t_us value" lines, for gnuplot-style consumption.
func (s *Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	for i := range s.T {
		fmt.Fprintf(&sb, "%.3f %.4g\n", s.T[i].Micros(), s.V[i])
	}
	return sb.String()
}
