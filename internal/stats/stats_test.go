package stats

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

func TestPercentileBasics(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {0.99, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); got != c.want {
			t.Errorf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	v := []float64{3, 1, 2}
	Percentile(v, 0.5)
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Error("input mutated")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		p1 := float64(a%101) / 100
		p2 := float64(b%101) / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(raw, p1) <= Percentile(raw, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestDist(t *testing.T) {
	var d Dist
	for _, v := range []float64{10, 30, 20} {
		d.Add(v)
	}
	if d.N() != 3 || d.P(0.5) != 20 || d.Mean() != 20 {
		t.Errorf("Dist: n=%d p50=%v mean=%v", d.N(), d.P(0.5), d.Mean())
	}
	d.Add(40)
	if d.P(0.99) != 40 {
		t.Error("Dist not re-sorted after Add")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown(10*units.KB, 100*units.KB)
	if len(b.Bins) != 3 {
		t.Fatalf("bins = %d, want 3 (two edges + tail)", len(b.Bins))
	}
	b.Add(5*units.KB, 1.5)
	b.Add(50*units.KB, 2.5)
	b.Add(units.MB, 9.0)
	b.Add(10*units.KB, 1.0) // boundary: goes to first bin (inclusive hi)
	if b.Bins[0].Dist.N() != 2 || b.Bins[1].Dist.N() != 1 || b.Bins[2].Dist.N() != 1 {
		t.Errorf("bin counts: %d %d %d", b.Bins[0].Dist.N(), b.Bins[1].Dist.N(), b.Bins[2].Dist.N())
	}
	out := b.Table("FCT slowdown")
	if !strings.Contains(out, "FCT slowdown") || !strings.Contains(out, ">100KB") {
		t.Errorf("table rendering missing pieces:\n%s", out)
	}
}

func TestSeriesQueries(t *testing.T) {
	s := &Series{
		Name: "q",
		T:    []units.Time{0, 10, 20, 30},
		V:    []float64{0, 5, 10, 2},
	}
	if s.Max() != 10 {
		t.Error("Max wrong")
	}
	if got := s.At(20); got != 10 {
		t.Errorf("At(20) = %v", got)
	}
	if got := s.At(100); got != 2 {
		t.Errorf("At past end = %v, want last value", got)
	}
	if got := s.MeanOver(10, 30); got != (5+10+2)/3.0 {
		t.Errorf("MeanOver = %v", got)
	}
	if (&Series{}).Max() != 0 || (&Series{}).At(5) != 0 {
		t.Error("empty series queries should be 0")
	}
	if !strings.Contains(s.Render(), "# q") {
		t.Error("Render missing header")
	}
}

func TestTracerSamples(t *testing.T) {
	sch := sim.New()
	tr := NewTracer(sch, 10*units.Microsecond, 100*units.Microsecond)
	x := 0.0
	series := tr.Add("x", func() float64 { x++; return x })
	tr.Start()
	sch.Run()
	// Samples at 0, 10, ..., 100 => 11 samples.
	if len(series.T) != 11 {
		t.Fatalf("samples = %d, want 11", len(series.T))
	}
	if series.T[0] != 0 || series.T[10] != 100*units.Microsecond {
		t.Error("sample times wrong")
	}
	if series.V[10] != 11 {
		t.Error("probe called wrong number of times")
	}
}

func TestTracerStartIdempotent(t *testing.T) {
	sch := sim.New()
	tr := NewTracer(sch, 10*units.Microsecond, 50*units.Microsecond)
	s := tr.Add("x", func() float64 { return 1 })
	tr.Start()
	tr.Start()
	sch.Run()
	if len(s.T) != 6 {
		t.Errorf("double Start duplicated sampling: %d samples", len(s.T))
	}
	if len(tr.Series()) != 1 {
		t.Error("Series() accessor wrong")
	}
}

func TestRateProbe(t *testing.T) {
	var sent units.ByteSize
	probe := RateProbe(func() units.ByteSize { return sent }, units.Microsecond)
	sent = 5000 // 5000B in 1us = 40Gbps
	if got := probe(); math.Abs(got-40e9) > 1e6 {
		t.Errorf("rate probe = %v, want 40e9", got)
	}
	// No traffic in the next interval.
	if got := probe(); got != 0 {
		t.Errorf("idle rate probe = %v, want 0", got)
	}
}

func TestDeltaProbe(t *testing.T) {
	var count uint64
	probe := DeltaProbe(func() uint64 { return count })
	count = 7
	if probe() != 7 {
		t.Error("delta probe wrong")
	}
	count = 9
	if probe() != 2 {
		t.Error("second delta wrong")
	}
}

func TestNewTracerRejectsZeroInterval(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewTracer(interval=0) did not panic; the sampling loop would never advance sim time")
		}
		if !strings.Contains(fmt.Sprint(r), "interval must be positive") {
			t.Errorf("panic message %q does not explain the constraint", r)
		}
	}()
	NewTracer(sim.New(), 0, units.Millisecond)
}

func TestRateProbeFirstSampleBaseline(t *testing.T) {
	// The counter already holds history when the probe is built; the
	// first sample must measure from construction, not from zero.
	sent := 1000 * units.KB
	probe := RateProbe(func() units.ByteSize { return sent }, units.Microsecond)
	sent += 5000
	if got := probe(); math.Abs(got-40e9) > 1e6 {
		t.Errorf("first sample = %v, want 40e9 (pre-existing counter value leaked in)", got)
	}
}

func TestDeltaProbeWraparound(t *testing.T) {
	// uint64 modular arithmetic keeps the increment correct across a
	// counter wrap.
	count := uint64(math.MaxUint64 - 2)
	probe := DeltaProbe(func() uint64 { return count })
	count += 5 // wraps to 2
	if got := probe(); got != 5 {
		t.Errorf("delta across wraparound = %v, want 5", got)
	}
}
