package serve

import (
	"bytes"
	"testing"
)

// FuzzParseJobSpec hammers the HTTP spec parser with arbitrary bytes.
// Invariants: never panic; any accepted spec canonicalizes idempotently
// (reparse of Canonical succeeds, yields the same bytes and hash) and
// respects the documented bounds, so nothing absurd survives to the
// queue.
func FuzzParseJobSpec(f *testing.F) {
	seeds := []string{
		`{"exp":"fig3"}`,
		`{"exp":"fig3","fabric":"ib","seed":7,"runs":4,"horizon_us":100.5}`,
		`{"exp":"fig20","cc":"timely+tcd"}`,
		`{"exp":"victim-under-flap","det":"tcd","faults":{"events":[{"kind":"flap","at_us":5,"link":"s0-s1","period_us":20,"down_us":10,"until_us":200}]}}`,
		`{"exp":"table3","seed":18446744073709551615}`,
		`{"exp":"deadlock-unit","horizon_us":1e6}`,
		`{"seed":1,"fabric":"cee","exp":"fig12"}`,
		`{"exp":"fig3","horizon_us":-1}`,
		`{"exp":"fig3","runs":9999999}`,
		`{"exp":"fig3","faults":{"events":[]}}`,
		`{"exp":"fig3"`,
		`{"exp":"fig3"}{"exp":"fig4"}`,
		`[1,2,3]`,
		`null`,
		`{"exp":"fig3","horizon_us":1e309}`,
		`{"exp":"fig3","bogus":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJobSpec(data)
		if err != nil {
			return
		}
		// Accepted specs obey the bounds the parser promises.
		if spec.Runs < 1 || spec.Runs > MaxRuns {
			t.Fatalf("accepted runs %d outside [1,%d]", spec.Runs, MaxRuns)
		}
		if spec.HorizonUs < 0 || spec.HorizonUs > MaxHorizonUs {
			t.Fatalf("accepted horizon %g outside [0,%g]", spec.HorizonUs, float64(MaxHorizonUs))
		}
		if spec.Seed == 0 {
			t.Fatal("accepted spec kept seed 0 (default not applied)")
		}
		if _, ok := Catalog[spec.Exp]; !ok {
			t.Fatalf("accepted unknown exp %q", spec.Exp)
		}
		if spec.Faults != nil && len(spec.Faults.Events) > MaxFaultEvents {
			t.Fatalf("accepted %d fault events", len(spec.Faults.Events))
		}
		// Canonicalization is idempotent and hash-stable.
		canon := spec.Canonical()
		spec2, err := ParseJobSpec(canon)
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v (canon %s)", err, canon)
		}
		if !bytes.Equal(canon, spec2.Canonical()) {
			t.Fatalf("canonicalization not idempotent:\n  %s\n  %s", canon, spec2.Canonical())
		}
		if spec.Hash() != spec2.Hash() {
			t.Fatal("hash unstable across canonical reparse")
		}
	})
}
