// Package serve is the simulation-as-a-service layer: a long-running
// daemon that accepts experiment specs over REST/JSON, runs them on a
// bounded worker pool (each job with the same private scheduler/RNG
// isolation the sweep engine gives a run), streams progress over SSE,
// and caches results keyed by the hash of the canonicalized spec so
// identical submissions are byte-identical cache hits.
//
// Determinism contract: a JobSpec fully determines the result bytes. The
// spec is canonicalized before hashing — defaults applied, enum strings
// normalized, field order fixed by re-marshaling — so the hash is
// insensitive to JSON field order, whitespace and explicitly-written
// defaults, and sensitive to exactly the fields that change the
// simulation (experiment, fabric, detector, congestion control, seed,
// repetition count, horizon, fault schedule).
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/units"
)

// Limits on what a single submission may ask for. They bound the work a
// request can enqueue before it ever reaches a worker: a daemon facing
// untrusted clients must reject absurd grids at the door, not discover
// them mid-simulation.
const (
	// MaxRuns caps the per-job seed-repetition axis.
	MaxRuns = 64
	// MaxHorizonUs caps the simulated horizon (10 s of simulated time;
	// the paper's longest figure runs 400 ms).
	MaxHorizonUs = 10e6
	// MaxFaultEvents caps the fault schedule length (each flap rule can
	// expand further, but package fault bounds that expansion itself).
	MaxFaultEvents = 4096
	// MaxSpecBytes caps the request body accepted by the submit handler.
	MaxSpecBytes = 1 << 20
)

// JobSpec is one submission: which experiment to run and with what
// parameters. The JSON field order of this struct is the canonical
// serialization order; Canonical re-marshals a normalized copy, so two
// specs that mean the same run serialize to the same bytes.
type JobSpec struct {
	// Exp names a catalog experiment (see Catalog; e.g. "fig3",
	// "table3", "deadlock-unit").
	Exp string `json:"exp"`
	// Fabric selects the lossless technology: "cee" (default) or "ib".
	Fabric string `json:"fabric"`
	// Det overrides the experiment's detector where the experiment
	// supports it ("baseline", "tcd", "tcd-adaptive", "np-ecn").
	// Empty selects the experiment default; experiments that fix their
	// detector reject a non-empty value.
	Det string `json:"det,omitempty"`
	// CC selects the congestion control for experiments that take one
	// (fig20: "dcqcn+tcd" or "timely+tcd"). Same rules as Det.
	CC string `json:"cc,omitempty"`
	// Seed feeds the run's private random streams. 0 means the default
	// seed 1 (so an omitted field and the default hash identically).
	Seed uint64 `json:"seed"`
	// Runs repeats the experiment over this many consecutive seeds
	// (Seed, Seed+1, ...) and appends the folded cross-seed aggregate to
	// the result. 0 means 1.
	Runs int `json:"runs"`
	// HorizonUs overrides the simulated horizon in microseconds.
	// 0 keeps the experiment's default horizon.
	HorizonUs float64 `json:"horizon_us"`
	// Faults is an optional fault schedule (benign and adversarial
	// kinds) armed against each run, for experiments that accept one.
	Faults *fault.Spec `json:"faults,omitempty"`
}

// ParseJobSpec decodes, normalizes and validates a JSON submission. The
// decode is strict: unknown fields, trailing garbage and malformed JSON
// are rejected before anything is enqueued.
func ParseJobSpec(data []byte) (*JobSpec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("serve: spec exceeds %d bytes", MaxSpecBytes)
	}
	var s JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("serve: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("serve: trailing data after spec")
	}
	if err := s.normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// normalize lowercases the enum strings, applies defaults, and validates
// every field against the catalog entry for Exp. After normalize, two
// semantically identical specs are field-for-field identical.
func (s *JobSpec) normalize() error {
	s.Exp = strings.ToLower(strings.TrimSpace(s.Exp))
	ent, ok := Catalog[s.Exp]
	if !ok {
		return fmt.Errorf("serve: unknown exp %q (see /v1/exps)", s.Exp)
	}
	s.Fabric = strings.ToLower(strings.TrimSpace(s.Fabric))
	if s.Fabric == "" {
		s.Fabric = "cee"
	}
	if _, err := parseFabric(s.Fabric); err != nil {
		return err
	}
	s.Det = strings.ToLower(strings.TrimSpace(s.Det))
	if len(ent.Dets) == 0 {
		if s.Det != "" {
			return fmt.Errorf("serve: exp %q does not take a detector (got det=%q)", s.Exp, s.Det)
		}
	} else {
		if s.Det == "" {
			s.Det = ent.DefaultDet.String()
		}
		d, err := parseDet(s.Det)
		if err != nil {
			return err
		}
		if !containsDet(ent.Dets, d) {
			return fmt.Errorf("serve: exp %q does not support det %q", s.Exp, s.Det)
		}
		s.Det = d.String() // canonical spelling
	}
	s.CC = strings.ToLower(strings.TrimSpace(s.CC))
	if len(ent.CCs) == 0 {
		if s.CC != "" {
			return fmt.Errorf("serve: exp %q does not take a congestion control (got cc=%q)", s.Exp, s.CC)
		}
	} else {
		if s.CC == "" {
			s.CC = ent.DefaultCC.String()
		}
		c, err := parseCC(s.CC)
		if err != nil {
			return err
		}
		if !containsCC(ent.CCs, c) {
			return fmt.Errorf("serve: exp %q does not support cc %q", s.Exp, s.CC)
		}
		s.CC = c.String()
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Runs == 0 {
		s.Runs = 1
	}
	if s.Runs < 1 || s.Runs > MaxRuns {
		return fmt.Errorf("serve: runs must be in [1, %d] (got %d)", MaxRuns, s.Runs)
	}
	if math.IsNaN(s.HorizonUs) || math.IsInf(s.HorizonUs, 0) {
		return fmt.Errorf("serve: horizon_us is not a finite number")
	}
	if s.HorizonUs < 0 || s.HorizonUs > MaxHorizonUs {
		return fmt.Errorf("serve: horizon_us must be in [0, %g] (got %g)", float64(MaxHorizonUs), s.HorizonUs)
	}
	if s.Faults != nil {
		if !ent.Faults {
			return fmt.Errorf("serve: exp %q does not accept a fault schedule", s.Exp)
		}
		if s.Faults.Empty() {
			// nil and {} mean the same run; canonicalize to nil so they
			// hash identically.
			s.Faults = nil
		} else {
			if len(s.Faults.Events) > MaxFaultEvents {
				return fmt.Errorf("serve: fault schedule exceeds %d events", MaxFaultEvents)
			}
			if err := s.Faults.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Horizon converts the override to simulator time (0 = default).
func (s *JobSpec) Horizon() units.Time {
	return units.Time(s.HorizonUs * float64(units.Microsecond))
}

// Canonical serializes the normalized spec in the canonical field order
// with no insignificant whitespace. ParseJobSpec(Canonical()) returns an
// identical spec, so canonicalization is idempotent.
func (s *JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A normalized JobSpec is always marshalable; fault.Spec holds
		// only plain structs.
		panic("serve: canonical marshal: " + err.Error())
	}
	return b
}

// Hash returns the hex SHA-256 of the canonical serialization — the
// result-cache key and the client-visible spec identity.
func (s *JobSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}
