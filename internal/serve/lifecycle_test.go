package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingExec returns an ExecFunc that parks until release is closed
// (or ctx cancels) and signals each start on started.
func blockingExec(started chan<- string, release <-chan struct{}) ExecFunc {
	return func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
		select {
		case started <- spec.Exp:
		default:
		}
		select {
		case <-release:
			return []byte(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// distinctSpec makes the i-th semantically distinct submission.
func distinctSpec(i int) string {
	return `{"exp":"deadlock-unit","seed":` + strconv.Itoa(i+1) + `}`
}

// TestBackpressure fills the worker pool and queue with blocked jobs and
// requires the next distinct submission to bounce with 429 and a
// Retry-After header, while an identical submission still coalesces.
func TestBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueCap: 2, Exec: blockingExec(started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Close cancels the run context, which unblocks blockingExec even if
	// the test bails before release is closed.
	defer s.Close()

	// One running + two queued fills the daemon.
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(distinctSpec(i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submission %d: %d", i, resp.StatusCode)
		}
	}
	<-started // the worker picked up job 0; jobs 1,2 occupy the queue

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(distinctSpec(3)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission: got %d (%s), want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if sec, err := strconv.Atoi(ra); err != nil || sec < 1 || sec > 60 {
		t.Errorf("Retry-After %q not an int in [1,60]", ra)
	}

	// Identical to a queued spec: coalesces, does not consume a slot.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(distinctSpec(1)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("X-Cache") != "coalesced" {
		t.Errorf("identical submission: code %d cache %q, want 202 coalesced", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// The rejected spec was released from the cache: once the daemon
	// drains it can be resubmitted successfully.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := submitWait(t, ts.URL, distinctSpec(3))
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejected spec never became submittable (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownCancelsInFlight: Close cancels a running job, resolves its
// waiters with 503, and leaves no goroutines behind.
func TestShutdownCancelsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan string, 1)
	s := New(Config{Workers: 2, QueueCap: 4, Exec: blockingExec(started, nil)})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	codes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(distinctSpec(i)))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	<-started // at least one job is running when we pull the plug

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return with jobs in flight")
	}
	wg.Wait()
	ts.Close()

	for i, code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Errorf("waiter %d: got %d, want 503", i, code)
		}
	}

	// All workers and handlers drained: goroutine count returns to
	// baseline (slack for the test server's own pool).
	deadline := time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGracefulShutdownDrains: Shutdown lets queued jobs finish instead
// of canceling them.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	s := New(Config{Workers: 1, QueueCap: 4, Exec: blockingExec(started, release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(distinctSpec(i)))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	<-started
	// Both submissions must be accepted before the drain starts closing
	// the door (the submit goroutines race Shutdown otherwise).
	for deadline := time.Now().Add(5 * time.Second); s.snapshot().Submitted < 2; {
		if time.Now().After(deadline) {
			t.Fatal("submissions never landed")
		}
		time.Sleep(time.Millisecond)
	}

	// Release the executor, then drain.
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("drained job %d: got %d, want 200", i, code)
		}
	}

	// New submissions after shutdown bounce with 503.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(distinctSpec(9)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: got %d, want 503", resp.StatusCode)
	}
}

// TestJobRecordEviction: finished-job metadata is bounded; old records
// (and their SSE replay buffers) fall off while the result cache still
// serves by spec hash.
func TestJobRecordEviction(t *testing.T) {
	exec := func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
		return []byte(`{"ok":true}`), nil
	}
	s := New(Config{Workers: 1, JobRecords: 4, Exec: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var firstID, firstHash string
	for i := 0; i < 12; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(distinctSpec(i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if i == 0 {
			firstID, firstHash = resp.Header.Get("X-Job-Id"), resp.Header.Get("X-Spec-Hash")
		}
	}
	s.mu.Lock()
	records := len(s.jobs)
	s.mu.Unlock()
	if records > 4 {
		t.Errorf("job records not bounded: %d > 4", records)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + firstID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job status: got %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/specs/" + firstHash + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("evicted job's cached result: got %d, want 200", resp.StatusCode)
	}
}
