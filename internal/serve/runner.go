package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/exp/sweep"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// ExecFunc runs one job to completion and returns the deterministic
// result bytes. progress receives human-readable lines to stream over
// SSE (it may be nil). Implementations must honor ctx between runs.
type ExecFunc func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error)

// CatalogExec is the default executor: it expands the job into per-seed
// sweep specs and funnels them through the sweep engine, which gives
// every run the same isolation a CLI sweep gets — a private scheduler,
// RNG and recorder per run, panic capture, and context-checked starts —
// then encodes the per-run results (plus the cross-seed aggregate for
// multi-run jobs) exactly like cmd/tcdsim's -json export.
func CatalogExec(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
	ent, ok := Catalog[spec.Exp]
	if !ok {
		return nil, fmt.Errorf("serve: unknown exp %q", spec.Exp)
	}
	fab, err := parseFabric(spec.Fabric)
	if err != nil {
		return nil, err
	}
	var det exp.DetectorKind
	if spec.Det != "" {
		if det, err = parseDet(spec.Det); err != nil {
			return nil, err
		}
	}
	var cc exp.CCKind
	if spec.CC != "" {
		if cc, err = parseCC(spec.CC); err != nil {
			return nil, err
		}
	}

	specs := sweep.Grid{
		Exps:    []string{spec.Exp},
		Fabrics: []exp.FabricKind{fab},
		Dets:    []exp.DetectorKind{det},
		CCs:     []exp.CCKind{cc},
		Seeds:   sweep.Seq(spec.Seed, spec.Runs),
		Horizon: spec.Horizon(),
	}.Specs()

	fn := func(sp sweep.Spec) []*exp.Result {
		rc := RunCfg{
			Fabric:  sp.Fabric,
			Det:     sp.Det,
			CC:      sp.CC,
			Seed:    sp.Seed,
			Horizon: sp.Horizon,
			Faults:  spec.Faults,
		}
		if progress != nil {
			// Stream the simulator's own progress ticker: one line per
			// simulated millisecond, cheap at service horizons.
			rc.Obs = obs.Config{ProgressEvery: units.Millisecond, ProgressOut: progress}
		}
		return ent.Run(rc)
	}

	// Parallel: 1 — jobs parallelize across the daemon's worker pool,
	// not inside one job, so a single submission cannot monopolize the
	// pool's cores.
	opt := sweep.Options{Parallel: 1}
	if progress != nil {
		opt.OnStart = func(i int, sp sweep.Spec) {
			fmt.Fprintf(progress, "run %d/%d start %s\n", i+1, len(specs), sp)
		}
		opt.OnDone = func(i int, r *sweep.RunResult) {
			fmt.Fprintf(progress, "run %d/%d done %s (%v)\n", i+1, len(specs), r.Spec, r.Wall)
		}
	}
	rs := sweep.Run(ctx, specs, fn, opt)
	for _, r := range rs {
		if r.Err != nil {
			return nil, fmt.Errorf("serve: run %s: %w", r.Spec, r.Err)
		}
	}
	var results []*exp.Result
	for _, r := range rs {
		results = append(results, r.Results...)
	}
	if spec.Runs > 1 {
		results = append(results, sweep.Aggregate(rs)...)
	}
	return encodeResults(results)
}

// encodeResults mirrors cmd/tcdsim's -json export: a single object for
// one result, a JSON array otherwise. exp.Result.WriteJSON sorts every
// map, so equal specs produce byte-identical output.
func encodeResults(results []*exp.Result) ([]byte, error) {
	var buf bytes.Buffer
	if len(results) == 1 {
		if err := results[0].WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	buf.WriteString("[\n")
	for i, r := range results {
		if i > 0 {
			buf.WriteString(",\n")
		}
		if err := r.WriteJSON(&buf); err != nil {
			return nil, err
		}
	}
	buf.WriteString("]\n")
	return buf.Bytes(), nil
}
