package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestDaemon builds a Server on an httptest listener and tears both
// down with the test.
func newTestDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submitWait POSTs a spec with ?wait=1 and returns status, headers and
// body.
func submitWait(t *testing.T, base, spec string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading result: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

// shortSpec is a real catalog run small enough for unit tests: the
// 3-switch deadlock ring at a 50 µs horizon.
const shortSpec = `{"exp":"deadlock-unit","seed":3,"horizon_us":50}`

// TestEndToEndDeterminism races N concurrent submissions of one spec
// through a live daemon and requires every response — cache-miss,
// coalesced and warm-hit alike — to be byte-identical. A second daemon
// recomputes the same spec from scratch to pin down cross-process
// determinism, not just single-entry caching.
func TestEndToEndDeterminism(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Workers: 4, QueueCap: 64})

	const n = 16
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		caches []string
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, hdr, b := submitWait(t, ts.URL, shortSpec)
			mu.Lock()
			defer mu.Unlock()
			if code != http.StatusOK {
				t.Errorf("submit returned %d: %s", code, b)
				return
			}
			bodies = append(bodies, b)
			caches = append(caches, hdr.Get("X-Cache"))
		}()
	}
	wg.Wait()
	if len(bodies) != n {
		t.Fatalf("only %d/%d submissions succeeded", len(bodies), n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0 (%d vs %d bytes)", i, len(bodies[i]), len(bodies[0]))
		}
	}
	// Exactly one submission computed; the rest coalesced or hit warm.
	misses := 0
	for _, c := range caches {
		if c == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("want exactly 1 cache miss across %d identical submissions, got %d (%v)", n, misses, caches)
	}

	// A second wave is all warm hits, still byte-identical.
	code, hdr, b := submitWait(t, ts.URL, shortSpec)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second wave: code %d cache %q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(b, bodies[0]) {
		t.Fatal("warm-hit bytes differ from cache-miss bytes")
	}

	// An independent daemon recomputes identical bytes.
	_, ts2 := newTestDaemon(t, Config{Workers: 1})
	code, _, b2 := submitWait(t, ts2.URL, shortSpec)
	if code != http.StatusOK {
		t.Fatalf("second daemon: %d: %s", code, b2)
	}
	if !bytes.Equal(b2, bodies[0]) {
		t.Fatal("independent daemon produced different bytes for the same spec")
	}

	// Whitespace/field-order variants of the spec land on the same entry.
	variant := `{"horizon_us":50, "seed":3, "exp":"deadlock-unit"}`
	code, hdr, b3 := submitWait(t, ts.URL, variant)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("variant spec: code %d cache %q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(b3, bodies[0]) {
		t.Fatal("variant spelling produced different bytes")
	}
}

// TestAsyncLifecycle exercises the poll path: 202 on submit, status
// transitions to done, result served, spec-hash endpoint serves the
// same bytes.
func TestAsyncLifecycle(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(shortSpec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Job-Id")
	hash := resp.Header.Get("X-Spec-Hash")
	if id == "" || hash == "" {
		t.Fatalf("missing identity headers: id=%q hash=%q", id, hash)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(st.Body)
		st.Body.Close()
		if strings.Contains(string(b), `"state":"done"`) {
			break
		}
		if strings.Contains(string(b), `"state":"failed"`) {
			t.Fatalf("job failed: %s", b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", b)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r1, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK || len(b1) == 0 {
		t.Fatalf("result: %d (%d bytes)", r1.StatusCode, len(b1))
	}

	r2, err := http.Get(ts.URL + "/v1/specs/" + hash + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("spec result: %d", r2.StatusCode)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("/v1/jobs/{id}/result and /v1/specs/{hash}/result disagree")
	}
}

// TestSubmitRejectsBadSpecs: the parse layer guards the queue.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Workers: 1})
	for _, body := range []string{
		`{`,
		`{"exp":"nope"}`,
		`{"exp":"fig3","bogus":true}`,
		`{"exp":"fig3","runs":1000000}`,
	} {
		code, _, _ := submitWait(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("spec %q: got %d, want 400", body, code)
		}
	}
}

// TestMetricsEndpoint scrapes /metrics after traffic and checks the
// Prometheus families exist with sane values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestDaemon(t, Config{Workers: 2})
	submitWait(t, ts.URL, shortSpec)
	submitWait(t, ts.URL, shortSpec) // warm hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, w := range []string{
		`tcdsimd_jobs_total{state="submitted"} 2`,
		`tcdsimd_jobs_total{state="completed"} 2`,
		`tcdsimd_cache_requests_total{kind="warm-hit"} 1`,
		`tcdsimd_cache_requests_total{kind="miss"} 1`,
		"# TYPE tcdsimd_jobs_total counter",
		"tcdsimd_queue_cap 64",
	} {
		if !strings.Contains(text, w) {
			t.Errorf("/metrics missing %q in:\n%s", w, text)
		}
	}

	st, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := io.ReadAll(st.Body)
	st.Body.Close()
	if !strings.Contains(string(sb), `"cache_warm_hits": 1`) {
		t.Errorf("/v1/stats missing warm hit count:\n%s", sb)
	}
}

// TestFailedJobNotCached: a failing exec resolves waiters with the
// error, and the next identical submission retries instead of serving
// the failure from cache.
func TestFailedJobNotCached(t *testing.T) {
	var calls int32
	var mu sync.Mutex
	exec := func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("transient failure %d", n)
		}
		return []byte(`{"ok":true}`), nil
	}
	_, ts := newTestDaemon(t, Config{Workers: 1, Exec: exec})

	code, _, body := submitWait(t, ts.URL, shortSpec)
	if code != http.StatusInternalServerError {
		t.Fatalf("first submit: got %d (%s), want 500", code, body)
	}
	code, hdr, body := submitWait(t, ts.URL, shortSpec)
	if code != http.StatusOK {
		t.Fatalf("retry submit: got %d (%s), want 200", code, body)
	}
	if hdr.Get("X-Cache") != "miss" {
		t.Errorf("retry should recompute, got X-Cache %q", hdr.Get("X-Cache"))
	}
}
