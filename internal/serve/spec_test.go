package serve

import (
	"bytes"
	"strings"
	"testing"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, body string) *JobSpec {
	t.Helper()
	s, err := ParseJobSpec([]byte(body))
	if err != nil {
		t.Fatalf("ParseJobSpec(%s): %v", body, err)
	}
	return s
}

// TestHashInsensitive: serializations that mean the same run must hash
// identically — field order, whitespace, explicit defaults, enum case.
func TestHashInsensitive(t *testing.T) {
	base := `{"exp":"fig3","fabric":"cee","seed":1}`
	want := mustParse(t, base).Hash()
	cases := []struct {
		name, body string
	}{
		{"field order", `{"seed":1,"fabric":"cee","exp":"fig3"}`},
		{"whitespace", "{\n  \"exp\": \"fig3\",\n  \"fabric\": \"cee\",\n  \"seed\": 1\n}"},
		{"omitted default fabric", `{"exp":"fig3","seed":1}`},
		{"omitted default seed", `{"exp":"fig3","fabric":"cee"}`},
		{"explicit zero seed", `{"exp":"fig3","fabric":"cee","seed":0}`},
		{"explicit default det", `{"exp":"fig3","fabric":"cee","seed":1,"det":"baseline"}`},
		{"explicit runs 1", `{"exp":"fig3","fabric":"cee","seed":1,"runs":1}`},
		{"explicit zero runs", `{"exp":"fig3","fabric":"cee","seed":1,"runs":0}`},
		{"explicit zero horizon", `{"exp":"fig3","fabric":"cee","seed":1,"horizon_us":0}`},
		{"enum case", `{"exp":"FIG3","fabric":"CEE","seed":1}`},
		{"enum padding", `{"exp":"  fig3 ","fabric":" cee","seed":1}`},
		{"empty fault schedule", `{"exp":"fig3","seed":1,"faults":{"events":[]}}`},
		{"minimal", `{"exp":"fig3"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := mustParse(t, tc.body).Hash(); got != want {
				t.Errorf("hash changed: %q hashed %s, want %s (from %s)", tc.body, got, want, base)
			}
		})
	}
}

// TestHashSensitive: any semantic change must produce a different hash.
func TestHashSensitive(t *testing.T) {
	base := `{"exp":"fig3","fabric":"cee","seed":1}`
	want := mustParse(t, base).Hash()
	cases := []struct {
		name, body string
	}{
		{"seed", `{"exp":"fig3","fabric":"cee","seed":2}`},
		{"fabric", `{"exp":"fig3","fabric":"ib","seed":1}`},
		{"exp", `{"exp":"fig4","fabric":"cee","seed":1}`},
		{"detector", `{"exp":"fig3","fabric":"cee","seed":1,"det":"tcd"}`},
		{"runs", `{"exp":"fig3","fabric":"cee","seed":1,"runs":2}`},
		{"horizon", `{"exp":"fig3","fabric":"cee","seed":1,"horizon_us":50}`},
		{"fault schedule", `{"exp":"fig3","fabric":"cee","seed":1,"faults":{"events":[{"kind":"link-down","at_us":10,"link":"s0-s1"}]}}`},
	}
	seen := map[string]string{base: want}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mustParse(t, tc.body).Hash()
			if got == want {
				t.Errorf("semantic change %q did not change the hash (%s)", tc.name, got)
			}
			if prev, dup := seen[tc.body]; dup && prev != got {
				t.Errorf("unstable hash for %q", tc.body)
			}
			seen[tc.body] = got
		})
	}
	// Distinct semantic changes must not collide with each other either.
	byHash := map[string]string{}
	for body, h := range seen {
		if prev, dup := byHash[h]; dup {
			t.Errorf("hash collision between %q and %q", prev, body)
		}
		byHash[h] = body
	}
}

// TestCanonicalIdempotent: re-parsing the canonical bytes yields the
// same canonical bytes and hash.
func TestCanonicalIdempotent(t *testing.T) {
	bodies := []string{
		`{"exp":"fig3"}`,
		`{"exp":"fig20","cc":"timely+tcd","seed":9,"runs":3}`,
		`{"exp":"deadlock-unit","fabric":"ib","horizon_us":123.5}`,
		`{"exp":"victim-under-flap","det":"tcd","faults":{"events":[{"kind":"flap","at_us":5,"link":"s0-s1","period_us":20,"down_us":10,"until_us":200}]}}`,
	}
	for _, body := range bodies {
		s := mustParse(t, body)
		canon := s.Canonical()
		s2, err := ParseJobSpec(canon)
		if err != nil {
			t.Fatalf("reparsing canonical %s: %v", canon, err)
		}
		if !bytes.Equal(canon, s2.Canonical()) {
			t.Errorf("canonicalization not idempotent:\n  first  %s\n  second %s", canon, s2.Canonical())
		}
		if s.Hash() != s2.Hash() {
			t.Errorf("hash changed across reparse for %s", body)
		}
	}
}

// TestParseRejects: malformed or out-of-bounds specs must fail before
// anything is enqueued.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed", `{"exp":`, "parsing spec"},
		{"unknown field", `{"exp":"fig3","bogus":1}`, "bogus"},
		{"trailing data", `{"exp":"fig3"}{"exp":"fig4"}`, "trailing"},
		{"unknown exp", `{"exp":"fig99"}`, "unknown exp"},
		{"unknown fabric", `{"exp":"fig3","fabric":"roce"}`, "unknown fabric"},
		{"unknown det", `{"exp":"fig3","det":"psychic"}`, "unknown det"},
		{"det on fixed exp", `{"exp":"table3","det":"tcd"}`, "does not take a detector"},
		{"cc on fixed exp", `{"exp":"fig3","cc":"dcqcn"}`, "does not take a congestion control"},
		{"unsupported cc", `{"exp":"fig20","cc":"fixed"}`, "does not support cc"},
		{"runs too large", `{"exp":"fig3","runs":65}`, "runs must be in"},
		{"negative runs", `{"exp":"fig3","runs":-1}`, "runs must be in"},
		{"negative horizon", `{"exp":"fig3","horizon_us":-1}`, "horizon_us must be in"},
		{"absurd horizon", `{"exp":"fig3","horizon_us":1e12}`, "horizon_us must be in"},
		{"faults on fixed exp", `{"exp":"table3","faults":{"events":[{"kind":"link-down","at_us":1,"link":"x"}]}}`, "does not accept a fault schedule"},
		{"bad fault kind", `{"exp":"fig3","faults":{"events":[{"kind":"gremlin","at_us":1}]}}`, "unknown kind"},
		{"oversized body", `{"exp":"fig3","fabric":"` + strings.Repeat("x", MaxSpecBytes) + `"}`, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJobSpec([]byte(tc.body))
			if err == nil {
				t.Fatalf("ParseJobSpec accepted %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestJSONNumberEdgeCases: NaN and Inf are not valid JSON, so the strict
// decoder rejects them at the syntax layer (the normalize-level guards
// back this up for any future decoder swap).
func TestJSONNumberEdgeCases(t *testing.T) {
	for _, body := range []string{
		`{"exp":"fig3","horizon_us":NaN}`,
		`{"exp":"fig3","horizon_us":Infinity}`,
		`{"exp":"fig3","horizon_us":-Infinity}`,
		`{"exp":"fig3","horizon_us":"12"}`,
	} {
		if _, err := ParseJobSpec([]byte(body)); err == nil {
			t.Errorf("ParseJobSpec accepted %s", body)
		}
	}
}

// TestCatalogDefaults: every entry's declared defaults are themselves
// accepted values, so an empty field always normalizes successfully.
func TestCatalogDefaults(t *testing.T) {
	for name, ent := range Catalog {
		if len(ent.Dets) > 0 && !containsDet(ent.Dets, ent.DefaultDet) {
			t.Errorf("catalog %q: default det %s not in Dets", name, ent.DefaultDet)
		}
		if len(ent.CCs) > 0 && !containsCC(ent.CCs, ent.DefaultCC) {
			t.Errorf("catalog %q: default cc %s not in CCs", name, ent.DefaultCC)
		}
		if ent.Run == nil {
			t.Errorf("catalog %q: nil Run", name)
		}
		if _, err := ParseJobSpec([]byte(`{"exp":"` + name + `"}`)); err != nil {
			t.Errorf("minimal spec for %q rejected: %v", name, err)
		}
	}
}
