package serve

import (
	"fmt"
	"sort"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// RunCfg is the resolved parameter set one catalog run receives. Every
// field is derived from the canonical JobSpec (plus the per-run seed the
// sweep engine assigns), so a RunCfg — like the spec — fully determines
// the run's result bytes.
type RunCfg struct {
	Fabric  exp.FabricKind
	Det     exp.DetectorKind
	CC      exp.CCKind
	Seed    uint64
	Horizon units.Time // 0 = experiment default
	Faults  *fault.Spec
	Obs     obs.Config
}

// Entry describes one service-addressable experiment: which spec fields
// it consumes and how to run it. Experiments exposed here are exactly
// the deterministic, parameter-addressable subset of cmd/tcdsim's
// runner table — comparisons that need CLI-only knobs (fat-tree arity,
// workload files, oracle reports) stay on the CLI.
type Entry struct {
	// Desc is the human-readable catalog line.
	Desc string
	// Dets lists the accepted detector overrides (nil = the experiment
	// fixes its detector and rejects the det field).
	Dets []exp.DetectorKind
	// DefaultDet is the detector an empty det field selects.
	DefaultDet exp.DetectorKind
	// CCs / DefaultCC mirror Dets for the congestion-control axis.
	CCs       []exp.CCKind
	DefaultCC exp.CCKind
	// Faults reports whether the experiment accepts a fault schedule.
	Faults bool
	// Run executes one isolated simulation.
	Run func(rc RunCfg) []*exp.Result
}

// observeDets is the detector menu of the §3.1 observation scenarios.
var observeDets = []exp.DetectorKind{exp.DetBaseline, exp.DetTCD, exp.DetTCDAdaptive, exp.DetNPECN}

// Catalog maps experiment names to entries. It is immutable after init;
// handlers and spec validation read it concurrently.
var Catalog = map[string]Entry{
	"fig3": {
		Desc: "single congestion point, detector-selectable (baseline default)",
		Dets: observeDets, DefaultDet: exp.DetBaseline, Faults: true,
		Run: func(rc RunCfg) []*exp.Result { return observeRun(rc, false) },
	},
	"fig4": {
		Desc: "multiple congestion points, detector-selectable (baseline default)",
		Dets: observeDets, DefaultDet: exp.DetBaseline, Faults: true,
		Run: func(rc RunCfg) []*exp.Result { return observeRun(rc, true) },
	},
	"fig12": {
		Desc: "single congestion point with TCD (und -> non-congestion)",
		Dets: observeDets, DefaultDet: exp.DetTCD, Faults: true,
		Run: func(rc RunCfg) []*exp.Result { return observeRun(rc, false) },
	},
	"fig13": {
		Desc: "multiple congestion points with TCD (und -> congestion)",
		Dets: observeDets, DefaultDet: exp.DetTCD, Faults: true,
		Run: func(rc RunCfg) []*exp.Result { return observeRun(rc, true) },
	},
	"fig11": {
		Desc: "testbed marking staircase (UE/CE fractions over time)",
		Run: func(rc RunCfg) []*exp.Result {
			cfg := exp.DefaultTestbedConfig(rc.Fabric)
			cfg.Seed = rc.Seed
			if rc.Horizon > 0 {
				cfg.Horizon = rc.Horizon
			}
			return []*exp.Result{exp.Testbed(cfg)}
		},
	},
	"fig14": {
		Desc: "sensitivity of the TCD parameter eps",
		Run: func(rc RunCfg) []*exp.Result {
			res, _ := exp.Fig14(rc.Fabric, rc.Horizon, rc.Seed)
			return []*exp.Result{res}
		},
	},
	"table3": {
		Desc: "victim flows marked CE under ECN/FECN/TCD",
		Run: func(rc RunCfg) []*exp.Result {
			res, _ := exp.Table3(rc.Horizon, rc.Seed)
			return []*exp.Result{res}
		},
	},
	"fig20": {
		Desc: "fairness of the TCD rate-adjustment rules",
		CCs:  []exp.CCKind{exp.CCDCQCNTCD, exp.CCTIMELYTCD}, DefaultCC: exp.CCDCQCNTCD,
		Faults: true,
		Run: func(rc RunCfg) []*exp.Result {
			cfg := exp.DefaultFairnessConfig(rc.Fabric, rc.CC)
			cfg.Seed = rc.Seed
			cfg.Faults = rc.Faults
			if rc.Horizon > 0 {
				cfg.Horizon = rc.Horizon
			}
			return []*exp.Result{exp.Fairness(cfg)}
		},
	},
	"victim-under-flap": {
		Desc: "victim flow during a flapping link, detector-selectable",
		Dets: []exp.DetectorKind{exp.DetBaseline, exp.DetTCD}, DefaultDet: exp.DetBaseline,
		Faults: true,
		Run: func(rc RunCfg) []*exp.Result {
			cfg := exp.DefaultVictimFlapConfig(rc.Fabric, rc.Det)
			cfg.Seed = rc.Seed
			cfg.Faults = rc.Faults
			cfg.Obs = rc.Obs
			if rc.Horizon > 0 {
				cfg.Horizon = rc.Horizon
			}
			return []*exp.Result{exp.VictimUnderFlap(cfg)}
		},
	},
	"deadlock-unit": {
		Desc: "3-switch ring PFC/CBFC deadlock with initial-trigger attribution",
		Run: func(rc RunCfg) []*exp.Result {
			cfg := exp.DefaultDeadlockUnitConfig(rc.Fabric)
			cfg.Seed = rc.Seed
			cfg.Obs = rc.Obs
			if rc.Horizon > 0 {
				cfg.Horizon = rc.Horizon
			}
			return []*exp.Result{exp.DeadlockUnit(cfg)}
		},
	},
}

// observeRun shares the §3.1 observation wiring across fig3/4/12/13.
func observeRun(rc RunCfg, multi bool) []*exp.Result {
	cfg := exp.DefaultObserveConfig(rc.Fabric, rc.Det, multi)
	cfg.Seed = rc.Seed
	cfg.Faults = rc.Faults
	cfg.Obs = rc.Obs
	if rc.Horizon > 0 {
		cfg.Horizon = rc.Horizon
	}
	return []*exp.Result{exp.Observe(cfg)}
}

// CatalogNames returns the experiment names in sorted order.
func CatalogNames() []string {
	names := make([]string, 0, len(Catalog))
	for name := range Catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func parseFabric(s string) (exp.FabricKind, error) {
	switch s {
	case "cee":
		return exp.CEE, nil
	case "ib":
		return exp.IB, nil
	}
	return 0, fmt.Errorf("serve: unknown fabric %q (want cee or ib)", s)
}

func parseDet(s string) (exp.DetectorKind, error) {
	for _, d := range []exp.DetectorKind{exp.DetNone, exp.DetBaseline, exp.DetTCD, exp.DetTCDAdaptive, exp.DetNPECN} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown det %q", s)
}

func parseCC(s string) (exp.CCKind, error) {
	for _, c := range []exp.CCKind{exp.CCFixed, exp.CCDCQCN, exp.CCDCQCNTCD,
		exp.CCTIMELY, exp.CCTIMELYTCD, exp.CCIBCC, exp.CCIBCCTCD} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown cc %q", s)
}

func containsDet(ds []exp.DetectorKind, d exp.DetectorKind) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}

func containsCC(cs []exp.CCKind, c exp.CCKind) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}
