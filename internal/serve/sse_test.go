package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readSSETypes consumes an SSE stream and returns the event types in
// order until the stream closes.
func readSSETypes(t *testing.T, r io.Reader) []string {
	t.Helper()
	var types []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			types = append(types, strings.TrimPrefix(line, "event: "))
		}
	}
	return types
}

// TestSSELifecycle subscribes before the job runs and checks the event
// sequence queued -> running -> (progress...) -> done, with the stream
// closing after the terminal event.
func TestSSELifecycle(t *testing.T) {
	release := make(chan struct{})
	exec := func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		fmt.Fprintln(progress, "tick 1")
		fmt.Fprintln(progress, "tick 2")
		return []byte(`{"ok":true}`), nil
	}
	s := New(Config{Workers: 1, Exec: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(shortSpec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	id := resp.Header.Get("X-Job-Id")

	// Subscribe while the job is still parked, then let it run.
	es, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	close(release)

	typesCh := make(chan []string, 1)
	go func() { typesCh <- readSSETypes(t, es.Body) }()
	var types []string
	select {
	case types = <-typesCh:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream never closed after terminal event")
	}

	joined := strings.Join(types, ",")
	for _, w := range []string{"queued", "running", "progress", "done"} {
		if !strings.Contains(joined, w) {
			t.Errorf("event sequence %q missing %q", joined, w)
		}
	}
	if types[len(types)-1] != "done" {
		t.Errorf("stream did not end on the terminal event: %q", joined)
	}
	if idxOf(types, "queued") > idxOf(types, "running") || idxOf(types, "running") > idxOf(types, "done") {
		t.Errorf("events out of order: %q", joined)
	}
}

func idxOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return len(ss)
}

// TestSSELateSubscriber: a subscriber arriving after the job finished
// still gets the full replay ending in the terminal event.
func TestSSELateSubscriber(t *testing.T) {
	exec := func(ctx context.Context, spec *JobSpec, progress io.Writer) ([]byte, error) {
		fmt.Fprintln(progress, "tick")
		return []byte(`{"ok":true}`), nil
	}
	s := New(Config{Workers: 1, Exec: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	code, hdr, _ := submitWait(t, ts.URL, shortSpec)
	if code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	id := hdr.Get("X-Job-Id")

	es, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	done := make(chan []string, 1)
	go func() { done <- readSSETypes(t, es.Body) }()
	select {
	case types := <-done:
		joined := strings.Join(types, ",")
		for _, w := range []string{"queued", "running", "progress", "done"} {
			if !strings.Contains(joined, w) {
				t.Errorf("late replay %q missing %q", joined, w)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late subscriber's stream never closed")
	}
}

// TestHubReplayBound: the replay buffer drops oldest events past the cap
// and keeps counting.
func TestHubReplayBound(t *testing.T) {
	h := newHub()
	for i := 0; i < replayCap+50; i++ {
		h.publish("t", Event{"progress", fmt.Sprintf(`{"i":%d}`, i)})
	}
	replay, sub := h.subscribe("t")
	h.unsubscribe("t", sub)
	if len(replay) != replayCap {
		t.Fatalf("replay length %d, want %d", len(replay), replayCap)
	}
	if want := fmt.Sprintf(`{"i":%d}`, 50); replay[0].Data != want {
		t.Errorf("oldest retained event %s, want %s", replay[0].Data, want)
	}
	h.mu.Lock()
	droppedReplay := h.topics["t"].dropped
	h.mu.Unlock()
	if droppedReplay != 50 {
		t.Errorf("topic drop count %d, want 50", droppedReplay)
	}
}

// TestHubSlowSubscriber: a subscriber that never drains loses events
// (counted) but never blocks the publisher.
func TestHubSlowSubscriber(t *testing.T) {
	h := newHub()
	_, sub := h.subscribe("t")
	defer h.unsubscribe("t", sub)
	donePub := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			h.publish("t", Event{"progress", "{}"})
		}
		close(donePub)
	}()
	select {
	case <-donePub:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	if h.droppedCount() == 0 {
		t.Error("expected fan-out drops for a subscriber that never drains")
	}
}
