package serve

import (
	"fmt"
	"strings"
	"sync"
)

// Event is one SSE frame: a typed, JSON-bodied message on a job's
// stream. Types: "queued", "coalesced", "cached", "running", "progress",
// "run-start", "run-done", "done", "failed", "canceled".
type Event struct {
	Type string
	Data string // a single-line JSON object (or a quoted string)
}

// terminal reports whether the event ends the stream.
func (e Event) terminal() bool {
	switch e.Type {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// sse renders the wire format. Data is guaranteed single-line by the
// publishers (newlines are escaped inside JSON strings), so one data:
// line suffices.
func (e Event) sse() string {
	return fmt.Sprintf("event: %s\ndata: %s\n\n", e.Type, strings.ReplaceAll(e.Data, "\n", " "))
}

// replayCap bounds the per-topic replay buffer: a late subscriber
// catches up on at most this many events (older ones are dropped
// oldest-first, counted per topic).
const replayCap = 256

// subscriber receives live events on ch; the hub never blocks on a slow
// subscriber — events past the channel buffer are dropped and counted.
type subscriber struct {
	ch chan Event
}

type topic struct {
	buf     []Event
	dropped uint64
	subs    map[*subscriber]struct{}
	// closed marks a terminal event published; late subscribers get the
	// full replay and an immediately-closed channel.
	closed bool
}

// hub routes per-job event streams: publishers append to a bounded
// replay buffer and fan out to live subscribers; subscribers get the
// replay first, then the live channel. All operations share one mutex —
// event rates here are job-lifecycle scale (a handful per job plus
// progress ticks), not packet scale.
type hub struct {
	mu      sync.Mutex
	topics  map[string]*topic
	dropped uint64
	closed  bool
}

func newHub() *hub {
	return &hub{topics: make(map[string]*topic)}
}

func (h *hub) topicLocked(id string) *topic {
	t := h.topics[id]
	if t == nil {
		t = &topic{subs: make(map[*subscriber]struct{})}
		h.topics[id] = t
	}
	return t
}

// publish appends ev to the topic's replay buffer and offers it to every
// live subscriber. A terminal event closes the topic: subscriber
// channels are closed after delivery and later publishes are ignored.
func (h *hub) publish(id string, ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	t := h.topicLocked(id)
	if t.closed {
		return
	}
	if len(t.buf) >= replayCap {
		copy(t.buf, t.buf[1:])
		t.buf = t.buf[:len(t.buf)-1]
		t.dropped++
	}
	t.buf = append(t.buf, ev)
	for s := range t.subs {
		select {
		case s.ch <- ev:
		default:
			h.dropped++
		}
	}
	if ev.terminal() {
		t.closed = true
		for s := range t.subs {
			close(s.ch)
		}
		t.subs = make(map[*subscriber]struct{})
	}
}

// subscribe returns the replay so far and a live subscription. On a
// closed topic (terminal event already published, or hub shut down) the
// returned channel is already closed, so the caller's receive loop ends
// after the replay.
func (h *hub) subscribe(id string) (replay []Event, s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topicLocked(id)
	replay = append([]Event(nil), t.buf...)
	s = &subscriber{ch: make(chan Event, 64)}
	if t.closed || h.closed {
		close(s.ch)
		return replay, s
	}
	t.subs[s] = struct{}{}
	return replay, s
}

// unsubscribe detaches s (no-op if the topic already closed it).
func (h *hub) unsubscribe(id string, s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if t := h.topics[id]; t != nil {
		if _, ok := t.subs[s]; ok {
			delete(t.subs, s)
			close(s.ch)
		}
	}
}

// drop forgets a topic's replay buffer (called when its job is evicted).
func (h *hub) drop(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.topics, id)
}

// close shuts every stream down: all subscriber channels close, further
// publishes and subscriptions find a closed hub.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, t := range h.topics {
		if !t.closed {
			t.closed = true
			for s := range t.subs {
				close(s.ch)
			}
			t.subs = make(map[*subscriber]struct{})
		}
	}
}

// droppedCount reports fan-out drops (slow subscribers).
func (h *hub) droppedCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
