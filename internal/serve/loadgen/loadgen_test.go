package loadgen

import (
	"context"
	"io"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/tcdnet/tcd/internal/serve"
)

// TestMiniSoak drives a short in-process soak against a real daemon
// (stub executor — the soak exercises the service plumbing, not the
// simulator) and requires zero corrupted results, zero errors, and a
// nonzero warm-cache hit rate.
func TestMiniSoak(t *testing.T) {
	exec := func(ctx context.Context, spec *serve.JobSpec, progress io.Writer) ([]byte, error) {
		// The result must be a pure function of the spec for the
		// harness's integrity check to mean anything.
		return append([]byte(`{"echo":`), append(spec.Canonical(), '}')...), nil
	}
	s := serve.New(serve.Config{Workers: 4, QueueCap: 256, Exec: exec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		RPS:          300,
		Duration:     2 * time.Second,
		WarmFraction: 0.5,
		WarmPool:     4,
		Seed:         42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Log(rep.Summary())

	if rep.OK < 100 {
		t.Fatalf("only %d OK requests; soak too thin to judge", rep.OK)
	}
	if rep.Corrupted > 0 {
		t.Fatalf("%d corrupted results", rep.Corrupted)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if rep.Warm.CacheHits+rep.Warm.Coalesced == 0 {
		t.Fatal("warm class never hit the cache")
	}
	if rep.Warm.HitRate <= 0 {
		t.Fatal("warm hit rate not computed")
	}
	// Warm specs deduplicate to the pool; cold specs are all distinct.
	if rep.DistinctSpecs > rep.Cold.OK+rep.WarmPool {
		t.Errorf("distinct specs %d exceeds cold %d + pool %d", rep.DistinctSpecs, rep.Cold.OK, rep.WarmPool)
	}
	if rep.Overall.Count != rep.OK {
		t.Errorf("latency count %d != OK %d", rep.Overall.Count, rep.OK)
	}
	if rep.Overall.P50Ms > rep.Overall.P95Ms || rep.Overall.P95Ms > rep.Overall.P99Ms || rep.Overall.P99Ms > rep.Overall.MaxMs {
		t.Errorf("percentiles not monotone: %+v", rep.Overall)
	}
}

// TestConfigValidation: bad harness parameters fail fast.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{RPS: 0, Duration: time.Second},
		{RPS: -5, Duration: time.Second},
		{RPS: 10, Duration: 0},
		{RPS: 10, Duration: time.Second, WarmFraction: 1.5},
		{RPS: 10, Duration: time.Second, WarmFraction: math.NaN()},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("Run accepted invalid config %+v", cfg)
		}
	}
}

// TestPercentiles pins the exact-percentile math.
func TestPercentiles(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	l := foldLatency(vals)
	if l.P50Ms != 50 || l.P95Ms != 95 || l.P99Ms != 99 || l.MaxMs != 100 {
		t.Errorf("percentiles: %+v", l)
	}
	if l.MeanMs != 50.5 {
		t.Errorf("mean %g, want 50.5", l.MeanMs)
	}
	one := foldLatency([]float64{7})
	if one.P50Ms != 7 || one.P99Ms != 7 || one.Count != 1 {
		t.Errorf("single sample: %+v", one)
	}
	zero := foldLatency(nil)
	if zero.Count != 0 || zero.P99Ms != 0 {
		t.Errorf("empty: %+v", zero)
	}
}
