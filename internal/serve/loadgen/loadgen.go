// Package loadgen is the daemon's ReqBench-style load and soak harness:
// an open-loop generator that fires submissions at a live tcdsimd
// according to a Poisson arrival process (arrivals keep coming whether
// or not earlier requests finished — the property that makes overload
// visible instead of self-throttling away), mixes warm specs (drawn from
// a small pool, exercising the result cache) with cold specs (unique
// seeds, forcing fresh simulation), verifies every response body against
// the first body seen for its spec hash (a byte-level corruption check
// the cache makes exact), and reports latency percentiles, throughput
// and warm-vs-cold cache behavior as a JSON report.
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:9322".
	BaseURL string
	// RPS is the target open-loop arrival rate.
	RPS float64
	// Duration is how long arrivals are generated (draining extra).
	Duration time.Duration
	// WarmFraction is the probability an arrival draws a warm spec
	// (seed from the warm pool) instead of a cold one (unique seed).
	WarmFraction float64
	// WarmPool is the number of distinct warm specs (default 8).
	WarmPool int
	// Exp is the experiment submitted (default "deadlock-unit").
	Exp string
	// HorizonUs overrides the simulated horizon per request (0 = the
	// experiment default).
	HorizonUs float64
	// Fabric selects cee (default) or ib.
	Fabric string
	// MaxInFlight bounds concurrently outstanding requests; an arrival
	// past the bound is counted as dropped, not silently skipped
	// (default 4096).
	MaxInFlight int
	// Seed feeds the harness RNG (arrival process and warm/cold coin).
	Seed int64
	// Client overrides the HTTP client (default: pooled, 60 s timeout).
	Client *http.Client
}

// Latency summarizes one latency population in milliseconds.
type Latency struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// ClassReport breaks results down by warm/cold request class.
type ClassReport struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	CacheHits int     `json:"cache_hits"`      // X-Cache: hit
	Coalesced int     `json:"cache_coalesced"` // X-Cache: coalesced
	Misses    int     `json:"cache_misses"`    // X-Cache: miss
	HitRate   float64 `json:"hit_rate"`        // (hits+coalesced)/ok
	Latency   Latency `json:"latency"`
}

// Report is the harness output, committed as LOAD_<rev>.json and
// uploaded from CI soaks.
type Report struct {
	BaseURL      string  `json:"base_url"`
	Exp          string  `json:"exp"`
	Fabric       string  `json:"fabric"`
	HorizonUs    float64 `json:"horizon_us"`
	TargetRPS    float64 `json:"target_rps"`
	WarmFraction float64 `json:"warm_fraction"`
	WarmPool     int     `json:"warm_pool"`
	DurationSec  float64 `json:"duration_sec"`
	WallSec      float64 `json:"wall_sec"`

	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Rejected    int     `json:"rejected"` // 429 backpressure
	Errors      int     `json:"errors"`   // transport/5xx failures
	Dropped     int     `json:"dropped"`  // over MaxInFlight, never sent
	Corrupted   int     `json:"corrupted"`
	AchievedRPS float64 `json:"achieved_rps"` // completed OK per wall second

	Warm    ClassReport `json:"warm"`
	Cold    ClassReport `json:"cold"`
	Overall Latency     `json:"latency"`

	// DistinctSpecs is how many spec hashes the run touched; each maps
	// to exactly one result digest when Corrupted == 0.
	DistinctSpecs int `json:"distinct_specs"`
}

// outcome is one finished request.
type outcome struct {
	warm    bool
	ok      bool
	status  int
	cache   string // X-Cache header
	latency time.Duration
}

// Run drives the load and returns the report. It returns early only on
// ctx cancellation; 429s and request errors are recorded, not fatal.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("loadgen: RPS must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be positive")
	}
	if !(cfg.WarmFraction >= 0 && cfg.WarmFraction <= 1) { // also rejects NaN
		return nil, fmt.Errorf("loadgen: WarmFraction must be in [0,1]")
	}
	if cfg.WarmPool <= 0 {
		cfg.WarmPool = 8
	}
	if cfg.Exp == "" {
		cfg.Exp = "deadlock-unit"
	}
	if cfg.Fabric == "" {
		cfg.Fabric = "cee"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInFlight,
				MaxIdleConnsPerHost: cfg.MaxInFlight,
			},
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
		digests  = make(map[string]string) // spec hash -> result sha256
		corrupt  int
		inflight = make(chan struct{}, cfg.MaxInFlight)
	)

	rep := &Report{
		BaseURL: cfg.BaseURL, Exp: cfg.Exp, Fabric: cfg.Fabric,
		HorizonUs: cfg.HorizonUs, TargetRPS: cfg.RPS,
		WarmFraction: cfg.WarmFraction, WarmPool: cfg.WarmPool,
		DurationSec: cfg.Duration.Seconds(),
	}

	submitURL := cfg.BaseURL + "/v1/jobs?wait=1"
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	coldSeed := uint64(1 << 32) // far from the warm pool's seeds
	next := start
	for {
		now := time.Now()
		if now.After(deadline) || ctx.Err() != nil {
			break
		}
		if next.After(now) {
			select {
			case <-time.After(next.Sub(now)):
			case <-ctx.Done():
			}
		}
		// Exponential inter-arrival: the open-loop Poisson process.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.RPS * float64(time.Second)))

		warm := rng.Float64() < cfg.WarmFraction
		var seed uint64
		if warm {
			seed = 1 + uint64(rng.Intn(cfg.WarmPool))
		} else {
			coldSeed++
			seed = coldSeed
		}
		rep.Requests++
		select {
		case inflight <- struct{}{}:
		default:
			rep.Dropped++
			continue
		}
		body := specBody(cfg, seed)
		wg.Add(1)
		go func(warm bool, body []byte) {
			defer wg.Done()
			defer func() { <-inflight }()
			o := outcome{warm: warm}
			t0 := time.Now()
			resp, err := client.Post(submitURL, "application/json", bytes.NewReader(body))
			o.latency = time.Since(t0)
			if err != nil {
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
				return
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			o.status = resp.StatusCode
			o.cache = resp.Header.Get("X-Cache")
			if resp.StatusCode == http.StatusOK {
				o.ok = true
				hash := resp.Header.Get("X-Spec-Hash")
				sum := sha256.Sum256(payload)
				digest := hex.EncodeToString(sum[:])
				mu.Lock()
				if prev, seen := digests[hash]; seen && prev != digest {
					corrupt++
				} else if !seen {
					digests[hash] = digest
				}
				outcomes = append(outcomes, o)
				mu.Unlock()
				return
			}
			mu.Lock()
			outcomes = append(outcomes, o)
			mu.Unlock()
		}(warm, body)
	}
	wg.Wait()
	rep.WallSec = time.Since(start).Seconds()

	var overall, warmMs, coldMs []float64
	for _, o := range outcomes {
		cls, ms := &rep.Cold, &coldMs
		if o.warm {
			cls, ms = &rep.Warm, &warmMs
		}
		cls.Requests++
		switch {
		case o.ok:
			cls.OK++
			rep.OK++
			switch o.cache {
			case "hit":
				cls.CacheHits++
			case "coalesced":
				cls.Coalesced++
			case "miss":
				cls.Misses++
			}
			v := float64(o.latency.Microseconds()) / 1000
			overall = append(overall, v)
			*ms = append(*ms, v)
		case o.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	rep.Warm.finish(warmMs)
	rep.Cold.finish(coldMs)
	rep.Overall = foldLatency(overall)
	rep.Corrupted = corrupt
	rep.DistinctSpecs = len(digests)
	if rep.WallSec > 0 {
		rep.AchievedRPS = float64(rep.OK) / rep.WallSec
	}
	return rep, ctx.Err()
}

// specBody renders the submission JSON for one arrival.
func specBody(cfg Config, seed uint64) []byte {
	spec := map[string]interface{}{
		"exp":    cfg.Exp,
		"fabric": cfg.Fabric,
		"seed":   seed,
	}
	if cfg.HorizonUs > 0 {
		spec["horizon_us"] = cfg.HorizonUs
	}
	b, _ := json.Marshal(spec)
	return b
}

func (c *ClassReport) finish(vals []float64) {
	c.Latency = foldLatency(vals)
	if c.OK > 0 {
		c.HitRate = float64(c.CacheHits+c.Coalesced) / float64(c.OK)
	}
}

// foldLatency computes exact percentiles from the full sample set (the
// harness holds every latency in memory; soak scales here are 1e3-1e6
// samples, trivially affordable).
func foldLatency(vals []float64) Latency {
	l := Latency{Count: len(vals)}
	if len(vals) == 0 {
		return l
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	l.MeanMs = sum / float64(len(vals))
	l.P50Ms = pct(vals, 0.50)
	l.P95Ms = pct(vals, 0.95)
	l.P99Ms = pct(vals, 0.99)
	l.MaxMs = vals[len(vals)-1]
	return l
}

func pct(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the one-line human digest printed after a run.
func (r *Report) Summary() string {
	return fmt.Sprintf("loadgen: %d req (%d ok, %d rejected, %d errors, %d dropped, %d corrupted) in %.1fs — %.0f rps, p50 %.1fms p95 %.1fms p99 %.1fms, warm hit rate %.2f",
		r.Requests, r.OK, r.Rejected, r.Errors, r.Dropped, r.Corrupted, r.WallSec,
		r.AchievedRPS, r.Overall.P50Ms, r.Overall.P95Ms, r.Overall.P99Ms, r.Warm.HitRate)
}
