package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tcdnet/tcd/internal/obs"
)

// Config tunes a Server.
type Config struct {
	// Workers is the simulation worker-pool size (<= 0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the jobs waiting for a worker; submissions past
	// the cap are rejected with 429 + Retry-After (<= 0 = 64).
	QueueCap int
	// CacheEntries bounds the completed-result cache (<= 0 = 1024).
	CacheEntries int
	// JobRecords bounds retained finished-job metadata (<= 0 = 4096).
	JobRecords int
	// Exec runs one job (nil = CatalogExec). Tests inject stubs here.
	Exec ExecFunc
}

// errShutdown resolves jobs orphaned by a daemon shutdown.
var errShutdown = errors.New("serve: daemon shutting down")

// job is one submission's lifecycle record. The result itself lives in
// the shared cacheEntry; the job carries identity and state.
type job struct {
	id   string
	spec *JobSpec
	hash string
	// cache is how this submission met the cache: "miss" (this job's
	// run produced the entry), "coalesced" (attached to an in-flight
	// twin), or "hit" (served from a completed entry).
	cache string
	entry *cacheEntry

	mu        sync.Mutex
	state     string // queued | running | done | failed | canceled
	errMsg    string
	submitted time.Time
	finished  time.Time
}

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	j.state = state
	if errMsg != "" {
		j.errMsg = errMsg
	}
	if state == "done" || state == "failed" || state == "canceled" {
		j.finished = time.Now()
	}
	j.mu.Unlock()
}

// view renders the status JSON under the job's lock.
func (j *job) view() map[string]interface{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := map[string]interface{}{
		"id":    j.id,
		"hash":  j.hash,
		"exp":   j.spec.Exp,
		"state": j.state,
		"cache": j.cache,
	}
	if j.errMsg != "" {
		v["error"] = j.errMsg
	}
	if !j.finished.IsZero() {
		v["wall_ms"] = float64(j.finished.Sub(j.submitted).Microseconds()) / 1000
	}
	if j.state == "done" {
		v["result_url"] = "/v1/jobs/" + j.id + "/result"
	}
	return v
}

// Server is the simulation-as-a-service daemon core: HTTP handlers in
// front of a bounded job queue, a worker pool, the spec-hash result
// cache and the SSE hub. It carries no listener of its own — callers
// mount Handler() on an http.Server (cmd/tcdsimd) or httptest (tests).
type Server struct {
	exec        ExecFunc
	queueCap    int
	jobRecords  int
	workerCount int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *job

	hub   *hub
	cache *resultCache
	mux   *http.ServeMux

	mu        sync.Mutex
	closed    bool
	jobs      map[string]*job
	doneOrder []string // finished job ids, oldest first, for record eviction
	nextID    uint64
	// attached maps an in-flight entry to every job waiting on it (the
	// owning "miss" job first); resolved and published together.
	attached map[*cacheEntry][]*job

	histMu  sync.Mutex
	latency *obs.Hist // completed-run wall time, microseconds

	// lock-free counters for /metrics and /v1/stats
	submitted uint64
	completed uint64
	failed    uint64
	canceled  uint64
	rejected  uint64
	warmHits  uint64
	coalesced uint64
	misses    uint64
	inflight  int64
	// pending counts enqueued-but-unresolved owning jobs. Unlike
	// inflight it is incremented at enqueue time, so the dequeue-to-run
	// handoff window is covered and Shutdown's drain poll cannot fire
	// between a worker taking a job and starting it.
	pending int64
}

// New builds and starts a Server (workers begin immediately).
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queueCap := cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 64
	}
	cacheCap := cfg.CacheEntries
	if cacheCap <= 0 {
		cacheCap = 1024
	}
	jobRecords := cfg.JobRecords
	if jobRecords <= 0 {
		jobRecords = 4096
	}
	exec := cfg.Exec
	if exec == nil {
		exec = CatalogExec
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		exec:        exec,
		queueCap:    queueCap,
		jobRecords:  jobRecords,
		workerCount: workers,
		ctx:         ctx,
		cancel:      cancel,
		queue:       make(chan *job, queueCap),
		hub:         newHub(),
		cache:       newResultCache(cacheCap),
		jobs:        make(map[string]*job),
		attached:    make(map[*cacheEntry][]*job),
		latency:     obs.NewHist(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/specs/{hash}/result", s.handleSpecResult)
	s.mux.HandleFunc("GET /v1/exps", s.handleExps)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Workers reports the resolved worker-pool size.
func (s *Server) Workers() int { return s.workerCount }

// Shutdown drains gracefully: new submissions are rejected with 503,
// queued and in-flight jobs are given until ctx expires to finish, then
// Close tears the rest down. Always returns after Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var err error
wait:
	for {
		if atomic.LoadInt64(&s.pending) == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Close()
	return err
}

// Close stops the daemon immediately: the run context is canceled (the
// executor stops at its next run boundary), workers are joined, jobs
// still in the queue are resolved as canceled so no waiter hangs, and
// every SSE stream is closed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed && s.ctx.Err() != nil {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	// Workers are gone; anything left in the queue never started.
	for {
		select {
		case j := <-s.queue:
			atomic.AddInt64(&s.pending, -1)
			s.cache.complete(j.entry, nil, errShutdown, 0)
			s.finishEntryJobs(j.entry, errShutdown, true)
		default:
			s.hub.close()
			return
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one owning ("miss") job and resolves everyone
// attached to its cache entry.
func (s *Server) runJob(j *job) {
	atomic.AddInt64(&s.inflight, 1)
	defer atomic.AddInt64(&s.inflight, -1)
	defer atomic.AddInt64(&s.pending, -1)
	j.setState("running", "")
	s.hub.publish(j.id, Event{"running", fmt.Sprintf(`{"id":%q,"hash":%q}`, j.id, j.hash)})
	start := time.Now()
	pw := &progressWriter{hub: s.hub, id: j.id}
	b, err := s.exec(s.ctx, j.spec, pw)
	pw.flush()
	wall := time.Since(start)
	if err == nil {
		s.histMu.Lock()
		s.latency.Observe(wall.Microseconds())
		s.histMu.Unlock()
	}
	canceled := err != nil && (errors.Is(err, context.Canceled) || s.ctx.Err() != nil)
	s.cache.complete(j.entry, b, err, wall)
	s.finishEntryJobs(j.entry, err, canceled)
}

// finishEntryJobs resolves every job attached to entry (owner included),
// updating states, counters and SSE streams.
func (s *Server) finishEntryJobs(entry *cacheEntry, err error, canceled bool) {
	s.mu.Lock()
	jobs := s.attached[entry]
	delete(s.attached, entry)
	s.mu.Unlock()
	state := "done"
	errMsg := ""
	switch {
	case canceled:
		state, errMsg = "canceled", errShutdown.Error()
		if err != nil {
			errMsg = err.Error()
		}
	case err != nil:
		state, errMsg = "failed", err.Error()
	}
	for _, j := range jobs {
		j.setState(state, errMsg)
		switch state {
		case "done":
			atomic.AddUint64(&s.completed, 1)
		case "failed":
			atomic.AddUint64(&s.failed, 1)
		default:
			atomic.AddUint64(&s.canceled, 1)
		}
		data := fmt.Sprintf(`{"id":%q,"hash":%q,"state":%q,"wall_ms":%.3f,"bytes":%d,"error":%s}`,
			j.id, j.hash, state, float64(entry.wall.Microseconds())/1000, len(entry.bytes), mustJSON(errMsg))
		s.hub.publish(j.id, Event{state, data})
		s.mu.Lock()
		s.recordFinishedLocked(j.id)
		s.mu.Unlock()
	}
}

// recordFinishedLocked (s.mu held) appends a finished job to the ring
// and evicts the oldest records (and their SSE replay buffers) past the
// cap.
func (s *Server) recordFinishedLocked(id string) {
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > 0 && len(s.jobs) > s.jobRecords {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, old)
		s.hub.drop(old)
	}
}

// retryAfterSeconds estimates the queue drain time for the Retry-After
// header: mean job wall time x queue depth / workers, clamped to
// [1, 60] s. With no completed job yet there is nothing to extrapolate
// from, so it answers 1.
func (s *Server) retryAfterSeconds() int {
	s.histMu.Lock()
	mean := s.latency.Mean() // microseconds
	n := s.latency.Count()
	s.histMu.Unlock()
	if n == 0 {
		return 1
	}
	sec := mean / 1e6 * float64(len(s.queue)) / float64(s.workerCount)
	if sec < 1 {
		return 1
	}
	if sec > 60 {
		return 60
	}
	return int(sec + 0.5)
}

// handleSubmit accepts a spec, canonicalizes and hashes it, and either
// serves it from cache, coalesces it onto an identical in-flight job, or
// enqueues it. ?wait=1 blocks until the result is ready and returns the
// result bytes directly (the load harness path).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, MaxSpecBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	spec, err := ParseJobSpec(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hash := spec.Hash()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, errShutdown)
		return
	}
	entry, created := s.cache.reserve(hash)
	s.nextID++
	j := &job{
		id: fmt.Sprintf("j%08d", s.nextID), spec: spec, hash: hash,
		entry: entry, submitted: time.Now(), state: "queued",
	}
	s.jobs[j.id] = j
	atomic.AddUint64(&s.submitted, 1)
	switch {
	case created:
		select {
		case s.queue <- j:
			atomic.AddInt64(&s.pending, 1)
			j.cache = "miss"
			atomic.AddUint64(&s.misses, 1)
			s.attached[entry] = append(s.attached[entry], j)
			s.hub.publish(j.id, Event{"queued", fmt.Sprintf(`{"id":%q,"hash":%q,"cache":"miss","queue_depth":%d}`, j.id, j.hash, len(s.queue))})
		default:
			// Backpressure: undo the reservation and the job record, and
			// tell the client when the queue should have drained.
			delete(s.jobs, j.id)
			s.cache.release(entry, errors.New("serve: queue full"))
			atomic.AddUint64(&s.rejected, 1)
			retry := s.retryAfterSeconds()
			s.mu.Unlock()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeErr(w, http.StatusTooManyRequests,
				fmt.Errorf("serve: job queue full (%d queued); retry after %ds", s.queueCap, retry))
			return
		}
	case entry.completed():
		if entry.err != nil {
			// complete() only retains successful entries, so this racer
			// window (resolved-but-failed, pre-delete) is tiny; treat it
			// like a coalesced failure.
			j.cache = "coalesced"
		} else {
			j.cache = "hit"
		}
		atomic.AddUint64(&s.warmHits, 1)
		j.state = "done"
		j.finished = time.Now()
		atomic.AddUint64(&s.completed, 1)
		s.hub.publish(j.id, Event{"cached", fmt.Sprintf(`{"id":%q,"hash":%q}`, j.id, j.hash)})
		s.hub.publish(j.id, Event{"done", fmt.Sprintf(`{"id":%q,"hash":%q,"state":"done","cache":"hit","bytes":%d}`, j.id, j.hash, len(entry.bytes))})
		s.recordFinishedLocked(j.id)
	default:
		j.cache = "coalesced"
		atomic.AddUint64(&s.coalesced, 1)
		s.attached[entry] = append(s.attached[entry], j)
		s.hub.publish(j.id, Event{"coalesced", fmt.Sprintf(`{"id":%q,"hash":%q}`, j.id, j.hash)})
	}
	s.mu.Unlock()

	if r.URL.Query().Get("wait") != "" {
		s.waitAndServeResult(w, r, j)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Id", j.id)
	w.Header().Set("X-Spec-Hash", j.hash)
	w.Header().Set("X-Cache", j.cache)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.view()) //nolint:errcheck
}

// waitAndServeResult blocks until the job's entry resolves, then serves
// the result bytes (or the error).
func (s *Server) waitAndServeResult(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.entry.done:
	case <-r.Context().Done():
		writeErr(w, http.StatusRequestTimeout, r.Context().Err())
		return
	}
	s.serveEntry(w, j.entry, j)
}

// serveEntry writes a resolved entry's bytes or error. j, when non-nil,
// contributes the identity headers.
func (s *Server) serveEntry(w http.ResponseWriter, entry *cacheEntry, j *job) {
	if j != nil {
		w.Header().Set("X-Job-Id", j.id)
		w.Header().Set("X-Cache", j.cache)
	}
	w.Header().Set("X-Spec-Hash", entry.hash)
	if entry.err != nil {
		code := http.StatusInternalServerError
		if errors.Is(entry.err, errShutdown) || errors.Is(entry.err, context.Canceled) {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, entry.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(entry.bytes)))
	w.Write(entry.bytes) //nolint:errcheck
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.view()) //nolint:errcheck
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	if !j.entry.completed() {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		writeErr(w, http.StatusConflict, fmt.Errorf("serve: job %s not finished (state %s)", j.id, state))
		return
	}
	s.serveEntry(w, j.entry, j)
}

func (s *Server) handleSpecResult(w http.ResponseWriter, r *http.Request) {
	entry := s.cache.lookup(r.PathValue("hash"))
	if entry == nil || !entry.completed() || entry.err != nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: no cached result for spec"))
		return
	}
	s.serveEntry(w, entry, nil)
}

// handleEvents streams a job's SSE feed: the replay buffer first, then
// live events until a terminal event, client disconnect, or shutdown.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeErr(w, http.StatusNotFound, errors.New("serve: unknown job"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	replay, sub := s.hub.subscribe(j.id)
	defer s.hub.unsubscribe(j.id, sub)
	for _, ev := range replay {
		io.WriteString(w, ev.sse()) //nolint:errcheck
		if ev.terminal() {
			fl.Flush()
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return
			}
			io.WriteString(w, ev.sse()) //nolint:errcheck
			fl.Flush()
			if ev.terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleExps(w http.ResponseWriter, _ *http.Request) {
	type expJSON struct {
		Name    string   `json:"name"`
		Desc    string   `json:"desc"`
		Dets    []string `json:"dets,omitempty"`
		CCs     []string `json:"ccs,omitempty"`
		Faults  bool     `json:"faults"`
		Default struct {
			Det string `json:"det,omitempty"`
			CC  string `json:"cc,omitempty"`
		} `json:"default"`
	}
	var out []expJSON
	for _, name := range CatalogNames() {
		ent := Catalog[name]
		ej := expJSON{Name: name, Desc: ent.Desc, Faults: ent.Faults}
		for _, d := range ent.Dets {
			ej.Dets = append(ej.Dets, d.String())
		}
		for _, c := range ent.CCs {
			ej.CCs = append(ej.CCs, c.String())
		}
		if len(ent.Dets) > 0 {
			ej.Default.Det = ent.DefaultDet.String()
		}
		if len(ent.CCs) > 0 {
			ej.Default.CC = ent.DefaultCC.String()
		}
		out = append(out, ej)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck
}

// Stats is the /v1/stats snapshot (also the loadgen's hit-rate source).
type Stats struct {
	Submitted     uint64  `json:"submitted"`
	Completed     uint64  `json:"completed"`
	Failed        uint64  `json:"failed"`
	Canceled      uint64  `json:"canceled"`
	Rejected      uint64  `json:"rejected"`
	WarmHits      uint64  `json:"cache_warm_hits"`
	Coalesced     uint64  `json:"cache_coalesced"`
	Misses        uint64  `json:"cache_misses"`
	CacheLive     int     `json:"cache_entries_live"`
	CacheDone     int     `json:"cache_entries_done"`
	CacheEvicted  uint64  `json:"cache_evicted"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	InFlight      int64   `json:"in_flight"`
	SSEDropped    uint64  `json:"sse_dropped"`
	LatencyCount  int64   `json:"latency_count"`
	LatencyP50Us  int64   `json:"latency_p50_us"`
	LatencyP95Us  int64   `json:"latency_p95_us"`
	LatencyP99Us  int64   `json:"latency_p99_us"`
	LatencyMeanUs float64 `json:"latency_mean_us"`
}

func (s *Server) snapshot() Stats {
	live, done, evicted := s.cache.stats()
	st := Stats{
		Submitted:    atomic.LoadUint64(&s.submitted),
		Completed:    atomic.LoadUint64(&s.completed),
		Failed:       atomic.LoadUint64(&s.failed),
		Canceled:     atomic.LoadUint64(&s.canceled),
		Rejected:     atomic.LoadUint64(&s.rejected),
		WarmHits:     atomic.LoadUint64(&s.warmHits),
		Coalesced:    atomic.LoadUint64(&s.coalesced),
		Misses:       atomic.LoadUint64(&s.misses),
		CacheLive:    live,
		CacheDone:    done,
		CacheEvicted: evicted,
		QueueDepth:   len(s.queue),
		QueueCap:     s.queueCap,
		InFlight:     atomic.LoadInt64(&s.inflight),
		SSEDropped:   s.hub.droppedCount(),
	}
	s.histMu.Lock()
	st.LatencyCount = s.latency.Count()
	if st.LatencyCount > 0 {
		st.LatencyP50Us = s.latency.Quantile(0.5)
		st.LatencyP95Us = s.latency.Quantile(0.95)
		st.LatencyP99Us = s.latency.Quantile(0.99)
		st.LatencyMeanUs = s.latency.Mean()
	}
	s.histMu.Unlock()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot()) //nolint:errcheck
}

// handleMetrics renders the daemon gauges and counters in Prometheus
// text format through the obs registry, so the daemon's /metrics speaks
// the same dialect as the simulator's live endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.snapshot()
	reg := obs.NewRegistry()
	reg.Counter("tcdsimd_jobs_total", "state", "submitted").Add(int64(st.Submitted))
	reg.Counter("tcdsimd_jobs_total", "state", "completed").Add(int64(st.Completed))
	reg.Counter("tcdsimd_jobs_total", "state", "failed").Add(int64(st.Failed))
	reg.Counter("tcdsimd_jobs_total", "state", "canceled").Add(int64(st.Canceled))
	reg.Counter("tcdsimd_jobs_total", "state", "rejected").Add(int64(st.Rejected))
	reg.Counter("tcdsimd_cache_requests_total", "kind", "warm-hit").Add(int64(st.WarmHits))
	reg.Counter("tcdsimd_cache_requests_total", "kind", "coalesced").Add(int64(st.Coalesced))
	reg.Counter("tcdsimd_cache_requests_total", "kind", "miss").Add(int64(st.Misses))
	reg.Counter("tcdsimd_cache_evicted_total").Add(int64(st.CacheEvicted))
	reg.Counter("tcdsimd_sse_dropped_total").Add(int64(st.SSEDropped))
	reg.Gauge("tcdsimd_queue_depth").Set(float64(st.QueueDepth))
	reg.Gauge("tcdsimd_queue_cap").Set(float64(st.QueueCap))
	reg.Gauge("tcdsimd_in_flight").Set(float64(st.InFlight))
	reg.Gauge("tcdsimd_cache_entries").Set(float64(st.CacheLive))
	reg.Gauge("tcdsimd_job_latency_us", "q", "p50").Set(float64(st.LatencyP50Us))
	reg.Gauge("tcdsimd_job_latency_us", "q", "p95").Set(float64(st.LatencyP95Us))
	reg.Gauge("tcdsimd_job_latency_us", "q", "p99").Set(float64(st.LatencyP99Us))
	reg.Gauge("tcdsimd_job_latency_mean_us").Set(st.LatencyMeanUs)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WriteProm(w) //nolint:errcheck
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeErr(w, http.StatusServiceUnavailable, errShutdown)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"ok":true}`+"\n") //nolint:errcheck
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, `{"error":%s}`+"\n", mustJSON(err.Error())) //nolint:errcheck
}

// mustJSON quotes a string as a JSON literal.
func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// progressWriter splits the simulator's progress stream into lines and
// publishes each as an SSE progress event on the job's topic.
type progressWriter struct {
	hub *hub
	id  string
	mu  sync.Mutex
	buf []byte
}

func (p *progressWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	p.buf = append(p.buf, b...)
	for {
		i := -1
		for k, c := range p.buf {
			if c == '\n' {
				i = k
				break
			}
		}
		if i < 0 {
			break
		}
		line := string(p.buf[:i])
		p.buf = p.buf[i+1:]
		if line != "" {
			p.hub.publish(p.id, Event{"progress", mustJSON(line)})
		}
	}
	p.mu.Unlock()
	return len(b), nil
}

// flush publishes any unterminated trailing line.
func (p *progressWriter) flush() {
	p.mu.Lock()
	if len(p.buf) > 0 {
		p.hub.publish(p.id, Event{"progress", mustJSON(string(p.buf))})
		p.buf = nil
	}
	p.mu.Unlock()
}
