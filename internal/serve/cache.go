package serve

import (
	"container/list"
	"sync"
	"time"
)

// cacheEntry is the unit of result sharing: every job with the same spec
// hash points at one entry. The entry is created in-flight when the
// first submission reserves the hash; concurrent identical submissions
// coalesce onto it instead of enqueueing duplicate work, and later
// submissions after completion are warm hits served straight from bytes.
type cacheEntry struct {
	hash string
	// done closes when the run completes (successfully or not); bytes
	// and err are immutable afterwards. Waiters select on done, so a
	// coalesced or waiting client never polls.
	done chan struct{}
	// bytes is the full deterministic result JSON.
	bytes []byte
	err   error
	// wall is the producing run's duration (zero for failed runs).
	wall time.Duration
	// lru is the entry's position in the cache's eviction list (nil
	// while in-flight; in-flight entries are never evicted).
	lru *list.Element
}

// completed reports whether the entry has resolved.
func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// resultCache maps canonical-spec hashes to entries with an LRU bound on
// completed entries. In-flight entries are pinned: evicting one would
// orphan its waiters.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	// order tracks completed entries, most recently used at the front.
	order   *list.List
	evicted uint64
}

func newResultCache(cap int) *resultCache {
	if cap < 1 {
		cap = 1
	}
	return &resultCache{
		cap:     cap,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
	}
}

// lookup returns the entry for hash, refreshing its LRU position, or nil.
func (c *resultCache) lookup(hash string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[hash]
	if e != nil && e.lru != nil {
		c.order.MoveToFront(e.lru)
	}
	return e
}

// reserve returns the existing entry for hash, or creates and registers
// a fresh in-flight entry (created=true) that the caller must resolve
// via complete or abandon via release.
func (c *resultCache) reserve(hash string) (e *cacheEntry, created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[hash]; e != nil {
		if e.lru != nil {
			c.order.MoveToFront(e.lru)
		}
		return e, false
	}
	e = &cacheEntry{hash: hash, done: make(chan struct{})}
	c.entries[hash] = e
	return e, true
}

// complete resolves an in-flight entry and inserts it into the LRU,
// evicting the least recently used completed entries past the cap.
// Failed runs resolve their waiters but are not retained: the next
// submission of the same spec retries instead of replaying the error.
func (c *resultCache) complete(e *cacheEntry, bytes []byte, err error, wall time.Duration) {
	c.mu.Lock()
	e.bytes, e.err, e.wall = bytes, err, wall
	close(e.done)
	if err != nil {
		delete(c.entries, e.hash)
	} else {
		e.lru = c.order.PushFront(e)
		for c.order.Len() > c.cap {
			old := c.order.Remove(c.order.Back()).(*cacheEntry)
			delete(c.entries, old.hash)
			c.evicted++
		}
	}
	c.mu.Unlock()
}

// release abandons an in-flight reservation that never started (queue
// full): the entry is unregistered so a later submission can retry, and
// any racer that coalesced onto it in the meantime is resolved with err.
func (c *resultCache) release(e *cacheEntry, err error) {
	c.mu.Lock()
	e.err = err
	close(e.done)
	delete(c.entries, e.hash)
	c.mu.Unlock()
}

// stats reports the live entry count (in-flight + completed), the
// completed count, and the eviction total.
func (c *resultCache) stats() (live, completed int, evicted uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.order.Len(), c.evicted
}
