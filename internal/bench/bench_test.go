package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

// TestRunProducesReport exercises the harness at a tiny scale and checks
// every field CI consumes is populated and the JSON round-trips.
func TestRunProducesReport(t *testing.T) {
	r := Run(Config{
		Rev:        "test",
		Iters:      1,
		SweepSeeds: 2,
		Parallel:   2,
		Horizon:    units.Millisecond,
	})
	if r.Rev != "test" || r.GoVersion == "" || r.NumCPU <= 0 || r.GoMaxProcs <= 0 {
		t.Fatalf("report header incomplete: %+v", r)
	}
	wantCases := []string{"observe-cee-baseline", "observe-cee-tcd", "observe-ib-baseline", "table3"}
	if len(r.Cases) != len(wantCases) {
		t.Fatalf("got %d cases, want %d", len(r.Cases), len(wantCases))
	}
	for i, c := range r.Cases {
		if c.Name != wantCases[i] {
			t.Errorf("case %d = %q, want %q", i, c.Name, wantCases[i])
		}
		if c.NsPerOp <= 0 || c.AllocsPerOp <= 0 || c.BytesPerOp <= 0 {
			t.Errorf("case %s has empty measurements: %+v", c.Name, c)
		}
	}
	for _, c := range r.Cases[:3] { // observe cases wire a metrics registry
		if c.EventsPerSec <= 0 {
			t.Errorf("case %s missing events/sec", c.Name)
		}
	}
	if r.Sweep.Seeds != 2 || r.Sweep.Parallel != 2 ||
		r.Sweep.SerialMs <= 0 || r.Sweep.ParallelMs <= 0 || r.Sweep.Speedup <= 0 {
		t.Errorf("sweep stats incomplete: %+v", r.Sweep)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Rev != "test" || len(back.Cases) != len(wantCases) {
		t.Errorf("round-tripped report differs: %+v", back)
	}
}
