package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

// TestRunProducesReport exercises the harness at a tiny scale and checks
// every field CI consumes is populated and the JSON round-trips.
func TestRunProducesReport(t *testing.T) {
	r := Run(Config{
		Rev:        "test",
		Iters:      1,
		SweepSeeds: 2,
		Parallel:   2,
		Horizon:    units.Millisecond,
	})
	if r.Rev != "test" || r.GoVersion == "" || r.NumCPU <= 0 || r.GoMaxProcs <= 0 {
		t.Fatalf("report header incomplete: %+v", r)
	}
	wantCases := []string{
		"observe-cee-baseline", "observe-cee-tcd", "observe-cee-telemetry",
		"observe-ib-baseline", "table3",
		"sched-depth-1k", "sched-depth-16k", "sched-depth-256k",
		"sched-wheel-1k", "sched-wheel-16k", "sched-wheel-256k",
		"sched-crossover-1k", "sched-crossover-16k", "sched-crossover-256k",
		"route-build-k16", "soa-scan",
	}
	if len(r.Cases) != len(wantCases) {
		t.Fatalf("got %d cases, want %d", len(r.Cases), len(wantCases))
	}
	for i, c := range r.Cases {
		if c.Name != wantCases[i] {
			t.Errorf("case %d = %q, want %q", i, c.Name, wantCases[i])
		}
		if c.NsPerOp <= 0 || c.AllocsPerOp <= 0 || c.BytesPerOp <= 0 {
			t.Errorf("case %s has empty measurements: %+v", c.Name, c)
		}
	}
	for _, c := range r.Cases {
		if c.Name == "table3" {
			continue // table3 does not wire a metrics registry
		}
		if c.EventsPerSec <= 0 {
			t.Errorf("case %s missing events/sec", c.Name)
		}
	}
	if r.Sweep.Seeds != 2 || r.Sweep.Parallel != 2 ||
		r.Sweep.SerialMs <= 0 || r.Sweep.ParallelMs <= 0 || r.Sweep.Speedup <= 0 {
		t.Errorf("sweep stats incomplete: %+v", r.Sweep)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Rev != "test" || len(back.Cases) != len(wantCases) {
		t.Errorf("round-tripped report differs: %+v", back)
	}
}

// TestCompareGuard pins the CI regression guard's semantics: >tol
// regressions on ns/op or allocs/op of the guarded fig3 cases fail,
// improvements and small wobble pass, and cases absent from the prior
// report are skipped.
func TestCompareGuard(t *testing.T) {
	mk := func(ns, allocs float64) *Report {
		return &Report{Cases: []Case{
			{Name: "observe-cee-baseline", NsPerOp: ns, AllocsPerOp: allocs},
			{Name: "observe-ib-baseline", NsPerOp: ns, AllocsPerOp: allocs},
			{Name: "table3", NsPerOp: 1, AllocsPerOp: 1}, // never guarded
		}}
	}
	prev := mk(1000, 500)

	if regs := Compare(prev, mk(1100, 550), 0.15); len(regs) != 0 {
		t.Errorf("+10%% wobble flagged as regression: %v", regs)
	}
	if regs := Compare(prev, mk(700, 100), 0.15); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
	regs := Compare(prev, mk(1200, 500), 0.15)
	if len(regs) != 2 { // both guarded cases regress on ns/op
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Metric != "ns_per_op" || regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Errorf("unexpected regression record: %+v", regs[0])
	}
	if regs := Compare(prev, mk(1000, 600), 0.15); len(regs) != 2 {
		t.Errorf("allocs/op regression not caught: %v", regs)
	}
	// A prior report missing the guarded cases guards nothing.
	if regs := Compare(&Report{}, mk(9999, 9999), 0.15); len(regs) != 0 {
		t.Errorf("missing prior cases should be skipped: %v", regs)
	}
}
