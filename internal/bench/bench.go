// Package bench is the performance-regression harness: it times a fixed
// set of reduced-scale experiment runs (the same scenarios the paper's
// figures use), measures allocations and event throughput, runs a
// serial-vs-parallel sweep to record the multi-core speedup, and emits
// one JSON report per revision (BENCH_<rev>.json). CI runs it on every
// push so the perf trajectory of the simulator is tracked over time;
// scripts/bench.sh is the local entry point.
package bench

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/exp/sweep"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

// Config tunes the harness. The zero value is the reduced CI scale.
type Config struct {
	// Rev labels the report (git short hash; "dev" when unknown).
	Rev string
	// Iters is the measurement iteration count per case (default 3).
	Iters int
	// SweepSeeds is the seed count of the speedup sweep (default 8).
	SweepSeeds int
	// Parallel is the sweep worker count (default GOMAXPROCS).
	Parallel int
	// Horizon scales the per-run simulated time (default 5 ms for the
	// observation cases, 3 ms for the table3 sweep).
	Horizon units.Time
}

// Case is one timed scenario.
type Case struct {
	Name         string             `json:"name"`
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  float64            `json:"allocs_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op"`
	EventsPerSec float64            `json:"events_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// SweepStats records the serial-vs-parallel wall-clock comparison of an
// N-seed table3 sweep — the headline multi-core number.
type SweepStats struct {
	Seeds      int     `json:"seeds"`
	Parallel   int     `json:"parallel"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// Report is the full benchmark output of one revision.
type Report struct {
	Rev        string     `json:"rev"`
	GoVersion  string     `json:"go_version"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	UnixMs     int64      `json:"unix_ms"`
	Cases      []Case     `json:"cases"`
	Sweep      SweepStats `json:"sweep"`
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (c *Config) fill() {
	if c.Rev == "" {
		c.Rev = "dev"
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.SweepSeeds <= 0 {
		c.SweepSeeds = 8
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * units.Millisecond
	}
}

// measure times fn over iters runs. fn reports the simulator events it
// processed (zero when unknown) and a headline metric map sampled from
// the last iteration.
func measure(name string, iters int, fn func() (events uint64, metrics map[string]float64)) Case {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var events uint64
	var metrics map[string]float64
	for i := 0; i < iters; i++ {
		ev, m := fn()
		events += ev
		metrics = m
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	c := Case{
		Name:        name,
		NsPerOp:     float64(wall.Nanoseconds()) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Metrics:     metrics,
	}
	if sec := wall.Seconds(); sec > 0 && events > 0 {
		c.EventsPerSec = float64(events) / sec
	}
	return c
}

// observeCase times one §3.1 observation run per iteration.
func observeCase(name string, kind exp.FabricKind, det exp.DetectorKind, horizon units.Time, iters int) Case {
	return measure(name, iters, func() (uint64, map[string]float64) {
		cfg := exp.DefaultObserveConfig(kind, det, false)
		cfg.Horizon = horizon
		cfg.BurstRounds = 10
		cfg.Seed = 42
		reg := obs.NewRegistry()
		cfg.Obs = obs.Config{Metrics: reg}
		res := exp.Observe(cfg)
		return uint64(reg.Counter("sched_events").Value()), map[string]float64{
			"p2_max_queue_kb": res.Scalars["p2_max_queue_kb"],
			"f0_ce":           res.Scalars["f0_ce"],
		}
	})
}

// Run executes the harness and returns the report.
func Run(cfg Config) *Report {
	cfg.fill()
	r := &Report{
		Rev:        cfg.Rev,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		UnixMs:     time.Now().UnixMilli(),
	}
	r.Cases = append(r.Cases,
		observeCase("observe-cee-baseline", exp.CEE, exp.DetBaseline, cfg.Horizon, cfg.Iters),
		observeCase("observe-cee-tcd", exp.CEE, exp.DetTCD, cfg.Horizon, cfg.Iters),
		observeCase("observe-ib-baseline", exp.IB, exp.DetBaseline, cfg.Horizon, cfg.Iters),
		measure("table3", cfg.Iters, func() (uint64, map[string]float64) {
			res, _ := exp.Table3(cfg.Horizon, 42)
			return 0, map[string]float64{"TCD (CEE)": res.Scalars["TCD (CEE)"]}
		}),
	)
	r.Sweep = speedupSweep(cfg)
	return r
}

// speedupSweep times the same multi-seed table3 grid with one worker and
// with cfg.Parallel workers. Per-run determinism makes the two runs do
// identical work, so the wall-clock ratio is a clean speedup measure.
func speedupSweep(cfg Config) SweepStats {
	horizon := cfg.Horizon * 3 / 5 // lighter than the timed cases
	fn := func(s sweep.Spec) []*exp.Result {
		res, _ := exp.Table3(horizon, s.Seed)
		return []*exp.Result{res}
	}
	specs := sweep.Grid{Exps: []string{"table3"}, Seeds: sweep.Seq(1, cfg.SweepSeeds)}.Specs()
	time4 := func(workers int) time.Duration {
		start := time.Now()
		sweep.Run(context.Background(), specs, fn, sweep.Options{Parallel: workers})
		return time.Since(start)
	}
	serial := time4(1)
	parallel := time4(cfg.Parallel)
	st := SweepStats{
		Seeds:      cfg.SweepSeeds,
		Parallel:   cfg.Parallel,
		SerialMs:   serial.Seconds() * 1000,
		ParallelMs: parallel.Seconds() * 1000,
	}
	if parallel > 0 {
		st.Speedup = float64(serial) / float64(parallel)
	}
	return st
}
