// Package bench is the performance-regression harness: it times a fixed
// set of reduced-scale experiment runs (the same scenarios the paper's
// figures use), measures allocations and event throughput, runs a
// serial-vs-parallel sweep to record the multi-core speedup, and emits
// one JSON report per revision (BENCH_<rev>.json). CI runs it on every
// push so the perf trajectory of the simulator is tracked over time;
// scripts/bench.sh is the local entry point.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/exp/sweep"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// Config tunes the harness. The zero value is the reduced CI scale.
type Config struct {
	// Rev labels the report (git short hash; "dev" when unknown).
	Rev string
	// Iters is the measurement iteration count per case (default 3).
	Iters int
	// SweepSeeds is the seed count of the speedup sweep (default 8).
	SweepSeeds int
	// Parallel is the sweep worker count (default GOMAXPROCS).
	Parallel int
	// Horizon scales the per-run simulated time (default 5 ms for the
	// observation cases, 3 ms for the table3 sweep).
	Horizon units.Time
}

// Case is one timed scenario.
type Case struct {
	Name         string             `json:"name"`
	NsPerOp      float64            `json:"ns_per_op"`
	AllocsPerOp  float64            `json:"allocs_per_op"`
	BytesPerOp   float64            `json:"bytes_per_op"`
	EventsPerSec float64            `json:"events_per_sec,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// SweepStats records the serial-vs-parallel wall-clock comparison of an
// N-seed table3 sweep — the headline multi-core number.
type SweepStats struct {
	Seeds      int     `json:"seeds"`
	Parallel   int     `json:"parallel"`
	SerialMs   float64 `json:"serial_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// Report is the full benchmark output of one revision.
type Report struct {
	Rev        string     `json:"rev"`
	GoVersion  string     `json:"go_version"`
	NumCPU     int        `json:"num_cpu"`
	GoMaxProcs int        `json:"gomaxprocs"`
	UnixMs     int64      `json:"unix_ms"`
	Cases      []Case     `json:"cases"`
	Sweep      SweepStats `json:"sweep"`
}

// WriteJSON serializes the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (c *Config) fill() {
	if c.Rev == "" {
		c.Rev = "dev"
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.SweepSeeds <= 0 {
		c.SweepSeeds = 8
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.GOMAXPROCS(0)
	}
	if c.Horizon <= 0 {
		c.Horizon = 5 * units.Millisecond
	}
}

// measure times fn over iters runs. fn reports the simulator events it
// processed (zero when unknown) and a headline metric map sampled from
// the last iteration.
func measure(name string, iters int, fn func() (events uint64, metrics map[string]float64)) Case {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var events uint64
	var metrics map[string]float64
	for i := 0; i < iters; i++ {
		ev, m := fn()
		events += ev
		metrics = m
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	c := Case{
		Name:        name,
		NsPerOp:     float64(wall.Nanoseconds()) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		Metrics:     metrics,
	}
	if sec := wall.Seconds(); sec > 0 && events > 0 {
		c.EventsPerSec = float64(events) / sec
	}
	return c
}

// observeCase times one §3.1 observation run per iteration.
func observeCase(name string, kind exp.FabricKind, det exp.DetectorKind, horizon units.Time, iters int) Case {
	return measure(name, iters, func() (uint64, map[string]float64) {
		cfg := exp.DefaultObserveConfig(kind, det, false)
		cfg.Horizon = horizon
		cfg.BurstRounds = 10
		cfg.Seed = 42
		reg := obs.NewRegistry()
		cfg.Obs = obs.Config{Metrics: reg}
		res := exp.Observe(cfg)
		return uint64(reg.Counter("sched_events").Value()), map[string]float64{
			"p2_max_queue_kb": res.Scalars["p2_max_queue_kb"],
			"f0_ce":           res.Scalars["f0_ce"],
		}
	})
}

// observeTelemetryCase times the same fig3 run with the full streaming
// telemetry stack attached (event fold, histograms, windowed queue
// sampler), so every report records the recorder-enabled overhead next
// to the recorder-disabled baseline case.
func observeTelemetryCase(name string, kind exp.FabricKind, horizon units.Time, iters int) Case {
	return measure(name, iters, func() (uint64, map[string]float64) {
		cfg := exp.DefaultObserveConfig(kind, exp.DetBaseline, false)
		cfg.Horizon = horizon
		cfg.BurstRounds = 10
		cfg.Seed = 42
		reg := obs.NewRegistry()
		tel := obs.NewTelemetry(nil)
		cfg.Obs = obs.Config{Metrics: reg, Telemetry: tel}
		res := exp.Observe(cfg)
		return uint64(reg.Counter("sched_events").Value()), map[string]float64{
			"p2_max_queue_kb": res.Scalars["p2_max_queue_kb"],
			"fct_hist_n":      float64(tel.FCT.Count()),
			"queue_hist_n":    float64(tel.QueueDepth.Count()),
		}
	})
}

// schedChurn builds one iteration of the scheduler churn loop: push,
// pop, cancel and reschedule against a scheduler preloaded with depth
// pending events whose fire times spread over span time units. The
// constructor selects the queue under test (hybrid or heap-only).
func schedChurn(depth int, span int64, mk func() *sim.Scheduler) func() (uint64, map[string]float64) {
	const churn = 100000
	return func() (uint64, map[string]float64) {
		r := rng.New(11)
		s := mk()
		ids := make([]sim.EventID, depth)
		// Every event re-pushes itself when it fires, carrying its slot
		// in a preallocated pointer arg, so the queue holds exactly
		// depth events throughout and pops are matched by pushes.
		type slot struct{ i int }
		slots := make([]slot, depth)
		var refill func(any)
		refill = func(a any) {
			sl := a.(*slot)
			ids[sl.i] = s.AtArg(s.Now()+1+units.Time(r.Intn(int(span))), refill, a)
		}
		for i := range ids {
			slots[i].i = i
			ids[i] = s.AtArg(units.Time(1+r.Intn(int(span))), refill, &slots[i])
		}
		ops := uint64(depth)
		gap := units.Time(span / int64(depth))
		for k := 0; k < churn; k++ {
			switch k & 3 {
			case 0: // reschedule a live handle in place
				j := r.Intn(depth)
				s.Reschedule(ids[j], s.Now()+1+units.Time(r.Intn(int(span))))
				ops++
			case 1: // cancel + fresh push
				j := r.Intn(depth)
				s.Cancel(ids[j])
				ids[j] = s.AtArg(s.Now()+1+units.Time(r.Intn(int(span))), refill, &slots[j])
				ops += 2
			default: // advance: pops ~1 event, which re-pushes itself
				s.RunUntil(s.Now() + gap)
			}
		}
		ops += 2 * s.Processed() // each pop came with a matching refill push
		s.Stop()
		return ops, map[string]float64{"depth": float64(depth), "processed": float64(s.Processed())}
	}
}

// schedCase measures the event queue in isolation at a fixed depth, with
// fire times spread over 2^30 time units so most pending events sit
// beyond the wheel horizon (the far-timer regime). EventsPerSec counts
// queue operations, so the BENCH trajectory tracks the raw queue cost
// independently of the fabric and host layers riding on it.
func schedCase(name string, depth, iters int) Case {
	return measure(name, iters, schedChurn(depth, 1<<30, sim.New))
}

// schedWheelCase is the same churn loop with fire times confined to a
// 2^28-unit spread: pending events live in the level-0 and level-1 wheel
// bands rather than the overflow heap, so these cases track the O(1)
// slot-insert/cancel path and the bucket cascade cost.
func schedWheelCase(name string, depth, iters int) Case {
	return measure(name, iters, schedChurn(depth, 1<<28, sim.New))
}

// crossoverCase runs the identical churn trace on the hybrid and on the
// heap-only configuration and reports both, so the BENCH trajectory
// records where the wheel starts paying for itself as depth grows. The
// headline numbers (ns/op, events/sec) are the hybrid's; the heap-only
// side and the speedup ratio ride in the metrics map.
func crossoverCase(name string, depth, iters int) Case {
	hy := measure(name, iters, schedChurn(depth, 1<<30, sim.New))
	ho := measure(name, iters, schedChurn(depth, 1<<30, sim.NewHeapOnly))
	hy.Metrics = map[string]float64{
		"depth":                   float64(depth),
		"heaponly_ns_per_op":      ho.NsPerOp,
		"heaponly_events_per_sec": ho.EventsPerSec,
		"wheel_speedup":           ho.NsPerOp / hy.NsPerOp,
	}
	return hy
}

// routeBuildCase times route-table construction on a fat-tree: the eager
// reverse-BFS build of every destination column per iteration (the cost
// hyperscale runs avoid), with the lazy structural table's footprint for
// the same topology riding in the metrics map. EventsPerSec counts
// columns built.
func routeBuildCase(name string, k, iters int) Case {
	ft := topo.NewFatTree(k, 40*units.Gbps, 4*units.Microsecond)
	src := routing.FatTreeColumns(ft)
	return measure(name, iters, func() (uint64, map[string]float64) {
		eager := routing.BuildShortestPath(ft.Topology)
		lazy := routing.NewLazy(ft.Topology, src, 64)
		for _, h := range ft.HostList {
			lazy.Choices(ft.HostList[0], h)
		}
		return uint64(eager.NumHosts()), map[string]float64{
			"hosts":         float64(eager.NumHosts()),
			"eager_mb":      float64(eager.LiveBytes()) / (1 << 20),
			"lazy_live_mb":  float64(lazy.LiveBytes()) / (1 << 20),
			"lazy_bfs_runs": float64(lazy.Stats().BFSRuns),
		}
	})
}

// closedGate refuses every transmission — the bench stand-in for a
// permanently paused PFC gate.
type closedGate struct{}

func (closedGate) CanSend(uint8, units.ByteSize) bool      { return false }
func (closedGate) OnSend(uint8, units.ByteSize)            {}
func (closedGate) HandleCtrl(units.Time, fabric.CtrlFrame) {}

// soaScanCase times the struct-of-arrays fabric sweeps — WaitCycles,
// Stranded, QueuedPayload — on a ring frozen into the classic circular
// buffer dependency: every clockwise egress holds a packet destined two
// switches ahead behind a closed gate, so the pause-wait graph is one
// n-cycle and every sweep walks the flat qbytes/blocked arrays end to
// end. EventsPerSec counts sweep passes.
func soaScanCase(name string, nSwitch, iters int) Case {
	ring := topo.NewRing(nSwitch, 40*units.Gbps, 4*units.Microsecond)
	net := fabric.New(sim.New(), ring.Topology, fabric.DefaultConfig())
	routing.BuildShortestPath(ring.Topology).Attach(net, routing.FirstPath())
	for _, p := range net.Ports() {
		p.AttachGate(closedGate{})
	}
	for i := 0; i < nSwitch; i++ {
		pkt := net.NewPacket()
		pkt.Dst = ring.Hosts[(i+2)%nSwitch]
		pkt.Size = units.KB
		pkt.Payload = units.KB
		net.PortToward(ring.Sw[i], ring.Sw[(i+1)%nSwitch]).Enqueue(pkt)
	}
	return measure(name, iters, func() (uint64, map[string]float64) {
		const sweeps = 200
		var cycles, stranded int
		var queued units.ByteSize
		for s := 0; s < sweeps; s++ {
			cycles = len(net.WaitCycles())
			rep := net.Stranded()
			stranded = len(rep.Ports)
			queued = net.QueuedPayload()
		}
		return sweeps, map[string]float64{
			"switches":       float64(nSwitch),
			"wait_cycles":    float64(cycles),
			"stranded_ports": float64(stranded),
			"queued_kb":      float64(queued) / float64(units.KB),
		}
	})
}

// Regression is one guard violation found by Compare.
type Regression struct {
	Case   string  `json:"case"`
	Metric string  `json:"metric"`
	Prev   float64 `json:"prev"`
	Cur    float64 `json:"cur"`
	Ratio  float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s regressed %.1f%%: %.0f -> %.0f",
		r.Case, r.Metric, (r.Ratio-1)*100, r.Prev, r.Cur)
}

// GuardCases are the end-to-end cases the CI regression guard compares
// across revisions: the fig3 single-congestion-point runs with the
// recorder disabled, plus the telemetry-enabled variant so the streaming
// collector's overhead cannot silently creep. Compare skips cases the
// prior report lacks, so older reports keep guarding what they have.
var GuardCases = []string{
	"observe-cee-baseline", "observe-ib-baseline", "observe-cee-telemetry",
	"route-build-k16", "soa-scan",
}

// Compare checks cur against prev for the guard cases and returns the
// ns/op and allocs/op regressions exceeding tol (0.15 = fail above
// +15%). Cases missing from either report are skipped, so reports from
// older revisions with fewer cases still guard what they have.
func Compare(prev, cur *Report, tol float64) []Regression {
	prevByName := make(map[string]*Case, len(prev.Cases))
	for i := range prev.Cases {
		prevByName[prev.Cases[i].Name] = &prev.Cases[i]
	}
	var regs []Regression
	for _, name := range GuardCases {
		p := prevByName[name]
		if p == nil {
			continue
		}
		for i := range cur.Cases {
			c := &cur.Cases[i]
			if c.Name != name {
				continue
			}
			for _, m := range []struct {
				metric    string
				prev, cur float64
			}{
				{"ns_per_op", p.NsPerOp, c.NsPerOp},
				{"allocs_per_op", p.AllocsPerOp, c.AllocsPerOp},
			} {
				if m.prev <= 0 {
					continue
				}
				if ratio := m.cur / m.prev; ratio > 1+tol {
					regs = append(regs, Regression{
						Case: name, Metric: m.metric,
						Prev: m.prev, Cur: m.cur, Ratio: ratio,
					})
				}
			}
		}
	}
	return regs
}

// Run executes the harness and returns the report.
func Run(cfg Config) *Report {
	cfg.fill()
	r := &Report{
		Rev:        cfg.Rev,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		UnixMs:     time.Now().UnixMilli(),
	}
	r.Cases = append(r.Cases,
		observeCase("observe-cee-baseline", exp.CEE, exp.DetBaseline, cfg.Horizon, cfg.Iters),
		observeCase("observe-cee-tcd", exp.CEE, exp.DetTCD, cfg.Horizon, cfg.Iters),
		observeTelemetryCase("observe-cee-telemetry", exp.CEE, cfg.Horizon, cfg.Iters),
		observeCase("observe-ib-baseline", exp.IB, exp.DetBaseline, cfg.Horizon, cfg.Iters),
		measure("table3", cfg.Iters, func() (uint64, map[string]float64) {
			res, _ := exp.Table3(cfg.Horizon, 42)
			return 0, map[string]float64{"TCD (CEE)": res.Scalars["TCD (CEE)"]}
		}),
		schedCase("sched-depth-1k", 1<<10, cfg.Iters),
		schedCase("sched-depth-16k", 1<<14, cfg.Iters),
		schedCase("sched-depth-256k", 1<<18, cfg.Iters),
		schedWheelCase("sched-wheel-1k", 1<<10, cfg.Iters),
		schedWheelCase("sched-wheel-16k", 1<<14, cfg.Iters),
		schedWheelCase("sched-wheel-256k", 1<<18, cfg.Iters),
		crossoverCase("sched-crossover-1k", 1<<10, cfg.Iters),
		crossoverCase("sched-crossover-16k", 1<<14, cfg.Iters),
		crossoverCase("sched-crossover-256k", 1<<18, cfg.Iters),
		routeBuildCase("route-build-k16", 16, cfg.Iters),
		soaScanCase("soa-scan", 256, cfg.Iters),
	)
	r.Sweep = speedupSweep(cfg)
	return r
}

// speedupSweep times the same multi-seed table3 grid with one worker and
// with cfg.Parallel workers. Per-run determinism makes the two runs do
// identical work, so the wall-clock ratio is a clean speedup measure.
func speedupSweep(cfg Config) SweepStats {
	horizon := cfg.Horizon * 3 / 5 // lighter than the timed cases
	fn := func(s sweep.Spec) []*exp.Result {
		res, _ := exp.Table3(horizon, s.Seed)
		return []*exp.Result{res}
	}
	specs := sweep.Grid{Exps: []string{"table3"}, Seeds: sweep.Seq(1, cfg.SweepSeeds)}.Specs()
	time4 := func(workers int) time.Duration {
		start := time.Now()
		sweep.Run(context.Background(), specs, fn, sweep.Options{Parallel: workers})
		return time.Since(start)
	}
	serial := time4(1)
	parallel := time4(cfg.Parallel)
	st := SweepStats{
		Seeds:      cfg.SweepSeeds,
		Parallel:   cfg.Parallel,
		SerialMs:   serial.Seconds() * 1000,
		ParallelMs: parallel.Seconds() * 1000,
	}
	if parallel > 0 {
		st.Speedup = float64(serial) / float64(parallel)
	}
	return st
}
