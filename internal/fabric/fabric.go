// Package fabric is the simulator's dataplane: switches, host NICs, ports,
// egress queues and links, driven by a discrete-event scheduler.
//
// The fabric is deliberately mechanism-free: hop-by-hop flow control
// (PFC, CBFC) plugs in through the TxGate/RxMeter interfaces, congestion
// detection (ECN, FECN, TCD) through the Detector interface, and traffic
// sources through the Source interface. This mirrors how the paper's
// mechanisms compose: the same dataplane underlies CEE and InfiniBand,
// differing only in which gates, meters and detectors are attached.
//
// The ON/OFF bookkeeping that TCD depends on lives here: a port is OFF
// when it has traffic to send but its gate refuses (PAUSE in effect, or
// credits exhausted). The port tells its detector when each OFF period
// ends, which is exactly the state the paper's switches keep (one
// timestamp per port per priority).
package fabric

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// CtrlKind enumerates hop-by-hop flow-control frames. Control frames are
// out-of-band: they bypass data queues but wait for the frame currently
// being serialized, which is what makes the paper's response time
// tau = 2*MTU/C + 2*t_p emerge rather than being hard-coded.
type CtrlKind uint8

const (
	// CtrlPause is a PFC PAUSE for one priority.
	CtrlPause CtrlKind = iota
	// CtrlResume is a PFC RESUME for one priority.
	CtrlResume
	// CtrlCredit is a CBFC FCCL credit-limit update for one virtual lane.
	CtrlCredit
)

func (k CtrlKind) String() string {
	switch k {
	case CtrlPause:
		return "PAUSE"
	case CtrlResume:
		return "RESUME"
	case CtrlCredit:
		return "FCCL"
	}
	return fmt.Sprintf("CtrlKind(%d)", uint8(k))
}

// CtrlFrame is a hop-by-hop flow-control message.
type CtrlFrame struct {
	Kind CtrlKind
	// Prio is the priority (CEE) or virtual lane (InfiniBand).
	Prio uint8
	// FCCL is the credit limit in bytes (CtrlCredit only).
	FCCL int64
}

// ctrlFrameBytes is the wire size of a control frame (PFC PAUSE frames are
// 64-byte Ethernet frames; FCCL flits are comparable).
const ctrlFrameBytes units.ByteSize = 64

// TxGate is the egress side of a hop-by-hop flow control: it decides
// whether the port may transmit. Implementations receive control frames
// from the downstream side and must call Port.GateChanged after any state
// change that could unblock transmission.
type TxGate interface {
	// CanSend reports whether a packet of the given size on the given
	// priority may be transmitted now.
	CanSend(prio uint8, size units.ByteSize) bool
	// OnSend accounts for a transmitted packet (e.g. consumes credits).
	OnSend(prio uint8, size units.ByteSize)
	// HandleCtrl processes a control frame from the downstream peer.
	HandleCtrl(now units.Time, f CtrlFrame)
}

// RxMeter is the ingress side of a hop-by-hop flow control: it accounts
// for buffer occupancy attributable to one input port and originates
// control frames (PAUSE/RESUME or FCCL) toward the upstream peer.
type RxMeter interface {
	// OnArrive accounts for a packet entering the node via this port.
	OnArrive(now units.Time, pkt *packet.Packet)
	// OnFree accounts for that packet finally leaving the node.
	OnFree(now units.Time, pkt *packet.Packet)
}

// Detector observes an egress port and marks packets (ECN/FECN/TCD).
// One detector instance serves one (port, priority) pair.
type Detector interface {
	// OnDequeue is called when a packet starts transmission at the port;
	// qlen is the egress queue length in bytes after removing pkt. The
	// detector may mutate pkt.Code.
	OnDequeue(now units.Time, pkt *packet.Packet, qlen units.ByteSize)
	// OnOffStart is called when an OFF period begins: the port has queued
	// traffic but the gate refuses transmission.
	OnOffStart(now units.Time)
	// OnOffEnd is called when that OFF period ends (the gate allows
	// transmission again). It always precedes the next OnDequeue.
	OnOffEnd(now units.Time)
}

// EnqueueDetector is an optional Detector extension for mechanisms that
// evaluate their marking condition when a packet *arrives* at the egress
// queue rather than when it leaves. InfiniBand's FECN root/victim test is
// arrival-based: a packet arriving while the port is credit-starved is a
// victim, one arriving in a credit-rich window looks like root traffic.
type EnqueueDetector interface {
	OnEnqueue(now units.Time, pkt *packet.Packet, qlenBefore units.ByteSize)
}

// Source feeds a host NIC port. The port pulls from the source whenever
// it is idle, which models a NIC QP scheduler: paced packets do not sit in
// a standing queue, and after a PAUSE the accumulated pacing debt drains
// at line rate — the ON-OFF pattern the paper describes at port P0.
type Source interface {
	// Head returns the next packet and the earliest time it may be sent.
	// It returns (nil, t) when nothing is pending before t; t may be
	// units.Forever when the source is idle.
	Head(now units.Time) (*packet.Packet, units.Time)
	// Advance removes the packet last returned by Head.
	Advance()
}

// Arch selects the switch queueing architecture.
type Arch uint8

const (
	// OutputQueued buffers packets in one FIFO per (egress, priority) —
	// the model used for the CEE experiments.
	OutputQueued Arch = iota
	// InputQueuedVoQ buffers packets in virtual output queues per input
	// port, with round-robin arbitration at each output — the
	// architecture the paper's InfiniBand simulator uses. Queue-length
	// detectors see the aggregate backlog destined to the output, so
	// marking semantics carry over.
	InputQueuedVoQ
)

// Config carries fabric-wide parameters.
type Config struct {
	// Priorities is the number of PFC priorities / IB virtual lanes.
	Priorities int
	// Arch is the switch queueing architecture (default OutputQueued).
	Arch Arch
	// SwitchDelay is the fixed ingress-to-egress forwarding latency.
	SwitchDelay units.Time
	// CtrlJitter, if non-nil, returns extra delay added to each control
	// frame (used to reproduce the testbed's software jitter).
	CtrlJitter func() units.Time
	// MaxHops aborts the run if a packet exceeds this hop count
	// (a routing-loop guard). Zero means 64.
	MaxHops int
	// Rec, if non-nil, receives structured events from every port and
	// from the flow-control components attached to them (OFF edges,
	// CE/UE marks, control frames). Nil disables recording at zero cost.
	Rec obs.Recorder
}

// DefaultConfig returns a single-priority fabric with no switch latency.
func DefaultConfig() Config {
	return Config{Priorities: 1}
}

// fifo is an allocation-friendly packet queue.
type fifo struct {
	buf  []*packet.Packet
	head int
}

func (f *fifo) push(p *packet.Packet) { f.buf = append(f.buf, p) }
func (f *fifo) empty() bool           { return f.head >= len(f.buf) }
func (f *fifo) len() int              { return len(f.buf) - f.head }
func (f *fifo) peek() *packet.Packet  { return f.buf[f.head] }
func (f *fifo) pop() *packet.Packet {
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 1024 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = nil
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	return p
}

// Port is one side of a link: it owns the egress machinery toward its
// peer and the ingress accounting for traffic from its peer.
type Port struct {
	net   *Network
	node  *node
	Index int // index within the owning node
	Link  int // topology link index
	Peer  *Port
	Rate  units.Rate
	Delay units.Time

	// idx is this port's index in Network.ports; pb = idx*Priorities is
	// its base into the per-(port,priority) struct-of-arrays state the
	// Network owns (qbytes, blocked). The per-event scalar state the
	// transmit/forward/scan paths touch — queue bytes, busy/busyEnd,
	// blocked, wakeAt — lives in those flat arrays, not here, so fabric-
	// wide scans (Stranded, WaitCycles, invariants) are linear sweeps
	// over contiguous memory instead of pointer chases through every
	// Port.
	idx int32
	pb  int32

	// Egress. In OutputQueued mode queues[prio] is the FIFO; in
	// InputQueuedVoQ mode voqs[prio][inputPort] are the virtual output
	// queues and rr[prio] the round-robin arbitration pointer.
	queues []fifo
	voqs   [][]fifo
	rr     []int
	gate   TxGate
	dets   []Detector
	src    Source

	// Per-port scratch, preallocated at creation so the transmit hot path
	// schedules no fresh closures: txPkt is the packet currently being
	// serialized (a port serializes one packet at a time), txDoneFn the
	// serialization-complete callback, wakeFn the source-wake callback
	// (validated against wakeAt, so stale wakes are no-ops). receiveFn
	// and enqueueFn are the typed-arg event callbacks for the per-packet
	// link-propagation and switch-forwarding delays: several packets can
	// be in flight at once, so the packet travels as the event argument
	// rather than in port scratch — and scheduling mints no closure.
	txPkt     *packet.Packet
	txDoneFn  func()
	wakeFn    func()
	receiveFn func(any)
	enqueueFn func(any)

	// Ingress.
	meter RxMeter

	// Fault state (driven by the fault injector; see fault.go). A down
	// port neither transmits nor delivers; a frozen port stops serving
	// its egress queues while its ingress keeps forwarding (a hung egress
	// pipeline). ctrlFault, if non-nil, intercepts outgoing control
	// frames. Every hot-path test of these is a plain flag check, so a
	// run with no faults executes exactly as it did before they existed.
	down      bool
	frozen    bool
	ctrlFault func(f CtrlFrame) (drop bool, delay units.Time)
	// spoof, if non-nil, decides per outgoing data packet whether a
	// compromised sender forges a CE mark on it (see SetSpoof). Attack is
	// a bitmask of AttackTag provenance bits the adversarial injector set
	// on this port; the oracle reads it to separate manufactured symptoms
	// from organic congestion.
	spoof  func(pkt *packet.Packet) bool
	Attack uint8

	// label caches Name() for event records (hot path; Name sprintfs).
	label string

	// Counters (cumulative; sampled by tracers).
	TxBytes     units.ByteSize
	TxPackets   uint64
	TxDataBytes units.ByteSize
	MarkedCE    uint64
	MarkedUE    uint64
	SpoofedCE   uint64 // CE marks forged by a spoof hook, not a detector
	ForgedCtrl  uint64 // control frames forged by the adversarial injector
	CtrlSent    uint64
	PauseTime   units.Time // total time spent blocked (all priorities)
	blockStart  units.Time
	// FaultDrops counts frames this port destroyed because of a fault
	// (data packets at egress or ingress of a down link, lost control
	// frames).
	FaultDrops uint64
}

// Name renders "node[idx]→peer" for traces and errors.
func (p *Port) Name() string {
	return fmt.Sprintf("%s[%d]->%s", p.net.Topo.Name(p.node.id), p.Index, p.net.Topo.Name(p.Peer.node.id))
}

// Label returns Name() cached for reuse in event records, so recording
// an event never allocates.
func (p *Port) Label() string {
	if p.label == "" {
		p.label = p.Name()
	}
	return p.label
}

// Node returns the owning node's ID.
func (p *Port) Node() packet.NodeID { return p.node.id }

// Recorder returns the fabric-wide event recorder (nil when disabled).
// Flow-control components attached to the port emit through it.
func (p *Port) Recorder() obs.Recorder { return p.net.cfg.Rec }

// Now reports the current simulated time (for attached components that
// emit events outside a callback carrying the time).
func (p *Port) Now() units.Time { return p.net.Sched.Now() }

// QueueBytes reports the egress queue length of one priority in bytes.
func (p *Port) QueueBytes(prio uint8) units.ByteSize {
	return p.net.qbytes[int(p.pb)+int(prio)]
}

// TotalQueueBytes reports the egress queue length across priorities.
func (p *Port) TotalQueueBytes() units.ByteSize {
	var t units.ByteSize
	for _, b := range p.net.qbytes[p.pb : int(p.pb)+p.net.nPrio] {
		t += b
	}
	return t
}

// Blocked reports whether the priority is currently OFF (gate-refused).
func (p *Port) Blocked(prio uint8) bool { return p.net.blocked[int(p.pb)+int(prio)] }

// Busy reports whether the port is currently serializing a packet.
func (p *Port) Busy() bool { return p.net.busy[p.idx] }

// AttachGate installs the egress flow-control gate.
func (p *Port) AttachGate(g TxGate) { p.gate = g }

// Gate returns the installed egress gate (nil if none).
func (p *Port) Gate() TxGate { return p.gate }

// AttachMeter installs the ingress flow-control meter.
func (p *Port) AttachMeter(m RxMeter) { p.meter = m }

// Meter returns the installed ingress meter (nil if none).
func (p *Port) Meter() RxMeter { return p.meter }

// AttachDetector installs the marking detector for one priority.
func (p *Port) AttachDetector(prio uint8, d Detector) { p.dets[prio] = d }

// Detector returns the detector for one priority (nil if none).
func (p *Port) DetectorAt(prio uint8) Detector { return p.dets[prio] }

// AttachSource installs the NIC pull source (host ports only).
func (p *Port) AttachSource(s Source) { p.src = s }

// SendCtrl transmits a flow-control frame to the peer's gate. The frame
// waits behind the packet currently being serialized (it cannot interrupt
// an ongoing transmission), then takes one serialization time plus the
// propagation delay — yielding the paper's tau.
func (p *Port) SendCtrl(f CtrlFrame) {
	now := p.net.Sched.Now()
	if p.down {
		// A dead link carries no control frames.
		return
	}
	var faultDelay units.Time
	if p.ctrlFault != nil {
		drop, delay := p.ctrlFault(f)
		if drop {
			p.FaultDrops++
			p.net.FaultDrops++
			if rec := p.net.cfg.Rec; rec != nil {
				rec.Record(obs.Event{At: now, Kind: obs.KindFaultDrop, Port: p.Label(), Prio: f.Prio, Flow: -1, Val: int64(f.Kind)})
			}
			return
		}
		faultDelay = delay
	}
	wait := units.Time(0)
	if p.net.busy[p.idx] && p.net.busyEnd[p.idx] > now {
		wait = p.net.busyEnd[p.idx] - now
	}
	d := wait + units.TxTime(ctrlFrameBytes, p.Rate) + p.Delay + faultDelay
	if p.net.cfg.CtrlJitter != nil {
		d += p.net.cfg.CtrlJitter()
	}
	p.CtrlSent++
	if rec := p.net.cfg.Rec; rec != nil {
		kind := obs.KindCtrlPause
		switch f.Kind {
		case CtrlResume:
			kind = obs.KindCtrlResume
		case CtrlCredit:
			kind = obs.KindCtrlCredit
		}
		rec.Record(obs.Event{At: now, Kind: kind, Port: p.Label(), Prio: f.Prio, Flow: -1, Val: f.FCCL})
	}
	n := p.net
	var ci *ctrlInflight
	if k := len(n.ctrlFree); k > 0 {
		ci = n.ctrlFree[k-1]
		n.ctrlFree = n.ctrlFree[:k-1]
	} else {
		ci = &ctrlInflight{}
	}
	ci.to, ci.f = p.Peer, f
	n.Sched.AfterArg(d, n.ctrlDeliverFn, ci)
}

// ctrlInflight is a control frame on the wire: the destination port and
// the frame, parked in an event argument. Records are recycled through
// Network.ctrlFree once delivered.
type ctrlInflight struct {
	to *Port
	f  CtrlFrame
}

// deliverCtrl lands a control frame at its destination port's gate (or
// drops it if the link died while the frame was in flight).
func (n *Network) deliverCtrl(ci *ctrlInflight) {
	peer, f := ci.to, ci.f
	ci.to = nil
	n.ctrlFree = append(n.ctrlFree, ci)
	if peer.down {
		peer.FaultDrops++
		n.FaultDrops++
		if rec := n.cfg.Rec; rec != nil {
			rec.Record(obs.Event{At: n.Sched.Now(), Kind: obs.KindFaultDrop, Port: peer.Label(), Prio: f.Prio, Flow: -1, Val: int64(f.Kind)})
		}
		return
	}
	if peer.gate != nil {
		peer.gate.HandleCtrl(n.Sched.Now(), f)
	}
}

// GateChanged must be called by the gate after its state may have become
// more permissive (RESUME received, credits arrived). It re-evaluates
// blocked bookkeeping and restarts transmission if possible.
func (p *Port) GateChanged() {
	if !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// Kick wakes the port to re-poll its source (new flow became active).
func (p *Port) Kick() {
	if !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// Enqueue places a packet on the egress queue (switch forwarding path).
func (p *Port) Enqueue(pkt *packet.Packet) {
	prio := pkt.Priority
	qb := &p.net.qbytes[int(p.pb)+int(prio)]
	if d, ok := p.dets[prio].(EnqueueDetector); ok {
		before := pkt.Code
		d.OnEnqueue(p.net.Sched.Now(), pkt, *qb)
		if pkt.Code != before {
			switch pkt.Code {
			case packet.CE:
				p.MarkedCE++
				p.recordMark(obs.KindMarkCE, pkt, *qb)
			case packet.UE:
				p.MarkedUE++
				p.recordMark(obs.KindMarkUE, pkt, *qb)
			}
		}
	}
	if p.useVoQ() && pkt.InPort >= 0 {
		p.voq(prio, int(pkt.InPort)).push(pkt)
	} else {
		p.queues[prio].push(pkt)
	}
	*qb += pkt.Size
	if !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// useVoQ reports whether this port buffers in virtual output queues.
func (p *Port) useVoQ() bool {
	return p.net.cfg.Arch == InputQueuedVoQ && p.node.kind == topo.Switch
}

// voq returns the virtual output queue of one (priority, input) pair,
// growing the table lazily to the node's port count.
func (p *Port) voq(prio uint8, in int) *fifo {
	if p.voqs == nil {
		p.voqs = make([][]fifo, len(p.queues))
	}
	if p.voqs[prio] == nil {
		p.voqs[prio] = make([]fifo, len(p.node.ports))
	}
	if in >= len(p.voqs[prio]) {
		grown := make([]fifo, in+1)
		copy(grown, p.voqs[prio])
		p.voqs[prio] = grown
	}
	return &p.voqs[prio][in]
}

// voqHead picks the next input's head packet for one priority using
// round-robin arbitration, returning nil when all VoQs are empty.
func (p *Port) voqHead(prio uint8) (*fifo, *packet.Packet) {
	if p.voqs == nil || p.voqs[prio] == nil {
		return nil, nil
	}
	n := len(p.voqs[prio])
	for k := 0; k < n; k++ {
		i := (p.rr[prio] + k) % n
		q := &p.voqs[prio][i]
		if !q.empty() {
			p.rr[prio] = (i + 1) % n
			return q, q.peek()
		}
	}
	return nil, nil
}

// recordMark emits a mark event (the caller already bumped the counter).
func (p *Port) recordMark(kind obs.Kind, pkt *packet.Packet, qlen units.ByteSize) {
	if rec := p.net.cfg.Rec; rec != nil {
		rec.Record(obs.Event{
			At: p.net.Sched.Now(), Kind: kind, Port: p.Label(),
			Prio: pkt.Priority, Flow: int64(pkt.Flow), Val: int64(qlen),
		})
	}
}

func (p *Port) setBlocked(prio uint8, b bool) {
	if p.net.blocked[int(p.pb)+int(prio)] == b {
		return
	}
	now := p.net.Sched.Now()
	p.net.blocked[int(p.pb)+int(prio)] = b
	if b {
		p.blockStart = now
	} else {
		p.PauseTime += now - p.blockStart
	}
	if rec := p.net.cfg.Rec; rec != nil {
		kind := obs.KindOffEnd
		if b {
			kind = obs.KindOffStart
		}
		rec.Record(obs.Event{At: now, Kind: kind, Port: p.Label(), Prio: prio, Flow: -1, Val: int64(p.net.qbytes[int(p.pb)+int(prio)])})
	}
	if d := p.dets[prio]; d != nil {
		if b {
			d.OnOffStart(now)
		} else {
			d.OnOffEnd(now)
		}
	}
}

// tryTransmit starts the next transmission if the port is idle. Strict
// priority across queues (lowest index first), then the pull source.
func (p *Port) tryTransmit() {
	if p.net.busy[p.idx] || p.down || p.frozen {
		return
	}
	now := p.net.Sched.Now()
	for prio := 0; prio < len(p.queues); prio++ {
		q := &p.queues[prio]
		var head *packet.Packet
		if !q.empty() {
			head = q.peek()
		} else if p.useVoQ() {
			q, head = p.voqHead(uint8(prio))
		}
		if head == nil {
			continue
		}
		if p.gate != nil && !p.gate.CanSend(uint8(prio), head.Size) {
			p.setBlocked(uint8(prio), true)
			continue
		}
		p.setBlocked(uint8(prio), false)
		q.pop()
		p.net.qbytes[int(p.pb)+prio] -= head.Size
		p.transmit(head, true)
		return
	}
	if p.src == nil {
		return
	}
	pkt, at := p.src.Head(now)
	if pkt == nil {
		if at != units.Forever && at > now {
			p.scheduleWake(at)
		}
		return
	}
	if at > now {
		p.scheduleWake(at)
		return
	}
	prio := pkt.Priority
	if p.gate != nil && !p.gate.CanSend(prio, pkt.Size) {
		p.setBlocked(prio, true)
		return
	}
	p.setBlocked(prio, false)
	p.src.Advance()
	p.transmit(pkt, false)
}

func (p *Port) scheduleWake(at units.Time) {
	if p.net.wakeAt[p.idx] == at {
		return
	}
	p.net.wakeAt[p.idx] = at
	p.net.Sched.At(at, p.wakeFn)
}

// wake runs a scheduled source wake. A wake is stale — superseded by a
// later scheduleWake or already consumed — unless it fires exactly at the
// currently armed time.
func (p *Port) wake() {
	if p.net.wakeAt[p.idx] != p.net.Sched.Now() {
		return
	}
	p.net.wakeAt[p.idx] = 0
	if !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// transmit serializes pkt onto the wire. fromQueue distinguishes switch
// forwarding (detectors run, ingress accounting released) from host
// injection.
func (p *Port) transmit(pkt *packet.Packet, fromQueue bool) {
	now := p.net.Sched.Now()
	if fromQueue && p.node.kind == topo.Switch {
		if d := p.dets[pkt.Priority]; d != nil {
			before := pkt.Code
			qb := p.net.qbytes[int(p.pb)+int(pkt.Priority)]
			d.OnDequeue(now, pkt, qb)
			if pkt.Code != before {
				switch pkt.Code {
				case packet.CE:
					p.MarkedCE++
					p.recordMark(obs.KindMarkCE, pkt, qb)
				case packet.UE:
					p.MarkedUE++
					p.recordMark(obs.KindMarkUE, pkt, qb)
				}
			}
		}
	}
	if p.spoof != nil && pkt.Kind == packet.Data && p.spoof(pkt) {
		// A compromised sender forges a CE mark with no detector verdict
		// behind it. The mark is indistinguishable on the wire but is
		// accounted separately (SpoofedCE, not MarkedCE) so per-port
		// detector counters stay honest for the oracle.
		before := pkt.Code
		pkt.Code = pkt.Code.MarkCE()
		if pkt.Code != before {
			p.SpoofedCE++
			if r := p.net.cfg.Rec; r != nil {
				qb := p.net.qbytes[int(p.pb)+int(pkt.Priority)]
				r.Record(obs.Event{At: now, Kind: obs.KindSpoofMark, Prio: pkt.Priority,
					Port: p.Label(), Flow: int64(pkt.Flow), Val: int64(qb)})
			}
		}
	}
	if p.gate != nil {
		p.gate.OnSend(pkt.Priority, pkt.Size)
	}
	tx := units.TxTime(pkt.Size, p.Rate)
	end := now + tx
	p.net.busy[p.idx] = true
	p.net.busyEnd[p.idx] = end
	p.TxBytes += pkt.Size
	p.TxPackets++
	if pkt.Kind == packet.Data {
		p.TxDataBytes += pkt.Size
	}
	p.txPkt = pkt
	p.net.Sched.At(end, p.txDoneFn)
}

// txDone completes a serialization: release ingress accounting, put the
// packet on the wire, start the next transmission.
func (p *Port) txDone() {
	pkt := p.txPkt
	p.txPkt = nil
	p.net.busy[p.idx] = false
	// The packet has fully left this node: release ingress accounting.
	if p.node.kind == topo.Switch && pkt.InPort >= 0 {
		ing := p.node.ports[pkt.InPort]
		if ing.meter != nil {
			ing.meter.OnFree(p.net.Sched.Now(), pkt)
		}
	}
	if p.down {
		// The link died during serialization: the frame is lost on the
		// wire. Ingress accounting was already released above — the
		// buffer space is free either way — so only the payload ledger
		// moves from "in network" to "destroyed by fault".
		p.dropFaulted(pkt)
		return
	}
	// Propagate to the peer: the packet rides the event as its argument
	// (several packets can be in flight on one link at once), through the
	// peer's preallocated receive callback — no per-packet closure.
	p.net.inFlightPayload += pkt.Payload
	p.net.Sched.AfterArg(p.Delay, p.Peer.receiveFn, pkt)
	p.tryTransmit()
}

// receive handles a packet arriving from the wire at this (ingress) port.
func (p *Port) receive(pkt *packet.Packet) {
	now := p.net.Sched.Now()
	if p.down {
		p.net.inFlightPayload -= pkt.Payload
		// The receiving side is dead: the frame falls off the wire before
		// any ingress accounting sees it.
		p.dropFaulted(pkt)
		return
	}
	if p.meter != nil {
		p.meter.OnArrive(now, pkt)
	}
	n := p.node
	if n.kind == topo.Host {
		p.net.inFlightPayload -= pkt.Payload
		// Hosts consume at line rate: free ingress accounting immediately.
		if p.meter != nil {
			p.meter.OnFree(now, pkt)
		}
		if p.net.Sink != nil {
			p.net.Sink(n.id, pkt)
		}
		// The packet is dead: recycle it. Sinks must copy what they need
		// before returning; the next NewPacket may reuse this struct.
		p.net.arena.Put(pkt)
		return
	}
	pkt.InPort = int32(p.Index)
	pkt.Hops++
	if int(pkt.Hops) > p.net.cfg.MaxHops {
		if p.net.faulted {
			// A hostile route rewrite can manufacture a true forwarding
			// loop; under an active fault the packet is TTL-dropped (the
			// ledger moves to faultDropPayload, conservation holds)
			// instead of crashing the run.
			p.net.inFlightPayload -= pkt.Payload
			if p.meter != nil {
				p.meter.OnFree(now, pkt)
			}
			p.dropFaulted(pkt)
			return
		}
		panic(fmt.Sprintf("fabric: routing loop: %s exceeded %d hops at %s",
			pkt, p.net.cfg.MaxHops, p.net.Topo.Name(n.id)))
	}
	out := p.net.Route(n.id, pkt)
	if out == nil {
		panic(fmt.Sprintf("fabric: no route at %s for %s dst=%s",
			p.net.Topo.Name(n.id), pkt, p.net.Topo.Name(pkt.Dst)))
	}
	if out.node != n {
		panic("fabric: Route returned a port of another node")
	}
	if p.net.cfg.SwitchDelay > 0 {
		// The packet stays on the in-flight ledger through the forwarding
		// pipeline; enqueueFn moves it to queue accounting on arrival.
		p.net.Sched.AfterArg(p.net.cfg.SwitchDelay, out.enqueueFn, pkt)
	} else {
		p.net.inFlightPayload -= pkt.Payload
		out.Enqueue(pkt)
	}
}

type node struct {
	id    packet.NodeID
	kind  topo.NodeKind
	ports []*Port
}

// Network binds a topology to the event scheduler and owns all ports.
type Network struct {
	Sched *sim.Scheduler
	Topo  *topo.Topology
	cfg   Config
	nodes []*node
	ports []*Port
	// portAt[linkIdx] = [2]*Port: side A, side B.
	portAt [][2]*Port

	// Struct-of-arrays hot-path port state, indexed by Port.idx (scalar
	// per port) or Port.pb+prio (per port × priority). Keeping these in
	// flat arrays owned by the Network — rather than as fields on Port —
	// turns the fabric-wide scans (Stranded, the WaitCycles node pass,
	// the invariant sweeps) into linear walks over contiguous memory and
	// drops a pointer chase from every per-event access.
	nPrio   int
	qbytes  []units.ByteSize // [pb+prio] egress queue bytes
	blocked []bool           // [pb+prio] gate currently refuses (OFF)
	busy    []bool           // [idx] serializing a packet
	busyEnd []units.Time     // [idx] current serialization end
	wakeAt  []units.Time     // [idx] armed source wake (0 = none)
	// arena slab-allocates and recycles packets within this
	// single-threaded run: packets die at host sinks, where receive
	// returns their slots for reuse by NewPacket.
	arena packet.Arena
	// Control-frame delivery machinery: in-flight frames ride a recycled
	// ctrlInflight record through one preallocated AfterArg handler, so
	// the per-frame closure (hot on credit-based fabrics, which send one
	// update per data packet) is gone.
	ctrlDeliverFn func(any)
	ctrlFree      []*ctrlInflight

	// Payload conservation ledger (see fault.go): inFlightPayload is the
	// flow-payload volume currently on a wire or inside a switch
	// forwarding pipeline (between txDone and the next Enqueue or host
	// delivery); faultDropPayload is the volume destroyed by faults.
	inFlightPayload  units.ByteSize
	faultDropPayload units.ByteSize
	// FaultDrops counts frames destroyed by faults network-wide.
	FaultDrops uint64
	// faulted latches once any fault primitive touches the network. The
	// lossless guarantees (buffer bounds) are only promised on a fabric
	// whose links and control plane were never disturbed, so the
	// invariant checker relaxes those checks when this is set.
	faulted bool

	// Route picks the egress port for pkt at switch sw. It must be set
	// before traffic flows.
	Route func(sw packet.NodeID, pkt *packet.Packet) *Port
	// Sink receives packets arriving at hosts. It must be set before
	// traffic flows.
	Sink func(host packet.NodeID, pkt *packet.Packet)
}

// New builds the dataplane for a topology.
func New(s *sim.Scheduler, t *topo.Topology, cfg Config) *Network {
	if cfg.Priorities <= 0 {
		cfg.Priorities = 1
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 64
	}
	n := &Network{Sched: s, Topo: t, cfg: cfg}
	n.ctrlDeliverFn = func(arg any) { n.deliverCtrl(arg.(*ctrlInflight)) }
	n.nodes = make([]*node, len(t.Nodes))
	for i, tn := range t.Nodes {
		n.nodes[i] = &node{id: tn.ID, kind: tn.Kind}
	}
	np := 2 * len(t.Links)
	n.nPrio = cfg.Priorities
	n.qbytes = make([]units.ByteSize, np*cfg.Priorities)
	n.blocked = make([]bool, np*cfg.Priorities)
	n.busy = make([]bool, np)
	n.busyEnd = make([]units.Time, np)
	n.wakeAt = make([]units.Time, np)
	n.portAt = make([][2]*Port, len(t.Links))
	for li, l := range t.Links {
		mk := func(owner packet.NodeID) *Port {
			nd := n.nodes[owner]
			idx := int32(len(n.ports))
			p := &Port{
				net:    n,
				node:   nd,
				Index:  len(nd.ports),
				Link:   li,
				Rate:   l.Rate,
				Delay:  l.Delay,
				idx:    idx,
				pb:     idx * int32(cfg.Priorities),
				queues: make([]fifo, cfg.Priorities),
				rr:     make([]int, cfg.Priorities),
				dets:   make([]Detector, cfg.Priorities),
			}
			p.txDoneFn = p.txDone
			p.wakeFn = p.wake
			p.receiveFn = func(arg any) { p.receive(arg.(*packet.Packet)) }
			p.enqueueFn = func(arg any) {
				pkt := arg.(*packet.Packet)
				n.inFlightPayload -= pkt.Payload
				p.Enqueue(pkt)
			}
			nd.ports = append(nd.ports, p)
			n.ports = append(n.ports, p)
			return p
		}
		pa, pb := mk(l.A), mk(l.B)
		pa.Peer, pb.Peer = pb, pa
		n.portAt[li] = [2]*Port{pa, pb}
	}
	return n
}

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// NewPacket returns a zeroed packet from the run's arena. Callers
// (host NICs) fill the fields; the fabric recycles the slab slot when
// the packet dies at a host sink.
func (n *Network) NewPacket() *packet.Packet { return n.arena.Get() }

// FreePacket recycles a packet that will never enter the fabric (e.g. a
// cached NIC head that was discarded before transmission). The caller
// must drop every reference.
func (n *Network) FreePacket(pkt *packet.Packet) { n.arena.Put(pkt) }

// PacketsRecycled reports how many dead packets the run reused.
func (n *Network) PacketsRecycled() uint64 { return n.arena.Recycled }

// Ports returns all ports (both sides of every link).
func (n *Network) Ports() []*Port { return n.ports }

// NodePorts returns the ports owned by a node, in link-insertion order.
func (n *Network) NodePorts(id packet.NodeID) []*Port { return n.nodes[id].ports }

// PortOn returns the port of node `owner` on topology link `link`.
func (n *Network) PortOn(owner packet.NodeID, link int) *Port {
	pair := n.portAt[link]
	if pair[0].node.id == owner {
		return pair[0]
	}
	if pair[1].node.id == owner {
		return pair[1]
	}
	panic(fmt.Sprintf("fabric: node %s is not an endpoint of link %d", n.Topo.Name(owner), link))
}

// HostPort returns a host's single NIC port.
func (n *Network) HostPort(host packet.NodeID) *Port {
	nd := n.nodes[host]
	if nd.kind != topo.Host {
		panic("fabric: HostPort of a switch")
	}
	if len(nd.ports) != 1 {
		panic("fabric: host with multiple ports")
	}
	return nd.ports[0]
}

// PortToward returns the port of node a on the (unique) direct link to b.
func (n *Network) PortToward(a, b packet.NodeID) *Port {
	li := n.Topo.LinkBetween(a, b)
	if li < 0 {
		panic(fmt.Sprintf("fabric: no link %s-%s", n.Topo.Name(a), n.Topo.Name(b)))
	}
	return n.PortOn(a, li)
}

// StrandedReport describes traffic stuck in the network after a run: a
// lossless fabric with cyclic buffer dependencies can deadlock (the
// credit-loop problem the deadlock literature the paper cites studies),
// and a deadlocked run otherwise just looks "quiet". Call Stranded after
// the scheduler drains or a horizon expires to tell the difference.
type StrandedReport struct {
	// Ports lists ports still holding queued bytes.
	Ports []*Port
	// Bytes is the total stranded volume.
	Bytes units.ByteSize
	// Blocked counts the stranded ports whose gate currently refuses
	// transmission — all of them blocked is the deadlock signature.
	Blocked int
}

// Deadlocked reports whether every stranded port is flow-control
// blocked: no event can ever drain them.
func (r *StrandedReport) Deadlocked() bool {
	return len(r.Ports) > 0 && r.Blocked == len(r.Ports)
}

// Stranded scans all ports for undelivered queued traffic. The scan is a
// linear sweep over the flat qbytes/blocked arrays; Port pointers are
// only touched for ports that actually hold traffic.
func (n *Network) Stranded() StrandedReport {
	var rep StrandedReport
	for base := 0; base < len(n.qbytes); base += n.nPrio {
		var q units.ByteSize
		anyBlocked := false
		for k := 0; k < n.nPrio; k++ {
			q += n.qbytes[base+k]
			anyBlocked = anyBlocked || n.blocked[base+k]
		}
		if q == 0 {
			continue
		}
		rep.Ports = append(rep.Ports, n.ports[base/n.nPrio])
		rep.Bytes += q
		if anyBlocked {
			rep.Blocked++
		}
	}
	return rep
}
