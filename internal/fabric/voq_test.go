package fabric

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// voqRig builds two senders, one switch, one receiver with the
// input-queued VoQ architecture.
func voqRig(t *testing.T) (*sim.Scheduler, *Network, [3]packet.NodeID) {
	t.Helper()
	g := topo.New()
	sw := g.AddSwitch("sw")
	a := g.AddHost("a")
	b := g.AddHost("b")
	r := g.AddHost("r")
	for _, h := range []packet.NodeID{a, b, r} {
		g.Connect(h, sw, 40*units.Gbps, units.Microsecond)
	}
	s := sim.New()
	cfg := DefaultConfig()
	cfg.Arch = InputQueuedVoQ
	n := New(s, g, cfg)
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port { return n.PortToward(at, pkt.Dst) }
	return s, n, [3]packet.NodeID{a, b, r}
}

// Round-robin arbitration interleaves inputs instead of serving strict
// arrival order: with input A's burst enqueued first and input B's
// second, deliveries alternate.
func TestVoQRoundRobinInterleavesInputs(t *testing.T) {
	s, n, hosts := voqRig(t)
	a, b, r := hosts[0], hosts[1], hosts[2]
	var srcs []packet.NodeID
	n.Sink = func(_ packet.NodeID, p *packet.Packet) { srcs = append(srcs, p.Src) }

	// Two line-rate sources into one output: enqueue bursts directly at
	// the egress with distinct input ports.
	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, r)
	inA := n.PortToward(sw, a).Index
	inB := n.PortToward(sw, b).Index
	s.At(0, func() {
		for i := 0; i < 4; i++ {
			pa := &packet.Packet{Src: a, Dst: r, Kind: packet.Data, Size: 1000, Seq: int32(i), InPort: int32(inA)}
			egress.Enqueue(pa)
		}
		for i := 0; i < 4; i++ {
			pb := &packet.Packet{Src: b, Dst: r, Kind: packet.Data, Size: 1000, Seq: int32(i), InPort: int32(inB)}
			egress.Enqueue(pb)
		}
	})
	s.Run()
	if len(srcs) != 8 {
		t.Fatalf("delivered %d, want 8", len(srcs))
	}
	// First packet began serializing on enqueue (input A); afterwards the
	// arbiter alternates between the two VoQs.
	alternations := 0
	for i := 1; i < len(srcs); i++ {
		if srcs[i] != srcs[i-1] {
			alternations++
		}
	}
	if alternations < 5 {
		t.Errorf("deliveries barely interleaved (%d alternations): %v", alternations, srcs)
	}
}

// Per-input FIFO order is preserved inside each VoQ.
func TestVoQPreservesPerInputOrder(t *testing.T) {
	s, n, hosts := voqRig(t)
	a, _, r := hosts[0], hosts[1], hosts[2]
	var seqs []int32
	n.Sink = func(_ packet.NodeID, p *packet.Packet) {
		if p.Src == a {
			seqs = append(seqs, p.Seq)
		}
	}
	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, r)
	inA := n.PortToward(sw, a).Index
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			egress.Enqueue(&packet.Packet{Src: a, Dst: r, Kind: packet.Data, Size: 1000, Seq: int32(i), InPort: int32(inA)})
		}
	})
	s.Run()
	for i, v := range seqs {
		if v != int32(i) {
			t.Fatalf("per-input order violated: %v", seqs)
		}
	}
}

// Aggregate queue accounting covers all VoQs of the output.
func TestVoQAggregateQueueBytes(t *testing.T) {
	s, n, hosts := voqRig(t)
	a, b, r := hosts[0], hosts[1], hosts[2]
	n.Sink = func(packet.NodeID, *packet.Packet) {}
	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, r)
	gate := &testGate{open: false, port: egress}
	egress.AttachGate(gate)
	inA := n.PortToward(sw, a).Index
	inB := n.PortToward(sw, b).Index
	s.At(0, func() {
		egress.Enqueue(&packet.Packet{Src: a, Dst: r, Kind: packet.Data, Size: 1000, InPort: int32(inA)})
		egress.Enqueue(&packet.Packet{Src: b, Dst: r, Kind: packet.Data, Size: 500, InPort: int32(inB)})
	})
	s.At(10*units.Microsecond, func() {
		if got := egress.TotalQueueBytes(); got != 1500 {
			t.Errorf("aggregate queue = %v, want 1500", got)
		}
		gate.open = true
		egress.GateChanged()
	})
	s.Run()
	if egress.TotalQueueBytes() != 0 {
		t.Error("VoQs not drained")
	}
}

// End-to-end through hosts: the VoQ fabric delivers everything exactly
// once (conservation) under an incast.
func TestVoQConservation(t *testing.T) {
	s, n, hosts := voqRig(t)
	a, b, r := hosts[0], hosts[1], hosts[2]
	got := map[packet.NodeID]int{}
	n.Sink = func(_ packet.NodeID, p *packet.Packet) { got[p.Src]++ }
	mkSrc := func(h packet.NodeID, count int) *listSource {
		src := &listSource{}
		for i := 0; i < count; i++ {
			src.pkts = append(src.pkts, mkPkt(h, r, 1000))
			src.at = append(src.at, 0)
		}
		return src
	}
	n.HostPort(a).AttachSource(mkSrc(a, 50))
	n.HostPort(b).AttachSource(mkSrc(b, 50))
	s.At(0, func() { n.HostPort(a).Kick(); n.HostPort(b).Kick() })
	s.Run()
	if got[a] != 50 || got[b] != 50 {
		t.Errorf("delivered a=%d b=%d, want 50 each", got[a], got[b])
	}
}

// A cyclic buffer dependency deadlocks a lossless fabric; the watchdog
// must call it out rather than letting the run end silently.
func TestStrandedDetectsDeadlock(t *testing.T) {
	// Two switches forwarding to each other with a gate that never opens:
	// queued traffic can never drain.
	g := topo.New()
	a := g.AddHost("a")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	b := g.AddHost("b")
	g.Connect(a, s1, units.Gbps, 0)
	g.Connect(s1, s2, units.Gbps, 0)
	g.Connect(b, s2, units.Gbps, 0)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port {
		if at == s1 {
			return n.PortToward(s1, s2)
		}
		return n.PortToward(at, pkt.Dst)
	}
	n.Sink = func(packet.NodeID, *packet.Packet) {}
	egress := n.PortToward(s1, s2)
	egress.AttachGate(&testGate{open: false, port: egress})
	src := &listSource{at: []units.Time{0, 0}, pkts: []*packet.Packet{mkPkt(a, b, 1000), mkPkt(a, b, 1000)}}
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	s.Run()
	rep := n.Stranded()
	if !rep.Deadlocked() {
		t.Fatalf("deadlock not detected: %+v", rep)
	}
	if rep.Bytes != 2000 {
		t.Errorf("stranded bytes = %v, want 2000", rep.Bytes)
	}
}

// A clean run strands nothing.
func TestStrandedCleanRun(t *testing.T) {
	s, n, hosts := voqRig(t)
	a, _, r := hosts[0], hosts[1], hosts[2]
	n.Sink = func(packet.NodeID, *packet.Packet) {}
	src := &listSource{at: []units.Time{0}, pkts: []*packet.Packet{mkPkt(a, r, 1000)}}
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	s.Run()
	rep := n.Stranded()
	if len(rep.Ports) != 0 || rep.Bytes != 0 || rep.Deadlocked() {
		t.Errorf("clean run reported stranded traffic: %+v", rep)
	}
}
