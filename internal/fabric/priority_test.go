package fabric

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// twoPrioRig builds a 2-priority a-sw-b network.
func twoPrioRig(t *testing.T) (*sim.Scheduler, *Network, packet.NodeID, packet.NodeID) {
	t.Helper()
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	b := g.AddHost("b")
	g.Connect(a, sw, 40*units.Gbps, units.Microsecond)
	g.Connect(b, sw, 40*units.Gbps, units.Microsecond)
	s := sim.New()
	cfg := DefaultConfig()
	cfg.Priorities = 2
	n := New(s, g, cfg)
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port { return n.PortToward(at, pkt.Dst) }
	return s, n, a, b
}

func prioPkt(src, dst packet.NodeID, prio uint8, seq int32) *packet.Packet {
	return &packet.Packet{
		Src: src, Dst: dst, Kind: packet.Data, Size: 1000,
		Priority: prio, Seq: seq, Code: packet.Capable, InPort: -1,
	}
}

// Strict priority: queued high-priority (index 0) packets transmit ahead
// of queued low-priority ones.
func TestStrictPriorityScheduling(t *testing.T) {
	s, n, a, b := twoPrioRig(t)
	var order []uint8
	n.Sink = func(_ packet.NodeID, p *packet.Packet) { order = append(order, p.Priority) }

	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, b)
	// Fill the egress queue directly while it is idle at t=0; first
	// enqueue starts transmitting immediately, the rest queue up.
	s.At(0, func() {
		for i := 0; i < 3; i++ {
			egress.Enqueue(prioPkt(a, b, 1, int32(i))) // low priority
		}
		for i := 0; i < 3; i++ {
			egress.Enqueue(prioPkt(a, b, 0, int32(i))) // high priority
		}
	})
	s.Run()
	if len(order) != 6 {
		t.Fatalf("delivered %d packets, want 6", len(order))
	}
	// The first packet out was the low-prio head (already serializing);
	// after it, all high-priority packets must precede the low ones.
	want := []uint8{1, 0, 0, 0, 1, 1}
	for i, p := range order {
		if p != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

// A gate refusing only priority 0 must not block priority 1.
type prioGate struct {
	port    *Port
	blocked [2]bool
}

func (g *prioGate) CanSend(prio uint8, _ units.ByteSize) bool { return !g.blocked[prio] }
func (g *prioGate) OnSend(uint8, units.ByteSize)              {}
func (g *prioGate) HandleCtrl(_ units.Time, f CtrlFrame) {
	switch f.Kind {
	case CtrlPause:
		g.blocked[f.Prio] = true
	case CtrlResume:
		g.blocked[f.Prio] = false
		g.port.GateChanged()
	}
}

func TestPerPriorityBlocking(t *testing.T) {
	s, n, a, b := twoPrioRig(t)
	var order []uint8
	n.Sink = func(_ packet.NodeID, p *packet.Packet) { order = append(order, p.Priority) }
	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, b)
	gate := &prioGate{port: egress}
	egress.AttachGate(gate)

	s.At(0, func() {
		gate.HandleCtrl(0, CtrlFrame{Kind: CtrlPause, Prio: 0})
		for i := 0; i < 2; i++ {
			egress.Enqueue(prioPkt(a, b, 0, int32(i)))
			egress.Enqueue(prioPkt(a, b, 1, int32(i)))
		}
	})
	s.At(100*units.Microsecond, func() {
		gate.HandleCtrl(s.Now(), CtrlFrame{Kind: CtrlResume, Prio: 0})
	})
	s.Run()
	// Low priority flows while high is paused; high follows after resume.
	want := []uint8{1, 1, 0, 0}
	if len(order) != 4 {
		t.Fatalf("delivered %d, want 4", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	// Blocked bookkeeping was per priority.
	if egress.Blocked(1) {
		t.Error("priority 1 reported blocked")
	}
}

// Per-priority queue accounting stays separate.
func TestPerPriorityQueueBytes(t *testing.T) {
	s, n, a, b := twoPrioRig(t)
	n.Sink = func(packet.NodeID, *packet.Packet) {}
	sw := n.Topo.ID("sw")
	egress := n.PortToward(sw, b)
	gate := &prioGate{port: egress}
	gate.blocked = [2]bool{true, true}
	egress.AttachGate(gate)
	s.At(0, func() {
		egress.Enqueue(prioPkt(a, b, 0, 0))
		egress.Enqueue(prioPkt(a, b, 1, 0))
		egress.Enqueue(prioPkt(a, b, 1, 1))
	})
	s.RunUntil(10 * units.Microsecond)
	if egress.QueueBytes(0) != 1000 || egress.QueueBytes(1) != 2000 {
		t.Errorf("queue bytes = %v/%v, want 1000/2000", egress.QueueBytes(0), egress.QueueBytes(1))
	}
	if egress.TotalQueueBytes() != 3000 {
		t.Errorf("total = %v, want 3000", egress.TotalQueueBytes())
	}
}
