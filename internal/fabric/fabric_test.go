package fabric

import (
	"testing"

	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// listSource is a test Source: packets become ready at fixed times.
type listSource struct {
	at   []units.Time
	pkts []*packet.Packet
}

func (s *listSource) Head(now units.Time) (*packet.Packet, units.Time) {
	if len(s.pkts) == 0 {
		return nil, units.Forever
	}
	if s.at[0] > now {
		return nil, s.at[0]
	}
	return s.pkts[0], s.at[0]
}

func (s *listSource) Advance() {
	s.pkts = s.pkts[1:]
	s.at = s.at[1:]
}

// star builds host A - switch - host B at the given rate/delay and a
// destination-based route.
func star(t *testing.T, rate units.Rate, delay units.Time) (*sim.Scheduler, *Network, packet.NodeID, packet.NodeID) {
	t.Helper()
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	b := g.AddHost("b")
	g.Connect(a, sw, rate, delay)
	g.Connect(b, sw, rate, delay)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port {
		return n.PortToward(at, pkt.Dst)
	}
	return s, n, a, b
}

func mkPkt(src, dst packet.NodeID, size units.ByteSize) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, Kind: packet.Data, Size: size, Code: packet.Capable, InPort: -1}
}

func TestEndToEndDelivery(t *testing.T) {
	s, n, a, b := star(t, 40*units.Gbps, 4*units.Microsecond)
	var got []*packet.Packet
	var at []units.Time
	n.Sink = func(h packet.NodeID, pkt *packet.Packet) {
		if h != b {
			t.Errorf("packet arrived at wrong host")
		}
		got = append(got, pkt)
		at = append(at, s.Now())
	}
	src := &listSource{
		at:   []units.Time{0, 0, 0},
		pkts: []*packet.Packet{mkPkt(a, b, 1000), mkPkt(a, b, 1000), mkPkt(a, b, 1000)},
	}
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	s.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(got))
	}
	// First packet: 200ns tx + 4us prop + 200ns tx + 4us prop = 8.4us.
	want := units.Time(2*200)*units.Nanosecond + 8*units.Microsecond
	if at[0] != want {
		t.Errorf("first delivery at %v, want %v", at[0], want)
	}
	// Back-to-back pipeline: one serialization apart.
	if d := at[1] - at[0]; d != 200*units.Nanosecond {
		t.Errorf("inter-delivery gap %v, want 200ns", d)
	}
}

func TestPacingDelaysRelease(t *testing.T) {
	s, n, a, b := star(t, 40*units.Gbps, units.Microsecond)
	var at []units.Time
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) { at = append(at, s.Now()) }
	src := &listSource{
		at:   []units.Time{0, 10 * units.Microsecond},
		pkts: []*packet.Packet{mkPkt(a, b, 1000), mkPkt(a, b, 1000)},
	}
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	s.Run()
	if len(at) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(at))
	}
	if d := at[1] - at[0]; d != 10*units.Microsecond {
		t.Errorf("paced gap = %v, want 10us", d)
	}
}

func TestCountersAndQueues(t *testing.T) {
	s, n, a, b := star(t, 40*units.Gbps, units.Microsecond)
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) {}
	src := &listSource{
		at:   []units.Time{0, 0},
		pkts: []*packet.Packet{mkPkt(a, b, 1000), mkPkt(a, b, 500)},
	}
	hp := n.HostPort(a)
	hp.AttachSource(src)
	s.At(0, func() { hp.Kick() })
	s.Run()
	if hp.TxPackets != 2 || hp.TxBytes != 1500 {
		t.Errorf("host port counters: %d pkts %v bytes", hp.TxPackets, hp.TxBytes)
	}
	swPort := n.PortToward(n.Topo.ID("sw"), b)
	if swPort.TxPackets != 2 {
		t.Errorf("switch egress sent %d packets, want 2", swPort.TxPackets)
	}
	if swPort.TotalQueueBytes() != 0 {
		t.Errorf("queue not drained: %v", swPort.TotalQueueBytes())
	}
}

// A rate mismatch (fast ingress, slow egress) must build queue at the
// switch egress and drain in order.
func TestQueueBuildsAtSlowEgress(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	b := g.AddHost("b")
	g.Connect(a, sw, 40*units.Gbps, units.Microsecond)
	g.Connect(b, sw, 10*units.Gbps, units.Microsecond)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port { return n.PortToward(at, pkt.Dst) }
	var seqs []int32
	n.Sink = func(_ packet.NodeID, p *packet.Packet) { seqs = append(seqs, p.Seq) }
	const N = 20
	src := &listSource{}
	for i := 0; i < N; i++ {
		p := mkPkt(a, b, 1000)
		p.Seq = int32(i)
		src.pkts = append(src.pkts, p)
		src.at = append(src.at, 0)
	}
	n.HostPort(a).AttachSource(src)
	egress := n.PortToward(sw, b)
	var maxQ units.ByteSize
	s.At(0, func() { n.HostPort(a).Kick() })
	// Sample queue length during the run.
	for i := 1; i < 20; i++ {
		s.At(units.Time(i)*units.Microsecond, func() {
			if q := egress.TotalQueueBytes(); q > maxQ {
				maxQ = q
			}
		})
	}
	s.Run()
	if len(seqs) != N {
		t.Fatalf("delivered %d, want %d", len(seqs), N)
	}
	for i, v := range seqs {
		if v != int32(i) {
			t.Fatalf("out-of-order delivery: %v", seqs)
		}
	}
	if maxQ < 10*1000 {
		t.Errorf("max egress queue %v, want >= 10KB (4x rate mismatch over 20 pkts)", maxQ)
	}
}

func TestRoutingLoopPanics(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	s1 := g.AddSwitch("s1")
	s2 := g.AddSwitch("s2")
	b := g.AddHost("b")
	g.Connect(a, s1, units.Gbps, 0)
	g.Connect(s1, s2, units.Gbps, 0)
	g.Connect(s2, s1, units.Gbps, 0) // parallel link to bounce on
	g.Connect(b, s2, units.Gbps, 0)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	// Deliberately bounce packets between s1 and s2 forever.
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port {
		if at == s1 {
			return n.NodePorts(s1)[1]
		}
		return n.NodePorts(s2)[0]
	}
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) {}
	src := &listSource{at: []units.Time{0}, pkts: []*packet.Packet{mkPkt(a, b, 100)}}
	n.HostPort(a).AttachSource(src)
	defer func() {
		if recover() == nil {
			t.Error("routing loop did not panic")
		}
	}()
	s.At(0, func() { n.HostPort(a).Kick() })
	s.Run()
}

func TestPortLookups(t *testing.T) {
	_, n, a, b := star(t, units.Gbps, 0)
	sw := n.Topo.ID("sw")
	if n.PortToward(sw, a).Peer != n.HostPort(a) {
		t.Error("PortToward/HostPort disagree")
	}
	if len(n.NodePorts(sw)) != 2 {
		t.Error("switch port count wrong")
	}
	if n.PortOn(a, 0) != n.HostPort(a) {
		t.Error("PortOn wrong")
	}
	name := n.PortToward(sw, b).Name()
	if name != "sw[1]->b" {
		t.Errorf("Name() = %q", name)
	}
}

// A gate that refuses everything until opened; checks OFF bookkeeping.
type testGate struct {
	open bool
	port *Port
}

func (g *testGate) CanSend(prio uint8, size units.ByteSize) bool { return g.open }
func (g *testGate) OnSend(prio uint8, size units.ByteSize)       {}
func (g *testGate) HandleCtrl(now units.Time, f CtrlFrame)       {}

type recordDetector struct {
	offStarts, offEnds []units.Time
	deq                []units.Time
}

func (d *recordDetector) OnDequeue(now units.Time, pkt *packet.Packet, q units.ByteSize) {
	d.deq = append(d.deq, now)
}
func (d *recordDetector) OnOffStart(now units.Time) { d.offStarts = append(d.offStarts, now) }
func (d *recordDetector) OnOffEnd(now units.Time)   { d.offEnds = append(d.offEnds, now) }

func TestGateBlockingAndOffBookkeeping(t *testing.T) {
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	b := g.AddHost("b")
	g.Connect(a, sw, 40*units.Gbps, 0)
	g.Connect(b, sw, 40*units.Gbps, 0)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port { return n.PortToward(at, pkt.Dst) }
	delivered := 0
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) { delivered++ }

	egress := n.PortToward(sw, b)
	gate := &testGate{open: false, port: egress}
	egress.AttachGate(gate)
	det := &recordDetector{}
	egress.AttachDetector(0, det)

	src := &listSource{
		at:   []units.Time{0, 0},
		pkts: []*packet.Packet{mkPkt(a, b, 1000), mkPkt(a, b, 1000)},
	}
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	openAt := 50 * units.Microsecond
	s.At(openAt, func() {
		gate.open = true
		egress.GateChanged()
	})
	s.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	if len(det.offStarts) != 1 || len(det.offEnds) != 1 {
		t.Fatalf("off periods: starts=%v ends=%v, want one each", det.offStarts, det.offEnds)
	}
	if det.offEnds[0] != openAt {
		t.Errorf("off end at %v, want %v", det.offEnds[0], openAt)
	}
	if len(det.deq) != 2 || det.deq[0] != openAt {
		t.Errorf("dequeues at %v, first should be at gate open %v", det.deq, openAt)
	}
	if egress.PauseTime == 0 {
		t.Error("PauseTime not accumulated")
	}
}

func TestCtrlFrameDelayWaitsForSerialization(t *testing.T) {
	// A control frame sent while the port is serializing a 1000B packet
	// must wait for the remaining transmission, then one 64B
	// serialization plus propagation.
	g := topo.New()
	a := g.AddHost("a")
	sw := g.AddSwitch("sw")
	g.Connect(a, sw, 40*units.Gbps, 4*units.Microsecond)
	s := sim.New()
	n := New(s, g, DefaultConfig())
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) {}
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *Port { return n.PortToward(at, pkt.Dst) }

	hostPort := n.HostPort(a)
	var gotAt units.Time
	gate := &ctrlRecordGate{at: &gotAt, sched: s}
	hostPort.AttachGate(gate)

	swPort := n.PortToward(sw, a)
	// Occupy the switch->a port with a packet from t=0 (inject directly).
	s.At(0, func() {
		p := mkPkt(sw, a, 1000)
		p.InPort = -1
		swPort.Enqueue(p)
	})
	// Mid-transmission (t=100ns; tx lasts 200ns) the switch sends a ctrl frame.
	s.At(100*units.Nanosecond, func() { swPort.SendCtrl(CtrlFrame{Kind: CtrlPause}) })
	s.Run()
	// Expect: 100ns remaining tx + 12.8ns (64B at 40G) + 4us prop.
	want := 100*units.Nanosecond + units.TxTime(64, 40*units.Gbps) + 4*units.Microsecond + 100*units.Nanosecond
	if gotAt != want {
		t.Errorf("ctrl frame arrived at %v, want %v", gotAt, want)
	}
}

type ctrlRecordGate struct {
	at    *units.Time
	sched *sim.Scheduler
}

func (g *ctrlRecordGate) CanSend(uint8, units.ByteSize) bool { return true }
func (g *ctrlRecordGate) OnSend(uint8, units.ByteSize)       {}
func (g *ctrlRecordGate) HandleCtrl(now units.Time, f CtrlFrame) {
	*g.at = now
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (units.Time, uint64) {
		s, n, a, b := star(t, 40*units.Gbps, units.Microsecond)
		n.Sink = func(_ packet.NodeID, _ *packet.Packet) {}
		src := &listSource{}
		for i := 0; i < 100; i++ {
			src.pkts = append(src.pkts, mkPkt(a, b, 1000))
			src.at = append(src.at, units.Time(i)*100*units.Nanosecond)
		}
		n.HostPort(a).AttachSource(src)
		s.At(0, func() { n.HostPort(a).Kick() })
		s.Run()
		return s.Now(), s.Processed()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Errorf("runs diverged: (%v,%d) vs (%v,%d)", t1, e1, t2, e2)
	}
}

// pumpSource keeps one packet perpetually ready, minting the next from
// the network pool on Advance — together with sink-side recycling this
// forwards forever without fresh allocations.
type pumpSource struct {
	n        *Network
	src, dst packet.NodeID
	head     *packet.Packet
}

func (s *pumpSource) Head(now units.Time) (*packet.Packet, units.Time) { return s.head, now }

func (s *pumpSource) Advance() {
	pkt := s.n.NewPacket()
	pkt.Src, pkt.Dst, pkt.Kind, pkt.Size, pkt.Code, pkt.InPort = s.src, s.dst, packet.Data, 1000, packet.Capable, -1
	s.head = pkt
}

// TestForwardingSteadyStateAllocs pins the per-packet hot path at zero
// allocations once warm: propagation and switch-hop events ride the
// ports' preallocated typed-arg callbacks (no per-packet closures),
// packets recycle through the pool, and the scheduler's heap and slot
// table reuse their capacity. Companion to the sim package's
// TestSchedulerSteadyStateAllocs.
func TestForwardingSteadyStateAllocs(t *testing.T) {
	const budget = 0.0
	s, n, a, b := star(t, 40*units.Gbps, 4*units.Microsecond)
	n.Sink = func(_ packet.NodeID, _ *packet.Packet) {}
	src := &pumpSource{n: n, src: a, dst: b}
	src.Advance()
	n.HostPort(a).AttachSource(src)
	s.At(0, func() { n.HostPort(a).Kick() })
	// Warm up: fill the pool, the heap and the slot table.
	s.RunUntil(200 * units.Microsecond)
	allocs := testing.AllocsPerRun(100, func() {
		s.RunUntil(s.Now() + 10*units.Microsecond)
	})
	if allocs > budget {
		t.Errorf("steady-state forwarding allocates %.2f allocs/op, budget %.1f", allocs, budget)
	}
}
