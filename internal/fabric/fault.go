// Fault surface of the dataplane: link and port failure primitives, the
// payload-conservation ledger the invariant tests audit, and the
// pause-wait graph that the PFC deadlock and CBFC credit-stall detectors
// scan for cycles.
//
// All fault state is plain flags tested inline on the hot paths, so a run
// that never touches this file schedules exactly the same events as one
// built before it existed — the golden-trace byte-identity the fault
// injector promises.

package fabric

import (
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// SetDown marks this side of the link down or up. A down port neither
// starts transmissions nor delivers arriving frames: a frame caught
// mid-serialization is lost on the wire, a frame mid-propagation is lost
// at arrival if the receiving side is still down by then. Bringing the
// port back up immediately re-evaluates its egress queues.
func (p *Port) SetDown(down bool) {
	if p.down == down {
		return
	}
	p.down = down
	p.net.faulted = true
	if rec := p.net.cfg.Rec; rec != nil {
		kind := obs.KindLinkUp
		if down {
			kind = obs.KindLinkDown
		}
		rec.Record(obs.Event{At: p.net.Sched.Now(), Kind: kind, Port: p.Label(), Flow: -1})
	}
	if !down && !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// Down reports whether this side of the link is down.
func (p *Port) Down() bool { return p.down }

// SetFrozen freezes or thaws the port's egress pipeline: a frozen port
// stops serving its queues (and its pull source) but keeps receiving,
// forwarding and originating control frames — the signature of a hung
// egress scheduler rather than a dead cable. Backpressure builds behind
// it exactly as behind a paused port, which is what makes it the seed of
// choice for growing a pause storm on demand.
func (p *Port) SetFrozen(frozen bool) {
	if p.frozen == frozen {
		return
	}
	p.frozen = frozen
	p.net.faulted = true
	if rec := p.net.cfg.Rec; rec != nil {
		kind := obs.KindThaw
		if frozen {
			kind = obs.KindFreeze
		}
		rec.Record(obs.Event{At: p.net.Sched.Now(), Kind: kind, Port: p.Label(), Flow: -1})
	}
	if !frozen && !p.net.busy[p.idx] {
		p.tryTransmit()
	}
}

// Frozen reports whether the port's egress pipeline is frozen.
func (p *Port) Frozen() bool { return p.frozen }

// SetCtrlFault installs (or, with nil, removes) an interceptor for
// control frames originated by this port: drop loses the frame, a
// non-zero delay stretches its delivery. The interceptor must be
// deterministic given the run's seed.
func (p *Port) SetCtrlFault(f func(CtrlFrame) (drop bool, delay units.Time)) {
	p.ctrlFault = f
	if f != nil {
		p.net.faulted = true
	}
}

// Faulted reports whether any fault primitive ever touched the network
// (a latch, not current state: it stays set after links recover). While
// clear, the fabric's lossless guarantees are in force.
func (n *Network) Faulted() bool { return n.faulted }

// MarkFaulted sets the fault latch without touching any port — used by
// fault primitives (route rewrites, forged frames) that perturb behavior
// through public seams rather than port flags, so the lossless-guarantee
// invariants know to stand down.
func (n *Network) MarkFaulted() { n.faulted = true }

// Attack provenance bits the adversarial injector stamps on the ports it
// targets. The oracle reads them to tell a manufactured symptom (a port
// paused by forged frames, a queue held just under threshold by
// camouflage traffic) from organic congestion.
const (
	// AttackStorm: the port's peer forges PFC pause floods at it.
	AttackStorm uint8 = 1 << iota
	// AttackCamouflage: micro pause trains keep this port's queue
	// hovering just below its marking threshold.
	AttackCamouflage
	// AttackSpoof: the port forges CE marks on packets it sends.
	AttackSpoof
	// AttackReroute: a hostile route rewrite steers transit traffic
	// through this port.
	AttackReroute
)

// TagAttack stamps an attack-provenance bit on the port and latches the
// network's fault flag.
func (p *Port) TagAttack(bit uint8) {
	p.Attack |= bit
	p.net.faulted = true
}

// PeerIsHost reports whether the port's far end is a host NIC — the
// route-rewrite fault uses it to preserve host-delivery hops, and the
// oracle to scope its scan to switch egresses.
func (p *Port) PeerIsHost() bool { return p.Peer.node.kind == topo.Host }

// ForgeCtrl originates a control frame this port's flow-control stack
// never asked for — the compromised-NIC primitive behind pause storms.
// The frame takes the normal control path (serialization wait, link
// delay, jitter, ctrl-fault interceptors), so it is indistinguishable on
// the wire from an honest one; only the provenance counter and event
// record tell them apart.
func (p *Port) ForgeCtrl(f CtrlFrame) {
	p.net.faulted = true
	p.ForgedCtrl++
	if rec := p.net.cfg.Rec; rec != nil {
		rec.Record(obs.Event{
			At: p.net.Sched.Now(), Kind: obs.KindForgedCtrl, Port: p.Label(),
			Prio: f.Prio, Flow: -1, Val: int64(f.Kind),
		})
	}
	p.SendCtrl(f)
}

// SetSpoof installs (or, with nil, removes) the congestion-spoofing hook:
// for every data packet this port is about to serialize, the hook decides
// whether a forged CE mark is stamped on it regardless of queue state.
// The hook must be deterministic given the run's seed.
func (p *Port) SetSpoof(fn func(pkt *packet.Packet) bool) {
	p.spoof = fn
	if fn != nil {
		p.net.faulted = true
	}
}

// OffTime reports the cumulative time this port's egress has spent
// blocked by flow control, including the currently open OFF period (the
// PauseTime counter alone settles only on unblock). The oracle's
// per-window victim rule differences this.
func (p *Port) OffTime(now units.Time) units.Time {
	t := p.PauseTime
	base := int(p.pb)
	for k := 0; k < p.net.nPrio; k++ {
		if p.net.blocked[base+k] {
			t += now - p.blockStart
			break
		}
	}
	return t
}

// dropFaulted destroys a data-plane frame killed by a fault: counts it,
// records it, and recycles the packet. Ingress/in-flight ledgers must be
// settled by the caller before the packet dies.
func (p *Port) dropFaulted(pkt *packet.Packet) {
	p.FaultDrops++
	p.net.FaultDrops++
	p.net.faultDropPayload += pkt.Payload
	if rec := p.net.cfg.Rec; rec != nil {
		rec.Record(obs.Event{
			At: p.net.Sched.Now(), Kind: obs.KindFaultDrop, Port: p.Label(),
			Prio: pkt.Priority, Flow: int64(pkt.Flow), Val: int64(pkt.Size),
		})
	}
	p.net.arena.Put(pkt)
}

// SetLinkDown takes both sides of a topology link down (or up), which is
// how real link faults present: loss of light is bidirectional.
func (n *Network) SetLinkDown(link int, down bool) {
	n.portAt[link][0].SetDown(down)
	n.portAt[link][1].SetDown(down)
}

// FaultDropPayload reports the flow-payload volume destroyed by faults.
func (n *Network) FaultDropPayload() units.ByteSize { return n.faultDropPayload }

// InFlightPayload reports the flow-payload volume currently on a wire or
// inside a switch forwarding pipeline — injected but not yet in any
// queue, serializer, or sink.
func (n *Network) InFlightPayload() units.ByteSize { return n.inFlightPayload }

// ForEachQueued visits every packet the port currently holds — egress
// FIFOs, virtual output queues, and the frame mid-serialization — in a
// deterministic order.
func (p *Port) ForEachQueued(fn func(*packet.Packet)) {
	for prio := range p.queues {
		q := &p.queues[prio]
		for i := q.head; i < len(q.buf); i++ {
			fn(q.buf[i])
		}
	}
	for _, per := range p.voqs {
		for vi := range per {
			q := &per[vi]
			for i := q.head; i < len(q.buf); i++ {
				fn(q.buf[i])
			}
		}
	}
	if p.txPkt != nil {
		fn(p.txPkt)
	}
}

// QueuedPayload sums the flow-payload bytes held in every port's queues
// and serializers. Together with InFlightPayload it is the "still in the
// network" term of the conservation invariant.
func (n *Network) QueuedPayload() units.ByteSize {
	var total units.ByteSize
	for _, p := range n.ports {
		p.ForEachQueued(func(pkt *packet.Packet) { total += pkt.Payload })
	}
	return total
}

// waitsBlocked reports whether the port holds queued traffic on a
// priority its gate currently refuses — the node condition for the
// pause-wait graph. A port that is merely paused with nothing queued can
// not sustain a cycle (it has nothing to contribute to downstream
// occupancy), and a port with traffic but an open gate will drain.
func (p *Port) waitsBlocked() bool {
	base := int(p.pb)
	for k := 0; k < p.net.nPrio; k++ {
		if p.net.blocked[base+k] && p.net.qbytes[base+k] > 0 {
			return true
		}
	}
	return false
}

// WaitCycles finds the cycles of the pause-wait graph: nodes are ports
// blocked with queued traffic, and there is an edge p→q when a packet
// queued at p will, after crossing p's link, occupy egress port q of the
// downstream switch (per the network's routing function). A cycle means
// every member waits on buffer that only its own progress could free —
// the circular buffer dependency that turns lossless backpressure into
// deadlock. Cycles are returned as strongly connected components in a
// deterministic order; attribution (which link paused first) is left to
// the flow-control-specific detectors.
func (n *Network) WaitCycles() [][]*Port {
	if n.Route == nil {
		return nil
	}
	// Node pass: a linear sweep over the flat blocked/qbytes arrays; the
	// per-Port graph work below only runs for ports that qualify.
	idx := make(map[*Port]int, len(n.ports))
	var blocked []*Port
	for base := 0; base < len(n.blocked); base += n.nPrio {
		waits := false
		for k := 0; k < n.nPrio; k++ {
			if n.blocked[base+k] && n.qbytes[base+k] > 0 {
				waits = true
				break
			}
		}
		if waits {
			p := n.ports[base/n.nPrio]
			idx[p] = len(blocked)
			blocked = append(blocked, p)
		}
	}
	if len(blocked) < 2 {
		return nil
	}
	adj := make([][]int, len(blocked))
	for i, p := range blocked {
		peer := p.Peer.node
		if peer.kind != topo.Switch {
			continue // hosts consume at line rate: the chain ends there
		}
		seen := make(map[int]bool)
		p.ForEachQueued(func(pkt *packet.Packet) {
			out := n.Route(peer.id, pkt)
			if out == nil {
				return
			}
			if j, ok := idx[out]; ok && !seen[j] {
				seen[j] = true
				adj[i] = append(adj[i], j)
			}
		})
	}
	return tarjanCycles(blocked, adj)
}

// tarjanCycles runs Tarjan's SCC algorithm over the blocked-port graph
// and returns the components of size at least two — the actual wait
// cycles. Recursion depth is bounded by the number of simultaneously
// blocked ports, which even a deadlocked datacenter fabric keeps far
// below stack limits.
func tarjanCycles(ports []*Port, adj [][]int) [][]*Port {
	n := len(ports)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		cycles  [][]*Port
		stack   []int
		next    = 0
		callDfs func(v int)
	)
	callDfs = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == unvisited {
				callDfs(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				cyc := make([]*Port, 0, len(comp))
				// Reverse to report in DFS (deterministic port-table) order.
				for k := len(comp) - 1; k >= 0; k-- {
					cyc = append(cyc, ports[comp[k]])
				}
				cycles = append(cycles, cyc)
			}
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			callDfs(v)
		}
	}
	return cycles
}
