package fault

import (
	"math"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/cbfc"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// line is a 2-host dumbbell: h0 — s0 — h1, with one flow h0 -> h1.
type line struct {
	sched *sim.Scheduler
	net   *fabric.Network
	mgr   *host.Manager
	h0    packet.NodeID
	h1    packet.NodeID
	s0    packet.NodeID
	flow  *host.Flow
}

func newLine(t *testing.T) *line {
	t.Helper()
	g := topo.New()
	l := &line{sched: sim.New()}
	l.s0 = g.AddSwitch("s0")
	l.h0 = g.AddHost("h0")
	l.h1 = g.AddHost("h1")
	g.Connect(l.h0, l.s0, 40*units.Gbps, units.Microsecond)
	g.Connect(l.h1, l.s0, 40*units.Gbps, units.Microsecond)
	l.net = fabric.New(l.sched, g, fabric.DefaultConfig())
	l.net.Route = func(at packet.NodeID, pkt *packet.Packet) *fabric.Port {
		return l.net.PortToward(at, pkt.Dst)
	}
	l.mgr = host.Install(l.net, host.DefaultConfig())
	l.flow = l.mgr.AddFlow(l.h0, l.h1, 200*units.KB, 0, host.FixedRate(40*units.Gbps))
	return l
}

func TestFaultSpecParse(t *testing.T) {
	s, err := ParseSpec([]byte(`{"events":[{"kind":"link-down","at_us":10,"link":"h0-s0"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "link-down" || s.Events[0].AtUs != 10 {
		t.Fatalf("bad decode: %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"events":[{"kind":"flap","typo_field":1}]}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	if !new(Spec).Empty() || !(*Spec)(nil).Empty() {
		t.Fatal("nil/zero specs must report Empty")
	}
}

func TestFaultSpecLoadMissingFile(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestFaultSpecValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name   string
		events []Event
		want   string // substring of the error; "" means valid
	}{
		{"valid pair", []Event{
			{Kind: "link-down", Link: "a-b", AtUs: 5},
			{Kind: "link-up", Link: "a-b", AtUs: 50},
		}, ""},
		{"valid adversarial kinds", []Event{
			{Kind: "pause-storm", Port: "a->b", AtUs: 5, PeriodUs: 10, UntilUs: 50},
			{Kind: "camouflage", Port: "a->c", AtUs: 5, PeriodUs: 10, DownUs: 2, UntilUs: 50},
			{Kind: "spoof-mark", Port: "b->a", AtUs: 5, Prob: 0.5},
			{Kind: "route-rewrite", Port: "c->a", AtUs: 5},
		}, ""},
		{"unknown kind", []Event{{Kind: "meteor-strike", AtUs: 1}}, "unknown kind"},
		{"nan time", []Event{{Kind: "link-down", Link: "a-b", AtUs: nan}}, "not a finite number"},
		{"inf until", []Event{{Kind: "spoof-mark", Port: "a->b", AtUs: 1, Prob: 0.5, UntilUs: inf}}, "not a finite number"},
		{"negative time", []Event{{Kind: "link-down", Link: "a-b", AtUs: -3}}, "must not be negative"},
		{"negative prob", []Event{{Kind: "spoof-mark", Port: "a->b", AtUs: 1, Prob: -0.5}}, "must not be negative"},
		{"nan period", []Event{{Kind: "pause-storm", Port: "a->b", AtUs: 1, PeriodUs: nan, UntilUs: 9}}, "not a finite number"},
		{"duplicate", []Event{
			{Kind: "freeze", Port: "a->b", AtUs: 5},
			{Kind: "freeze", Port: "a->b", AtUs: 5},
		}, "duplicates"},
		{"same kind different time ok", []Event{
			{Kind: "freeze", Port: "a->b", AtUs: 5},
			{Kind: "freeze", Port: "a->b", AtUs: 9},
		}, ""},
		{"conflicting toggle", []Event{
			{Kind: "link-down", Link: "a-b", AtUs: 5},
			{Kind: "link-up", Link: "a-b", AtUs: 5},
		}, "conflict"},
		{"conflicting freeze", []Event{
			{Kind: "thaw", Port: "a->b", AtUs: 5},
			{Kind: "freeze", Port: "a->b", AtUs: 5},
		}, "conflict"},
		{"conflicting ctrl", []Event{
			{Kind: "ctrl-loss", Port: "a->b", AtUs: 5, Prob: 0.5},
			{Kind: "ctrl-delay", Port: "a->b", AtUs: 5, DelayUs: 2},
		}, "conflict"},
		{"conflict on different ports ok", []Event{
			{Kind: "link-down", Link: "a-b", AtUs: 5},
			{Kind: "link-up", Link: "a-c", AtUs: 5},
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := (&Spec{Events: tc.events}).Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	// ParseSpec runs Validate: a syntactically fine but conflicting spec
	// must not parse.
	bad := `{"events":[
		{"kind":"link-down","link":"h0-s0","at_us":5},
		{"kind":"link-up","link":"h0-s0","at_us":5}]}`
	if _, err := ParseSpec([]byte(bad)); err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Errorf("ParseSpec accepted conflicting events: %v", err)
	}
}

func TestFaultInjectValidation(t *testing.T) {
	l := newLine(t)
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown kind", Event{Kind: "meteor-strike", AtUs: 1, Link: "h0-s0"}, "unknown kind"},
		{"no target", Event{Kind: "link-down", AtUs: 1}, "needs a link or port"},
		{"both targets", Event{Kind: "link-down", AtUs: 1, Link: "h0-s0", Port: "h0->s0"}, "not both"},
		{"bad link", Event{Kind: "link-down", AtUs: 1, Link: "h0-h9"}, "cannot resolve link"},
		{"unconnected", Event{Kind: "link-down", AtUs: 1, Link: "h0-h1"}, "no link between"},
		{"bad port", Event{Kind: "freeze", AtUs: 1, Port: "h0->h9"}, "cannot resolve port"},
		{"flap no period", Event{Kind: "flap", AtUs: 1, Link: "h0-s0", DownUs: 1, UntilUs: 9}, "period_us > 0"},
		{"flap down too long", Event{Kind: "flap", AtUs: 1, Link: "h0-s0", PeriodUs: 5, DownUs: 5, UntilUs: 9}, "down_us < period_us"},
		{"flap empty window", Event{Kind: "flap", AtUs: 9, Link: "h0-s0", PeriodUs: 5, DownUs: 1, UntilUs: 9}, "until_us past at_us"},
		{"flap explosion", Event{Kind: "flap", AtUs: 0, Link: "h0-s0", PeriodUs: 0.001, DownUs: 0.0005, UntilUs: 1e6}, "toggles"},
		{"ctrl-loss bad prob", Event{Kind: "ctrl-loss", AtUs: 1, Port: "s0->h1", Prob: 1.5}, "prob in (0, 1]"},
		{"ctrl-delay no delay", Event{Kind: "ctrl-delay", AtUs: 1, Port: "s0->h1"}, "delay_us > 0"},
		{"storm on a link", Event{Kind: "pause-storm", AtUs: 1, Link: "h0-s0", PeriodUs: 10, UntilUs: 50}, "not a link"},
		{"storm no target", Event{Kind: "pause-storm", AtUs: 1, PeriodUs: 10, UntilUs: 50}, "needs a port target"},
		{"storm bad prio", Event{Kind: "pause-storm", AtUs: 1, Port: "s0->h1", Prio: 99, PeriodUs: 10, UntilUs: 50}, "out of range"},
		{"storm no period", Event{Kind: "pause-storm", AtUs: 1, Port: "s0->h1", UntilUs: 50}, "period_us > 0"},
		{"storm empty window", Event{Kind: "pause-storm", AtUs: 50, Port: "s0->h1", PeriodUs: 10, UntilUs: 50}, "until_us past at_us"},
		{"storm bad duty", Event{Kind: "pause-storm", AtUs: 1, Port: "s0->h1", PeriodUs: 10, DownUs: 10, UntilUs: 50}, "bursty"},
		{"storm explosion", Event{Kind: "pause-storm", AtUs: 0, Port: "s0->h1", PeriodUs: 0.001, UntilUs: 1e6}, "frames"},
		{"camouflage sustained", Event{Kind: "camouflage", AtUs: 1, Port: "s0->h1", PeriodUs: 10, UntilUs: 50}, "0 < down_us < period_us"},
		{"spoof bad prob", Event{Kind: "spoof-mark", AtUs: 1, Port: "s0->h1", Prob: 2}, "prob in (0, 1]"},
		{"spoof empty window", Event{Kind: "spoof-mark", AtUs: 9, Port: "s0->h1", Prob: 0.5, UntilUs: 9}, "until_us past at_us"},
		{"reroute empty window", Event{Kind: "route-rewrite", AtUs: 9, Port: "s0->h1", UntilUs: 9}, "until_us past at_us"},
		{"reroute on a link", Event{Kind: "route-rewrite", AtUs: 1, Link: "h0-s0"}, "not a link"},
	}
	for _, tc := range cases {
		_, err := Inject(l.net, &Spec{Events: []Event{tc.ev}})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
}

func TestFaultInjectRejectsPastEvents(t *testing.T) {
	l := newLine(t)
	l.sched.RunUntil(10 * units.Microsecond)
	_, err := Inject(l.net, &Spec{Events: []Event{{Kind: "link-down", Link: "h0-s0", AtUs: 2}}})
	if err == nil || !strings.Contains(err.Error(), "in the past") {
		t.Fatalf("want past-event error, got %v", err)
	}
}

func TestFaultInjectEmpty(t *testing.T) {
	l := newLine(t)
	inj, err := Inject(l.net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Armed != 0 || inj.FirstInjection() != units.Forever {
		t.Fatalf("empty spec armed %d actions, first %v", inj.Armed, inj.FirstInjection())
	}
}

func TestFaultFlapExpansion(t *testing.T) {
	l := newLine(t)
	inj, err := Inject(l.net, &Spec{Events: []Event{{
		Kind: "flap", Link: "h0-s0", AtUs: 10, PeriodUs: 10, DownUs: 4, UntilUs: 45,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// Down edges at 10, 20, 30, 40; each paired with an up edge.
	if inj.Armed != 8 {
		t.Fatalf("want 8 toggles, armed %d", inj.Armed)
	}
	if inj.FirstInjection() != 10*units.Microsecond {
		t.Fatalf("first injection %v, want 10us", inj.FirstInjection())
	}
}

func TestFaultLinkDownStallsAndRecovers(t *testing.T) {
	l := newLine(t)
	_, err := Inject(l.net, &Spec{Events: []Event{
		{Kind: "link-down", Link: "s0-h1", AtUs: 5},
		{Kind: "link-up", Link: "s0-h1", AtUs: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	l.sched.RunUntil(50 * units.Microsecond)
	if l.flow.Done {
		t.Fatal("flow completed across a dead link")
	}
	rxAtOutage := l.flow.BytesRxed()
	if l.net.FaultDrops == 0 {
		t.Fatal("frames in flight at link-down should have been destroyed")
	}
	l.sched.RunUntil(400 * units.Microsecond)
	if !l.flow.Done {
		t.Fatalf("flow did not recover after link-up: rxed %d of %d", l.flow.BytesRxed(), l.flow.Size)
	}
	if l.flow.BytesRxed() <= rxAtOutage {
		t.Fatal("no progress after recovery")
	}
	// Conservation across the fault: everything sent is delivered or
	// destroyed (nothing queued or in flight after completion).
	sent := l.flow.BytesSent()
	accounted := l.flow.BytesRxed() + l.net.FaultDropPayload() + l.net.InFlightPayload() + l.net.QueuedPayload()
	if sent != accounted {
		t.Fatalf("conservation: sent %d != accounted %d", sent, accounted)
	}
}

func TestFaultFreezeStallsWithoutDrops(t *testing.T) {
	l := newLine(t)
	_, err := Inject(l.net, &Spec{Events: []Event{
		{Kind: "freeze", Port: "s0->h1", AtUs: 5},
		{Kind: "thaw", Port: "s0->h1", AtUs: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	l.sched.RunUntil(50 * units.Microsecond)
	if l.flow.Done {
		t.Fatal("flow completed through a frozen egress")
	}
	if l.net.FaultDrops != 0 {
		t.Fatal("freeze must not destroy frames, only stall them")
	}
	l.sched.RunUntil(400 * units.Microsecond)
	if !l.flow.Done {
		t.Fatal("flow did not recover after thaw")
	}
}

func TestFaultStopCancelsPendingActions(t *testing.T) {
	l := newLine(t)
	inj, err := Inject(l.net, &Spec{Events: []Event{
		{Kind: "link-down", Link: "s0-h1", AtUs: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	l.sched.RunUntil(400 * units.Microsecond)
	if !l.flow.Done {
		t.Fatal("canceled fault still broke the run")
	}
	if l.net.Faulted() {
		t.Fatal("network marked faulted though every action was canceled")
	}
}

func TestFaultRerouteNeedsRoutingFunc(t *testing.T) {
	g := topo.New()
	s0 := g.AddSwitch("s0")
	h0 := g.AddHost("h0")
	g.Connect(h0, s0, 40*units.Gbps, units.Microsecond)
	net := fabric.New(sim.New(), g, fabric.DefaultConfig())
	_, err := Inject(net, &Spec{Events: []Event{{Kind: "route-rewrite", Port: "s0->h0", AtUs: 1}}})
	if err == nil || !strings.Contains(err.Error(), "routing function") {
		t.Fatalf("want routing-function error, got %v", err)
	}
}

// TestFaultStopMidStorm: Stop racing a bursty pause-storm between a forged
// pause and its forged resume cancels the resume — the last fired pause
// keeps the gate down (no honest meter ever paused it, so none will resume
// it) and the network stays marked faulted, while no further frames are
// forged.
func TestFaultStopMidStorm(t *testing.T) {
	l := newLine(t)
	pfc.Install(l.net, pfc.DefaultConfig())
	inj, err := Inject(l.net, &Spec{Events: []Event{{
		Kind: "pause-storm", Port: "s0->h1", AtUs: 10, PeriodUs: 10, DownUs: 8, UntilUs: 200,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	forged := func() uint64 {
		var n uint64
		for _, p := range l.net.Ports() {
			n += p.ForgedCtrl
		}
		return n
	}
	// Pause fires at 10us, its resume at 18us: stop in between.
	l.sched.RunUntil(15 * units.Microsecond)
	if got := forged(); got != 1 {
		t.Fatalf("mid-storm forged %d frames, want exactly the first pause", got)
	}
	inj.Stop()
	l.sched.RunUntil(400 * units.Microsecond)
	if got := forged(); got != 1 {
		t.Fatalf("storm kept forging after Stop: %d frames", got)
	}
	if l.flow.Done {
		t.Fatal("flow completed through a gate whose forged resume was cancelled")
	}
	if !l.net.Faulted() {
		t.Fatal("network no longer faulted though a forged pause already fired")
	}
}

// TestFaultGoldenPrefixBoundary: a run with a fault schedule is identical
// to the unfaulted run strictly before FirstInjection and diverges after.
func TestFaultGoldenPrefixBoundary(t *testing.T) {
	build := func(storm bool) *line {
		l := newLine(t)
		pfc.Install(l.net, pfc.DefaultConfig())
		if storm {
			inj, err := Inject(l.net, &Spec{Events: []Event{{
				Kind: "pause-storm", Port: "s0->h1", AtUs: 20, PeriodUs: 10, DownUs: 8, UntilUs: 250,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			if inj.FirstInjection() != 20*units.Microsecond {
				t.Fatalf("first injection %v, want 20us", inj.FirstInjection())
			}
		}
		return l
	}
	clean, attacked := build(false), build(true)
	// Strictly before the boundary the runs are indistinguishable.
	clean.sched.RunUntil(19 * units.Microsecond)
	attacked.sched.RunUntil(19 * units.Microsecond)
	if c, a := clean.flow.BytesRxed(), attacked.flow.BytesRxed(); c != a {
		t.Fatalf("prefix diverged before first injection: clean rxed %d, attacked %d", c, a)
	}
	if attacked.net.Faulted() {
		t.Fatal("network marked faulted before the first injection fired")
	}
	// Past the boundary the storm bites: at 100us the clean flow is done
	// while the attacked one is still being paused 80% of every period.
	clean.sched.RunUntil(100 * units.Microsecond)
	attacked.sched.RunUntil(100 * units.Microsecond)
	if !clean.flow.Done {
		t.Fatal("clean flow did not complete")
	}
	if c, a := clean.flow.BytesRxed(), attacked.flow.BytesRxed(); a >= c {
		t.Fatalf("storm did not bite: clean rxed %d, attacked %d", c, a)
	}
	if !attacked.net.Faulted() {
		t.Fatal("attacked network not marked faulted after the storm")
	}
}

func TestFaultCtrlLossDeterminism(t *testing.T) {
	drops := func() uint64 {
		l := newLine(t)
		// CBFC keeps periodic FCCL control frames flowing as long as
		// traffic does, giving the loss hook something to flip coins on.
		cbfc.Install(l.net, cbfc.DefaultConfig())
		if _, err := Inject(l.net, &Spec{Events: []Event{
			{Kind: "ctrl-loss", Port: "s0->h0", AtUs: 1, Prob: 0.5, Seed: 77},
		}}); err != nil {
			t.Fatal(err)
		}
		l.sched.RunUntil(300 * units.Microsecond)
		if !l.net.Faulted() {
			t.Fatal("ctrl-loss rule did not mark the network faulted")
		}
		return l.net.FaultDrops
	}
	a, b := drops(), drops()
	if a == 0 {
		t.Fatal("ctrl-loss at p=0.5 dropped nothing; the hook never ran")
	}
	if a != b {
		t.Fatalf("same seed, different drops: %d vs %d", a, b)
	}
}
