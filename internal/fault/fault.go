// Package fault is the deterministic fault injector: it turns a
// declarative schedule (JSON or programmatic) of link and port failures
// into cancellable scheduler events against a fabric.Network.
//
// Injectable primitives:
//
//   - link-down / link-up: both sides of a named link lose light at a
//     sim timestamp (frames mid-wire are destroyed, queues freeze behind
//     the dead egress) and come back later.
//   - flap: periodic down/up toggling of a link over a window — the
//     classic failing-optics signature that drives rerouting storms.
//   - ctrl-loss / ctrl-delay: a directed port's outgoing control frames
//     (PFC PAUSE/RESUME, CBFC FCCL) are dropped with a seeded
//     probability or delivered late — the pause-loss and stale-credit
//     hazards that break flow-control assumptions without touching data.
//   - freeze / thaw: one port's egress pipeline hangs while its ingress
//     keeps working — the seed for growing pause storms and, on cyclic
//     routes, full PFC deadlock on demand.
//
// Adversarial primitives (a compromised NIC or switch, not a broken one):
//
//   - pause-storm: forged PFC Xoff floods against a chosen egress port —
//     sustained (down_us = 0: back-to-back pauses, one final resume) or
//     bursty (0 < down_us < period_us: pause/resume trains). On CBFC
//     fabrics the forged frames are protocol no-ops (credit state is
//     cumulative), which is itself a measured cross-fabric contrast.
//   - camouflage: micro pause trains that keep a root port's queue
//     hovering just below its marking threshold — the victim-camouflage
//     attack. Mechanically a bursty storm, but tagged separately and with
//     its duty cycle exposed so the oracle can strip it from ground truth.
//   - spoof-mark: a compromised sender forges CE marks on its outgoing
//     data packets with a seeded probability — congestion signaling with
//     no queue buildup behind it.
//   - route-rewrite: a runtime routing override at one node steers
//     transit traffic out a chosen port, manufacturing cyclic buffer
//     dependency (deadlock-by-routing-loop) on demand. Host-delivery
//     routes are preserved so local traffic still lands.
//
// Determinism: every action is a regular scheduler event with a fixed
// timestamp, and the only randomness (ctrl-loss coin flips, spoof-mark
// coin flips) draws from a per-rule seeded rng.Source, so the same spec
// and seed replay exactly. An empty schedule arms nothing and installs
// nothing — runs without faults stay byte-identical to runs built before
// this package existed.
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Event is one scheduled fault. Times are in microseconds of simulated
// time; Link names an undirected link "A-B", Port a directed egress
// "A->B" (the port owned by A on the link toward B).
type Event struct {
	// Kind is one of link-down, link-up, flap, ctrl-loss, ctrl-delay,
	// freeze, thaw, pause-storm, camouflage, spoof-mark, route-rewrite.
	Kind string `json:"kind"`
	// AtUs is when the fault takes effect.
	AtUs float64 `json:"at_us"`
	// Link selects both sides of an undirected link (link-down, link-up,
	// flap; also accepted by freeze/thaw to freeze both sides).
	Link string `json:"link,omitempty"`
	// Port selects one directed egress port (ctrl-loss, ctrl-delay,
	// freeze, thaw; also accepted by link-down/up for a one-sided fault).
	Port string `json:"port,omitempty"`
	// PeriodUs is the flap period (down edge to down edge).
	PeriodUs float64 `json:"period_us,omitempty"`
	// DownUs is how long each flap iteration stays down.
	DownUs float64 `json:"down_us,omitempty"`
	// UntilUs ends a flap window or a ctrl-loss/ctrl-delay rule
	// (0 = the rule lasts for the rest of the run).
	UntilUs float64 `json:"until_us,omitempty"`
	// Prob is the ctrl-loss drop probability in [0, 1].
	Prob float64 `json:"prob,omitempty"`
	// DelayUs is the extra ctrl-delay delivery latency.
	DelayUs float64 `json:"delay_us,omitempty"`
	// Seed seeds the ctrl-loss / spoof-mark coin flips (0 = derived from
	// the rule's position in the spec).
	Seed uint64 `json:"seed,omitempty"`
	// Prio is the PFC priority / virtual lane a pause-storm or camouflage
	// rule attacks.
	Prio uint8 `json:"prio,omitempty"`
}

// Spec is a fault schedule.
type Spec struct {
	Events []Event `json:"events"`
}

// Empty reports whether the spec schedules nothing.
func (s *Spec) Empty() bool { return s == nil || len(s.Events) == 0 }

// ParseSpec decodes and validates a JSON fault schedule.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// knownKinds is every accepted Event.Kind. conflicts maps each kind to
// the kind it cannot share a target and timestamp with: two such events
// would race on the same flag with an order-of-spec winner — always a
// spec bug, never an intent.
var (
	knownKinds = map[string]bool{
		"link-down": true, "link-up": true, "flap": true,
		"ctrl-loss": true, "ctrl-delay": true, "freeze": true, "thaw": true,
		"pause-storm": true, "camouflage": true, "spoof-mark": true,
		"route-rewrite": true,
	}
	conflicts = map[string]string{
		"link-down": "link-up", "link-up": "link-down",
		"freeze": "thaw", "thaw": "freeze",
		"ctrl-loss": "ctrl-delay", "ctrl-delay": "ctrl-loss",
	}
)

// finite reports whether f is a usable spec number: not NaN, not ±Inf.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// checkNumbers rejects NaN/Inf/negative values in one event's numeric
// fields — usToTime would otherwise round them into garbage timestamps
// silently.
func checkNumbers(ev Event) error {
	for _, f := range []struct {
		name string
		val  float64
	}{
		{"at_us", ev.AtUs}, {"period_us", ev.PeriodUs}, {"down_us", ev.DownUs},
		{"until_us", ev.UntilUs}, {"prob", ev.Prob}, {"delay_us", ev.DelayUs},
	} {
		if !finite(f.val) {
			return fmt.Errorf("%s %s is not a finite number", ev.Kind, f.name)
		}
		if f.val < 0 {
			return fmt.Errorf("%s %s must not be negative (got %g)", ev.Kind, f.name, f.val)
		}
	}
	return nil
}

// Validate checks the spec's static well-formedness: known kinds, finite
// non-negative numbers, and no conflicting events on the same target at
// the same timestamp. Topology-dependent checks (does the link exist,
// does the priority fit the fabric) happen at Inject time.
func (s *Spec) Validate() error {
	if s.Empty() {
		return nil
	}
	type slot struct{ index int }
	at := make(map[string]slot, len(s.Events))
	for i, ev := range s.Events {
		if !knownKinds[ev.Kind] {
			return fmt.Errorf("fault: event %d: unknown kind %q", i, ev.Kind)
		}
		if err := checkNumbers(ev); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
		key := fmt.Sprintf("%s|%s|%s|%g", ev.Kind, ev.Link, ev.Port, ev.AtUs)
		if prev, dup := at[key]; dup {
			return fmt.Errorf("fault: events %d and %d are duplicates: %s on %q at %gus",
				prev.index, i, ev.Kind, ev.Link+ev.Port, ev.AtUs)
		}
		at[key] = slot{i}
		if opp := conflicts[ev.Kind]; opp != "" {
			oppKey := fmt.Sprintf("%s|%s|%s|%g", opp, ev.Link, ev.Port, ev.AtUs)
			if prev, clash := at[oppKey]; clash {
				return fmt.Errorf("fault: events %d and %d conflict: %s vs %s on %q at %gus",
					prev.index, i, opp, ev.Kind, ev.Link+ev.Port, ev.AtUs)
			}
		}
	}
	return nil
}

// LoadSpec reads and decodes a JSON fault schedule from a file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return ParseSpec(data)
}

// maxFlapToggles bounds the events one flap rule may expand into, so a
// malformed spec (tiny period, huge window) fails loudly instead of
// flooding the scheduler.
const maxFlapToggles = 100000

// Injector holds the armed fault events of one run.
type Injector struct {
	net *fabric.Network
	ids []sim.EventID

	// Armed counts the primitive actions scheduled.
	Armed int
	// first is the earliest action timestamp (units.Forever when none).
	first units.Time

	// override is the route-rewrite table, lazily installed as a wrapper
	// around the network's routing function on the first route-rewrite
	// rule. While the map is empty the wrapper is behaviorally inert, so
	// the golden prefix before the first rewrite fires is preserved.
	override map[packet.NodeID]*fabric.Port
	// camoDuty records, per camouflaged port, the summed pause duty cycle
	// (down_us/period_us) of its camouflage rules. The oracle subtracts
	// it from the port's observed OFF fraction when deriving ground
	// truth: that pause time was manufactured, not backpressure.
	camoDuty map[*fabric.Port]float64
}

// usToTime converts spec microseconds to simulator time.
func usToTime(us float64) units.Time {
	return units.Time(math.Round(us * float64(units.Microsecond)))
}

// Inject validates spec against the network's topology and schedules
// every action on the network's scheduler. It must be called before the
// run starts (actions in the past are a spec error). The returned
// Injector can Stop() to cancel everything still pending.
func Inject(n *fabric.Network, spec *Spec) (*Injector, error) {
	in := &Injector{net: n, first: units.Forever}
	if spec.Empty() {
		return in, nil
	}
	now := n.Sched.Now()
	for i, ev := range spec.Events {
		if err := checkNumbers(ev); err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
		at := usToTime(ev.AtUs)
		if at < now {
			return nil, fmt.Errorf("fault: event %d (%s) at %v is in the past (now %v)", i, ev.Kind, at, now)
		}
		var err error
		switch ev.Kind {
		case "link-down":
			err = in.armUpDown(i, ev, at, true)
		case "link-up":
			err = in.armUpDown(i, ev, at, false)
		case "flap":
			err = in.armFlap(i, ev, at)
		case "ctrl-loss", "ctrl-delay":
			err = in.armCtrlFault(i, ev, at)
		case "freeze":
			err = in.armFreeze(i, ev, at, true)
		case "thaw":
			err = in.armFreeze(i, ev, at, false)
		case "pause-storm":
			err = in.armStorm(i, ev, at, false)
		case "camouflage":
			err = in.armStorm(i, ev, at, true)
		case "spoof-mark":
			err = in.armSpoof(i, ev, at)
		case "route-rewrite":
			err = in.armReroute(i, ev, at)
		default:
			err = fmt.Errorf("unknown kind %q", ev.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return in, nil
}

// Stop cancels every armed action still pending.
func (in *Injector) Stop() {
	for _, id := range in.ids {
		in.net.Sched.Cancel(id)
	}
	in.ids = in.ids[:0]
}

// FirstInjection reports the earliest armed action's timestamp, or
// units.Forever for an empty schedule. Trace prefixes strictly before it
// are guaranteed identical to the fault-free run.
func (in *Injector) FirstInjection() units.Time { return in.first }

// arm schedules one action and tracks its handle for Stop.
func (in *Injector) arm(at units.Time, fn func()) {
	id := in.net.Sched.At(at, fn)
	in.ids = append(in.ids, id)
	in.Armed++
	if at < in.first {
		in.first = at
	}
}

// resolveLink resolves "A-B" to a topology link index. Node names may
// themselves contain dashes, so every split position is tried.
func (in *Injector) resolveLink(s string) (int, error) {
	t := in.net.Topo
	for i := 1; i < len(s)-1; i++ {
		if s[i] != '-' {
			continue
		}
		a, okA := t.Lookup(s[:i])
		b, okB := t.Lookup(s[i+1:])
		if okA && okB {
			if li := t.LinkBetween(a, b); li >= 0 {
				return li, nil
			}
			return -1, fmt.Errorf("no link between %q and %q", s[:i], s[i+1:])
		}
	}
	return -1, fmt.Errorf("cannot resolve link %q", s)
}

// resolvePort resolves "A->B" to the egress port of A toward B.
func (in *Injector) resolvePort(s string) (*fabric.Port, error) {
	t := in.net.Topo
	for i := 1; i+2 < len(s); i++ {
		if s[i] != '-' || s[i+1] != '>' {
			continue
		}
		a, okA := t.Lookup(s[:i])
		b, okB := t.Lookup(s[i+2:])
		if okA && okB {
			if t.LinkBetween(a, b) < 0 {
				return nil, fmt.Errorf("no link between %q and %q", s[:i], s[i+2:])
			}
			return in.net.PortToward(a, b), nil
		}
	}
	return nil, fmt.Errorf("cannot resolve port %q", s)
}

// sides resolves an event's target to the affected ports: both sides of
// Link, or the single directed Port.
func (in *Injector) sides(ev Event) ([]*fabric.Port, error) {
	switch {
	case ev.Link != "" && ev.Port != "":
		return nil, fmt.Errorf("give link or port, not both")
	case ev.Link != "":
		li, err := in.resolveLink(ev.Link)
		if err != nil {
			return nil, err
		}
		return []*fabric.Port{in.net.PortOn(in.net.Topo.Links[li].A, li), in.net.PortOn(in.net.Topo.Links[li].B, li)}, nil
	case ev.Port != "":
		p, err := in.resolvePort(ev.Port)
		if err != nil {
			return nil, err
		}
		return []*fabric.Port{p}, nil
	default:
		return nil, fmt.Errorf("needs a link or port target")
	}
}

func (in *Injector) armUpDown(_ int, ev Event, at units.Time, down bool) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetDown(down)
		}
	})
	return nil
}

func (in *Injector) armFreeze(_ int, ev Event, at units.Time, frozen bool) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetFrozen(frozen)
		}
	})
	return nil
}

func (in *Injector) armFlap(_ int, ev Event, at units.Time) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	period := usToTime(ev.PeriodUs)
	downFor := usToTime(ev.DownUs)
	until := usToTime(ev.UntilUs)
	switch {
	case period <= 0:
		return fmt.Errorf("flap needs period_us > 0")
	case downFor <= 0 || downFor >= period:
		return fmt.Errorf("flap needs 0 < down_us < period_us")
	case until <= at:
		return fmt.Errorf("flap needs until_us past at_us")
	case (int64(until-at)/int64(period)+1)*2 > maxFlapToggles:
		return fmt.Errorf("flap expands to more than %d toggles", maxFlapToggles)
	}
	for t := at; t < until; t += period {
		down, up := t, t+downFor
		if up > until {
			up = until
		}
		in.arm(down, func() {
			for _, p := range ports {
				p.SetDown(true)
			}
		})
		in.arm(up, func() {
			for _, p := range ports {
				p.SetDown(false)
			}
		})
	}
	return nil
}

func (in *Injector) armCtrlFault(i int, ev Event, at units.Time) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	var hook func(fabric.CtrlFrame) (bool, units.Time)
	switch ev.Kind {
	case "ctrl-loss":
		if ev.Prob <= 0 || ev.Prob > 1 {
			return fmt.Errorf("ctrl-loss needs prob in (0, 1]")
		}
		seed := ev.Seed
		if seed == 0 {
			// Derive a stable per-rule seed so two unseeded rules do not
			// share a coin stream.
			seed = 0x9e3779b97f4a7c15 * uint64(i+1)
		}
		src := rng.New(seed)
		prob := ev.Prob
		hook = func(fabric.CtrlFrame) (bool, units.Time) { return src.Float64() < prob, 0 }
	case "ctrl-delay":
		if ev.DelayUs <= 0 {
			return fmt.Errorf("ctrl-delay needs delay_us > 0")
		}
		delay := usToTime(ev.DelayUs)
		hook = func(fabric.CtrlFrame) (bool, units.Time) { return false, delay }
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetCtrlFault(hook)
		}
	})
	if ev.UntilUs > 0 {
		until := usToTime(ev.UntilUs)
		if until <= at {
			return fmt.Errorf("%s needs until_us past at_us (or 0 for open-ended)", ev.Kind)
		}
		in.arm(until, func() {
			for _, p := range ports {
				p.SetCtrlFault(nil)
			}
		})
	}
	return nil
}

// targetPort resolves the mandatory directed-port target of an
// adversarial rule (they attack one egress, never a whole link).
func (in *Injector) targetPort(ev Event) (*fabric.Port, error) {
	if ev.Link != "" {
		return nil, fmt.Errorf("%s needs a directed port target, not a link", ev.Kind)
	}
	if ev.Port == "" {
		return nil, fmt.Errorf("%s needs a port target", ev.Kind)
	}
	return in.resolvePort(ev.Port)
}

// armStorm schedules a pause-storm or (camo=true) camouflage rule: forged
// PFC pause frames originated by the target port's peer — the compromised
// NIC or switch on the far end — against the target's egress gate. With
// down_us = 0 the storm is sustained: a pause every period with a single
// final resume at until_us. With 0 < down_us < period_us it is bursty:
// pause at each period start, resume down_us later. Camouflage requires
// the bursty form (a sustained pause would be a detectable outage, not
// camouflage) and records its duty cycle for the oracle.
func (in *Injector) armStorm(_ int, ev Event, at units.Time, camo bool) error {
	target, err := in.targetPort(ev)
	if err != nil {
		return err
	}
	if int(ev.Prio) >= in.net.Config().Priorities {
		return fmt.Errorf("%s prio %d out of range (fabric has %d priorities)",
			ev.Kind, ev.Prio, in.net.Config().Priorities)
	}
	period := usToTime(ev.PeriodUs)
	downFor := usToTime(ev.DownUs)
	until := usToTime(ev.UntilUs)
	switch {
	case period <= 0:
		return fmt.Errorf("%s needs period_us > 0", ev.Kind)
	case until <= at:
		return fmt.Errorf("%s needs until_us past at_us", ev.Kind)
	case camo && (downFor <= 0 || downFor >= period):
		return fmt.Errorf("camouflage needs 0 < down_us < period_us")
	case !camo && downFor != 0 && (downFor <= 0 || downFor >= period):
		return fmt.Errorf("pause-storm needs down_us = 0 (sustained) or 0 < down_us < period_us (bursty)")
	case (int64(until-at)/int64(period)+1)*2 > maxFlapToggles:
		return fmt.Errorf("%s expands to more than %d frames", ev.Kind, maxFlapToggles)
	}
	tag := fabric.AttackStorm
	if camo {
		tag = fabric.AttackCamouflage
		if in.camoDuty == nil {
			in.camoDuty = make(map[*fabric.Port]float64)
		}
		in.camoDuty[target] += ev.DownUs / ev.PeriodUs
	}
	forger := target.Peer
	prio := ev.Prio
	pause := func() {
		target.TagAttack(tag)
		forger.ForgeCtrl(fabric.CtrlFrame{Kind: fabric.CtrlPause, Prio: prio})
	}
	resume := func() {
		forger.ForgeCtrl(fabric.CtrlFrame{Kind: fabric.CtrlResume, Prio: prio})
	}
	for t := at; t < until; t += period {
		in.arm(t, pause)
		if downFor > 0 {
			up := t + downFor
			if up > until {
				up = until
			}
			in.arm(up, resume)
		}
	}
	if downFor == 0 {
		// Sustained storm: one final resume so the rule's damage has a
		// defined end and post-attack recovery is measurable.
		in.arm(until, resume)
	}
	return nil
}

// armSpoof schedules a spoof-mark rule: the target port forges CE marks
// on its outgoing data packets with probability prob from at_us until
// until_us (0 = rest of the run).
func (in *Injector) armSpoof(i int, ev Event, at units.Time) error {
	target, err := in.targetPort(ev)
	if err != nil {
		return err
	}
	if ev.Prob <= 0 || ev.Prob > 1 {
		return fmt.Errorf("spoof-mark needs prob in (0, 1]")
	}
	seed := ev.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	src := rng.New(seed)
	prob := ev.Prob
	hook := func(*packet.Packet) bool { return src.Float64() < prob }
	in.arm(at, func() {
		target.TagAttack(fabric.AttackSpoof)
		target.SetSpoof(hook)
	})
	if ev.UntilUs > 0 {
		until := usToTime(ev.UntilUs)
		if until <= at {
			return fmt.Errorf("spoof-mark needs until_us past at_us (or 0 for open-ended)")
		}
		in.arm(until, func() { target.SetSpoof(nil) })
	}
	return nil
}

// routeOverride lazily wraps the network's routing function with the
// injector's rewrite table. Installed at Inject time but inert while the
// table is empty, so the trace prefix before the first rewrite fires is
// byte-identical to the unwrapped run.
func (in *Injector) routeOverride() (map[packet.NodeID]*fabric.Port, error) {
	if in.override != nil {
		return in.override, nil
	}
	orig := in.net.Route
	if orig == nil {
		return nil, fmt.Errorf("route-rewrite needs a routing function installed")
	}
	in.override = make(map[packet.NodeID]*fabric.Port)
	ov := in.override
	in.net.Route = func(at packet.NodeID, pkt *packet.Packet) *fabric.Port {
		if len(ov) != 0 {
			if out, ok := ov[at]; ok {
				// Preserve host delivery: the attack loops transit
				// traffic, it does not black-hole local destinations.
				if dflt := orig(at, pkt); dflt != nil && dflt.PeerIsHost() {
					return dflt
				}
				return out
			}
		}
		return orig(at, pkt)
	}
	return ov, nil
}

// armReroute schedules a route-rewrite rule: from at_us, every transit
// packet at the target port's node is forced out that port (host-delivery
// hops excepted); until_us removes the rewrite (0 = permanent).
func (in *Injector) armReroute(_ int, ev Event, at units.Time) error {
	out, err := in.targetPort(ev)
	if err != nil {
		return err
	}
	ov, err := in.routeOverride()
	if err != nil {
		return err
	}
	node := out.Node()
	rec := out.Recorder()
	in.arm(at, func() {
		out.TagAttack(fabric.AttackReroute)
		ov[node] = out
		if rec != nil {
			rec.Record(obs.Event{
				At: in.net.Sched.Now(), Kind: obs.KindRouteRewrite,
				Port: out.Label(), Flow: -1, Val: 1,
			})
		}
	})
	if ev.UntilUs > 0 {
		until := usToTime(ev.UntilUs)
		if until <= at {
			return fmt.Errorf("route-rewrite needs until_us past at_us (or 0 for permanent)")
		}
		in.arm(until, func() {
			delete(ov, node)
			if rec != nil {
				rec.Record(obs.Event{
					At: in.net.Sched.Now(), Kind: obs.KindRouteRewrite,
					Port: out.Label(), Flow: -1, Val: 0,
				})
			}
		})
	}
	return nil
}

// CamouflageDuty reports the summed camouflage pause duty cycle armed
// against p (0 for an unattacked port). The oracle subtracts it from the
// port's observed OFF fraction: manufactured pause time must not make a
// camouflaged root look like a victim to ground truth.
func (in *Injector) CamouflageDuty(p *fabric.Port) float64 { return in.camoDuty[p] }
