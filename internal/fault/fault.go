// Package fault is the deterministic fault injector: it turns a
// declarative schedule (JSON or programmatic) of link and port failures
// into cancellable scheduler events against a fabric.Network.
//
// Injectable primitives:
//
//   - link-down / link-up: both sides of a named link lose light at a
//     sim timestamp (frames mid-wire are destroyed, queues freeze behind
//     the dead egress) and come back later.
//   - flap: periodic down/up toggling of a link over a window — the
//     classic failing-optics signature that drives rerouting storms.
//   - ctrl-loss / ctrl-delay: a directed port's outgoing control frames
//     (PFC PAUSE/RESUME, CBFC FCCL) are dropped with a seeded
//     probability or delivered late — the pause-loss and stale-credit
//     hazards that break flow-control assumptions without touching data.
//   - freeze / thaw: one port's egress pipeline hangs while its ingress
//     keeps working — the seed for growing pause storms and, on cyclic
//     routes, full PFC deadlock on demand.
//
// Determinism: every action is a regular scheduler event with a fixed
// timestamp, and the only randomness (ctrl-loss coin flips) draws from a
// per-rule seeded rng.Source, so the same spec and seed replay exactly.
// An empty schedule arms nothing and installs nothing — runs without
// faults stay byte-identical to runs built before this package existed.
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/units"
)

// Event is one scheduled fault. Times are in microseconds of simulated
// time; Link names an undirected link "A-B", Port a directed egress
// "A->B" (the port owned by A on the link toward B).
type Event struct {
	// Kind is one of link-down, link-up, flap, ctrl-loss, ctrl-delay,
	// freeze, thaw.
	Kind string `json:"kind"`
	// AtUs is when the fault takes effect.
	AtUs float64 `json:"at_us"`
	// Link selects both sides of an undirected link (link-down, link-up,
	// flap; also accepted by freeze/thaw to freeze both sides).
	Link string `json:"link,omitempty"`
	// Port selects one directed egress port (ctrl-loss, ctrl-delay,
	// freeze, thaw; also accepted by link-down/up for a one-sided fault).
	Port string `json:"port,omitempty"`
	// PeriodUs is the flap period (down edge to down edge).
	PeriodUs float64 `json:"period_us,omitempty"`
	// DownUs is how long each flap iteration stays down.
	DownUs float64 `json:"down_us,omitempty"`
	// UntilUs ends a flap window or a ctrl-loss/ctrl-delay rule
	// (0 = the rule lasts for the rest of the run).
	UntilUs float64 `json:"until_us,omitempty"`
	// Prob is the ctrl-loss drop probability in [0, 1].
	Prob float64 `json:"prob,omitempty"`
	// DelayUs is the extra ctrl-delay delivery latency.
	DelayUs float64 `json:"delay_us,omitempty"`
	// Seed seeds the ctrl-loss coin flips (0 = derived from the rule's
	// position in the spec).
	Seed uint64 `json:"seed,omitempty"`
}

// Spec is a fault schedule.
type Spec struct {
	Events []Event `json:"events"`
}

// Empty reports whether the spec schedules nothing.
func (s *Spec) Empty() bool { return s == nil || len(s.Events) == 0 }

// ParseSpec decodes a JSON fault schedule.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parsing spec: %w", err)
	}
	return &s, nil
}

// LoadSpec reads and decodes a JSON fault schedule from a file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return ParseSpec(data)
}

// maxFlapToggles bounds the events one flap rule may expand into, so a
// malformed spec (tiny period, huge window) fails loudly instead of
// flooding the scheduler.
const maxFlapToggles = 100000

// Injector holds the armed fault events of one run.
type Injector struct {
	net *fabric.Network
	ids []sim.EventID

	// Armed counts the primitive actions scheduled.
	Armed int
	// first is the earliest action timestamp (units.Forever when none).
	first units.Time
}

// usToTime converts spec microseconds to simulator time.
func usToTime(us float64) units.Time {
	return units.Time(math.Round(us * float64(units.Microsecond)))
}

// Inject validates spec against the network's topology and schedules
// every action on the network's scheduler. It must be called before the
// run starts (actions in the past are a spec error). The returned
// Injector can Stop() to cancel everything still pending.
func Inject(n *fabric.Network, spec *Spec) (*Injector, error) {
	in := &Injector{net: n, first: units.Forever}
	if spec.Empty() {
		return in, nil
	}
	now := n.Sched.Now()
	for i, ev := range spec.Events {
		at := usToTime(ev.AtUs)
		if at < now {
			return nil, fmt.Errorf("fault: event %d (%s) at %v is in the past (now %v)", i, ev.Kind, at, now)
		}
		var err error
		switch ev.Kind {
		case "link-down":
			err = in.armUpDown(i, ev, at, true)
		case "link-up":
			err = in.armUpDown(i, ev, at, false)
		case "flap":
			err = in.armFlap(i, ev, at)
		case "ctrl-loss", "ctrl-delay":
			err = in.armCtrlFault(i, ev, at)
		case "freeze":
			err = in.armFreeze(i, ev, at, true)
		case "thaw":
			err = in.armFreeze(i, ev, at, false)
		default:
			err = fmt.Errorf("unknown kind %q", ev.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: event %d: %w", i, err)
		}
	}
	return in, nil
}

// Stop cancels every armed action still pending.
func (in *Injector) Stop() {
	for _, id := range in.ids {
		in.net.Sched.Cancel(id)
	}
	in.ids = in.ids[:0]
}

// FirstInjection reports the earliest armed action's timestamp, or
// units.Forever for an empty schedule. Trace prefixes strictly before it
// are guaranteed identical to the fault-free run.
func (in *Injector) FirstInjection() units.Time { return in.first }

// arm schedules one action and tracks its handle for Stop.
func (in *Injector) arm(at units.Time, fn func()) {
	id := in.net.Sched.At(at, fn)
	in.ids = append(in.ids, id)
	in.Armed++
	if at < in.first {
		in.first = at
	}
}

// resolveLink resolves "A-B" to a topology link index. Node names may
// themselves contain dashes, so every split position is tried.
func (in *Injector) resolveLink(s string) (int, error) {
	t := in.net.Topo
	for i := 1; i < len(s)-1; i++ {
		if s[i] != '-' {
			continue
		}
		a, okA := t.Lookup(s[:i])
		b, okB := t.Lookup(s[i+1:])
		if okA && okB {
			if li := t.LinkBetween(a, b); li >= 0 {
				return li, nil
			}
			return -1, fmt.Errorf("no link between %q and %q", s[:i], s[i+1:])
		}
	}
	return -1, fmt.Errorf("cannot resolve link %q", s)
}

// resolvePort resolves "A->B" to the egress port of A toward B.
func (in *Injector) resolvePort(s string) (*fabric.Port, error) {
	t := in.net.Topo
	for i := 1; i+2 < len(s); i++ {
		if s[i] != '-' || s[i+1] != '>' {
			continue
		}
		a, okA := t.Lookup(s[:i])
		b, okB := t.Lookup(s[i+2:])
		if okA && okB {
			if t.LinkBetween(a, b) < 0 {
				return nil, fmt.Errorf("no link between %q and %q", s[:i], s[i+2:])
			}
			return in.net.PortToward(a, b), nil
		}
	}
	return nil, fmt.Errorf("cannot resolve port %q", s)
}

// sides resolves an event's target to the affected ports: both sides of
// Link, or the single directed Port.
func (in *Injector) sides(ev Event) ([]*fabric.Port, error) {
	switch {
	case ev.Link != "" && ev.Port != "":
		return nil, fmt.Errorf("give link or port, not both")
	case ev.Link != "":
		li, err := in.resolveLink(ev.Link)
		if err != nil {
			return nil, err
		}
		return []*fabric.Port{in.net.PortOn(in.net.Topo.Links[li].A, li), in.net.PortOn(in.net.Topo.Links[li].B, li)}, nil
	case ev.Port != "":
		p, err := in.resolvePort(ev.Port)
		if err != nil {
			return nil, err
		}
		return []*fabric.Port{p}, nil
	default:
		return nil, fmt.Errorf("needs a link or port target")
	}
}

func (in *Injector) armUpDown(_ int, ev Event, at units.Time, down bool) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetDown(down)
		}
	})
	return nil
}

func (in *Injector) armFreeze(_ int, ev Event, at units.Time, frozen bool) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetFrozen(frozen)
		}
	})
	return nil
}

func (in *Injector) armFlap(_ int, ev Event, at units.Time) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	period := usToTime(ev.PeriodUs)
	downFor := usToTime(ev.DownUs)
	until := usToTime(ev.UntilUs)
	switch {
	case period <= 0:
		return fmt.Errorf("flap needs period_us > 0")
	case downFor <= 0 || downFor >= period:
		return fmt.Errorf("flap needs 0 < down_us < period_us")
	case until <= at:
		return fmt.Errorf("flap needs until_us past at_us")
	case (int64(until-at)/int64(period)+1)*2 > maxFlapToggles:
		return fmt.Errorf("flap expands to more than %d toggles", maxFlapToggles)
	}
	for t := at; t < until; t += period {
		down, up := t, t+downFor
		if up > until {
			up = until
		}
		in.arm(down, func() {
			for _, p := range ports {
				p.SetDown(true)
			}
		})
		in.arm(up, func() {
			for _, p := range ports {
				p.SetDown(false)
			}
		})
	}
	return nil
}

func (in *Injector) armCtrlFault(i int, ev Event, at units.Time) error {
	ports, err := in.sides(ev)
	if err != nil {
		return err
	}
	var hook func(fabric.CtrlFrame) (bool, units.Time)
	switch ev.Kind {
	case "ctrl-loss":
		if ev.Prob <= 0 || ev.Prob > 1 {
			return fmt.Errorf("ctrl-loss needs prob in (0, 1]")
		}
		seed := ev.Seed
		if seed == 0 {
			// Derive a stable per-rule seed so two unseeded rules do not
			// share a coin stream.
			seed = 0x9e3779b97f4a7c15 * uint64(i+1)
		}
		src := rng.New(seed)
		prob := ev.Prob
		hook = func(fabric.CtrlFrame) (bool, units.Time) { return src.Float64() < prob, 0 }
	case "ctrl-delay":
		if ev.DelayUs <= 0 {
			return fmt.Errorf("ctrl-delay needs delay_us > 0")
		}
		delay := usToTime(ev.DelayUs)
		hook = func(fabric.CtrlFrame) (bool, units.Time) { return false, delay }
	}
	in.arm(at, func() {
		for _, p := range ports {
			p.SetCtrlFault(hook)
		}
	})
	if ev.UntilUs > 0 {
		until := usToTime(ev.UntilUs)
		if until <= at {
			return fmt.Errorf("%s needs until_us past at_us (or 0 for open-ended)", ev.Kind)
		}
		in.arm(until, func() {
			for _, p := range ports {
				p.SetCtrlFault(nil)
			}
		})
	}
	return nil
}
