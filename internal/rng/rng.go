// Package rng provides the simulator's deterministic random source.
//
// It is a splitmix64-seeded xoshiro256** generator; every stochastic
// component (workload generators, ECMP hashing salt, RED marking, jitter)
// draws from an explicitly seeded Source so that a run is reproducible
// from its seed alone.
package rng

import "math"

// Source is a deterministic pseudo-random generator. Not safe for
// concurrent use; the simulator is single-threaded.
type Source struct {
	s [4]uint64
}

// splitmix64 expands a 64-bit seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source {
	r := &Source{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent child source; use it to give each component
// its own stream so adding draws in one place does not perturb another.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// It is used for Poisson inter-arrival times.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n elements using swap (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
