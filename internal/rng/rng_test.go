package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformMean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	const want = 250.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(want)
		if v < 0 {
			t.Fatal("Exp returned negative value")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("exponential mean = %v, want ~%v", mean, want)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestInt63nRange(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
