package packet

import (
	"testing"
	"testing/quick"
)

// Table 1 semantics: UE can only be marked when the code point is not CE;
// CE is marked whenever a congestion port is traversed.
func TestMarkingRules(t *testing.T) {
	cases := []struct {
		name string
		in   CodePoint
		op   func(CodePoint) CodePoint
		want CodePoint
	}{
		{"capable+UE", Capable, CodePoint.MarkUE, UE},
		{"UE+UE", UE, CodePoint.MarkUE, UE},
		{"CE+UE keeps CE", CE, CodePoint.MarkUE, CE},
		{"capable+CE", Capable, CodePoint.MarkCE, CE},
		{"UE+CE upgrades", UE, CodePoint.MarkCE, CE},
		{"CE+CE", CE, CodePoint.MarkCE, CE},
		{"non-capable never marked UE", NotCapable, CodePoint.MarkUE, NotCapable},
		{"non-capable never marked CE", NotCapable, CodePoint.MarkCE, NotCapable},
	}
	for _, c := range cases {
		if got := c.op(c.in); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: the paper's path rule — "if a packet first passes through an
// undetermined port, then a congestion port, this packet should be
// considered as experiencing congestion". Any sequence of marks containing
// at least one CE must end CE; a sequence with only UE marks ends UE.
func TestPathMarkingProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := Capable
		sawCE := false
		for _, isCE := range ops {
			if isCE {
				c = c.MarkCE()
				sawCE = true
			} else {
				c = c.MarkUE()
			}
		}
		switch {
		case sawCE:
			return c == CE
		case len(ops) > 0:
			return c == UE
		default:
			return c == Capable
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodePointStrings(t *testing.T) {
	want := map[CodePoint]string{
		NotCapable: "00(non-TCD)",
		Capable:    "01(capable)",
		UE:         "10(UE)",
		CE:         "11(CE)",
	}
	for cp, s := range want {
		if cp.String() != s {
			t.Errorf("%d.String() = %q, want %q", cp, cp.String(), s)
		}
	}
	if CodePoint(9).String() != "CodePoint(9)" {
		t.Errorf("unknown code point string = %q", CodePoint(9).String())
	}
}

func TestKindStrings(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" || CNP.String() != "cnp" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Flow: 7, Kind: Data, Seq: 3, Size: 1048, Code: UE}
	got := p.String()
	want := "data flow=7 seq=3 1.048KB 10(UE)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestArenaRecyclesAndZeroes(t *testing.T) {
	var arena Arena
	a := arena.Get()
	a.Flow, a.Seq, a.Code, a.EchoCE, a.Hops = 7, 42, CE, true, 3
	arena.Put(a)
	if arena.Len() != 1 {
		t.Fatalf("Len() = %d after Put, want 1", arena.Len())
	}
	b := arena.Get()
	if b != a {
		t.Error("Get did not reuse the recycled slab slot")
	}
	if b.Flow != 0 || b.Seq != 0 || b.Code != NotCapable || b.EchoCE || b.Hops != 0 {
		t.Errorf("recycled packet not zeroed: %+v", *b)
	}
	if arena.Len() != 0 {
		t.Errorf("Len() = %d after Get, want 0", arena.Len())
	}
	if arena.Recycled != 1 {
		t.Errorf("Recycled = %d, want 1", arena.Recycled)
	}
}

func TestArenaGetAllocatesWhenEmpty(t *testing.T) {
	var arena Arena
	a, b := arena.Get(), arena.Get()
	if a == nil || b == nil || a == b {
		t.Fatalf("empty arena must hand out distinct packets")
	}
	arena.Put(nil) // nil is a no-op, not a panic
	if arena.Len() != 0 {
		t.Errorf("Len() = %d after Put(nil), want 0", arena.Len())
	}
}

// TestArenaHandlesAndChunks exercises the slab geometry: pointers are
// stable across chunk growth, handles round-trip through At, and the
// arena grows one chunk per 2^ChunkBits bump allocations.
func TestArenaHandlesAndChunks(t *testing.T) {
	var arena Arena
	const n = 3*(1<<ChunkBits) + 17
	pkts := make([]*Packet, n)
	for i := range pkts {
		pkts[i] = arena.Get()
		pkts[i].Seq = int32(i)
	}
	if want := n>>ChunkBits + 1; arena.Chunks() != want {
		t.Errorf("Chunks() = %d after %d gets, want %d", arena.Chunks(), n, want)
	}
	for i, p := range pkts {
		if p.Seq != int32(i) {
			t.Fatalf("packet %d overwritten (Seq=%d): chunk growth moved live packets", i, p.Seq)
		}
		if got := arena.At(arena.Handle(p)); got != p {
			t.Fatalf("At(Handle(pkts[%d])) = %p, want %p", i, got, p)
		}
	}
	// Recycling reuses slots LIFO without growing the arena.
	chunks := arena.Chunks()
	for _, p := range pkts {
		arena.Put(p)
	}
	for range pkts {
		arena.Get()
	}
	if arena.Chunks() != chunks {
		t.Errorf("Chunks() grew %d -> %d across a full recycle", chunks, arena.Chunks())
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	var arena Arena
	arena.Put(arena.Get())
	if allocs := testing.AllocsPerRun(1000, func() {
		arena.Put(arena.Get())
	}); allocs > 0 {
		t.Errorf("steady-state Get/Put allocates %.1f/op, want 0", allocs)
	}
}
