// Package packet defines the unit of data moved by the fabric: packets,
// their kinds (data, acknowledgement, congestion notification), and the
// TCD congestion code points from Table 1 of the paper.
package packet

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/units"
)

// CodePoint is the 2-bit ternary congestion notification field carried by
// every TCD-capable packet (Table 1 of the paper). It generalizes the ECN
// field: switches upgrade the code point as the packet traverses ports in
// undetermined or congestion states.
type CodePoint uint8

const (
	// NotCapable marks transports that do not understand TCD (code 00).
	NotCapable CodePoint = 0
	// Capable marks a TCD-capable transport with no event yet (code 01).
	Capable CodePoint = 1
	// UE — Undetermined Encountered (code 10): the packet passed through
	// at least one port in the undetermined state and no congestion port.
	UE CodePoint = 2
	// CE — Congestion Encountered (code 11): the packet passed through a
	// port in the congestion state. CE is sticky: UE never downgrades it.
	CE CodePoint = 3
)

// String renders the code point as in Table 1.
func (c CodePoint) String() string {
	switch c {
	case NotCapable:
		return "00(non-TCD)"
	case Capable:
		return "01(capable)"
	case UE:
		return "10(UE)"
	case CE:
		return "11(CE)"
	}
	return fmt.Sprintf("CodePoint(%d)", uint8(c))
}

// MarkUE applies the paper's rule "UE can only be marked when the current
// code point is not CE" and returns the updated code point.
func (c CodePoint) MarkUE() CodePoint {
	if c == CE || c == NotCapable {
		return c
	}
	return UE
}

// MarkCE applies the rule "switches mark CE whenever the port is in a
// congestion state" and returns the updated code point.
func (c CodePoint) MarkCE() CodePoint {
	if c == NotCapable {
		return c
	}
	return CE
}

// Kind distinguishes the packet populations in the simulator. Hop-by-hop
// flow-control frames (PAUSE/RESUME/FCCL) are not packets: they travel on
// the fabric's out-of-band control channel.
type Kind uint8

const (
	// Data carries flow payload.
	Data Kind = iota
	// Ack is a receiver acknowledgement (used by TIMELY for RTT samples
	// and by all transports to complete messages).
	Ack
	// CNP is a congestion notification packet from the notification point
	// back to the reaction point (DCQCN CNP / InfiniBand BECN carrier).
	CNP
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case CNP:
		return "cnp"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// FlowID identifies a flow (a message in flight between two hosts).
type FlowID int32

// NodeID identifies a host or switch in the topology.
type NodeID int32

// Packet is a frame in flight. Packets are allocated once at the sender
// and mutated in place as they traverse the fabric (code point upgrades,
// input-port bookkeeping), mirroring how a real frame carries its header
// fields through the network.
type Packet struct {
	// Flow is the owning flow; CNPs and ACKs carry the flow they concern.
	Flow FlowID
	// Src and Dst are the endpoints.
	Src, Dst NodeID
	// Kind is the packet population.
	Kind Kind
	// Size is the wire size in bytes, headers included.
	Size units.ByteSize
	// Payload is the number of flow-payload bytes (Size minus headers).
	Payload units.ByteSize
	// Seq is the zero-based index of this packet within its flow.
	Seq int32
	// Last marks the final data packet of the flow's message.
	Last bool
	// Priority is the PFC priority / InfiniBand virtual lane.
	Priority uint8
	// Code is the TCD/ECN congestion code point, updated by switches.
	Code CodePoint
	// EchoUE and EchoCE are set on CNP/ACK packets to carry the receiver's
	// observation back to the sender (the paper's ternary notification).
	EchoUE, EchoCE bool
	// SentAt is the timestamp the sender's NIC released the packet; ACKs
	// echo it back so TIMELY can compute RTTs without a clock exchange.
	SentAt units.Time
	// InPort tracks, inside a switch, which input port the packet arrived
	// on so ingress accounting can be released on departure. It is
	// meaningless outside the switch that set it; hosts inject with -1.
	InPort int32
	// Hops counts switch traversals (routing-loop guard).
	Hops int8
	// h is the packet's arena handle (its slab index), stamped by
	// Arena.Get and preserved across the zeroing reset so Put can return
	// the packet to the free list without a pointer-to-index lookup.
	h Handle
}

// String renders a compact description for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d seq=%d %v %s", p.Kind, p.Flow, p.Seq, p.Size, p.Code)
}

// HeaderBytes is the per-packet header overhead (Ethernet+IP+UDP+RoCE, or
// the IB transport headers — both are ~48 B at the fidelity this simulator
// needs).
const HeaderBytes units.ByteSize = 48

// AckBytes is the wire size of an acknowledgement.
const AckBytes units.ByteSize = 64

// Handle is the index-based identity of an arena packet: chunk number in
// the high bits, offset within the chunk in the low ChunkBits.
type Handle uint32

// Arena geometry: packets are allocated in fixed slabs of 2^ChunkBits.
// 512 × ~72 B ≈ 37 KB per slab — big enough that a fig3-scale run lives
// in a handful of slabs, small enough that tiny unit-test networks don't
// balloon.
const (
	ChunkBits = 9
	chunkSize = 1 << ChunkBits
	chunkMask = chunkSize - 1
)

// Arena is a chunked slab allocator for one simulation run's packets.
// Packet is deliberately pointer-free, so a slab is opaque to the garbage
// collector: the collector neither scans slab interiors nor tracks one
// object per packet, and pointers into a slab never go stale because
// chunks, once allocated, are never moved or resized. Packets die at the
// sinks (every packet is eventually consumed by a host), so within a
// single-threaded run the fabric recycles indices through a free list
// instead of allocating ~one object per packet per run. An Arena must not
// be shared between concurrently running simulations; parallel sweeps
// give each run its own network and therefore its own arena.
type Arena struct {
	chunks [][]Packet
	free   []Handle
	// used is the bump-allocation high-water mark: handles below it have
	// been handed out at least once.
	used uint32
	// Recycled counts Put calls, for instrumentation.
	Recycled uint64
}

// Get returns a zeroed packet, reusing a free slab slot when one is
// available and bump-allocating (growing the arena by one chunk at a
// time) otherwise. The returned pointer is stable for the packet's
// lifetime but must not be used after Put.
func (a *Arena) Get() *Packet {
	var h Handle
	if n := len(a.free); n > 0 {
		h = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		h = Handle(a.used)
		a.used++
		if int(h>>ChunkBits) == len(a.chunks) {
			a.chunks = append(a.chunks, make([]Packet, chunkSize))
		}
	}
	pkt := &a.chunks[h>>ChunkBits][h&chunkMask]
	*pkt = Packet{h: h}
	return pkt
}

// Put recycles a dead arena packet by pushing its handle back on the
// free list. The caller must not touch pkt afterwards: the next Get may
// hand the same slot to an unrelated flow. Only packets obtained from
// this arena's Get may be Put.
func (a *Arena) Put(pkt *Packet) {
	if pkt == nil {
		return
	}
	a.free = append(a.free, pkt.h)
	a.Recycled++
}

// At resolves a handle back to its packet slot.
func (a *Arena) At(h Handle) *Packet {
	return &a.chunks[h>>ChunkBits][h&chunkMask]
}

// Handle reports a packet's arena handle.
func (a *Arena) Handle(pkt *Packet) Handle { return pkt.h }

// Len reports the number of packet slots currently parked on the free list.
func (a *Arena) Len() int { return len(a.free) }

// Chunks reports how many slabs the arena has allocated.
func (a *Arena) Chunks() int { return len(a.chunks) }

// CNPBytes is the wire size of a congestion notification packet.
const CNPBytes units.ByteSize = 64
