// Package host models the endpoints: NIC packet scheduling with per-flow
// rate pacing, message framing, and the receiver side (FCT recording,
// ACK/CNP generation — the DCQCN notification point and the InfiniBand
// destination channel adapter).
//
// A host's NIC is a pull source for its fabric port: packets are created
// when the port is ready to serialize them, so paced traffic does not
// accumulate in a standing NIC queue. During a PAUSE (or credit
// starvation) pacing debt builds up; on release the NIC drains the debt at
// line rate — producing the ON-OFF pattern the paper observes at port P0.
package host

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// SentObserver is an optional RateController extension: controllers that
// maintain a transmitted-byte counter (DCQCN's rate-increase byte stage)
// receive a callback for every packet the NIC serializes.
type SentObserver interface {
	OnSent(now units.Time, wireBytes units.ByteSize)
}

// RateController is the per-flow congestion-control state machine at the
// sender (the DCQCN reaction point, the TIMELY engine, or the IB CC
// channel adapter). Implementations live in package cc.
type RateController interface {
	// CurrentRate reports the rate to pace the next packet at.
	CurrentRate() units.Rate
	// OnNotify handles a congestion notification packet for this flow;
	// ce and ue echo the TCD code point observed at the receiver.
	OnNotify(now units.Time, ce, ue bool)
	// OnAck handles an acknowledgement carrying a completed RTT sample
	// and the echoed marks of the acknowledged data packet.
	OnAck(now units.Time, rtt units.Time, ce, ue bool)
}

// Config parameterizes all endpoints of a network.
type Config struct {
	// MTU is the data payload bytes per packet (1000 B in the paper).
	MTU units.ByteSize
	// AckEveryPacket makes receivers acknowledge every data packet
	// (needed by TIMELY for RTT samples). ACKs echo the data packet's
	// code point.
	AckEveryPacket bool
	// CNPWindow rate-limits congestion notification packets: at most one
	// CE-echo CNP (and one UE-echo CNP) per flow per window. DCQCN uses
	// 50 us.
	CNPWindow units.Time
	// PaceBurst bounds how much pacing debt a flow may carry through a
	// pause; the NIC never bursts more than this beyond the paced
	// schedule. Two MTUs models a hardware rate limiter's bucket.
	PaceBurst units.ByteSize
	// Capable is the TCD code point new data packets carry. Set to
	// packet.Capable (default) for TCD-aware transports.
	NotCapable bool
}

// DefaultConfig returns the paper's endpoint parameters.
func DefaultConfig() Config {
	return Config{
		MTU:       1000,
		CNPWindow: 50 * units.Microsecond,
		PaceBurst: 2 * 1000,
	}
}

// Flow is one message in flight between two hosts, with its measured
// completion statistics.
type Flow struct {
	ID    packet.FlowID
	Src   packet.NodeID
	Dst   packet.NodeID
	Size  units.ByteSize
	Start units.Time
	Ctrl  RateController
	// Priority is the PFC priority / IB virtual lane the flow's packets
	// (and their ACKs/CNPs) travel on.
	Priority uint8

	Done   bool
	FCT    units.Time // completion latency (valid when Done)
	mgr    *Manager
	sender *senderFlow
}

// The receiver-side per-packet observations live in struct-of-arrays
// slices on the Manager (indexed by the dense FlowID), not on Flow: the
// sink hot path updates four counters per delivered packet, and the
// conservation-invariant scan sums them across every flow — both walk
// contiguous arrays instead of chasing a pointer per flow.

// BytesRxed reports the payload volume delivered to the receiver.
func (f *Flow) BytesRxed() units.ByteSize { return f.mgr.rxBytes[f.ID] }

// PktsRxed reports the number of data packets delivered.
func (f *Flow) PktsRxed() int { return int(f.mgr.rxPkts[f.ID]) }

// CEPackets reports the data packets received carrying CE.
func (f *Flow) CEPackets() int { return int(f.mgr.cePkts[f.ID]) }

// UEPackets reports the data packets received carrying UE.
func (f *Flow) UEPackets() int { return int(f.mgr.uePkts[f.ID]) }

// FirstByteAt reports when the receiver saw the flow's first packet
// (zero if nothing arrived yet) — the time-to-first-byte metric.
func (f *Flow) FirstByteAt() units.Time { return f.mgr.firstRx[f.ID] }

// BytesSent reports the payload volume the sender's NIC has serialized
// onto the wire so far (0 before the flow activates). Every byte it
// counts is in the network or beyond: delivered, queued, in flight, or
// destroyed by an injected fault — the injected side of the
// conservation invariant.
func (f *Flow) BytesSent() units.ByteSize {
	if f.sender == nil {
		return 0
	}
	return f.Size - f.sender.remaining
}

// Slowdown reports FCT relative to the given ideal baseline.
func (f *Flow) Slowdown(baseline units.Time) float64 {
	if !f.Done || baseline <= 0 {
		return 0
	}
	return float64(f.FCT) / float64(baseline)
}

// senderFlow is the NIC-side view of a flow.
type senderFlow struct {
	flow      *Flow
	remaining units.ByteSize
	seq       int32
	nextAt    units.Time
}

// Endpoint is one host's NIC: sender flows plus a control-packet queue.
type Endpoint struct {
	mgr  *Manager
	id   packet.NodeID
	port *fabric.Port

	active []*senderFlow
	ctrlQ  []*packet.Packet

	// cached head packet so repeated Head calls return one identity.
	headPkt  *packet.Packet
	headFlow *senderFlow

	// activateFn is the preallocated flow-activation event callback:
	// AddFlow schedules it with the flow as the event argument, so
	// registering many flows (fat-tree workloads) mints no closures.
	activateFn func(any)
}

// Manager owns all endpoints and flows of one simulation.
type Manager struct {
	net *fabric.Network
	cfg Config

	// endpoints is indexed by NodeID (dense by construction in topo);
	// switch entries are nil. A slice lookup on the per-packet sink path
	// beats a map probe.
	endpoints []*Endpoint
	flows     []*Flow
	nextID    packet.FlowID

	// Struct-of-arrays receiver-side flow state, indexed by FlowID (dense
	// by construction: AddFlow assigns sequential IDs).
	rxBytes   []units.ByteSize
	rxPkts    []int32
	cePkts    []int32
	uePkts    []int32
	firstRx   []units.Time
	lastCNPce []units.Time
	lastCNPue []units.Time

	// OnDone, if set, is called when a flow's last data byte arrives.
	OnDone func(*Flow)
	// Rec, if non-nil, receives CNP-emission and flow-completion events,
	// and is handed to rate controllers implementing obs.FlowTracer.
	// Set it before the first AddFlow.
	Rec obs.Recorder
}

// Install creates an endpoint on every host and wires the network sink.
func Install(n *fabric.Network, cfg Config) *Manager {
	if cfg.MTU <= 0 {
		cfg.MTU = 1000
	}
	m := &Manager{net: n, cfg: cfg, endpoints: make([]*Endpoint, len(n.Topo.Nodes))}
	for _, nd := range n.Topo.Nodes {
		if nd.Kind != topo.Host {
			continue
		}
		ep := &Endpoint{mgr: m, id: nd.ID, port: n.HostPort(nd.ID)}
		ep.activateFn = func(arg any) { ep.activate(arg.(*Flow)) }
		ep.port.AttachSource(ep)
		m.endpoints[nd.ID] = ep
	}
	n.Sink = m.sink
	return m
}

// Config returns the endpoint configuration.
func (m *Manager) Config() Config { return m.cfg }

// Flows returns all flows registered so far.
func (m *Manager) Flows() []*Flow { return m.flows }

// Endpoint returns the endpoint of a host (nil for switches and unknown
// nodes).
func (m *Manager) Endpoint(h packet.NodeID) *Endpoint {
	if int(h) >= len(m.endpoints) || h < 0 {
		return nil
	}
	return m.endpoints[h]
}

// SetPriority assigns the flow's PFC priority / virtual lane. It must be
// called before the flow starts sending.
func (m *Manager) SetPriority(f *Flow, prio uint8) { f.Priority = prio }

// AddFlow registers a flow of size bytes from src to dst starting at
// start, paced by ctrl. It returns the Flow for later inspection.
func (m *Manager) AddFlow(src, dst packet.NodeID, size units.ByteSize, start units.Time, ctrl RateController) *Flow {
	ep := m.Endpoint(src)
	if ep == nil {
		panic(fmt.Sprintf("host: AddFlow from non-host %d", src))
	}
	if m.Endpoint(dst) == nil {
		panic(fmt.Sprintf("host: AddFlow to non-host %d", dst))
	}
	if size <= 0 {
		panic("host: AddFlow with non-positive size")
	}
	f := &Flow{ID: m.nextID, Src: src, Dst: dst, Size: size, Start: start, Ctrl: ctrl, mgr: m}
	m.nextID++
	m.flows = append(m.flows, f)
	m.rxBytes = append(m.rxBytes, 0)
	m.rxPkts = append(m.rxPkts, 0)
	m.cePkts = append(m.cePkts, 0)
	m.uePkts = append(m.uePkts, 0)
	m.firstRx = append(m.firstRx, 0)
	m.lastCNPce = append(m.lastCNPce, 0)
	m.lastCNPue = append(m.lastCNPue, 0)
	if ft, ok := ctrl.(obs.FlowTracer); ok && m.Rec != nil {
		ft.SetTrace(m.Rec, int64(f.ID))
	}
	m.net.Sched.AtArg(start, ep.activateFn, f)
	return f
}

func (ep *Endpoint) activate(f *Flow) {
	sf := &senderFlow{flow: f, remaining: f.Size, nextAt: ep.mgr.net.Sched.Now()}
	f.sender = sf
	ep.active = append(ep.active, sf)
	ep.port.Kick()
}

// Head implements fabric.Source.
func (ep *Endpoint) Head(now units.Time) (*packet.Packet, units.Time) {
	// Control packets (ACKs, CNPs) go first; they are tiny and latency
	// sensitive.
	if len(ep.ctrlQ) > 0 {
		return ep.ctrlQ[0], now
	}
	var best *senderFlow
	for _, sf := range ep.active {
		if best == nil || sf.nextAt < best.nextAt ||
			(sf.nextAt == best.nextAt && sf.flow.ID < best.flow.ID) {
			best = sf
		}
	}
	if best == nil {
		ep.dropHead()
		return nil, units.Forever
	}
	if best.nextAt > now {
		ep.dropHead()
		return nil, best.nextAt
	}
	if ep.headFlow != best || ep.headPkt == nil {
		ep.dropHead()
		ep.headPkt = ep.buildData(best)
		ep.headFlow = best
	}
	return ep.headPkt, best.nextAt
}

// dropHead discards the cached head packet, recycling it — it was never
// transmitted, so nothing else references it.
func (ep *Endpoint) dropHead() {
	if ep.headPkt != nil {
		ep.mgr.net.FreePacket(ep.headPkt)
	}
	ep.headPkt, ep.headFlow = nil, nil
}

func (ep *Endpoint) buildData(sf *senderFlow) *packet.Packet {
	payload := ep.mgr.cfg.MTU
	if sf.remaining < payload {
		payload = sf.remaining
	}
	code := packet.Capable
	if ep.mgr.cfg.NotCapable {
		code = packet.NotCapable
	}
	pkt := ep.mgr.net.NewPacket()
	pkt.Flow = sf.flow.ID
	pkt.Src = ep.id
	pkt.Dst = sf.flow.Dst
	pkt.Kind = packet.Data
	pkt.Size = payload + packet.HeaderBytes
	pkt.Payload = payload
	pkt.Seq = sf.seq
	pkt.Last = payload == sf.remaining
	pkt.Priority = sf.flow.Priority
	pkt.Code = code
	pkt.InPort = -1
	return pkt
}

// Advance implements fabric.Source.
func (ep *Endpoint) Advance() {
	now := ep.mgr.net.Sched.Now()
	if len(ep.ctrlQ) > 0 {
		ep.ctrlQ = ep.ctrlQ[1:]
		return
	}
	sf := ep.headFlow
	if sf == nil || ep.headPkt == nil {
		panic("host: Advance without Head")
	}
	pkt := ep.headPkt
	pkt.SentAt = now
	ep.headPkt, ep.headFlow = nil, nil

	sf.remaining -= pkt.Payload
	sf.seq++
	if obs, ok := sf.flow.Ctrl.(SentObserver); ok {
		obs.OnSent(now, pkt.Size)
	}
	// Token-bucket pacing with bounded debt carry-over.
	rate := sf.flow.Ctrl.CurrentRate()
	burst := units.TxTime(ep.mgr.cfg.PaceBurst, ep.port.Rate)
	floor := now - burst
	if sf.nextAt < floor {
		sf.nextAt = floor
	}
	sf.nextAt += units.TxTime(pkt.Size, rate)
	if sf.remaining <= 0 {
		ep.removeActive(sf)
	}
}

func (ep *Endpoint) removeActive(sf *senderFlow) {
	for i, v := range ep.active {
		if v == sf {
			ep.active = append(ep.active[:i], ep.active[i+1:]...)
			return
		}
	}
}

// ActiveFlows reports the number of flows with unsent data.
func (ep *Endpoint) ActiveFlows() int { return len(ep.active) }

// pushCtrl queues a control packet and wakes the NIC.
func (ep *Endpoint) pushCtrl(p *packet.Packet) {
	ep.ctrlQ = append(ep.ctrlQ, p)
	// A newly queued control packet preempts a cached data head.
	ep.dropHead()
	ep.port.Kick()
}

// sink dispatches packets arriving at hosts.
func (m *Manager) sink(h packet.NodeID, pkt *packet.Packet) {
	ep := m.endpoints[h]
	now := m.net.Sched.Now()
	f := m.flows[pkt.Flow]
	switch pkt.Kind {
	case packet.Data:
		m.onData(ep, f, pkt, now)
	case packet.Ack:
		f.Ctrl.OnAck(now, now-pkt.SentAt, pkt.EchoCE, pkt.EchoUE)
	case packet.CNP:
		f.Ctrl.OnNotify(now, pkt.EchoCE, pkt.EchoUE)
	}
}

func (m *Manager) onData(ep *Endpoint, f *Flow, pkt *packet.Packet, now units.Time) {
	id := f.ID
	if m.rxPkts[id] == 0 {
		m.firstRx[id] = now
	}
	m.rxBytes[id] += pkt.Payload
	m.rxPkts[id]++
	ce := pkt.Code == packet.CE
	ue := pkt.Code == packet.UE
	if ce {
		m.cePkts[id]++
	}
	if ue {
		m.uePkts[id]++
	}
	if pkt.Last && !f.Done {
		f.Done = true
		f.FCT = now - f.Start
		if m.Rec != nil {
			m.Rec.Record(obs.Event{At: now, Kind: obs.KindFlowDone, Prio: f.Priority, Flow: int64(f.ID), Val: int64(f.FCT)})
		}
		if m.OnDone != nil {
			m.OnDone(f)
		}
	}
	if m.cfg.AckEveryPacket {
		ack := m.net.NewPacket()
		ack.Flow = f.ID
		ack.Src = ep.id
		ack.Dst = f.Src
		ack.Kind = packet.Ack
		ack.Size = packet.AckBytes
		ack.Priority = f.Priority
		ack.Code = packet.Capable
		ack.EchoCE = ce
		ack.EchoUE = ue
		ack.SentAt = pkt.SentAt // echo for RTT measurement
		ack.InPort = -1
		ep.pushCtrl(ack)
	}
	// Congestion notification point: echo CE (and UE, for TCD-aware
	// transports) back to the reaction point, rate-limited per flow.
	if ce && (m.lastCNPce[id] == 0 || now-m.lastCNPce[id] >= m.cfg.CNPWindow) {
		m.lastCNPce[id] = now
		ep.pushCtrl(m.cnp(ep.id, f, true, false))
		m.recordCNP(now, f, 1)
	}
	if ue && (m.lastCNPue[id] == 0 || now-m.lastCNPue[id] >= m.cfg.CNPWindow) {
		m.lastCNPue[id] = now
		ep.pushCtrl(m.cnp(ep.id, f, false, true))
		m.recordCNP(now, f, 2)
	}
}

// TotalRxed sums delivered payload across every flow in one sweep over
// the receiver-side byte ledger — the "delivered" term of the
// conservation invariant.
func (m *Manager) TotalRxed() units.ByteSize {
	var t units.ByteSize
	for _, b := range m.rxBytes {
		t += b
	}
	return t
}

// AdjustRx moves a flow's delivered-byte ledger by delta without a
// packet. It exists solely as a test hook for the conservation checker's
// self-test (forging a leak); simulation code must never call it.
func (m *Manager) AdjustRx(f *Flow, delta units.ByteSize) { m.rxBytes[f.ID] += delta }

// StandaloneFlow returns a Flow detached from any simulation with forged
// receiver counters — only for unit tests of metric helpers that take a
// *Flow. Flows in a simulation always come from AddFlow.
func StandaloneFlow(pkts, ce, ue int) *Flow {
	m := &Manager{
		rxBytes: []units.ByteSize{0},
		rxPkts:  []int32{int32(pkts)},
		cePkts:  []int32{int32(ce)},
		uePkts:  []int32{int32(ue)},
		firstRx: []units.Time{0},
	}
	return &Flow{mgr: m}
}

// recordCNP emits a CNP event (echo: 1 = CE, 2 = UE).
func (m *Manager) recordCNP(now units.Time, f *Flow, echo int64) {
	if m.Rec != nil {
		m.Rec.Record(obs.Event{At: now, Kind: obs.KindCNP, Prio: f.Priority, Flow: int64(f.ID), Val: echo})
	}
}

func (m *Manager) cnp(from packet.NodeID, f *Flow, ce, ue bool) *packet.Packet {
	pkt := m.net.NewPacket()
	pkt.Flow = f.ID
	pkt.Src = from
	pkt.Dst = f.Src
	pkt.Kind = packet.CNP
	pkt.Size = packet.CNPBytes
	pkt.Priority = f.Priority
	pkt.Code = packet.Capable
	pkt.EchoCE = ce
	pkt.EchoUE = ue
	pkt.InPort = -1
	return pkt
}

// IdealFCT reports the store-and-forward baseline completion time for a
// flow of size bytes over a path of hops links at the given rate and
// per-link propagation delay: full-size serialization at each hop for the
// pipeline head plus the message serialization at the bottleneck.
func IdealFCT(size units.ByteSize, mtu units.ByteSize, rate units.Rate, hops int, delay units.Time) units.Time {
	if hops < 1 {
		hops = 1
	}
	npkt := (size + mtu - 1) / mtu
	lastPkt := size - (npkt-1)*mtu
	wire := size + units.ByteSize(npkt)*packet.HeaderBytes
	t := units.TxTime(wire, rate) // message serialization at the first hop
	// Remaining hops add pipeline latency of the last packet plus
	// propagation on every link.
	t += units.Time(hops-1) * units.TxTime(lastPkt+packet.HeaderBytes, rate)
	t += units.Time(hops) * delay
	return t
}

// FixedRate is a RateController that ignores all feedback and paces at a
// constant rate — used for the paper's constant-rate flows (F0, F2) and
// for sub-BDP bursts that end-to-end congestion control cannot regulate.
type FixedRate units.Rate

// CurrentRate implements RateController.
func (r FixedRate) CurrentRate() units.Rate { return units.Rate(r) }

// OnNotify implements RateController.
func (FixedRate) OnNotify(units.Time, bool, bool) {}

// OnAck implements RateController.
func (FixedRate) OnAck(units.Time, units.Time, bool, bool) {}
