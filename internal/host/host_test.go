package host_test

import (
	"testing"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// rig is a one-switch star network with host endpoints installed.
type rig struct {
	sched *sim.Scheduler
	net   *fabric.Network
	mgr   *host.Manager
	g     *topo.Topology
	sw    packet.NodeID
}

func newRig(t *testing.T, cfg host.Config, hosts int, rate units.Rate, delay units.Time) *rig {
	t.Helper()
	g := topo.New()
	sw := g.AddSwitch("sw")
	for i := 0; i < hosts; i++ {
		h := g.AddHost(string(rune('a' + i)))
		g.Connect(h, sw, rate, delay)
	}
	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *fabric.Port {
		return n.PortToward(at, pkt.Dst)
	}
	m := host.Install(n, cfg)
	return &rig{sched: s, net: n, mgr: m, g: g, sw: sw}
}

func (r *rig) id(name string) packet.NodeID { return r.g.ID(name) }

func TestSingleFlowCompletesAtLineRate(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 100*units.KB, 0, host.FixedRate(40*units.Gbps))
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.BytesRxed() != 100*units.KB {
		t.Errorf("received %v, want 100KB", f.BytesRxed())
	}
	if f.PktsRxed() != 100 {
		t.Errorf("received %d packets, want 100", f.PktsRxed())
	}
	// Wire time: 100 packets of 1048B at 40G = 100*209.6ns = 20.96us, plus
	// pipeline (one hop store-and-forward + 2 links).
	ideal := host.IdealFCT(100*units.KB, 1000, 40*units.Gbps, 2, units.Microsecond)
	if f.FCT < ideal {
		t.Errorf("FCT %v faster than ideal %v", f.FCT, ideal)
	}
	if f.FCT > ideal+ideal/10 {
		t.Errorf("FCT %v much slower than ideal %v on an idle network", f.FCT, ideal)
	}
}

func TestPacedFlowRate(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	// 1 MB at 10 Gbps should take ~(1M+hdrs)*8/10G = ~838us.
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), units.MB, 0, host.FixedRate(10*units.Gbps))
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	wire := (units.MB + 1000*packet.HeaderBytes)
	want := units.TxTime(wire, 10*units.Gbps)
	if f.FCT < want || f.FCT > want+want/20 {
		t.Errorf("paced FCT = %v, want ~%v", f.FCT, want)
	}
}

func TestTwoFlowsShareNIC(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 3, 40*units.Gbps, units.Microsecond)
	// Two 20 Gbps flows from one host fit the 40 Gbps NIC exactly.
	f1 := r.mgr.AddFlow(r.id("a"), r.id("b"), 500*units.KB, 0, host.FixedRate(20*units.Gbps))
	f2 := r.mgr.AddFlow(r.id("a"), r.id("c"), 500*units.KB, 0, host.FixedRate(20*units.Gbps))
	r.sched.Run()
	if !f1.Done || !f2.Done {
		t.Fatal("flows did not complete")
	}
	// Both should finish around 500KB*8/20G ≈ 200us; neither starved.
	want := units.TxTime(500*units.KB, 20*units.Gbps)
	for _, f := range []*host.Flow{f1, f2} {
		if f.FCT > want+want/5 {
			t.Errorf("flow %d FCT = %v, want ~%v (fair NIC sharing)", f.ID, f.FCT, want)
		}
	}
}

func TestFlowStartTimeRespected(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	start := 500 * units.Microsecond
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 10*units.KB, start, host.FixedRate(40*units.Gbps))
	var doneAt units.Time
	r.mgr.OnDone = func(*host.Flow) { doneAt = r.sched.Now() }
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if doneAt < start {
		t.Errorf("flow finished at %v before its start %v", doneAt, start)
	}
	// FCT is measured from Start, not from t=0.
	if f.FCT > 100*units.Microsecond {
		t.Errorf("FCT = %v includes pre-start time", f.FCT)
	}
}

func TestAckEveryPacketProvidesRTT(t *testing.T) {
	cfg := host.DefaultConfig()
	cfg.AckEveryPacket = true
	r := newRig(t, cfg, 2, 40*units.Gbps, 4*units.Microsecond)
	rec := &recordCtrl{rate: 40 * units.Gbps}
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 10*units.KB, 0, rec)
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if len(rec.rtts) != 10 {
		t.Fatalf("got %d RTT samples, want 10", len(rec.rtts))
	}
	// RTT at least 2 links out + 2 back = 16us of propagation.
	for _, rtt := range rec.rtts {
		if rtt < 16*units.Microsecond {
			t.Errorf("rtt %v below physical floor", rtt)
		}
		if rtt > 25*units.Microsecond {
			t.Errorf("rtt %v absurdly high on idle network", rtt)
		}
	}
}

// recordCtrl records controller callbacks.
type recordCtrl struct {
	rate     units.Rate
	rtts     []units.Time
	notifies []struct{ ce, ue bool }
	acks     []struct{ ce, ue bool }
}

func (c *recordCtrl) CurrentRate() units.Rate { return c.rate }
func (c *recordCtrl) OnNotify(_ units.Time, ce, ue bool) {
	c.notifies = append(c.notifies, struct{ ce, ue bool }{ce, ue})
}
func (c *recordCtrl) OnAck(_ units.Time, rtt units.Time, ce, ue bool) {
	c.rtts = append(c.rtts, rtt)
	c.acks = append(c.acks, struct{ ce, ue bool }{ce, ue})
}

// markAllCE marks every dequeued packet CE.
type markAllCE struct{}

func (markAllCE) OnDequeue(_ units.Time, pkt *packet.Packet, _ units.ByteSize) {
	pkt.Code = pkt.Code.MarkCE()
}
func (markAllCE) OnOffStart(units.Time) {}
func (markAllCE) OnOffEnd(units.Time)   {}

func TestCNPGenerationAndRateLimit(t *testing.T) {
	cfg := host.DefaultConfig()
	r := newRig(t, cfg, 2, 40*units.Gbps, units.Microsecond)
	// Mark all data CE at the switch egress toward b.
	r.net.PortToward(r.sw, r.id("b")).AttachDetector(0, markAllCE{})
	rec := &recordCtrl{rate: 40 * units.Gbps}
	// 1 MB at 40G lasts ~210us => with a 50us CNP window expect ~5 CNPs.
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), units.MB, 0, rec)
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow did not complete")
	}
	if f.CEPackets() != 1000 {
		t.Errorf("CE packets = %d, want 1000 (all marked)", f.CEPackets())
	}
	if len(rec.notifies) < 3 || len(rec.notifies) > 7 {
		t.Errorf("CNP count = %d, want ~5 (50us window over ~210us)", len(rec.notifies))
	}
	for _, n := range rec.notifies {
		if !n.ce || n.ue {
			t.Error("CNP should echo CE only")
		}
	}
}

// markAllUE marks every dequeued packet UE.
type markAllUE struct{}

func (markAllUE) OnDequeue(_ units.Time, pkt *packet.Packet, _ units.ByteSize) {
	pkt.Code = pkt.Code.MarkUE()
}
func (markAllUE) OnOffStart(units.Time) {}
func (markAllUE) OnOffEnd(units.Time)   {}

func TestUECNPsAreSeparate(t *testing.T) {
	cfg := host.DefaultConfig()
	r := newRig(t, cfg, 2, 40*units.Gbps, units.Microsecond)
	r.net.PortToward(r.sw, r.id("b")).AttachDetector(0, markAllUE{})
	rec := &recordCtrl{rate: 40 * units.Gbps}
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 500*units.KB, 0, rec)
	r.sched.Run()
	if f.UEPackets() != 500 {
		t.Errorf("UE packets = %d, want 500", f.UEPackets())
	}
	if len(rec.notifies) == 0 {
		t.Fatal("no UE CNPs generated")
	}
	for _, n := range rec.notifies {
		if n.ce || !n.ue {
			t.Error("CNP should echo UE only")
		}
	}
}

func TestNotCapableTransportNeverMarked(t *testing.T) {
	cfg := host.DefaultConfig()
	cfg.NotCapable = true
	r := newRig(t, cfg, 2, 40*units.Gbps, units.Microsecond)
	r.net.PortToward(r.sw, r.id("b")).AttachDetector(0, markAllCE{})
	rec := &recordCtrl{rate: 40 * units.Gbps}
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 10*units.KB, 0, rec)
	r.sched.Run()
	if f.CEPackets() != 0 || len(rec.notifies) != 0 {
		t.Errorf("non-capable transport was marked: ce=%d cnp=%d", f.CEPackets(), len(rec.notifies))
	}
}

func TestLastPartialPacket(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	// 2500 B = two full MTUs plus a 500 B tail.
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 2500, 0, host.FixedRate(40*units.Gbps))
	r.sched.Run()
	if !f.Done || f.BytesRxed() != 2500 || f.PktsRxed() != 3 {
		t.Errorf("partial-packet flow: done=%v bytes=%v pkts=%d", f.Done, f.BytesRxed(), f.PktsRxed())
	}
}

func TestIdealFCT(t *testing.T) {
	// One 1000B packet over 2 hops at 40G with 1us links:
	// 209.6ns + 209.6ns + 2us = 2.4192us.
	got := host.IdealFCT(1000, 1000, 40*units.Gbps, 2, units.Microsecond)
	want := 2*units.TxTime(1048, 40*units.Gbps) + 2*units.Microsecond
	if got != want {
		t.Errorf("IdealFCT = %v, want %v", got, want)
	}
	// Baseline is monotone in size.
	if host.IdealFCT(10*units.KB, 1000, 40*units.Gbps, 3, units.Microsecond) <=
		host.IdealFCT(1*units.KB, 1000, 40*units.Gbps, 3, units.Microsecond) {
		t.Error("IdealFCT not monotone in size")
	}
}

func TestSlowdown(t *testing.T) {
	f := &host.Flow{Done: true, FCT: 10 * units.Microsecond}
	if got := f.Slowdown(2 * units.Microsecond); got != 5 {
		t.Errorf("Slowdown = %v, want 5", got)
	}
	if got := (&host.Flow{}).Slowdown(units.Microsecond); got != 0 {
		t.Errorf("Slowdown of incomplete flow = %v, want 0", got)
	}
}

func TestAddFlowValidation(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, units.Gbps, 0)
	for _, fn := range []func(){
		func() { r.mgr.AddFlow(r.sw, r.id("b"), 1, 0, host.FixedRate(1)) },
		func() { r.mgr.AddFlow(r.id("a"), r.sw, 1, 0, host.FixedRate(1)) },
		func() { r.mgr.AddFlow(r.id("a"), r.id("b"), 0, 0, host.FixedRate(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AddFlow did not panic")
				}
			}()
			fn()
		}()
	}
}

// In ACK mode the receiver echoes the data packet's code point on the
// ACK so delay-based controllers can tell UE from CE (TIMELY+TCD).
func TestAckEchoesUEAndCE(t *testing.T) {
	cfg := host.DefaultConfig()
	cfg.AckEveryPacket = true
	r := newRig(t, cfg, 2, 40*units.Gbps, units.Microsecond)
	r.net.PortToward(r.sw, r.id("b")).AttachDetector(0, markAllUE{})
	rec := &recordCtrl{rate: 40 * units.Gbps}
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 5*units.KB, 0, rec)
	r.sched.Run()
	if !f.Done {
		t.Fatal("flow incomplete")
	}
	if len(rec.acks) != 5 {
		t.Fatalf("acks = %d, want 5", len(rec.acks))
	}
	for _, a := range rec.acks {
		if !a.ue || a.ce {
			t.Error("ACK did not echo UE")
		}
	}
}

// DCQCN-style byte counting: the SentObserver hook sees every wire byte.
type countingCtrl struct {
	host.FixedRate
	bytes units.ByteSize
}

func (c *countingCtrl) OnSent(_ units.Time, wire units.ByteSize) { c.bytes += wire }

func TestSentObserverSeesWireBytes(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	ctrl := &countingCtrl{FixedRate: host.FixedRate(40 * units.Gbps)}
	r.mgr.AddFlow(r.id("a"), r.id("b"), 10*units.KB, 0, ctrl)
	r.sched.Run()
	// 10 packets of 1048B wire size.
	if ctrl.bytes != 10480 {
		t.Errorf("observed %v wire bytes, want 10480", ctrl.bytes)
	}
}

func TestFirstByteAt(t *testing.T) {
	r := newRig(t, host.DefaultConfig(), 2, 40*units.Gbps, units.Microsecond)
	start := 100 * units.Microsecond
	f := r.mgr.AddFlow(r.id("a"), r.id("b"), 5*units.KB, start, host.FixedRate(40*units.Gbps))
	r.sched.Run()
	ttfb := f.FirstByteAt()
	if ttfb <= start {
		t.Errorf("first byte at %v, before flow start %v", ttfb, start)
	}
	if ttfb >= start+f.FCT {
		t.Errorf("first byte at %v, not before completion %v", ttfb, start+f.FCT)
	}
}
