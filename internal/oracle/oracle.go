// Package oracle derives per-port, per-window ground truth for congestion
// classification — root / victim / idle — from the fabric's own state,
// and scores detector verdicts against it.
//
// The oracle is the referee the paper's evaluation lacks a formal name
// for: detectors see only local queue signals, but the simulator knows
// where every byte is, which ports sit on a pause-wait cycle, and which
// symptoms the adversarial injector manufactured. Ground truth for a
// switch egress port over one window is derived by rule, in order:
//
//  1. Victim if the port is on a pause-wait cycle (the WaitCycles Tarjan
//     scan) with traffic queued: every cycle member waits on buffer only
//     its own progress could free, the defining victim condition.
//  2. Victim if the port spent at least VictimOffFrac of the window
//     blocked by flow control while holding more than IdleThresh queued —
//     after subtracting any camouflage duty cycle the injector armed
//     against it (manufactured pause time must not manufacture truth).
//  3. Root if more than RootThresh is queued: congestion originating
//     here, not inherited from downstream. RootThresh sits well below
//     detector marking thresholds on purpose, so a camouflaged root —
//     held just under its marking point by the attack — is still truth-
//     root while the detector under test is being fooled.
//  4. Idle otherwise.
//
// The detector's verdict for the same window is read off the port's own
// mark counters: fresh CE marks claim root, else fresh UE marks claim
// victim, else idle. Spoofed CE marks are accounted separately by the
// fabric (Port.SpoofedCE) and never reach these counters, so a spoofing
// attacker degrades flows, not the scoreboard's honesty.
//
// Everything here is deterministic: the sampler is a self-rescheduling
// simulator event reading state already produced, scores are integer
// confusion counts plus IEEE-exact ratios, and reports sort runs before
// comparing — the same battery and seeds produce byte-identical JSON.
package oracle

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

// Class is the ternary ground-truth (and verdict) label.
type Class uint8

const (
	// ClassIdle: no meaningful congestion at the port.
	ClassIdle Class = iota
	// ClassRoot: congestion originates at the port.
	ClassRoot
	// ClassVictim: the port is congested only because downstream
	// backpressure stops it from draining.
	ClassVictim

	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassIdle:
		return "idle"
	case ClassRoot:
		return "root"
	case ClassVictim:
		return "victim"
	}
	return "unknown"
}

// Config tunes the ground-truth derivation.
type Config struct {
	// Window is the scoring granularity (default 50 us).
	Window units.Time
	// RootThresh: queue occupancy above this is truth-root (unless a
	// victim rule fired first). Keep it well below detector marking
	// thresholds so camouflaged roots stay visible to truth.
	RootThresh units.ByteSize
	// IdleThresh: occupancy at or below this never leaves idle.
	IdleThresh units.ByteSize
	// VictimOffFrac: fraction of the window spent blocked by flow
	// control above which a non-empty port is truth-victim.
	VictimOffFrac float64
	// Duty, if non-nil, reports the camouflage pause duty cycle the
	// injector armed against a port (fault.Injector.CamouflageDuty); it
	// is subtracted from the port's observed OFF fraction.
	Duty func(*fabric.Port) float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 50 * units.Microsecond
	}
	if c.RootThresh == 0 {
		c.RootThresh = 40 * units.KB
	}
	if c.IdleThresh == 0 {
		c.IdleThresh = 10 * units.KB
	}
	if c.VictimOffFrac == 0 {
		c.VictimOffFrac = 0.25
	}
	return c
}

// Sampler scores one run: attached before the run starts, it wakes every
// Window, derives truth for every switch egress port, reads the verdict
// deltas, and accumulates the confusion matrix. It only reads simulator
// state, so attaching it cannot perturb the run.
type Sampler struct {
	cfg   Config
	net   *fabric.Network
	ports []*fabric.Port

	prevCE, prevUE []uint64
	prevOff        []units.Time
	// onset/claimAt track time-to-detect per port: when truth first went
	// root, and when the detector first agreed (units.Forever = never).
	onset, claimAt []units.Time

	conf    [numClasses][numClasses]int // [truth][verdict]
	windows int
}

// Attach builds a sampler over net's switch-owned egress ports and
// schedules its first tick one window from now.
func Attach(net *fabric.Network, cfg Config) *Sampler {
	s := &Sampler{cfg: cfg.withDefaults(), net: net}
	for _, p := range net.Ports() {
		if net.Topo.Nodes[p.Node()].Kind != topo.Switch {
			continue
		}
		s.ports = append(s.ports, p)
	}
	n := len(s.ports)
	s.prevCE = make([]uint64, n)
	s.prevUE = make([]uint64, n)
	s.prevOff = make([]units.Time, n)
	s.onset = make([]units.Time, n)
	s.claimAt = make([]units.Time, n)
	for i := range s.onset {
		s.onset[i] = units.Forever
		s.claimAt[i] = units.Forever
	}
	var tick func()
	tick = func() {
		s.tick()
		net.Sched.After(s.cfg.Window, tick)
	}
	net.Sched.After(s.cfg.Window, tick)
	return s
}

func (s *Sampler) tick() {
	now := s.net.Sched.Now()
	var inCycle map[*fabric.Port]bool
	if cycles := s.net.WaitCycles(); len(cycles) > 0 {
		inCycle = make(map[*fabric.Port]bool)
		for _, cyc := range cycles {
			for _, p := range cyc {
				inCycle[p] = true
			}
		}
	}
	window := float64(s.cfg.Window)
	for i, p := range s.ports {
		q := p.TotalQueueBytes()
		off := p.OffTime(now)
		offFrac := float64(off-s.prevOff[i]) / window
		s.prevOff[i] = off
		if s.cfg.Duty != nil {
			offFrac -= s.cfg.Duty(p)
		}
		truth := ClassIdle
		switch {
		case inCycle[p] && q > 0:
			truth = ClassVictim
		case offFrac >= s.cfg.VictimOffFrac && q > s.cfg.IdleThresh:
			truth = ClassVictim
		case q > s.cfg.RootThresh:
			truth = ClassRoot
		}
		dCE := p.MarkedCE - s.prevCE[i]
		dUE := p.MarkedUE - s.prevUE[i]
		s.prevCE[i] = p.MarkedCE
		s.prevUE[i] = p.MarkedUE
		verdict := ClassIdle
		if dCE > 0 {
			verdict = ClassRoot
		} else if dUE > 0 {
			verdict = ClassVictim
		}
		s.conf[truth][verdict]++
		if truth == ClassRoot {
			if s.onset[i] == units.Forever {
				s.onset[i] = now
			}
			if verdict == ClassRoot && s.claimAt[i] == units.Forever {
				s.claimAt[i] = now
			}
		}
	}
	s.windows++
}

// Score is the outcome of scoring one detector over one run. All fields
// derive from integer counts by IEEE-exact arithmetic, so identical runs
// produce identical scores bit for bit.
type Score struct {
	// Windows is the number of (port, window) observations.
	Windows int `json:"windows"`
	// Confusion[truth][verdict] in idle/root/victim order.
	Confusion [numClasses][numClasses]int `json:"confusion"`
	// Accuracy is the diagonal fraction.
	Accuracy float64 `json:"accuracy"`
	// Precision/Recall per class, idle/root/victim order (0 when the
	// class never occurred / was never claimed).
	Precision [numClasses]float64 `json:"precision"`
	Recall    [numClasses]float64 `json:"recall"`
	// MisdetectLikelihood is P(verdict root | truth victim) — the
	// paper's misdetection: punishing a victim as the culprit.
	MisdetectLikelihood float64 `json:"misdetect_likelihood"`
	// TTDUs is the mean time-to-detect in microseconds over ports that
	// ever became truth-root: detector's first root claim minus truth
	// onset, with ports never detected charged to the horizon. -1 when
	// no port was ever truth-root.
	TTDUs float64 `json:"ttd_us"`
}

// Finish closes the sampler at the run's horizon and computes the score.
func (s *Sampler) Finish(horizon units.Time) Score {
	sc := Score{Confusion: s.conf}
	total, diag := 0, 0
	var rowSum, colSum [numClasses]int
	for t := 0; t < int(numClasses); t++ {
		for v := 0; v < int(numClasses); v++ {
			n := s.conf[t][v]
			total += n
			rowSum[t] += n
			colSum[v] += n
			if t == v {
				diag += n
			}
		}
	}
	sc.Windows = total
	if total > 0 {
		sc.Accuracy = float64(diag) / float64(total)
	}
	for c := 0; c < int(numClasses); c++ {
		if colSum[c] > 0 {
			sc.Precision[c] = float64(s.conf[c][c]) / float64(colSum[c])
		}
		if rowSum[c] > 0 {
			sc.Recall[c] = float64(s.conf[c][c]) / float64(rowSum[c])
		}
	}
	if v := rowSum[ClassVictim]; v > 0 {
		sc.MisdetectLikelihood = float64(s.conf[ClassVictim][ClassRoot]) / float64(v)
	}
	var ttdSum float64
	roots := 0
	for i := range s.onset {
		if s.onset[i] == units.Forever {
			continue
		}
		roots++
		end := s.claimAt[i]
		if end == units.Forever {
			end = horizon
		}
		ttdSum += float64(end-s.onset[i]) / float64(units.Microsecond)
	}
	if roots > 0 {
		sc.TTDUs = ttdSum / float64(roots)
	} else {
		sc.TTDUs = -1
	}
	return sc
}

// Run is one scored (scenario, fabric, detector, seed) cell of a battery.
type Run struct {
	Scenario string `json:"scenario"`
	Fabric   string `json:"fabric"`
	Detector string `json:"detector"`
	Seed     int64  `json:"seed"`
	Score    Score  `json:"score"`
}

// Aggregate is a detector's battery-wide summary.
type Aggregate struct {
	Runs          int     `json:"runs"`
	MeanAccuracy  float64 `json:"mean_accuracy"`
	MeanMisdetect float64 `json:"mean_misdetect"`
}

// Report is the deterministic battery scoreboard: every run, per-detector
// aggregates, and the contradictions the cross-checks surfaced.
type Report struct {
	Runs []Run `json:"runs"`
	// PerDetector aggregates over the whole battery (encoding/json
	// sorts the keys, keeping the report deterministic).
	PerDetector map[string]Aggregate `json:"per_detector"`
	// Contradictions lists cross-seed and cross-fabric inconsistencies:
	// a detector whose score swings with the seed or fabric beyond
	// tolerance is reporting noise, not classification.
	Contradictions []string `json:"contradictions"`
}

// Tolerances for the contradiction checks: accuracy across seeds of the
// same (scenario, fabric, detector) cell may differ by at most
// seedAccuracyTol; misdetection likelihood across fabrics of the same
// (scenario, detector) by at most fabricMisdetectTol. The seed bound is
// tight — seeds perturb arrival jitter, not attack structure — while the
// fabric bound is loose: PFC and CBFC legitimately disagree about what a
// forged pause even does.
const (
	seedAccuracyTol    = 0.25
	fabricMisdetectTol = 0.75
)

// BuildReport sorts the runs, aggregates per detector, and runs the
// contradiction checks.
func BuildReport(runs []Run) *Report {
	sorted := make([]Run, len(runs))
	copy(sorted, runs)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Fabric != b.Fabric {
			return a.Fabric < b.Fabric
		}
		if a.Detector != b.Detector {
			return a.Detector < b.Detector
		}
		return a.Seed < b.Seed
	})
	r := &Report{Runs: sorted, PerDetector: map[string]Aggregate{}}
	for _, run := range sorted {
		agg := r.PerDetector[run.Detector]
		agg.Runs++
		agg.MeanAccuracy += run.Score.Accuracy
		agg.MeanMisdetect += run.Score.MisdetectLikelihood
		r.PerDetector[run.Detector] = agg
	}
	for det, agg := range r.PerDetector {
		agg.MeanAccuracy /= float64(agg.Runs)
		agg.MeanMisdetect /= float64(agg.Runs)
		r.PerDetector[det] = agg
	}
	// Cross-seed: group by (scenario, fabric, detector), compare
	// accuracy extremes. The slice is sorted, so groups are contiguous
	// and the emitted order is deterministic.
	for i := 0; i < len(sorted); {
		j := i
		lo, hi := sorted[i].Score.Accuracy, sorted[i].Score.Accuracy
		for j < len(sorted) && sorted[j].Scenario == sorted[i].Scenario &&
			sorted[j].Fabric == sorted[i].Fabric && sorted[j].Detector == sorted[i].Detector {
			a := sorted[j].Score.Accuracy
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
			j++
		}
		if hi-lo > seedAccuracyTol {
			r.Contradictions = append(r.Contradictions, fmt.Sprintf(
				"%s/%s/%s: accuracy swings %.3f..%.3f across seeds (tol %.2f)",
				sorted[i].Scenario, sorted[i].Fabric, sorted[i].Detector, lo, hi, seedAccuracyTol))
		}
		i = j
	}
	// Cross-fabric: group by (scenario, detector), compare mean
	// misdetection likelihood between fabrics.
	type sdKey struct{ scenario, detector string }
	type fabAcc struct {
		sum map[string]float64
		n   map[string]int
	}
	bySD := map[sdKey]*fabAcc{}
	var order []sdKey
	for _, run := range sorted {
		k := sdKey{run.Scenario, run.Detector}
		acc, ok := bySD[k]
		if !ok {
			acc = &fabAcc{sum: map[string]float64{}, n: map[string]int{}}
			bySD[k] = acc
			order = append(order, k)
		}
		acc.sum[run.Fabric] += run.Score.MisdetectLikelihood
		acc.n[run.Fabric]++
	}
	for _, k := range order {
		acc := bySD[k]
		fabrics := make([]string, 0, len(acc.sum))
		for f := range acc.sum {
			fabrics = append(fabrics, f)
		}
		sort.Strings(fabrics)
		for a := 0; a < len(fabrics); a++ {
			for b := a + 1; b < len(fabrics); b++ {
				ma := acc.sum[fabrics[a]] / float64(acc.n[fabrics[a]])
				mb := acc.sum[fabrics[b]] / float64(acc.n[fabrics[b]])
				d := ma - mb
				if d < 0 {
					d = -d
				}
				if d > fabricMisdetectTol {
					r.Contradictions = append(r.Contradictions, fmt.Sprintf(
						"%s/%s: misdetect likelihood diverges %s=%.3f vs %s=%.3f (tol %.2f)",
						k.scenario, k.detector, fabrics[a], ma, fabrics[b], mb, fabricMisdetectTol))
				}
			}
		}
	}
	return r
}

// Marshal renders the report's canonical encoding: indented, sorted map
// keys (encoding/json), trailing newline — byte-identical across runs.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteJSON writes the canonical report encoding to path.
func (r *Report) WriteJSON(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return fmt.Errorf("oracle: encoding report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	return nil
}
