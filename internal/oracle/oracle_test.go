package oracle

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/units"
)

// TestScoreMath checks Finish's derived statistics against a hand-built
// confusion matrix and TTD ledger.
func TestScoreMath(t *testing.T) {
	s := &Sampler{
		// [truth][verdict], idle/root/victim order.
		conf: [numClasses][numClasses]int{
			{8, 1, 1}, // idle: 8 right, 1 claimed root, 1 claimed victim
			{2, 6, 2}, // root
			{1, 3, 6}, // victim: 3 punished as root
		},
		onset:   []units.Time{0, 100, units.Forever},
		claimAt: []units.Time{50, units.Forever, units.Forever},
	}
	sc := s.Finish(1000)
	if sc.Windows != 30 {
		t.Errorf("windows = %d, want 30", sc.Windows)
	}
	if want := 20.0 / 30.0; sc.Accuracy != want {
		t.Errorf("accuracy = %v, want %v", sc.Accuracy, want)
	}
	// Precision reads columns, recall reads rows.
	if want := 6.0 / 10.0; sc.Precision[ClassRoot] != want {
		t.Errorf("precision[root] = %v, want %v", sc.Precision[ClassRoot], want)
	}
	if want := 6.0 / 10.0; sc.Recall[ClassRoot] != want {
		t.Errorf("recall[root] = %v, want %v", sc.Recall[ClassRoot], want)
	}
	if want := 6.0 / 9.0; sc.Precision[ClassVictim] != want {
		t.Errorf("precision[victim] = %v, want %v", sc.Precision[ClassVictim], want)
	}
	if want := 3.0 / 10.0; sc.MisdetectLikelihood != want {
		t.Errorf("misdetect = %v, want %v", sc.MisdetectLikelihood, want)
	}
	// Port 0 detected after 50, port 1 never detected (charged the
	// horizon: 1000-100=900), port 2 never truth-root (excluded).
	wantTTD := (50.0 + 900.0) / 2 / float64(units.Microsecond)
	if math.Abs(sc.TTDUs-wantTTD) > 1e-12 {
		t.Errorf("ttd_us = %v, want %v", sc.TTDUs, wantTTD)
	}
}

// TestScoreEmpty: a sampler that never ticked scores zero without NaNs.
func TestScoreEmpty(t *testing.T) {
	sc := (&Sampler{}).Finish(1000)
	if sc.Windows != 0 || sc.Accuracy != 0 || sc.MisdetectLikelihood != 0 {
		t.Errorf("empty score not zero: %+v", sc)
	}
	if sc.TTDUs != -1 {
		t.Errorf("ttd_us = %v, want -1 when no port was truth-root", sc.TTDUs)
	}
}

func run(scenario, fabric, det string, seed int64, acc, mis float64) Run {
	return Run{Scenario: scenario, Fabric: fabric, Detector: det, Seed: seed,
		Score: Score{Accuracy: acc, MisdetectLikelihood: mis}}
}

// TestBuildReportAggregates checks sorting and per-detector means.
func TestBuildReportAggregates(t *testing.T) {
	rep := BuildReport([]Run{
		run("b", "ib", "tcd", 2, 0.9, 0.0),
		run("a", "cee", "tcd", 1, 0.7, 0.2),
		run("a", "cee", "baseline", 1, 0.5, 0.4),
	})
	if got := rep.Runs[0]; got.Scenario != "a" || got.Detector != "baseline" {
		t.Errorf("runs not sorted: first is %+v", got)
	}
	agg := rep.PerDetector["tcd"]
	if agg.Runs != 2 || agg.MeanAccuracy != 0.8 || agg.MeanMisdetect != 0.1 {
		t.Errorf("tcd aggregate = %+v, want {2 0.8 0.1}", agg)
	}
	if len(rep.Contradictions) != 0 {
		t.Errorf("unexpected contradictions: %v", rep.Contradictions)
	}
}

// TestBuildReportContradictions triggers both cross-checks.
func TestBuildReportContradictions(t *testing.T) {
	rep := BuildReport([]Run{
		// Cross-seed: accuracy swings 0.2..0.9 > seedAccuracyTol.
		run("storm", "cee", "tcd", 1, 0.9, 0.0),
		run("storm", "cee", "tcd", 2, 0.2, 0.0),
		// Cross-fabric: misdetect 0.9 vs 0.0 > fabricMisdetectTol.
		run("storm", "cee", "baseline", 1, 0.8, 0.9),
		run("storm", "ib", "baseline", 1, 0.8, 0.0),
	})
	if len(rep.Contradictions) != 2 {
		t.Fatalf("got %d contradictions, want 2: %v", len(rep.Contradictions), rep.Contradictions)
	}
	if !strings.Contains(rep.Contradictions[0], "across seeds") {
		t.Errorf("first contradiction is not the cross-seed check: %q", rep.Contradictions[0])
	}
	if !strings.Contains(rep.Contradictions[1], "diverges") {
		t.Errorf("second contradiction is not the cross-fabric check: %q", rep.Contradictions[1])
	}
}

// TestMarshalDeterminism: building the same report from shuffled input
// yields byte-identical JSON.
func TestMarshalDeterminism(t *testing.T) {
	runs := []Run{
		run("b", "ib", "tcd", 2, 0.9, 0.0),
		run("a", "cee", "tcd", 1, 0.7, 0.2),
		run("a", "cee", "baseline", 1, 0.5, 0.4),
	}
	shuffled := []Run{runs[2], runs[0], runs[1]}
	a, err := BuildReport(runs).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildReport(shuffled).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("report encoding depends on input order:\n%s\nvs\n%s", a, b)
	}
	if a[len(a)-1] != '\n' {
		t.Errorf("canonical encoding missing trailing newline")
	}
}
