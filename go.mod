module github.com/tcdnet/tcd

go 1.22
