// Package tcd is the public facade of the Ternary Congestion Detection
// library — a from-scratch Go reproduction of "Congestion Detection in
// Lossless Networks" (SIGCOMM 2021).
//
// The paper's contribution is re-exported here: the ternary port states,
// the TCD detector state machine, and the analytic ON-OFF model that
// parameterizes it. The full simulation stack the evaluation runs on
// (event scheduler, CEE/PFC and InfiniBand/CBFC fabrics, DCQCN, TIMELY
// and IB CC rate control, topologies, workloads and the per-figure
// experiment harness) lives under internal/; see DESIGN.md for the map
// and cmd/tcdsim for the experiment runner.
//
// Minimal use — detect ternary states on a switch egress port:
//
//	params := tcd.CEEParams(1000, 40*units.Gbps, units.Microsecond)
//	det := tcd.New(tcd.Config{
//		MaxTon:     tcd.MaxTonCEE(params, tcd.RecommendedEps),
//		CongThresh: 200 * units.KB,
//		LowThresh:  10 * units.KB,
//	})
//	// per dequeued packet: det.OnDequeue(now, pkt, queueLen)
//	// when an OFF period ends: det.OnOffEnd(now)
package tcd

import (
	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/units"
)

// Detector is the TCD ternary state machine of one (port, priority).
type Detector = core.TCD

// Config parameterizes a Detector.
type Config = core.TCDConfig

// State is a ternary port state.
type State = core.State

// Ternary states (§3.2.1 of the paper).
const (
	NonCongestion = core.NonCongestion
	Congestion    = core.Congestion
	Undetermined  = core.Undetermined
)

// CodePoint is the two-bit ternary congestion notification field
// (Table 1 of the paper).
type CodePoint = packet.CodePoint

// Code points.
const (
	NotCapable = packet.NotCapable
	Capable    = packet.Capable
	UE         = packet.UE
	CE         = packet.CE
)

// ModelParams are the conceptual ON-OFF model inputs (Table 2).
type ModelParams = core.ModelParams

// RecommendedEps is the paper's recommended congestion degree (0.05).
const RecommendedEps = core.RecommendedEps

// New builds a detector; see core.NewTCD.
func New(cfg Config) *Detector { return core.NewTCD(cfg) }

// CEEParams derives the ON-OFF model parameters of a PFC deployment.
func CEEParams(mtu units.ByteSize, c units.Rate, tp units.Time) ModelParams {
	return core.CEEParams(mtu, c, tp)
}

// MaxTonCEE evaluates Eqn (3): the ON-period bound under PFC.
func MaxTonCEE(p ModelParams, eps float64) units.Time { return core.MaxTonCEE(p, eps) }

// MaxTonIB is the InfiniBand bound: the CBFC credit update period.
func MaxTonIB(tc units.Time) units.Time { return core.MaxTonIB(tc) }

// PFCResponseTime is tau = 2*MTU/C + 2*t_p (§4.3).
func PFCResponseTime(mtu units.ByteSize, c units.Rate, tp units.Time) units.Time {
	return core.PFCResponseTime(mtu, c, tp)
}
