// Benchmarks that regenerate every table and figure of the paper's
// evaluation at reduced scale (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results; cmd/tcdsim -full runs the
// paper-scale versions).
//
// Each benchmark reports, beyond ns/op, the experiment's headline metric
// via b.ReportMetric so `go test -bench=.` doubles as a results table.
package tcd_test

import (
	"strings"
	"testing"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

const benchSeed = 42

func benchObserve(b *testing.B, kind exp.FabricKind, det exp.DetectorKind, multi bool) *exp.Result {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultObserveConfig(kind, det, multi)
		cfg.Horizon = 5 * units.Millisecond
		cfg.BurstRounds = 10
		cfg.Seed = benchSeed
		res = exp.Observe(cfg)
	}
	return res
}

// Fig 3: single congestion point under the baseline detectors — the
// improper-marking observation.
func BenchmarkFig3SingleCongestionPoint(b *testing.B) {
	for _, kind := range []exp.FabricKind{exp.CEE, exp.IB} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			res := benchObserve(b, kind, exp.DetBaseline, false)
			b.ReportMetric(res.Scalars["f0_ce"], "victim-CE-pkts")
			b.ReportMetric(res.Scalars["p2_max_queue_kb"], "P2-maxQ-KB")
		})
	}
}

// Fig 4: multiple congestion points under the baseline detectors.
func BenchmarkFig4MultipleCongestionPoints(b *testing.B) {
	for _, kind := range []exp.FabricKind{exp.CEE, exp.IB} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			res := benchObserve(b, kind, exp.DetBaseline, true)
			b.ReportMetric(res.Scalars["p2_max_queue_kb"], "P2-maxQ-KB")
		})
	}
}

// Fig 8: the analytic ON-OFF model surface.
func BenchmarkFig8TonSurface(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = exp.Fig8()
	}
	b.ReportMetric(res.Scalars["plane_eps0.05_us"], "plane-us")
}

// Fig 11: the testbed marking staircase.
func BenchmarkFig11TestbedMarking(b *testing.B) {
	for _, kind := range []exp.FabricKind{exp.CEE, exp.IB} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			var res *exp.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := exp.DefaultTestbedConfig(kind)
				cfg.Horizon = 20 * units.Millisecond
				cfg.Seed = benchSeed
				res = exp.Testbed(cfg)
			}
			b.ReportMetric(res.Scalars["f0_ue_during"], "F0-UE-frac")
			b.ReportMetric(res.Scalars["f0_ce_during"], "F0-CE-frac")
		})
	}
}

// Fig 12: single congestion point with TCD (undetermined -> non-congestion).
func BenchmarkFig12TCDSingleCP(b *testing.B) {
	for _, kind := range []exp.FabricKind{exp.CEE, exp.IB} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			res := benchObserve(b, kind, exp.DetTCD, false)
			b.ReportMetric(res.Scalars["p2_ce_during_bursts"], "P2-CE-in-bursts")
			b.ReportMetric(res.Scalars["p2_time_undetermined_us"], "P2-und-us")
		})
	}
}

// Fig 13: multiple congestion points with TCD (undetermined -> congestion).
func BenchmarkFig13TCDMultiCP(b *testing.B) {
	for _, kind := range []exp.FabricKind{exp.CEE, exp.IB} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			res := benchObserve(b, kind, exp.DetTCD, true)
			b.ReportMetric(res.Scalars["p2_time_congestion_us"]+
				b2f(res.Scalars["p2_final_state"] == 1), "P2-cong-us")
		})
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Table 3: fraction of victim flows mistakenly marked CE.
func BenchmarkTable3VictimFlows(b *testing.B) {
	var rows []exp.Table3Row
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rows = exp.Table3(10*units.Millisecond, benchSeed)
	}
	for _, r := range rows {
		unit := strings.ReplaceAll(strings.ReplaceAll(r.Scheme, " ", ""), "(", "-")
		unit = strings.ReplaceAll(unit, ")", "")
		b.ReportMetric(r.Fraction, unit+"-frac")
	}
}

// Fig 14: sensitivity of eps.
func BenchmarkFig14EpsilonSensitivity(b *testing.B) {
	var pts []exp.Fig14Point
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, pts = exp.Fig14(exp.CEE, 8*units.Millisecond, benchSeed)
	}
	for _, p := range pts {
		if p.Eps == 0.05 || p.Eps == 0.4 {
			b.ReportMetric(float64(p.VictimCEPackets), "CE-pkts@eps"+fmtEps(p.Eps))
		}
	}
}

func fmtEps(e float64) string {
	if e == 0.05 {
		return "0.05"
	}
	return "0.40"
}

// Fig 15: DCQCN vs DCQCN+TCD on victim flows.
func BenchmarkFig15DCQCNVictims(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, _ = exp.VictimFCT(exp.CEE, exp.CCDCQCN, exp.CCDCQCNTCD, 15*units.Millisecond, benchSeed)
	}
	b.ReportMetric(res.Scalars["speedup"], "victim-FCT-speedup")
	b.ReportMetric(res.Scalars["stock_victim_ce_frac"], "stock-CE-frac")
}

// Fig 16: fat-tree FCT slowdown, DCQCN vs DCQCN+TCD, both workloads.
func BenchmarkFig16DCQCNWorkloads(b *testing.B) {
	for _, wl := range []string{"hadoop", "websearch"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			var res *exp.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCDCQCN, wl)
				cfg.K = 4
				cfg.MaxFlows = 400
				cfg.Horizon = 20 * units.Millisecond
				cfg.Seed = benchSeed
				res, _, _ = exp.FatTreeComparison(cfg, exp.CCDCQCN, exp.CCDCQCNTCD)
			}
			b.ReportMetric(res.Scalars["p50_improvement"], "p50-improvement")
			b.ReportMetric(res.Scalars["p99_improvement"], "p99-improvement")
		})
	}
}

// Fig 17: IB CC vs IB CC+TCD — victim MCT plus the MPI/IO fat-tree.
func BenchmarkFig17IBCC(b *testing.B) {
	b.Run("victims", func(b *testing.B) {
		var res *exp.Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, _, _ = exp.VictimFCT(exp.IB, exp.CCIBCC, exp.CCIBCCTCD, 15*units.Millisecond, benchSeed)
		}
		b.ReportMetric(res.Scalars["speedup"], "victim-MCT-speedup")
	})
	b.Run("mpiio", func(b *testing.B) {
		var res *exp.Result
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := exp.DefaultFatTreeConfig(exp.IB, exp.DetBaseline, exp.CCIBCC, "mpiio")
			cfg.K = 4
			cfg.MaxFlows = 400
			cfg.Horizon = 20 * units.Millisecond
			cfg.Seed = benchSeed
			res, _, _ = exp.FatTreeComparison(cfg, exp.CCIBCC, exp.CCIBCCTCD)
		}
		b.ReportMetric(res.Scalars["mct_improvement"], "MCT-improvement")
	})
}

// Fig 18: TIMELY vs TIMELY+TCD on victim flows.
func BenchmarkFig18TIMELYVictims(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, _ = exp.VictimFCT(exp.CEE, exp.CCTIMELY, exp.CCTIMELYTCD, 15*units.Millisecond, benchSeed)
	}
	b.ReportMetric(res.Scalars["speedup"], "victim-FCT-speedup")
}

// Fig 19: fat-tree FCT slowdown, TIMELY vs TIMELY+TCD.
func BenchmarkFig19TIMELYWorkloads(b *testing.B) {
	for _, wl := range []string{"hadoop", "websearch"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			var res *exp.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCTIMELY, wl)
				cfg.K = 4
				cfg.MaxFlows = 400
				cfg.Horizon = 20 * units.Millisecond
				cfg.Seed = benchSeed
				res, _, _ = exp.FatTreeComparison(cfg, exp.CCTIMELY, exp.CCTIMELYTCD)
			}
			b.ReportMetric(res.Scalars["p50_improvement"], "p50-improvement")
		})
	}
}

// Fig 20: fairness of the ternary rate-adjustment rules.
func BenchmarkFig20Fairness(b *testing.B) {
	for _, cc := range []exp.CCKind{exp.CCDCQCNTCD, exp.CCTIMELYTCD} {
		cc := cc
		b.Run(cc.String(), func(b *testing.B) {
			var res *exp.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := exp.DefaultFairnessConfig(exp.CEE, cc)
				cfg.Horizon = 30 * units.Millisecond
				res = exp.Fairness(cfg)
			}
			b.ReportMetric(res.Scalars["jain_index"], "jain")
			b.ReportMetric(res.Scalars["sum_steady_gbps"], "sum-Gbps")
		})
	}
}

// Ablations of the design choices DESIGN.md calls out.
func BenchmarkAblationDetectors(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = exp.AblationDetectors(exp.IB, 12*units.Millisecond, benchSeed)
	}
	b.ReportMetric(res.Scalars["baseline_victim_ce_frac"], "fecn-frac")
	b.ReportMetric(res.Scalars["np-ecn_victim_ce_frac"], "npecn-frac")
	b.ReportMetric(res.Scalars["tcd_victim_ce_frac"], "tcd-frac")
	b.ReportMetric(res.Scalars["tcd-adaptive_victim_ce_frac"], "adaptive-frac")
}

func BenchmarkAblationNotificationRules(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = exp.AblationNotification(12*units.Millisecond, benchSeed)
	}
	b.ReportMetric(res.Scalars["detector-only_mean_fct_us"], "detector-only-us")
	b.ReportMetric(res.Scalars["full-tcd-rules_mean_fct_us"], "full-rules-us")
}

func BenchmarkAblationTrendSlack(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res = exp.AblationTrendSlack(12*units.Millisecond, benchSeed)
	}
	b.ReportMetric(res.Scalars["slack=1B victim_ce_flows"], "falseCE-slack1B")
	b.ReportMetric(res.Scalars["slack=4KB victim_ce_flows"], "falseCE-slack4KB")
}

// §4.5 multi-priority validation.
func BenchmarkMultiPriority(b *testing.B) {
	var res *exp.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := exp.DefaultMultiPrioConfig()
		cfg.Seed = benchSeed
		res = exp.MultiPrio(cfg)
	}
	b.ReportMetric(res.Scalars["victim_ce"], "victim-CE")
	b.ReportMetric(res.Scalars["victim_ue"], "victim-UE")
}

// Observability overhead: the same fig3-scale run with tracing disabled
// (nil Recorder — the default for every experiment) versus recording into
// a ring. The disabled path must stay negligible: emission sites are
// nil-guarded interface fields and obs.Event is a flat value struct.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, oc obs.Config) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := exp.DefaultObserveConfig(exp.CEE, exp.DetTCD, false)
			cfg.Horizon = 5 * units.Millisecond
			cfg.BurstRounds = 10
			cfg.Seed = benchSeed
			cfg.Obs = oc
			exp.Observe(cfg)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, obs.Config{}) })
	b.Run("ring", func(b *testing.B) {
		ring := obs.NewRing(0)
		run(b, obs.Config{Rec: ring})
		b.ReportMetric(float64(ring.Len()), "events-buffered")
	})
}
