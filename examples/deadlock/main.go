// Deadlock demonstrates the other pathology of hop-by-hop flow control
// that the paper's related work studies: a cyclic buffer dependency.
// Three switches in a ring route three flows one hop "around the bend";
// under PFC each switch waits for buffer space at the next, forming a
// cycle that can never drain. The fabric's stranded-traffic watchdog
// calls it out.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

func main() {
	rate := 40 * units.Gbps
	delay := units.Microsecond

	// Ring: s0 -> s1 -> s2 -> s0, one host on each switch.
	g := topo.New()
	var sw [3]packet.NodeID
	var h [3]packet.NodeID
	for i := 0; i < 3; i++ {
		sw[i] = g.AddSwitch(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < 3; i++ {
		h[i] = g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(h[i], sw[i], rate, delay)
	}
	for i := 0; i < 3; i++ {
		g.Connect(sw[i], sw[(i+1)%3], rate, delay)
	}

	s := sim.New()
	n := fabric.New(s, g, fabric.DefaultConfig())
	// Deliberately cyclic routing: every flow from h[i] targets the host
	// two hops clockwise, always forwarded clockwise — so every inter-
	// switch link carries two flows' worth of transit traffic and the
	// buffer dependencies form a loop.
	n.Route = func(at packet.NodeID, pkt *packet.Packet) *fabric.Port {
		for i := 0; i < 3; i++ {
			if at == sw[i] {
				if pkt.Dst == h[i] {
					return n.PortToward(at, pkt.Dst)
				}
				return n.PortToward(at, sw[(i+1)%3])
			}
		}
		panic("unroutable")
	}
	// Tiny PFC thresholds make the cycle close quickly.
	pfc.Install(n, pfc.Config{Xoff: 20 * units.KB, Xon: 18 * units.KB, Headroom: 20 * units.KB})

	mgr := host.Install(n, host.DefaultConfig())
	var flows []*host.Flow
	for i := 0; i < 3; i++ {
		f := mgr.AddFlow(h[i], h[(i+2)%3], 2*units.MB, 0, host.FixedRate(rate))
		flows = append(flows, f)
	}

	s.RunUntil(50 * units.Millisecond)

	done := 0
	for i, f := range flows {
		fmt.Printf("flow h%d -> %s: done=%v delivered=%v\n",
			i, g.Name(f.Dst), f.Done, f.BytesRxed())
		if f.Done {
			done++
		}
	}
	rep := n.Stranded()
	fmt.Printf("\nstranded: %v across %d ports (%d flow-control blocked)\n",
		rep.Bytes, len(rep.Ports), rep.Blocked)
	if rep.Deadlocked() {
		fmt.Println("DEADLOCK: every stranded port is waiting on PAUSE —")
		fmt.Println("a cyclic buffer dependency, the failure mode that makes")
		fmt.Println("up-down (loop-free) routing mandatory in lossless fabrics.")
	} else if done == len(flows) {
		fmt.Println("no deadlock (routing was loop-free)")
	}
}
