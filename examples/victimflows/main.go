// Victimflows reproduces the paper's Table 3 story interactively: in the
// Figure-2 scenario with 20 Gbps edges, flows from S0 only ever cross
// ports that are paused by congestion spreading — they are victims, not
// culprits — yet ECN (CEE) and FECN (InfiniBand) mark a substantial
// fraction of them as congested. TCD marks none.
//
//	go run ./examples/victimflows [-horizon 30ms]
package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/units"
)

func main() {
	horizon := flag.Duration("horizon", 30*time.Millisecond, "simulated time")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	h := units.Time(horizon.Nanoseconds()) * units.Nanosecond
	fmt.Printf("victim-flow scenario, horizon %v\n\n", h)

	res, rows := exp.Table3(h, *seed)
	fmt.Println("Table 3 — victim flows mistakenly marked with CE:")
	fmt.Printf("  %-12s %s\n", "Scheme", "Fraction")
	for _, r := range rows {
		fmt.Printf("  %-12s %6.1f%%\n", r.Scheme, 100*r.Fraction)
	}
	fmt.Println()
	for _, n := range res.Notes {
		fmt.Println(" ", n)
	}
	fmt.Println("\npaper's reference values: ECN 26.6%, TCD 0%, FECN 13.5%, TCD 0%")
	fmt.Println("(magnitudes depend on the burst regime; the invariant is that")
	fmt.Println(" both baselines mismark victims and TCD marks none)")
}
