// Fattree runs the realistic-workload comparison (the paper's Fig 16
// family) on a k-ary fat-tree: a heavy-tailed workload at 60% load under
// stock DCQCN versus DCQCN combined with TCD, reporting FCT-slowdown
// percentiles by flow size.
//
//	go run ./examples/fattree -k 6 -flows 4000 -workload hadoop
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/rng"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
	"github.com/tcdnet/tcd/internal/workload"
)

func main() {
	k := flag.Int("k", 6, "fat-tree arity (k=10 is the paper's 250-host network)")
	flows := flag.Int("flows", 4000, "number of flows to generate")
	wl := flag.String("workload", "hadoop", "hadoop, websearch, or mpiio")
	load := flag.Float64("load", 0.6, "average access-link load")
	horizon := flag.Duration("horizon", 40*time.Millisecond, "simulated time")
	seed := flag.Uint64("seed", 1, "random seed")
	dumpTrace := flag.String("dumptrace", "", "write the generated workload as a CSV trace to this file and exit")
	trace := flag.String("trace", "", "replay flows from this CSV trace instead of generating a workload")
	flag.Parse()

	if *dumpTrace != "" {
		ft := topo.NewFatTree(*k, 40*units.Gbps, 4*units.Microsecond)
		flows := workload.Poisson(rng.New(*seed+31), workload.PoissonConfig{
			Hosts:      ft.HostList,
			CDF:        workload.Hadoop(),
			Load:       *load,
			AccessRate: 40 * units.Gbps,
			Horizon:    units.Time(horizon.Nanoseconds()) * units.Nanosecond / 2,
			MaxFlows:   *flows,
		})
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, flows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d flows to %s (replayable with workload.ReadTrace)\n", len(flows), *dumpTrace)
		return
	}

	base := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCDCQCN, *wl)
	base.K = *k
	base.MaxFlows = *flows
	base.Load = *load
	base.Horizon = units.Time(horizon.Nanoseconds()) * units.Nanosecond
	base.Seed = *seed
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		replay, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		base.Trace = replay
		fmt.Printf("replaying %d flows from %s\n", len(replay), *trace)
	}

	fmt.Printf("fat-tree k=%d (%d hosts), %s workload at %.0f%% load, %d flows\n\n",
		*k, (*k)*(*k)*(*k)/4, *wl, 100**load, *flows)

	start := time.Now()
	res, stock, tcd := exp.FatTreeComparison(base, exp.CCDCQCN, exp.CCDCQCNTCD)
	fmt.Print(res.Render())
	fmt.Printf("\nstock completed %d/%d, tcd completed %d/%d (wall %v)\n",
		stock.Completed, stock.Generated, tcd.Completed, tcd.Generated,
		time.Since(start).Round(time.Millisecond))
}
