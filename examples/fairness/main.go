// Fairness runs the paper's Fig 20 study: four long-lived flows cross a
// port that is first a victim of congestion spreading (undetermined: TCD
// holds their rates) and later a genuine congestion point (congestion:
// they converge toward the 8 Gbps fair share of the 40 Gbps port).
//
//	go run ./examples/fairness -cc timely [-horizon 60ms]
package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/units"
)

func main() {
	cc := flag.String("cc", "timely", "controller: dcqcn or timely (TCD variants)")
	horizon := flag.Duration("horizon", 60*time.Millisecond, "simulated time")
	flag.Parse()

	kind := exp.CCTIMELYTCD
	if *cc == "dcqcn" {
		kind = exp.CCDCQCNTCD
	}
	cfg := exp.DefaultFairnessConfig(exp.CEE, kind)
	cfg.Horizon = units.Time(horizon.Nanoseconds()) * units.Nanosecond

	res := exp.Fairness(cfg)
	fmt.Printf("fairness with %s over %v\n\n", kind, cfg.Horizon)
	fmt.Printf("burst era ends at %.2f ms; steady-state goodput of B0..B3:\n",
		res.Scalars["burst_end_ms"])
	for i := 0; i < 4; i++ {
		fmt.Printf("  B%d: %6.2f Gbps\n", i, res.Scalars[fmt.Sprintf("b%d_steady_gbps", i)])
	}
	fmt.Printf("\nJain fairness index: %.4f (1.0 = perfectly fair)\n", res.Scalars["jain_index"])
	fmt.Printf("aggregate: %.1f Gbps on the 40 Gbps port (F1 takes the rest)\n",
		res.Scalars["sum_steady_gbps"])
	fmt.Printf("UE marks at the shared port during the spreading era: %.0f\n",
		res.Scalars["p2_ue_marks"])

	// A coarse convergence timeline from the collected series.
	fmt.Println("\nB0 goodput timeline:")
	s := res.Series["b0_gbps"]
	step := len(s.T) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(s.T); i += step {
		fmt.Printf("  %8.2fms %6.2f Gbps\n", s.T[i].Millis(), s.V[i])
	}
}
