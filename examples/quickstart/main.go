// Quickstart: build a tiny lossless Ethernet by hand, attach a TCD
// detector to the bottleneck port, run an incast, and watch the ternary
// state machine move through undetermined and congestion states.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/host"
	"github.com/tcdnet/tcd/internal/packet"
	"github.com/tcdnet/tcd/internal/pfc"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/sim"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

func main() {
	// 1. Topology: two senders, one receiver, one switch, 40G links.
	g := topo.New()
	sw := g.AddSwitch("sw")
	a := g.AddHost("a")
	b := g.AddHost("b")
	r := g.AddHost("r")
	rate := 40 * units.Gbps
	for _, h := range []packet.NodeID{a, b, r} {
		g.Connect(h, sw, rate, units.Microsecond)
	}

	// 2. Dataplane: event scheduler, fabric, shortest-path routing, PFC.
	sched := sim.New()
	net := fabric.New(sched, g, fabric.DefaultConfig())
	routing.BuildShortestPath(g).Attach(net, routing.FirstPath())
	pfc.Install(net, pfc.Config{Xoff: 50 * units.KB, Xon: 48 * units.KB, Headroom: 50 * units.KB})

	// 3. TCD on the bottleneck egress (switch -> r), parameterized from
	// the paper's analytic model (Eqn 3).
	bottleneck := net.PortToward(sw, r)
	params := core.CEEParams(1000, rate, units.Microsecond)
	det := core.NewTCD(core.TCDConfig{
		MaxTon:     core.MaxTonCEE(params, core.RecommendedEps),
		CongThresh: 30 * units.KB,
		LowThresh:  5 * units.KB,
	})
	det.RecordTransitions = true
	bottleneck.AttachDetector(0, det)
	fmt.Printf("max(Ton) from the ON-OFF model: %v\n\n", det.Config().MaxTon)

	// 4. Endpoints and traffic: a 2:1 incast of 400 KB each.
	mgr := host.Install(net, host.DefaultConfig())
	fa := mgr.AddFlow(a, r, 400*units.KB, 0, host.FixedRate(rate))
	fb := mgr.AddFlow(b, r, 400*units.KB, 0, host.FixedRate(rate))

	// 5. Watch the detector while the run progresses.
	for t := units.Time(0); t <= 300*units.Microsecond; t += 30 * units.Microsecond {
		t := t
		sched.At(t, func() {
			fmt.Printf("t=%-8v state=%-14v queue=%-8v paused=%v\n",
				t, det.State(), bottleneck.TotalQueueBytes(), bottleneck.Blocked(0))
		})
	}
	sched.Run()

	fmt.Println("\ntransitions:")
	for _, tr := range det.Transitions {
		fmt.Printf("  %-10v %v -> %v\n", tr.At, tr.From, tr.To)
	}
	fmt.Printf("\nflow a: done=%v fct=%v ce=%d ue=%d\n", fa.Done, fa.FCT, fa.CEPackets(), fa.UEPackets())
	fmt.Printf("flow b: done=%v fct=%v ce=%d ue=%d\n", fb.Done, fb.FCT, fb.CEPackets(), fb.UEPackets())
	fmt.Printf("bottleneck marked: CE=%d UE=%d\n", bottleneck.MarkedCE, bottleneck.MarkedUE)
}
