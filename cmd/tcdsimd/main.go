// Command tcdsimd serves the TCD simulator as a long-running daemon:
// clients POST experiment specs to /v1/jobs, poll job status, stream
// live progress over SSE, and fetch deterministic result JSON — with a
// spec-hash result cache making repeat submissions byte-identical
// cache hits. See DESIGN.md "Simulation as a service".
//
// Usage:
//
//	tcdsimd [-addr :9322] [-workers N] [-queue N] [-cache-entries N]
//
// The daemon drains in-flight jobs on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tcdnet/tcd/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9322", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue capacity (0 = default 64)")
	cacheEntries := flag.Int("cache-entries", 0, "completed results kept in the cache (0 = default 1024)")
	drain := flag.Duration("drain", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueCap:     *queue,
		CacheEntries: *cacheEntries,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tcdsimd: listening on %s (%d workers)\n", *addr, srv.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tcdsimd: %v — draining (max %v)\n", s, *drain)
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "tcdsimd:", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "tcdsimd: http shutdown:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tcdsimd: drain incomplete:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tcdsimd: clean shutdown")
}
