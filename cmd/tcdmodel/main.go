// Command tcdmodel explores the paper's conceptual ON-OFF model without
// running a simulation: the Fig 8 surface, the §4.3 max(Ton) table, and a
// calculator for arbitrary deployments.
//
// Usage:
//
//	tcdmodel                         # Fig 8 surface + §4.3 table
//	tcdmodel -rate 100e9 -eps 0.05   # max(Ton) for one deployment
//	tcdmodel -ib -tc 40us            # InfiniBand bound
package main

import (
	"flag"
	"fmt"
	"time"

	"github.com/tcdnet/tcd/internal/core"
	"github.com/tcdnet/tcd/internal/units"
)

func main() {
	var (
		rate = flag.Float64("rate", 0, "link rate in bits/s (e.g. 40e9); 0 prints the standard tables")
		eps  = flag.Float64("eps", core.RecommendedEps, "congestion degree")
		mtu  = flag.Int64("mtu", 1000, "MTU in bytes")
		tp   = flag.Duration("tp", time.Microsecond, "one-way propagation delay")
		ib   = flag.Bool("ib", false, "compute the InfiniBand bound instead (max(Ton) = Tc)")
		tc   = flag.Duration("tc", 40*time.Microsecond, "CBFC credit update period (with -ib)")
	)
	flag.Parse()

	if *ib {
		tcT := units.Time(tc.Nanoseconds()) * units.Nanosecond
		fmt.Printf("InfiniBand: max(Ton) = Tc = %v\n", core.MaxTonIB(tcT))
		fmt.Printf("example Ton at Rd=C/2, eps=%.2g: %v\n",
			*eps, core.TonIB(units.Rate(*rate)/2, tcT, *eps, units.Rate(*rate)))
		return
	}

	if *rate > 0 {
		p := core.CEEParams(units.ByteSize(*mtu), units.Rate(*rate),
			units.Time(tp.Nanoseconds())*units.Nanosecond)
		fmt.Printf("CEE deployment: C=%v MTU=%dB tp=%v eps=%.3g\n",
			units.Rate(*rate), *mtu, *tp, *eps)
		fmt.Printf("  tau      = %v\n", p.Tau)
		fmt.Printf("  max(Ton) = %v\n", core.MaxTonCEE(p, *eps))
		return
	}

	fmt.Println("== §4.3 max(Ton) table (eps=0.05, MTU=1000B, tp=1us) ==")
	for _, c := range []units.Rate{40 * units.Gbps, 100 * units.Gbps, 200 * units.Gbps} {
		p := core.CEEParams(1000, c, units.Microsecond)
		fmt.Printf("  %8v: tau=%-8v max(Ton)=%v\n", c, p.Tau, core.MaxTonCEE(p, core.RecommendedEps))
	}

	fmt.Println("\n== Fig 8: Ton(eps, Rd) at tau=8us, C=40Gbps ==")
	p := core.ModelParams{C: 40 * units.Gbps, B1MinusB0: 2 * units.KB, Tau: 8 * units.Microsecond}
	epsGrid := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	rdGrid := []units.Rate{2 * units.Gbps, 5 * units.Gbps, 10 * units.Gbps, 15 * units.Gbps, 20 * units.Gbps}
	fmt.Printf("%8s", "eps\\Rd")
	for _, rd := range rdGrid {
		fmt.Printf("%12v", rd)
	}
	fmt.Println()
	for _, e := range epsGrid {
		fmt.Printf("%8.2f", e)
		for _, rd := range rdGrid {
			fmt.Printf("%12v", core.Ton(p, rd, e))
		}
		fmt.Println()
	}
	fmt.Printf("\nflat plane (max(Ton) at eps=%.2f): %v\n",
		core.RecommendedEps, core.MaxTonCEE(p, core.RecommendedEps))
}
