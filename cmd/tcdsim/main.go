// Command tcdsim runs the paper's experiments on the simulator and
// prints the rows/series each table or figure reports.
//
// Usage:
//
//	tcdsim -list
//	tcdsim -exp fig3 -fabric cee
//	tcdsim -exp table3 -horizon 60ms
//	tcdsim -exp fig16 -k 10 -flows 40000 -workload hadoop -full
//	tcdsim -exp fig12 -series P2_queue
//
// Experiments run at a laptop-friendly scale by default; -full raises
// the paper-scale parameters (k=10/16 fat-trees, tens of thousands of
// flows) at the cost of minutes of wall time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/units"
)

type options struct {
	fabric   exp.FabricKind
	seed     uint64
	horizon  units.Time
	full     bool
	k        int
	flows    int
	workload string
	series   string
	voq      bool
	runs     int
	obs      obs.Config
}

// progressObs strips the trace/metrics sinks, keeping only progress
// reporting. Comparison experiments run several simulations back to back;
// funneling them into one ring or registry would interleave events from
// different runs, so those experiments get progress only.
func (o options) progressObs() obs.Config {
	return obs.Config{ProgressEvery: o.obs.ProgressEvery, ProgressOut: o.obs.ProgressOut}
}

type runner struct {
	name string
	desc string
	run  func(o options) []*exp.Result
}

func runners() []runner {
	return []runner{
		{"fig3", "single congestion point, baseline detectors (ECN/FECN)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetBaseline, false)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyArch(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig4", "multiple congestion points, baseline detectors", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetBaseline, true)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyArch(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig8", "conceptual ON-OFF model surface Ton(eps, Rd)", func(o options) []*exp.Result {
			return []*exp.Result{exp.Fig8(), exp.Section43Table()}
		}},
		{"fig11", "testbed marking staircase (UE/CE fractions over time)", func(o options) []*exp.Result {
			cfg := exp.DefaultTestbedConfig(o.fabric)
			cfg.Seed = o.seed
			applyHorizon(&cfg.Horizon, o)
			if o.full {
				cfg.Horizon = 400 * units.Millisecond
				cfg.Bin = 20 * units.Millisecond
			}
			return []*exp.Result{exp.Testbed(cfg)}
		}},
		{"fig12", "single congestion point with TCD (und -> non-congestion)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetTCD, false)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyArch(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig13", "multiple congestion points with TCD (und -> congestion)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetTCD, true)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyArch(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"table3", "victim flows marked CE under ECN/FECN/TCD", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 120 * units.Millisecond
			}
			if o.runs <= 1 {
				res, _ := exp.Table3(h, o.seed)
				return []*exp.Result{res}
			}
			// Seed sweep: report min/mean/max per scheme to expose the
			// regime noise EXPERIMENTS.md documents.
			agg := exp.NewResult(fmt.Sprintf("table3-sweep-%d-seeds", o.runs))
			sums := map[string][]float64{}
			for i := 0; i < o.runs; i++ {
				_, rows := exp.Table3(h, o.seed+uint64(i))
				for _, r := range rows {
					sums[r.Scheme] = append(sums[r.Scheme], r.Fraction)
				}
			}
			for scheme, vals := range sums {
				lo, hi, sum := vals[0], vals[0], 0.0
				for _, v := range vals {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
					sum += v
				}
				agg.Scalars[scheme+" mean"] = sum / float64(len(vals))
				agg.AddNote("%-10s min=%.3f mean=%.3f max=%.3f over %d seeds",
					scheme, lo, sum/float64(len(vals)), hi, o.runs)
			}
			return []*exp.Result{agg}
		}},
		{"fig14", "sensitivity of the TCD parameter eps", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 60 * units.Millisecond
			}
			res, _ := exp.Fig14(o.fabric, h, o.seed)
			return []*exp.Result{res}
		}},
		{"fig15", "DCQCN vs DCQCN+TCD: victim FCT and burst-size sweep", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.CEE, exp.CCDCQCN, exp.CCDCQCNTCD, h, o.seed)
			sizes := []units.ByteSize{32 * units.KB, 64 * units.KB, 128 * units.KB, 250 * units.KB, 500 * units.KB}
			r2, _ := exp.VictimBurstSweep(exp.CEE, exp.CCDCQCN, exp.CCDCQCNTCD, sizes, h, o.seed)
			return []*exp.Result{r1, r2}
		}},
		{"fig16", "fat-tree FCT slowdown: DCQCN vs DCQCN+TCD", func(o options) []*exp.Result {
			base := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCDCQCN, o.workload)
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 10, 40000)
			res, _, _ := exp.FatTreeComparison(base, exp.CCDCQCN, exp.CCDCQCNTCD)
			return []*exp.Result{res}
		}},
		{"fig17", "IB CC vs IB CC+TCD: victim MCT and MPI/IO fat-tree", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.IB, exp.CCIBCC, exp.CCIBCCTCD, h, o.seed)
			base := exp.DefaultFatTreeConfig(exp.IB, exp.DetBaseline, exp.CCIBCC, "mpiio")
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 16, 80000)
			r2, _, _ := exp.FatTreeComparison(base, exp.CCIBCC, exp.CCIBCCTCD)
			return []*exp.Result{r1, r2}
		}},
		{"fig18", "TIMELY vs TIMELY+TCD: victim FCT and burst-size sweep", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.CEE, exp.CCTIMELY, exp.CCTIMELYTCD, h, o.seed)
			sizes := []units.ByteSize{32 * units.KB, 64 * units.KB, 128 * units.KB, 250 * units.KB, 500 * units.KB}
			r2, _ := exp.VictimBurstSweep(exp.CEE, exp.CCTIMELY, exp.CCTIMELYTCD, sizes, h, o.seed)
			return []*exp.Result{r1, r2}
		}},
		{"fig19", "fat-tree FCT slowdown: TIMELY vs TIMELY+TCD", func(o options) []*exp.Result {
			base := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCTIMELY, o.workload)
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 10, 40000)
			res, _, _ := exp.FatTreeComparison(base, exp.CCTIMELY, exp.CCTIMELYTCD)
			return []*exp.Result{res}
		}},
		{"multiprio", "§4.5: strict-priority preemption does not disturb TCD", func(o options) []*exp.Result {
			cfg := exp.DefaultMultiPrioConfig()
			cfg.Seed = o.seed
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.MultiPrio(cfg)}
		}},
		{"ablation", "design-choice ablations: detectors, notification rules, trend slack", func(o options) []*exp.Result {
			h := o.horizon
			if h == 0 {
				h = 20 * units.Millisecond
			}
			return []*exp.Result{
				exp.AblationDetectors(o.fabric, h, o.seed),
				exp.AblationNotification(h, o.seed),
				exp.AblationTrendSlack(h, o.seed),
				exp.AblationSwitchArch(8*units.Millisecond, o.seed),
			}
		}},
		{"fig20", "fairness of the TCD rate-adjustment rules", func(o options) []*exp.Result {
			var out []*exp.Result
			for _, cc := range []exp.CCKind{exp.CCDCQCNTCD, exp.CCTIMELYTCD} {
				cfg := exp.DefaultFairnessConfig(o.fabric, cc)
				cfg.Seed = o.seed
				applyHorizon(&cfg.Horizon, o)
				if o.full {
					cfg.Horizon = 400 * units.Millisecond
				}
				out = append(out, exp.Fairness(cfg))
			}
			return out
		}},
	}
}

func applyHorizon(dst *units.Time, o options) {
	if o.horizon > 0 {
		*dst = o.horizon
	}
}

func applyArch(cfg *exp.ObserveConfig, o options) {
	if o.voq {
		cfg.Arch = fabric.InputQueuedVoQ
	}
}

func tuneFatTree(cfg *exp.FatTreeConfig, o options, fullK, fullFlows int) {
	cfg.Seed = o.seed
	cfg.K = 6
	cfg.MaxFlows = 4000
	cfg.Horizon = 40 * units.Millisecond
	if o.full {
		cfg.K = fullK
		cfg.MaxFlows = fullFlows
		cfg.Horizon = 100 * units.Millisecond
	}
	if o.k > 0 {
		cfg.K = o.k
	}
	if o.flows > 0 {
		cfg.MaxFlows = o.flows
	}
	applyHorizon(&cfg.Horizon, o)
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		name     = flag.String("exp", "", "experiment to run (see -list)")
		fabric   = flag.String("fabric", "cee", "fabric kind: cee or ib")
		seed     = flag.Uint64("seed", 1, "random seed")
		horizon  = flag.Duration("horizon", 0, "simulation horizon override (e.g. 60ms)")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		k        = flag.Int("k", 0, "fat-tree arity override")
		flows    = flag.Int("flows", 0, "flow-count override")
		workload = flag.String("workload", "hadoop", "fat-tree workload: hadoop, websearch, mpiio")
		series   = flag.String("series", "", "also dump this time series (name as shown in output)")
		csvdir   = flag.String("csvdir", "", "write every collected series as CSV files into this directory")
		arch     = flag.String("arch", "oq", "switch architecture for observation runs: oq or voq")
		runs     = flag.Int("runs", 1, "repeat the experiment over this many seeds and summarize (table3 only)")

		traceOut   = flag.String("trace-out", "", "write the structured event trace as JSONL to this file (observation experiments)")
		traceCap   = flag.Int("trace-cap", obs.DefaultRingCap, "event-trace ring capacity; oldest events drop beyond it")
		metricsOut = flag.String("metrics-out", "", "write the labeled metrics registry as JSON to this file")
		progress   = flag.Bool("progress", false, "print sim-vs-wall progress lines to stderr during the run")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		jsonOut    = flag.String("json", "", `serialize results as JSON to this file ("-" for stdout)`)
	)
	flag.Parse()

	rs := runners()
	if *list || *name == "" {
		fmt.Println("experiments:")
		for _, r := range rs {
			fmt.Printf("  %-8s %s\n", r.name, r.desc)
		}
		if *name == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := options{
		seed:     *seed,
		full:     *full,
		k:        *k,
		flows:    *flows,
		workload: *workload,
		series:   *series,
		voq:      strings.EqualFold(*arch, "voq"),
		runs:     *runs,
	}
	switch strings.ToLower(*fabric) {
	case "cee":
		o.fabric = exp.CEE
	case "ib":
		o.fabric = exp.IB
	default:
		fmt.Fprintf(os.Stderr, "unknown fabric %q\n", *fabric)
		os.Exit(2)
	}
	if *horizon > 0 {
		o.horizon = units.Time(horizon.Nanoseconds()) * units.Nanosecond
	}

	var ring *obs.Ring
	if *traceOut != "" {
		ring = obs.NewRing(*traceCap)
		o.obs.Rec = ring
	}
	if *metricsOut != "" {
		o.obs.Metrics = obs.NewRegistry()
	}
	if *progress {
		o.obs.ProgressEvery = units.Millisecond
		o.obs.ProgressOut = os.Stderr
	}
	stopProfile := func() {}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfile = stop
	}

	var chosen *runner
	for i := range rs {
		if rs[i].name == strings.ToLower(*name) {
			chosen = &rs[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *name)
		os.Exit(2)
	}

	start := time.Now()
	results := chosen.run(o)
	stopProfile()
	quiet := *jsonOut == "-" // keep stdout valid JSON
	for _, res := range results {
		if !quiet {
			fmt.Print(res.Render())
		}
		if *csvdir != "" {
			if err := res.WriteSeries(*csvdir); err != nil {
				fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
				os.Exit(1)
			}
		}
		if o.series != "" {
			if s, ok := res.Series[o.series]; ok {
				fmt.Print(s.Render())
			} else if len(res.Series) > 0 {
				names := make([]string, 0, len(res.Series))
				for n := range res.Series {
					names = append(names, n)
				}
				sort.Strings(names)
				fmt.Fprintf(os.Stderr, "series %q not found; available: %s\n", o.series, strings.Join(names, ", "))
			}
		}
	}

	if ring != nil {
		if err := exportFile(*traceOut, ring.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		if n := ring.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring overflowed, oldest %d events dropped (raise -trace-cap)\n", n)
		}
	}
	if o.obs.Metrics != nil {
		if err := exportFile(*metricsOut, o.obs.Metrics.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "metrics export: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := exportResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "json export: %v\n", err)
			os.Exit(1)
		}
	}

	out := os.Stdout
	if quiet {
		out = os.Stderr
	}
	fmt.Fprintf(out, "(%s, wall %v)\n", chosen.name, time.Since(start).Round(time.Millisecond))
}

// exportFile writes via fn into path, creating it.
func exportFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportResults serializes results to path ("-" = stdout): a single
// object for one result, a JSON array otherwise.
func exportResults(path string, results []*exp.Result) error {
	write := func(w io.Writer) error {
		if len(results) == 1 {
			return results[0].WriteJSON(w)
		}
		if _, err := io.WriteString(w, "[\n"); err != nil {
			return err
		}
		for i, r := range results {
			if i > 0 {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "]\n")
		return err
	}
	if path == "-" {
		return write(os.Stdout)
	}
	return exportFile(path, write)
}
