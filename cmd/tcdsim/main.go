// Command tcdsim runs the paper's experiments on the simulator and
// prints the rows/series each table or figure reports.
//
// Usage:
//
//	tcdsim -list
//	tcdsim -exp fig3 -fabric cee
//	tcdsim -exp table3 -horizon 60ms
//	tcdsim -exp fig16 -k 10 -flows 40000 -workload hadoop -full
//	tcdsim -exp fig12 -series P2_queue
//
// Experiments run at a laptop-friendly scale by default; -full raises
// the paper-scale parameters (k=10/16 fat-trees, tens of thousands of
// flows) at the cost of minutes of wall time.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/tcdnet/tcd/internal/bench"
	"github.com/tcdnet/tcd/internal/exp"
	"github.com/tcdnet/tcd/internal/exp/sweep"
	"github.com/tcdnet/tcd/internal/fabric"
	"github.com/tcdnet/tcd/internal/fault"
	"github.com/tcdnet/tcd/internal/obs"
	"github.com/tcdnet/tcd/internal/routing"
	"github.com/tcdnet/tcd/internal/topo"
	"github.com/tcdnet/tcd/internal/units"
)

type options struct {
	fabric    exp.FabricKind
	seed      uint64
	horizon   units.Time
	full      bool
	k         int
	flows     int
	workload  string
	series    string
	voq       bool
	runs      int
	routeCap  int
	obs       obs.Config
	faults    *fault.Spec
	battery   string // -adversarial: battery spec path ("" = embedded default)
	oracleOut string // -oracle-out: oracle report destination
}

// progressObs strips the trace/metrics sinks, keeping only progress
// reporting. Comparison experiments run several simulations back to back;
// funneling them into one ring or registry would interleave events from
// different runs, so those experiments get progress only.
func (o options) progressObs() obs.Config {
	return obs.Config{ProgressEvery: o.obs.ProgressEvery, ProgressOut: o.obs.ProgressOut}
}

type runner struct {
	name string
	desc string
	run  func(o options) []*exp.Result
}

func runners() []runner {
	return []runner{
		{"fig3", "single congestion point, baseline detectors (ECN/FECN)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetBaseline, false)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyObserve(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig4", "multiple congestion points, baseline detectors", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetBaseline, true)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyObserve(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig8", "conceptual ON-OFF model surface Ton(eps, Rd)", func(o options) []*exp.Result {
			return []*exp.Result{exp.Fig8(), exp.Section43Table()}
		}},
		{"fig11", "testbed marking staircase (UE/CE fractions over time)", func(o options) []*exp.Result {
			cfg := exp.DefaultTestbedConfig(o.fabric)
			cfg.Seed = o.seed
			applyHorizon(&cfg.Horizon, o)
			if o.full {
				cfg.Horizon = 400 * units.Millisecond
				cfg.Bin = 20 * units.Millisecond
			}
			return []*exp.Result{exp.Testbed(cfg)}
		}},
		{"fig12", "single congestion point with TCD (und -> non-congestion)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetTCD, false)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyObserve(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"fig13", "multiple congestion points with TCD (und -> congestion)", func(o options) []*exp.Result {
			cfg := exp.DefaultObserveConfig(o.fabric, exp.DetTCD, true)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyObserve(&cfg, o)
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.Observe(cfg)}
		}},
		{"table3", "victim flows marked CE under ECN/FECN/TCD", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 120 * units.Millisecond
			}
			// Multi-seed repetition (-runs) is handled by the sweep engine,
			// which folds min/mean/max/percentiles per scheme across seeds.
			res, _ := exp.Table3(h, o.seed)
			return []*exp.Result{res}
		}},
		{"fig14", "sensitivity of the TCD parameter eps", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 60 * units.Millisecond
			}
			res, _ := exp.Fig14(o.fabric, h, o.seed)
			return []*exp.Result{res}
		}},
		{"fig15", "DCQCN vs DCQCN+TCD: victim FCT and burst-size sweep", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.CEE, exp.CCDCQCN, exp.CCDCQCNTCD, h, o.seed)
			sizes := []units.ByteSize{32 * units.KB, 64 * units.KB, 128 * units.KB, 250 * units.KB, 500 * units.KB}
			r2, _ := exp.VictimBurstSweep(exp.CEE, exp.CCDCQCN, exp.CCDCQCNTCD, sizes, h, o.seed)
			return []*exp.Result{r1, r2}
		}},
		{"fig16", "fat-tree FCT slowdown: DCQCN vs DCQCN+TCD", func(o options) []*exp.Result {
			base := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCDCQCN, o.workload)
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 10, 40000)
			res, _, _ := exp.FatTreeComparison(base, exp.CCDCQCN, exp.CCDCQCNTCD)
			return []*exp.Result{res}
		}},
		{"fig17", "IB CC vs IB CC+TCD: victim MCT and MPI/IO fat-tree", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.IB, exp.CCIBCC, exp.CCIBCCTCD, h, o.seed)
			base := exp.DefaultFatTreeConfig(exp.IB, exp.DetBaseline, exp.CCIBCC, "mpiio")
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 16, 80000)
			r2, _, _ := exp.FatTreeComparison(base, exp.CCIBCC, exp.CCIBCCTCD)
			return []*exp.Result{r1, r2}
		}},
		{"fig18", "TIMELY vs TIMELY+TCD: victim FCT and burst-size sweep", func(o options) []*exp.Result {
			h := o.horizon
			if o.full {
				h = 100 * units.Millisecond
			}
			r1, _, _ := exp.VictimFCT(exp.CEE, exp.CCTIMELY, exp.CCTIMELYTCD, h, o.seed)
			sizes := []units.ByteSize{32 * units.KB, 64 * units.KB, 128 * units.KB, 250 * units.KB, 500 * units.KB}
			r2, _ := exp.VictimBurstSweep(exp.CEE, exp.CCTIMELY, exp.CCTIMELYTCD, sizes, h, o.seed)
			return []*exp.Result{r1, r2}
		}},
		{"fig19", "fat-tree FCT slowdown: TIMELY vs TIMELY+TCD", func(o options) []*exp.Result {
			base := exp.DefaultFatTreeConfig(exp.CEE, exp.DetBaseline, exp.CCTIMELY, o.workload)
			base.Obs = o.progressObs()
			tuneFatTree(&base, o, 10, 40000)
			res, _, _ := exp.FatTreeComparison(base, exp.CCTIMELY, exp.CCTIMELYTCD)
			return []*exp.Result{res}
		}},
		{"multiprio", "§4.5: strict-priority preemption does not disturb TCD", func(o options) []*exp.Result {
			cfg := exp.DefaultMultiPrioConfig()
			cfg.Seed = o.seed
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.MultiPrio(cfg)}
		}},
		{"ablation", "design-choice ablations: detectors, notification rules, trend slack", func(o options) []*exp.Result {
			h := o.horizon
			if h == 0 {
				h = 20 * units.Millisecond
			}
			return []*exp.Result{
				exp.AblationDetectors(o.fabric, h, o.seed),
				exp.AblationNotification(h, o.seed),
				exp.AblationTrendSlack(h, o.seed),
				exp.AblationSwitchArch(8*units.Millisecond, o.seed),
			}
		}},
		{"victim-under-flap", "victim flow during a flapping link: stock detector vs TCD", func(o options) []*exp.Result {
			var out []*exp.Result
			for _, det := range []exp.DetectorKind{exp.DetBaseline, exp.DetTCD} {
				cfg := exp.DefaultVictimFlapConfig(o.fabric, det)
				cfg.Seed = o.seed
				cfg.Faults = o.faults
				// Back-to-back comparison runs cannot share trace/metrics
				// sinks, so this experiment reports progress only.
				cfg.Obs = o.progressObs()
				applyHorizon(&cfg.Horizon, o)
				out = append(out, exp.VictimUnderFlap(cfg))
			}
			return out
		}},
		{"deadlock-unit", "3-switch ring PFC/CBFC deadlock with initial-trigger attribution", func(o options) []*exp.Result {
			cfg := exp.DefaultDeadlockUnitConfig(o.fabric)
			cfg.Seed = o.seed
			cfg.Obs = o.obs
			applyHorizon(&cfg.Horizon, o)
			return []*exp.Result{exp.DeadlockUnit(cfg)}
		}},
		{"fig20", "fairness of the TCD rate-adjustment rules", func(o options) []*exp.Result {
			var out []*exp.Result
			for _, cc := range []exp.CCKind{exp.CCDCQCNTCD, exp.CCTIMELYTCD} {
				cfg := exp.DefaultFairnessConfig(o.fabric, cc)
				cfg.Seed = o.seed
				cfg.Faults = o.faults
				applyHorizon(&cfg.Horizon, o)
				if o.full {
					cfg.Horizon = 400 * units.Millisecond
				}
				out = append(out, exp.Fairness(cfg))
			}
			return out
		}},
		{"adversarial", "attack battery scored against the ground-truth oracle (both fabrics)", func(o options) []*exp.Result {
			battery := exp.DefaultBattery()
			if o.battery != "" {
				b, err := exp.LoadBattery(o.battery)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%v\n", err)
					os.Exit(2)
				}
				battery = b
			}
			opt := exp.BatteryOptions{Seeds: []uint64{o.seed, o.seed + 1}}
			if o.obs.ProgressOut != nil {
				opt.OnDone = func(res *exp.Result) {
					fmt.Fprintf(o.obs.ProgressOut, "adversarial: %s done\n", res.Name)
				}
			}
			report, results := exp.RunAdversarialBattery(battery, opt)
			dets := make([]string, 0, len(report.PerDetector))
			for det := range report.PerDetector {
				dets = append(dets, det)
			}
			sort.Strings(dets)
			for _, det := range dets {
				agg := report.PerDetector[det]
				fmt.Printf("oracle %-10s runs=%d mean_accuracy=%.4f mean_misdetect=%.4f\n",
					det, agg.Runs, agg.MeanAccuracy, agg.MeanMisdetect)
			}
			for _, c := range report.Contradictions {
				fmt.Fprintf(os.Stderr, "oracle: CONTRADICTION: %s\n", c)
			}
			if o.oracleOut != "" {
				if err := report.WriteJSON(o.oracleOut); err != nil {
					fmt.Fprintf(os.Stderr, "%v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "oracle: report -> %s\n", o.oracleOut)
			}
			return results
		}},
	}
}

func applyHorizon(dst *units.Time, o options) {
	if o.horizon > 0 {
		*dst = o.horizon
	}
}

// applyObserve threads the observation-run overrides (switch
// architecture, injected fault schedule) into an ObserveConfig.
func applyObserve(cfg *exp.ObserveConfig, o options) {
	if o.voq {
		cfg.Arch = fabric.InputQueuedVoQ
	}
	cfg.Faults = o.faults
}

func tuneFatTree(cfg *exp.FatTreeConfig, o options, fullK, fullFlows int) {
	cfg.Seed = o.seed
	cfg.K = 6
	cfg.MaxFlows = 4000
	cfg.Horizon = 40 * units.Millisecond
	if o.full {
		cfg.K = fullK
		cfg.MaxFlows = fullFlows
		cfg.Horizon = 100 * units.Millisecond
	}
	if o.k > 0 {
		cfg.K = o.k
	}
	if o.flows > 0 {
		cfg.MaxFlows = o.flows
	}
	cfg.RouteCap = o.routeCap
	cfg.Faults = o.faults
	applyHorizon(&cfg.Horizon, o)
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments")
		name     = flag.String("exp", "", "experiment to run (see -list)")
		fabric   = flag.String("fabric", "cee", "fabric kind: cee or ib")
		seed     = flag.Uint64("seed", 1, "random seed")
		horizon  = flag.Duration("horizon", 0, "simulation horizon override (e.g. 60ms)")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		k        = flag.Int("k", 0, "fat-tree arity override")
		flows    = flag.Int("flows", 0, "flow-count override")
		workload = flag.String("workload", "hadoop", "fat-tree workload: hadoop, websearch, mpiio")
		series   = flag.String("series", "", "also dump this time series (name as shown in output)")
		csvdir   = flag.String("csvdir", "", "write every collected series as CSV files into this directory")
		arch     = flag.String("arch", "oq", "switch architecture for observation runs: oq or voq")
		runs     = flag.Int("runs", 1, "repeat the experiment over this many consecutive seeds and fold statistics")
		faults   = flag.String("faults", "", "JSON fault schedule (benign and adversarial kinds) injected into observation, victim-under-flap, fig20 and fat-tree experiments")

		adversarial = flag.String("adversarial", "", "battery spec for -exp adversarial (empty = the committed default battery)")
		oracleOut   = flag.String("oracle-out", "", "write the adversarial oracle report (scores, aggregates, contradictions) as JSON to this file")
		doSweep     = flag.Bool("sweep", false, "run the multi-seed sweep engine even for -runs 1")
		parallel    = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS); runs stay deterministic per seed")
		shard       = flag.String("shard", "", `run only shard i of an n-way sweep split, format "i/n" (0-based; pair with -sweep across processes)`)

		topoStats = flag.Bool("topo-stats", false, "build only the topology and route table (no fabric, no workload), print size and memory figures, then exit")
		topoKind  = flag.String("topo", "fattree", "-topo-stats topology: fattree (-k) or leafspine (-leaves/-spines/-hostsper)")
		leaves    = flag.Int("leaves", 4, "leaf-spine leaf switch count (-topo-stats)")
		spines    = flag.Int("spines", 4, "leaf-spine spine switch count (-topo-stats)")
		hostsPer  = flag.Int("hostsper", 8, "leaf-spine hosts per leaf (-topo-stats)")
		routes    = flag.String("routes", "lazy", "-topo-stats route table mode: lazy or eager")
		routeCap  = flag.Int("route-cap", 0, "max resident lazily-materialized route columns (0 = default 512); applies to fat-tree experiments and -topo-stats")

		traceOut     = flag.String("trace-out", "", "stream the structured event trace as JSONL to this file (spill-to-disk; observation experiments)")
		traceGzip    = flag.Bool("trace-gzip", false, "gzip-compress the -trace-out stream")
		traceChunkMB = flag.Int("trace-chunk-mb", 64, "rotate -trace-out into numbered chunks of this many MB")
		traceMaxMB   = flag.Int("trace-max-mb", 0, "cap total -trace-out disk usage in MB, dropping the oldest chunks (0 = unlimited)")
		telemetry    = flag.Bool("telemetry", false, "fold the event stream into bounded-memory histograms (FCT, queue depth, pause/stall durations, mark gaps)")
		httpAddr     = flag.String("http", "", "serve live /metrics (Prometheus text), /progress (JSON) and /debug/pprof on this address during the run")
		httpLinger   = flag.Duration("http-linger", 0, "keep the -http endpoint up this long after the run finishes")
		metricsOut   = flag.String("metrics-out", "", "write the labeled metrics registry as JSON to this file")
		progress     = flag.Bool("progress", false, "print sim-vs-wall progress lines to stderr during the run")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		jsonOut      = flag.String("json", "", `serialize results as JSON to this file ("-" for stdout)`)
		benchJSON    = flag.String("bench-json", "", "run the benchmark-regression harness and write its JSON report to this file")
		benchRev     = flag.String("bench-rev", "dev", "revision label embedded in the -bench-json report")
		benchAgainst = flag.String("bench-against", "", "prior BENCH_*.json report to guard against; exit 1 on >15% fig3 ns/op or allocs/op regression")
	)
	flag.Parse()

	if *benchJSON != "" {
		runBench(*benchJSON, *benchRev, *benchAgainst)
		return
	}
	if *topoStats {
		os.Exit(runTopoStats(*topoKind, *k, *leaves, *spines, *hostsPer, *routes, *routeCap))
	}

	rs := runners()
	if *list || *name == "" {
		fmt.Println("experiments:")
		for _, r := range rs {
			fmt.Printf("  %-8s %s\n", r.name, r.desc)
		}
		if *name == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := options{
		seed:      *seed,
		full:      *full,
		k:         *k,
		flows:     *flows,
		workload:  *workload,
		series:    *series,
		voq:       strings.EqualFold(*arch, "voq"),
		runs:      *runs,
		routeCap:  *routeCap,
		battery:   *adversarial,
		oracleOut: *oracleOut,
	}
	switch strings.ToLower(*fabric) {
	case "cee":
		o.fabric = exp.CEE
	case "ib":
		o.fabric = exp.IB
	default:
		fmt.Fprintf(os.Stderr, "unknown fabric %q\n", *fabric)
		os.Exit(2)
	}
	if *horizon > 0 {
		o.horizon = units.Time(horizon.Nanoseconds()) * units.Nanosecond
	}
	if *faults != "" {
		spec, err := fault.LoadSpec(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		o.faults = spec
	}

	var spill *obs.Spill
	if *traceOut != "" {
		sp, err := obs.NewSpill(*traceOut, obs.SpillOptions{
			ChunkBytes: int64(*traceChunkMB) << 20,
			MaxBytes:   int64(*traceMaxMB) << 20,
			Gzip:       *traceGzip,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		spill = sp
		o.obs.Rec = spill
	}
	if *telemetry || *httpAddr != "" {
		// The live endpoint serves telemetry-derived metrics, so -http
		// implies -telemetry.
		o.obs.Telemetry = obs.NewTelemetry(nil)
	}
	var live *obs.Live
	if *httpAddr != "" {
		lv, err := obs.ServeLive(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "http: %v\n", err)
			os.Exit(1)
		}
		live = lv
		o.obs.Live = live
		fmt.Fprintf(os.Stderr, "live: http://%s (/metrics, /progress, /debug/pprof)\n", live.Addr())
	}
	if *metricsOut != "" {
		o.obs.Metrics = obs.NewRegistry()
	}
	if *progress {
		o.obs.ProgressEvery = units.Millisecond
		o.obs.ProgressOut = os.Stderr
	}
	stopProfile := func() {}
	if *cpuprofile != "" {
		stop, err := obs.StartCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfile = stop
	}

	var chosen *runner
	for i := range rs {
		if rs[i].name == strings.ToLower(*name) {
			chosen = &rs[i]
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *name)
		os.Exit(2)
	}

	shardIdx, shardTotal := 0, 1
	if *shard != "" {
		if n, err := fmt.Sscanf(*shard, "%d/%d", &shardIdx, &shardTotal); n != 2 || err != nil ||
			shardTotal < 1 || shardIdx < 0 || shardIdx >= shardTotal {
			fmt.Fprintf(os.Stderr, "bad -shard %q: want i/n with 0 <= i < n\n", *shard)
			os.Exit(2)
		}
	}

	start := time.Now()
	if *doSweep || o.runs > 1 || *shard != "" {
		code := runSweep(chosen, o, *parallel, *progress, *jsonOut, *csvdir, shardIdx, shardTotal)
		stopProfile()
		fmt.Fprintf(os.Stderr, "(%s sweep, wall %v)\n", chosen.name, time.Since(start).Round(time.Millisecond))
		os.Exit(code)
	}
	results := chosen.run(o)
	stopProfile()
	quiet := *jsonOut == "-" // keep stdout valid JSON
	for _, res := range results {
		if !quiet {
			fmt.Print(res.Render())
		}
		if *csvdir != "" {
			if err := res.WriteSeries(*csvdir); err != nil {
				fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
				os.Exit(1)
			}
		}
		if o.series != "" {
			if s, ok := res.Series[o.series]; ok {
				fmt.Print(s.Render())
			} else if len(res.Series) > 0 {
				names := make([]string, 0, len(res.Series))
				for n := range res.Series {
					names = append(names, n)
				}
				sort.Strings(names)
				fmt.Fprintf(os.Stderr, "series %q not found; available: %s\n", o.series, strings.Join(names, ", "))
			}
		}
	}

	if spill != nil {
		if err := spill.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events, %d bytes in %d chunk(s) -> %s\n",
			spill.Written(), spill.Bytes(), spill.Chunks(), *traceOut)
		if n := spill.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "trace: disk cap reached, oldest %d events dropped (raise -trace-max-mb)\n", n)
		}
	}
	if o.obs.Metrics != nil {
		if err := exportFile(*metricsOut, o.obs.Metrics.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "metrics export: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := exportResults(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "json export: %v\n", err)
			os.Exit(1)
		}
	}

	out := os.Stdout
	if quiet {
		out = os.Stderr
	}
	fmt.Fprintf(out, "(%s, wall %v)\n", chosen.name, time.Since(start).Round(time.Millisecond))

	if live != nil {
		if *httpLinger > 0 {
			// CI smoke tests (and humans) can scrape the final snapshot
			// before the process exits.
			fmt.Fprintf(os.Stderr, "live: lingering %v on http://%s\n", *httpLinger, live.Addr())
			time.Sleep(*httpLinger)
		}
		live.Close()
	}
}

// runSweep repeats the chosen experiment over o.runs consecutive seeds
// through the parallel sweep engine and renders the folded per-scalar
// statistics. Each run owns a private scheduler/RNG/recorder, so the
// per-run results are byte-identical to the serial path regardless of
// worker count. Returns the process exit code.
func runSweep(chosen *runner, o options, workers int, progress bool, jsonOut, csvdir string, shardIdx, shardTotal int) int {
	if o.obs.Rec != nil || o.obs.Metrics != nil {
		fmt.Fprintln(os.Stderr, "sweep: -trace-out/-metrics-out are single-run sinks and are ignored in sweep mode")
	}
	n := o.runs
	if n < 1 {
		n = 1
	}
	specs := sweep.Grid{
		Exps:    []string{chosen.name},
		Fabrics: []exp.FabricKind{o.fabric},
		Seeds:   sweep.Seq(o.seed, n),
	}.Specs()
	if shardTotal > 1 {
		all := len(specs)
		specs = sweep.Shard(specs, shardIdx, shardTotal)
		fmt.Fprintf(os.Stderr, "sweep: shard %d/%d runs %d of %d specs\n", shardIdx, shardTotal, len(specs), all)
		if len(specs) == 0 {
			return 0
		}
	}
	fn := func(sp sweep.Spec) []*exp.Result {
		ro := o
		ro.seed = sp.Seed
		ro.runs = 1
		// Shared trace/metrics sinks would interleave events from
		// concurrently running simulations; sweeps run without them. A
		// telemetry fold is per-run state, so each worker gets a private
		// one and Aggregate merges the histograms across seeds.
		ro.obs = obs.Config{}
		if o.obs.Telemetry != nil {
			ro.obs.Telemetry = obs.NewTelemetry(nil)
		}
		return chosen.run(ro)
	}
	opt := sweep.Options{Parallel: workers}
	if progress {
		done := 0
		opt.OnDone = func(i int, r *sweep.RunResult) {
			done++
			fmt.Fprintf(os.Stderr, "sweep: %d/%d %s (%v)\n",
				done, len(specs), r.Spec, r.Wall.Round(time.Millisecond))
		}
	}
	rs := sweep.Run(context.Background(), specs, fn, opt)

	if jsonOut != "-" {
		for _, agg := range sweep.Aggregate(rs) {
			fmt.Print(agg.Render())
		}
	}
	if jsonOut != "" {
		if err := exportFile(jsonOut, func(w io.Writer) error { return sweep.WriteJSON(w, rs) }); err != nil {
			fmt.Fprintf(os.Stderr, "sweep json export: %v\n", err)
			return 1
		}
	}
	if csvdir != "" {
		if err := exportSweepCSV(csvdir, rs); err != nil {
			fmt.Fprintf(os.Stderr, "sweep csv export: %v\n", err)
			return 1
		}
	}
	code := 0
	for _, r := range sweep.Errors(rs) {
		fmt.Fprintf(os.Stderr, "sweep: run %s failed: %v\n", r.Spec, r.Err)
		code = 1
	}
	return code
}

// runTopoStats is the hyperscale dry run: build the topology and the
// route table — nothing else, no fabric.Network (whose per-port event
// state would dominate memory at 100k hosts), no workload — and print
// the numbers that decide whether a full run fits in memory. In lazy
// mode a small sample of columns is materialized to measure the
// per-column footprint; the eager estimate extrapolates what
// BuildShortestPath would allocate for every destination at once.
func runTopoStats(kind string, k, leaves, spines, hostsPer int, mode string, cap int) int {
	rate, delay := 40*units.Gbps, 4*units.Microsecond
	var (
		t     *topo.Topology
		src   routing.ColumnSource
		label string
	)
	switch strings.ToLower(kind) {
	case "fattree":
		if k <= 0 {
			k = 4
		}
		ft := topo.NewFatTree(k, rate, delay)
		t, src = ft.Topology, routing.FatTreeColumns(ft)
		label = fmt.Sprintf("fattree k=%d", k)
	case "leafspine":
		ls := topo.NewLeafSpine(leaves, spines, hostsPer, rate, delay)
		t, src = ls.Topology, routing.LeafSpineColumns(ls)
		label = fmt.Sprintf("leafspine %dx%d, %d hosts/leaf", leaves, spines, hostsPer)
	default:
		fmt.Fprintf(os.Stderr, "unknown -topo %q: want fattree or leafspine\n", kind)
		return 2
	}
	hosts := t.Hosts()
	fmt.Printf("topology   %s\n", label)
	fmt.Printf("nodes      %d\n", len(t.Nodes))
	fmt.Printf("links      %d\n", len(t.Links))
	fmt.Printf("hosts      %d\n", len(hosts))

	start := time.Now()
	var tbl *routing.Table
	switch strings.ToLower(mode) {
	case "eager":
		tbl = routing.BuildShortestPath(t)
	case "lazy":
		tbl = routing.NewLazy(t, src, cap)
		// Touch a spread of destinations to measure the real per-column
		// cost (structural fill, no BFS) without paying for a full
		// working set.
		sample := 32
		if c := tbl.ColumnCap(); c < sample {
			sample = c
		}
		if len(hosts) < sample {
			sample = len(hosts)
		}
		from := t.Nodes[len(t.Nodes)-1].ID // a host NIC: longest rows
		for i := 0; i < sample; i++ {
			tbl.Choices(from, hosts[i*len(hosts)/sample])
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -routes %q: want lazy or eager\n", mode)
		return 2
	}
	build := time.Since(start)

	st := tbl.Stats()
	liveB, eagerB := tbl.LiveBytes(), tbl.EagerBytesEstimate()
	fmt.Printf("routes     %s (cap %d columns)\n", strings.ToLower(mode), tbl.ColumnCap())
	fmt.Printf("build      %v\n", build.Round(time.Microsecond))
	fmt.Printf("cols_live  %d (materialized %d, evicted %d, bfs_runs %d)\n",
		tbl.LiveColumns(), st.Materialized, st.Evicted, st.BFSRuns)
	fmt.Printf("table_mb   %.2f\n", float64(liveB)/(1<<20))
	fmt.Printf("eager_mb   %.2f (estimated full materialization)\n", float64(eagerB)/(1<<20))
	if liveB > 0 {
		fmt.Printf("ratio      %.1fx\n", float64(eagerB)/float64(liveB))
	}
	fmt.Printf("peak_rss_mb %.1f\n", peakRSSMB())
	return 0
}

// exportSweepCSV writes the long-format scalar table to dir/sweep.csv and
// each run's time series into a per-seed subdirectory (per-run result
// names collide across seeds, so they cannot share one directory).
func exportSweepCSV(dir string, rs []*sweep.RunResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "sweep.csv")
	if err := exportFile(path, func(w io.Writer) error { return sweep.WriteCSV(w, rs) }); err != nil {
		return err
	}
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		sub := filepath.Join(dir, fmt.Sprintf("seed-%d", r.Spec.Seed))
		for _, res := range r.Results {
			if err := res.WriteSeries(sub); err != nil {
				return err
			}
		}
	}
	return nil
}

// runBench executes the benchmark-regression harness and writes
// BENCH-style JSON to path ("-" for stdout). When against names a prior
// report, the guarded fig3 cases are compared and a >15% regression on
// ns/op or allocs/op fails the run.
func runBench(path, rev, against string) {
	rep := bench.Run(bench.Config{Rev: rev})
	write := func(w io.Writer) error { return rep.WriteJSON(w) }
	var err error
	if path == "-" {
		err = write(os.Stdout)
	} else {
		err = exportFile(path, write)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: %d cases, sweep speedup %.2fx (%d workers) -> %s\n",
		len(rep.Cases), rep.Sweep.Speedup, rep.Sweep.Parallel, path)
	if against != "" {
		guardBench(rep, against)
	}
}

// guardBench compares rep against the prior report at path and exits
// non-zero on regression. A missing or unreadable prior report skips
// the guard (first run on a fresh branch must not fail).
func guardBench(rep *bench.Report, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: no prior report at %s, skipping regression guard (%v)\n", path, err)
		return
	}
	var prev bench.Report
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "bench: prior report %s unreadable, skipping regression guard (%v)\n", path, err)
		return
	}
	regs := bench.Compare(&prev, rep, 0.15)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "bench: no regression vs %s (rev %s)\n", path, prev.Rev)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "bench: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

// exportFile writes via fn into path, creating it.
func exportFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportResults serializes results to path ("-" = stdout): a single
// object for one result, a JSON array otherwise.
func exportResults(path string, results []*exp.Result) error {
	write := func(w io.Writer) error {
		if len(results) == 1 {
			return results[0].WriteJSON(w)
		}
		if _, err := io.WriteString(w, "[\n"); err != nil {
			return err
		}
		for i, r := range results {
			if i > 0 {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			if err := r.WriteJSON(w); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "]\n")
		return err
	}
	if path == "-" {
		return write(os.Stdout)
	}
	return exportFile(path, write)
}
