//go:build linux

package main

import "syscall"

// peakRSSMB reports the process's high-water resident set size in MiB —
// the honest memory figure for -topo-stats (heap stats miss the Go
// runtime's own overhead and any non-heap mappings).
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024 // ru_maxrss is KiB on Linux
}
