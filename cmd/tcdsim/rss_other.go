//go:build !linux

package main

import "runtime"

// peakRSSMB approximates peak memory from the Go runtime's reserved
// virtual memory on platforms without a getrusage high-water mark.
func peakRSSMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}
