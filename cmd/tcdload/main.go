// Command tcdload drives a live tcdsimd with the ReqBench-style
// open-loop load harness (internal/serve/loadgen): Poisson arrivals at
// a target RPS, a warm/cold spec mix exercising the result cache, and
// a JSON report of latency percentiles, throughput, and cache hit
// rates. Exits nonzero on corrupted results, transport errors, or an
// unmet -min-requests / -require-warm-hits floor, so it doubles as the
// CI soak gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tcdnet/tcd/internal/serve/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:9322", "daemon base URL")
	rps := flag.Float64("rps", 50, "target open-loop arrival rate")
	duration := flag.Duration("duration", 20*time.Second, "load duration")
	warm := flag.Float64("warm", 0.5, "fraction of arrivals drawing warm (cacheable) specs")
	warmPool := flag.Int("warm-pool", 8, "distinct warm specs")
	exp := flag.String("exp", "deadlock-unit", "experiment to submit")
	horizonUs := flag.Float64("horizon-us", 0, "simulated horizon per request in µs (0 = experiment default)")
	fabric := flag.String("fabric", "cee", "fabric kind: cee or ib")
	seed := flag.Int64("seed", 1, "harness RNG seed")
	report := flag.String("report", "", "write the JSON report here ('-' = stdout)")
	minRequests := flag.Int("min-requests", 0, "fail unless at least this many requests completed OK")
	requireWarmHits := flag.Bool("require-warm-hits", false, "fail unless the warm-class cache hit rate is nonzero")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:      *url,
		RPS:          *rps,
		Duration:     *duration,
		WarmFraction: *warm,
		WarmPool:     *warmPool,
		Exp:          *exp,
		HorizonUs:    *horizonUs,
		Fabric:       *fabric,
		Seed:         *seed,
	})
	if rep == nil {
		fmt.Fprintln(os.Stderr, "tcdload:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())
	if *report != "" {
		out := os.Stdout
		if *report != "-" {
			f, ferr := os.Create(*report)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "tcdload:", ferr)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if werr := rep.WriteJSON(out); werr != nil {
			fmt.Fprintln(os.Stderr, "tcdload:", werr)
			os.Exit(1)
		}
	}

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "tcdload: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	if rep.Corrupted > 0 {
		fail("%d corrupted results (same spec hash, different bytes)", rep.Corrupted)
	}
	if rep.Errors > 0 {
		fail("%d request errors", rep.Errors)
	}
	if *minRequests > 0 && rep.OK < *minRequests {
		fail("only %d OK requests (< %d)", rep.OK, *minRequests)
	}
	if *requireWarmHits && rep.Warm.CacheHits+rep.Warm.Coalesced == 0 {
		fail("no warm cache hits (%d warm requests)", rep.Warm.Requests)
	}
	if err != nil {
		fail("interrupted: %v", err)
	}
}
