#!/bin/sh
# bench.sh — run the benchmark-regression harness and write BENCH_<rev>.json
# for the current checkout. CI runs the same harness on every push; diff two
# BENCH_*.json files to see the perf trajectory between revisions.
#
# Usage: scripts/bench.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
out="${1:-.}"
rev="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"

go run ./cmd/tcdsim -bench-json "${out}/BENCH_${rev}.json" -bench-rev "${rev}"
echo "wrote ${out}/BENCH_${rev}.json"
