#!/bin/sh
# bench.sh — run the benchmark-regression harness and write BENCH_<rev>.json
# for the current checkout. CI runs the same harness on every push; diff two
# BENCH_*.json files to see the perf trajectory between revisions.
#
# When a BENCH_*.json report from an earlier revision is committed to the
# repo, the newest one is used as the regression baseline: a >15% slowdown
# on the guarded fig3 cases (ns/op or allocs/op) fails the run. With no
# committed prior report the guard is skipped.
#
# Usage: scripts/bench.sh [output-dir]
set -eu

cd "$(dirname "$0")/.."
out="${1:-.}"
rev="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"

# Newest committed report, by commit time, excluding any for this revision.
against="$(git ls-files 'BENCH_*.json' 2>/dev/null |
	grep -v "BENCH_${rev}.json" |
	while read -r f; do
		printf '%s %s\n' "$(git log -1 --format=%ct -- "$f")" "$f"
	done | sort -rn | head -n1 | cut -d' ' -f2-)" || true

if [ -n "${against}" ]; then
	echo "guarding against ${against}"
	go run ./cmd/tcdsim -bench-json "${out}/BENCH_${rev}.json" -bench-rev "${rev}" -bench-against "${against}"
else
	echo "no committed prior BENCH report; regression guard skipped"
	go run ./cmd/tcdsim -bench-json "${out}/BENCH_${rev}.json" -bench-rev "${rev}"
fi
echo "wrote ${out}/BENCH_${rev}.json"
